#!/bin/sh
# Fails if any package under internal/ or cmd/ lacks a package
# comment ("// Package <x> ..." for libraries, "// Command <x> ..."
# for binaries). Every package must document which part of the paper
# it reproduces; see the doc.go convention in ARCHITECTURE.md.
set -u
fail=0
for dir in internal/*/ cmd/*/; do
	# Skip directories with no Go files (defensive; none today).
	ls "$dir"*.go >/dev/null 2>&1 || continue
	if ! grep -l '^// \(Package\|Command\) ' "$dir"*.go >/dev/null 2>&1; then
		echo "missing package comment: $dir" >&2
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	echo "add a doc.go with a '// Package <name> ...' comment mapping the package to the paper section it reproduces" >&2
fi
exit "$fail"
