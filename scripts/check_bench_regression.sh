#!/usr/bin/env sh
# check_bench_regression.sh — the benchmark regression gate.
#
# Compares a freshly measured bench snapshot (scripts/bench_snapshot.sh
# output) against the LATEST committed BENCH_PR*.json and fails when
# the headline end-to-end benchmark — BenchmarkShardedRun at
# shards=4/scale=10, the 1000-account fleet run whose 32.7s -> 2.9s
# trajectory PRs 1-4 earned — regresses by more than the threshold.
# This is what keeps BENCH_PR*.json an enforced contract instead of a
# log: a change that quietly gives those wins back fails the build.
#
# Absolute seconds only compare on comparable hardware, so the gate
# is graduated: on matching CPU strings the strict threshold applies
# (default 25%); on a CPU mismatch it widens to CROSS_CPU_MAX_PCT
# (default 100% — catching only egregious regressions while absorbing
# machine-generation deltas) and says so. Re-measuring the baseline
# on the gate's own hardware (scripts/bench_snapshot.sh on a machine
# matching the committed CPU string) restores strict enforcement.
#
# Usage: scripts/check_bench_regression.sh NEW.json [max_regression_pct]
# Env:   CROSS_CPU_MAX_PCT (default 100) — threshold when CPUs differ.
set -eu

cd "$(dirname "$0")/.."
new="${1:?usage: check_bench_regression.sh NEW.json [max_regression_pct]}"
max="${2:-25}"
key="BenchmarkShardedRun/shards=4/scale=10"

# Latest committed trajectory point = highest PR number, excluding the
# file under test (when it is being regenerated in place).
baseline=""
best=-1
for f in BENCH_PR*.json; do
    [ -e "$f" ] || continue
    [ "$f" -ef "$new" ] 2>/dev/null && continue
    n=$(basename "$f" | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1/p')
    [ -n "$n" ] || continue
    if [ "$n" -gt "$best" ]; then
        best="$n"
        baseline="$f"
    fi
done
if [ -z "$baseline" ]; then
    echo "check_bench_regression: no committed BENCH_PR*.json baseline found" >&2
    exit 1
fi

seconds_of() {
    # Extract "seconds" for $key from a bench json (one record per line).
    awk -v key="$key" '
        index($0, "\"" key "\"") {
            if (match($0, /"seconds": *[0-9.]+/)) {
                s = substr($0, RSTART, RLENGTH)
                sub(/.*: */, "", s)
                print s
                exit
            }
        }' "$1"
}

cpu_of() {
    sed -n 's/^ *"cpu": *"\(.*\)",$/\1/p' "$1" | head -n 1
}

old_s=$(seconds_of "$baseline")
new_s=$(seconds_of "$new")
if [ -z "$old_s" ] || [ -z "$new_s" ]; then
    echo "check_bench_regression: $key missing from $baseline or $new" >&2
    exit 1
fi

old_cpu=$(cpu_of "$baseline")
new_cpu=$(cpu_of "$new")
if [ "$old_cpu" != "$new_cpu" ]; then
    max="${CROSS_CPU_MAX_PCT:-100}"
    echo "check_bench_regression: CPU mismatch (\"$old_cpu\" vs \"$new_cpu\"); widening gate to +$max%" >&2
fi

awk -v old="$old_s" -v cur="$new_s" -v max="$max" -v key="$key" -v base="$baseline" '
BEGIN {
    pct = (cur - old) / old * 100
    printf "%s: baseline %s = %.3fs, current = %.3fs (%+.1f%%, gate +%s%%)\n", key, base, old, cur, pct, max
    if (pct > max) {
        printf "REGRESSION: %.3fs is %.1f%% slower than the committed baseline (max +%s%%)\n", cur, pct, max
        exit 1
    }
}'
echo "bench regression gate passed" >&2
