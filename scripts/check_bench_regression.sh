#!/usr/bin/env sh
# check_bench_regression.sh — the benchmark regression gate.
#
# Compares a freshly measured bench snapshot (scripts/bench_snapshot.sh
# output) against the LATEST committed BENCH_PR*.json on the headline
# end-to-end benchmarks — BenchmarkShardedRun at shards=4/scale=10
# (the 1000-account fleet run whose 32.7s -> ~3s trajectory PRs 1-6
# earned) and, since PR 8, BenchmarkShardedRunXL at shards=4/scale=100
# (the 10,000-account run whose allocs/op and retained live heap the
# fleet-memory burndown drove down). This is what keeps
# BENCH_PR*.json an enforced contract instead of a log: a change that
# quietly gives those wins back fails the build.
#
# Two gates, split by what transfers across hardware:
#
#   allocs/op — hardware-independent, so it is enforced strictly
#     whenever the baseline recorded it: more than max_regression_pct
#     (default 25%) extra allocations fails, whatever machine either
#     number came from. (Baselines from before the column existed skip
#     this gate and say so.)
#
#   live_heap_bytes — the retained fleet footprint after GC, also
#     hardware-independent, enforced strictly on the XL benchmark
#     whenever the baseline recorded it: the scale=100 heap budget
#     (<=100KB/account) is a gated target, not an aspiration.
#
#   seconds — only meaningful on comparable hardware. The gate compares
#     wall-clock strictly when the baseline's CPU string matches and
#     the core counts match; on any mismatch the seconds comparison is
#     SKIPPED with a message, rather than silently widened — the
#     allocs/op gate is the cross-machine contract. Re-measuring the
#     baseline on the gate's own hardware restores seconds enforcement.
#
# Usage: scripts/check_bench_regression.sh NEW.json [max_regression_pct]
set -eu

cd "$(dirname "$0")/.."
new="${1:?usage: check_bench_regression.sh NEW.json [max_regression_pct]}"
max="${2:-25}"
key="BenchmarkShardedRun/shards=4/scale=10"
xlkey="BenchmarkShardedRunXL/shards=4/scale=100"

# Latest committed trajectory point = highest PR number, excluding the
# file under test (when it is being regenerated in place).
baseline=""
best=-1
for f in BENCH_PR*.json; do
    [ -e "$f" ] || continue
    [ "$f" -ef "$new" ] 2>/dev/null && continue
    n=$(basename "$f" | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1/p')
    [ -n "$n" ] || continue
    if [ "$n" -gt "$best" ]; then
        best="$n"
        baseline="$f"
    fi
done
if [ -z "$baseline" ]; then
    echo "check_bench_regression: no committed BENCH_PR*.json baseline found" >&2
    exit 1
fi

field_of() {
    # Extract numeric field $2 from $1's record for key $3 (one record
    # per line); prints nothing when the record or field is absent.
    awk -v key="${3:-$key}" -v field="$2" '
        index($0, "\"" key "\"") {
            if (match($0, "\"" field "\": *[0-9.]+")) {
                s = substr($0, RSTART, RLENGTH)
                sub(/.*: */, "", s)
                print s
            }
            exit
        }' "$1"
}

header_of() {
    # Extract top-level header field $2 ("cpu" string or numeric).
    sed -n 's/^ *"'"$2"'": *"\{0,1\}\([^",]*\)"\{0,1\},\{0,1\}$/\1/p' "$1" | head -n 1
}

fail=0

# ---- allocs/op: the hardware-independent gate ----------------------
old_a=$(field_of "$baseline" allocs_op)
new_a=$(field_of "$new" allocs_op)
if [ -z "$new_a" ]; then
    echo "check_bench_regression: $key has no allocs_op in $new (bench script too old?)" >&2
    exit 1
fi
if [ -z "$old_a" ]; then
    echo "$key: baseline $baseline predates the allocs_op column; allocs gate skipped" >&2
else
    awk -v old="$old_a" -v cur="$new_a" -v max="$max" -v key="$key" -v base="$baseline" '
    BEGIN {
        pct = (cur - old) / old * 100
        printf "%s: baseline %s = %d allocs/op, current = %d (%+.1f%%, gate +%s%%)\n", key, base, old, cur, pct, max
        if (pct > max) {
            printf "REGRESSION: %d allocs/op is %.1f%% above the committed baseline (max +%s%%)\n", cur, pct, max
            exit 1
        }
    }' || fail=1
fi

# ---- seconds: only on comparable hardware --------------------------
old_s=$(field_of "$baseline" seconds)
new_s=$(field_of "$new" seconds)
if [ -z "$old_s" ] || [ -z "$new_s" ]; then
    echo "check_bench_regression: $key missing from $baseline or $new" >&2
    exit 1
fi
old_cpu=$(header_of "$baseline" cpu)
new_cpu=$(header_of "$new" cpu)
old_cores=$(header_of "$baseline" cores)
new_cores=$(header_of "$new" cores)
if [ -n "$old_cores" ] && [ "$old_cores" != "$new_cores" ]; then
    echo "$key: core counts differ ($old_cores vs ${new_cores:-?}); seconds comparison skipped" >&2
elif [ "$old_cpu" != "$new_cpu" ]; then
    echo "$key: CPU mismatch (\"$old_cpu\" vs \"$new_cpu\"); seconds comparison skipped" >&2
else
    awk -v old="$old_s" -v cur="$new_s" -v max="$max" -v key="$key" -v base="$baseline" '
    BEGIN {
        pct = (cur - old) / old * 100
        printf "%s: baseline %s = %.3fs, current = %.3fs (%+.1f%%, gate +%s%%)\n", key, base, old, cur, pct, max
        if (pct > max) {
            printf "REGRESSION: %.3fs is %.1f%% slower than the committed baseline (max +%s%%)\n", cur, pct, max
            exit 1
        }
    }' || fail=1
fi

# ---- XL fleet lane: allocs/op + live heap, both strict -------------
# Both metrics are hardware-independent; a baseline that predates the
# XL lane (or a run without it) skips with a message instead of
# passing silently.
for metric in allocs_op live_heap_bytes; do
    old_x=$(field_of "$baseline" "$metric" "$xlkey")
    new_x=$(field_of "$new" "$metric" "$xlkey")
    if [ -z "$new_x" ]; then
        echo "check_bench_regression: $xlkey has no $metric in $new (run bench_snapshot.sh with the XL lane)" >&2
        fail=1
        continue
    fi
    if [ -z "$old_x" ]; then
        echo "$xlkey: baseline $baseline predates the $metric column; gate skipped" >&2
        continue
    fi
    awk -v old="$old_x" -v cur="$new_x" -v max="$max" -v key="$xlkey" -v base="$baseline" -v metric="$metric" '
    BEGIN {
        pct = (cur - old) / old * 100
        printf "%s: baseline %s = %d %s, current = %d (%+.1f%%, gate +%s%%)\n", key, base, old, metric, cur, pct, max
        if (pct > max) {
            printf "REGRESSION: %d %s is %.1f%% above the committed baseline (max +%s%%)\n", cur, metric, pct, max
            exit 1
        }
    }' || fail=1
done

[ "$fail" -eq 0 ] || exit 1
echo "bench regression gate passed" >&2
