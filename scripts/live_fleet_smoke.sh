#!/bin/bash
# live_fleet_smoke.sh — end-to-end smoke of the live fleet over real
# processes and real sockets:
#
#   honeynet -checkpoint  ->  fleet.snap
#   webmaild -snapshot -partition {0,1}   (two shard processes)
#   webmaild -router -shards a,b          (the partition-aware front)
#   loadgen  -addr router -qps ...        (deterministic attacker replay)
#
# Gates: loadgen exits 0 (zero protocol errors / timeouts), the
# serving-latency section with a p99 column is rendered, achieved
# throughput is at least LIVEFLEET_MIN_QPS (default 5000 req/s), and
# all three daemons drain cleanly on SIGTERM.
#
# The 5000 req/s gate assumes the 4-vCPU CI runner; on smaller dev
# boxes override LIVEFLEET_MIN_QPS (the offered rate is open-loop, so
# a slow box degrades achieved throughput, never correctness).
#
# Tunables (env): LIVEFLEET_QPS (offered rate, default 7000),
# LIVEFLEET_MIN_QPS (gate, default 5000), LIVEFLEET_CONNS (default 32),
# LIVEFLEET_VISITS (per-conn attacker visits, default 240).
set -eu

QPS=${LIVEFLEET_QPS:-7000}
MIN_QPS=${LIVEFLEET_MIN_QPS:-5000}
CONNS=${LIVEFLEET_CONNS:-32}
VISITS=${LIVEFLEET_VISITS:-240}

PORT_SHARD0=18125
PORT_SHARD1=18126
PORT_ROUTER=18124

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

wait_port() { # host:port — poll until something listens (10s cap)
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/${1%:*}/${1#*:}") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: nothing listening on $1" >&2
    return 1
}

echo "== build"
go build -o "$tmp/webmaild" ./cmd/webmaild
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/honeynet" ./cmd/honeynet

echo "== checkpoint (post-setup fleet state)"
"$tmp/honeynet" -days 1 -checkpoint "$tmp/fleet.snap" -experiment overview >/dev/null 2>&1
test -s "$tmp/fleet.snap"

echo "== boot 2 shards from the checkpoint"
# -abuse=false: the shards run on a static virtual clock, so the
# send-rate window never slides and sustained spam replay would trip
# the detector by design rather than by fault.
"$tmp/webmaild" -addr "127.0.0.1:$PORT_SHARD0" -snapshot "$tmp/fleet.snap" \
    -partition 0 -partitions 2 -abuse=false -creds "$tmp/creds0.txt" >"$tmp/shard0.log" &
pids="$pids $!"; shard0=$!
"$tmp/webmaild" -addr "127.0.0.1:$PORT_SHARD1" -snapshot "$tmp/fleet.snap" \
    -partition 1 -partitions 2 -abuse=false -creds "$tmp/creds1.txt" >"$tmp/shard1.log" &
pids="$pids $!"; shard1=$!
wait_port "127.0.0.1:$PORT_SHARD0"
wait_port "127.0.0.1:$PORT_SHARD1"
cat "$tmp/creds0.txt" "$tmp/creds1.txt" > "$tmp/creds.txt"
echo "   $(wc -l < "$tmp/creds.txt") accounts across 2 shards"

echo "== front them with the router (health prober on)"
# An explicit -health-interval keeps the throughput gate honest: the
# 5000 req/s floor must hold with shard health probing running.
"$tmp/webmaild" -router -addr "127.0.0.1:$PORT_ROUTER" \
    -shards "127.0.0.1:$PORT_SHARD0,127.0.0.1:$PORT_SHARD1" \
    -health-interval 200ms >"$tmp/router.log" &
pids="$pids $!"; router=$!
wait_port "127.0.0.1:$PORT_ROUTER"

echo "== loadgen: $CONNS conns, $VISITS visits/conn, offered $QPS qps"
# loadgen exits non-zero on any protocol error or timeout — that exit
# code is the primary gate.
"$tmp/loadgen" -addr "127.0.0.1:$PORT_ROUTER" -creds "$tmp/creds.txt" \
    -qps "$QPS" -conns "$CONNS" -visits "$VISITS" -seed 1 -mailbox 5 -list-limit 25 \
    -label "2 shards via router" | tee "$tmp/loadgen.txt"

echo "== gate: rendered latency section"
grep -q 'Serving latency (live fleet)' "$tmp/loadgen.txt"
grep -q 'p99' "$tmp/loadgen.txt"

echo "== gate: achieved throughput >= $MIN_QPS req/s"
awk -v min="$MIN_QPS" '
    /^achieved / {
        seen = 1
        if ($2 + 0 < min) { printf "FAIL: achieved %s req/s < %s\n", $2, min; exit 1 }
        printf "OK: achieved %s req/s (gate %s)\n", $2, min
    }
    END { if (!seen) { print "FAIL: no achieved-throughput line"; exit 1 } }
' "$tmp/loadgen.txt"

echo "== graceful drain (SIGTERM all three)"
kill -TERM "$router" "$shard0" "$shard1"
for p in $router $shard0 $shard1; do
    if ! wait "$p"; then
        echo "FAIL: pid $p did not exit cleanly on SIGTERM" >&2
        exit 1
    fi
done
pids=""
grep -q 'shut down' "$tmp/router.log"
grep -q 'shut down' "$tmp/shard0.log"
grep -q 'shut down' "$tmp/shard1.log"

echo "live-fleet smoke: PASS"
