#!/bin/bash
# live_fleet_chaos.sh — the live-fleet smoke's chaos variant: kill one
# shard mid-replay and restart it, with the load generator running in
# -tolerate-unavailable mode the whole time.
#
#   honeynet -checkpoint  ->  fleet.snap
#   webmaild -snapshot -partition {0,1}     (two shard processes)
#   webmaild -router -health-interval 200ms (prober + failover on)
#   loadgen  -tolerate-unavailable &        (paced replay in background)
#   ... SIGTERM shard 1 mid-replay, wait, restart it on the same port
#
# Gates: loadgen exits 0 — zero router protocol errors and zero
# timeouts across the outage — and reports at least one tolerated
# down-shard refusal (proof the replay actually crossed the outage);
# all daemons drain cleanly on SIGTERM; and the router's drain-time
# fleet-health section shows the killed shard back up with exactly one
# down-transition and one up-transition.
#
# Tunables (env): CHAOS_QPS (offered rate, default 3000), CHAOS_CONNS
# (default 16), CHAOS_VISITS (per-conn attacker visits, default 240),
# CHAOS_KILL_AFTER / CHAOS_DOWN_FOR (seconds, defaults 2 and 3).
set -eu

QPS=${CHAOS_QPS:-3000}
CONNS=${CHAOS_CONNS:-16}
VISITS=${CHAOS_VISITS:-240}
KILL_AFTER=${CHAOS_KILL_AFTER:-2}
DOWN_FOR=${CHAOS_DOWN_FOR:-3}

PORT_SHARD0=18135
PORT_SHARD1=18136
PORT_ROUTER=18134

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

wait_port() { # host:port — poll until something listens (10s cap)
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/${1%:*}/${1#*:}") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: nothing listening on $1" >&2
    return 1
}

echo "== build"
go build -o "$tmp/webmaild" ./cmd/webmaild
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/honeynet" ./cmd/honeynet

echo "== checkpoint (post-setup fleet state)"
"$tmp/honeynet" -days 1 -checkpoint "$tmp/fleet.snap" -experiment overview >/dev/null 2>&1
test -s "$tmp/fleet.snap"

echo "== boot 2 shards from the checkpoint"
"$tmp/webmaild" -addr "127.0.0.1:$PORT_SHARD0" -snapshot "$tmp/fleet.snap" \
    -partition 0 -partitions 2 -abuse=false -creds "$tmp/creds0.txt" >"$tmp/shard0.log" &
pids="$pids $!"; shard0=$!
"$tmp/webmaild" -addr "127.0.0.1:$PORT_SHARD1" -snapshot "$tmp/fleet.snap" \
    -partition 1 -partitions 2 -abuse=false -creds "$tmp/creds1.txt" >"$tmp/shard1.log" &
pids="$pids $!"; shard1=$!
wait_port "127.0.0.1:$PORT_SHARD0"
wait_port "127.0.0.1:$PORT_SHARD1"
cat "$tmp/creds0.txt" "$tmp/creds1.txt" > "$tmp/creds.txt"
echo "   $(wc -l < "$tmp/creds.txt") accounts across 2 shards"

echo "== front them with the router (fast prober for the chaos window)"
"$tmp/webmaild" -router -addr "127.0.0.1:$PORT_ROUTER" \
    -shards "127.0.0.1:$PORT_SHARD0,127.0.0.1:$PORT_SHARD1" \
    -health-interval 200ms -health-timeout 500ms >"$tmp/router.log" &
pids="$pids $!"; router=$!
wait_port "127.0.0.1:$PORT_ROUTER"

echo "== loadgen (background, tolerate-unavailable): $CONNS conns, $VISITS visits/conn, offered $QPS qps"
# The open-loop pacing makes the replay duration deterministic, so the
# kill below lands mid-replay on any machine speed.
"$tmp/loadgen" -addr "127.0.0.1:$PORT_ROUTER" -creds "$tmp/creds.txt" \
    -qps "$QPS" -conns "$CONNS" -visits "$VISITS" -seed 1 -mailbox 5 -list-limit 25 \
    -tolerate-unavailable -label "chaos: shard restart mid-replay" >"$tmp/loadgen.txt" &
loadgen=$!

echo "== chaos: SIGTERM shard 1 after ${KILL_AFTER}s, restart after ${DOWN_FOR}s more"
sleep "$KILL_AFTER"
kill -TERM "$shard1"
if ! wait "$shard1"; then
    echo "FAIL: shard 1 did not exit cleanly on SIGTERM" >&2
    exit 1
fi
sleep "$DOWN_FOR"
"$tmp/webmaild" -addr "127.0.0.1:$PORT_SHARD1" -snapshot "$tmp/fleet.snap" \
    -partition 1 -partitions 2 -abuse=false >"$tmp/shard1b.log" &
pids="$pids $!"; shard1b=$!
wait_port "127.0.0.1:$PORT_SHARD1"
echo "   shard 1 restarted"

echo "== gate: loadgen exits 0 across the outage (zero router protocol errors)"
if ! wait "$loadgen"; then
    echo "FAIL: loadgen reported protocol errors or timeouts" >&2
    cat "$tmp/loadgen.txt" >&2
    exit 1
fi
cat "$tmp/loadgen.txt"
grep -q 'Serving latency (live fleet)' "$tmp/loadgen.txt"

echo "== gate: the replay actually crossed the outage"
awk '
    /^tolerated / {
        seen = 1
        if ($2 + 0 < 1) { print "FAIL: zero tolerated refusals — the kill missed the replay"; exit 1 }
        printf "OK: %s down-shard refusals tolerated\n", $2
    }
    END { if (!seen) { print "FAIL: no tolerated-refusals line"; exit 1 } }
' "$tmp/loadgen.txt"

echo "== graceful drain (SIGTERM router and both shards)"
kill -TERM "$router" "$shard0" "$shard1b"
for p in $router $shard0 $shard1b; do
    if ! wait "$p"; then
        echo "FAIL: pid $p did not exit cleanly on SIGTERM" >&2
        exit 1
    fi
done
pids=""
grep -q 'shut down' "$tmp/router.log"
grep -q 'shut down' "$tmp/shard0.log"
grep -q 'shut down' "$tmp/shard1b.log"

echo "== gate: fleet-health section shows one clean down/up cycle"
grep -q 'Fleet health (router)' "$tmp/router.log"
# Columns: shard addr state dials retries evictions down-transitions
# up-transitions inflight-hw.
awk -v addr="127.0.0.1:$PORT_SHARD1" -v survivor="127.0.0.1:$PORT_SHARD0" '
    $2 == addr {
        seen = 1
        if ($3 != "up")  { printf "FAIL: killed shard state %s, want up\n", $3; exit 1 }
        if ($7 != 1)     { printf "FAIL: killed shard down-transitions %s, want 1\n", $7; exit 1 }
        if ($8 != 1)     { printf "FAIL: killed shard up-transitions %s, want 1\n", $8; exit 1 }
        printf "OK: killed shard back up after exactly one down/up cycle\n"
    }
    $2 == survivor {
        if ($7 != 0) { printf "FAIL: surviving shard flapped (%s down-transitions)\n", $7; exit 1 }
    }
    END { if (!seen) { print "FAIL: killed shard missing from fleet-health section"; exit 1 } }
' "$tmp/router.log"

echo "live-fleet chaos: PASS"
