#!/usr/bin/env sh
# bench_snapshot.sh — record the perf trajectory of the sharded engine.
#
# Runs the end-to-end scaling benchmarks once each and writes a
# BENCH_PR<N>.json at the repo root: one record per benchmark with the
# (shards, scale) point and wall-clock seconds, plus the CPU string so
# numbers are only compared on comparable hardware. PR 5 adds the
# snapshot engine's benchmarks (warm- vs cold-started matrix, the
# snapshot round trip) to the recorded trajectory, and the companion
# scripts/check_bench_regression.sh turns the latest committed file
# from a log into an enforced contract.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR5.json}"
# The PR number in the trajectory record comes from the file name
# (BENCH_PR7.json -> 7); unrecognised names record pr 0.
pr=$(basename "$out" | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1/p')
[ -n "$pr" ] || pr=0
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench 'BenchmarkShardedRun|BenchmarkStreamingRun|BenchmarkMatrixRun$|BenchmarkMatrixWarmStart|BenchmarkSnapshotRoundTrip' \
    -benchtime 1x -run '^$' . | tee "$raw" >&2

awk -v out="$out" -v pr="$pr" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark(ShardedRun|StreamingRun|MatrixRun|MatrixWarmStart|SnapshotRoundTrip)/ {
    name = $1
    # Trim the trailing -GOMAXPROCS suffix go test appends.
    sub(/-[0-9]+$/, "", name)
    ns = $3
    shards = "null"; scale = "null"
    if (match(name, /shards=[0-9]+/)) shards = substr(name, RSTART + 7, RLENGTH - 7)
    if (match(name, /scale=[0-9]+/))  scale  = substr(name, RSTART + 6, RLENGTH - 6)
    n++
    rows[n] = sprintf("    {\"name\": \"%s\", \"shards\": %s, \"scale\": %s, \"seconds\": %.3f}",
                      name, shards, scale, ns / 1e9)
}
END {
    if (n == 0) { print "bench_snapshot: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"pr\": %d,\n  \"cpu\": \"%s\",\n  \"benchtime\": \"1x\",\n  \"benchmarks\": [\n", pr, cpu > out
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "") > out
    printf "  ]\n}\n" > out
}' "$raw"

echo "wrote $out" >&2
