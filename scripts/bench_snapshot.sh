#!/usr/bin/env sh
# bench_snapshot.sh — record the perf trajectory of the sharded engine.
#
# Runs the end-to-end scaling benchmarks and writes a BENCH_PR<N>.json
# at the repo root: one record per benchmark with the (shards, scale)
# point, wall-clock seconds, allocs/op, bytes/op and — for the sharded
# runs — the retained live-heap-bytes metric. The header records the
# CPU string, core count and GOMAXPROCS, because seconds only compare
# on comparable hardware while allocation counts compare anywhere; the
# companion scripts/check_bench_regression.sh enforces exactly that
# split. PR 6 adds the fleet-scale lane (BenchmarkShardedRunXL at
# scale=100; BENCH_XXL=1 adds scale=1000) and the per-benchmark memory
# columns. PR 8 adds the cold-setup lane (BenchmarkSetupXL, the
# parallel-setup scaling contract) and the setup_seconds column the
# sharded benchmarks now report. PR 10 adds the C3 lane
# (BenchmarkC3Build / BenchmarkC3Range at one million credentials) and
# the range_qps column the acceptance bar reads.
#
# Usage: scripts/bench_snapshot.sh [output.json]
# Env:   BENCH_COUNT=6  run each benchmark 6 times (benchstat-friendly;
#                       the JSON records the minimum per benchmark)
#        BENCH_RAW=f    also keep the raw `go test -bench` output at f
#                       (what nightly CI uploads as an artifact)
#        BENCH_XXL=1    include the 100,000-account scale=1000 runs
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR8.json}"
count="${BENCH_COUNT:-1}"
# The PR number in the trajectory record comes from the file name
# (BENCH_PR7.json -> 7); unrecognised names record pr 0.
pr=$(basename "$out" | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1/p')
[ -n "$pr" ] || pr=0
cores=$(nproc 2>/dev/null || echo 1)
raw="${BENCH_RAW:-$(mktemp)}"
[ -n "${BENCH_RAW:-}" ] || trap 'rm -f "$raw"' EXIT

# Plain POSIX sh has no pipefail, so a `| tee` pipeline would swallow
# a failing go test; write to the file and replay it instead.
if ! go test -bench 'BenchmarkShardedRun|BenchmarkSetupXL|BenchmarkStreamingRun|BenchmarkMatrixRun$|BenchmarkMatrixWarmStart|BenchmarkSnapshotRoundTrip|BenchmarkC3Build|BenchmarkC3Range' \
    -benchtime 1x -count "$count" -benchmem -run '^$' . > "$raw" 2>&1; then
    cat "$raw" >&2
    echo "bench_snapshot: go test -bench failed; no snapshot written" >&2
    exit 1
fi
cat "$raw" >&2

awk -v out="$out" -v pr="$pr" -v cores="$cores" -v count="$count" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark(ShardedRun|SetupXL|StreamingRun|MatrixRun|MatrixWarmStart|SnapshotRoundTrip|C3Build|C3Range)/ {
    name = $1
    # The trailing -N suffix go test appends is GOMAXPROCS.
    if (match(name, /-[0-9]+$/)) {
        gmp = substr(name, RSTART + 1, RLENGTH - 1)
        name = substr(name, 1, RSTART - 1)
    }
    # Collect "value unit" pairs wherever they sit on the line, so the
    # parse does not depend on column order.
    ns = ""; allocs = ""; bytes = ""; heap = ""; setup = ""; qps = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op")           ns = $(i - 1)
        if ($i == "allocs/op")       allocs = $(i - 1)
        if ($i == "B/op")            bytes = $(i - 1)
        if ($i == "live-heap-bytes") heap = $(i - 1)
        if ($i == "setup-seconds")   setup = $(i - 1)
        if ($i == "range-qps")       qps = $(i - 1)
    }
    if (ns == "") next
    # With -count > 1 keep the minimum per benchmark (benchstat reads
    # the raw file; the JSON wants one representative point).
    if (!(name in secs) || ns + 0 < secs[name] + 0) secs[name] = ns
    if (allocs != "" && (!(name in al) || allocs + 0 < al[name] + 0)) al[name] = allocs
    if (bytes != "" && (!(name in by) || bytes + 0 < by[name] + 0))   by[name] = bytes
    if (heap != "" && (!(name in hp) || heap + 0 < hp[name] + 0))     hp[name] = heap
    if (setup != "" && (!(name in su) || setup + 0 < su[name] + 0))   su[name] = setup
    # Throughput keeps the minimum too: the recorded qps is the worst
    # observed, so the ≥5k req/s bar is conservative.
    if (qps != "" && (!(name in qp) || qps + 0 < qp[name] + 0))       qp[name] = qps
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
}
END {
    if (n == 0) { print "bench_snapshot: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    # go test only appends the -N name suffix when GOMAXPROCS != 1.
    if (gmp == "") gmp = 1
    printf "{\n  \"pr\": %d,\n  \"cpu\": \"%s\",\n  \"cores\": %d,\n  \"gomaxprocs\": %d,\n  \"benchtime\": \"1x\",\n  \"count\": %d,\n  \"benchmarks\": [\n", pr, cpu, cores, gmp, count > out
    for (i = 1; i <= n; i++) {
        name = order[i]
        shards = "null"; scale = "null"
        if (match(name, /shards=[0-9]+/)) shards = substr(name, RSTART + 7, RLENGTH - 7)
        if (match(name, /scale=[0-9]+/))  scale  = substr(name, RSTART + 6, RLENGTH - 6)
        row = sprintf("    {\"name\": \"%s\", \"shards\": %s, \"scale\": %s, \"seconds\": %.3f", name, shards, scale, secs[name] / 1e9)
        # %.0f, not %d: awk %d clamps at 2^31-1 and the XL lane pushes
        # bytes/op past 3GB (BENCH_PR6.json recorded 2147483647 there).
        if (name in al) row = row sprintf(", \"allocs_op\": %.0f", al[name])
        if (name in by) row = row sprintf(", \"bytes_op\": %.0f", by[name])
        if (name in hp) row = row sprintf(", \"live_heap_bytes\": %.0f", hp[name])
        if (name in su) row = row sprintf(", \"setup_seconds\": %.3f", su[name])
        if (name in qp) row = row sprintf(", \"range_qps\": %.0f", qp[name])
        row = row "}"
        printf "%s%s\n", row, (i < n ? "," : "") > out
    }
    printf "  ]\n}\n" > out
}' "$raw"

echo "wrote $out" >&2
