#!/usr/bin/env sh
# bench_snapshot.sh — record the perf trajectory of the sharded engine.
#
# Runs the end-to-end scaling benchmarks once each and writes
# BENCH_PR4.json at the repo root: one record per benchmark with the
# (shards, scale) point and wall-clock seconds, plus the CPU string so
# numbers are only compared on comparable hardware. PR 4 adds the
# scenario matrix benchmark (five presets on a shared worker budget)
# to the recorded trajectory.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR4.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench 'BenchmarkShardedRun|BenchmarkStreamingRun|BenchmarkMatrixRun' -benchtime 1x -run '^$' . | tee "$raw" >&2

awk -v out="$out" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark(ShardedRun|StreamingRun|MatrixRun)/ {
    name = $1
    # Trim the trailing -GOMAXPROCS suffix go test appends.
    sub(/-[0-9]+$/, "", name)
    ns = $3
    shards = "null"; scale = "null"
    if (match(name, /shards=[0-9]+/)) shards = substr(name, RSTART + 7, RLENGTH - 7)
    if (match(name, /scale=[0-9]+/))  scale  = substr(name, RSTART + 6, RLENGTH - 6)
    n++
    rows[n] = sprintf("    {\"name\": \"%s\", \"shards\": %s, \"scale\": %s, \"seconds\": %.3f}",
                      name, shards, scale, ns / 1e9)
}
END {
    if (n == 0) { print "bench_snapshot: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"pr\": 4,\n  \"cpu\": \"%s\",\n  \"benchtime\": \"1x\",\n  \"benchmarks\": [\n", cpu > out
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "") > out
    printf "  ]\n}\n" > out
}' "$raw"

echo "wrote $out" >&2
