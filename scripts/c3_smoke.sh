#!/bin/bash
# c3_smoke.sh — end-to-end smoke of the C3 credential-checking service
# over a real process and real sockets:
#
#   honeynet -checkpoint   ->  fleet.snap     (a fleet with decoy creds)
#   c3d -snapshot -synthetic N                (the k-anonymity index)
#   c3d -replay                               (deterministic query replay)
#
# Gates: the index reports every snapshot credential plus the synthetic
# fill, the replayer exits 0 (zero protocol errors / timeouts), the
# serving-latency section renders, achieved throughput is at least
# C3_MIN_QPS (default 5000 req/s — the ISSUE acceptance bar), and the
# daemon drains cleanly on SIGTERM.
#
# The 5000 req/s gate assumes the 4-vCPU CI runner; on smaller dev
# boxes override C3_MIN_QPS (the replay is closed-loop by default, so
# a slow box degrades achieved throughput, never correctness).
#
# Tunables (env): C3_MIN_QPS (gate, default 5000), C3_SYNTHETIC
# (synthetic fill size, default 200000), C3_QUERIES (replay volume,
# default 20000), C3_CONNS (default 16).
set -eu

MIN_QPS=${C3_MIN_QPS:-5000}
SYNTHETIC=${C3_SYNTHETIC:-200000}
QUERIES=${C3_QUERIES:-20000}
CONNS=${C3_CONNS:-16}

PORT_C3=18133

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

wait_port() { # host:port — poll until something listens (10s cap)
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/${1%:*}/${1#*:}") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: nothing listening on $1" >&2
    return 1
}

echo "== build"
go build -o "$tmp/c3d" ./cmd/c3d
go build -o "$tmp/honeynet" ./cmd/honeynet

echo "== checkpoint (a fleet whose decoy credentials feed the index)"
"$tmp/honeynet" -days 1 -checkpoint "$tmp/fleet.snap" -experiment overview >/dev/null 2>&1
test -s "$tmp/fleet.snap"

echo "== boot c3d: snapshot credentials + $SYNTHETIC synthetic"
"$tmp/c3d" -addr "127.0.0.1:$PORT_C3" -snapshot "$tmp/fleet.snap" \
    -synthetic "$SYNTHETIC" -seed 1 >"$tmp/c3d.log" &
pids="$pids $!"; c3d=$!
wait_port "127.0.0.1:$PORT_C3"
grep -q "indexed .* credentials from .*fleet.snap" "$tmp/c3d.log"
grep -q "indexed $SYNTHETIC synthetic credentials" "$tmp/c3d.log"
grep -q "c3d listening" "$tmp/c3d.log"
sed -n 's/^c3d listening/   /p' "$tmp/c3d.log"

echo "== replay: $QUERIES range queries over $CONNS conns"
# The replayer exits non-zero on any protocol error or timeout — that
# exit code is the primary gate.
"$tmp/c3d" -replay -addr "127.0.0.1:$PORT_C3" -queries "$QUERIES" \
    -conns "$CONNS" -seed 1 -label "c3 smoke" | tee "$tmp/replay.txt"

echo "== gate: rendered latency section"
grep -q 'p99' "$tmp/replay.txt"

echo "== gate: achieved throughput >= $MIN_QPS req/s"
awk -v min="$MIN_QPS" '
    /^achieved / {
        seen = 1
        if ($2 + 0 < min) { printf "FAIL: achieved %s req/s < %s\n", $2, min; exit 1 }
        printf "OK: achieved %s req/s (gate %s)\n", $2, min
    }
    END { if (!seen) { print "FAIL: no achieved-throughput line"; exit 1 } }
' "$tmp/replay.txt"

echo "== graceful drain (SIGTERM)"
kill -TERM "$c3d"
if ! wait "$c3d"; then
    echo "FAIL: c3d did not exit cleanly on SIGTERM" >&2
    exit 1
fi
pids=""
grep -q 'draining' "$tmp/c3d.log"
grep -q 'shut down' "$tmp/c3d.log"

echo "c3 smoke: PASS"
