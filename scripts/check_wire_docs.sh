#!/bin/sh
# Fails if any wire-protocol op dispatched or emitted in code is
# missing from docs/WIRE_PROTOCOL.md. The doc is the normative
# catalogue of the serving stack's surface; this keeps it from
# silently drifting when a daemon grows an op.
#
# Op strings are harvested from three shapes, non-test Go files only:
#   - server dispatch arms:       case "list":
#   - client/op-kind literals:    Op: "login"   /   OpList = "list"
#   - raw probe frames:           {\"op\":\"ping\"}
# The doc must mention each op in backticks (`list`) — the form every
# op heading and table row in WIRE_PROTOCOL.md uses.
set -u
cd "$(dirname "$0")/.."
doc=docs/WIRE_PROTOCOL.md
if [ ! -f "$doc" ]; then
	echo "check_wire_docs: $doc missing" >&2
	exit 1
fi

# The files that define the wire surface: the three JSON daemons'
# server/client code and the fleet tooling that emits frames.
files=$(ls internal/webmail/server.go internal/c3/server.go internal/c3/replay.go \
	internal/livefleet/router.go internal/livefleet/health.go internal/livefleet/loadgen.go \
	cmd/webmaild/*.go cmd/c3d/*.go cmd/loadgen/*.go 2>/dev/null | grep -v _test)

ops=$(
	{
		sed -n 's/^[[:space:]]*case "\([a-z][a-z]*\)".*/\1/p' $files
		sed -n 's/.*Op:[[:space:]]*"\([a-z][a-z]*\)".*/\1/p' $files
		sed -n 's/.*Op[A-Za-z]*[[:space:]]*=[[:space:]]*"\([a-z][a-z]*\)".*/\1/p' $files
		sed -n 's/.*\\"op\\":\\"\([a-z][a-z]*\)\\".*/\1/p' $files
	} | sort -u
)

if [ -z "$ops" ]; then
	echo "check_wire_docs: no op strings harvested — the extraction patterns rotted" >&2
	exit 1
fi

fail=0
for op in $ops; do
	if ! grep -q "\`$op\`" "$doc"; then
		echo "op \"$op\" is dispatched or emitted in code but undocumented in $doc" >&2
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	echo "document the op (request, response, example frames) in $doc" >&2
fi
exit "$fail"
