// Calibration conformance: the simulated baseline must keep
// reproducing the paper's headline numbers. The generative models
// (internal/attacker/calibrate.go, internal/outlets) are calibrated
// to the paper's *marginal shapes*, not to exact counts, so each row
// documents its tolerance:
//
//   - structural facts (Table 1 sizes, the malware channel's
//     no-hijack/no-spam stealth) are exact;
//   - per-outlet class shares get a ±15pp band around the Figure 2
//     target — with ~60–90 accesses per outlet a binomial share has a
//     std of ~4–5pp, so 15pp is a ≈3σ band that flags calibration
//     drift without flaking on seed noise;
//   - global totals get a 0.5×–1.5× band around the paper's count:
//     the arrival processes pin the Figure 3/4 shapes, and the
//     absolute volume floats with Poisson pickup noise.
//
// A failure here means someone changed the generative calibration (or
// an engine default) in a way that moves the reproduced §4 numbers —
// exactly the regression this file exists to catch.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/analysis"
	core "repro/internal/honeynet"
	"repro/internal/scenario"
)

// conformanceRun executes the paper's deployment exactly as the
// engine's default path runs it: Table 1 plan, 236 days, seed 42
// (the repo's canonical demo seed) in the legacy stream layout,
// sharded for speed (results are shard-count invariant). It drives
// honeynet directly rather than the scenario layer so the conformance
// numbers are pinned to the engine's stable default streams — the
// scenario layer rebases setup onto derived SetupSeed streams (see
// scenario.SetupSeedFor), which is a different, equally valid draw of
// the same distributions. The run is cached so every conformance test
// shares one simulation.
var conformanceCache struct {
	once sync.Once
	res  *scenario.Result
	err  error
}

func conformanceRun(t *testing.T) *scenario.Result {
	t.Helper()
	conformanceCache.once.Do(func() {
		fail := func(err error) { conformanceCache.err = err }
		exp, err := core.New(core.Config{Seed: 42, Shards: 4})
		if err != nil {
			fail(err)
			return
		}
		if err := exp.RunAll(); err != nil {
			fail(err)
			return
		}
		agg, err := exp.Aggregates()
		if err != nil {
			fail(err)
			return
		}
		res := &scenario.Result{Seed: 42, Shards: 4, Scale: 1, Agg: agg, GroupCounts: map[int]int{}}
		for _, a := range exp.Assignments() {
			res.GroupCounts[a.Group.ID]++
		}
		conformanceCache.res = res
	})
	if conformanceCache.err != nil {
		t.Fatal(conformanceCache.err)
	}
	return conformanceCache.res
}

func TestCalibrationConformance(t *testing.T) {
	res := conformanceRun(t)
	agg := res.Agg

	t.Run("table1-group-sizes", func(t *testing.T) {
		// Table 1 is structural, not stochastic: 30/20/10/20/20
		// accounts per group, 100 total. Exact.
		want := map[int]int{1: 30, 2: 20, 3: 10, 4: 20, 5: 20}
		for id, n := range want {
			if res.GroupCounts[id] != n {
				t.Errorf("group %d has %d accounts, Table 1 says %d", id, res.GroupCounts[id], n)
			}
		}
	})

	t.Run("malware-stealth-exact", func(t *testing.T) {
		// Figure 2 / §4.2: malware-channel criminals never hijack and
		// never spam ("the stealthiest"); §4.8 builds on it. Exact.
		c := agg.PerOutlet[analysis.OutletMalware]
		if c.Hijacker != 0 || c.Spammer != 0 {
			t.Errorf("malware outlet shows hijacker=%d spammer=%d, paper says 0/0", c.Hijacker, c.Spammer)
		}
		if c.Total == 0 {
			t.Error("malware outlet saw no accesses at all")
		}
	})

	share := func(part, total int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(part) / float64(total)
	}
	shareRows := []struct {
		name       string
		got        float64
		paper      float64
		tolPP      float64
		derivation string
	}{
		{
			name:  "paste-hijacker-share",
			got:   share(agg.PerOutlet[analysis.OutletPaste].Hijacker, agg.PerOutlet[analysis.OutletPaste].Total),
			paper: 20, tolPP: 15,
			// Figure 2: ~20% of paste accesses change the password.
			// ±15pp ≈ 3σ for a 20% binomial share over the ~80 paste
			// accesses a baseline run produces.
			derivation: "Figure 2 paste hijacker bar (~20%), 3σ binomial band",
		},
		{
			name:  "forum-gold-digger-share",
			got:   share(agg.PerOutlet[analysis.OutletForum].GoldDigger, agg.PerOutlet[analysis.OutletForum].Total),
			paper: 40, tolPP: 15,
			// §4.2/Figure 2: forums draw the highest searching share of
			// the public channels; the engine spawns gold diggers at
			// p=0.40 (calibrate.go). Same 3σ band over ~60 accesses.
			derivation: "calibrate.go forum GoldDiggerProb 0.40 vs Figure 2, 3σ binomial band",
		},
		{
			name:  "tor-or-proxy-share",
			got:   share(agg.Overview().WithoutLocation, agg.Overview().WithoutLocation+agg.Overview().WithLocation),
			paper: 47, tolPP: 15,
			// §4.5: 154 of 327 accesses had no usable geolocation
			// (attributed to Tor exits and open proxies) = 47%. 3σ
			// band over ~200 accesses is ~10pp; 15pp adds headroom for
			// the malware channel's all-Tor mass shifting with pickup
			// noise.
			derivation: "§4.5 154/327 accesses without geolocation, 3σ band + channel-mix headroom",
		},
	}
	for _, row := range shareRows {
		row := row
		t.Run(row.name, func(t *testing.T) {
			if row.got < row.paper-row.tolPP || row.got > row.paper+row.tolPP {
				t.Errorf("%s = %.1f%%, want %.1f%% ± %.0fpp (%s)",
					row.name, row.got, row.paper, row.tolPP, row.derivation)
			}
		})
	}

	countRows := []struct {
		name       string
		got, paper int
		lo, hi     int
		derivation string
	}{
		{
			// §4.1: 327 unique accesses over the seven months. The
			// absolute volume floats with Poisson pickup noise
			// (outlets.go calibrates the Figure 3 *shape*), so the
			// band is 0.5×–1.5× of the paper's count.
			name: "unique-accesses", got: agg.Classes.Total, paper: 327,
			lo: 163, hi: 490, derivation: "§4.1 total, 0.5×–1.5× volume band",
		},
		{
			// §4.1: 42 accounts blocked by the platform. Suspensions
			// compound spam detection and ToS enforcement draws.
			name: "accounts-blocked", got: agg.Overview().SuspendedAccounts, paper: 42,
			lo: 21, hi: 63, derivation: "§4.1 \"42 accounts were blocked\", 0.5×–1.5× volume band",
		},
		{
			// §4.7: 12 unique abandoned drafts, driven by the scripted
			// blackmail case study plus organic drafts.
			name: "unique-drafts", got: agg.Overview().UniqueDrafts, paper: 12,
			lo: 6, hi: 18, derivation: "§4.7 12 unique drafts, 0.5×–1.5× band",
		},
	}
	for _, row := range countRows {
		row := row
		t.Run(row.name, func(t *testing.T) {
			if row.got < row.lo || row.got > row.hi {
				t.Errorf("%s = %d, want within [%d, %d] around the paper's %d (%s)",
					row.name, row.got, row.lo, row.hi, row.paper, row.derivation)
			}
		})
	}

	t.Run("class-share-ordering", func(t *testing.T) {
		// §4.2's qualitative ordering: forums out-search paste sites,
		// and paste sites out-hijack forums. Ordering is more robust
		// than any single share, so it gets no tolerance at all.
		paste, forum := agg.PerOutlet[analysis.OutletPaste], agg.PerOutlet[analysis.OutletForum]
		if share(forum.GoldDigger, forum.Total) <= share(paste.GoldDigger, paste.Total) {
			t.Errorf("forum gold-digger share (%.1f%%) not above paste's (%.1f%%), §4.2 ordering violated",
				share(forum.GoldDigger, forum.Total), share(paste.GoldDigger, paste.Total))
		}
		if share(paste.Hijacker, paste.Total) <= share(forum.Hijacker, forum.Total) {
			t.Errorf("paste hijacker share (%.1f%%) not above forum's (%.1f%%), §4.2 ordering violated",
				share(paste.Hijacker, paste.Total), share(forum.Hijacker, forum.Total))
		}
	})
}

// TestConformanceSummary prints the measured-vs-paper table when
// running with -v, a quick human check of reproduction quality.
func TestConformanceSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("full 236-day run in -short mode")
	}
	res := conformanceRun(t)
	o := res.Agg.Overview()
	for _, line := range []struct {
		metric string
		got    int
		paper  int
	}{
		{"unique accesses", o.UniqueAccesses, 327},
		{"emails sent", o.EmailsSent, 845},
		{"unique drafts", o.UniqueDrafts, 12},
		{"accounts blocked", o.SuspendedAccounts, 42},
		{"countries", o.Countries, 29},
		{"accesses w/o location", o.WithoutLocation, 154},
	} {
		t.Log(fmt.Sprintf("%-22s measured %-5d paper %d", line.metric, line.got, line.paper))
	}
}
