// Stream-equals-batch: the streaming classification pipeline (per-
// shard incremental classifiers merged as O(shards) aggregates) must
// render every table and figure byte-identically to the legacy batch
// pipeline (merge all records into one Dataset, classify post hoc)
// for the same seed, at any shard count. This is the determinism
// guarantee that lets fleet-scale runs skip the merged dataset
// entirely without changing a single reported number.
package repro

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/honeynet"
	"repro/internal/report"
)

func streamTestConfig(seed int64, shards int) honeynet.Config {
	return honeynet.Config{
		Seed:           seed,
		Shards:         shards,
		Duration:       90 * 24 * time.Hour,
		MailboxSize:    30,
		ScanInterval:   30 * time.Minute,
		ScrapeInterval: 2 * time.Hour,
	}
}

const streamTestResamples = 200

// renderBatchReport renders every section through the legacy
// dataset-backed functions.
func renderBatchReport(exp *honeynet.Experiment, seed int64) string {
	ds := exp.Dataset()
	cs := analysis.Classify(ds, analysis.ClassifyOptions{})
	kw := analysis.KeywordInference(ds, exp.DropWords())
	drafts := 0
	for _, a := range ds.Actions {
		if a.Kind == analysis.ActionDraft {
			drafts++
		}
	}
	var b strings.Builder
	b.WriteString(report.Overview(analysis.Summarize(ds)))
	b.WriteString(report.Figure1(analysis.DurationsByClass(cs)))
	b.WriteString(report.Figure2(analysis.ByOutlet(cs)))
	b.WriteString(report.Figure3(analysis.TimeToFirstAccess(ds)))
	b.WriteString(report.Figure4(analysis.Timeline(ds)))
	b.WriteString(report.Figure5("UK/London", analysis.MedianRadii(ds, analysis.HintUK)))
	b.WriteString(report.Figure5("US/Pontiac", analysis.MedianRadii(ds, analysis.HintUS)))
	b.WriteString(report.Significance(analysis.LocationSignificance(ds, streamTestResamples, seed)))
	b.WriteString(report.SystemConfig(analysis.SystemConfiguration(ds)))
	b.WriteString(report.Table2(kw.TopSearched(10), kw.TopCorpus(10)))
	b.WriteString(report.Sophistication(
		analysis.SystemConfiguration(ds),
		analysis.LocationSignificance(ds, streamTestResamples, seed)))
	fmt.Fprintf(&b, "drafts=%d\n", drafts)
	return b.String()
}

// renderStreamReport renders the same sections from the merged
// per-shard streaming aggregates, never touching the Dataset.
func renderStreamReport(t *testing.T, exp *honeynet.Experiment, seed int64) string {
	t.Helper()
	agg, err := exp.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	kw := agg.KeywordInference(exp.SeededContents(), exp.DropWords())
	var b strings.Builder
	b.WriteString(report.Overview(agg.Overview()))
	b.WriteString(report.Figure1Sketches(agg.Durations))
	b.WriteString(report.Figure2(agg.PerOutlet))
	b.WriteString(report.Figure3Sketches(agg.TimeToAccess))
	b.WriteString(report.Figure4Buckets(agg.Timeline, agg.TimelineMax))
	b.WriteString(report.Figure5("UK/London", agg.MedianRadii(analysis.HintUK)))
	b.WriteString(report.Figure5("US/Pontiac", agg.MedianRadii(analysis.HintUS)))
	b.WriteString(report.Significance(agg.LocationSignificance(streamTestResamples, seed)))
	b.WriteString(report.SystemConfig(agg.ConfigRows()))
	b.WriteString(report.Table2(kw.TopSearched(10), kw.TopCorpus(10)))
	b.WriteString(report.Sophistication(agg.ConfigRows(), agg.LocationSignificance(streamTestResamples, seed)))
	fmt.Fprintf(&b, "drafts=%d\n", len(agg.Drafts))
	return b.String()
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  batch:  %q\n  stream: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(al), len(bl))
}

// TestStreamMatchesBatchReports is the acceptance gate of the
// streaming pipeline: for a fixed seed, streaming and batch modes
// render byte-identical reports at shard counts 1 and 4, and the
// streaming report itself is shard-count invariant.
func TestStreamMatchesBatchReports(t *testing.T) {
	const seed = 77
	reports := map[int]string{}
	for _, shards := range []int{1, 4} {
		exp, err := honeynet.New(streamTestConfig(seed, shards))
		if err != nil {
			t.Fatal(err)
		}
		if err := exp.RunAll(); err != nil {
			t.Fatal(err)
		}
		batch := renderBatchReport(exp, seed)
		stream := renderStreamReport(t, exp, seed)
		if batch != stream {
			t.Fatalf("shards=%d: stream report differs from batch report\n%s", shards, firstDiff(batch, stream))
		}
		if len(stream) == 0 || !strings.Contains(stream, "unique accesses") {
			t.Fatalf("shards=%d: implausible report:\n%s", shards, stream)
		}
		reports[shards] = stream
	}
	if reports[1] != reports[4] {
		t.Fatalf("streaming report changes with shard count\n%s", firstDiff(reports[1], reports[4]))
	}
}

// TestStreamingDisabled: with the legacy flag set, Aggregates errors
// and the dataset path still works.
func TestStreamingDisabled(t *testing.T) {
	cfg := streamTestConfig(5, 2)
	cfg.Duration = 30 * 24 * time.Hour
	cfg.DisableStreaming = true
	exp, err := honeynet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.RunAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Aggregates(); err == nil {
		t.Fatal("Aggregates succeeded with streaming disabled")
	}
	if ds := exp.Dataset(); len(ds.Accesses) == 0 {
		t.Fatal("batch dataset empty")
	}
}
