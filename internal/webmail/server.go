package webmail

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"

	"repro/internal/netsim"
)

// Wire protocol: newline-delimited JSON over TCP. Each request names
// an op; LOGIN binds the connection to a session, after which mailbox
// ops operate on that session. One connection == one browser tab.
//
// The simulation drives the service in-process for speed; cmd/webmaild
// and the live-servers example drive it over this protocol to show the
// platform is a real network service.

// Request is one client command.
type Request struct {
	Op       string `json:"op"`
	Account  string `json:"account,omitempty"`
	Password string `json:"password,omitempty"`
	Cookie   string `json:"cookie,omitempty"`
	// Origin is the claimed client identity; a production service
	// would derive these from the connection. City may be empty for
	// anonymised clients.
	IP        string  `json:"ip,omitempty"`
	City      string  `json:"city,omitempty"`
	Country   string  `json:"country,omitempty"`
	Lat       float64 `json:"lat,omitempty"`
	Lon       float64 `json:"lon,omitempty"`
	Tor       bool    `json:"tor,omitempty"`
	Proxy     bool    `json:"proxy,omitempty"`
	UserAgent string  `json:"user_agent,omitempty"`

	Folder string    `json:"folder,omitempty"`
	ID     MessageID `json:"id,omitempty"`
	// Limit bounds a list response to the newest N messages (0 = the
	// whole folder). Live clients set it so one response cannot grow
	// with mailbox size — part of the serving path's bounded-work
	// contract.
	Limit   int    `json:"limit,omitempty"`
	To      string `json:"to,omitempty"`
	Subject string `json:"subject,omitempty"`
	Body    string `json:"body,omitempty"`
	Query   string `json:"query,omitempty"`
}

// Response is the server's reply.
type Response struct {
	OK       bool      `json:"ok"`
	Error    string    `json:"error,omitempty"`
	Cookie   string    `json:"cookie,omitempty"`
	ID       MessageID `json:"id,omitempty"`
	Messages []Message `json:"messages,omitempty"`
	Message  *Message  `json:"message,omitempty"`
	Accesses []Access  `json:"accesses,omitempty"`
}

// Server exposes a Service over TCP.
type Server struct {
	svc *Service

	mu       sync.Mutex
	listener net.Listener
	conns    map[*srvConn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// srvConn tracks one connection's drain state: whether a request is
// mid-flight, and whether the connection must exit once it isn't.
type srvConn struct {
	net.Conn
	mu            sync.Mutex
	busy          bool
	closeWhenIdle bool
}

// beginRequest marks the connection busy; it reports false when the
// server is draining and the request must not start.
func (c *srvConn) beginRequest() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeWhenIdle {
		return false
	}
	c.busy = true
	return true
}

// endRequest clears the busy mark and reports whether the connection
// should close now that its in-flight request has finished.
func (c *srvConn) endRequest() (quit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = false
	return c.closeWhenIdle
}

// drain flags the connection for shutdown; an idle connection (blocked
// reading the next request) is closed on the spot, a busy one closes
// itself right after writing its in-flight response.
func (c *srvConn) drain() {
	c.mu.Lock()
	idle := !c.busy
	c.closeWhenIdle = true
	c.mu.Unlock()
	if idle {
		c.Close()
	}
}

// NewServer wraps a service.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, conns: make(map[*srvConn]struct{})}
}

// Listen starts accepting connections on addr ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("webmail: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &srvConn{Conn: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(sc)
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and all connections immediately, in-flight
// requests included. Prefer Drain for an orderly shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Drain shuts the server down gracefully: the listener closes first
// (new connections are refused), idle connections drop at once, and
// connections with a request mid-flight finish serving that one
// response before closing. Drain returns once every connection has
// exited, or forces a Close and returns ctx.Err() if the context
// expires first. The graceful-drain contract of the live fleet: a
// SIGTERM'd shard never truncates a response it already accepted.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	// Marking closed first makes the accept loop refuse any connection
	// that slips in between this snapshot and the listener closing —
	// every connection either appears in the snapshot or never serves.
	s.closed = true
	ln := s.listener
	s.listener = nil
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.drain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close the stragglers' sockets so their clients
		// unblock, but do not wg.Wait: a handler stuck inside the
		// service (not on I/O) only exits when that call returns.
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

func (s *Server) serveConn(conn *srvConn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	var session *Session
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or bad frame: drop the connection
		}
		if !conn.beginRequest() {
			return // draining: the request never started, drop it
		}
		resp := s.handle(&session, &req)
		err := enc.Encode(resp)
		if conn.endRequest() || err != nil {
			return
		}
	}
}

// handle executes one request against the bound session.
func (s *Server) handle(session **Session, req *Request) Response {
	fail := func(err error) Response { return Response{Error: err.Error()} }
	if req.Op != "login" && *session == nil {
		return fail(errors.New("webmail: not logged in"))
	}
	switch req.Op {
	case "login":
		ep, err := endpointFromRequest(req)
		if err != nil {
			return fail(err)
		}
		se, err := s.svc.Login(req.Account, req.Password, req.Cookie, ep)
		if err != nil {
			return fail(err)
		}
		*session = se
		return Response{OK: true, Cookie: se.Cookie()}
	case "list":
		msgs, err := (*session).ListN(Folder(req.Folder), req.Limit)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Messages: msgs}
	case "read":
		m, err := (*session).Read(req.ID)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Message: &m}
	case "star":
		if err := (*session).Star(req.ID); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "search":
		msgs, err := (*session).Search(req.Query)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Messages: msgs}
	case "draft":
		id, err := (*session).CreateDraft(req.To, req.Subject, req.Body)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: id}
	case "send":
		id, err := (*session).Send(req.To, req.Subject, req.Body)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ID: id}
	case "chpass":
		if err := (*session).ChangePassword(req.Password); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "activity":
		acc, err := (*session).ActivityPage()
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Accesses: acc}
	case "delete":
		if err := (*session).Delete(req.ID); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	default:
		return fail(fmt.Errorf("webmail: unknown op %q", req.Op))
	}
}

func endpointFromRequest(req *Request) (netsim.Endpoint, error) {
	addr, err := netip.ParseAddr(req.IP)
	if err != nil {
		return netsim.Endpoint{}, fmt.Errorf("webmail: bad ip %q: %w", req.IP, err)
	}
	ep := netsim.Endpoint{
		Addr:      addr,
		City:      req.City,
		Country:   req.Country,
		Tor:       req.Tor,
		Proxy:     req.Proxy,
		UserAgent: req.UserAgent,
	}
	ep.Point.Lat, ep.Point.Lon = req.Lat, req.Lon
	return ep, nil
}

// Client is a minimal wire-protocol client (one connection == one
// browser tab with one cookie).
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a webmail server.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("webmail: dial: %w", err)
	}
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do performs one request/response round trip.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("webmail: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return Response{}, fmt.Errorf("webmail: connection closed: %w", err)
		}
		return Response{}, fmt.Errorf("webmail: recv: %w", err)
	}
	return resp, nil
}

// Login authenticates over the wire using the endpoint's identity.
func (c *Client) Login(account, password, cookie string, ep netsim.Endpoint) (Response, error) {
	return c.Do(Request{
		Op: "login", Account: account, Password: password, Cookie: cookie,
		IP: ep.Addr.String(), City: ep.City, Country: ep.Country,
		Lat: ep.Point.Lat, Lon: ep.Point.Lon,
		Tor: ep.Tor, Proxy: ep.Proxy, UserAgent: ep.UserAgent,
	})
}
