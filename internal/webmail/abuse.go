package webmail

import (
	"fmt"
	"sync"
	"time"
)

// AbuseConfig tunes the platform's outbound-abuse detection. The paper
// reports that Google "suspended a number of accounts under our
// control that attempted to send spam" (§3.4) — 42 of 100 by the end
// of the study (§4.1). The detector models that enforcement: bursts of
// outgoing mail and fan-out to many distinct recipients get an account
// suspended.
type AbuseConfig struct {
	// Window is the sliding window the rates are measured over.
	// Zero selects the default (1 hour).
	Window time.Duration
	// MaxSendsPerWindow suspends an account that sends more messages
	// than this within Window. Zero selects the default (25).
	MaxSendsPerWindow int
	// MaxRecipientsPerWindow suspends on distinct-recipient fan-out.
	// Zero selects the default (20).
	MaxRecipientsPerWindow int
	// Disabled turns enforcement off entirely (for ablations).
	Disabled bool
}

func (c AbuseConfig) withDefaults() AbuseConfig {
	if c.Window <= 0 {
		c.Window = time.Hour
	}
	// Real webmail providers tolerate on the order of a hundred
	// messages per hour before enforcement; the paper's spammers
	// averaged ~100 sends per spamming access (845 sends across 8
	// spammer accesses) before Google's suspensions landed.
	if c.MaxSendsPerWindow <= 0 {
		c.MaxSendsPerWindow = 110
	}
	if c.MaxRecipientsPerWindow <= 0 {
		c.MaxRecipientsPerWindow = 100
	}
	return c
}

// abuseDetector tracks per-account outbound send history.
type abuseDetector struct {
	mu  sync.Mutex
	cfg AbuseConfig
	log map[string][]sendRecord
}

type sendRecord struct {
	at time.Time
	to string
}

func newAbuseDetector(cfg AbuseConfig) *abuseDetector {
	return &abuseDetector{cfg: cfg.withDefaults(), log: make(map[string][]sendRecord)}
}

// recordSend registers one outgoing message and returns a non-empty
// verdict string if the account should be suspended.
func (d *abuseDetector) recordSend(account, to string, at time.Time) string {
	if d.cfg.Disabled {
		return ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	recs := append(d.log[account], sendRecord{at: at, to: to})
	// Trim entries that fell out of the window.
	cutoff := at.Add(-d.cfg.Window)
	start := 0
	for start < len(recs) && recs[start].at.Before(cutoff) {
		start++
	}
	recs = recs[start:]
	d.log[account] = recs

	if len(recs) > d.cfg.MaxSendsPerWindow {
		return fmt.Sprintf("abuse: %d sends within %v", len(recs), d.cfg.Window)
	}
	distinct := make(map[string]bool, len(recs))
	for _, r := range recs {
		distinct[r.to] = true
	}
	if len(distinct) > d.cfg.MaxRecipientsPerWindow {
		return fmt.Sprintf("abuse: %d distinct recipients within %v", len(distinct), d.cfg.Window)
	}
	return ""
}
