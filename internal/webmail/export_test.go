package webmail

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

func exportTestService(t *testing.T) *Service {
	t.Helper()
	return NewService(Config{Clock: simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)), Partitions: 2})
}

// TestExportRestoreRoundTrip: a seeded account exports, restores onto
// another service, and exports identically — flags, folders, and
// searchable text (via Search) included.
func TestExportRestoreRoundTrip(t *testing.T) {
	svc := exportTestService(t)
	if err := svc.CreateAccountIn(1, "kim@x.example", "pw", "Kim Q"); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetSendFrom("kim@x.example", "capture@sinkhole.example"); err != nil {
		t.Fatal(err)
	}
	date := time.Date(2015, 3, 1, 9, 0, 0, 0, time.UTC)
	if _, err := svc.Seed("kim@x.example", FolderInbox, "al@y.example", "kim@x.example", "Budget Draft", "numbers inside", date); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Seed("kim@x.example", FolderSent, "kim@x.example", "al@y.example", "re: budget", "looks fine", date.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	exp, err := svc.ExportAccount("kim@x.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Messages) != 2 || exp.NextID != 3 || exp.SendFrom != "capture@sinkhole.example" {
		t.Fatalf("unexpected export %+v", exp)
	}

	svc2 := exportTestService(t)
	if err := svc2.RestoreAccountIn(0, exp); err != nil {
		t.Fatal(err)
	}
	exp2, err := svc2.ExportAccount("kim@x.example")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exp, exp2) {
		t.Fatalf("restore lost state:\nin:  %+v\nout: %+v", exp, exp2)
	}
	// The restored text serves search case-insensitively.
	sess, err := svc2.Login("kim@x.example", "pw", "c1", netsim.Endpoint{})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := sess.Search("budget")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("search over restored mailbox found %d messages, want 2", len(hits))
	}
	if err := svc2.RestoreAccountIn(0, exp); err != ErrAccountExists {
		t.Fatalf("duplicate restore: got %v, want ErrAccountExists", err)
	}
}

// TestExportRefusesLiveAccounts: an account with any activity is past
// the post-setup boundary and must not export.
func TestExportRefusesLiveAccounts(t *testing.T) {
	svc := exportTestService(t)
	if err := svc.CreateAccountIn(0, "liv@x.example", "pw", "Liv"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Login("liv@x.example", "pw", "c9", netsim.Endpoint{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ExportAccount("liv@x.example"); err == nil {
		t.Fatal("export of an account with journal activity accepted")
	}
	if _, err := svc.ExportAccount("ghost@x.example"); err == nil {
		t.Fatal("export of a missing account accepted")
	}
}

// TestRestoreRejectsMalformedExports: out-of-range ids and duplicate
// ids are refused before any state lands.
func TestRestoreRejectsMalformedExports(t *testing.T) {
	svc := exportTestService(t)
	bad := AccountExport{Address: "b@x.example", NextID: 2,
		Messages: []MessageExport{{ID: 5, Folder: "inbox"}}}
	if err := svc.RestoreAccountIn(0, bad); err == nil {
		t.Fatal("message id beyond NextID accepted")
	}
	dup := AccountExport{Address: "b@x.example", NextID: 3,
		Messages: []MessageExport{{ID: 1, Folder: "inbox"}, {ID: 1, Folder: "sent"}}}
	if err := svc.RestoreAccountIn(0, dup); err == nil {
		t.Fatal("duplicate message id accepted")
	}
	if err := svc.RestoreAccountIn(0, AccountExport{NextID: 1}); err == nil {
		t.Fatal("empty address accepted")
	}
	if err := svc.RestoreAccountIn(7, AccountExport{Address: "c@x.example", NextID: 1}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}
