package webmail

import (
	"fmt"
	"time"
)

// AccountExport is the serializable server-side state of one mailbox
// at the experiment's post-setup boundary: identity, credentials and
// seeded messages. Activity state (access rows, journal, version
// counters) is intentionally absent — the snapshot engine only
// freezes experiments before any simulated activity, and ExportAccount
// refuses to export an account that has already accumulated any.
type AccountExport struct {
	Address  string
	Password string
	Owner    string
	SendFrom string
	NextID   int64
	Messages []MessageExport
}

// MessageExport is one stored mail in neutral form.
type MessageExport struct {
	ID      int64
	Folder  string
	From    string
	To      string
	Subject string
	Body    string
	Date    time.Time
	Read    bool
	Starred bool
	Labels  []string
}

// ExportAccount captures an account's full pre-activity state, with
// messages in ascending ID order (the canonical export order). It
// errors if the account has journal entries, access rows or version
// bumps: such an account is past the boundary this export models, and
// silently dropping its activity would corrupt a resumed run.
func (s *Service) ExportAccount(address string) (AccountExport, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return AccountExport{}, err
	}
	defer p.mu.Unlock()
	if a.journal.len() > 0 || a.acc.len() > 0 || a.suspended ||
		a.version.Load() != 0 || a.accessVersion.Load() != 0 {
		return AccountExport{}, fmt.Errorf("webmail: account %s has live activity; only pre-activity accounts export", address)
	}
	out := AccountExport{
		Address:  a.address,
		Password: a.password,
		Owner:    a.owner,
		SendFrom: a.sendFrom,
		NextID:   int64(a.nextID),
	}
	// Columnar rows are ID-ascending by construction — the canonical
	// export order falls out of a straight scan.
	for i, t := range a.msgs.text {
		if t == nil {
			continue
		}
		out.Messages = append(out.Messages, MessageExport{
			ID: int64(i + 1), Folder: string(a.msgs.folder[i]),
			From: t.from, To: t.to, Subject: t.subject, Body: t.body,
			Date: time.Unix(0, a.msgs.dateNS[i]).UTC(),
			Read: a.msgs.read[i], Starred: a.msgs.starred[i],
			Labels: append([]string(nil), t.labels...),
		})
	}
	return out, nil
}

// RestoreAccountIn recreates an exported account on an explicit
// partition, exactly as a CreateAccountIn + Seed sequence would have
// left it: version counters start at zero and no journal entries
// exist. The export is treated as
// read-only, so one decoded snapshot can seed many experiments
// concurrently (the warm-started scenario matrix does).
func (s *Service) RestoreAccountIn(part int, exp AccountExport) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("webmail: partition %d out of range [0,%d)", part, len(s.parts))
	}
	if exp.Address == "" {
		return fmt.Errorf("webmail: restore of account with empty address")
	}
	a := &account{
		address:  exp.Address,
		password: exp.Password,
		owner:    exp.Owner,
		sendFrom: exp.SendFrom,
		nextID:   MessageID(exp.NextID),
	}
	for _, me := range exp.Messages {
		id := MessageID(me.ID)
		if id <= 0 || id >= a.nextID {
			return fmt.Errorf("webmail: restore %s: message id %d outside [1,%d)", exp.Address, me.ID, exp.NextID)
		}
		t := &msgText{from: me.From, to: me.To, subject: me.Subject, body: me.Body}
		if len(me.Labels) > 0 {
			t.labels = append([]string(nil), me.Labels...)
		}
		if !a.msgs.place(id, Folder(me.Folder), t, me.Date.UnixNano(), me.Read, me.Starred) {
			return fmt.Errorf("webmail: restore %s: duplicate message id %d", exp.Address, me.ID)
		}
	}
	p := s.parts[part]
	// Same lock order as CreateAccountIn: index lock, then partition.
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[exp.Address]; ok {
		return ErrAccountExists
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s.index[exp.Address] = p
	p.accounts[exp.Address] = a
	return nil
}
