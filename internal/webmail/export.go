package webmail

import (
	"fmt"
	"time"
)

// AccountExport is the serializable server-side state of one mailbox
// at the experiment's post-setup boundary: identity, credentials and
// seeded messages. Activity state (access rows, journal, version
// counters) is intentionally absent — the snapshot engine only
// freezes experiments before any simulated activity, and ExportAccount
// refuses to export an account that has already accumulated any.
type AccountExport struct {
	Address  string
	Password string
	Owner    string
	SendFrom string
	NextID   int64
	Messages []MessageExport
}

// MessageExport is one stored mail in neutral form.
type MessageExport struct {
	ID      int64
	Folder  string
	From    string
	To      string
	Subject string
	Body    string
	Date    time.Time
	Read    bool
	Starred bool
	Labels  []string
}

// ExportAccount captures an account's full pre-activity state, with
// messages in ascending ID order (the canonical export order). It
// errors if the account has journal entries, access rows or version
// bumps: such an account is past the boundary this export models, and
// silently dropping its activity would corrupt a resumed run.
func (s *Service) ExportAccount(address string) (AccountExport, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return AccountExport{}, err
	}
	defer p.mu.Unlock()
	if len(a.journal) > 0 || len(a.accesses) > 0 || a.suspended ||
		a.version.Load() != 0 || a.accessVersion.Load() != 0 {
		return AccountExport{}, fmt.Errorf("webmail: account %s has live activity; only pre-activity accounts export", address)
	}
	out := AccountExport{
		Address:  a.address,
		Password: a.password,
		Owner:    a.owner,
		SendFrom: a.sendFrom,
		NextID:   int64(a.nextID),
	}
	ids := make([]MessageID, 0, len(a.messages))
	for id := range a.messages {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort: IDs are near-sequential
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	for _, id := range ids {
		m := a.messages[id]
		out.Messages = append(out.Messages, MessageExport{
			ID: int64(m.ID), Folder: string(m.Folder),
			From: m.From, To: m.To, Subject: m.Subject, Body: m.Body,
			Date: m.Date, Read: m.Read, Starred: m.Starred,
			Labels: append([]string(nil), m.Labels...),
		})
	}
	return out, nil
}

// RestoreAccountIn recreates an exported account on an explicit
// partition, exactly as a CreateAccountIn + Seed sequence would have
// left it: search haystacks are re-baked, version counters start at
// zero, and no journal entries exist. The export is treated as
// read-only, so one decoded snapshot can seed many experiments
// concurrently (the warm-started scenario matrix does).
func (s *Service) RestoreAccountIn(part int, exp AccountExport) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("webmail: partition %d out of range [0,%d)", part, len(s.parts))
	}
	if exp.Address == "" {
		return fmt.Errorf("webmail: restore of account with empty address")
	}
	a := &account{
		address:  exp.Address,
		password: exp.Password,
		owner:    exp.Owner,
		sendFrom: exp.SendFrom,
		nextID:   MessageID(exp.NextID),
		messages: make(map[MessageID]*Message, len(exp.Messages)),
		accesses: make(map[string]*Access),
	}
	for _, me := range exp.Messages {
		id := MessageID(me.ID)
		if id <= 0 || id >= a.nextID {
			return fmt.Errorf("webmail: restore %s: message id %d outside [1,%d)", exp.Address, me.ID, exp.NextID)
		}
		if _, dup := a.messages[id]; dup {
			return fmt.Errorf("webmail: restore %s: duplicate message id %d", exp.Address, me.ID)
		}
		m := &Message{
			ID: id, Folder: Folder(me.Folder),
			From: me.From, To: me.To, Subject: me.Subject, Body: me.Body,
			Date: me.Date, Read: me.Read, Starred: me.Starred,
		}
		if len(me.Labels) > 0 {
			m.Labels = append([]string(nil), me.Labels...)
		}
		// The search haystack bakes lazily on first search (see
		// matchTerms): restoring a fleet of mailboxes from a snapshot
		// must not pay a ToLower over every byte of seeded text that
		// may never be searched.
		a.messages[id] = m
	}
	p := s.parts[part]
	// Same lock order as CreateAccountIn: index lock, then partition.
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[exp.Address]; ok {
		return ErrAccountExists
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s.index[exp.Address] = p
	p.accounts[exp.Address] = a
	return nil
}
