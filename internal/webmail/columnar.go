package webmail

import (
	"strings"
	"time"

	"repro/internal/colstore"
	"repro/internal/netsim"
)

// This file holds the struct-of-arrays storage behind the per-account
// hot state. The service's public API is unchanged — Session and
// Service still traffic in Access, Message and Event values — but
// internally each account keeps its access rows, message metadata and
// journal as parallel typed columns instead of slices of heap-boxed
// structs. A million-account fleet then carries one slice header per
// column instead of one GC-traced object per row, and every string
// field (cookies, user agents, geo names) lives in the owning
// partition's arena-backed string table.

// accessTable is the columnar activity page: row i describes one
// cookie's access row. order is the permutation sorted by
// (firstNS, cookie) — the page's display order; the clock is
// monotonic, so new rows tail-insert with at most a few swaps inside
// a same-instant tie block.
type accessTable struct {
	cookie   []string
	firstNS  []int64
	lastNS   []int64
	ip       []string
	city     []string
	country  []string
	lat      []float64
	lon      []float64
	hasPoint []bool
	ua       []string
	browser  []netsim.Browser
	device   []netsim.DeviceClass
	visits   []int32
	rev      []uint64

	byCookie map[string]int32
	order    []int32
}

func (t *accessTable) len() int { return len(t.cookie) }

func (t *accessTable) lookup(cookie string) (int32, bool) {
	i, ok := t.byCookie[cookie]
	return i, ok
}

// add appends a new access row, interning its strings into the
// partition's table, and splices it into display order. The cookie is
// unique by construction so it takes the no-dedup arena path; user
// agents and geo names deduplicate across the whole partition.
func (t *accessTable) add(sym *colstore.Interner, cookie string, firstNS int64, ep netsim.Endpoint, browser netsim.Browser, device netsim.DeviceClass) int32 {
	i := int32(len(t.cookie))
	t.cookie = append(t.cookie, sym.Copy(cookie))
	t.firstNS = append(t.firstNS, firstNS)
	t.lastNS = append(t.lastNS, firstNS)
	t.ip = append(t.ip, sym.Intern(ep.Addr.String()))
	t.city = append(t.city, sym.Intern(ep.City))
	t.country = append(t.country, sym.Intern(ep.Country))
	t.lat = append(t.lat, ep.Point.Lat)
	t.lon = append(t.lon, ep.Point.Lon)
	t.hasPoint = append(t.hasPoint, ep.HasLocation())
	t.ua = append(t.ua, sym.Intern(ep.UserAgent))
	t.browser = append(t.browser, browser)
	t.device = append(t.device, device)
	t.visits = append(t.visits, 0)
	t.rev = append(t.rev, 0)
	if t.byCookie == nil {
		t.byCookie = make(map[string]int32)
	}
	t.byCookie[t.cookie[i]] = i

	// Tail insert into display order; ties on firstNS order by cookie.
	t.order = append(t.order, i)
	for j := len(t.order) - 1; j > 0; j-- {
		p := t.order[j-1]
		if t.firstNS[p] < firstNS ||
			(t.firstNS[p] == firstNS && t.cookie[p] < t.cookie[i]) {
			break
		}
		t.order[j-1], t.order[j] = t.order[j], t.order[j-1]
	}
	return i
}

// materialize rebuilds the public Access value for row i. Times are
// reconstructed with time.Unix(0, ns).UTC(), the same canonical
// representation the simulation clock produces, so struct equality
// against clock-stamped values (the monitor's delta diff relies on
// it) is preserved.
func (t *accessTable) materialize(i int32) Access {
	return Access{
		Cookie:    t.cookie[i],
		First:     time.Unix(0, t.firstNS[i]).UTC(),
		Last:      time.Unix(0, t.lastNS[i]).UTC(),
		IP:        t.ip[i],
		City:      t.city[i],
		Country:   t.country[i],
		Lat:       t.lat[i],
		Lon:       t.lon[i],
		HasPoint:  t.hasPoint[i],
		UserAgent: t.ua[i],
		Browser:   t.browser[i],
		Device:    t.device[i],
		Visits:    int(t.visits[i]),
		rev:       t.rev[i],
	}
}

// msgText is the out-of-line payload of one message: the string
// fields search and listing need, kept behind one pointer so the
// per-message metadata columns stay compact for snapshot/count scans
// that never touch text.
type msgText struct {
	from, to, subject, body string
	labels                  []string
}

// matchTerms reports whether the message matches every pre-lowered,
// whitespace-free term (Search feeds it strings.Fields output).
//
// The scan folds case on the fly instead of caching a lowered copy of
// subject+body: the old lazily-baked haystacks were a second ~190MB
// of retained heap at scale=100, kept alive only to make repeat
// searches marginally cheaper. ASCII text — the entire embedded
// corpus — matches allocation-free; anything else falls back to a
// transient strings.ToLower of the exact haystack the cache used to
// hold, so match results are byte-identical either way. Terms contain
// no whitespace, so a match can never span the subject/body joiner
// and the two fields can be scanned independently.
func (t *msgText) matchTerms(terms []string) bool {
	if len(terms) == 0 {
		return false
	}
	ascii := isASCII(t.subject) && isASCII(t.body)
	hay := "" // transient Unicode fallback, built at most once
	for _, term := range terms {
		if ascii && isASCII(term) {
			if !asciiContainsFold(t.subject, term) && !asciiContainsFold(t.body, term) {
				return false
			}
			continue
		}
		if hay == "" {
			hay = strings.ToLower(t.subject + "\n" + t.body)
		}
		if !strings.Contains(hay, term) {
			return false
		}
	}
	return true
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

func lowerASCIIByte(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		c += 'a' - 'A'
	}
	return c
}

// asciiContainsFold is strings.Contains(strings.ToLower(s), term) for
// ASCII s and already-lowercase ASCII term, without the allocation.
func asciiContainsFold(s, term string) bool {
	n := len(term)
	if n == 0 {
		return true
	}
	c0 := term[0]
	for i := 0; i+n <= len(s); i++ {
		if lowerASCIIByte(s[i]) != c0 {
			continue
		}
		j := 1
		for j < n && lowerASCIIByte(s[i+j]) == term[j] {
			j++
		}
		if j == n {
			return true
		}
	}
	return false
}

// msgStore is the columnar mailbox: row i holds MessageID(i+1).
// A nil text marks a vacated row (a draft deleted by SendDraft);
// message IDs are never reused, so the dense layout gives ascending-ID
// iteration for free — Snapshot and ExportAccount no longer sort.
type msgStore struct {
	folder  []Folder
	read    []bool
	starred []bool
	dateNS  []int64
	text    []*msgText
}

func (ms *msgStore) rows() int { return len(ms.text) }

// index maps a message ID to its row, or -1 when absent/vacated.
func (ms *msgStore) index(id MessageID) int {
	i := int(id) - 1
	if i < 0 || i >= len(ms.text) || ms.text[i] == nil {
		return -1
	}
	return i
}

// append adds the next sequential message (id == rows()+1, the hot
// path for Seed/Send/Deliver) and returns its row.
func (ms *msgStore) append(folder Folder, text *msgText, dateNS int64, read bool) int {
	i := len(ms.text)
	ms.folder = append(ms.folder, folder)
	ms.read = append(ms.read, read)
	ms.starred = append(ms.starred, false)
	ms.dateNS = append(ms.dateNS, dateNS)
	ms.text = append(ms.text, text)
	return i
}

// place installs a message at an arbitrary ID (snapshot restore),
// padding any gap with vacated rows. Reports false when the slot is
// already occupied.
func (ms *msgStore) place(id MessageID, folder Folder, text *msgText, dateNS int64, read, starred bool) bool {
	i := int(id) - 1
	for len(ms.text) <= i {
		ms.append("", nil, 0, false)
	}
	if ms.text[i] != nil {
		return false
	}
	ms.folder[i] = folder
	ms.read[i] = read
	ms.starred[i] = starred
	ms.dateNS[i] = dateNS
	ms.text[i] = text
	return true
}

// vacate removes a message (draft sent away). The row stays as a
// tombstone so later IDs keep their positions.
func (ms *msgStore) vacate(i int) {
	ms.text[i] = nil
	ms.folder[i] = ""
	ms.read[i] = false
	ms.starred[i] = false
	ms.dateNS[i] = 0
}

// materialize rebuilds the public Message value for row i.
func (ms *msgStore) materialize(i int) Message {
	t := ms.text[i]
	m := Message{
		ID:      MessageID(i + 1),
		Folder:  ms.folder[i],
		From:    t.from,
		To:      t.to,
		Subject: t.subject,
		Body:    t.body,
		Date:    time.Unix(0, ms.dateNS[i]).UTC(),
		Read:    ms.read[i],
		Starred: ms.starred[i],
	}
	if len(t.labels) > 0 {
		m.Labels = append([]string(nil), t.labels...)
	}
	return m
}

// journalTable is the columnar ground-truth journal. The account
// column is implicit (every entry belongs to the owning account) and
// times are bare nanoseconds — an Event row costs 8+8+16+8+16 bytes
// of column data instead of a 120-byte boxed struct.
type journalTable struct {
	timeNS  []int64
	kind    []EventKind
	cookie  []string
	message []MessageID
	detail  []string
}

func (j *journalTable) len() int { return len(j.kind) }

// append records one event; the cookie is interned (the same handful
// of cookies repeats across thousands of events).
func (j *journalTable) append(sym *colstore.Interner, e Event) {
	j.timeNS = append(j.timeNS, e.Time.UnixNano())
	j.kind = append(j.kind, e.Kind)
	j.cookie = append(j.cookie, sym.Intern(e.Cookie))
	j.message = append(j.message, e.Message)
	j.detail = append(j.detail, e.Detail)
}

// materialize rebuilds the public Event value for row i.
func (j *journalTable) materialize(i int, account string) Event {
	return Event{
		Time:    time.Unix(0, j.timeNS[i]).UTC(),
		Kind:    j.kind[i],
		Account: account,
		Cookie:  j.cookie[i],
		Message: j.message[i],
		Detail:  j.detail[i],
	}
}
