// Package webmail implements the webmail platform the honey accounts
// live on — the simulation's stand-in for Gmail.
//
// The paper's methodology depends on a small set of webmail behaviours
// (§2, §3.1): folders (inbox, sent, drafts), unread/starred flags,
// keyword search, drafts that persist until sent, a per-browser cookie
// identity for each access, an account activity page exposing the
// login city and a device fingerprint, password changes that lock out
// other parties, a per-account send-from override (used to divert all
// honey mail to the researchers' sinkhole), and platform-side abuse
// detection that suspends accounts which misbehave (42 of the 100
// honey accounts were blocked by Google during the study, §4.1).
// This package implements all of them behind an in-process API plus a
// TCP JSON-line protocol (see server.go) so the same service can be
// driven over a real socket.
package webmail

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
)

// Folder names a mailbox folder.
type Folder string

// The standard folders.
const (
	FolderInbox  Folder = "inbox"
	FolderSent   Folder = "sent"
	FolderDrafts Folder = "drafts"
	FolderTrash  Folder = "trash"
)

// MessageID identifies a message within one account.
type MessageID int64

// Message is a stored email as the API presents it. Internally the
// service keeps messages as parallel columns (see columnar.go); this
// struct is materialized on demand, so callers can never mutate
// stored state through it. Search folds case on the fly over the
// columnar text payload (msgText.matchTerms); no lowered copy of the
// text is ever retained.
type Message struct {
	ID      MessageID
	Folder  Folder
	From    string
	To      string
	Subject string
	Body    string
	Date    time.Time
	Read    bool
	Starred bool
	Labels  []string
}

// EventKind enumerates the account activity the platform journals.
// The journal is ground truth used by tests and ablations; the paper's
// monitoring pipeline only sees what the Apps-Script scans and the
// activity page expose.
type EventKind int

const (
	EventLogin EventKind = iota
	EventRead
	EventStar
	EventSend
	EventDraftCreate
	EventDraftUpdate
	EventSearch
	EventPasswordChange
	EventSuspend
	EventLoginBlocked
)

// String returns the event label used in logs.
func (k EventKind) String() string {
	switch k {
	case EventLogin:
		return "login"
	case EventRead:
		return "read"
	case EventStar:
		return "star"
	case EventSend:
		return "send"
	case EventDraftCreate:
		return "draft-create"
	case EventDraftUpdate:
		return "draft-update"
	case EventSearch:
		return "search"
	case EventPasswordChange:
		return "password-change"
	case EventSuspend:
		return "suspend"
	case EventLoginBlocked:
		return "login-blocked"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one ground-truth journal entry.
type Event struct {
	Time    time.Time
	Kind    EventKind
	Account string
	Cookie  string
	Message MessageID // 0 when not message-related
	Detail  string    // search query, recipient, etc.
}

// Access is one row of the account activity page: everything Google
// exposes about a browser (cookie) that touched the account (§3.1,
// §4.3–4.5).
type Access struct {
	Cookie    string
	First     time.Time // t0: first time this cookie was observed
	Last      time.Time // tlast: last time this cookie was observed
	IP        string
	City      string // "" for Tor exits / anonymous proxies
	Country   string
	Lat, Lon  float64
	HasPoint  bool // false when geolocation failed
	UserAgent string
	Browser   netsim.Browser
	Device    netsim.DeviceClass
	Visits    int // number of distinct logins with this cookie

	// rev is the account's accessVersion when this row last changed.
	// The cursor-based activity-page scrape (Session.ActivityPageSince)
	// uses it to return only the rows a poller has not seen yet.
	rev uint64
}

// Errors returned by the service.
var (
	ErrNoSuchAccount  = errors.New("webmail: no such account")
	ErrBadPassword    = errors.New("webmail: invalid credentials")
	ErrSuspended      = errors.New("webmail: account suspended")
	ErrLoginBlocked   = errors.New("webmail: login blocked by risk analysis")
	ErrNoSuchMessage  = errors.New("webmail: no such message")
	ErrSessionExpired = errors.New("webmail: session invalidated")
	ErrNotADraft      = errors.New("webmail: message is not a draft")
	ErrAccountExists  = errors.New("webmail: account already exists")
)

// Outbound delivers mail leaving the platform. The honeynet wires
// this to the sinkhole server so no honey mail escapes (§3.1: the
// modified mailserver "simply dumps the emails to disk and does not
// forward them").
type Outbound interface {
	Deliver(from, to, subject, body string, at time.Time) error
}

// OutboundFunc adapts a function to the Outbound interface.
type OutboundFunc func(from, to, subject, body string, at time.Time) error

// Deliver implements Outbound.
func (f OutboundFunc) Deliver(from, to, subject, body string, at time.Time) error {
	return f(from, to, subject, body, at)
}

// DiscardOutbound drops all mail (a null sinkhole).
var DiscardOutbound = OutboundFunc(func(string, string, string, string, time.Time) error { return nil })
