package webmail

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// dirtyFixture builds a service with one account and a way to mint
// endpoints and advance time.
type dirtyFixture struct {
	clock *simtime.Clock
	svc   *Service
	space *netsim.AddressSpace
}

func newDirtyFixture(t *testing.T) *dirtyFixture {
	t.Helper()
	clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
	svc := NewService(Config{Clock: clock})
	if err := svc.CreateAccount("d@honeymail.example", "pw", "Dirty"); err != nil {
		t.Fatal(err)
	}
	return &dirtyFixture{clock: clock, svc: svc, space: netsim.NewAddressSpace(rng.New(9), geo.Default())}
}

func (f *dirtyFixture) login(t *testing.T, city, cookie string) *Session {
	t.Helper()
	ep, err := f.space.FromCity(city)
	if err != nil {
		t.Fatal(err)
	}
	se, err := f.svc.Login("d@honeymail.example", "pw", cookie, ep)
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func (f *dirtyFixture) advance(d time.Duration) {
	simtime.NewScheduler(f.clock).RunUntil(f.clock.Now().Add(d))
}

// AccessVersion must move on exactly the events a scraper could
// observe: row creation, row update (tlast), password change,
// suspension — and must NOT move on pure mailbox events.
func TestAccessVersionBumpsOnScraperVisibleEvents(t *testing.T) {
	f := newDirtyFixture(t)
	const acct = "d@honeymail.example"
	v0 := f.svc.AccessVersion(acct)
	if v0 != 0 {
		t.Fatalf("fresh account access version = %d", v0)
	}

	// Mailbox-only events leave it untouched.
	if _, err := f.svc.Seed(acct, FolderInbox, "a@x", acct, "s", "b", f.clock.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.DeliverInbound(acct, "b@x", "s2", "b2"); err != nil {
		t.Fatal(err)
	}
	if got := f.svc.AccessVersion(acct); got != 0 {
		t.Fatalf("mailbox events bumped access version to %d", got)
	}
	if got := f.svc.Version(acct); got == 0 {
		t.Fatal("DeliverInbound did not bump the mailbox version")
	}

	// A login (new row) bumps.
	se := f.login(t, "Oslo", "")
	v1 := f.svc.AccessVersion(acct)
	if v1 == 0 {
		t.Fatal("login did not bump access version")
	}

	// A later session operation advances tlast — scraper-visible.
	f.advance(time.Hour)
	if _, err := se.List(FolderInbox); err != nil {
		t.Fatal(err)
	}
	v2 := f.svc.AccessVersion(acct)
	if v2 <= v1 {
		t.Fatalf("tlast advance did not bump: %d -> %d", v1, v2)
	}

	// A password change bumps even though no row changes.
	f.advance(time.Hour)
	if err := se.ChangePassword("owned"); err != nil {
		t.Fatal(err)
	}
	v3 := f.svc.AccessVersion(acct)
	if v3 <= v2 {
		t.Fatalf("password change did not bump: %d -> %d", v2, v3)
	}

	// A suspension bumps too.
	if err := f.svc.Suspend(acct, "abuse"); err != nil {
		t.Fatal(err)
	}
	if v4 := f.svc.AccessVersion(acct); v4 <= v3 {
		t.Fatalf("suspension did not bump: %d -> %d", v3, v4)
	}
}

// The probe mirrors the service accessors without locking.
func TestVersionProbe(t *testing.T) {
	f := newDirtyFixture(t)
	probe, err := f.svc.Probe("d@honeymail.example")
	if err != nil {
		t.Fatal(err)
	}
	if !probe.Valid() {
		t.Fatal("probe invalid")
	}
	if _, err := f.svc.Probe("ghost@x"); err == nil {
		t.Fatal("probe for missing account succeeded")
	}
	f.login(t, "Oslo", "")
	if probe.AccessVersion() != f.svc.AccessVersion("d@honeymail.example") {
		t.Fatal("probe access version diverges from service")
	}
	if _, err := f.svc.DeliverInbound("d@honeymail.example", "b@x", "s", "b"); err != nil {
		t.Fatal(err)
	}
	if probe.MailboxVersion() != f.svc.Version("d@honeymail.example") {
		t.Fatal("probe mailbox version diverges from service")
	}
	if (VersionProbe{}).Valid() {
		t.Fatal("zero probe claims validity")
	}
}

// ActivityPageSince returns exactly the rows changed after the cursor,
// in page order, and its version chains into the next call's cursor.
func TestActivityPageSinceDeltas(t *testing.T) {
	f := newDirtyFixture(t)
	seA := f.login(t, "Oslo", "cookie-a")
	f.advance(time.Hour)
	f.login(t, "Lima", "cookie-b")

	full, v1, err := seA.ActivityPageSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 2 || full[0].Cookie != "cookie-a" || full[1].Cookie != "cookie-b" {
		t.Fatalf("full page = %+v", full)
	}

	// Nothing changed: the delta is empty and the version is stable.
	delta, v2, err := seA.ActivityPageSince(v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 0 || v2 != v1 {
		t.Fatalf("quiet delta = %d rows, version %d -> %d", len(delta), v1, v2)
	}

	// A third browser appears. The delta carries its row plus the
	// calling session's own row (its tlast advanced with the clock) —
	// exactly the self-row the monitor filters by cookie.
	f.advance(time.Hour)
	f.login(t, "Kyiv", "cookie-c")
	delta, v3, err := seA.ActivityPageSince(v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 2 || delta[0].Cookie != "cookie-a" || delta[1].Cookie != "cookie-c" {
		t.Fatalf("delta after new login = %+v", delta)
	}
	if v3 <= v1 {
		t.Fatalf("version did not advance: %d -> %d", v1, v3)
	}
	// The returned version covers the caller's own bump: with no new
	// activity and no time passing, the next delta is empty.
	delta, _, err = seA.ActivityPageSince(v3)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 0 {
		t.Fatalf("immediate re-scrape delta = %+v", delta)
	}

	// An old cookie returning updates its existing row in place: the
	// delta carries the refreshed row, not a duplicate.
	f.advance(time.Hour)
	f.login(t, "Lima", "cookie-b")
	delta, _, err = seA.ActivityPageSince(v3)
	if err != nil {
		t.Fatal(err)
	}
	var other []Access
	for _, r := range delta {
		if r.Cookie != "cookie-a" { // drop the caller's self-row
			other = append(other, r)
		}
	}
	if len(other) != 1 || other[0].Cookie != "cookie-b" || other[0].Visits != 2 {
		t.Fatalf("returning-cookie delta = %+v", delta)
	}
}

// The insertion-sorted page matches the documented (First, Cookie)
// order, including same-instant ties.
func TestActivityPageOrderWithTies(t *testing.T) {
	f := newDirtyFixture(t)
	// Three logins at the same instant with descending cookie names.
	f.login(t, "Oslo", "z-cookie")
	f.login(t, "Lima", "a-cookie")
	f.login(t, "Kyiv", "m-cookie")
	f.advance(time.Hour)
	f.login(t, "Cairo", "b-cookie")
	page, err := f.svc.ActivityPage("d@honeymail.example")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a-cookie", "m-cookie", "z-cookie", "b-cookie"}
	if len(page) != len(want) {
		t.Fatalf("page = %d rows", len(page))
	}
	for i, w := range want {
		if page[i].Cookie != w {
			t.Fatalf("page[%d] = %s, want %s (ties sort by cookie, later First after)", i, page[i].Cookie, w)
		}
	}
}

// Search matches case-insensitively through the on-the-fly fold
// scan, including after edits rewrite a draft's content.
func TestSearchHaystackStaysFresh(t *testing.T) {
	f := newDirtyFixture(t)
	const acct = "d@honeymail.example"
	if _, err := f.svc.Seed(acct, FolderInbox, "a@x", acct, "Wire TRANSFER", "Payment Details", f.clock.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.DeliverInbound(acct, "b@x", "Quota NOTICE", "too much COMPUTER time"); err != nil {
		t.Fatal(err)
	}
	se := f.login(t, "Oslo", "")
	for _, q := range []string{"wire transfer", "WIRE", "payment details", "computer TIME"} {
		hits, err := se.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != 1 {
			t.Fatalf("search %q = %d hits, want 1", q, len(hits))
		}
	}
	id, err := se.CreateDraft("v@x", "Ransom", "send BITCOIN now")
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := se.Search("bitcoin"); len(hits) != 1 {
		t.Fatalf("draft not searchable: %d hits", len(hits))
	}
	if err := se.UpdateDraft(id, "v@x", "Ransom", "send MONERO now"); err != nil {
		t.Fatal(err)
	}
	if hits, _ := se.Search("bitcoin"); len(hits) != 0 {
		t.Fatal("stale text: old draft body still matches")
	}
	if hits, _ := se.Search("monero"); len(hits) != 1 {
		t.Fatal("edited draft body not searchable")
	}
}
