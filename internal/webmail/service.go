package webmail

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// account is the server-side state of one mailbox.
type account struct {
	address   string
	password  string
	owner     string // display name
	suspended bool

	nextID MessageID
	// msgs holds message state as parallel columns (see columnar.go);
	// row i is MessageID(i+1), so iteration is ID-ascending for free.
	msgs msgStore

	// sendFrom, when set, overrides the envelope sender of outgoing
	// mail. The honeynet points it at the sinkhole domain so replies
	// and bounces never reach real parties (§3.1).
	sendFrom string

	// acc holds the activity page as parallel columns in display
	// order (First, then Cookie); strings live in the partition's
	// arena-backed table.
	acc     accessTable
	journal journalTable

	passwordChanges int
	searchLog       []string

	// version increments on every mailbox state change; pollers (the
	// Apps-Script scan trigger) use it to skip diffing quiet accounts.
	// Atomic so VersionProbe reads race-free without the partition
	// lock; writes happen under it.
	version atomic.Uint64

	// accessVersion increments on every change an activity-page
	// scraper could observe: a new or updated access row, a password
	// change, a suspension. The monitor's version gate compares it
	// against a per-account cursor to skip the Login+ActivityPage
	// round trip on quiet accounts — password changes and suspensions
	// bump it precisely so the gate never delays their detection.
	accessVersion atomic.Uint64

	homeLat, homeLon float64
	homeKnown        bool
}

// bumpAccessLocked advances the scraper-visible change counter and
// stamps the changed row (-1 for row-less events: password change,
// suspension). Callers hold the owning partition's lock.
func (a *account) bumpAccessLocked(row int32) {
	v := a.accessVersion.Add(1)
	if row >= 0 {
		a.acc.rev[row] = v
	}
}

// partition is one shard of the account store: its own lock, its own
// account map, and its own time/outbound bindings. Accounts in
// different partitions never contend on a mutex, which is what lets
// the sharded experiment engine drive disjoint account populations
// from parallel schedulers against a single Service.
type partition struct {
	id int

	mu       sync.Mutex
	accounts map[string]*account

	// sym is the partition's arena-backed string table: cookies, user
	// agents, IPs and geo names across every account in the partition
	// share it. Guarded by mu.
	sym colstore.Interner

	// now supplies virtual time for this partition's accounts. In a
	// sharded experiment every partition is bound to its shard's
	// clock; single-partition services use the service clock.
	now func() time.Time
	// outbound receives this partition's sent mail.
	outbound Outbound
}

// Config parameterises a Service.
type Config struct {
	// Clock supplies virtual time; required.
	Clock *simtime.Clock
	// Outbound receives all sent mail; defaults to DiscardOutbound.
	Outbound Outbound
	// Abuse configures the platform's abuse detection. Zero value
	// enables defaults; see AbuseConfig.
	Abuse AbuseConfig
	// LoginRisk, when enabled, blocks suspicious logins the way
	// Google's filters would. The paper had these filters DISABLED on
	// honey accounts (§3.4); the ablation bench turns them on.
	LoginRisk LoginRiskConfig
	// Partitions splits the account store into this many
	// independently locked shards (default 1). Accounts placed in
	// different partitions never contend; each partition can be bound
	// to its own clock and outbound sink via ConfigurePartition.
	Partitions int
}

// Service is the webmail platform. It is safe for concurrent use.
// Internally the account store is split into partitions (see Config.
// Partitions): the service-level lock only guards the address index,
// which is read-mostly, while all per-account state sits behind the
// owning partition's lock.
type Service struct {
	abuse *abuseDetector
	risk  LoginRiskConfig
	jar   *netsim.CookieJar

	mu    sync.RWMutex // guards index; partitions are fixed at construction
	index map[string]*partition
	parts []*partition

	obsMu     sync.RWMutex
	observers []func(Event)
	notifyMu  sync.Mutex // serializes observer invocation across partitions
}

// NewService creates an empty platform.
func NewService(cfg Config) *Service {
	if cfg.Clock == nil {
		panic("webmail: Config.Clock is required")
	}
	out := cfg.Outbound
	if out == nil {
		out = DiscardOutbound
	}
	n := cfg.Partitions
	if n <= 0 {
		n = 1
	}
	s := &Service{
		abuse: newAbuseDetector(cfg.Abuse),
		risk:  cfg.LoginRisk,
		jar:   netsim.NewCookieJar(),
		index: make(map[string]*partition),
		parts: make([]*partition, n),
	}
	for i := range s.parts {
		s.parts[i] = &partition{
			id:       i,
			accounts: make(map[string]*account),
			now:      cfg.Clock.Now,
			outbound: out,
		}
	}
	return s
}

// Partitions returns the number of account-store shards.
func (s *Service) Partitions() int { return len(s.parts) }

// ConfigurePartition rebinds one partition's clock and outbound sink.
// The sharded experiment engine calls it once per shard, before any
// account in the partition is exercised; now and outbound may be nil
// to keep the current binding.
func (s *Service) ConfigurePartition(i int, now func() time.Time, outbound Outbound) error {
	if i < 0 || i >= len(s.parts) {
		return fmt.Errorf("webmail: partition %d out of range [0,%d)", i, len(s.parts))
	}
	p := s.parts[i]
	p.mu.Lock()
	defer p.mu.Unlock()
	if now != nil {
		p.now = now
	}
	if outbound != nil {
		p.outbound = outbound
	}
	return nil
}

// PartitionIndex hashes an address onto one of n partitions (FNV-1a).
// It is THE fleet-wide placement function: the in-process service, the
// live-fleet router, the per-shard snapshot boot and the load
// generator's client-side routing all call it, so an account lands on
// the same shard whichever layer asks.
func PartitionIndex(address string, n int) int {
	h := uint64(1469598103934665603)
	for i := 0; i < len(address); i++ {
		h ^= uint64(address[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// partitionFor hashes an address onto a partition, the default
// placement for accounts created without an explicit shard.
func (s *Service) partitionFor(address string) int {
	return PartitionIndex(address, len(s.parts))
}

// lookup resolves an address to its partition without touching any
// partition lock.
func (s *Service) lookup(address string) (*partition, bool) {
	s.mu.RLock()
	p, ok := s.index[address]
	s.mu.RUnlock()
	return p, ok
}

// acquire resolves and locks the partition owning an address. Callers
// must p.mu.Unlock() when done.
func (s *Service) acquire(address string) (*partition, *account, error) {
	p, ok := s.lookup(address)
	if !ok {
		return nil, nil, ErrNoSuchAccount
	}
	p.mu.Lock()
	a, ok := p.accounts[address]
	if !ok {
		p.mu.Unlock()
		return nil, nil, ErrNoSuchAccount
	}
	return p, a, nil
}

// Observe registers a callback invoked for every journal event. Used
// by tests and by ground-truth collectors; the paper-faithful
// monitoring pipeline does NOT use it. Callbacks are serialized even
// when events originate on different partitions concurrently, so
// observers need no locking of their own — but they run under the
// event's partition lock and MUST NOT call back into the Service
// (true of the pre-sharding design as well, which invoked observers
// under the global service lock).
func (s *Service) Observe(fn func(Event)) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.observers = append(s.observers, fn)
}

// CreateAccount registers a mailbox, placing it on a hash-selected
// partition.
func (s *Service) CreateAccount(address, password, ownerName string) error {
	return s.CreateAccountIn(s.partitionFor(address), address, password, ownerName)
}

// CreateAccountIn registers a mailbox on an explicit partition. The
// sharded experiment engine uses it to co-locate each shard's
// accounts so parallel shards never share an account-store lock.
func (s *Service) CreateAccountIn(part int, address, password, ownerName string) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("webmail: partition %d out of range [0,%d)", part, len(s.parts))
	}
	p := s.parts[part]
	// Insert into the partition before the index entry becomes
	// visible (lock order s.mu -> p.mu, used nowhere else), so a
	// concurrent acquire() never finds an indexed-but-absent account.
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[address]; ok {
		return ErrAccountExists
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s.index[address] = p
	p.accounts[address] = &account{
		address:  address,
		password: password,
		owner:    ownerName,
		nextID:   1,
	}
	return nil
}

// PartitionOf reports which partition holds an address (-1 if the
// account does not exist).
func (s *Service) PartitionOf(address string) int {
	p, ok := s.lookup(address)
	if !ok {
		return -1
	}
	return p.id
}

// SetSendFrom sets the account's outgoing envelope-sender override.
func (s *Service) SetSendFrom(address, sendFrom string) error {
	p, a, err := s.acquire(address)
	if err != nil {
		return err
	}
	defer p.mu.Unlock()
	a.sendFrom = sendFrom
	return nil
}

// Seed stores a message directly into a folder without journaling —
// used to populate honey mailboxes before the leak (§3.2).
func (s *Service) Seed(address string, folder Folder, from, to, subject, body string, date time.Time) (MessageID, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return 0, err
	}
	defer p.mu.Unlock()
	id := a.nextID
	a.nextID++
	a.msgs.append(folder, &msgText{from: from, to: to, subject: subject, body: body},
		date.UnixNano(), folder == FolderSent) // own sent mail is "read"
	return id, nil
}

// MessageText returns the stored subject and body columns of one
// message without copying: the returned strings alias the store, so
// reading N messages costs N lock round-trips and zero allocations.
// ok is false for unknown accounts, unknown ids and vacated rows. The
// analysis layer's lazy contents view reads seeded mail through this
// instead of keeping a per-experiment duplicate of every message.
func (s *Service) MessageText(address string, id MessageID) (subject, body string, ok bool) {
	p, a, err := s.acquire(address)
	if err != nil {
		return "", "", false
	}
	defer p.mu.Unlock()
	i := a.msgs.index(id)
	if i < 0 {
		return "", "", false
	}
	t := a.msgs.text[i]
	return t.subject, t.body, true
}

// EachMessageText visits messages 1..maxID of one mailbox in ID order
// under a single partition-lock acquisition, passing the stored
// subject and body columns without copying — the bulk form of
// MessageText for corpus-wide scans (TF-IDF's "all seeded mail"
// document). Vacated rows are skipped. fn runs under the partition
// lock and must not call back into the Service.
func (s *Service) EachMessageText(address string, maxID int64, fn func(id int64, subject, body string)) {
	p, a, err := s.acquire(address)
	if err != nil {
		return
	}
	defer p.mu.Unlock()
	n := len(a.msgs.text)
	if maxID < int64(n) {
		n = int(maxID)
	}
	for i := 0; i < n; i++ {
		if t := a.msgs.text[i]; t != nil {
			fn(int64(i+1), t.subject, t.body)
		}
	}
}

// NewCookie issues a browser cookie identifier. Attacker sessions
// reuse one cookie across visits from the same browser, exactly the
// identity Google uses to distinguish unique accesses (§4.3).
func (s *Service) NewCookie() string { return s.jar.Issue() }

// Login authenticates and opens a session bound to a cookie and a
// network endpoint. A new Access row appears on the activity page for
// first-time cookies; repeat cookies update tlast and the visit count.
func (s *Service) Login(address, password, cookie string, ep netsim.Endpoint) (*Session, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return nil, err
	}
	defer p.mu.Unlock()
	if a.suspended {
		return nil, ErrSuspended
	}
	if a.password != password {
		return nil, ErrBadPassword
	}
	now := p.now()
	if s.risk.Enabled && s.risky(a, ep) {
		s.journalLocked(p, a, Event{Time: now, Kind: EventLoginBlocked, Account: address, Cookie: cookie, Detail: ep.Addr.String()})
		return nil, ErrLoginBlocked
	}
	if cookie == "" {
		cookie = s.jar.Issue()
	}
	row, seen := a.acc.lookup(cookie)
	if !seen {
		browser, device := netsim.ClassifyUserAgent(ep.UserAgent)
		row = a.acc.add(&p.sym, cookie, now.UnixNano(), ep, browser, device)
	}
	a.acc.lastNS[row] = now.UnixNano()
	a.acc.visits[row]++
	a.bumpAccessLocked(row)
	s.journalLocked(p, a, Event{Time: now, Kind: EventLogin, Account: address, Cookie: cookie, Detail: ep.Addr.String()})
	return &Session{svc: s, part: p, account: address, cookie: cookie, passwordAt: a.passwordChanges}, nil
}

// risky is the Google-style suspicious-login heuristic used only by
// the ablation: block anonymised origins and origins with no
// geolocation at all.
func (s *Service) risky(a *account, ep netsim.Endpoint) bool {
	if ep.Tor && s.risk.BlockTor {
		return true
	}
	if ep.Proxy && s.risk.BlockProxies {
		return true
	}
	if s.risk.MaxKmFromHome > 0 && a.homeSet() && ep.HasLocation() {
		if distKm(a.homeLat, a.homeLon, ep.Point.Lat, ep.Point.Lon) > s.risk.MaxKmFromHome {
			return true
		}
	}
	return false
}

// LoginRiskConfig models the provider's suspicious-login filters.
type LoginRiskConfig struct {
	Enabled       bool
	BlockTor      bool
	BlockProxies  bool
	MaxKmFromHome float64
}

// SetHomeLocation records where the legitimate owner "usually" logs in
// from; only the login-risk ablation consults it.
func (s *Service) SetHomeLocation(address string, lat, lon float64) error {
	p, a, err := s.acquire(address)
	if err != nil {
		return err
	}
	defer p.mu.Unlock()
	a.homeLat, a.homeLon, a.homeKnown = lat, lon, true
	return nil
}

// Suspend blocks an account (Google's enforcement, §4.1).
func (s *Service) Suspend(address, reason string) error {
	p, a, err := s.acquire(address)
	if err != nil {
		return err
	}
	defer p.mu.Unlock()
	if !a.suspended {
		a.suspended = true
		a.bumpAccessLocked(-1) // scraper-visible: the next login fails
		s.journalLocked(p, a, Event{Time: p.now(), Kind: EventSuspend, Account: address, Detail: reason})
	}
	return nil
}

// ResetPassword is the provider-side credential rotation the C3
// defender loop triggers on a detected leak: the password changes
// without any session (unlike Session.ChangePassword, which is the
// hijacker's move), so every live session — the attacker's included —
// is invalidated at once.
func (s *Service) ResetPassword(address, newPassword string) error {
	p, a, err := s.acquire(address)
	if err != nil {
		return err
	}
	defer p.mu.Unlock()
	a.password = newPassword
	a.passwordChanges++
	a.bumpAccessLocked(-1) // scraper-visible: the monitor must learn the new credential
	s.journalLocked(p, a, Event{
		Time: p.now(), Kind: EventPasswordChange,
		Account: address, Detail: "reset",
	})
	return nil
}

// Suspended reports whether the account is blocked.
func (s *Service) Suspended(address string) bool {
	p, a, err := s.acquire(address)
	if err != nil {
		return false
	}
	defer p.mu.Unlock()
	return a.suspended
}

// SuspendedCount returns how many accounts the platform has blocked.
func (s *Service) SuspendedCount() int {
	n := 0
	for _, p := range s.parts {
		p.mu.Lock()
		for _, a := range p.accounts {
			if a.suspended {
				n++
			}
		}
		p.mu.Unlock()
	}
	return n
}

// Accounts returns all account addresses, sorted.
func (s *Service) Accounts() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.index))
	for addr := range s.index {
		out = append(out, addr)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Journal returns a copy of the ground-truth event journal for an
// account (empty for unknown accounts).
func (s *Service) Journal(address string) []Event {
	p, a, err := s.acquire(address)
	if err != nil {
		return nil
	}
	defer p.mu.Unlock()
	out := make([]Event, a.journal.len())
	for i := range out {
		out[i] = a.journal.materialize(i, a.address)
	}
	return out
}

// SearchLog returns the ground-truth search queries issued against an
// account. The paper did NOT have this signal ("we did not have access
// to search logs", §4.6) — it exists here to validate how well the
// TF-IDF inference recovers it.
func (s *Service) SearchLog(address string) []string {
	p, a, err := s.acquire(address)
	if err != nil {
		return nil
	}
	defer p.mu.Unlock()
	out := make([]string, len(a.searchLog))
	copy(out, a.searchLog)
	return out
}

// journalLocked appends an event and notifies observers. Callers hold
// the owning partition's lock. The snapshot version only advances for
// events that change what Snapshot reports (reads, stars, sends,
// drafts) so that pollers can skip accounts whose mailbox is
// untouched — logins and searches alone do not force a rescan.
func (s *Service) journalLocked(p *partition, a *account, e Event) {
	a.journal.append(&p.sym, e)
	switch e.Kind {
	case EventRead, EventStar, EventSend, EventDraftCreate, EventDraftUpdate:
		a.version.Add(1)
	}
	s.obsMu.RLock()
	observers := s.observers
	s.obsMu.RUnlock()
	if len(observers) == 0 {
		return
	}
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	for _, fn := range observers {
		fn(e)
	}
}

// Version returns a counter that changes whenever the account's
// mailbox state does. Unknown accounts report 0.
func (s *Service) Version(address string) uint64 {
	p, a, err := s.acquire(address)
	if err != nil {
		return 0
	}
	defer p.mu.Unlock()
	return a.version.Load()
}

// AccessVersion returns a counter that changes whenever anything an
// activity-page scraper could observe does: a new or updated access
// row, a password change, a suspension. Unknown accounts report 0.
func (s *Service) AccessVersion(address string) uint64 {
	p, a, err := s.acquire(address)
	if err != nil {
		return 0
	}
	defer p.mu.Unlock()
	return a.accessVersion.Load()
}

// VersionProbe is a lock-free handle for polling one account's change
// counters. Per-account pollers (the Apps-Script scan trigger, the
// activity-page scraper's version gate) hold one so that deciding
// "nothing changed — skip this account" costs a single atomic load
// instead of an index lookup plus two lock round-trips per account per
// tick. Accounts are never deleted, so a probe stays valid for the
// life of the service. The zero value is invalid (Valid reports
// false).
type VersionProbe struct{ a *account }

// Valid reports whether the probe is bound to an account.
func (p VersionProbe) Valid() bool { return p.a != nil }

// MailboxVersion mirrors Service.Version for the probed account.
func (p VersionProbe) MailboxVersion() uint64 { return p.a.version.Load() }

// AccessVersion mirrors Service.AccessVersion for the probed account.
func (p VersionProbe) AccessVersion() uint64 { return p.a.accessVersion.Load() }

// Probe returns a version probe for an account.
func (s *Service) Probe(address string) (VersionProbe, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return VersionProbe{}, err
	}
	defer p.mu.Unlock()
	return VersionProbe{a: a}, nil
}

// account home-location fields (used only by the login-risk ablation).
func (a *account) homeSet() bool { return a.homeKnown }

// distKm is a local haversine; webmail cannot import geo (geo is an
// analysis-side dependency) so the few lines are duplicated here.
func distKm(lat1, lon1, lat2, lon2 float64) float64 {
	const r = 6371.0
	rad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := rad(lat2 - lat1)
	dLon := rad(lon2 - lon1)
	sin2 := func(x float64) float64 { s := math.Sin(x); return s * s }
	h := sin2(dLat/2) + math.Cos(rad(lat1))*math.Cos(rad(lat2))*sin2(dLon/2)
	return 2 * r * math.Asin(math.Sqrt(h))
}

// Folded message counts for reporting.
type FolderCounts struct {
	Inbox, Sent, Drafts, Trash int
	Unread, Starred            int
}

// Counts summarises an account's folders.
func (s *Service) Counts(address string) (FolderCounts, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return FolderCounts{}, err
	}
	defer p.mu.Unlock()
	var c FolderCounts
	// Pure column scan: folder/read/starred only, text untouched.
	for i, f := range a.msgs.folder {
		if a.msgs.text[i] == nil {
			continue
		}
		switch f {
		case FolderInbox:
			c.Inbox++
		case FolderSent:
			c.Sent++
		case FolderDrafts:
			c.Drafts++
		case FolderTrash:
			c.Trash++
		}
		if !a.msgs.read[i] && f == FolderInbox {
			c.Unread++
		}
		if a.msgs.starred[i] {
			c.Starred++
		}
	}
	return c, nil
}

// DeliverInbound places a message in the account's inbox, as the MTA
// would for mail arriving from outside (forum registration
// confirmations, Apps-Script quota notices, §4.7).
func (s *Service) DeliverInbound(address, from, subject, body string) (MessageID, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return 0, err
	}
	defer p.mu.Unlock()
	id := a.nextID
	a.nextID++
	a.msgs.append(FolderInbox, &msgText{from: from, to: address, subject: subject, body: body},
		p.now().UnixNano(), false)
	a.version.Add(1)
	return id, nil
}

// Snapshot is the immutable view the Apps-Script scanner diffs every
// cycle: which messages are read / starred / sent / drafts.
type Snapshot struct {
	Taken   time.Time
	Read    []MessageID
	Starred []MessageID
	Sent    []MessageID
	Drafts  map[MessageID]string // draft id -> body (scripts exfiltrate draft copies)
}

// Snapshot captures the visible mailbox state. It works even on
// suspended accounts and after password changes — the paper notes the
// embedded scripts keep running in both cases (§4.2).
func (s *Service) Snapshot(address string) (Snapshot, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return Snapshot{}, err
	}
	defer p.mu.Unlock()
	snap := Snapshot{Taken: p.now()}
	// Rows are ID-ascending by construction — a single column scan
	// replaces the collect-then-sort the map store needed. The Drafts
	// map is only allocated when a draft actually exists (most
	// accounts never have one).
	for i, f := range a.msgs.folder {
		if a.msgs.text[i] == nil {
			continue
		}
		id := MessageID(i + 1)
		if a.msgs.read[i] && f == FolderInbox {
			snap.Read = append(snap.Read, id)
		}
		if a.msgs.starred[i] {
			snap.Starred = append(snap.Starred, id)
		}
		if f == FolderSent {
			snap.Sent = append(snap.Sent, id)
		}
		if f == FolderDrafts {
			if snap.Drafts == nil {
				snap.Drafts = make(map[MessageID]string)
			}
			snap.Drafts[id] = a.msgs.text[i].body
		}
	}
	return snap, nil
}

// ActivityPage returns the access rows for an account as its activity
// page would display them, sorted by first access. Scraping requires
// valid credentials: after a hijacker changes the password the monitor
// can no longer call this (enforced by the monitor, which logs in
// through the normal path). Rows are kept insertion-sorted, so this is
// a straight copy — no per-call sort.
func (s *Service) ActivityPage(address string) ([]Access, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return nil, err
	}
	defer p.mu.Unlock()
	out := make([]Access, len(a.acc.order))
	for i, row := range a.acc.order {
		out[i] = a.acc.materialize(row)
	}
	return out, nil
}

// Password returns the current password; the honeynet uses it to model
// "the password no longer matches the leaked one" after hijacks.
func (s *Service) Password(address string) (string, error) {
	p, a, err := s.acquire(address)
	if err != nil {
		return "", err
	}
	defer p.mu.Unlock()
	return a.password, nil
}

// rowLocked resolves a message ID to its store row or returns
// ErrNoSuchMessage.
func (a *account) rowLocked(id MessageID) (int, error) {
	i := a.msgs.index(id)
	if i < 0 {
		return 0, ErrNoSuchMessage
	}
	return i, nil
}
