package webmail

import (
	"strings"
	"testing"
)

// TestMatchTermsFoldEquivalence pins the fold scan to the reference
// semantics it replaced: strings.Contains over a ToLower-baked
// subject+"\n"+body haystack, for every term of a Fields-split
// lowered query. Cases cover ASCII folding, term-at-boundary,
// multi-term AND, and the non-ASCII fallback path.
func TestMatchTermsFoldEquivalence(t *testing.T) {
	cases := []struct {
		subject, body, query string
	}{
		{"Wire TRANSFER", "Payment Details inside", "wire transfer"},
		{"Wire TRANSFER", "Payment Details inside", "WIRE details"},
		{"Wire TRANSFER", "Payment Details inside", "transfer payment"},
		{"Wire TRANSFER", "Payment Details inside", "missing"},
		{"", "", "anything"},
		{"edge", "", "edge"},
		{"", "tail", "tail"},
		{"abcd", "efgh", "cd ef"},                       // neither field alone holds "cdef"
		{"abAB", "zzzz", "abab"},                        // fold inside one field
		{"Réunion notes", "café plans", "réunion café"}, // non-ASCII fallback
		{"Réunion notes", "café plans", "notes plans"},  // ASCII terms, non-ASCII text
		{"plain text", "çedille", "çedille"},
	}
	for _, c := range cases {
		terms := strings.Fields(strings.ToLower(c.query))
		mt := &msgText{subject: c.subject, body: c.body}
		got := mt.matchTerms(terms)
		hay := strings.ToLower(c.subject + "\n" + c.body)
		want := true
		for _, term := range terms {
			if !strings.Contains(hay, term) {
				want = false
			}
		}
		if got != want {
			t.Errorf("matchTerms(%q/%q, %q) = %v, reference = %v", c.subject, c.body, c.query, got, want)
		}
	}
	if (&msgText{subject: "x", body: "y"}).matchTerms(nil) {
		t.Error("empty term list must not match")
	}
}

// TestMatchTermsASCIIAllocFree guards the fleet-memory contract: the
// ASCII fast path — the entire embedded corpus — retains nothing and
// allocates nothing per match, unlike the old baked-haystack cache
// that held a second lowered copy of every searched message.
func TestMatchTermsASCIIAllocFree(t *testing.T) {
	mt := &msgText{
		subject: "Quarterly BUDGET review",
		body:    "The numbers for Q3 are attached; wire the TRANSFER by Friday.",
	}
	terms := []string{"budget", "transfer", "friday"}
	if !mt.matchTerms(terms) {
		t.Fatal("expected match")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if !mt.matchTerms(terms) {
			t.Fatal("expected match")
		}
	})
	if allocs != 0 {
		t.Fatalf("ASCII matchTerms allocated %.1f per run, want 0", allocs)
	}
}
