package webmail

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/simtime"
)

var epoch = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

type fixture struct {
	clock *simtime.Clock
	sched *simtime.Scheduler
	svc   *Service
	space *netsim.AddressSpace
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	clock := simtime.NewClock(epoch)
	cfg.Clock = clock
	f := &fixture{
		clock: clock,
		sched: simtime.NewScheduler(clock),
		svc:   NewService(cfg),
		space: netsim.NewAddressSpace(rng.New(7), geo.Default()),
	}
	if err := f.svc.CreateAccount("alice@honeymail.example", "hunter2", "Alice Smith"); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) endpoint(t *testing.T, city, ua string) netsim.Endpoint {
	t.Helper()
	ep, err := f.space.FromCity(city)
	if err != nil {
		t.Fatal(err)
	}
	ep.UserAgent = ua
	return ep
}

func (f *fixture) login(t *testing.T) *Session {
	t.Helper()
	se, err := f.svc.Login("alice@honeymail.example", "hunter2", f.svc.NewCookie(), f.endpoint(t, "London", ""))
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func TestCreateAccountDuplicate(t *testing.T) {
	f := newFixture(t, Config{})
	if err := f.svc.CreateAccount("alice@honeymail.example", "x", "A"); !errors.Is(err, ErrAccountExists) {
		t.Fatalf("err = %v, want ErrAccountExists", err)
	}
}

func TestLoginChecksCredentials(t *testing.T) {
	f := newFixture(t, Config{})
	if _, err := f.svc.Login("nobody@x", "p", "", f.endpoint(t, "London", "")); !errors.Is(err, ErrNoSuchAccount) {
		t.Fatalf("err = %v", err)
	}
	if _, err := f.svc.Login("alice@honeymail.example", "wrong", "", f.endpoint(t, "London", "")); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoginRecordsAccess(t *testing.T) {
	f := newFixture(t, Config{})
	ep := f.endpoint(t, "Paris", netsim.UserAgentFor(rng.New(1), netsim.BrowserFirefox))
	cookie := f.svc.NewCookie()
	if _, err := f.svc.Login("alice@honeymail.example", "hunter2", cookie, ep); err != nil {
		t.Fatal(err)
	}
	page, err := f.svc.ActivityPage("alice@honeymail.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 1 {
		t.Fatalf("activity rows = %d, want 1", len(page))
	}
	acc := page[0]
	if acc.Cookie != cookie || acc.City != "Paris" || acc.Country != "France" {
		t.Fatalf("access = %+v", acc)
	}
	if acc.Browser != netsim.BrowserFirefox || acc.Device != netsim.DeviceDesktop {
		t.Fatalf("fingerprint = %v/%v", acc.Browser, acc.Device)
	}
	if acc.Visits != 1 || !acc.First.Equal(epoch) || !acc.Last.Equal(epoch) {
		t.Fatalf("timing = %+v", acc)
	}
}

func TestRepeatCookieUpdatesTLast(t *testing.T) {
	f := newFixture(t, Config{})
	cookie := f.svc.NewCookie()
	ep := f.endpoint(t, "Paris", "")
	if _, err := f.svc.Login("alice@honeymail.example", "hunter2", cookie, ep); err != nil {
		t.Fatal(err)
	}
	f.sched.RunFor(48 * time.Hour)
	if _, err := f.svc.Login("alice@honeymail.example", "hunter2", cookie, ep); err != nil {
		t.Fatal(err)
	}
	page, _ := f.svc.ActivityPage("alice@honeymail.example")
	if len(page) != 1 {
		t.Fatalf("repeat cookie created extra row: %d", len(page))
	}
	if got := page[0].Last.Sub(page[0].First); got != 48*time.Hour {
		t.Fatalf("tlast - t0 = %v, want 48h", got)
	}
	if page[0].Visits != 2 {
		t.Fatalf("visits = %d, want 2", page[0].Visits)
	}
}

func TestTorAccessHasNoLocation(t *testing.T) {
	f := newFixture(t, Config{})
	ep := f.space.TorExit()
	if _, err := f.svc.Login("alice@honeymail.example", "hunter2", f.svc.NewCookie(), ep); err != nil {
		t.Fatal(err)
	}
	page, _ := f.svc.ActivityPage("alice@honeymail.example")
	if page[0].City != "" || page[0].HasPoint {
		t.Fatalf("tor access should be locationless: %+v", page[0])
	}
	if page[0].Browser != netsim.BrowserUnknown || page[0].Device != netsim.DeviceUnknown {
		t.Fatalf("empty UA should fingerprint unknown: %+v", page[0])
	}
}

func TestSeedAndCounts(t *testing.T) {
	f := newFixture(t, Config{})
	for i := 0; i < 3; i++ {
		if _, err := f.svc.Seed("alice@honeymail.example", FolderInbox, "bob@x", "alice@honeymail.example", "s", "b", epoch.Add(-time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.svc.Seed("alice@honeymail.example", FolderSent, "alice@honeymail.example", "bob@x", "s", "b", epoch.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	c, err := f.svc.Counts("alice@honeymail.example")
	if err != nil {
		t.Fatal(err)
	}
	if c.Inbox != 3 || c.Sent != 1 || c.Unread != 3 {
		t.Fatalf("counts = %+v", c)
	}
	// Seeding must not journal events (pre-leak population is not activity).
	if got := len(f.svc.Journal("alice@honeymail.example")); got != 0 {
		t.Fatalf("journal after seed = %d entries, want 0", got)
	}
}

func TestReadMarksAndJournals(t *testing.T) {
	f := newFixture(t, Config{})
	id, _ := f.svc.Seed("alice@honeymail.example", FolderInbox, "bob@x", "alice@honeymail.example", "payroll", "wire transfer details", epoch.Add(-time.Hour))
	se := f.login(t)
	m, err := se.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Read {
		t.Fatal("message not marked read")
	}
	// Second read of same message journals nothing new.
	if _, err := se.Read(id); err != nil {
		t.Fatal(err)
	}
	reads := 0
	for _, e := range f.svc.Journal("alice@honeymail.example") {
		if e.Kind == EventRead {
			reads++
		}
	}
	if reads != 1 {
		t.Fatalf("read events = %d, want 1", reads)
	}
}

func TestStar(t *testing.T) {
	f := newFixture(t, Config{})
	id, _ := f.svc.Seed("alice@honeymail.example", FolderInbox, "b@x", "alice@honeymail.example", "s", "b", epoch)
	se := f.login(t)
	if err := se.Star(id); err != nil {
		t.Fatal(err)
	}
	c, _ := f.svc.Counts("alice@honeymail.example")
	if c.Starred != 1 {
		t.Fatalf("starred = %d", c.Starred)
	}
}

func TestSearchMatchesAndLogs(t *testing.T) {
	f := newFixture(t, Config{})
	f.svc.Seed("alice@honeymail.example", FolderInbox, "b@x", "a", "Wire transfer confirmation", "the PAYMENT settled", epoch)
	f.svc.Seed("alice@honeymail.example", FolderInbox, "b@x", "a", "lunch", "sandwiches", epoch)
	se := f.login(t)
	hits, err := se.Search("payment transfer")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Subject != "Wire transfer confirmation" {
		t.Fatalf("hits = %+v", hits)
	}
	if log := f.svc.SearchLog("alice@honeymail.example"); len(log) != 1 || log[0] != "payment transfer" {
		t.Fatalf("search log = %v", log)
	}
	if none, _ := se.Search("bitcoin"); len(none) != 0 {
		t.Fatalf("unexpected hits: %v", none)
	}
}

func TestDraftLifecycle(t *testing.T) {
	f := newFixture(t, Config{})
	se := f.login(t)
	id, err := se.CreateDraft("victim@x", "hello", "first version")
	if err != nil {
		t.Fatal(err)
	}
	if err := se.UpdateDraft(id, "victim@x", "hello", "second version"); err != nil {
		t.Fatal(err)
	}
	snap, _ := f.svc.Snapshot("alice@honeymail.example")
	if snap.Drafts[id] != "second version" {
		t.Fatalf("draft body = %q", snap.Drafts[id])
	}
	// Sending the draft moves it out of drafts into sent.
	if err := se.SendDraft(id); err != nil {
		t.Fatal(err)
	}
	c, _ := f.svc.Counts("alice@honeymail.example")
	if c.Drafts != 0 || c.Sent != 1 {
		t.Fatalf("counts after send = %+v", c)
	}
}

func TestUpdateNonDraftFails(t *testing.T) {
	f := newFixture(t, Config{})
	id, _ := f.svc.Seed("alice@honeymail.example", FolderInbox, "b@x", "a", "s", "b", epoch)
	se := f.login(t)
	if err := se.UpdateDraft(id, "x", "y", "z"); !errors.Is(err, ErrNotADraft) {
		t.Fatalf("err = %v", err)
	}
}

func TestSendUsesSendFromOverride(t *testing.T) {
	var gotFrom, gotTo string
	out := OutboundFunc(func(from, to, subject, body string, at time.Time) error {
		gotFrom, gotTo = from, to
		return nil
	})
	f := newFixture(t, Config{Outbound: out})
	if err := f.svc.SetSendFrom("alice@honeymail.example", "sink@sinkhole.example"); err != nil {
		t.Fatal(err)
	}
	se := f.login(t)
	if _, err := se.Send("victim@real.example", "hi", "body"); err != nil {
		t.Fatal(err)
	}
	if gotFrom != "sink@sinkhole.example" || gotTo != "victim@real.example" {
		t.Fatalf("delivered %s -> %s", gotFrom, gotTo)
	}
}

func TestChangePasswordInvalidatesOtherSessions(t *testing.T) {
	f := newFixture(t, Config{})
	monitor := f.login(t)
	hijacker := f.login(t)
	if err := hijacker.ChangePassword("owned"); err != nil {
		t.Fatal(err)
	}
	if _, err := monitor.List(FolderInbox); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("old session err = %v, want ErrSessionExpired", err)
	}
	// Hijacker's own session survives.
	if _, err := hijacker.List(FolderInbox); err != nil {
		t.Fatal(err)
	}
	// Old password no longer works; new one does.
	if _, err := f.svc.Login("alice@honeymail.example", "hunter2", "", f.endpoint(t, "London", "")); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("old password err = %v", err)
	}
	if _, err := f.svc.Login("alice@honeymail.example", "owned", "", f.endpoint(t, "London", "")); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSurvivesPasswordChangeAndSuspension(t *testing.T) {
	// §4.2: "even after losing control of the accounts, our monitoring
	// scripts embedded in the accounts keep running".
	f := newFixture(t, Config{})
	id, _ := f.svc.Seed("alice@honeymail.example", FolderInbox, "b@x", "a", "s", "b", epoch)
	se := f.login(t)
	se.Read(id)
	se.ChangePassword("owned")
	f.svc.Suspend("alice@honeymail.example", "test")
	snap, err := f.svc.Snapshot("alice@honeymail.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Read) != 1 || snap.Read[0] != id {
		t.Fatalf("snapshot read = %v", snap.Read)
	}
}

func TestSuspensionBlocksLoginAndOps(t *testing.T) {
	f := newFixture(t, Config{})
	se := f.login(t)
	f.svc.Suspend("alice@honeymail.example", "abuse")
	if !f.svc.Suspended("alice@honeymail.example") || f.svc.SuspendedCount() != 1 {
		t.Fatal("suspension not recorded")
	}
	if _, err := f.svc.Login("alice@honeymail.example", "hunter2", "", f.endpoint(t, "London", "")); !errors.Is(err, ErrSuspended) {
		t.Fatalf("login err = %v", err)
	}
	if _, err := se.List(FolderInbox); !errors.Is(err, ErrSuspended) {
		t.Fatalf("op err = %v", err)
	}
	// Double-suspend journals once.
	f.svc.Suspend("alice@honeymail.example", "again")
	n := 0
	for _, e := range f.svc.Journal("alice@honeymail.example") {
		if e.Kind == EventSuspend {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("suspend events = %d, want 1", n)
	}
}

func TestAbuseDetectionSuspendsSpammer(t *testing.T) {
	f := newFixture(t, Config{Abuse: AbuseConfig{Window: time.Hour, MaxSendsPerWindow: 5, MaxRecipientsPerWindow: 100}})
	se := f.login(t)
	var err error
	for i := 0; i < 6; i++ {
		_, err = se.Send("victim@x", "spam", "buy now")
		if err != nil {
			break
		}
	}
	if err != nil && !errors.Is(err, ErrSuspended) {
		t.Fatalf("unexpected err %v", err)
	}
	if !f.svc.Suspended("alice@honeymail.example") {
		t.Fatal("spammer not suspended")
	}
}

func TestAbuseFanOutDetection(t *testing.T) {
	f := newFixture(t, Config{Abuse: AbuseConfig{Window: time.Hour, MaxSendsPerWindow: 1000, MaxRecipientsPerWindow: 4}})
	se := f.login(t)
	for i := 0; i < 5; i++ {
		to := string(rune('a'+i)) + "@victims.example"
		se.Send(to, "s", "b")
	}
	if !f.svc.Suspended("alice@honeymail.example") {
		t.Fatal("fan-out spammer not suspended")
	}
}

func TestAbuseWindowSlides(t *testing.T) {
	f := newFixture(t, Config{Abuse: AbuseConfig{Window: time.Hour, MaxSendsPerWindow: 3, MaxRecipientsPerWindow: 100}})
	se := f.login(t)
	for day := 0; day < 5; day++ {
		if _, err := se.Send("friend@x", "s", "b"); err != nil {
			t.Fatalf("slow sender suspended on day %d: %v", day, err)
		}
		f.sched.RunFor(24 * time.Hour)
	}
	if f.svc.Suspended("alice@honeymail.example") {
		t.Fatal("slow sender should not be suspended")
	}
}

func TestLoginRiskAblation(t *testing.T) {
	f := newFixture(t, Config{LoginRisk: LoginRiskConfig{Enabled: true, BlockTor: true, BlockProxies: true, MaxKmFromHome: 1000}})
	f.svc.SetHomeLocation("alice@honeymail.example", 51.5074, -0.1278) // London
	// Tor blocked.
	if _, err := f.svc.Login("alice@honeymail.example", "hunter2", "", f.space.TorExit()); !errors.Is(err, ErrLoginBlocked) {
		t.Fatalf("tor err = %v", err)
	}
	// Far city blocked.
	if _, err := f.svc.Login("alice@honeymail.example", "hunter2", "", f.endpoint(t, "Tokyo", "")); !errors.Is(err, ErrLoginBlocked) {
		t.Fatalf("far err = %v", err)
	}
	// Nearby city allowed.
	if _, err := f.svc.Login("alice@honeymail.example", "hunter2", "", f.endpoint(t, "Paris", "")); err != nil {
		t.Fatalf("near err = %v", err)
	}
	blocked := 0
	for _, e := range f.svc.Journal("alice@honeymail.example") {
		if e.Kind == EventLoginBlocked {
			blocked++
		}
	}
	if blocked != 2 {
		t.Fatalf("blocked events = %d, want 2", blocked)
	}
}

func TestDeliverInbound(t *testing.T) {
	f := newFixture(t, Config{})
	id, err := f.svc.DeliverInbound("alice@honeymail.example", "noreply@forum.example", "Confirm your registration", "click here")
	if err != nil {
		t.Fatal(err)
	}
	se := f.login(t)
	m, err := se.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != "noreply@forum.example" || m.Folder != FolderInbox {
		t.Fatalf("message = %+v", m)
	}
}

func TestDeleteMovesToTrashAndSearchSkipsIt(t *testing.T) {
	f := newFixture(t, Config{})
	id, _ := f.svc.Seed("alice@honeymail.example", FolderInbox, "b@x", "a", "bitcoin wallet", "keys inside", epoch)
	se := f.login(t)
	if err := se.Delete(id); err != nil {
		t.Fatal(err)
	}
	if hits, _ := se.Search("bitcoin"); len(hits) != 0 {
		t.Fatal("search returned trashed message")
	}
}

func TestObserverSeesEvents(t *testing.T) {
	f := newFixture(t, Config{})
	var kinds []EventKind
	f.svc.Observe(func(e Event) { kinds = append(kinds, e.Kind) })
	se := f.login(t)
	se.Send("x@y", "s", "b")
	want := []EventKind{EventLogin, EventSend}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestListSortedChronologically(t *testing.T) {
	f := newFixture(t, Config{})
	f.svc.Seed("alice@honeymail.example", FolderInbox, "b@x", "a", "late", "b", epoch.Add(2*time.Hour))
	f.svc.Seed("alice@honeymail.example", FolderInbox, "b@x", "a", "early", "b", epoch.Add(time.Hour))
	se := f.login(t)
	msgs, err := se.List(FolderInbox)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Subject != "early" || msgs[1].Subject != "late" {
		t.Fatalf("order = %v, %v", msgs[0].Subject, msgs[1].Subject)
	}
}

func TestListNBoundsToNewest(t *testing.T) {
	f := newFixture(t, Config{})
	for i, subj := range []string{"third", "first", "second"} {
		// Seed out of date order so the limit is applied on the date
		// column, not on insertion order.
		offs := []time.Duration{3 * time.Hour, time.Hour, 2 * time.Hour}[i]
		f.svc.Seed("alice@honeymail.example", FolderInbox, "b@x", "a", subj, "b", epoch.Add(offs))
	}
	se := f.login(t)
	msgs, err := se.ListN(FolderInbox, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Subject != "second" || msgs[1].Subject != "third" {
		t.Fatalf("ListN(2) = %+v", msgs)
	}
	// A limit at or above the folder size, and 0, return everything.
	for _, limit := range []int{0, 3, 99} {
		msgs, err = se.ListN(FolderInbox, limit)
		if err != nil || len(msgs) != 3 {
			t.Fatalf("ListN(%d): %v, %d messages", limit, err, len(msgs))
		}
	}
}
