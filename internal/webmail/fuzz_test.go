package webmail

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/simtime"
)

// byteConn is a scripted net.Conn: reads come from a fixed request
// stream, writes (the server's responses) accumulate in a buffer.
// Driving serveConn through it exercises the full wire path — decode
// loop, op dispatch, session binding, encode — without goroutines or
// real sockets, so the fuzzer stays deterministic and cannot
// deadlock.
type byteConn struct {
	in  *bytes.Reader
	out bytes.Buffer
}

func (c *byteConn) Read(p []byte) (int, error)       { return c.in.Read(p) }
func (c *byteConn) Write(p []byte) (int, error)      { return c.out.Write(p) }
func (c *byteConn) Close() error                     { return nil }
func (c *byteConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *byteConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *byteConn) SetDeadline(time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(time.Time) error { return nil }

// fuzzService builds a small live platform so fuzzed logins can bind
// real sessions and mailbox ops have state to hit.
func fuzzService(t *testing.T) *Service {
	t.Helper()
	start := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	svc := NewService(Config{Clock: simtime.NewClock(start)})
	if err := svc.CreateAccount("fuzz@honeymail.example", "pw", "Fuzz Target"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Seed("fuzz@honeymail.example", FolderInbox, "peer@corp.example",
		"fuzz@honeymail.example", "wire transfer", "payment details attached", start.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	return svc
}

// FuzzServerConn feeds arbitrary bytes to the webmaild wire protocol
// (newline-delimited JSON over one connection). The contract under
// fuzzing: the server never panics, drops the connection on the first
// bad frame, and every byte it writes back is a well-formed Response.
func FuzzServerConn(f *testing.F) {
	login := `{"op":"login","account":"fuzz@honeymail.example","password":"pw","ip":"203.0.113.7","city":"Paris","country":"France","lat":48.85,"lon":2.35,"user_agent":"Mozilla/5.0"}` + "\n"
	seeds := []string{
		// A full benign session: login then every mailbox op.
		login + `{"op":"list","folder":"inbox"}` + "\n" +
			`{"op":"search","query":"transfer"}` + "\n" +
			`{"op":"read","id":1}` + "\n" +
			`{"op":"star","id":1}` + "\n" +
			`{"op":"draft","to":"x@y.example","subject":"hi","body":"draft body"}` + "\n" +
			`{"op":"send","to":"x@y.example","subject":"hi","body":"sent body"}` + "\n" +
			`{"op":"activity"}` + "\n" +
			`{"op":"delete","id":1}` + "\n" +
			`{"op":"chpass","password":"newpw"}` + "\n",
		// Ops before login are rejected per-frame.
		`{"op":"list","folder":"inbox"}` + "\n",
		// Login with an unparsable origin IP.
		`{"op":"login","account":"fuzz@honeymail.example","password":"pw","ip":"not-an-ip"}` + "\n",
		// Tor login (no geolocation).
		`{"op":"login","account":"fuzz@honeymail.example","password":"pw","ip":"198.51.100.9","tor":true}` + "\n" + `{"op":"activity"}` + "\n",
		// Wrong password, unknown op, bad folder, absent message id.
		`{"op":"login","account":"fuzz@honeymail.example","password":"nope","ip":"203.0.113.7"}` + "\n",
		login + `{"op":"frobnicate"}` + "\n",
		login + `{"op":"list","folder":"attic"}` + "\n",
		login + `{"op":"read","id":999999}` + "\n",
		// Frame-level garbage.
		"{\"op\":\n",
		"not json at all\n",
		`{"op":"login"`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		svc := fuzzService(t)
		srv := NewServer(svc)
		conn := &byteConn{in: bytes.NewReader(data)}
		srv.serveConn(&srvConn{Conn: conn})

		// Every reply frame the server produced must decode as a
		// Response — half-written or interleaved frames would desync
		// real clients.
		dec := json.NewDecoder(bytes.NewReader(conn.out.Bytes()))
		for {
			var resp Response
			if err := dec.Decode(&resp); err != nil {
				if err == io.EOF {
					break
				}
				t.Fatalf("server wrote a malformed response frame: %v\nstream: %q", err, conn.out.String())
			}
			if !resp.OK && resp.Error == "" {
				t.Fatalf("failure response without an error message: %+v", resp)
			}
		}
	})
}
