package webmail

import (
	"cmp"
	"slices"
	"strings"
)

// Session is an authenticated view of one account bound to a cookie.
// A password change invalidates every session opened before it, which
// is how hijackers lock out both the legitimate owner and our
// activity-page scraper (§4.2). The session pins the partition that
// owns its account, so session operations only ever take that
// partition's lock — sessions on different shards proceed without
// contention.
type Session struct {
	svc        *Service
	part       *partition
	account    string
	cookie     string
	passwordAt int // password generation at login time
}

// Account returns the mailbox address the session is bound to.
func (se *Session) Account() string { return se.account }

// Cookie returns the browser cookie identifier of this session.
func (se *Session) Cookie() string { return se.cookie }

// touch revalidates the session, updates the activity row's tlast, and
// returns the account. Callers must hold se.part.mu.
func (se *Session) touch() (*account, error) {
	a, ok := se.part.accounts[se.account]
	if !ok {
		return nil, ErrNoSuchAccount
	}
	if a.suspended {
		return nil, ErrSuspended
	}
	if a.passwordChanges != se.passwordAt {
		return nil, ErrSessionExpired
	}
	if row, ok := a.acc.lookup(se.cookie); ok {
		nowNS := se.part.now().UnixNano()
		if nowNS > a.acc.lastNS[row] {
			a.acc.lastNS[row] = nowNS
			// tlast is on the activity page: a scraper can observe it.
			a.bumpAccessLocked(row)
		}
	}
	return a, nil
}

// cmpMessage orders messages oldest first, IDs breaking ties — the
// folder listing and search-result order.
func cmpMessage(x, y Message) int {
	if c := x.Date.Compare(y.Date); c != 0 {
		return c
	}
	return cmp.Compare(x.ID, y.ID)
}

// List returns the messages of a folder, oldest first.
func (se *Session) List(folder Folder) ([]Message, error) {
	return se.ListN(folder, 0)
}

// ListN returns the newest limit messages of a folder, oldest first;
// limit <= 0 means the whole folder. This is the bounded variant the
// wire protocol's list op uses (Request.Limit), so a single response
// cannot grow with mailbox size: the newest-N rows are selected on
// the compact date column before any message text is materialized.
func (se *Session) ListN(folder Folder, limit int) ([]Message, error) {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return nil, err
	}
	var idx []int
	for i, f := range a.msgs.folder {
		if f == folder && a.msgs.text[i] != nil {
			idx = append(idx, i)
		}
	}
	// Same (date, ID) order cmpMessage imposes on materialized
	// values; row index i carries ID i+1, so index order is ID order.
	slices.SortFunc(idx, func(x, y int) int {
		if c := cmp.Compare(a.msgs.dateNS[x], a.msgs.dateNS[y]); c != 0 {
			return c
		}
		return cmp.Compare(x, y)
	})
	if limit > 0 && len(idx) > limit {
		idx = idx[len(idx)-limit:]
	}
	out := make([]Message, len(idx))
	for j, i := range idx {
		out[j] = a.msgs.materialize(i)
	}
	return out, nil
}

// Read opens a message, marking it read and journaling the action —
// the signal the Apps-Script scan picks up (§3.1).
func (se *Session) Read(id MessageID) (Message, error) {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return Message{}, err
	}
	i, err := a.rowLocked(id)
	if err != nil {
		return Message{}, err
	}
	if !a.msgs.read[i] {
		a.msgs.read[i] = true
		se.svc.journalLocked(se.part, a, Event{
			Time: se.part.now(), Kind: EventRead,
			Account: se.account, Cookie: se.cookie, Message: id,
		})
	}
	return a.msgs.materialize(i), nil
}

// Star marks a message starred (favorited).
func (se *Session) Star(id MessageID) error {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return err
	}
	i, err := a.rowLocked(id)
	if err != nil {
		return err
	}
	if !a.msgs.starred[i] {
		a.msgs.starred[i] = true
		se.svc.journalLocked(se.part, a, Event{
			Time: se.part.now(), Kind: EventStar,
			Account: se.account, Cookie: se.cookie, Message: id,
		})
	}
	return nil
}

// Search runs a keyword query over subject and body, journals it, and
// returns matches oldest-first. Ground truth only: the paper's
// analysts could not see queries and inferred them via TF-IDF (§4.6).
func (se *Session) Search(query string) ([]Message, error) {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return nil, err
	}
	q := strings.TrimSpace(query)
	a.searchLog = append(a.searchLog, q)
	se.svc.journalLocked(se.part, a, Event{
		Time: se.part.now(), Kind: EventSearch,
		Account: se.account, Cookie: se.cookie, Detail: q,
	})
	terms := strings.Fields(strings.ToLower(q))
	var out []Message
	for i, t := range a.msgs.text {
		if t != nil && a.msgs.folder[i] != FolderTrash && t.matchTerms(terms) {
			out = append(out, a.msgs.materialize(i))
		}
	}
	slices.SortFunc(out, cmpMessage)
	return out, nil
}

// CreateDraft stores a new draft and returns its ID.
func (se *Session) CreateDraft(to, subject, body string) (MessageID, error) {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return 0, err
	}
	id := a.nextID
	a.nextID++
	a.msgs.append(FolderDrafts, &msgText{from: se.account, to: to, subject: subject, body: body},
		se.part.now().UnixNano(), true)
	se.svc.journalLocked(se.part, a, Event{
		Time: se.part.now(), Kind: EventDraftCreate,
		Account: se.account, Cookie: se.cookie, Message: id,
	})
	return id, nil
}

// UpdateDraft replaces a draft's content.
func (se *Session) UpdateDraft(id MessageID, to, subject, body string) error {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return err
	}
	i, err := a.rowLocked(id)
	if err != nil {
		return err
	}
	if a.msgs.folder[i] != FolderDrafts {
		return ErrNotADraft
	}
	t := a.msgs.text[i]
	t.to, t.subject, t.body = to, subject, body
	a.msgs.dateNS[i] = se.part.now().UnixNano()
	se.svc.journalLocked(se.part, a, Event{
		Time: se.part.now(), Kind: EventDraftUpdate,
		Account: se.account, Cookie: se.cookie, Message: id,
	})
	return nil
}

// Send composes and sends a message. The platform rewrites the
// envelope sender when a send-from override is configured (the honey
// sinkhole diversion) and runs abuse detection, which may suspend the
// account mid-call the way Google suspended spamming honey accounts.
// The sent copy lands in the Sent folder either way; suspension takes
// effect for subsequent operations.
func (se *Session) Send(to, subject, body string) (MessageID, error) {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return 0, err
	}
	now := se.part.now()
	from := se.account
	if a.sendFrom != "" {
		from = a.sendFrom
	}
	id := a.nextID
	a.nextID++
	a.msgs.append(FolderSent, &msgText{from: se.account, to: to, subject: subject, body: body},
		now.UnixNano(), true)
	se.svc.journalLocked(se.part, a, Event{
		Time: now, Kind: EventSend,
		Account: se.account, Cookie: se.cookie, Message: id, Detail: to,
	})
	if err := se.part.outbound.Deliver(from, to, subject, body, now); err != nil {
		return id, err
	}
	if verdict := se.svc.abuse.recordSend(se.account, to, now); verdict != "" {
		a.suspended = true
		a.bumpAccessLocked(-1) // scraper-visible: the next login fails
		se.svc.journalLocked(se.part, a, Event{Time: now, Kind: EventSuspend, Account: se.account, Detail: verdict})
	}
	return id, nil
}

// SendDraft sends an existing draft.
func (se *Session) SendDraft(id MessageID) error {
	se.part.mu.Lock()
	a, err := se.touch()
	if err != nil {
		se.part.mu.Unlock()
		return err
	}
	i, err := a.rowLocked(id)
	if err != nil || a.msgs.folder[i] != FolderDrafts {
		se.part.mu.Unlock()
		if err != nil {
			return err
		}
		return ErrNotADraft
	}
	t := a.msgs.text[i]
	to, subject, body := t.to, t.subject, t.body
	a.msgs.vacate(i)
	se.part.mu.Unlock()
	_, err = se.Send(to, subject, body)
	return err
}

// ChangePassword rotates the password, invalidating all other
// sessions (including the monitor's scraper — the hijacker behaviour
// of §4.2). The calling session stays valid.
func (se *Session) ChangePassword(newPassword string) error {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return err
	}
	a.password = newPassword
	a.passwordChanges++
	se.passwordAt = a.passwordChanges
	// Scraper-visible even though no activity row changes: the
	// monitor's next login attempt fails, which is exactly the
	// visibility-loss signal §4.2 describes — the version gate must
	// open so that attempt happens on the very next scrape tick.
	a.bumpAccessLocked(-1)
	se.svc.journalLocked(se.part, a, Event{
		Time: se.part.now(), Kind: EventPasswordChange,
		Account: se.account, Cookie: se.cookie,
	})
	return nil
}

// ActivityPage returns the account's access rows; this is what the
// monitoring scraper reads after logging in (§3.1).
func (se *Session) ActivityPage() ([]Access, error) {
	se.part.mu.Lock()
	_, err := se.touch()
	se.part.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return se.svc.ActivityPage(se.account)
}

// ActivityPageSince returns the activity rows that changed since the
// given cursor (a previously returned version; 0 selects every row)
// plus the account's current access version, atomically. Rows come
// back in page order (First, then Cookie). The monitor's version-gated
// scraper uses this to pull per-account deltas instead of copying the
// whole page on every tick; the returned version is the cursor for the
// next scrape.
func (se *Session) ActivityPageSince(cursor uint64) ([]Access, uint64, error) {
	var out []Access
	v, err := se.ActivitySince(cursor, func(a Access) {
		out = append(out, a)
	})
	return out, v, err
}

// ActivitySince streams the activity rows that changed since the
// cursor to visit, in page order, and returns the current access
// version. It is the allocation-free flavor of ActivityPageSince: the
// rows are materialized on the stack straight from the columnar
// store, so a delta scrape allocates nothing the visitor does not.
// The visitor runs under the partition lock and must not call back
// into the Service.
func (se *Session) ActivitySince(cursor uint64, visit func(Access)) (uint64, error) {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return 0, err
	}
	for _, row := range a.acc.order {
		if a.acc.rev[row] > cursor {
			visit(a.acc.materialize(row))
		}
	}
	return a.accessVersion.Load(), nil
}

// Delete moves a message to trash.
func (se *Session) Delete(id MessageID) error {
	se.part.mu.Lock()
	defer se.part.mu.Unlock()
	a, err := se.touch()
	if err != nil {
		return err
	}
	i, err := a.rowLocked(id)
	if err != nil {
		return err
	}
	a.msgs.folder[i] = FolderTrash
	return nil
}
