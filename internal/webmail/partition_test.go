package webmail

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// testEndpoint returns a deterministic network identity for logins.
func testEndpoint() netsim.Endpoint {
	space := netsim.NewAddressSpace(rng.New(11), geo.Default())
	ep, err := space.FromCity("Paris")
	if err != nil {
		panic(err)
	}
	return ep
}

// TestPartitionedStoreConcurrency drives disjoint account populations
// on separate partitions from parallel goroutines — the access pattern
// of the sharded experiment engine — and checks cross-partition
// aggregates afterwards. Run with -race.
func TestPartitionedStoreConcurrency(t *testing.T) {
	const parts = 4
	const perPart = 8
	start := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

	clock := simtime.NewClock(start)
	svc := NewService(Config{Clock: clock, Partitions: parts})
	if svc.Partitions() != parts {
		t.Fatalf("partitions = %d, want %d", svc.Partitions(), parts)
	}

	// Per-partition clocks, as the sharded engine binds them.
	clocks := make([]*simtime.Clock, parts)
	for p := 0; p < parts; p++ {
		clocks[p] = simtime.NewClock(start)
		if err := svc.ConfigurePartition(p, clocks[p].Now, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.ConfigurePartition(parts, nil, nil); err == nil {
		t.Fatal("out-of-range partition accepted")
	}

	addr := func(p, i int) string { return fmt.Sprintf("p%d-user%d@honeymail.example", p, i) }
	for p := 0; p < parts; p++ {
		for i := 0; i < perPart; i++ {
			if err := svc.CreateAccountIn(p, addr(p, i), "pw", "U"); err != nil {
				t.Fatal(err)
			}
			if got := svc.PartitionOf(addr(p, i)); got != p {
				t.Fatalf("%s placed on partition %d, want %d", addr(p, i), got, p)
			}
		}
	}
	if err := svc.CreateAccountIn(0, addr(0, 0), "pw", "U"); err != ErrAccountExists {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := svc.CreateAccountIn(99, "x@y", "pw", "U"); err == nil {
		t.Fatal("out-of-range partition create accepted")
	}

	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := testEndpoint()
			for round := 0; round < 50; round++ {
				for i := 0; i < perPart; i++ {
					a := addr(p, i)
					id, err := svc.Seed(a, FolderInbox, "x@y", a,
						fmt.Sprintf("wire %d", round), "transfer details", clocks[p].Now())
					if err != nil {
						t.Error(err)
						return
					}
					se, err := svc.Login(a, "pw", fmt.Sprintf("c-%d-%d", p, i), ep)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := se.Read(id); err != nil {
						t.Error(err)
						return
					}
					if _, err := se.Search("transfer"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Cross-partition aggregates see every account.
	if got := len(svc.Accounts()); got != parts*perPart {
		t.Fatalf("Accounts() = %d, want %d", got, parts*perPart)
	}
	for p := 0; p < parts; p++ {
		for i := 0; i < perPart; i++ {
			c, err := svc.Counts(addr(p, i))
			if err != nil {
				t.Fatal(err)
			}
			if c.Inbox != 50 {
				t.Fatalf("%s inbox = %d, want 50", addr(p, i), c.Inbox)
			}
			if got := len(svc.SearchLog(addr(p, i))); got != 50 {
				t.Fatalf("%s search log = %d, want 50", addr(p, i), got)
			}
		}
	}
}

// TestPartitionClockBinding checks that each partition stamps events
// with its own bound clock, not the service-wide one.
func TestPartitionClockBinding(t *testing.T) {
	start := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	svc := NewService(Config{Clock: simtime.NewClock(start), Partitions: 2})

	ahead := simtime.NewClock(start.Add(72 * time.Hour))
	if err := svc.ConfigurePartition(1, ahead.Now, nil); err != nil {
		t.Fatal(err)
	}
	svc.CreateAccountIn(0, "base@x", "pw", "B")
	svc.CreateAccountIn(1, "ahead@x", "pw", "A")

	ep := testEndpoint()
	se0, err := svc.Login("base@x", "pw", "c0", ep)
	if err != nil {
		t.Fatal(err)
	}
	se1, err := svc.Login("ahead@x", "pw", "c1", ep)
	if err != nil {
		t.Fatal(err)
	}
	_ = se0
	_ = se1
	rows0, _ := svc.ActivityPage("base@x")
	rows1, _ := svc.ActivityPage("ahead@x")
	if !rows0[0].First.Equal(start) {
		t.Fatalf("partition 0 stamped %v, want %v", rows0[0].First, start)
	}
	if !rows1[0].First.Equal(start.Add(72 * time.Hour)) {
		t.Fatalf("partition 1 stamped %v, want %v", rows1[0].First, start.Add(72*time.Hour))
	}
}

// TestPartitionOutboundBinding checks that sent mail routes to the
// partition's own outbound sink.
func TestPartitionOutboundBinding(t *testing.T) {
	start := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	svc := NewService(Config{Clock: simtime.NewClock(start), Partitions: 2})

	type captured struct {
		mu    sync.Mutex
		mails []string
	}
	sinks := [2]*captured{{}, {}}
	for p := 0; p < 2; p++ {
		p := p
		svc.ConfigurePartition(p, nil, OutboundFunc(func(from, to, subject, body string, at time.Time) error {
			sinks[p].mu.Lock()
			defer sinks[p].mu.Unlock()
			sinks[p].mails = append(sinks[p].mails, to)
			return nil
		}))
	}
	svc.CreateAccountIn(0, "zero@x", "pw", "Z")
	svc.CreateAccountIn(1, "one@x", "pw", "O")
	ep := testEndpoint()
	for _, acct := range []string{"zero@x", "one@x"} {
		se, err := svc.Login(acct, "pw", "", ep)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := se.Send("victim@elsewhere.example", "hi", "body"); err != nil {
			t.Fatal(err)
		}
	}
	if len(sinks[0].mails) != 1 || len(sinks[1].mails) != 1 {
		t.Fatalf("sink routing: partition0=%d partition1=%d, want 1 and 1",
			len(sinks[0].mails), len(sinks[1].mails))
	}
}
