package webmail

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/simtime"
)

func newWireFixture(t *testing.T) (*Service, *netsim.AddressSpace, string) {
	t.Helper()
	clock := simtime.NewClock(epoch)
	svc := NewService(Config{Clock: clock})
	if err := svc.CreateAccount("alice@honeymail.example", "hunter2", "Alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Seed("alice@honeymail.example", FolderInbox, "bob@x", "alice@honeymail.example", "wire transfer", "payment details", epoch.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return svc, netsim.NewAddressSpace(rng.New(1), geo.Default()), addr
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWireLoginAndList(t *testing.T) {
	_, space, addr := newWireFixture(t)
	c := dialT(t, addr)
	ep, _ := space.FromCity("Berlin")
	ep.UserAgent = netsim.UserAgentFor(rng.New(2), netsim.BrowserChrome)
	resp, err := c.Login("alice@honeymail.example", "hunter2", "", ep)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Cookie == "" {
		t.Fatalf("login resp = %+v", resp)
	}
	lst, err := c.Do(Request{Op: "list", Folder: string(FolderInbox)})
	if err != nil {
		t.Fatal(err)
	}
	if !lst.OK || len(lst.Messages) != 1 {
		t.Fatalf("list resp = %+v", lst)
	}
}

func TestWireRequiresLogin(t *testing.T) {
	_, _, addr := newWireFixture(t)
	c := dialT(t, addr)
	resp, err := c.Do(Request{Op: "list", Folder: "inbox"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "not logged in") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestWireBadCredentials(t *testing.T) {
	_, space, addr := newWireFixture(t)
	c := dialT(t, addr)
	ep, _ := space.FromCity("Berlin")
	resp, err := c.Login("alice@honeymail.example", "wrong", "", ep)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "invalid credentials") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestWireFullAttackerFlow(t *testing.T) {
	svc, space, addr := newWireFixture(t)
	c := dialT(t, addr)
	ep, _ := space.FromCity("Bucharest")
	if resp, err := c.Login("alice@honeymail.example", "hunter2", "", ep); err != nil || !resp.OK {
		t.Fatalf("login: %v %+v", err, resp)
	}
	// Search for valuables.
	sr, err := c.Do(Request{Op: "search", Query: "payment"})
	if err != nil || !sr.OK || len(sr.Messages) != 1 {
		t.Fatalf("search: %v %+v", err, sr)
	}
	// Read the hit.
	rd, err := c.Do(Request{Op: "read", ID: sr.Messages[0].ID})
	if err != nil || !rd.OK || !rd.Message.Read {
		t.Fatalf("read: %v %+v", err, rd)
	}
	// Star it.
	if resp, err := c.Do(Request{Op: "star", ID: sr.Messages[0].ID}); err != nil || !resp.OK {
		t.Fatalf("star: %v %+v", err, resp)
	}
	// Leave a draft.
	dr, err := c.Do(Request{Op: "draft", To: "victim@x", Subject: "pay me", Body: "send bitcoin"})
	if err != nil || !dr.OK || dr.ID == 0 {
		t.Fatalf("draft: %v %+v", err, dr)
	}
	// Hijack: change password.
	if resp, err := c.Do(Request{Op: "chpass", Password: "owned"}); err != nil || !resp.OK {
		t.Fatalf("chpass: %v %+v", err, resp)
	}
	// Check the activity page over the wire.
	ap, err := c.Do(Request{Op: "activity"})
	if err != nil || !ap.OK || len(ap.Accesses) != 1 {
		t.Fatalf("activity: %v %+v", err, ap)
	}
	if ap.Accesses[0].City != "Bucharest" {
		t.Fatalf("activity city = %q", ap.Accesses[0].City)
	}
	// Server-side state agrees.
	if pw, _ := svc.Password("alice@honeymail.example"); pw != "owned" {
		t.Fatalf("password = %q", pw)
	}
}

func TestWireUnknownOp(t *testing.T) {
	_, space, addr := newWireFixture(t)
	c := dialT(t, addr)
	ep, _ := space.FromCity("Berlin")
	c.Login("alice@honeymail.example", "hunter2", "", ep)
	resp, err := c.Do(Request{Op: "frobnicate"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestWireBadIPRejected(t *testing.T) {
	_, _, addr := newWireFixture(t)
	c := dialT(t, addr)
	resp, err := c.Do(Request{Op: "login", Account: "alice@honeymail.example", Password: "hunter2", IP: "not-an-ip"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "bad ip") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestWireConcurrentClients(t *testing.T) {
	_, space, addr := newWireFixture(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			c, err := Dial(ctx, addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ep := space.TorExit()
			if resp, err := c.Login("alice@honeymail.example", "hunter2", "", ep); err != nil || !resp.OK {
				errs <- err
				return
			}
			if resp, err := c.Do(Request{Op: "list", Folder: "inbox"}); err != nil || !resp.OK {
				errs <- err
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	svc := NewService(Config{Clock: simtime.NewClock(epoch)})
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialT(t, addr)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Requests after close should fail, not hang.
	done := make(chan struct{})
	go func() {
		c.Do(Request{Op: "list"})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after server close")
	}
}
