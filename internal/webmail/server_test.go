package webmail

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/simtime"
)

func newWireFixture(t *testing.T) (*Service, *netsim.AddressSpace, string) {
	t.Helper()
	clock := simtime.NewClock(epoch)
	svc := NewService(Config{Clock: clock})
	if err := svc.CreateAccount("alice@honeymail.example", "hunter2", "Alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Seed("alice@honeymail.example", FolderInbox, "bob@x", "alice@honeymail.example", "wire transfer", "payment details", epoch.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return svc, netsim.NewAddressSpace(rng.New(1), geo.Default()), addr
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWireLoginAndList(t *testing.T) {
	_, space, addr := newWireFixture(t)
	c := dialT(t, addr)
	ep, _ := space.FromCity("Berlin")
	ep.UserAgent = netsim.UserAgentFor(rng.New(2), netsim.BrowserChrome)
	resp, err := c.Login("alice@honeymail.example", "hunter2", "", ep)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Cookie == "" {
		t.Fatalf("login resp = %+v", resp)
	}
	lst, err := c.Do(Request{Op: "list", Folder: string(FolderInbox)})
	if err != nil {
		t.Fatal(err)
	}
	if !lst.OK || len(lst.Messages) != 1 {
		t.Fatalf("list resp = %+v", lst)
	}
}

func TestWireRequiresLogin(t *testing.T) {
	_, _, addr := newWireFixture(t)
	c := dialT(t, addr)
	resp, err := c.Do(Request{Op: "list", Folder: "inbox"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "not logged in") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestWireBadCredentials(t *testing.T) {
	_, space, addr := newWireFixture(t)
	c := dialT(t, addr)
	ep, _ := space.FromCity("Berlin")
	resp, err := c.Login("alice@honeymail.example", "wrong", "", ep)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "invalid credentials") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestWireFullAttackerFlow(t *testing.T) {
	svc, space, addr := newWireFixture(t)
	c := dialT(t, addr)
	ep, _ := space.FromCity("Bucharest")
	if resp, err := c.Login("alice@honeymail.example", "hunter2", "", ep); err != nil || !resp.OK {
		t.Fatalf("login: %v %+v", err, resp)
	}
	// Search for valuables.
	sr, err := c.Do(Request{Op: "search", Query: "payment"})
	if err != nil || !sr.OK || len(sr.Messages) != 1 {
		t.Fatalf("search: %v %+v", err, sr)
	}
	// Read the hit.
	rd, err := c.Do(Request{Op: "read", ID: sr.Messages[0].ID})
	if err != nil || !rd.OK || !rd.Message.Read {
		t.Fatalf("read: %v %+v", err, rd)
	}
	// Star it.
	if resp, err := c.Do(Request{Op: "star", ID: sr.Messages[0].ID}); err != nil || !resp.OK {
		t.Fatalf("star: %v %+v", err, resp)
	}
	// Leave a draft.
	dr, err := c.Do(Request{Op: "draft", To: "victim@x", Subject: "pay me", Body: "send bitcoin"})
	if err != nil || !dr.OK || dr.ID == 0 {
		t.Fatalf("draft: %v %+v", err, dr)
	}
	// Hijack: change password.
	if resp, err := c.Do(Request{Op: "chpass", Password: "owned"}); err != nil || !resp.OK {
		t.Fatalf("chpass: %v %+v", err, resp)
	}
	// Check the activity page over the wire.
	ap, err := c.Do(Request{Op: "activity"})
	if err != nil || !ap.OK || len(ap.Accesses) != 1 {
		t.Fatalf("activity: %v %+v", err, ap)
	}
	if ap.Accesses[0].City != "Bucharest" {
		t.Fatalf("activity city = %q", ap.Accesses[0].City)
	}
	// Server-side state agrees.
	if pw, _ := svc.Password("alice@honeymail.example"); pw != "owned" {
		t.Fatalf("password = %q", pw)
	}
}

func TestWireUnknownOp(t *testing.T) {
	_, space, addr := newWireFixture(t)
	c := dialT(t, addr)
	ep, _ := space.FromCity("Berlin")
	c.Login("alice@honeymail.example", "hunter2", "", ep)
	resp, err := c.Do(Request{Op: "frobnicate"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestWireBadIPRejected(t *testing.T) {
	_, _, addr := newWireFixture(t)
	c := dialT(t, addr)
	resp, err := c.Do(Request{Op: "login", Account: "alice@honeymail.example", Password: "hunter2", IP: "not-an-ip"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "bad ip") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestWireConcurrentClients(t *testing.T) {
	_, space, addr := newWireFixture(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			c, err := Dial(ctx, addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ep := space.TorExit()
			if resp, err := c.Login("alice@honeymail.example", "hunter2", "", ep); err != nil || !resp.OK {
				errs <- err
				return
			}
			if resp, err := c.Do(Request{Op: "list", Folder: "inbox"}); err != nil || !resp.OK {
				errs <- err
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerDrainFinishesInFlight: Drain lets a request that is being
// processed write its response before the connection closes, while
// idle connections drop immediately and new ones are refused — the
// graceful-drain contract the live fleet's SIGTERM handling relies on.
func TestServerDrainFinishesInFlight(t *testing.T) {
	clock := simtime.NewClock(epoch)
	// An outbound sink the test can block: the "send" request parks
	// inside Deliver until released, holding the request in flight.
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	svc := NewService(Config{Clock: clock, Outbound: OutboundFunc(func(string, string, string, string, time.Time) error {
		entered <- struct{}{}
		<-gate
		return nil
	})})
	if err := svc.CreateAccount("alice@honeymail.example", "hunter2", "Alice"); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	space := netsim.NewAddressSpace(rng.New(1), geo.Default())
	busy := dialT(t, addr)
	ep, _ := space.FromCity("Berlin")
	if resp, err := busy.Login("alice@honeymail.example", "hunter2", "", ep); err != nil || !resp.OK {
		t.Fatalf("login: %v %+v", err, resp)
	}
	idle := dialT(t, addr)
	// One round trip guarantees the server accepted and is serving the
	// connection before Drain snapshots; it then sits idle in Decode.
	if resp, err := idle.Do(Request{Op: "list", Folder: "inbox"}); err != nil || resp.OK {
		t.Fatalf("pre-login list on idle conn: %v %+v", err, resp)
	}

	// Park a send mid-flight on the busy connection.
	type sendResult struct {
		resp Response
		err  error
	}
	sent := make(chan sendResult, 1)
	go func() {
		resp, err := busy.Do(Request{Op: "send", To: "victim@victims.example", Subject: "s", Body: "b"})
		sent <- sendResult{resp, err}
	}()
	<-entered

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// The idle connection must drop without waiting for the busy one.
	idleDead := make(chan struct{})
	go func() {
		idle.Do(Request{Op: "list", Folder: "inbox"})
		close(idleDead)
	}()
	select {
	case <-idleDead:
	case <-time.After(5 * time.Second):
		t.Fatal("idle connection survived drain")
	}

	// New connections are refused while draining.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if c, err := Dial(ctx, addr); err == nil {
		// Some kernels accept into the backlog of a closed listener;
		// the request itself must still fail.
		if _, err := c.Do(Request{Op: "list"}); err == nil {
			t.Fatal("request on a draining server succeeded")
		}
		c.Close()
	}
	cancel()

	// Release the gate: the in-flight send must complete with a real
	// response, then the drain finishes.
	close(gate)
	select {
	case r := <-sent:
		if r.err != nil || !r.resp.OK {
			t.Fatalf("in-flight send after drain: %v %+v", r.err, r.resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight send never completed")
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never returned")
	}
	// The drained connection is closed: the next request fails.
	if _, err := busy.Do(Request{Op: "list", Folder: "inbox"}); err == nil {
		t.Fatal("request on a drained connection succeeded")
	}
}

// TestServerDrainTimeoutForcesClose: a connection that never finishes
// its in-flight request cannot hold Drain hostage past the context.
func TestServerDrainTimeoutForcesClose(t *testing.T) {
	clock := simtime.NewClock(epoch)
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	svc := NewService(Config{Clock: clock, Outbound: OutboundFunc(func(string, string, string, string, time.Time) error {
		entered <- struct{}{}
		<-gate
		return nil
	})})
	defer close(gate)
	if err := svc.CreateAccount("alice@honeymail.example", "hunter2", "Alice"); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	space := netsim.NewAddressSpace(rng.New(1), geo.Default())
	c := dialT(t, addr)
	ep, _ := space.FromCity("Berlin")
	if resp, err := c.Login("alice@honeymail.example", "hunter2", "", ep); err != nil || !resp.OK {
		t.Fatalf("login: %v %+v", err, resp)
	}
	go c.Do(Request{Op: "send", To: "v@victims.example", Subject: "s", Body: "b"})
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain = %v, want context.DeadlineExceeded", err)
	}
}

// TestServerDrainIdempotent: draining twice (or after Close) returns
// immediately instead of deadlocking.
func TestServerDrainIdempotent(t *testing.T) {
	svc := NewService(Config{Clock: simtime.NewClock(epoch)})
	srv := NewServer(svc)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close()
}

func TestServerCloseUnblocksClients(t *testing.T) {
	svc := NewService(Config{Clock: simtime.NewClock(epoch)})
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialT(t, addr)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Requests after close should fail, not hang.
	done := make(chan struct{})
	go func() {
		c.Do(Request{Op: "list"})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after server close")
	}
}
