package honeynet

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/appscript"
	"repro/internal/geo"
	"repro/internal/monitor"
)

// Streaming classification wiring. With streaming enabled (the
// default), every shard's monitoring pipeline feeds its own
// analysis.StreamClassifier through a monitor.Sink while the
// simulation runs; at the end, Aggregates finalises each shard's
// classifier and merges the per-shard aggregates — O(shards) merge
// work — instead of materialising and sorting the full merged
// dataset. Dataset() remains available as the batch path; for a
// fixed seed both render byte-identical reports at any shard count
// (asserted by TestStreamMatchesBatchReports at the repo root).

// actionKind maps a script notification kind to the analysis action
// it evidences. Heartbeat and quota notifications are liveness, not
// attacker actions, and map to nothing.
func actionKind(k appscript.NotificationKind) (analysis.ActionKind, bool) {
	switch k {
	case appscript.NoteRead:
		return analysis.ActionRead, true
	case appscript.NoteSent:
		return analysis.ActionSent, true
	case appscript.NoteStarred:
		return analysis.ActionStarred, true
	case appscript.NoteDraft:
		return analysis.ActionDraft, true
	default:
		return "", false
	}
}

// streamSink adapts one shard's monitoring observations to its
// StreamClassifier. Plan annotations (outlet, hint, leak time) are
// not known to the monitor; they are resolved from the experiment
// plan when the aggregates are finalised.
type streamSink struct {
	sc *analysis.StreamClassifier
}

func (s *streamSink) ObserveAccess(r monitor.AccessRecord) {
	a := analysis.Access{
		Account:   r.Account,
		Cookie:    r.Cookie,
		First:     r.First,
		Last:      r.Last,
		IP:        r.IP,
		City:      r.City,
		Country:   r.Country,
		HasPoint:  r.HasPoint,
		UserAgent: r.UserAgent,
	}
	a.Point = geo.Point{Lat: r.Lat, Lon: r.Lon}
	s.sc.ObserveAccess(a)
}

func (s *streamSink) ObserveNotification(n appscript.Notification) {
	kind, ok := actionKind(n.Kind)
	if !ok {
		return
	}
	s.sc.ObserveAction(analysis.Action{
		Time:    n.Time,
		Account: n.Account,
		Kind:    kind,
		Message: int64(n.Message),
		Body:    n.Body,
	})
}

func (s *streamSink) ObserveFailure(f monitor.ScrapeFailure) {
	if f.Reason != "password-changed" {
		return
	}
	s.sc.ObservePasswordChange(analysis.PasswordChange{Account: f.Account, Time: f.Time})
}

// StreamingEnabled reports whether the experiment classifies accesses
// on the fly (Config.DisableStreaming unset).
func (e *Experiment) StreamingEnabled() bool { return !e.cfg.DisableStreaming }

// BuildAggregates finalises every shard's streaming classifier
// against the plan facts and merges the per-shard aggregates. It
// recomputes from the classifiers' retained state on every call (the
// benchmark harness relies on that); use Aggregates for the cached
// form. It errors when streaming is disabled.
func (e *Experiment) BuildAggregates() (*analysis.Aggregates, error) {
	if e.cfg.DisableStreaming {
		return nil, fmt.Errorf("honeynet: streaming disabled; use Dataset")
	}
	facts := func(account string) analysis.Facts {
		b, ok := e.blockOf[account]
		if !ok {
			return analysis.Facts{}
		}
		return analysis.Facts{
			Outlet:   b.spec.Channel,
			Hint:     b.spec.Hint,
			LeakTime: e.leakTimes[account],
		}
	}
	listed := func(ip string) bool {
		_, ok := e.bl.LookupString(ip)
		return ok
	}
	merged := analysis.NewAggregates(nil, nil)
	for _, sh := range e.shards {
		if err := merged.Merge(sh.sc.Finalize(facts, listed)); err != nil {
			return nil, fmt.Errorf("honeynet: merge shard %d aggregates: %w", sh.id, err)
		}
	}
	merged.SuspendedAccounts = e.svc.SuspendedCount()
	return merged, nil
}

// Aggregates returns the merged streaming aggregates, building them
// on first call and caching the result.
func (e *Experiment) Aggregates() (*analysis.Aggregates, error) {
	if e.agg != nil {
		return e.agg, nil
	}
	agg, err := e.BuildAggregates()
	if err != nil {
		return nil, err
	}
	e.agg = agg
	return agg, nil
}

// SeededContents exposes the seeded mailbox texts (account → message
// id → subject/body), the dA corpus of the §4.6 keyword inference, as
// a lazy view over webmail's columnar message store — the engine
// holds no second copy of the corpus.
func (e *Experiment) SeededContents() analysis.ContentsView { return e.seededView() }
