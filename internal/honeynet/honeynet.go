package honeynet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/appscript"
	"repro/internal/attacker"
	"repro/internal/corpus"
	"repro/internal/geo"
	"repro/internal/malnet"
	"repro/internal/netsim"
	"repro/internal/outlets"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/sinkhole"
	"repro/internal/webmail"
)

// Config parameterises an Experiment.
type Config struct {
	// Seed drives every stochastic choice; a fixed seed reproduces the
	// entire run bit-for-bit.
	Seed int64
	// Plan is the deployment blueprint; nil selects Table1Plan.
	Plan []GroupSpec
	// Start is the leak date; zero selects the paper's 2015-06-25.
	Start time.Time
	// Duration is the observation window; zero selects the paper's
	// 7 months (236 days, 2015-06-25 → 2016-02-16).
	Duration time.Duration
	// MailboxSize is the seeded message count per account; zero
	// selects 90.
	MailboxSize int
	// ScanInterval is the Apps-Script scan cadence; zero selects the
	// paper's 10 minutes.
	ScanInterval time.Duration
	// ScrapeInterval is the activity-page scraping cadence; zero
	// selects 1 hour.
	ScrapeInterval time.Duration
	// HiddenScripts controls whether the monitoring scripts are tucked
	// away (the paper's design). Defaults to true; the ablation bench
	// sets it false.
	VisibleScripts bool
	// DisableCaseStudies skips the §4.7 scripted scenarios.
	DisableCaseStudies bool
	// LoginRisk forwards to the platform (paper: disabled on honey
	// accounts; the ablation enables it).
	LoginRisk webmail.LoginRiskConfig
	// Shards partitions the plan across this many parallel schedulers
	// (default 1: serial, the paper's setup). The merged dataset for a
	// fixed seed is identical at any shard count; only wall-clock time
	// changes. Values above the number of plan blocks are clamped.
	Shards int
	// ScaleFactor replicates the plan this many times (default 1),
	// simulating ScaleFactor·100 accounts for the Table 1 plan. Each
	// replica draws fresh, independent randomness.
	ScaleFactor int
	// DisableStreaming turns off the streaming classification
	// pipeline (see stream.go). By default every shard classifies its
	// accesses on the fly and Aggregates() merges per-shard aggregates
	// in O(shards); with streaming disabled only the batch Dataset()
	// path is available. For a fixed seed both paths render
	// byte-identical reports.
	DisableStreaming bool
	// DisableDirtyTracking turns off the monitor's version-gated
	// scraper: every scrape tick then logs into every tracked account
	// and copies the full activity page, whether or not anything
	// changed (the pre-dirty-tracking behaviour). The observed dataset
	// and every report are identical either way; the flag exists as an
	// escape hatch and to measure what dirty tracking saves.
	DisableDirtyTracking bool
	// Sites overrides the outlet catalogue credentials are leaked
	// through (nil selects outlets.DefaultSites, the paper's venues).
	// The scenario layer uses this to vary leak-exposure dynamics
	// (slower pickup cadences, different venue mixes).
	Sites []*outlets.Site
	// Populations overrides the per-channel attacker calibrations
	// (nil selects attacker.DefaultPopulations, the paper's measured
	// marginals).
	Populations *attacker.Populations
	// Locale overrides the decoy-identity locale (names + mail
	// domain) the honey personas are drawn from; nil selects the
	// seed deployment's English pool.
	Locale *corpus.Locale
	// SetupSeed, when non-zero, drives the setup phase (personas,
	// mailbox corpora, passwords) from its own stream instead of the
	// experiment root stream. Experiments sharing a SetupSeed (and the
	// other setup-relevant fields — see SetupFingerprint) produce
	// identical honey accounts while their Seed-driven attacker and
	// outlet streams diverge: the warm-started scenario matrix runs
	// the shared setup once and forks every variant from its snapshot.
	// Zero keeps the legacy layout, where setup draws from the root
	// stream and the default path stays byte-identical.
	SetupSeed int64
	// DefenderCadence enables the C3 defender loop (see defender.go):
	// every cadence, a provider-side defender range-queries the
	// shard-local C3 index fragment for each still-undetected honey
	// account's leaked credential and, on a hit, resets the password —
	// cutting every live attacker session off. Zero (the default)
	// disables the subsystem entirely: no fragments are built, no
	// wheel chain is armed, and every dataset and report is
	// byte-identical to a run without it.
	DefenderCadence time.Duration
	// C3BucketBits is the k-anonymity prefix width of the C3
	// fragments (0 selects c3.DefaultBucketBits). Narrower prefixes
	// mean bigger buckets — more privacy, more response bytes — and
	// never change detection outcomes, only query cost. Only
	// meaningful with DefenderCadence > 0.
	C3BucketBits int
	// C3Variants turns on MIGP-style variant indexing in the C3
	// fragments: deterministic password mutations are indexed
	// alongside each ingested credential. Only meaningful with
	// DefenderCadence > 0.
	C3Variants bool
	// SetupWorkers bounds the goroutines the parallel setup layout
	// fans account construction out over; zero selects one per
	// available CPU. It only matters with SetupSeed != 0 (the legacy
	// layout is inherently serial) and never changes results: every
	// account draws from its own substream and all scheduler-visible
	// ordering is per-shard, so the fleet is byte-identical at any
	// worker count — the knob trades goroutines for cold-start
	// wall-clock only.
	SetupWorkers int
}

// DefaultStart is the paper's leak date, 2015-06-25 (§3.2) — the
// Config.Start zero-value default. Exported so layers that offset the
// start (the scenario timezone axis) share the one constant.
func DefaultStart() time.Time {
	return time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
}

func (c Config) withDefaults() Config {
	if c.Plan == nil {
		c.Plan = Table1Plan()
	}
	if c.Start.IsZero() {
		c.Start = DefaultStart()
	}
	if c.Duration <= 0 {
		c.Duration = 236 * 24 * time.Hour
	}
	if c.MailboxSize <= 0 {
		c.MailboxSize = 90
	}
	if c.ScanInterval <= 0 {
		c.ScanInterval = 10 * time.Minute
	}
	if c.ScrapeInterval <= 0 {
		c.ScrapeInterval = time.Hour
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 1
	}
	if c.SetupWorkers <= 0 {
		c.SetupWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Sites == nil {
		c.Sites = outlets.DefaultSites()
	}
	return c
}

// Experiment owns one full deployment, sharded across parallel
// schedulers.
type Experiment struct {
	cfg  Config
	plan []GroupSpec // expanded (ScaleFactor applied)
	src  *rng.Source

	gaz *geo.Gazetteer
	bl  *netsim.Blacklist
	svc *webmail.Service

	shards []*shard
	blocks []*block
	set    *simtime.ShardSet

	assignments []Assignment
	blockOf     map[string]*block
	leakTimes   map[string]time.Time
	handles     []string // honey email local parts (TF-IDF drop list)

	setupDone bool
	leaked    bool

	// setupPos is the setup stream's final draw position, recorded at
	// the end of Setup for the snapshot's stream section (the setup
	// stream itself is not needed again — accounts are data by then).
	setupPos uint64

	agg *analysis.Aggregates // cached merged streaming aggregates
}

// New constructs an experiment; call Setup, Leak, then Run.
func New(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	if err := ValidatePlan(cfg.Plan); err != nil {
		return nil, err
	}
	plan := expandPlan(cfg.Plan, cfg.ScaleFactor)
	if cfg.Shards > len(plan) {
		cfg.Shards = len(plan)
	}
	// Every block plus the monitor needs its own IP-range tenant;
	// beyond that, distinct attackers could silently share addresses.
	if len(plan)+1 > netsim.TenantSlots {
		return nil, fmt.Errorf("honeynet: plan expands to %d blocks; at most %d supported (reduce ScaleFactor)",
			len(plan), netsim.TenantSlots-1)
	}
	src := rng.New(cfg.Seed)
	gaz := geo.Default()
	bl := netsim.NewBlacklist()

	// The monitoring infrastructure's network identity: one endpoint,
	// shared by every shard's scraper, in the researchers' city
	// (§4.1's self-filter drops all accesses from it). Its address
	// tenant sits one past the blocks' so it collides with no block.
	monSpace := netsim.NewAddressSpaceTenant(src.ForkNamed("address-space"), gaz, len(plan))
	monEP, err := monSpace.FromCity("London")
	if err != nil {
		return nil, fmt.Errorf("honeynet: monitor endpoint: %w", err)
	}

	svc := webmail.NewService(webmail.Config{
		Clock:      simtime.NewClock(cfg.Start),
		LoginRisk:  cfg.LoginRisk,
		Partitions: cfg.Shards,
	})
	shards, set, err := newShards(cfg.Shards, cfg, svc, monEP)
	if err != nil {
		return nil, err
	}
	e := &Experiment{
		cfg:       cfg,
		plan:      plan,
		src:       src,
		gaz:       gaz,
		bl:        bl,
		svc:       svc,
		shards:    shards,
		set:       set,
		blockOf:   make(map[string]*block),
		leakTimes: make(map[string]time.Time),
	}
	for i, spec := range plan {
		sh := shards[i%len(shards)]
		e.blocks = append(e.blocks, newBlock(i, len(plan), spec, sh, src, cfg, gaz, bl, svc))
	}
	return e, nil
}

// Accessors used by examples, benches and tests.
func (e *Experiment) Service() *webmail.Service    { return e.svc }
func (e *Experiment) Blacklist() *netsim.Blacklist { return e.bl }
func (e *Experiment) Assignments() []Assignment    { return append([]Assignment(nil), e.assignments...) }
func (e *Experiment) Shards() int                  { return len(e.shards) }
func (e *Experiment) ShardSet() *simtime.ShardSet  { return e.set }

// Plan returns the expanded (scale-applied) plan the experiment runs.
func (e *Experiment) Plan() []GroupSpec { return append([]GroupSpec(nil), e.plan...) }

// Config returns the experiment's configuration with defaults
// applied — the exact config a snapshot of this experiment resumes
// under (ResumeWith takes it, or a post-fork variation of it).
func (e *Experiment) Config() Config { return e.cfg }

// Installed reports whether an account still has a live monitoring
// script (routed to the owning shard's Apps-Script runtime).
func (e *Experiment) Installed(account string) bool {
	b, ok := e.blockOf[account]
	return ok && b.shard.runtime.Installed(account)
}

// Records merges the ground-truth attacker records of every block,
// ordered by first activity (cookie breaks ties deterministically).
func (e *Experiment) Records() []attacker.Record {
	var out []attacker.Record
	for _, b := range e.blocks {
		out = append(out, b.engine.Records()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstAt.Equal(out[j].FirstAt) {
			return out[i].FirstAt.Before(out[j].FirstAt)
		}
		return out[i].Cookie < out[j].Cookie
	})
	return out
}

// Blackmailers sums the §4.7 blackmail sessions across blocks.
func (e *Experiment) Blackmailers() int {
	n := 0
	for _, b := range e.blocks {
		n += b.engine.Blackmailers()
	}
	return n
}

// ResaleWaves merges the per-account resale-wave timestamps across
// blocks (account populations are disjoint between blocks).
func (e *Experiment) ResaleWaves() map[string][]time.Time {
	out := make(map[string][]time.Time)
	for _, b := range e.blocks {
		for acct, waves := range b.engine.ResaleWaves() {
			out[acct] = append(out[acct], waves...)
		}
	}
	return out
}

// AllInquiries gathers underground-forum buyer inquiries across every
// block's outlet registry.
func (e *Experiment) AllInquiries() []outlets.Inquiry {
	var out []outlets.Inquiry
	for _, b := range e.blocks {
		out = append(out, b.reg.AllInquiries()...)
	}
	return out
}

// SinkholeCount returns the number of captured outbound messages
// across all shard sinkholes.
func (e *Experiment) SinkholeCount() int {
	n := 0
	for _, sh := range e.shards {
		n += sh.sink.Count()
	}
	return n
}

// Sinkholed returns every captured outbound message, merged across
// shard sinkholes in shard order.
func (e *Experiment) Sinkholed() []sinkhole.StoredMail {
	var out []sinkhole.StoredMail
	for _, sh := range e.shards {
		out = append(out, sh.sink.All()...)
	}
	return out
}

// setupSeed returns the seed that drives the setup phase: SetupSeed
// when the split layout is selected, the root seed otherwise.
func (c Config) setupSeed() int64 {
	if c.SetupSeed != 0 {
		return c.SetupSeed
	}
	return c.Seed
}

// Setup creates, seeds and instruments the honey accounts (§3.2
// "Honey account setup"), and starts the monitoring pipeline. Its
// output is independent of the shard count and — in the SetupSeed
// layout — of the worker count. With Config.SetupSeed set, every
// setup draw comes from a substream of that seed, making the produced
// accounts a pure function of the setup-relevant configuration (see
// SetupFingerprint) — the property the snapshot warm-start forks rely
// on — and letting account construction fan out in parallel (see
// setupParallel). SetupSeed zero keeps the legacy serial layout,
// byte-identical to the seed deployment.
func (e *Experiment) Setup() error {
	if e.setupDone {
		return fmt.Errorf("honeynet: Setup called twice")
	}
	n := PlanAccounts(e.plan)
	locale := corpus.DefaultLocale()
	if e.cfg.Locale != nil {
		locale = *e.cfg.Locale
	}
	var err error
	if e.cfg.SetupSeed != 0 {
		err = e.setupParallel(n, locale)
	} else {
		err = e.setupLegacy(n, locale)
	}
	if err != nil {
		return err
	}
	for _, sh := range e.shards {
		sh.mon.Start(e.cfg.ScrapeInterval)
	}
	e.setupDone = true
	return nil
}

// setupLegacy is the SetupSeed==0 layout: every draw interleaves
// serially on the experiment root stream, byte-for-byte the seed
// deployment's behaviour (the calibration bands and the plain-CLI
// goldens pin it).
func (e *Experiment) setupLegacy(n int, locale corpus.Locale) error {
	setupSrc := e.src // legacy layout: setup shares the root stream
	personas := corpus.NewPersonasLocale(setupSrc.ForkNamed("personas"), n, locale)
	gen := corpus.NewGenerator(setupSrc.ForkNamed("corpus"), corpus.DefaultConfig())

	seedStart := e.cfg.Start.Add(-180 * 24 * time.Hour)
	var msgs []corpus.Message // mailbox buffer, reused across accounts
	idx := 0
	for _, b := range e.blocks {
		b.start = idx
		for i := 0; i < b.spec.Count; i++ {
			p := personas[idx]
			idx++
			password := fmt.Sprintf("hp-%08x", setupSrc.Int63()&0xffffffff)
			msgs = gen.MailboxAppend(msgs[:0], p, e.cfg.MailboxSize, seedStart, e.cfg.Start)
			if err := e.createAccount(b, p, password, msgs); err != nil {
				return err
			}
			e.register(b, p.Email, password, p.Handle())
		}
		b.end = idx
	}
	e.setupPos = setupSrc.Pos()
	return nil
}

// setupParallel is the SetupSeed layout: the setup root makes no
// draws itself — account i draws its persona, password and mailbox
// from its own substream setupRoot.ForkShard(i, n), so the fleet is a
// pure function of the setup-relevant config, independent of worker
// count and completion order. Stream/persona/password generation fans
// out over fixed account chunks; persona-email dedup and plan
// bookkeeping run as cheap serial sweeps; account materialization
// then fans out with one goroutine per shard — all gated by a
// Config.SetupWorkers pool.
// Each goroutine walks its own shard's blocks in plan order, so every
// scheduler-visible sequence — webmail partition layout, script
// installs, trigger-wheel registrations, monitor tracking — is
// exactly the serial one, which is what keeps snapshots and reports
// byte-identical at any worker count (determinism contract #6).
func (e *Experiment) setupParallel(n int, locale corpus.Locale) error {
	setupRoot := rng.New(e.cfg.SetupSeed)
	// The recurring corporate-contact pool is shared by every mailbox;
	// it draws once, here, from its own named substream of the root.
	gen := corpus.NewGenerator(setupRoot.ForkNamed("corpus"), corpus.DefaultConfig())

	// Pass 1 (parallel): per-account streams, personas and passwords.
	// ForkShard only reads the root's seed, so the chunks share
	// nothing but disjoint slice ranges; seeding 4.8KB of math/rand
	// state per account is a real fraction of setup CPU, and it
	// parallelizes here instead of serializing ahead of the fan-out.
	streams := make([]*rng.Source, n)
	personas := make([]corpus.Persona, n)
	passwords := make([]string, n)
	pool := simtime.NewWorkerPool(e.cfg.SetupWorkers)
	var wg sync.WaitGroup
	const chunk = 256
	for lo := 0; lo < n; lo += chunk {
		lo, hi := lo, lo+chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Acquire()
			defer pool.Release()
			for i := lo; i < hi; i++ {
				src := setupRoot.ForkShard(i, n)
				personas[i] = corpus.PersonaAt(src, locale)
				passwords[i] = fmt.Sprintf("hp-%08x", src.Int63()&0xffffffff)
				streams[i] = src
			}
		}()
	}
	wg.Wait()
	// Serial sweep: email collisions resolve in account-index order
	// with the same numeric-suffix convention the legacy persona pool
	// uses, so the final addresses never depend on worker scheduling.
	used := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		if used[personas[i].Email] {
			personas[i].Email = personas[i].SuffixEmail(i)
		}
		used[personas[i].Email] = true
	}

	// Serial pass 2: plan bookkeeping (handles, assignments, blockOf
	// are experiment-global), leaving the workers nothing but
	// shard-local and per-account work.
	idx := 0
	for _, b := range e.blocks {
		b.start = idx
		for i := 0; i < b.spec.Count; i++ {
			e.register(b, personas[idx].Email, passwords[idx], personas[idx].Handle())
			idx++
		}
		b.end = idx
	}

	// Parallel pass: one goroutine per shard materializes that shard's
	// accounts. Shards own disjoint webmail partitions, appscript
	// runtimes and monitors, so workers only meet on the service's
	// address index (briefly, inside CreateAccountIn).
	seedStart := e.cfg.Start.Add(-180 * 24 * time.Hour)
	errs := make([]error, len(e.shards))
	for si := range e.shards {
		si := si
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Acquire()
			defer pool.Release()
			wgen := gen.Split(nil)
			var msgs []corpus.Message // mailbox buffer, reused across accounts
			for _, b := range e.blocks {
				if b.shard.id != si {
					continue
				}
				for i := b.start; i < b.end; i++ {
					wgen.Reseed(streams[i])
					msgs = wgen.MailboxAppend(msgs[:0], personas[i], e.cfg.MailboxSize, seedStart, e.cfg.Start)
					if err := e.createAccount(b, personas[i], passwords[i], msgs); err != nil {
						errs[si] = err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	e.setupPos = 0 // the setup root never draws in this layout
	return nil
}

// createAccount materializes one honey account in webmail — create,
// divert the outbound envelope to the sinkhole, seed the mailbox,
// instrument — the per-account sequence both setup layouts share.
// Seeded message ids are exactly 1..len(msgs), the contract the lazy
// contents view (SeededContents) reads the corpus back through.
func (e *Experiment) createAccount(b *block, p corpus.Persona, password string, msgs []corpus.Message) error {
	if err := e.svc.CreateAccountIn(b.shard.id, p.Email, password, p.FullName()); err != nil {
		return fmt.Errorf("honeynet: create %s: %w", p.Email, err)
	}
	// All outgoing honey mail diverts to the sinkhole domain.
	if err := e.svc.SetSendFrom(p.Email, "capture@sinkhole.example"); err != nil {
		return err
	}
	for _, m := range msgs {
		folder := webmail.FolderInbox
		if m.From == p.Email {
			folder = webmail.FolderSent
		}
		if _, err := e.svc.Seed(p.Email, folder, m.From, m.To, m.Subject, m.Body, m.Date); err != nil {
			return err
		}
	}
	// Install the monitoring script on the owning shard and register
	// the account for scraping.
	return e.instrument(b, p.Email, password)
}

// instrument attaches the monitoring pipeline to one account: the
// Apps-Script scan/heartbeat triggers and the activity-page scraper.
// The scheduler-visible operation order here is what makes a resumed
// experiment re-arm into byte-identical trigger state, so Setup and
// the snapshot restore path share this exact sequence.
func (e *Experiment) instrument(b *block, email, password string) error {
	opts := appscript.Options{
		ScanInterval: e.cfg.ScanInterval,
		Hidden:       !e.cfg.VisibleScripts,
	}
	if err := b.shard.runtime.Install(email, opts); err != nil {
		return err
	}
	b.shard.mon.Track(email, password)
	return nil
}

// register records the account's plan bookkeeping (shared by Setup
// and the snapshot restore path).
func (e *Experiment) register(b *block, email, password, handle string) {
	e.handles = append(e.handles, handle)
	e.blockOf[email] = b
	e.assignments = append(e.assignments, Assignment{Account: email, Password: password, Group: b.spec})
}

// Leak publishes every account's credentials through its block's
// channel (§3.2 "Leaking account credentials") and schedules the case
// studies. Like Setup it runs serially in plan order; the scheduled
// consequences execute on each block's owning shard.
func (e *Experiment) Leak() error {
	if !e.setupDone {
		return fmt.Errorf("honeynet: Leak before Setup")
	}
	if e.leaked {
		return fmt.Errorf("honeynet: Leak called twice")
	}
	now := e.cfg.Start

	for _, b := range e.blocks {
		list := e.assignments[b.start:b.end]
		creds := make([]outlets.Credential, 0, len(list))
		for _, a := range list {
			cred := outlets.Credential{Account: a.Account, Password: a.Password}
			if b.spec.Hint != analysis.HintNone {
				cred.Hint = e.hintFor(b.spec.Hint)
			}
			creds = append(creds, cred)
			e.leakTimes[a.Account] = now
		}
		switch b.spec.Channel {
		case analysis.OutletPaste:
			e.spread(b, creds, b.reg.ByKind(outlets.KindPaste, false))
		case analysis.OutletPasteRussian:
			e.spread(b, creds, b.reg.ByKind(outlets.KindPaste, true))
		case analysis.OutletForum:
			e.spread(b, creds, b.reg.ByKind(outlets.KindForum, false))
		case analysis.OutletMalware:
			mcreds := make([]malnet.Credential, 0, len(creds))
			for _, c := range creds {
				mcreds = append(mcreds, malnet.Credential{Account: c.Account, Password: c.Password})
			}
			samples := malnet.DefaultSamples(b.src.ForkNamed("samples"), 24)
			b.sandbox.RunCampaign(samples, mcreds)
		}
	}
	if !e.cfg.DisableCaseStudies {
		e.scheduleCaseStudies()
	}
	e.armDefenders()
	e.leaked = true
	return nil
}

// spread distributes a block's credentials round-robin over its
// outlets.
func (e *Experiment) spread(b *block, creds []outlets.Credential, sites []*outlets.Outlet) {
	if len(sites) == 0 {
		return
	}
	buckets := make([][]outlets.Credential, len(sites))
	for i, c := range creds {
		buckets[i%len(sites)] = append(buckets[i%len(sites)], c)
	}
	for i, o := range sites {
		if len(buckets[i]) > 0 {
			o.Post(buckets[i], b.engine.HandlePickup)
		}
	}
}

// hintFor builds the advertised decoy-location block for a region.
func (e *Experiment) hintFor(h analysis.Hint) *outlets.LocationHint {
	switch h {
	case analysis.HintUK:
		city := rng.Pick(e.src, e.gaz.InRegion(geo.RegionUK))
		return &outlets.LocationHint{Region: "uk", Midpoint: geo.LondonMidpoint, City: city.Name}
	case analysis.HintUS:
		city := rng.Pick(e.src, e.gaz.InRegion(geo.RegionUSMidwest))
		return &outlets.LocationHint{Region: "us", Midpoint: geo.PontiacMidpoint, City: city.Name}
	default:
		return nil
	}
}

// scheduleCaseStudies wires the §4.7 scenarios onto concrete accounts:
// blackmail on three paste-leaked accounts, quota notices on two
// accounts (by reinstalling their scripts with a quota), and one
// carding-forum registration. Target selection walks the global
// assignment list in plan order — stable under any shard layout — and
// each scripted action runs on the engine of the account's own block.
func (e *Experiment) scheduleCaseStudies() {
	var pasteAccounts, forumAccounts []Assignment
	for _, a := range e.assignments {
		switch a.Group.Channel {
		case analysis.OutletPaste:
			pasteAccounts = append(pasteAccounts, a)
		case analysis.OutletForum:
			forumAccounts = append(forumAccounts, a)
		}
	}
	now := e.cfg.Start
	if len(pasteAccounts) >= 3 {
		// Group the blackmail targets per owning block, preserving
		// order, so each campaign runs on its accounts' own engine.
		targetsByBlock := make(map[*block][]string)
		var blockOrder []*block
		for _, a := range pasteAccounts[:3] {
			b := e.blockOf[a.Account]
			b.engine.RegisterCredential(a.Account, a.Password)
			if _, seen := targetsByBlock[b]; !seen {
				blockOrder = append(blockOrder, b)
			}
			targetsByBlock[b] = append(targetsByBlock[b], a.Account)
		}
		for _, b := range blockOrder {
			b.engine.RunBlackmailCampaign(targetsByBlock[b], now.Add(20*24*time.Hour))
		}
	}
	if len(forumAccounts) >= 2 {
		for i, a := range forumAccounts[:2] {
			// Reinstall with a quota so the "too much computer time"
			// notice lands in the inbox, then have an attacker read it.
			b := e.blockOf[a.Account]
			b.shard.runtime.Install(a.Account, appscript.Options{
				ScanInterval: e.cfg.ScanInterval,
				Hidden:       !e.cfg.VisibleScripts,
				QuotaScans:   500 + 100*i,
			})
			b.engine.RegisterCredential(a.Account, a.Password)
			b.engine.RunQuotaReader(a.Account, now.Add(time.Duration(40+10*i)*24*time.Hour))
		}
	}
	if len(forumAccounts) >= 3 {
		a := forumAccounts[2]
		b := e.blockOf[a.Account]
		b.engine.RegisterCredential(a.Account, a.Password)
		b.engine.RunCardingRegistration(a.Account, now.Add(55*24*time.Hour))
	}
}

// Run advances every shard to the end of the observation window,
// executing shards concurrently.
func (e *Experiment) Run() error {
	if !e.leaked {
		return fmt.Errorf("honeynet: Run before Leak")
	}
	e.set.RunUntil(e.cfg.Start.Add(e.cfg.Duration), len(e.shards))
	return nil
}

// RunPooled is Run drawing its shard workers from a shared
// simtime.WorkerPool instead of one goroutine per shard — the matrix
// engine's entry point, letting N concurrent scenarios jointly
// respect one worker budget. The merged results are identical to
// Run's for the same seed.
func (e *Experiment) RunPooled(pool *simtime.WorkerPool) error {
	if !e.leaked {
		return fmt.Errorf("honeynet: Run before Leak")
	}
	e.set.RunUntilPool(e.cfg.Start.Add(e.cfg.Duration), pool)
	return nil
}

// RunAll is Setup + Leak + Run.
func (e *Experiment) RunAll() error {
	if err := e.Setup(); err != nil {
		return err
	}
	if err := e.Leak(); err != nil {
		return err
	}
	return e.Run()
}

// Dataset exports the analysis-ready dataset by merging every shard's
// monitoring pipeline, annotated with the plan facts (outlet, hint,
// leak time). The merge orders records by stable keys (account,
// cookie, time) rather than arrival, so the result is identical
// whatever the shard count or goroutine interleaving.
func (e *Experiment) Dataset() *analysis.Dataset {
	planByAccount := make(map[string]GroupSpec, len(e.assignments))
	for _, a := range e.assignments {
		planByAccount[a.Account] = a.Group
	}
	ds := &analysis.Dataset{
		Blacklisted:       make(map[string]bool),
		SuspendedAccounts: e.svc.SuspendedCount(),
		Contents:          e.seededView(),
	}
	for _, sh := range e.shards {
		for _, rec := range sh.mon.Dataset() {
			g := planByAccount[rec.Account]
			a := analysis.Access{
				Account:   rec.Account,
				Cookie:    rec.Cookie,
				First:     rec.First,
				Last:      rec.Last,
				Outlet:    g.Channel,
				Hint:      g.Hint,
				LeakTime:  e.leakTimes[rec.Account],
				IP:        rec.IP,
				City:      rec.City,
				Country:   rec.Country,
				HasPoint:  rec.HasPoint,
				UserAgent: rec.UserAgent,
			}
			a.Point = geo.Point{Lat: rec.Lat, Lon: rec.Lon}
			if _, listed := e.bl.LookupString(rec.IP); listed {
				ds.Blacklisted[rec.IP] = true
			}
			ds.Accesses = append(ds.Accesses, a)
		}
	}
	sort.Slice(ds.Accesses, func(i, j int) bool {
		if ds.Accesses[i].Account != ds.Accesses[j].Account {
			return ds.Accesses[i].Account < ds.Accesses[j].Account
		}
		return ds.Accesses[i].Cookie < ds.Accesses[j].Cookie
	})

	for _, sh := range e.shards {
		for _, n := range sh.store.Notifications() {
			kind, ok := actionKind(n.Kind)
			if !ok {
				continue // heartbeats/quota are liveness, not actions
			}
			ds.Actions = append(ds.Actions, analysis.Action{
				Time:    n.Time,
				Account: n.Account,
				Kind:    kind,
				Message: int64(n.Message),
				Body:    n.Body,
			})
		}
	}
	sort.Slice(ds.Actions, func(i, j int) bool {
		ai, aj := ds.Actions[i], ds.Actions[j]
		if !ai.Time.Equal(aj.Time) {
			return ai.Time.Before(aj.Time)
		}
		if ai.Account != aj.Account {
			return ai.Account < aj.Account
		}
		if ai.Message != aj.Message {
			return ai.Message < aj.Message
		}
		return ai.Kind < aj.Kind
	})

	for _, sh := range e.shards {
		for _, f := range sh.store.Failures() {
			if f.Reason == "password-changed" {
				ds.PasswordChanges = append(ds.PasswordChanges, analysis.PasswordChange{Account: f.Account, Time: f.Time})
			}
		}
	}
	sort.Slice(ds.PasswordChanges, func(i, j int) bool {
		pi, pj := ds.PasswordChanges[i], ds.PasswordChanges[j]
		if !pi.Time.Equal(pj.Time) {
			return pi.Time.Before(pj.Time)
		}
		return pi.Account < pj.Account
	})
	return ds
}

// DropWords returns the TF-IDF preprocessing drop list: honey handles
// plus monitor marker tokens (§4.6's preprocessing).
func (e *Experiment) DropWords() []string {
	out := append([]string(nil), e.handles...)
	out = append(out, "honeymail", "sinkhole", "capture")
	return out
}
