// Package honeynet is the core of the reproduction: the end-to-end
// honey-account experiment of the paper. It builds the webmail
// platform, creates and seeds 100 honey accounts, instruments them
// with scripts, wires the monitoring pipeline and sinkhole, leaks the
// credentials per Table 1 (paste sites, underground forums,
// information-stealing malware), runs seven months of virtual time,
// and exports the dataset every analysis and figure is computed from.
package honeynet

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/appscript"
	"repro/internal/attacker"
	"repro/internal/corpus"
	"repro/internal/geo"
	"repro/internal/malnet"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/outlets"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/sinkhole"
	"repro/internal/webmail"
)

// Config parameterises an Experiment.
type Config struct {
	// Seed drives every stochastic choice; a fixed seed reproduces the
	// entire run bit-for-bit.
	Seed int64
	// Plan is the deployment blueprint; nil selects Table1Plan.
	Plan []GroupSpec
	// Start is the leak date; zero selects the paper's 2015-06-25.
	Start time.Time
	// Duration is the observation window; zero selects the paper's
	// 7 months (236 days, 2015-06-25 → 2016-02-16).
	Duration time.Duration
	// MailboxSize is the seeded message count per account; zero
	// selects 90.
	MailboxSize int
	// ScanInterval is the Apps-Script scan cadence; zero selects the
	// paper's 10 minutes.
	ScanInterval time.Duration
	// ScrapeInterval is the activity-page scraping cadence; zero
	// selects 1 hour.
	ScrapeInterval time.Duration
	// HiddenScripts controls whether the monitoring scripts are tucked
	// away (the paper's design). Defaults to true; the ablation bench
	// sets it false.
	VisibleScripts bool
	// DisableCaseStudies skips the §4.7 scripted scenarios.
	DisableCaseStudies bool
	// LoginRisk forwards to the platform (paper: disabled on honey
	// accounts; the ablation enables it).
	LoginRisk webmail.LoginRiskConfig
}

func (c Config) withDefaults() Config {
	if c.Plan == nil {
		c.Plan = Table1Plan()
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	}
	if c.Duration <= 0 {
		c.Duration = 236 * 24 * time.Hour
	}
	if c.MailboxSize <= 0 {
		c.MailboxSize = 90
	}
	if c.ScanInterval <= 0 {
		c.ScanInterval = 10 * time.Minute
	}
	if c.ScrapeInterval <= 0 {
		c.ScrapeInterval = time.Hour
	}
	return c
}

// Experiment owns one full deployment.
type Experiment struct {
	cfg   Config
	clock *simtime.Clock
	sched *simtime.Scheduler
	src   *rng.Source

	gaz   *geo.Gazetteer
	space *netsim.AddressSpace
	bl    *netsim.Blacklist

	svc     *webmail.Service
	sink    *sinkhole.Store
	runtime *appscript.Runtime
	store   *monitor.Store
	mon     *monitor.Monitor
	reg     *outlets.Registry
	sandbox *malnet.Sandbox
	engine  *attacker.Engine

	assignments []Assignment
	leakTimes   map[string]time.Time
	contents    map[string]map[int64]string
	handles     []string // honey email local parts (TF-IDF drop list)

	setupDone bool
	leaked    bool
}

// New constructs an experiment; call Setup, Leak, then Run.
func New(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	if err := ValidatePlan(cfg.Plan); err != nil {
		return nil, err
	}
	clock := simtime.NewClock(cfg.Start)
	sched := simtime.NewScheduler(clock)
	src := rng.New(cfg.Seed)
	gaz := geo.Default()
	space := netsim.NewAddressSpace(src.ForkNamed("address-space"), gaz)
	bl := netsim.NewBlacklist()
	sink := sinkhole.NewStore(clock.Now)
	svc := webmail.NewService(webmail.Config{
		Clock:     clock,
		Outbound:  sink,
		LoginRisk: cfg.LoginRisk,
	})
	store := monitor.NewStore()
	monEP, err := space.FromCity("London") // the researchers' city (§4.1 self-filter)
	if err != nil {
		return nil, fmt.Errorf("honeynet: monitor endpoint: %w", err)
	}
	e := &Experiment{
		cfg:       cfg,
		clock:     clock,
		sched:     sched,
		src:       src,
		gaz:       gaz,
		space:     space,
		bl:        bl,
		svc:       svc,
		sink:      sink,
		store:     store,
		runtime:   appscript.NewRuntime(svc, sched, store),
		reg:       outlets.NewRegistry(outlets.DefaultSites(), sched, src.ForkNamed("outlets")),
		leakTimes: make(map[string]time.Time),
		contents:  make(map[string]map[int64]string),
	}
	e.mon = monitor.New(monitor.Config{Service: svc, Scheduler: sched, Store: store, Endpoint: monEP})
	e.engine = attacker.New(attacker.Config{
		Service: svc, Scheduler: sched, Space: space,
		Blacklist: bl, Gazetteer: gaz, Src: src.ForkNamed("attackers"),
	})
	e.sandbox = malnet.NewSandbox(malnet.SandboxConfig{}, sched, func(ex malnet.Exfiltration) {
		e.engine.HandleExfil(ex)
	})
	return e, nil
}

// Accessors used by examples, benches and tests.
func (e *Experiment) Service() *webmail.Service     { return e.svc }
func (e *Experiment) Scheduler() *simtime.Scheduler { return e.sched }
func (e *Experiment) Monitor() *monitor.Monitor     { return e.mon }
func (e *Experiment) Sinkhole() *sinkhole.Store     { return e.sink }
func (e *Experiment) Registry() *outlets.Registry   { return e.reg }
func (e *Experiment) Engine() *attacker.Engine      { return e.engine }
func (e *Experiment) Blacklist() *netsim.Blacklist  { return e.bl }
func (e *Experiment) Assignments() []Assignment     { return append([]Assignment(nil), e.assignments...) }
func (e *Experiment) Runtime() *appscript.Runtime   { return e.runtime }

// Setup creates, seeds and instruments the honey accounts (§3.2
// "Honey account setup"), and starts the monitoring pipeline.
func (e *Experiment) Setup() error {
	if e.setupDone {
		return fmt.Errorf("honeynet: Setup called twice")
	}
	n := PlanAccounts(e.cfg.Plan)
	personas := corpus.NewPersonas(e.src.ForkNamed("personas"), n, "honeymail.example")
	gen := corpus.NewGenerator(e.src.ForkNamed("corpus"), corpus.DefaultConfig())

	seedStart := e.cfg.Start.Add(-180 * 24 * time.Hour)
	idx := 0
	for _, g := range e.cfg.Plan {
		for i := 0; i < g.Count; i++ {
			p := personas[idx]
			idx++
			password := fmt.Sprintf("hp-%08x", e.src.Int63()&0xffffffff)
			if err := e.svc.CreateAccount(p.Email, password, p.FullName()); err != nil {
				return fmt.Errorf("honeynet: create %s: %w", p.Email, err)
			}
			// All outgoing honey mail diverts to the sinkhole domain.
			if err := e.svc.SetSendFrom(p.Email, "capture@sinkhole.example"); err != nil {
				return err
			}
			// Seed the Enron-style mailbox.
			msgs := gen.Mailbox(p, e.cfg.MailboxSize, seedStart, e.cfg.Start)
			e.contents[p.Email] = make(map[int64]string, len(msgs))
			for _, m := range msgs {
				folder := webmail.FolderInbox
				if m.From == p.Email {
					folder = webmail.FolderSent
				}
				id, err := e.svc.Seed(p.Email, folder, m.From, m.To, m.Subject, m.Body, m.Date)
				if err != nil {
					return err
				}
				e.contents[p.Email][int64(id)] = m.Subject + "\n" + m.Body
			}
			// Install the monitoring script.
			opts := appscript.Options{
				ScanInterval: e.cfg.ScanInterval,
				Hidden:       !e.cfg.VisibleScripts,
			}
			if err := e.runtime.Install(p.Email, opts); err != nil {
				return err
			}
			e.mon.Track(p.Email, password)
			e.handles = append(e.handles, p.Handle())
			e.assignments = append(e.assignments, Assignment{Account: p.Email, Password: password, Group: g})
		}
	}
	e.mon.Start(e.cfg.ScrapeInterval)
	e.setupDone = true
	return nil
}

// Leak publishes every account's credentials through its group's
// channel (§3.2 "Leaking account credentials") and schedules the case
// studies.
func (e *Experiment) Leak() error {
	if !e.setupDone {
		return fmt.Errorf("honeynet: Leak before Setup")
	}
	if e.leaked {
		return fmt.Errorf("honeynet: Leak called twice")
	}
	now := e.clock.Now()

	// Process blocks in plan order (stable), not map order: leak-time
	// randomness must be reproducible for a given seed.
	var malwareCreds []malnet.Credential
	for _, block := range e.cfg.Plan {
		var list []Assignment
		for _, a := range e.assignments {
			if a.Group == block {
				list = append(list, a)
			}
		}
		creds := make([]outlets.Credential, 0, len(list))
		for _, a := range list {
			cred := outlets.Credential{Account: a.Account, Password: a.Password}
			if block.Hint != analysis.HintNone {
				cred.Hint = e.hintFor(block.Hint)
			}
			creds = append(creds, cred)
			e.leakTimes[a.Account] = now
		}
		switch block.Channel {
		case analysis.OutletPaste:
			e.spread(creds, e.reg.ByKind(outlets.KindPaste, false))
		case analysis.OutletPasteRussian:
			e.spread(creds, e.reg.ByKind(outlets.KindPaste, true))
		case analysis.OutletForum:
			e.spread(creds, e.reg.ByKind(outlets.KindForum, false))
		case analysis.OutletMalware:
			for _, c := range creds {
				malwareCreds = append(malwareCreds, malnet.Credential{Account: c.Account, Password: c.Password})
			}
		}
	}
	if len(malwareCreds) > 0 {
		samples := malnet.DefaultSamples(e.src.ForkNamed("samples"), 24)
		e.sandbox.RunCampaign(samples, malwareCreds)
	}
	if !e.cfg.DisableCaseStudies {
		e.scheduleCaseStudies()
	}
	e.leaked = true
	return nil
}

// spread distributes credentials round-robin over the block's outlets.
func (e *Experiment) spread(creds []outlets.Credential, sites []*outlets.Outlet) {
	if len(sites) == 0 {
		return
	}
	buckets := make([][]outlets.Credential, len(sites))
	for i, c := range creds {
		buckets[i%len(sites)] = append(buckets[i%len(sites)], c)
	}
	for i, o := range sites {
		if len(buckets[i]) > 0 {
			o.Post(buckets[i], e.engine.HandlePickup)
		}
	}
}

// hintFor builds the advertised decoy-location block for a region.
func (e *Experiment) hintFor(h analysis.Hint) *outlets.LocationHint {
	switch h {
	case analysis.HintUK:
		city := rng.Pick(e.src, e.gaz.InRegion(geo.RegionUK))
		return &outlets.LocationHint{Region: "uk", Midpoint: geo.LondonMidpoint, City: city.Name}
	case analysis.HintUS:
		city := rng.Pick(e.src, e.gaz.InRegion(geo.RegionUSMidwest))
		return &outlets.LocationHint{Region: "us", Midpoint: geo.PontiacMidpoint, City: city.Name}
	default:
		return nil
	}
}

// scheduleCaseStudies wires the §4.7 scenarios onto concrete accounts:
// blackmail on three paste-leaked accounts, quota notices on two
// accounts (by reinstalling their scripts with a quota), and one
// carding-forum registration.
func (e *Experiment) scheduleCaseStudies() {
	var pasteAccounts, forumAccounts []Assignment
	for _, a := range e.assignments {
		switch a.Group.Channel {
		case analysis.OutletPaste:
			pasteAccounts = append(pasteAccounts, a)
		case analysis.OutletForum:
			forumAccounts = append(forumAccounts, a)
		}
	}
	now := e.clock.Now()
	if len(pasteAccounts) >= 3 {
		var targets []string
		for _, a := range pasteAccounts[:3] {
			targets = append(targets, a.Account)
			e.engine.RegisterCredential(a.Account, a.Password)
		}
		e.engine.RunBlackmailCampaign(targets, now.Add(20*24*time.Hour))
	}
	if len(forumAccounts) >= 2 {
		for i, a := range forumAccounts[:2] {
			// Reinstall with a quota so the "too much computer time"
			// notice lands in the inbox, then have an attacker read it.
			e.runtime.Install(a.Account, appscript.Options{
				ScanInterval: e.cfg.ScanInterval,
				Hidden:       !e.cfg.VisibleScripts,
				QuotaScans:   500 + 100*i,
			})
			e.engine.RegisterCredential(a.Account, a.Password)
			e.engine.RunQuotaReader(a.Account, now.Add(time.Duration(40+10*i)*24*time.Hour))
		}
	}
	if len(forumAccounts) >= 3 {
		a := forumAccounts[2]
		e.engine.RegisterCredential(a.Account, a.Password)
		e.engine.RunCardingRegistration(a.Account, now.Add(55*24*time.Hour))
	}
}

// Run advances the experiment to the end of the observation window.
func (e *Experiment) Run() error {
	if !e.leaked {
		return fmt.Errorf("honeynet: Run before Leak")
	}
	e.sched.RunUntil(e.cfg.Start.Add(e.cfg.Duration))
	return nil
}

// RunAll is Setup + Leak + Run.
func (e *Experiment) RunAll() error {
	if err := e.Setup(); err != nil {
		return err
	}
	if err := e.Leak(); err != nil {
		return err
	}
	return e.Run()
}

// Dataset exports the analysis-ready dataset from the monitoring
// pipeline, annotated with the plan facts (outlet, hint, leak time).
func (e *Experiment) Dataset() *analysis.Dataset {
	planByAccount := make(map[string]GroupSpec, len(e.assignments))
	for _, a := range e.assignments {
		planByAccount[a.Account] = a.Group
	}
	ds := &analysis.Dataset{
		Blacklisted:       make(map[string]bool),
		SuspendedAccounts: e.svc.SuspendedCount(),
		Contents:          e.contents,
	}
	for _, rec := range e.mon.Dataset() {
		g := planByAccount[rec.Account]
		a := analysis.Access{
			Account:   rec.Account,
			Cookie:    rec.Cookie,
			First:     rec.First,
			Last:      rec.Last,
			Outlet:    g.Channel,
			Hint:      g.Hint,
			LeakTime:  e.leakTimes[rec.Account],
			IP:        rec.IP,
			City:      rec.City,
			Country:   rec.Country,
			HasPoint:  rec.HasPoint,
			UserAgent: rec.UserAgent,
		}
		a.Point = geo.Point{Lat: rec.Lat, Lon: rec.Lon}
		if _, listed := e.bl.LookupString(rec.IP); listed {
			ds.Blacklisted[rec.IP] = true
		}
		ds.Accesses = append(ds.Accesses, a)
	}
	for _, n := range e.store.Notifications() {
		var kind analysis.ActionKind
		switch n.Kind {
		case appscript.NoteRead:
			kind = analysis.ActionRead
		case appscript.NoteSent:
			kind = analysis.ActionSent
		case appscript.NoteStarred:
			kind = analysis.ActionStarred
		case appscript.NoteDraft:
			kind = analysis.ActionDraft
		default:
			continue // heartbeats/quota are liveness, not actions
		}
		ds.Actions = append(ds.Actions, analysis.Action{
			Time:    n.Time,
			Account: n.Account,
			Kind:    kind,
			Message: int64(n.Message),
			Body:    n.Body,
		})
	}
	for _, f := range e.store.Failures() {
		if f.Reason == "password-changed" {
			ds.PasswordChanges = append(ds.PasswordChanges, analysis.PasswordChange{Account: f.Account, Time: f.Time})
		}
	}
	return ds
}

// DropWords returns the TF-IDF preprocessing drop list: honey handles
// plus monitor marker tokens (§4.6's preprocessing).
func (e *Experiment) DropWords() []string {
	out := append([]string(nil), e.handles...)
	out = append(out, "honeymail", "sinkhole", "capture")
	return out
}
