package honeynet

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
)

// parallelSetupConfig selects the parallel setup layout at the given
// worker bound.
func parallelSetupConfig(seed int64, shards, workers int) Config {
	cfg := fastConfig(seed)
	cfg.Shards = shards
	cfg.SetupSeed = 777
	cfg.SetupWorkers = workers
	return cfg
}

// setupSnapshot builds an experiment, runs Setup only, and returns
// its encoded post-setup snapshot.
func setupSnapshot(t *testing.T, cfg Config) []byte {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return st.Encode()
}

// TestParallelSetupInvariance is determinism contract #6: with the
// parallel setup layout, the worker count never changes results. The
// post-setup snapshot — every mailbox byte, stream position and
// scheduler descriptor — must be identical at 1 and 4 setup workers,
// and the full run's merged dataset must match too, at shard counts
// 1 and 4.
func TestParallelSetupInvariance(t *testing.T) {
	for _, shards := range []int{1, 4} {
		serialSnap := setupSnapshot(t, parallelSetupConfig(55, shards, 1))
		parallelSnap := setupSnapshot(t, parallelSetupConfig(55, shards, 4))
		if !bytes.Equal(serialSnap, parallelSnap) {
			t.Fatalf("shards=%d: post-setup snapshot differs between 1 and 4 setup workers", shards)
		}

		var datasets []*analysis.Dataset
		for _, workers := range []int{1, 4} {
			cfg := parallelSetupConfig(55, shards, workers)
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.RunAll(); err != nil {
				t.Fatal(err)
			}
			datasets = append(datasets, e.Dataset())
		}
		datasetsIdentical(t, "setup-workers 1 vs 4", datasets[0], datasets[1])
	}
}

// TestSetupFingerprintDistinguishesLayouts: the fingerprint keys the
// stream-derivation layout, so a legacy-layout snapshot can never be
// mistaken for a parallel-layout one (or vice versa), whatever the
// seeds involved.
func TestSetupFingerprintDistinguishesLayouts(t *testing.T) {
	legacy := fastConfig(3)
	parallel := fastConfig(3)
	parallel.SetupSeed = 7
	if SetupFingerprint(legacy) == SetupFingerprint(parallel) {
		t.Fatal("legacy and parallel layouts share a setup fingerprint")
	}
	if got := legacy.withDefaults().setupLayout(); got != SetupLayoutLegacy {
		t.Fatalf("legacy layout = %d", got)
	}
	if got := parallel.withDefaults().setupLayout(); got != SetupLayoutParallel {
		t.Fatalf("parallel layout = %d", got)
	}
}

// TestSnapshotRecordsSetupLayout: the layout an experiment ran under
// is stored in its snapshot config, one constant per layout.
func TestSnapshotRecordsSetupLayout(t *testing.T) {
	for _, tc := range []struct {
		name      string
		setupSeed int64
		want      int
	}{
		{"legacy", 0, SetupLayoutLegacy},
		{"parallel", 777, SetupLayoutParallel},
	} {
		cfg := fastConfig(4)
		cfg.SetupSeed = tc.setupSeed
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Setup(); err != nil {
			t.Fatal(err)
		}
		st, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if st.Config.SetupLayout != tc.want {
			t.Fatalf("%s: snapshot layout = %d, want %d", tc.name, st.Config.SetupLayout, tc.want)
		}
	}
}

// TestSeededContentsViewAllocFree: the lazy contents view returns
// strings aliasing the webmail message store — a Message lookup must
// not copy any mailbox text.
func TestSeededContentsViewAllocFree(t *testing.T) {
	cfg := parallelSetupConfig(6, 1, 2)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}
	contents := e.SeededContents()
	if contents.Accounts() == 0 {
		t.Fatal("no accounts in view")
	}
	ds := e.Dataset()
	var account string
	ds.Contents.Each(func(a string, _ int64, _, _ string) {
		if account == "" {
			account = a
		}
	})
	if _, _, ok := contents.Message(account, 1); !ok {
		t.Fatalf("seeded message 1 missing for %s", account)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := contents.Message(account, 1); !ok {
			t.Fatal("message vanished")
		}
	})
	if allocs != 0 {
		t.Fatalf("contents view allocates %.1f objects per lookup, want 0", allocs)
	}
	// Out-of-range ids (attacker drafts, quota notices) report absent.
	if _, _, ok := contents.Message(account, int64(cfg.MailboxSize)+1); ok {
		t.Fatal("view leaked a post-setup message id")
	}
}
