package honeynet

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/netsim"
)

// runSharded executes a fastConfig deployment at the given shard
// count and scale, returning the merged dataset.
func runSharded(t *testing.T, seed int64, shards, scale int) (*Experiment, *analysis.Dataset) {
	t.Helper()
	cfg := fastConfig(seed)
	cfg.Shards = shards
	cfg.ScaleFactor = scale
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	return e, e.Dataset()
}

// datasetsIdentical asserts two merged datasets are equal record by
// record — the bit-for-bit reproducibility contract.
func datasetsIdentical(t *testing.T, label string, a, b *analysis.Dataset) {
	t.Helper()
	if len(a.Accesses) != len(b.Accesses) {
		t.Fatalf("%s: %d vs %d accesses", label, len(a.Accesses), len(b.Accesses))
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("%s: access %d differs:\n  %+v\n  %+v", label, i, a.Accesses[i], b.Accesses[i])
		}
	}
	if len(a.Actions) != len(b.Actions) {
		t.Fatalf("%s: %d vs %d actions", label, len(a.Actions), len(b.Actions))
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			t.Fatalf("%s: action %d differs:\n  %+v\n  %+v", label, i, a.Actions[i], b.Actions[i])
		}
	}
	if len(a.PasswordChanges) != len(b.PasswordChanges) {
		t.Fatalf("%s: %d vs %d password changes", label, len(a.PasswordChanges), len(b.PasswordChanges))
	}
	for i := range a.PasswordChanges {
		if a.PasswordChanges[i] != b.PasswordChanges[i] {
			t.Fatalf("%s: password change %d differs", label, i)
		}
	}
	if a.SuspendedAccounts != b.SuspendedAccounts {
		t.Fatalf("%s: suspended %d vs %d", label, a.SuspendedAccounts, b.SuspendedAccounts)
	}
	if len(a.Blacklisted) != len(b.Blacklisted) {
		t.Fatalf("%s: blacklisted %d vs %d", label, len(a.Blacklisted), len(b.Blacklisted))
	}
	for ip := range a.Blacklisted {
		if !b.Blacklisted[ip] {
			t.Fatalf("%s: blacklisted IP %s missing", label, ip)
		}
	}
	ra, rb := analysis.Summarize(a), analysis.Summarize(b)
	if ra != rb {
		t.Fatalf("%s: overview differs:\n  %+v\n  %+v", label, ra, rb)
	}
}

// TestShardCountInvariance is the sharding contract: with a fixed
// seed, the merged dataset is identical whether the plan runs on one
// scheduler or partitioned across several parallel ones.
func TestShardCountInvariance(t *testing.T) {
	_, serial := runSharded(t, 42, 1, 1)
	for _, shards := range []int{2, 4} {
		_, parallel := runSharded(t, 42, shards, 1)
		datasetsIdentical(t, "shards=1 vs shards="+string(rune('0'+shards)), serial, parallel)
	}
}

// TestShardedRunDeterministic re-runs the same sharded configuration
// twice (parallel execution, same seed) and demands identical output —
// the regression guard against goroutine-interleaving leaking into
// the dataset.
func TestShardedRunDeterministic(t *testing.T) {
	_, a := runSharded(t, 99, 4, 1)
	_, b := runSharded(t, 99, 4, 1)
	datasetsIdentical(t, "repeat sharded run", a, b)
}

// TestShardCountInvarianceAtScale repeats the invariance check with a
// replicated plan, covering the scale path (blocks > plan rows).
func TestShardCountInvarianceAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled invariance sweep in -short mode")
	}
	_, serial := runSharded(t, 7, 1, 2)
	_, parallel := runSharded(t, 7, 4, 2)
	datasetsIdentical(t, "scale=2 shards=1 vs 4", serial, parallel)
}

// TestScaleFactorReplicatesPlan checks the fleet-scale knob: the plan
// replicates K times with fresh accounts and fresh randomness.
func TestScaleFactorReplicatesPlan(t *testing.T) {
	e, ds := runSharded(t, 5, 2, 3)
	base := fastConfig(5)
	wantAccounts := 3 * PlanAccounts(base.Plan)
	if got := len(e.Assignments()); got != wantAccounts {
		t.Fatalf("assignments = %d, want %d", got, wantAccounts)
	}
	if got := len(e.Service().Accounts()); got != wantAccounts {
		t.Fatalf("platform accounts = %d, want %d", got, wantAccounts)
	}
	if got := len(e.Plan()); got != 3*len(base.Plan) {
		t.Fatalf("expanded plan rows = %d, want %d", got, 3*len(base.Plan))
	}
	// Group totals scale linearly (Table 1 at K×).
	perGroup := map[int]int{}
	for _, a := range e.Assignments() {
		perGroup[a.Group.ID]++
	}
	for id, n := range map[int]int{1: 18, 2: 12, 3: 12, 5: 12} {
		if perGroup[id] != n {
			t.Fatalf("group %d = %d accounts, want %d", id, perGroup[id], n)
		}
	}
	if len(ds.Accesses) == 0 {
		t.Fatal("scaled run observed no accesses")
	}
	// Replicas draw independent randomness: the contents of replica
	// mailboxes must not be copies of each other.
	if ds.Contents.Accounts() != wantAccounts {
		t.Fatalf("contents for %d accounts, want %d", ds.Contents.Accounts(), wantAccounts)
	}
}

// TestShardsClampedToBlocks: more shards than plan blocks degrade
// gracefully to one block per shard.
func TestShardsClampedToBlocks(t *testing.T) {
	cfg := fastConfig(1)
	cfg.Shards = 64
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Shards(), len(cfg.Plan); got != want {
		t.Fatalf("shards = %d, want clamp to %d blocks", got, want)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ds := e.Dataset(); len(ds.Accesses) == 0 {
		t.Fatal("clamped run observed no accesses")
	}
}

// TestShardedLifecycleGuards: the lifecycle contract survives the
// refactor at any shard count.
func TestShardedLifecycleGuards(t *testing.T) {
	cfg := fastConfig(3)
	cfg.Shards = 4
	cfg.Duration = 10 * 24 * time.Hour
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("Run before Setup/Leak accepted")
	}
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := e.Leak(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired := e.ShardSet().Fired(); fired == 0 {
		t.Fatal("no events fired across shards")
	}
}

// TestDirtyTrackingInvariance is the dirty-tracking contract at the
// experiment level: the version-gated scraper (skip quiet accounts,
// pull row deltas) and the scrape-everything escape hatch produce the
// identical merged dataset — the gate only skips work that would have
// produced no observation, never an observation itself.
func TestDirtyTrackingInvariance(t *testing.T) {
	cfg := fastConfig(42)
	cfg.Shards = 2
	run := func(disable bool) *analysis.Dataset {
		c := cfg
		c.DisableDirtyTracking = disable
		e, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return e.Dataset()
	}
	datasetsIdentical(t, "dirty-tracking on vs off", run(false), run(true))
}

// TestDistinctAttackersNeverShareIPs guards the per-block address
// tenancy: two different criminals (cookies) must never be observed
// from the same IP, or IP-keyed analyses (unique-IP counts, the
// Spamhaus cross-check of §4.5) would conflate them.
func TestDistinctAttackersNeverShareIPs(t *testing.T) {
	_, ds := runSharded(t, 42, 4, 1)
	byIP := map[string]string{} // IP -> first cookie seen
	for _, a := range ds.Accesses {
		if prev, ok := byIP[a.IP]; ok && prev != a.Cookie {
			t.Fatalf("IP %s shared by cookies %s and %s", a.IP, prev, a.Cookie)
		}
		byIP[a.IP] = a.Cookie
	}
}

// TestPlanTooLargeForTenancyRejected: fleets beyond the IP-tenancy
// capacity fail loudly at construction instead of silently assigning
// colliding address ranges — and fleets that used to hit the IPv4
// ceiling now construct, their tail blocks drawing addresses from the
// IPv6 overflow plane.
func TestPlanTooLargeForTenancyRejected(t *testing.T) {
	cfg := fastConfig(1)
	cfg.ScaleFactor = netsim.TenantSlots/4 + 1
	if _, err := New(cfg); err == nil {
		t.Fatal("oversized plan accepted")
	}
	cfg = fastConfig(1)
	cfg.ScaleFactor = 300 // 4 blocks × 300 = 1200, past the old 800-slot IPv4 ceiling
	if _, err := New(cfg); err != nil {
		t.Fatalf("1200-block fleet rejected: %v", err)
	}
}
