package honeynet

import (
	"repro/internal/analysis"
	"repro/internal/webmail"
)

// The seeded-contents view: the §4.6 keyword inference needs every
// message the setup phase placed in the honey accounts (the dA
// corpus), and the text of each message an attacker read (dR). The
// engine used to keep a second copy of all of it — account → id →
// subject+body, ~55KB per account at the default mailbox size — built
// eagerly during Setup. The columnar webmail store already holds
// those exact strings, so the view below reads them back lazily
// instead: Dataset().Contents and SeededContents() now cost a slice
// of addresses, not a duplicate of the corpus.

// seededContents implements analysis.ContentsView over webmail's
// message columns. Seeded ids are exactly 1..maxID per account
// (Setup and the snapshot restore both place them there, and nothing
// in the simulated run deletes or edits seeded mail); later messages
// — quota notices, attacker drafts — deliberately report absent, so
// the view exposes precisely the corpus the retired duplicate held.
type seededContents struct {
	svc      *webmail.Service
	accounts []string // plan order
	maxID    int64    // Config.MailboxSize
}

// Accounts implements analysis.ContentsView.
func (v seededContents) Accounts() int { return len(v.accounts) }

// Message implements analysis.ContentsView. The returned strings
// alias the message store — no per-call copy.
func (v seededContents) Message(account string, id int64) (subject, body string, ok bool) {
	if id < 1 || id > v.maxID {
		return "", "", false
	}
	return v.svc.MessageText(account, webmail.MessageID(id))
}

// Each implements analysis.ContentsView, scanning each account's
// seeded rows under a single partition-lock acquisition.
func (v seededContents) Each(fn func(account string, id int64, subject, body string)) {
	for _, account := range v.accounts {
		account := account
		v.svc.EachMessageText(account, v.maxID, func(id int64, subject, body string) {
			fn(account, id, subject, body)
		})
	}
}

// seededView builds the lazy contents view over the current
// assignments (plan order).
func (e *Experiment) seededView() analysis.ContentsView {
	accounts := make([]string, len(e.assignments))
	for i, a := range e.assignments {
		accounts[i] = a.Account
	}
	return seededContents{svc: e.svc, accounts: accounts, maxID: int64(e.cfg.MailboxSize)}
}
