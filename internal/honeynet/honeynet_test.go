package honeynet

import (
	"testing"
	"time"

	"repro/internal/analysis"
)

// fastConfig keeps unit-test runs quick: fewer accounts, a shorter
// window, coarser scan/scrape cadence. Shape assertions that need the
// full population live in the benchmarks and in TestFullRun below.
func fastConfig(seed int64) Config {
	return Config{
		Seed: seed,
		Plan: []GroupSpec{
			{ID: 1, Count: 6, Channel: analysis.OutletPaste, Hint: analysis.HintNone, Label: "paste"},
			{ID: 2, Count: 4, Channel: analysis.OutletPaste, Hint: analysis.HintUK, Label: "paste uk"},
			{ID: 3, Count: 4, Channel: analysis.OutletForum, Hint: analysis.HintNone, Label: "forum"},
			{ID: 5, Count: 4, Channel: analysis.OutletMalware, Hint: analysis.HintNone, Label: "malware"},
		},
		Duration:       60 * 24 * time.Hour,
		MailboxSize:    25,
		ScanInterval:   time.Hour,
		ScrapeInterval: 6 * time.Hour,
	}
}

func TestTable1PlanMatchesPaper(t *testing.T) {
	plan := Table1Plan()
	if got := PlanAccounts(plan); got != 100 {
		t.Fatalf("plan accounts = %d, want 100", got)
	}
	perGroup := map[int]int{}
	for _, g := range plan {
		perGroup[g.ID] += g.Count
	}
	want := map[int]int{1: 30, 2: 20, 3: 10, 4: 20, 5: 20}
	for id, n := range want {
		if perGroup[id] != n {
			t.Fatalf("group %d = %d accounts, want %d (Table 1)", id, perGroup[id], n)
		}
	}
	if err := ValidatePlan(plan); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePlanRejections(t *testing.T) {
	cases := []GroupSpec{
		{ID: 1, Count: 0, Channel: analysis.OutletPaste},
		{ID: 1, Count: 5, Channel: "pigeon"},
		{ID: 1, Count: 5, Channel: analysis.OutletPaste, Hint: "mars"},
		{ID: 5, Count: 5, Channel: analysis.OutletMalware, Hint: analysis.HintUK},
	}
	for i, g := range cases {
		if err := ValidatePlan([]GroupSpec{g}); err == nil {
			t.Fatalf("case %d accepted: %+v", i, g)
		}
	}
	if err := ValidatePlan(nil); err == nil {
		t.Fatal("empty plan accepted")
	}
}

func TestLifecycleOrderEnforced(t *testing.T) {
	e, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leak(); err == nil {
		t.Fatal("Leak before Setup accepted")
	}
	if err := e.Run(); err == nil {
		t.Fatal("Run before Leak accepted")
	}
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := e.Setup(); err == nil {
		t.Fatal("double Setup accepted")
	}
	if err := e.Leak(); err != nil {
		t.Fatal(err)
	}
	if err := e.Leak(); err == nil {
		t.Fatal("double Leak accepted")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupCreatesSeededInstrumentedAccounts(t *testing.T) {
	e, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}
	accounts := e.Service().Accounts()
	if len(accounts) != 18 {
		t.Fatalf("accounts = %d, want 18", len(accounts))
	}
	for _, a := range accounts {
		c, err := e.Service().Counts(a)
		if err != nil {
			t.Fatal(err)
		}
		if c.Inbox+c.Sent != 25 {
			t.Fatalf("%s seeded with %d messages, want 25", a, c.Inbox+c.Sent)
		}
		if !e.Installed(a) {
			t.Fatalf("%s has no script installed", a)
		}
	}
	if len(e.Assignments()) != 18 {
		t.Fatalf("assignments = %d", len(e.Assignments()))
	}
}

func TestEndToEndProducesDataset(t *testing.T) {
	e, err := New(fastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	ds := e.Dataset()
	if len(ds.Accesses) == 0 {
		t.Fatal("no accesses observed")
	}
	// Every access carries plan annotations.
	for _, a := range ds.Accesses {
		if a.Outlet == "" || a.LeakTime.IsZero() {
			t.Fatalf("unannotated access %+v", a)
		}
		if a.First.Before(a.LeakTime) {
			t.Fatalf("access before leak: %+v", a)
		}
	}
	if ds.Contents.Accounts() != 18 {
		t.Fatalf("contents for %d accounts", ds.Contents.Accounts())
	}
	// The engine's ground truth and the monitor should roughly agree
	// on volume (monitor misses post-hijack cookies, so <=).
	truth := e.Records()
	if len(ds.Accesses) > len(truth) {
		t.Fatalf("monitor saw %d accesses, ground truth only %d", len(ds.Accesses), len(truth))
	}
}

func TestOutboundMailAllSinkholed(t *testing.T) {
	e, err := New(fastConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Whatever was sent, every captured message must carry the
	// sinkhole envelope sender (the send-from override).
	for _, m := range e.Sinkholed() {
		if m.From != "capture@sinkhole.example" {
			t.Fatalf("outbound mail escaped with sender %q", m.From)
		}
	}
}

func TestDeterministicDataset(t *testing.T) {
	run := func() *analysis.Dataset {
		e, err := New(fastConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return e.Dataset()
	}
	a, b := run(), run()
	if len(a.Accesses) != len(b.Accesses) || len(a.Actions) != len(b.Actions) {
		t.Fatalf("runs differ: %d/%d accesses, %d/%d actions",
			len(a.Accesses), len(b.Accesses), len(a.Actions), len(b.Actions))
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("access %d differs between same-seed runs", i)
		}
	}
}

func TestMalwareAccessesAnonymousAndStealthy(t *testing.T) {
	e, err := New(fastConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	ds := e.Dataset()
	cs := analysis.Classify(ds, analysis.ClassifyOptions{Slack: time.Hour})
	for _, c := range cs {
		if c.Access.Outlet != analysis.OutletMalware {
			continue
		}
		if c.Classes.Has(analysis.Hijacker) || c.Classes.Has(analysis.Spammer) {
			t.Fatalf("malware access classified %v", c.Classes)
		}
		if c.Access.UserAgent != "" {
			t.Fatalf("malware access with UA %q", c.Access.UserAgent)
		}
	}
}

func TestDropWordsIncludeHandles(t *testing.T) {
	e, err := New(fastConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}
	dw := e.DropWords()
	if len(dw) < 18 {
		t.Fatalf("drop words = %d, want >= one per account", len(dw))
	}
}

// TestFullRun exercises the complete Table 1 deployment over the full
// seven months and checks the headline shapes. It is the slowest test
// in the repository (a few seconds) but the one that actually
// reproduces §4.1.
func TestFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full 7-month run in -short mode")
	}
	e, err := New(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	ds := e.Dataset()
	o := analysis.Summarize(ds)

	// §4.1 shape: hundreds of accesses on 100 accounts, tens of
	// accounts suspended, reads and sends observed, drafts composed.
	if o.UniqueAccesses < 150 || o.UniqueAccesses > 900 {
		t.Fatalf("unique accesses = %d, want the paper's order of magnitude (327)", o.UniqueAccesses)
	}
	if o.EmailsRead == 0 || o.EmailsSent == 0 || o.UniqueDrafts == 0 {
		t.Fatalf("overview = %+v, want nonzero activity in every column", o)
	}
	if o.SuspendedAccounts < 10 || o.SuspendedAccounts > 80 {
		t.Fatalf("suspended = %d, want tens (paper: 42)", o.SuspendedAccounts)
	}
	if o.Countries < 10 {
		t.Fatalf("countries = %d, want >= 10 (paper: 29)", o.Countries)
	}
	if o.WithoutLocation == 0 {
		t.Fatal("no anonymous accesses (paper: 154 of 327)")
	}
	if o.BlacklistedIPs == 0 {
		t.Fatal("no blacklisted IPs (paper: 20)")
	}

	// Figure 2 shape: malware never hijacks; forums have the highest
	// gold-digger share.
	cs := analysis.Classify(ds, analysis.ClassifyOptions{})
	per := analysis.ByOutlet(cs)
	if per[analysis.OutletMalware].Hijacker != 0 || per[analysis.OutletMalware].Spammer != 0 {
		t.Fatalf("malware classes = %+v", per[analysis.OutletMalware])
	}
	share := func(c analysis.ClassCounts, n int) float64 {
		if c.Total == 0 {
			return 0
		}
		return float64(n) / float64(c.Total)
	}
	forumGold := share(per[analysis.OutletForum], per[analysis.OutletForum].GoldDigger)
	pasteGold := share(per[analysis.OutletPaste], per[analysis.OutletPaste].GoldDigger)
	if forumGold <= pasteGold {
		t.Fatalf("forum gold share %.2f <= paste %.2f (Figure 2)", forumGold, pasteGold)
	}

	// Figure 3 shape: paste pickups concentrate earlier than malware.
	tt := analysis.TimeToFirstAccess(ds)
	within := func(days []float64, limit float64) float64 {
		if len(days) == 0 {
			return 0
		}
		n := 0
		for _, d := range days {
			if d <= limit {
				n++
			}
		}
		return float64(n) / float64(len(days))
	}
	if p, m := within(tt[analysis.OutletPaste], 25), within(tt[analysis.OutletMalware], 25); p <= m {
		t.Fatalf("within-25d: paste %.2f <= malware %.2f (Figure 3)", p, m)
	}

	// §4.5 location shape: paste UK-hint median < paste no-hint median.
	radii := analysis.MedianRadii(ds, analysis.HintUK)
	var hintMed, plainMed float64
	for _, r := range radii {
		if r.Group.Outlet == analysis.OutletPaste && r.Group.Hint == analysis.HintUK {
			hintMed = r.MedianKm
		}
		if r.Group.Outlet == analysis.OutletPaste && r.Group.Hint == analysis.HintNone {
			plainMed = r.MedianKm
		}
	}
	if hintMed == 0 || plainMed == 0 || hintMed >= plainMed {
		t.Fatalf("UK medians: hint %.0f km vs plain %.0f km (Figure 5a wants hint smaller)", hintMed, plainMed)
	}

	// Table 2 shape: bitcoin vocabulary tops the searched list.
	tfidf := analysis.KeywordInference(ds, e.DropWords())
	top := tfidf.TopSearched(10)
	seen := map[string]bool{}
	for _, row := range top {
		seen[row.Term] = true
	}
	if !seen["bitcoin"] && !seen["bitcoins"] && !seen["localbitcoins"] {
		t.Fatalf("top searched lacks bitcoin vocabulary: %+v", top)
	}
}
