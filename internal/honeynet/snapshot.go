package honeynet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/outlets"
	"repro/internal/snapshot"
	"repro/internal/webmail"
)

// Snapshot/resume: the experiment freezes at its post-setup boundary
// — accounts created, mailboxes seeded, scripts installed, scrapers
// armed, no simulated event fired — into a snapshot.State that a new
// process (or a forked scenario variant) resumes from. The boundary
// is the one point where every pending scheduler event is a periodic
// trigger the engine knows how to re-arm, so the snapshot stores the
// closure-free state (accounts, plan, stream positions) plus
// verifiable descriptors of the scheduler/wheel/cursor state, and
// Resume replays the instrumentation sequence and checks the rebuilt
// descriptors match — erroring loudly instead of diverging silently.
// Determinism guarantee #5 (see ARCHITECTURE.md): save → load →
// run-to-deadline is byte-identical to the uninterrupted run.

// fingerprint-mixing via splitmix64 on successive field values.
type fpHash uint64

func (h *fpHash) mix(v uint64) {
	x := uint64(*h) ^ v
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	*h = fpHash(x ^ (x >> 31))
}

func (h *fpHash) mixString(s string) {
	f := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		f ^= uint64(s[i])
		f *= 1099511628211
	}
	h.mix(f)
	h.mix(uint64(len(s)))
}

// Setup layouts: how the setup phase derives its randomness. The
// value is stored in snapshots and mixed into SetupFingerprint, so a
// snapshot written under one derivation can never silently resume
// under the other — the same SetupSeed produces different accounts in
// the two layouts.
const (
	// SetupLayoutLegacy (SetupSeed == 0): setup draws interleave
	// serially on the experiment root stream — the seed deployment's
	// byte-pinned behaviour.
	SetupLayoutLegacy = 1
	// SetupLayoutParallel (SetupSeed != 0): every account draws from
	// its own substream of the setup root, order-free, so setup fans
	// out over workers (determinism contract #6).
	SetupLayoutParallel = 2
)

// setupLayout returns the layout a config selects.
func (c Config) setupLayout() int {
	if c.SetupSeed != 0 {
		return SetupLayoutParallel
	}
	return SetupLayoutLegacy
}

// SetupFingerprint hashes exactly the configuration fields the setup
// phase's output depends on: the seed driving the setup streams and
// the stream-derivation layout, the number of accounts (personas and
// passwords are drawn per account in plan order, independent of the
// block structure), the leak date (seeded message dates are relative
// to it), the mailbox size, and the persona locale. Two configs with
// equal fingerprints produce identical post-setup state, whatever
// their plans, outlet catalogues, attacker calibrations, cadences or
// shard counts — which is what lets the scenario matrix fork many
// variants from one snapshot, and what Resume checks before
// accepting one.
func SetupFingerprint(cfg Config) uint64 {
	cfg = cfg.withDefaults()
	var h fpHash
	h.mix(uint64(cfg.setupSeed()))
	h.mix(uint64(cfg.setupLayout()))
	h.mix(uint64(PlanAccounts(expandPlan(cfg.Plan, cfg.ScaleFactor))))
	h.mix(uint64(cfg.Start.UnixNano()))
	h.mix(uint64(cfg.MailboxSize))
	locale := corpus.DefaultLocale()
	if cfg.Locale != nil {
		locale = *cfg.Locale
	}
	h.mixString(locale.Name)
	h.mixString(locale.Domain)
	h.mix(uint64(len(locale.First)))
	for _, s := range locale.First {
		h.mixString(s)
	}
	h.mix(uint64(len(locale.Last)))
	for _, s := range locale.Last {
		h.mixString(s)
	}
	return uint64(h)
}

// Snapshot freezes the experiment into its serializable post-setup
// state. It must be called after Setup and before Leak, while no
// simulated event has fired — the only boundary at which every
// pending event is re-armable (past it, attacker and outlet closures
// are in flight and cannot cross a process boundary). The returned
// State holds every account in memory; fleet-scale checkpoints should
// use WriteSnapshot, which streams accounts one at a time.
func (e *Experiment) Snapshot() (*snapshot.State, error) {
	st, err := e.snapshotMeta()
	if err != nil {
		return nil, err
	}
	for _, a := range e.assignments { // plan order: the canonical account order
		acct, err := e.exportAccount(a.Account)
		if err != nil {
			return nil, err
		}
		st.Accounts = append(st.Accounts, acct)
	}
	return st, nil
}

// WriteSnapshot streams the post-setup snapshot to w, exporting and
// encoding one account at a time — checkpoint memory stays O(account
// block) however many accounts the plan holds. The same boundary
// rules as Snapshot apply.
func (e *Experiment) WriteSnapshot(w io.Writer) error {
	st, err := e.snapshotMeta()
	if err != nil {
		return err
	}
	enc, err := snapshot.NewEncoder(w, st, len(e.assignments))
	if err != nil {
		return err
	}
	for _, a := range e.assignments {
		acct, err := e.exportAccount(a.Account)
		if err != nil {
			return err
		}
		if err := enc.WriteAccount(&acct); err != nil {
			return err
		}
	}
	return enc.Close()
}

// WriteSnapshotFile streams the snapshot to a file (0644).
func (e *Experiment) WriteSnapshotFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("honeynet: checkpoint %s: %w", path, err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	werr := e.WriteSnapshot(bw)
	if werr == nil {
		werr = bw.Flush()
	}
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("honeynet: checkpoint %s: %w", path, cerr)
	}
	return werr
}

// exportAccount converts one account's webmail export to snapshot
// form.
func (e *Experiment) exportAccount(account string) (snapshot.Account, error) {
	exp, err := e.svc.ExportAccount(account)
	if err != nil {
		return snapshot.Account{}, fmt.Errorf("honeynet: snapshot %s: %w", account, err)
	}
	acct := snapshot.Account{
		Address:  exp.Address,
		Password: exp.Password,
		Owner:    exp.Owner,
		SendFrom: exp.SendFrom,
		NextID:   exp.NextID,
	}
	for _, m := range exp.Messages {
		acct.Messages = append(acct.Messages, snapshot.Message{
			ID: m.ID, Folder: m.Folder, From: m.From, To: m.To,
			Subject: m.Subject, Body: m.Body, DateNS: m.Date.UnixNano(),
			Read: m.Read, Starred: m.Starred, Labels: m.Labels,
		})
	}
	return acct, nil
}

// snapshotMeta builds the non-account sections of the snapshot after
// checking the boundary invariants.
func (e *Experiment) snapshotMeta() (*snapshot.State, error) {
	if !e.setupDone {
		return nil, fmt.Errorf("honeynet: Snapshot before Setup (nothing to freeze)")
	}
	if e.leaked {
		return nil, fmt.Errorf("honeynet: Snapshot after Leak; snapshots freeze the post-setup boundary")
	}
	if fired := e.set.Fired(); fired != 0 {
		return nil, fmt.Errorf("honeynet: Snapshot after %d events ran; snapshots freeze the post-setup boundary", fired)
	}
	cfg := e.cfg
	st := &snapshot.State{
		Config: snapshot.Config{
			Seed:             cfg.Seed,
			SetupSeed:        cfg.SetupSeed,
			SetupLayout:      cfg.setupLayout(),
			Fingerprint:      SetupFingerprint(cfg),
			StartNS:          cfg.Start.UnixNano(),
			DurationNS:       int64(cfg.Duration),
			MailboxSize:      cfg.MailboxSize,
			ScanIntervalNS:   int64(cfg.ScanInterval),
			ScrapeIntervalNS: int64(cfg.ScrapeInterval),
			Shards:           len(e.shards),
			Scale:            cfg.ScaleFactor,

			VisibleScripts:       cfg.VisibleScripts,
			DisableCaseStudies:   cfg.DisableCaseStudies,
			DisableStreaming:     cfg.DisableStreaming,
			DisableDirtyTracking: cfg.DisableDirtyTracking,

			LoginRisk: snapshot.LoginRisk{
				Enabled:       cfg.LoginRisk.Enabled,
				BlockTor:      cfg.LoginRisk.BlockTor,
				BlockProxies:  cfg.LoginRisk.BlockProxies,
				MaxKmFromHome: cfg.LoginRisk.MaxKmFromHome,
			},

			CustomSites:       !sitesAreDefault(cfg.Sites),
			CustomPopulations: cfg.Populations != nil,
			CustomLocale:      cfg.Locale != nil,

			DefenderCadenceNS: int64(cfg.DefenderCadence),
			C3BucketBits:      cfg.C3BucketBits,
			C3Variants:        cfg.C3Variants,
		},
		Root:  snapshot.Stream{Seed: cfg.Seed, Pos: e.src.Pos()},
		Setup: snapshot.Stream{Seed: cfg.setupSeed(), Pos: e.setupPos},
	}
	for _, g := range cfg.Plan {
		st.Plan = append(st.Plan, snapshot.Block{
			ID: g.ID, Count: g.Count,
			Channel: string(g.Channel), Hint: string(g.Hint), Label: g.Label,
		})
	}
	for _, sh := range e.shards {
		ss := snapshot.Shard{
			NowNS:   sh.clock.Now().UnixNano(),
			Seq:     sh.sched.Seq(),
			Fired:   sh.sched.Fired(),
			Pending: sh.sched.Len(),
		}
		for _, c := range sh.wheel.Chains() {
			ss.Chains = append(ss.Chains, snapshot.Chain{
				IntervalNS: c.IntervalNS, PhaseNS: c.PhaseNS, Entries: c.Entries,
			})
		}
		st.Shards = append(st.Shards, ss)
	}
	st.Cursors = e.cursorStates()
	st.Defender = e.defenderCursors()
	return st, nil
}

// defenderCursors freezes the defender's detection state. At the
// post-setup boundary no credential has leaked yet, so every watched
// account carries a zero cursor — what matters is that the watch
// list itself (defender on, and over which accounts) round-trips, so
// a resumed experiment re-arms the identical detection loop.
func (e *Experiment) defenderCursors() []snapshot.Cursor {
	if !e.DefenderEnabled() {
		return nil
	}
	out := make([]snapshot.Cursor, 0, len(e.assignments))
	for _, a := range e.assignments {
		out = append(out, snapshot.Cursor{Account: a.Account})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Account < out[j].Account })
	return out
}

// cursorStates merges every shard monitor's scrape cursors into one
// account-sorted list.
func (e *Experiment) cursorStates() []snapshot.Cursor {
	var out []snapshot.Cursor
	for _, sh := range e.shards {
		for account, v := range sh.mon.Cursors() {
			out = append(out, snapshot.Cursor{Account: account, LastSeen: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Account < out[j].Account })
	return out
}

// sitesAreDefault reports whether the outlet catalogue is exactly the
// paper's default set (by value, not identity — withDefaults hands
// every experiment a fresh slice).
func sitesAreDefault(sites []*outlets.Site) bool {
	def := outlets.DefaultSites()
	if len(sites) != len(def) {
		return false
	}
	for i := range sites {
		if !reflect.DeepEqual(*sites[i], *def[i]) {
			return false
		}
	}
	return true
}

// Resume reconstructs an experiment from a snapshot alone, ready for
// Leak and Run. It refuses snapshots whose configuration depended on
// custom outlet catalogues, attacker populations or locales — those
// are code-backed structures the snapshot cannot carry, so the caller
// must rebuild them and use ResumeWith (the scenario layer does).
func Resume(st *snapshot.State) (*Experiment, error) {
	if st.Config.CustomSites || st.Config.CustomPopulations || st.Config.CustomLocale {
		return nil, fmt.Errorf("honeynet: snapshot was taken with a custom outlet catalogue, attacker calibration or locale; rebuild that config and use ResumeWith")
	}
	cfg, err := ConfigFromSnapshot(st)
	if err != nil {
		return nil, err
	}
	return ResumeWith(st, cfg)
}

// ConfigFromSnapshot rebuilds the runnable core configuration a
// snapshot records. Callers may override the post-fork fields (Seed,
// Duration, Shards, engine toggles) before passing the result to
// ResumeWith; setup-relevant fields are pinned by the fingerprint.
func ConfigFromSnapshot(st *snapshot.State) (Config, error) {
	cfg := Config{
		Seed:                 st.Config.Seed,
		SetupSeed:            st.Config.SetupSeed,
		Start:                time.Unix(0, st.Config.StartNS).UTC(),
		Duration:             time.Duration(st.Config.DurationNS),
		MailboxSize:          st.Config.MailboxSize,
		ScanInterval:         time.Duration(st.Config.ScanIntervalNS),
		ScrapeInterval:       time.Duration(st.Config.ScrapeIntervalNS),
		Shards:               st.Config.Shards,
		ScaleFactor:          st.Config.Scale,
		VisibleScripts:       st.Config.VisibleScripts,
		DisableCaseStudies:   st.Config.DisableCaseStudies,
		DisableStreaming:     st.Config.DisableStreaming,
		DisableDirtyTracking: st.Config.DisableDirtyTracking,
		LoginRisk: webmail.LoginRiskConfig{
			Enabled:       st.Config.LoginRisk.Enabled,
			BlockTor:      st.Config.LoginRisk.BlockTor,
			BlockProxies:  st.Config.LoginRisk.BlockProxies,
			MaxKmFromHome: st.Config.LoginRisk.MaxKmFromHome,
		},
		DefenderCadence: time.Duration(st.Config.DefenderCadenceNS),
		C3BucketBits:    st.Config.C3BucketBits,
		C3Variants:      st.Config.C3Variants,
	}
	for _, b := range st.Plan {
		cfg.Plan = append(cfg.Plan, GroupSpec{
			ID: b.ID, Count: b.Count,
			Channel: analysis.Outlet(b.Channel), Hint: analysis.Hint(b.Hint), Label: b.Label,
		})
	}
	if err := ValidatePlan(cfg.Plan); err != nil {
		return Config{}, fmt.Errorf("honeynet: snapshot plan: %w", err)
	}
	return cfg, nil
}

// ResumeWith reconstructs an experiment from a snapshot plus an
// explicit configuration (the scenario warm-start path: each variant
// passes its own compiled config, sharing the snapshot's setup). The
// config's setup-relevant fields must fingerprint-match the snapshot;
// everything post-fork — Seed, Duration, shard count, outlet
// catalogue, attacker populations, engine toggles — may differ
// freely, which is exactly how one shared setup forks into divergent
// scenario variants or longer-horizon continuation runs.
func ResumeWith(st *snapshot.State, cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	if got, want := SetupFingerprint(cfg), st.Config.Fingerprint; got != want {
		return nil, fmt.Errorf("honeynet: config fingerprint %016x does not match snapshot %016x: the snapshot's setup (seed, accounts, leak date, mailbox size, locale) differs from this config's", got, want)
	}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.restoreSetup(st); err != nil {
		return nil, err
	}
	return e, nil
}

// restoreSetup replays the non-generative part of Setup from snapshot
// data: accounts are restored instead of drawn, but the
// scheduler-visible instrumentation runs through the exact code path
// Setup uses, in the exact order, so the re-armed trigger state is
// identical. It finishes by verifying the rebuilt observable state
// against the snapshot's descriptors.
func (e *Experiment) restoreSetup(st *snapshot.State) error {
	if e.setupDone {
		return fmt.Errorf("honeynet: restore into an experiment that already ran Setup")
	}
	if n := PlanAccounts(e.plan); len(st.Accounts) != n {
		return fmt.Errorf("honeynet: snapshot holds %d accounts; plan needs %d", len(st.Accounts), n)
	}
	if st.Root.Seed != e.cfg.Seed && st.Root.Pos != 0 {
		// Position N of one stream means nothing on another stream's
		// lattice. Only the legacy layout advances the root stream
		// during setup, and its fingerprint pins the seed, so this is
		// a corrupted snapshot, not a user error.
		return fmt.Errorf("honeynet: snapshot root stream (seed %d, pos %d) is inconsistent with config seed %d", st.Root.Seed, st.Root.Pos, e.cfg.Seed)
	}
	idx := 0
	for _, b := range e.blocks {
		b.start = idx
		for i := 0; i < b.spec.Count; i++ {
			acct := st.Accounts[idx]
			idx++
			exp := webmailExport(acct)
			if err := e.svc.RestoreAccountIn(b.shard.id, exp); err != nil {
				return fmt.Errorf("honeynet: restore %s: %w", acct.Address, err)
			}
			if err := e.instrument(b, acct.Address, acct.Password); err != nil {
				return fmt.Errorf("honeynet: re-instrument %s: %w", acct.Address, err)
			}
			e.register(b, acct.Address, acct.Password, handleOf(acct.Address))
		}
		b.end = idx
	}
	for _, sh := range e.shards {
		sh.mon.Start(e.cfg.ScrapeInterval)
	}
	e.src.SkipTo(st.Root.Pos)
	e.setupPos = st.Setup.Pos
	e.setupDone = true
	return e.verifyRestored(st)
}

// verifyRestored checks the re-armed runtime state against the
// snapshot's descriptors: monitor cursors always; scheduler and
// trigger-wheel state whenever the resumed experiment re-arms the
// same layout the snapshot recorded — same shard count, same
// plan/scale AND same scan/scrape cadences. A fork with a different
// plan or shard count redistributes accounts across shards, and one
// with different cadences arms different (interval, phase) chains,
// so their per-shard trigger state legitimately differs; equivalence
// there is covered by the shard-count/plan determinism contracts and
// TestSnapshotInvariance's cross-config cases, not this check.
func (e *Experiment) verifyRestored(st *snapshot.State) error {
	cursors := e.cursorStates()
	if len(cursors) != len(st.Cursors) {
		return fmt.Errorf("honeynet: snapshot drift: resumed monitor tracks %d accounts, snapshot recorded %d", len(cursors), len(st.Cursors))
	}
	for i, c := range cursors {
		if c != st.Cursors[i] {
			return fmt.Errorf("honeynet: snapshot drift: scrape cursor %d is %+v, snapshot recorded %+v", i, c, st.Cursors[i])
		}
	}
	// Defender cursors are checked only when the resumed run arms the
	// same defender the snapshot recorded; a fork that toggles the
	// defender (a post-fork knob) legitimately differs here.
	if int64(e.cfg.DefenderCadence) == st.Config.DefenderCadenceNS {
		dcursors := e.defenderCursors()
		if len(dcursors) != len(st.Defender) {
			return fmt.Errorf("honeynet: snapshot drift: defender watches %d accounts, snapshot recorded %d", len(dcursors), len(st.Defender))
		}
		for i, c := range dcursors {
			if c != st.Defender[i] {
				return fmt.Errorf("honeynet: snapshot drift: defender cursor %d is %+v, snapshot recorded %+v", i, c, st.Defender[i])
			}
		}
	}
	if len(e.shards) != len(st.Shards) || e.cfg.ScaleFactor != st.Config.Scale ||
		int64(e.cfg.ScanInterval) != st.Config.ScanIntervalNS ||
		int64(e.cfg.ScrapeInterval) != st.Config.ScrapeIntervalNS ||
		!planMatches(e.cfg.Plan, st.Plan) {
		return nil
	}
	for i, sh := range e.shards {
		want := st.Shards[i]
		got := snapshot.Shard{
			NowNS:   sh.clock.Now().UnixNano(),
			Seq:     sh.sched.Seq(),
			Fired:   sh.sched.Fired(),
			Pending: sh.sched.Len(),
		}
		for _, c := range sh.wheel.Chains() {
			got.Chains = append(got.Chains, snapshot.Chain{IntervalNS: c.IntervalNS, PhaseNS: c.PhaseNS, Entries: c.Entries})
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("honeynet: snapshot drift: shard %d re-armed to %+v, snapshot recorded %+v", i, got, want)
		}
	}
	return nil
}

// planMatches reports whether the resumed plan equals the snapshot's.
func planMatches(plan []GroupSpec, blocks []snapshot.Block) bool {
	if len(plan) != len(blocks) {
		return false
	}
	for i, g := range plan {
		b := blocks[i]
		if g.ID != b.ID || g.Count != b.Count ||
			string(g.Channel) != b.Channel || string(g.Hint) != b.Hint || g.Label != b.Label {
			return false
		}
	}
	return true
}

// webmailExport converts a snapshot account to the webmail restore
// form.
func webmailExport(a snapshot.Account) webmail.AccountExport {
	exp := webmail.AccountExport{
		Address:  a.Address,
		Password: a.Password,
		Owner:    a.Owner,
		SendFrom: a.SendFrom,
		NextID:   a.NextID,
	}
	for _, m := range a.Messages {
		exp.Messages = append(exp.Messages, webmail.MessageExport{
			ID: m.ID, Folder: m.Folder, From: m.From, To: m.To,
			Subject: m.Subject, Body: m.Body, Date: time.Unix(0, m.DateNS).UTC(),
			Read: m.Read, Starred: m.Starred, Labels: m.Labels,
		})
	}
	return exp
}

// handleOf recovers the persona handle Setup records (the TF-IDF
// drop list) from a restored address, through the same derivation
// Setup's personas use so the two paths cannot drift.
func handleOf(address string) string {
	return corpus.Persona{Email: address}.Handle()
}
