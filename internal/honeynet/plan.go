package honeynet

import (
	"fmt"

	"repro/internal/analysis"
)

// GroupSpec is one row of Table 1: a block of honey accounts and the
// outlet/decoy-information combination they were leaked with.
type GroupSpec struct {
	// ID is the paper's group number (1–5); sub-blocks within a group
	// (e.g. Russian paste sites, UK vs US hints) carry the same ID.
	ID int
	// Count is the number of accounts in the block.
	Count int
	// Channel is where the block's credentials get leaked.
	Channel analysis.Outlet
	// Hint is the advertised decoy location ("", "uk", "us").
	Hint analysis.Hint
	// Label is a human-readable block description for reports.
	Label string
}

// Table1Plan returns the paper's exact deployment (§3.2, Table 1):
//
//	group 1: 30 accounts on popular paste sites, no location info —
//	         20 on the big paste sites plus 10 on Russian paste sites
//	group 2: 20 accounts on paste sites with location info (10 UK, 10 US)
//	group 3: 10 accounts on underground forums, no location info
//	group 4: 20 accounts on underground forums with location info (10 UK, 10 US)
//	group 5: 20 accounts leaked to information-stealing malware
func Table1Plan() []GroupSpec {
	return []GroupSpec{
		{ID: 1, Count: 20, Channel: analysis.OutletPaste, Hint: analysis.HintNone, Label: "popular paste sites (no location information)"},
		{ID: 1, Count: 10, Channel: analysis.OutletPasteRussian, Hint: analysis.HintNone, Label: "russian paste sites (no location information)"},
		{ID: 2, Count: 10, Channel: analysis.OutletPaste, Hint: analysis.HintUK, Label: "popular paste sites (UK location information)"},
		{ID: 2, Count: 10, Channel: analysis.OutletPaste, Hint: analysis.HintUS, Label: "popular paste sites (US location information)"},
		{ID: 3, Count: 10, Channel: analysis.OutletForum, Hint: analysis.HintNone, Label: "underground forums (no location information)"},
		{ID: 4, Count: 10, Channel: analysis.OutletForum, Hint: analysis.HintUK, Label: "underground forums (UK location information)"},
		{ID: 4, Count: 10, Channel: analysis.OutletForum, Hint: analysis.HintUS, Label: "underground forums (US location information)"},
		{ID: 5, Count: 20, Channel: analysis.OutletMalware, Hint: analysis.HintNone, Label: "malware (no location information)"},
	}
}

// PaperGroupLabel returns the paper's own Table 1 wording for a group
// number (sub-blocks such as the Russian paste sites and the UK/US
// hint split share their group's label).
func PaperGroupLabel(id int) string {
	switch id {
	case 1:
		return "popular paste websites (no location information)"
	case 2:
		return "popular paste websites (including location information)"
	case 3:
		return "underground forums (no location information)"
	case 4:
		return "underground forums (including location information)"
	case 5:
		return "malware (no location information)"
	default:
		return fmt.Sprintf("group %d", id)
	}
}

// PlanAccounts sums the account count of a plan.
func PlanAccounts(plan []GroupSpec) int {
	n := 0
	for _, g := range plan {
		n += g.Count
	}
	return n
}

// PlannedAccounts returns the number of accounts a configuration will
// deploy once defaults and the scale factor are applied — what callers
// need to sanity-check shard counts before paying for Setup.
func PlannedAccounts(cfg Config) int {
	cfg = cfg.withDefaults()
	return PlanAccounts(expandPlan(cfg.Plan, cfg.ScaleFactor))
}

// ValidatePlan rejects malformed plans.
func ValidatePlan(plan []GroupSpec) error {
	if len(plan) == 0 {
		return fmt.Errorf("honeynet: empty plan")
	}
	for i, g := range plan {
		if g.Count <= 0 {
			return fmt.Errorf("honeynet: plan block %d has count %d", i, g.Count)
		}
		switch g.Channel {
		case analysis.OutletPaste, analysis.OutletPasteRussian, analysis.OutletForum, analysis.OutletMalware:
		default:
			return fmt.Errorf("honeynet: plan block %d has unknown channel %q", i, g.Channel)
		}
		switch g.Hint {
		case analysis.HintNone, analysis.HintUK, analysis.HintUS:
		default:
			return fmt.Errorf("honeynet: plan block %d has unknown hint %q", i, g.Hint)
		}
		if g.Channel == analysis.OutletMalware && g.Hint != analysis.HintNone {
			return fmt.Errorf("honeynet: malware blocks carry no location hint (Table 1)")
		}
	}
	return nil
}

// Assignment records the plan facts for one account.
type Assignment struct {
	Account  string
	Password string
	Group    GroupSpec
}
