package honeynet

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/appscript"
	"repro/internal/attacker"
	"repro/internal/c3"
	"repro/internal/geo"
	"repro/internal/malnet"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/outlets"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/sinkhole"
	"repro/internal/webmail"
)

// The sharded engine splits one experiment into two granularities:
//
//   - A *shard* is a unit of parallelism: one simulation clock, one
//     scheduler, one webmail account partition, one monitoring
//     pipeline (collector store, Apps-Script runtime, scraper) and
//     one sinkhole. Shards share no mutable simulation state, so the
//     ShardSet can drive them from concurrent worker goroutines.
//
//   - A *block* is a unit of determinism: one expanded-plan entry
//     (one Table 1 row, possibly replicated by ScaleFactor). Every
//     stochastic stream that shapes a block's fate — its outlets, its
//     attacker population, its malware campaign, its address space,
//     its cookie namespace — derives from rng.ForkShard(block index,
//     block count) on the experiment seed. Block behaviour is
//     therefore a pure function of (seed, plan, scale) and does NOT
//     depend on which shard executes the block, which is what makes
//     shards=1 and shards=8 produce the same merged dataset.
//
// Blocks are assigned to shards round-robin; a shard runs all events
// of its blocks on its single scheduler.

// shard owns the parallel-execution fabric for a subset of blocks.
type shard struct {
	id    int
	clock *simtime.Clock
	sched *simtime.Scheduler
	// wheel batches every same-cadence periodic trigger on this shard
	// (all Apps-Script scans, all heartbeats, the monitor scrape) onto
	// one scheduler event per tick, so the heap pays O(1) operations
	// per tick instead of O(accounts).
	wheel   *simtime.TriggerWheel
	sink    *sinkhole.Store
	store   *monitor.Store
	runtime *appscript.Runtime
	mon     *monitor.Monitor
	// sc classifies this shard's accesses as the simulation runs
	// (nil when Config.DisableStreaming is set).
	sc *analysis.StreamClassifier
	// c3 is this shard's C3 index fragment, fed at pickup/exfil time
	// by the shard's own blocks; def is the detection loop over it.
	// Both nil unless Config.DefenderCadence > 0 (see defender.go).
	c3  *c3.Store
	def *defender
}

// block owns the deterministic per-plan-entry machinery.
type block struct {
	idx   int
	spec  GroupSpec
	shard *shard

	src     *rng.Source
	space   *netsim.AddressSpace
	jar     *netsim.CookieJar
	reg     *outlets.Registry
	engine  *attacker.Engine
	sandbox *malnet.Sandbox

	// assignment index range [start, end) into Experiment.assignments.
	start, end int
}

// newShards builds n isolated shard fabrics over a shared platform.
// The service must have n partitions; partition i is bound to shard
// i's clock and sinkhole.
func newShards(n int, cfg Config, svc *webmail.Service, monEP netsim.Endpoint) ([]*shard, *simtime.ShardSet, error) {
	shards := make([]*shard, n)
	set := simtime.NewShardSet()
	for i := 0; i < n; i++ {
		clock := simtime.NewClock(cfg.Start)
		sched := simtime.NewScheduler(clock)
		sh := &shard{
			id:    i,
			clock: clock,
			sched: sched,
			wheel: simtime.NewTriggerWheel(sched),
			sink:  sinkhole.NewStore(clock.Now),
			store: monitor.NewStore(),
		}
		if err := svc.ConfigurePartition(i, clock.Now, sh.sink); err != nil {
			return nil, nil, fmt.Errorf("honeynet: bind partition %d: %w", i, err)
		}
		if cfg.DefenderCadence > 0 {
			frag, err := c3.New(c3.Config{BucketBits: cfg.C3BucketBits, Variants: cfg.C3Variants})
			if err != nil {
				return nil, nil, fmt.Errorf("honeynet: shard %d c3 fragment: %w", i, err)
			}
			sh.c3 = frag
		}
		if !cfg.DisableStreaming {
			sh.sc = analysis.NewStreamClassifier(analysis.StreamConfig{})
			sh.store.SetSink(&streamSink{sc: sh.sc})
		}
		sh.runtime = appscript.NewRuntime(svc, sh.sched, sh.store)
		sh.runtime.UseWheel(sh.wheel)
		sh.mon = monitor.New(monitor.Config{
			Service:            svc,
			Scheduler:          sh.sched,
			Store:              sh.store,
			Endpoint:           monEP,
			Cookies:            netsim.NewCookieJarPrefixed(fmt.Sprintf("mon%d", i)),
			Wheel:              sh.wheel,
			DisableVersionGate: cfg.DisableDirtyTracking,
		})
		shards[i] = sh
		set.Add(sh.sched)
	}
	return shards, set, nil
}

// newBlock builds the deterministic machinery for expanded-plan entry
// idx of total, running on the given shard. All randomness descends
// from root.ForkShard(idx, total), so the block's behaviour is
// independent of the shard layout. The outlet catalogue and attacker
// populations come from cfg (scenario overrides); defaults reproduce
// the paper's deployment.
func newBlock(idx, total int, spec GroupSpec, sh *shard, root *rng.Source, cfg Config,
	gaz *geo.Gazetteer, bl *netsim.Blacklist, svc *webmail.Service) *block {
	src := root.ForkShard(idx, total)
	b := &block{
		idx:   idx,
		spec:  spec,
		shard: sh,
		src:   src,
		// Tenant idx: this block's IP ranges are disjoint from every
		// other block's and from the monitor's (tenant == total), so
		// distinct attackers never share an address.
		space: netsim.NewAddressSpaceTenant(src.ForkNamed("address-space"), gaz, idx),
		jar:   netsim.NewCookieJarPrefixed(fmt.Sprintf("b%d", idx)),
		reg:   outlets.NewRegistry(cfg.Sites, sh.sched, src.ForkNamed("outlets")),
	}
	if sh.c3 != nil {
		// Pickup-time C3 ingestion: the fragment learns a credential at
		// the instant a criminal picks it up — the earliest moment a
		// breach-monitoring service could know it. The sink is a pure
		// observer (no randomness, shard-local writes), so wiring it
		// moves no simulated outcome.
		frag := sh.c3
		b.reg.SetSink(func(c outlets.Credential, site string, at time.Time) {
			frag.Add(c.Account, c.Password, site, at)
		})
	}
	b.engine = attacker.New(attacker.Config{
		Service:     svc,
		Scheduler:   sh.sched,
		Space:       b.space,
		Blacklist:   bl,
		Gazetteer:   gaz,
		Src:         src.ForkNamed("attackers"),
		Cookies:     b.jar,
		Populations: cfg.Populations,
	})
	b.sandbox = malnet.NewSandbox(malnet.SandboxConfig{}, sh.sched, func(ex malnet.Exfiltration) {
		if sh.c3 != nil {
			// Malware-channel ingestion: the credential crosses the C&C
			// wire at exfiltration — that is when a sinkhole-operating
			// monitoring service would capture it.
			sh.c3.Add(ex.Credential.Account, ex.Credential.Password, "malware", ex.At)
		}
		b.engine.HandleExfil(ex)
	})
	return b
}

// expandPlan replicates a validated plan scale times. Replicas keep
// their group IDs (so Table 1 totals scale linearly) but get labelled
// per replica for reporting.
func expandPlan(plan []GroupSpec, scale int) []GroupSpec {
	if scale <= 1 {
		return append([]GroupSpec(nil), plan...)
	}
	out := make([]GroupSpec, 0, len(plan)*scale)
	for r := 0; r < scale; r++ {
		for _, g := range plan {
			if r > 0 {
				g.Label = fmt.Sprintf("%s [replica %d]", g.Label, r+1)
			}
			out = append(out, g)
		}
	}
	return out
}
