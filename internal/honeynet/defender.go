package honeynet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/c3"
)

// The defender loop closes the measurement circle the paper leaves
// open: the honey infrastructure observes what criminals do with
// leaked credentials, and the defender models what a provider armed
// with a compromised-credential-checking (C3) service could have done
// about it. Each shard carries its own C3 index fragment, populated
// live at the only moments a breach-monitoring service could learn a
// credential — outlet pickup (the credential verifiably enters
// criminal circulation) and malware exfiltration (it crosses the C&C
// wire). On a configurable cadence the defender range-queries the
// fragment for every still-undetected honey account, exactly as a
// provider would query a k-anonymity C3 API, and on a hit resets the
// account's password — invalidating every live session, the
// attacker's included. The gap between the attacker's first access
// and the defender's detection is the new measurable axis:
// time-to-detection vs. time-to-exploit.
//
// Determinism: the fragment is shard-local and detection of account X
// depends only on X's own credential having been ingested — an event
// of X's own block, which runs on X's shard whatever the layout — so
// the detection trace is invariant under shard count, streaming mode
// and worker count. The defender draws no randomness: the reset
// password is a pure function of the old credential, and the check
// walks accounts in plan order.

// defender is one shard's detection loop over its C3 fragment.
type defender struct {
	sh    *shard
	store *c3.Store
	e     *Experiment
	watch []*watchEntry
	stop  func()
}

// watchEntry is one honey account the defender checks: the credential
// the criminals hold, and the detection outcome once it happens.
type watchEntry struct {
	account    string
	password   string // the leaked password (what circulates)
	group      GroupSpec
	leakAt     time.Time
	detected   bool
	detectedAt time.Time
}

// DefenderOutcome is one account's detection-race result: when its
// credential leaked, when the defender detected the leak through C3
// (zero time if never), and when an attacker first touched the
// account (zero time if never) — the two clocks whose difference is
// the exposure window.
type DefenderOutcome struct {
	Account    string
	Group      GroupSpec
	LeakAt     time.Time
	Detected   bool
	DetectedAt time.Time
	Exploited  bool
	ExploitAt  time.Time
}

// DefenderEnabled reports whether this experiment runs the C3
// defender loop.
func (e *Experiment) DefenderEnabled() bool { return e.cfg.DefenderCadence > 0 }

// armDefenders builds each shard's watch list (that shard's accounts,
// in plan order) and puts the periodic C3 check on the shard's
// trigger wheel. Called at the end of Leak: the wheel chains at the
// snapshot boundary stay exactly what a defender-free build arms, so
// snapshots and their descriptors are unchanged by the subsystem.
func (e *Experiment) armDefenders() {
	for _, sh := range e.shards {
		if sh.c3 == nil {
			continue
		}
		d := &defender{sh: sh, store: sh.c3, e: e}
		for _, b := range e.blocks {
			if b.shard != sh {
				continue
			}
			for _, a := range e.assignments[b.start:b.end] {
				d.watch = append(d.watch, &watchEntry{
					account:  a.Account,
					password: a.Password,
					group:    b.spec,
					leakAt:   e.leakTimes[a.Account],
				})
			}
		}
		d.stop = sh.wheel.Every(e.cfg.DefenderCadence, "defender-check", d.tick)
		sh.def = d
	}
}

// tick is one defender pass: for every still-undetected account,
// query the shard's C3 fragment for the leaked credential (through
// the same whole-bucket range path the wire protocol serves) and, on
// a hit, reset the password. The monitor learns the new credential in
// the same event, so scraping continues without a failure record —
// the provider rotated its own account.
func (d *defender) tick(now time.Time) {
	for _, w := range d.watch {
		if w.detected {
			continue
		}
		if !d.store.Contains(c3.Hash(w.account, w.password)) {
			continue
		}
		w.detected = true
		w.detectedAt = now
		d.e.resetAccount(d.sh, w.account, w.password)
	}
}

// resetAccount performs the provider-side rotation: the new password
// is a pure function of the old credential (no randomness — the
// defender is deterministic by construction), every live session
// drops, and the shard's monitor switches to the new password.
func (e *Experiment) resetAccount(sh *shard, account, oldPassword string) {
	newPassword := fmt.Sprintf("rs-%016x", c3.Hash(account, oldPassword))
	if err := e.svc.ResetPassword(account, newPassword); err != nil {
		return // suspended/deleted accounts stay detected but unrotated
	}
	sh.mon.UpdatePassword(account, newPassword)
}

// DefenderOutcomes merges every shard defender's watch list into one
// account-sorted outcome table, joining each account against the
// ground-truth attacker records for its first-exploit time. Nil when
// the defender is disabled. The result is byte-identical at any shard
// count and in stream or batch mode.
func (e *Experiment) DefenderOutcomes() []DefenderOutcome {
	if !e.DefenderEnabled() {
		return nil
	}
	firstAt := make(map[string]time.Time)
	for _, rec := range e.Records() {
		if _, ok := firstAt[rec.Account]; !ok {
			firstAt[rec.Account] = rec.FirstAt
		}
	}
	var out []DefenderOutcome
	for _, sh := range e.shards {
		if sh.def == nil {
			continue
		}
		for _, w := range sh.def.watch {
			o := DefenderOutcome{
				Account:    w.account,
				Group:      w.group,
				LeakAt:     w.leakAt,
				Detected:   w.detected,
				DetectedAt: w.detectedAt,
			}
			if at, ok := firstAt[w.account]; ok {
				o.Exploited = true
				o.ExploitAt = at
			}
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Account < out[j].Account })
	return out
}

// C3Stats merges the per-shard C3 fragment statistics: total indexed
// credentials across the fleet (bits/variants are uniform). Zero
// value when the defender is disabled.
func (e *Experiment) C3Stats() c3.Stats {
	var st c3.Stats
	for _, sh := range e.shards {
		if sh.c3 == nil {
			continue
		}
		s := sh.c3.Stats()
		st.Credentials += s.Credentials
		st.BucketBits = s.BucketBits
		st.Variants = s.Variants
	}
	return st
}
