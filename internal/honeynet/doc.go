// Package honeynet is the core of the reproduction: the end-to-end
// honey-account experiment of the paper. Paper-section map:
//
//   - §3.2 Table 1: the deployment plan (plan.go) — 100 accounts
//     across paste sites, underground forums and info-stealing
//     malware, with and without decoy-location hints.
//   - §3.2 honey account setup: Setup seeds Enron-style mailboxes,
//     installs the hidden monitoring scripts, starts the scrapers.
//   - §3.2 leaking account credentials: Leak publishes each block's
//     credentials through its channel.
//   - §4.7 case studies: scheduled blackmail, quota-notice and
//     carding-forum scenarios.
//   - §4.1–§4.6: Dataset (batch) and Aggregates (streaming) export
//     what internal/analysis and internal/report consume.
//
// The engine is sharded for fleet-scale runs: the experiment plan is
// partitioned across Config.Shards parallel schedulers (see shard.go
// for the shard/block split), each shard drives its own webmail
// account partition, monitoring pipeline and sinkhole. For a fixed
// seed the results are independent of the shard count, because every
// stochastic stream derives from the owning plan block, not from the
// shard executing it. Config.ScaleFactor replicates the plan K× to
// simulate 100·K-account deployments.
//
// Two analysis exports exist. Dataset merges every shard's records
// into one analysis.Dataset (O(records) merge + sort — the paper's
// post-hoc shape). Aggregates, the default streaming path (stream.go),
// lets each shard classify accesses while simulated time advances and
// merges one aggregate per shard — O(shards) — rendering reports
// byte-identical to the batch path.
package honeynet
