package monitor

import (
	"testing"
	"time"

	"repro/internal/appscript"
)

// recordingSink captures everything the streaming hook delivers.
type recordingSink struct {
	accesses      []AccessRecord
	notifications []appscript.Notification
	failures      []ScrapeFailure
}

func (r *recordingSink) ObserveAccess(a AccessRecord) { r.accesses = append(r.accesses, a) }
func (r *recordingSink) ObserveNotification(n appscript.Notification) {
	r.notifications = append(r.notifications, n)
}
func (r *recordingSink) ObserveFailure(f ScrapeFailure) { r.failures = append(r.failures, f) }

// The sink must see exactly what Dataset exports: attacker accesses
// with the self-filter applied (no monitor cookies, no monitor-city
// rows), repeated rows only when they changed, notifications as they
// arrive, and each failure once.
func TestSinkStreamsFilteredObservations(t *testing.T) {
	f := newFixture(t)
	sink := &recordingSink{}
	f.store.SetSink(sink)

	f.attackerLogin(t, "Bucharest", "Mozilla/5.0 Chrome")
	f.attackerLogin(t, "London", "") // monitor's own city: filtered (§4.1)
	f.mon.ScrapeAll(f.clock.Now())

	if len(sink.accesses) != 1 {
		t.Fatalf("sink saw %d accesses, want 1 (self-filtered): %+v", len(sink.accesses), sink.accesses)
	}
	if sink.accesses[0].City != "Bucharest" {
		t.Fatalf("sink access = %+v", sink.accesses[0])
	}
	// The scraper's own login must never be streamed either.
	for _, a := range sink.accesses {
		if a.City == "London" {
			t.Fatalf("self access streamed: %+v", a)
		}
	}

	// Unchanged rows are not re-streamed; a changed row is.
	before := len(sink.accesses)
	f.mon.ScrapeAll(f.clock.Now())
	if len(sink.accesses) != before {
		t.Fatalf("unchanged scrape re-streamed rows: %d -> %d", before, len(sink.accesses))
	}
	se := f.attackerLogin(t, "Bucharest", "Mozilla/5.0 Chrome") // fresh cookie: new row
	_ = se
	f.mon.ScrapeAll(f.clock.Now())
	if len(sink.accesses) != before+1 {
		t.Fatalf("changed scrape streamed %d new rows, want 1", len(sink.accesses)-before)
	}

	// Notifications flow through as the runtime raises them.
	f.sched.RunFor(25 * time.Hour) // heartbeat fires daily
	foundHeartbeat := false
	for _, n := range sink.notifications {
		if n.Kind == appscript.NoteHeartbeat {
			foundHeartbeat = true
		}
	}
	if !foundHeartbeat {
		t.Fatalf("no heartbeat streamed; notifications = %d", len(sink.notifications))
	}

	// A hijack streams exactly one failure.
	hijacker := f.attackerLogin(t, "Bucharest", "")
	if err := hijacker.ChangePassword("stolen"); err != nil {
		t.Fatal(err)
	}
	f.mon.ScrapeAll(f.clock.Now())
	f.mon.ScrapeAll(f.clock.Now())
	if len(sink.failures) != 1 {
		t.Fatalf("sink saw %d failures, want 1: %+v", len(sink.failures), sink.failures)
	}
	if sink.failures[0].Reason != "password-changed" {
		t.Fatalf("failure = %+v", sink.failures[0])
	}
}
