// Package monitor implements the paper's monitoring infrastructure
// (§3.1): a collector that receives the Apps-Script notifications
// (the "dedicated webmail account [used] as a notifications store"),
// and a scraper that periodically logs into every honey account to
// dump its activity page — cookie identifiers, geolocation, access
// times, and system fingerprints. Paper-section map:
//
//   - §3.1: Store (notification collector) and Monitor (activity-page
//     scraper) — the two halves of the monitoring pipeline.
//   - §4.1 self-access filtering: accesses made by the monitoring
//     infrastructure itself, and any access from the city the
//     infrastructure runs in, are removed before the data reaches
//     analysis (both in Dataset and in the streaming Sink feed).
//   - §4.2 loss of visibility: when a hijacker changes an account
//     password the scraper's credentials stop working, so activity
//     rows freeze at their last scraped state — a lower bound on
//     access durations — while notifications keep flowing because the
//     embedded scripts keep running.
//
// Consumers read the observations two ways: post hoc through
// Store/Dataset (the batch path), or live through a Sink registered
// with Store.SetSink — the hook the streaming classification pipeline
// uses to analyse accesses while the simulation runs.
package monitor
