package monitor

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/webmail"
)

// obsTable is the columnar "latest activity row per cookie" store for
// one account — the monitor-side mirror of webmail's columnar
// activity page. Row i is the newest observed state of one cookie;
// deltas update columns in place, so steady-state observation of an
// active account allocates nothing per scrape. String fields retain
// the incoming values: they are already arena-backed by the webmail
// partition's string table, so keeping the reference shares that
// storage instead of copying it.
type obsTable struct {
	byCookie map[string]int32

	cookie   []string
	firstNS  []int64
	lastNS   []int64
	ip       []string
	city     []string
	country  []string
	lat      []float64
	lon      []float64
	hasPoint []bool
	ua       []string
	browser  []netsim.Browser
	device   []netsim.DeviceClass
	visits   []int32
}

func (t *obsTable) len() int { return len(t.cookie) }

// observe merges one freshly scraped row, reporting whether anything
// observable changed since the last scrape. The comparison covers
// every activity-page field; a row's change counter (webmail's
// private rev) moves only when one of these fields does, so field
// equality here is exactly the old struct-equality diff.
func (t *obsTable) observe(r webmail.Access) bool {
	firstNS, lastNS := r.First.UnixNano(), r.Last.UnixNano()
	if i, ok := t.byCookie[r.Cookie]; ok {
		if t.firstNS[i] == firstNS && t.lastNS[i] == lastNS &&
			t.ip[i] == r.IP && t.city[i] == r.City && t.country[i] == r.Country &&
			t.lat[i] == r.Lat && t.lon[i] == r.Lon && t.hasPoint[i] == r.HasPoint &&
			t.ua[i] == r.UserAgent && t.browser[i] == r.Browser &&
			t.device[i] == r.Device && int(t.visits[i]) == r.Visits {
			return false
		}
		t.firstNS[i], t.lastNS[i] = firstNS, lastNS
		t.ip[i], t.city[i], t.country[i] = r.IP, r.City, r.Country
		t.lat[i], t.lon[i], t.hasPoint[i] = r.Lat, r.Lon, r.HasPoint
		t.ua[i], t.browser[i], t.device[i] = r.UserAgent, r.Browser, r.Device
		t.visits[i] = int32(r.Visits)
		return true
	}
	if t.byCookie == nil {
		t.byCookie = make(map[string]int32)
	}
	t.byCookie[r.Cookie] = int32(len(t.cookie))
	t.cookie = append(t.cookie, r.Cookie)
	t.firstNS = append(t.firstNS, firstNS)
	t.lastNS = append(t.lastNS, lastNS)
	t.ip = append(t.ip, r.IP)
	t.city = append(t.city, r.City)
	t.country = append(t.country, r.Country)
	t.lat = append(t.lat, r.Lat)
	t.lon = append(t.lon, r.Lon)
	t.hasPoint = append(t.hasPoint, r.HasPoint)
	t.ua = append(t.ua, r.UserAgent)
	t.browser = append(t.browser, r.Browser)
	t.device = append(t.device, r.Device)
	t.visits = append(t.visits, int32(r.Visits))
	return true
}

// materialize rebuilds the public Access value for row i, with the
// same canonical time representation the webmail store uses.
func (t *obsTable) materialize(i int32) webmail.Access {
	return webmail.Access{
		Cookie:    t.cookie[i],
		First:     time.Unix(0, t.firstNS[i]).UTC(),
		Last:      time.Unix(0, t.lastNS[i]).UTC(),
		IP:        t.ip[i],
		City:      t.city[i],
		Country:   t.country[i],
		Lat:       t.lat[i],
		Lon:       t.lon[i],
		HasPoint:  t.hasPoint[i],
		UserAgent: t.ua[i],
		Browser:   t.browser[i],
		Device:    t.device[i],
		Visits:    int(t.visits[i]),
	}
}
