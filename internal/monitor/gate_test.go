package monitor

import (
	"testing"
	"time"

	"repro/internal/webmail"
)

// monitorLogins counts the monitor's own EventLogin entries in an
// account's ground-truth journal — the "journal noise" the version
// gate eliminates for quiet accounts.
func monitorLogins(f *fixture, account string) int {
	self := f.mon.MonitorCookies()
	n := 0
	for _, ev := range f.svc.Journal(account) {
		if ev.Kind == webmail.EventLogin && self[ev.Cookie] {
			n++
		}
	}
	return n
}

// A tracked account nobody touches is never logged into: the version
// gate answers "nothing changed" from the probe alone, so months of
// idle scrape ticks leave zero EventLogin noise in the journal.
func TestVersionGateSkipsIdleAccounts(t *testing.T) {
	f := newFixture(t)
	f.mon.Start(30 * time.Minute)
	f.sched.RunFor(48 * time.Hour) // 96 scrape ticks, all idle
	if got := monitorLogins(f, "h1@honeymail.example"); got != 0 {
		t.Fatalf("idle account journaled %d monitor logins, want 0", got)
	}
	if ds := f.mon.Dataset(); len(ds) != 0 {
		t.Fatalf("idle account produced %d dataset rows", len(ds))
	}
}

// Once an account goes quiet again, scraping stops with it: the gate
// reopens only for ticks that follow a scraper-visible change.
func TestVersionGateScrapesOnlyAfterActivity(t *testing.T) {
	f := newFixture(t)
	f.mon.Start(30 * time.Minute)
	f.sched.RunFor(2 * time.Hour) // idle: no scrapes
	if got := monitorLogins(f, "h1@honeymail.example"); got != 0 {
		t.Fatalf("pre-activity monitor logins = %d, want 0", got)
	}
	f.attackerLogin(t, "Bucharest", "")
	f.sched.RunFor(time.Hour) // ticks at +2h30m (scrape) and +3h (skip)
	after := monitorLogins(f, "h1@honeymail.example")
	if after != 1 {
		t.Fatalf("monitor logins after one burst = %d, want exactly 1 (one scrape, then quiet)", after)
	}
	f.sched.RunFor(24 * time.Hour) // long quiet stretch: no more logins
	if got := monitorLogins(f, "h1@honeymail.example"); got != after {
		t.Fatalf("quiet stretch added %d monitor logins", got-after)
	}
	ds := f.mon.Dataset()
	if len(ds) != 1 || ds[0].City != "Bucharest" {
		t.Fatalf("dataset = %+v", ds)
	}
}

// The failure-visibility contract, half 1: a password change on an
// otherwise-idle account must open the gate, so the lockout is
// detected on the very next scrape tick — never skipped as stale.
func TestVersionGateDetectsPasswordChangeNextTick(t *testing.T) {
	f := newFixture(t)
	f.mon.Start(30 * time.Minute)
	se := f.attackerLogin(t, "Minsk", "")
	f.sched.RunFor(3 * time.Hour) // monitor scrapes the row, then idles
	base := monitorLogins(f, "h1@honeymail.example")
	if base != 1 {
		t.Fatalf("settled monitor logins = %d, want 1", base)
	}
	// Hijack between ticks: only the password changes.
	if err := se.ChangePassword("owned"); err != nil {
		t.Fatal(err)
	}
	f.sched.RunFor(time.Hour)
	fails := f.store.Failures()
	if len(fails) != 1 || fails[0].Reason != "password-changed" {
		t.Fatalf("failures = %+v", fails)
	}
	// Detected at the first tick after the change (3h30m), not later.
	want := epoch.Add(3*time.Hour + 30*time.Minute)
	if !fails[0].Time.Equal(want) {
		t.Fatalf("failure at %v, want next tick %v", fails[0].Time, want)
	}
}

// The failure-visibility contract, half 2: a suspension on a fully
// idle account (no attacker ever logged in — the bump comes from the
// suspension itself) is detected on the next scrape tick.
func TestVersionGateDetectsSuspensionNextTick(t *testing.T) {
	f := newFixture(t)
	f.mon.Start(30 * time.Minute)
	f.sched.RunFor(2 * time.Hour) // idle: every tick skipped
	if err := f.svc.Suspend("h1@honeymail.example", "abuse"); err != nil {
		t.Fatal(err)
	}
	f.sched.RunFor(time.Hour)
	fails := f.store.Failures()
	if len(fails) != 1 || fails[0].Reason != "suspended" {
		t.Fatalf("failures = %+v", fails)
	}
	want := epoch.Add(2*time.Hour + 30*time.Minute)
	if !fails[0].Time.Equal(want) {
		t.Fatalf("failure at %v, want next tick %v", fails[0].Time, want)
	}
}

// A skipped scrape streams nothing to the sink — the gate's skip path
// is invisible to the streaming classifier, not just cheap.
func TestVersionGateSkipStreamsNothing(t *testing.T) {
	f := newFixture(t)
	sink := &recordingSink{}
	f.store.SetSink(sink)
	f.attackerLogin(t, "Tokyo", "")
	f.mon.ScrapeAll(f.clock.Now())
	if len(sink.accesses) != 1 {
		t.Fatalf("first scrape streamed %d rows, want 1", len(sink.accesses))
	}
	for i := 0; i < 50; i++ {
		f.mon.ScrapeAll(f.clock.Now())
	}
	if len(sink.accesses) != 1 {
		t.Fatalf("skipped scrapes streamed %d extra rows", len(sink.accesses)-1)
	}
}

// The escape hatch restores the legacy behaviour: with the gate off,
// every tick logs into every tracked account, changed or not, and the
// dataset still comes out the same.
func TestVersionGateEscapeHatch(t *testing.T) {
	f := newFixture(t)
	ungated := New(Config{
		Service: f.svc, Scheduler: f.sched, Store: NewStore(),
		Endpoint:           f.mon.endpoint,
		DisableVersionGate: true,
	})
	ungated.Track("h1@honeymail.example", "pw1")
	f.attackerLogin(t, "Madrid", "")
	for i := 0; i < 5; i++ {
		ungated.ScrapeAll(f.clock.Now())
	}
	if got := monitorLogins(&fixture{svc: f.svc, mon: ungated}, "h1@honeymail.example"); got != 5 {
		t.Fatalf("ungated monitor logins = %d, want 5 (one per tick)", got)
	}
	ds := ungated.Dataset()
	if len(ds) != 1 || ds[0].City != "Madrid" {
		t.Fatalf("ungated dataset = %+v", ds)
	}
}
