package monitor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/appscript"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/webmail"
)

// AccessRecord is the monitor's merged view of one unique access (one
// cookie on one account).
type AccessRecord struct {
	Account string
	webmail.Access
}

// Duration returns tlast - t0 for the access (Figure 1's x-axis).
func (r AccessRecord) Duration() time.Duration { return r.Last.Sub(r.First) }

// ScrapeFailure records the moment the scraper lost an account.
type ScrapeFailure struct {
	Account string
	Time    time.Time
	Reason  string // "password-changed" or "suspended"
}

// Sink receives the monitoring pipeline's observations as they
// happen, instead of waiting for the end-of-run Dataset extraction.
// The streaming classification pipeline implements it: each shard's
// store/monitor pair feeds its shard's classifier while simulated
// time advances.
//
// Delivery contract: ObserveAccess carries the latest activity row
// for one (account, cookie) pair and may fire repeatedly as the row's
// Last advances — receivers keep the newest. The §4.1 self-filter
// (the monitor's own cookies, the infrastructure's city) is applied
// before delivery, so sinks see exactly the rows Dataset would
// export. ObserveNotification forwards every script notification
// (including heartbeats); ObserveFailure fires once per lost account.
type Sink interface {
	ObserveAccess(AccessRecord)
	ObserveNotification(appscript.Notification)
	ObserveFailure(ScrapeFailure)
}

// Store accumulates everything the monitoring pipeline observes.
// It is safe for concurrent use.
type Store struct {
	mu            sync.Mutex
	notifications []appscript.Notification
	// byAccount indexes notifications by account (positions in the
	// notifications slice), maintained at Notify time so per-account
	// lookups never scan the whole fleet's feed.
	byAccount map[string][]int
	// accesses holds each account's latest-row-per-cookie state as
	// parallel columns (see columnar.go) instead of maps of boxed
	// structs: a million-account fleet keeps one obsTable per account,
	// not one heap object per observed row.
	accesses map[string]*obsTable
	// changed is recordAccesses's reusable delta buffer; its contents
	// are only valid until the next recordAccesses call (scrape ticks
	// on one store are serialized by the owning scheduler, and
	// scrapeOne consumes the delta before returning).
	changed       []webmail.Access
	failures      []ScrapeFailure
	failed        map[string]bool // account -> scraper locked out
	lastHeartbeat map[string]time.Time
	sink          Sink
}

// SetSink registers a streaming observer. Call before the run starts;
// events already recorded are not replayed.
func (s *Store) SetSink(sink Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
}

// Sink returns the registered streaming observer (nil if none).
func (s *Store) Sink() Sink {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byAccount:     make(map[string][]int),
		accesses:      make(map[string]*obsTable),
		failed:        make(map[string]bool),
		lastHeartbeat: make(map[string]time.Time),
	}
}

// Notify implements appscript.Notifier.
func (s *Store) Notify(n appscript.Notification) {
	s.mu.Lock()
	s.byAccount[n.Account] = append(s.byAccount[n.Account], len(s.notifications))
	s.notifications = append(s.notifications, n)
	if n.Kind == appscript.NoteHeartbeat {
		s.lastHeartbeat[n.Account] = n.Time
	}
	sink := s.sink
	s.mu.Unlock()
	if sink != nil {
		sink.ObserveNotification(n)
	}
}

// Notifications returns a copy of all collected notifications.
func (s *Store) Notifications() []appscript.Notification {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]appscript.Notification, len(s.notifications))
	copy(out, s.notifications)
	return out
}

// NotificationsFor returns the notifications for one account, in
// arrival order. The per-account index makes this O(matches) instead
// of a linear scan over every account's notifications.
func (s *Store) NotificationsFor(account string) []appscript.Notification {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.byAccount[account]
	if len(idx) == 0 {
		return nil
	}
	out := make([]appscript.Notification, len(idx))
	for i, j := range idx {
		out[i] = s.notifications[j]
	}
	return out
}

// recordAccesses merges freshly scraped activity rows and returns the
// rows that actually changed since the last scrape — the delta the
// streaming sink needs (unchanged rows would only make the classifier
// rewrite identical state).
// The returned slice aliases the store's reusable buffer: it is valid
// only until the next recordAccesses call.
func (s *Store) recordAccesses(account string, rows []webmail.Access) []webmail.Access {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.accesses[account]
	if !ok {
		t = &obsTable{}
		s.accesses[account] = t
	}
	s.changed = s.changed[:0]
	for _, r := range rows {
		if t.observe(r) {
			s.changed = append(s.changed, r)
		}
	}
	return s.changed
}

// recordFailure notes a lost account (first failure only).
func (s *Store) recordFailure(account, reason string, at time.Time) {
	s.mu.Lock()
	if s.failed[account] {
		s.mu.Unlock()
		return
	}
	s.failed[account] = true
	f := ScrapeFailure{Account: account, Time: at, Reason: reason}
	s.failures = append(s.failures, f)
	sink := s.sink
	s.mu.Unlock()
	if sink != nil {
		sink.ObserveFailure(f)
	}
}

// Failures returns all scrape failures in order of occurrence.
func (s *Store) Failures() []ScrapeFailure {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ScrapeFailure, len(s.failures))
	copy(out, s.failures)
	return out
}

// LastHeartbeat reports the most recent heartbeat from an account.
func (s *Store) LastHeartbeat(account string) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.lastHeartbeat[account]
	return t, ok
}

// tracked is the monitor's per-account scraping state. Its mutable
// fields (lastSeen, failed) are touched only from scrape ticks, which
// the owning scheduler serializes.
type tracked struct {
	account  string
	password string
	cookie   string // the scraper's own browser cookie
	// probe answers "did anything scraper-visible change?" with one
	// atomic load — the version gate that lets a quiet account cost
	// ~zero per scrape tick.
	probe webmail.VersionProbe
	// lastSeen is the account accessVersion after our previous scrape
	// (our own login included, so a quiet account compares equal on
	// the next tick). It doubles as the ActivityPageSince cursor.
	lastSeen uint64
	failed   bool // scraper locked out; mirrors Store.failed
}

// Monitor drives the activity-page scraping. It holds the original
// credentials of every honey account (a hijack makes them stale, which
// is exactly the visibility loss the paper describes).
type Monitor struct {
	svc   *webmail.Service
	sched *simtime.Scheduler
	wheel *simtime.TriggerWheel
	store *Store

	// SelfCity is where the monitoring infrastructure runs; §4.1
	// removes all accesses originating there.
	selfCity string
	endpoint netsim.Endpoint
	jar      *netsim.CookieJar // nil -> use the platform's jar
	gateOff  bool              // Config.DisableVersionGate

	mu      sync.Mutex
	tracked map[string]*tracked
	order   []*tracked // sorted by account; rebuilt after Track
	stale   bool       // order needs a rebuild
	stop    func()

	// rowScratch is scrapeOne's reusable delta buffer; scrape ticks
	// are serialized by the owning scheduler.
	rowScratch []webmail.Access
}

// Config parameterises a Monitor.
type Config struct {
	Service   *webmail.Service
	Scheduler *simtime.Scheduler
	Store     *Store
	// Endpoint is the infrastructure's network identity; its city
	// becomes the self-filter city.
	Endpoint netsim.Endpoint
	// Cookies, when set, issues the scraper's own cookies. Sharded
	// experiments give each shard's monitor a prefixed jar so cookie
	// values are independent of cross-shard interleaving; nil falls
	// back to the platform's jar.
	Cookies *netsim.CookieJar
	// Wheel, when set, batches the periodic scrape onto a shared
	// trigger wheel (the honeynet passes each shard's wheel so the
	// scraper and the Apps-Script runtime pool scheduler events); nil
	// gives the monitor a private wheel on its scheduler.
	Wheel *simtime.TriggerWheel
	// DisableVersionGate restores the pre-dirty-tracking behaviour:
	// every scrape tick logs into every tracked account and copies the
	// full activity page, changed or not. The observed dataset is
	// identical either way; the flag exists to quantify the
	// optimisation and as an escape hatch.
	DisableVersionGate bool
}

// New builds a Monitor.
func New(cfg Config) *Monitor {
	if cfg.Service == nil || cfg.Scheduler == nil || cfg.Store == nil {
		panic("monitor: Service, Scheduler and Store are required")
	}
	wheel := cfg.Wheel
	if wheel == nil {
		wheel = simtime.NewTriggerWheel(cfg.Scheduler)
	}
	return &Monitor{
		svc:      cfg.Service,
		sched:    cfg.Scheduler,
		wheel:    wheel,
		store:    cfg.Store,
		selfCity: cfg.Endpoint.City,
		endpoint: cfg.Endpoint,
		jar:      cfg.Cookies,
		gateOff:  cfg.DisableVersionGate,
		tracked:  make(map[string]*tracked),
	}
}

// Store returns the monitor's store.
func (m *Monitor) Store() *Store { return m.store }

// Track registers a honey account and the password that was leaked
// for it.
func (m *Monitor) Track(account, password string) {
	t := &tracked{account: account, password: password}
	if m.jar != nil {
		t.cookie = m.jar.Issue()
	} else {
		t.cookie = m.svc.NewCookie()
	}
	// An invalid probe (account not on the platform yet) disables the
	// gate for this account; every tick then attempts the login and
	// records the failure, as the ungated scraper did.
	t.probe, _ = m.svc.Probe(account)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tracked[account] = t
	m.stale = true // invalidate the cached scrape order
}

// UpdatePassword rotates the monitor's stored credential for a
// tracked account — the defender's half of a password reset. The
// failed flag clears so scraping resumes with the new password on the
// next tick; the Store-level failure record (if any) stays, because
// recordFailure is deliberately first-failure-only per account.
func (m *Monitor) UpdatePassword(account, newPassword string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.tracked[account]; ok {
		t.password = newPassword
		t.failed = false
	}
}

// Cursors returns every tracked account's scrape cursor — the
// account accessVersion after the scraper's previous visit. The
// snapshot engine serializes these and verifies that a resumed
// monitor re-tracks into identical cursor state.
func (m *Monitor) Cursors() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.tracked))
	for account, t := range m.tracked {
		out[account] = t.lastSeen
	}
	return out
}

// MonitorCookies returns the scraper's own cookies (used by the
// self-access filter).
func (m *Monitor) MonitorCookies() map[string]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]bool, len(m.tracked))
	for _, t := range m.tracked {
		out[t.cookie] = true
	}
	return out
}

// Start begins periodic scraping at the given interval; call the
// returned stop function (or Stop) to end it.
func (m *Monitor) Start(interval time.Duration) func() {
	stop := m.wheel.Every(interval, "monitor-scrape", func(now time.Time) {
		m.ScrapeAll(now)
	})
	m.mu.Lock()
	m.stop = stop
	m.mu.Unlock()
	return stop
}

// Stop ends periodic scraping.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop := m.stop
	m.stop = nil
	m.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// ScrapeAll scrapes every tracked account once. The sorted account
// order is cached and only rebuilt after Track registers a new
// account, so steady-state ticks pay no per-tick sort.
func (m *Monitor) ScrapeAll(now time.Time) {
	m.mu.Lock()
	if m.stale {
		m.order = m.order[:0]
		for _, t := range m.tracked {
			m.order = append(m.order, t)
		}
		sort.Slice(m.order, func(i, j int) bool { return m.order[i].account < m.order[j].account })
		m.stale = false
	}
	order := m.order
	m.mu.Unlock()
	for _, t := range order {
		m.scrapeOne(t, now)
	}
}

// scrapeOne logs in with the monitor's credentials and pulls the
// activity-page rows changed since the previous scrape. The version
// gate makes a quiet account cost one atomic load: when nothing
// scraper-visible changed since our last visit (lastSeen includes the
// bump from our own login), the Login+ActivityPage round trip — and
// its EventLogin journal noise — is skipped entirely. Password changes
// and suspensions bump the access version, so the gate opens and the
// failed login is recorded on the first tick after the event, exactly
// as the ungated scraper would.
func (m *Monitor) scrapeOne(t *tracked, now time.Time) {
	if t.failed {
		return
	}
	if !m.gateOff && t.probe.Valid() && t.probe.AccessVersion() == t.lastSeen {
		return
	}
	session, err := m.svc.Login(t.account, t.password, t.cookie, m.endpoint)
	if err != nil {
		t.failed = true
		switch err {
		case webmail.ErrBadPassword:
			m.store.recordFailure(t.account, "password-changed", now)
		case webmail.ErrSuspended:
			m.store.recordFailure(t.account, "suspended", now)
		default:
			m.store.recordFailure(t.account, fmt.Sprintf("error: %v", err), now)
		}
		return
	}
	// Pull only the rows changed since the last scrape, streaming them
	// into a reusable buffer (scrape ticks are serialized by the
	// owning scheduler, so one buffer per monitor suffices and the
	// steady-state scrape allocates nothing). With the gate disabled
	// the cursor resets to 0 each tick, restoring the legacy full-page
	// copy (recordAccesses re-diffs it below either way).
	cursor := t.lastSeen
	if m.gateOff {
		cursor = 0
	}
	m.rowScratch = m.rowScratch[:0]
	version, err := session.ActivitySince(cursor, func(a webmail.Access) {
		m.rowScratch = append(m.rowScratch, a)
	})
	if err != nil {
		t.failed = true
		m.store.recordFailure(t.account, fmt.Sprintf("scrape: %v", err), now)
		return
	}
	t.lastSeen = version
	changed := m.store.recordAccesses(t.account, m.rowScratch)
	sink := m.store.Sink()
	if sink == nil {
		return
	}
	// Stream the delta with the §4.1 self-filter already applied, so
	// the sink sees exactly the records Dataset will export. The
	// monitor's cookie for this account is the only one of its cookies
	// that can appear on this account's activity page.
	for _, r := range changed {
		if r.Cookie == t.cookie {
			continue
		}
		if m.selfCity != "" && r.City == m.selfCity {
			continue
		}
		sink.ObserveAccess(AccessRecord{Account: t.account, Access: r})
	}
}

// Dataset extracts the analysis-ready access records, applying the
// §4.1 self-filter: the monitor's own cookies and any access from the
// infrastructure's city are dropped.
func (m *Monitor) Dataset() []AccessRecord {
	self := m.MonitorCookies()
	m.store.mu.Lock()
	defer m.store.mu.Unlock()
	var out []AccessRecord
	accounts := make([]string, 0, len(m.store.accesses))
	for a := range m.store.accesses {
		accounts = append(accounts, a)
	}
	sort.Strings(accounts)
	for _, a := range accounts {
		t := m.store.accesses[a]
		cookies := append([]string(nil), t.cookie...)
		sort.Strings(cookies)
		for _, c := range cookies {
			i := t.byCookie[c]
			if self[c] {
				continue
			}
			if m.selfCity != "" && t.city[i] == m.selfCity {
				continue
			}
			out = append(out, AccessRecord{Account: a, Access: t.materialize(i)})
		}
	}
	return out
}
