// Package monitor implements the paper's monitoring infrastructure
// (§3.1): a collector that receives the Apps-Script notifications (the
// "dedicated webmail account [used] as a notifications store"), and a
// scraper that periodically logs into every honey account to dump its
// activity page — cookie identifiers, geolocation, access times, and
// system fingerprints — for offline parsing.
//
// Two paper-faithful details matter downstream:
//
//   - Self-access filtering (§4.1): accesses made by the monitoring
//     infrastructure itself, and any access from the city the
//     infrastructure runs in, are removed from the dataset.
//   - Loss of visibility (§4.2): when a hijacker changes an account
//     password the scraper's credentials stop working, so activity
//     rows freeze at their last scraped state — a lower bound on
//     access durations — while notifications keep flowing because the
//     embedded scripts keep running.
package monitor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/appscript"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/webmail"
)

// AccessRecord is the monitor's merged view of one unique access (one
// cookie on one account).
type AccessRecord struct {
	Account string
	webmail.Access
}

// Duration returns tlast - t0 for the access (Figure 1's x-axis).
func (r AccessRecord) Duration() time.Duration { return r.Last.Sub(r.First) }

// ScrapeFailure records the moment the scraper lost an account.
type ScrapeFailure struct {
	Account string
	Time    time.Time
	Reason  string // "password-changed" or "suspended"
}

// Store accumulates everything the monitoring pipeline observes.
// It is safe for concurrent use.
type Store struct {
	mu            sync.Mutex
	notifications []appscript.Notification
	accesses      map[string]map[string]webmail.Access // account -> cookie -> latest row
	failures      []ScrapeFailure
	failed        map[string]bool // account -> scraper locked out
	lastHeartbeat map[string]time.Time
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		accesses:      make(map[string]map[string]webmail.Access),
		failed:        make(map[string]bool),
		lastHeartbeat: make(map[string]time.Time),
	}
}

// Notify implements appscript.Notifier.
func (s *Store) Notify(n appscript.Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notifications = append(s.notifications, n)
	if n.Kind == appscript.NoteHeartbeat {
		s.lastHeartbeat[n.Account] = n.Time
	}
}

// Notifications returns a copy of all collected notifications.
func (s *Store) Notifications() []appscript.Notification {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]appscript.Notification, len(s.notifications))
	copy(out, s.notifications)
	return out
}

// NotificationsFor returns the notifications for one account.
func (s *Store) NotificationsFor(account string) []appscript.Notification {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []appscript.Notification
	for _, n := range s.notifications {
		if n.Account == account {
			out = append(out, n)
		}
	}
	return out
}

// recordAccesses merges freshly scraped activity rows.
func (s *Store) recordAccesses(account string, rows []webmail.Access) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.accesses[account]
	if !ok {
		m = make(map[string]webmail.Access)
		s.accesses[account] = m
	}
	for _, r := range rows {
		m[r.Cookie] = r
	}
}

// recordFailure notes a lost account (first failure only).
func (s *Store) recordFailure(account, reason string, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed[account] {
		return
	}
	s.failed[account] = true
	s.failures = append(s.failures, ScrapeFailure{Account: account, Time: at, Reason: reason})
}

// Failures returns all scrape failures in order of occurrence.
func (s *Store) Failures() []ScrapeFailure {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ScrapeFailure, len(s.failures))
	copy(out, s.failures)
	return out
}

// LastHeartbeat reports the most recent heartbeat from an account.
func (s *Store) LastHeartbeat(account string) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.lastHeartbeat[account]
	return t, ok
}

// Monitor drives the activity-page scraping. It holds the original
// credentials of every honey account (a hijack makes them stale, which
// is exactly the visibility loss the paper describes).
type Monitor struct {
	svc   *webmail.Service
	sched *simtime.Scheduler
	store *Store

	// SelfCity is where the monitoring infrastructure runs; §4.1
	// removes all accesses originating there.
	selfCity string
	endpoint netsim.Endpoint
	jar      *netsim.CookieJar // nil -> use the platform's jar

	mu      sync.Mutex
	creds   map[string]string // account -> password as leaked
	cookies map[string]string // account -> monitor's own cookie
	stop    func()
}

// Config parameterises a Monitor.
type Config struct {
	Service   *webmail.Service
	Scheduler *simtime.Scheduler
	Store     *Store
	// Endpoint is the infrastructure's network identity; its city
	// becomes the self-filter city.
	Endpoint netsim.Endpoint
	// Cookies, when set, issues the scraper's own cookies. Sharded
	// experiments give each shard's monitor a prefixed jar so cookie
	// values are independent of cross-shard interleaving; nil falls
	// back to the platform's jar.
	Cookies *netsim.CookieJar
}

// New builds a Monitor.
func New(cfg Config) *Monitor {
	if cfg.Service == nil || cfg.Scheduler == nil || cfg.Store == nil {
		panic("monitor: Service, Scheduler and Store are required")
	}
	return &Monitor{
		svc:      cfg.Service,
		sched:    cfg.Scheduler,
		store:    cfg.Store,
		selfCity: cfg.Endpoint.City,
		endpoint: cfg.Endpoint,
		jar:      cfg.Cookies,
		creds:    make(map[string]string),
		cookies:  make(map[string]string),
	}
}

// Store returns the monitor's store.
func (m *Monitor) Store() *Store { return m.store }

// Track registers a honey account and the password that was leaked
// for it.
func (m *Monitor) Track(account, password string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.creds[account] = password
	if m.jar != nil {
		m.cookies[account] = m.jar.Issue()
	} else {
		m.cookies[account] = m.svc.NewCookie()
	}
}

// MonitorCookies returns the scraper's own cookies (used by the
// self-access filter).
func (m *Monitor) MonitorCookies() map[string]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]bool, len(m.cookies))
	for _, c := range m.cookies {
		out[c] = true
	}
	return out
}

// Start begins periodic scraping at the given interval; call the
// returned stop function (or Stop) to end it.
func (m *Monitor) Start(interval time.Duration) func() {
	stop := m.sched.Every(interval, "monitor-scrape", func(now time.Time) {
		m.ScrapeAll(now)
	})
	m.mu.Lock()
	m.stop = stop
	m.mu.Unlock()
	return stop
}

// Stop ends periodic scraping.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop := m.stop
	m.stop = nil
	m.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// ScrapeAll scrapes every tracked account once.
func (m *Monitor) ScrapeAll(now time.Time) {
	m.mu.Lock()
	accounts := make([]string, 0, len(m.creds))
	for a := range m.creds {
		accounts = append(accounts, a)
	}
	m.mu.Unlock()
	sort.Strings(accounts)
	for _, a := range accounts {
		m.scrapeOne(a, now)
	}
}

// scrapeOne logs in with the monitor's credentials and dumps the
// activity page.
func (m *Monitor) scrapeOne(account string, now time.Time) {
	m.mu.Lock()
	password := m.creds[account]
	cookie := m.cookies[account]
	alreadyFailed := m.store.failed[account]
	m.mu.Unlock()
	if alreadyFailed {
		return
	}
	session, err := m.svc.Login(account, password, cookie, m.endpoint)
	if err != nil {
		switch err {
		case webmail.ErrBadPassword:
			m.store.recordFailure(account, "password-changed", now)
		case webmail.ErrSuspended:
			m.store.recordFailure(account, "suspended", now)
		default:
			m.store.recordFailure(account, fmt.Sprintf("error: %v", err), now)
		}
		return
	}
	rows, err := session.ActivityPage()
	if err != nil {
		m.store.recordFailure(account, fmt.Sprintf("scrape: %v", err), now)
		return
	}
	m.store.recordAccesses(account, rows)
}

// Dataset extracts the analysis-ready access records, applying the
// §4.1 self-filter: the monitor's own cookies and any access from the
// infrastructure's city are dropped.
func (m *Monitor) Dataset() []AccessRecord {
	self := m.MonitorCookies()
	m.store.mu.Lock()
	defer m.store.mu.Unlock()
	var out []AccessRecord
	accounts := make([]string, 0, len(m.store.accesses))
	for a := range m.store.accesses {
		accounts = append(accounts, a)
	}
	sort.Strings(accounts)
	for _, a := range accounts {
		cookies := make([]string, 0, len(m.store.accesses[a]))
		for c := range m.store.accesses[a] {
			cookies = append(cookies, c)
		}
		sort.Strings(cookies)
		for _, c := range cookies {
			row := m.store.accesses[a][c]
			if self[row.Cookie] {
				continue
			}
			if m.selfCity != "" && row.City == m.selfCity {
				continue
			}
			out = append(out, AccessRecord{Account: a, Access: row})
		}
	}
	return out
}
