package monitor

import (
	"testing"
	"time"

	"repro/internal/appscript"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/webmail"
)

var epoch = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

type fixture struct {
	clock *simtime.Clock
	sched *simtime.Scheduler
	svc   *webmail.Service
	space *netsim.AddressSpace
	store *Store
	mon   *Monitor
	rt    *appscript.Runtime
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clock := simtime.NewClock(epoch)
	sched := simtime.NewScheduler(clock)
	svc := webmail.NewService(webmail.Config{Clock: clock})
	space := netsim.NewAddressSpace(rng.New(11), geo.Default())
	store := NewStore()
	monEP, err := space.FromCity("London") // the infrastructure's home city
	if err != nil {
		t.Fatal(err)
	}
	mon := New(Config{Service: svc, Scheduler: sched, Store: store, Endpoint: monEP})
	rt := appscript.NewRuntime(svc, sched, store)
	f := &fixture{clock: clock, sched: sched, svc: svc, space: space, store: store, mon: mon, rt: rt}
	if err := svc.CreateAccount("h1@honeymail.example", "pw1", "Honey One"); err != nil {
		t.Fatal(err)
	}
	mon.Track("h1@honeymail.example", "pw1")
	if err := rt.Install("h1@honeymail.example", appscript.Options{Hidden: true}); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) attackerLogin(t *testing.T, city, ua string) *webmail.Session {
	t.Helper()
	ep, err := f.space.FromCity(city)
	if err != nil {
		t.Fatal(err)
	}
	ep.UserAgent = ua
	se, err := f.svc.Login("h1@honeymail.example", "pw1", f.svc.NewCookie(), ep)
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func TestScrapeCollectsAttackerAccesses(t *testing.T) {
	f := newFixture(t)
	f.attackerLogin(t, "Bucharest", "")
	f.mon.ScrapeAll(f.clock.Now())
	ds := f.mon.Dataset()
	if len(ds) != 1 {
		t.Fatalf("dataset = %d records, want 1", len(ds))
	}
	if ds[0].City != "Bucharest" || ds[0].Account != "h1@honeymail.example" {
		t.Fatalf("record = %+v", ds[0])
	}
}

func TestSelfAccessesFiltered(t *testing.T) {
	f := newFixture(t)
	// Attacker connects from the monitor's own city (London) plus one
	// from elsewhere; the monitor also scrapes (own cookie).
	f.attackerLogin(t, "London", "")
	f.attackerLogin(t, "Tokyo", "")
	f.mon.ScrapeAll(f.clock.Now())
	f.mon.ScrapeAll(f.clock.Now()) // monitor's row exists by the 2nd scrape
	ds := f.mon.Dataset()
	if len(ds) != 1 || ds[0].City != "Tokyo" {
		t.Fatalf("dataset after self-filter = %+v", ds)
	}
}

func TestPeriodicScrapingTracksDurations(t *testing.T) {
	f := newFixture(t)
	f.mon.Start(30 * time.Minute)
	se := f.attackerLogin(t, "Kyiv", "")
	f.sched.RunFor(2 * time.Hour)
	se.Search("password") // attacker returns mid-window
	f.sched.RunFor(2 * time.Hour)
	ds := f.mon.Dataset()
	if len(ds) != 1 {
		t.Fatalf("dataset = %d", len(ds))
	}
	if d := ds[0].Duration(); d < 2*time.Hour-time.Minute {
		t.Fatalf("tracked duration = %v, want >= ~2h", d)
	}
}

func TestPasswordChangeFreezesScrapes(t *testing.T) {
	f := newFixture(t)
	f.mon.Start(30 * time.Minute)
	se := f.attackerLogin(t, "Minsk", "")
	f.sched.RunFor(time.Hour)
	se.ChangePassword("owned")
	f.sched.RunFor(time.Hour)
	fails := f.store.Failures()
	if len(fails) != 1 || fails[0].Reason != "password-changed" {
		t.Fatalf("failures = %+v", fails)
	}
	// The attacker's access row survives from the last good scrape.
	ds := f.mon.Dataset()
	if len(ds) != 1 || ds[0].City != "Minsk" {
		t.Fatalf("dataset = %+v", ds)
	}
	// ...and notifications keep arriving (scripts still run): read a
	// message post-hijack.
	id, _ := f.svc.Seed("h1@honeymail.example", webmail.FolderInbox, "b@x", "h1", "s", "b", epoch)
	se.Read(id)
	f.sched.RunFor(time.Hour)
	reads := 0
	for _, n := range f.store.NotificationsFor("h1@honeymail.example") {
		if n.Kind == appscript.NoteRead {
			reads++
		}
	}
	if reads != 1 {
		t.Fatalf("post-hijack read notifications = %d, want 1", reads)
	}
}

func TestSuspensionRecordedAsFailure(t *testing.T) {
	f := newFixture(t)
	f.mon.Start(30 * time.Minute)
	f.svc.Suspend("h1@honeymail.example", "abuse")
	f.sched.RunFor(time.Hour)
	fails := f.store.Failures()
	if len(fails) != 1 || fails[0].Reason != "suspended" {
		t.Fatalf("failures = %+v", fails)
	}
	// Failure is recorded only once even as scraping continues.
	f.sched.RunFor(5 * time.Hour)
	if got := len(f.store.Failures()); got != 1 {
		t.Fatalf("failures after more scrapes = %d", got)
	}
}

func TestHeartbeatTracking(t *testing.T) {
	f := newFixture(t)
	f.sched.RunFor(25 * time.Hour)
	hb, ok := f.store.LastHeartbeat("h1@honeymail.example")
	if !ok {
		t.Fatal("no heartbeat recorded")
	}
	if hb.Before(epoch.Add(24 * time.Hour)) {
		t.Fatalf("heartbeat at %v", hb)
	}
}

func TestStopEndsScraping(t *testing.T) {
	f := newFixture(t)
	f.mon.Start(10 * time.Minute)
	f.mon.Stop()
	f.attackerLogin(t, "Cairo", "")
	f.sched.RunFor(2 * time.Hour)
	if ds := f.mon.Dataset(); len(ds) != 0 {
		t.Fatalf("dataset after Stop = %d records", len(ds))
	}
	// Stop is idempotent.
	f.mon.Stop()
}

func TestNotificationsCopySemantics(t *testing.T) {
	f := newFixture(t)
	f.store.Notify(appscript.Notification{Account: "h1@honeymail.example", Kind: appscript.NoteRead})
	ns := f.store.Notifications()
	ns[0].Account = "mutated"
	if f.store.Notifications()[0].Account != "h1@honeymail.example" {
		t.Fatal("Notifications exposed internal state")
	}
}

func TestDatasetDeterministicOrder(t *testing.T) {
	f := newFixture(t)
	f.svc.CreateAccount("h2@honeymail.example", "pw2", "Honey Two")
	f.mon.Track("h2@honeymail.example", "pw2")
	f.attackerLogin(t, "Lagos", "")
	ep, _ := f.space.FromCity("Hanoi")
	if _, err := f.svc.Login("h2@honeymail.example", "pw2", f.svc.NewCookie(), ep); err != nil {
		t.Fatal(err)
	}
	f.mon.ScrapeAll(f.clock.Now())
	a := f.mon.Dataset()
	b := f.mon.Dataset()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("dataset sizes = %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Account != b[i].Account || a[i].Cookie != b[i].Cookie {
			t.Fatal("Dataset order not deterministic")
		}
	}
}
