// Package geo provides the geography substrate for the honeynet
// simulation: a city gazetteer, great-circle distances, the two decoy
// midpoints used in the paper's leaks, and median-distance analysis.
//
// The paper advertises decoy owner locations near London, UK and in
// the Midwestern US (midpoint Pontiac, Illinois), then measures how
// far attacker logins land from those midpoints (Figure 5a/5b). This
// package supplies the same primitives: city coordinates as Google's
// activity page would report them, haversine distance in kilometres,
// and the median-radius computation behind the figures.
package geo

import (
	"fmt"
	"math"
	"sort"
)

// Point is a latitude/longitude pair in decimal degrees.
type Point struct {
	Lat float64
	Lon float64
}

// String renders the point as "lat,lon" with 4 decimal places.
func (p Point) String() string { return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon) }

// City is a gazetteer entry. Country uses short English names; the
// analysis only counts distinct values (paper §4.5: 29 countries).
type City struct {
	Name    string
	Country string
	Point   Point
	Region  Region
}

// Region buckets cities for sampling attacker origins.
type Region int

const (
	RegionUK Region = iota
	RegionEurope
	RegionUSMidwest
	RegionUS
	RegionRussia
	RegionAsia
	RegionAfrica
	RegionSouthAmerica
	RegionOceania
	RegionNorthAmerica // non-US
)

var regionNames = map[Region]string{
	RegionUK:           "uk",
	RegionEurope:       "europe",
	RegionUSMidwest:    "us-midwest",
	RegionUS:           "us",
	RegionRussia:       "russia",
	RegionAsia:         "asia",
	RegionAfrica:       "africa",
	RegionSouthAmerica: "south-america",
	RegionOceania:      "oceania",
	RegionNorthAmerica: "north-america",
}

// String returns the region's short name.
func (r Region) String() string {
	if n, ok := regionNames[r]; ok {
		return n
	}
	return fmt.Sprintf("region(%d)", int(r))
}

// LondonMidpoint is the UK decoy midpoint advertised in the leaks.
var LondonMidpoint = Point{Lat: 51.5074, Lon: -0.1278}

// PontiacMidpoint is the US decoy midpoint; the paper averages its
// advertised Midwestern locations and lands in Pontiac, Illinois.
var PontiacMidpoint = Point{Lat: 40.8808, Lon: -88.6298}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// HaversineKm returns the great-circle distance between two points in
// kilometres.
func HaversineKm(a, b Point) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	c := 2 * math.Atan2(math.Sqrt(s), math.Sqrt(1-s))
	return earthRadiusKm * c
}

// Midpoint returns the coordinate average of the given points, the
// same construction the paper uses to derive Pontiac from its
// advertised Midwestern cities. It panics on empty input.
func Midpoint(points []Point) Point {
	if len(points) == 0 {
		panic("geo: Midpoint of no points")
	}
	var lat, lon float64
	for _, p := range points {
		lat += p.Lat
		lon += p.Lon
	}
	n := float64(len(points))
	return Point{Lat: lat / n, Lon: lon / n}
}

// MedianDistanceKm computes the median great-circle distance from mid
// to each point: the radius of the circles drawn in Figure 5. It
// panics on empty input.
func MedianDistanceKm(points []Point, mid Point) float64 {
	if len(points) == 0 {
		panic("geo: MedianDistanceKm of no points")
	}
	d := DistancesKm(points, mid)
	sort.Float64s(d)
	n := len(d)
	if n%2 == 1 {
		return d[n/2]
	}
	return (d[n/2-1] + d[n/2]) / 2
}

// DistancesKm returns the distance from mid to every point, in input
// order. This is the "distance vector" fed to the Cramér–von Mises
// test in §4.5.
func DistancesKm(points []Point, mid Point) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = HaversineKm(p, mid)
	}
	return out
}

// Gazetteer is an immutable collection of cities with region and
// country indexes.
type Gazetteer struct {
	cities    []City
	byRegion  map[Region][]City
	byCountry map[string][]City
	byName    map[string]City
}

// NewGazetteer builds a gazetteer over the given cities. Duplicate
// names are rejected so lookups stay unambiguous.
func NewGazetteer(cities []City) (*Gazetteer, error) {
	g := &Gazetteer{
		cities:    make([]City, len(cities)),
		byRegion:  make(map[Region][]City),
		byCountry: make(map[string][]City),
		byName:    make(map[string]City, len(cities)),
	}
	copy(g.cities, cities)
	for _, c := range g.cities {
		if _, dup := g.byName[c.Name]; dup {
			return nil, fmt.Errorf("geo: duplicate city %q", c.Name)
		}
		g.byName[c.Name] = c
		g.byRegion[c.Region] = append(g.byRegion[c.Region], c)
		g.byCountry[c.Country] = append(g.byCountry[c.Country], c)
	}
	return g, nil
}

// Default returns the built-in world gazetteer.
func Default() *Gazetteer {
	g, err := NewGazetteer(worldCities)
	if err != nil {
		panic(err) // built-in data is validated by tests
	}
	return g
}

// Cities returns all cities (copy).
func (g *Gazetteer) Cities() []City {
	out := make([]City, len(g.cities))
	copy(out, g.cities)
	return out
}

// InRegion returns the cities in one region (shared slice; callers
// must not mutate).
func (g *Gazetteer) InRegion(r Region) []City { return g.byRegion[r] }

// InRegions returns the concatenation of several regions' cities.
func (g *Gazetteer) InRegions(rs ...Region) []City {
	var out []City
	for _, r := range rs {
		out = append(out, g.byRegion[r]...)
	}
	return out
}

// Lookup finds a city by name.
func (g *Gazetteer) Lookup(name string) (City, bool) {
	c, ok := g.byName[name]
	return c, ok
}

// Countries returns the sorted set of distinct countries present.
func (g *Gazetteer) Countries() []string {
	out := make([]string, 0, len(g.byCountry))
	for c := range g.byCountry {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// worldCities is the built-in gazetteer. Coordinates are approximate
// city centres; the analyses need only city-level granularity, which
// matches what the Gmail activity page exposes.
var worldCities = []City{
	// United Kingdom — the UK decoy leaks advertise towns near London.
	{Name: "London", Country: "United Kingdom", Point: Point{51.5074, -0.1278}, Region: RegionUK},
	{Name: "Croydon", Country: "United Kingdom", Point: Point{51.3762, -0.0982}, Region: RegionUK},
	{Name: "Reading", Country: "United Kingdom", Point: Point{51.4543, -0.9781}, Region: RegionUK},
	{Name: "Luton", Country: "United Kingdom", Point: Point{51.8787, -0.4200}, Region: RegionUK},
	{Name: "Oxford", Country: "United Kingdom", Point: Point{51.7520, -1.2577}, Region: RegionUK},
	{Name: "Cambridge", Country: "United Kingdom", Point: Point{52.2053, 0.1218}, Region: RegionUK},
	{Name: "Brighton", Country: "United Kingdom", Point: Point{50.8225, -0.1372}, Region: RegionUK},
	{Name: "Birmingham", Country: "United Kingdom", Point: Point{52.4862, -1.8904}, Region: RegionUK},
	{Name: "Manchester", Country: "United Kingdom", Point: Point{53.4808, -2.2426}, Region: RegionUK},
	{Name: "Leeds", Country: "United Kingdom", Point: Point{53.8008, -1.5491}, Region: RegionUK},
	{Name: "Glasgow", Country: "United Kingdom", Point: Point{55.8642, -4.2518}, Region: RegionUK},
	{Name: "Edinburgh", Country: "United Kingdom", Point: Point{55.9533, -3.1883}, Region: RegionUK},

	// Europe
	{Name: "Paris", Country: "France", Point: Point{48.8566, 2.3522}, Region: RegionEurope},
	{Name: "Marseille", Country: "France", Point: Point{43.2965, 5.3698}, Region: RegionEurope},
	{Name: "Amsterdam", Country: "Netherlands", Point: Point{52.3676, 4.9041}, Region: RegionEurope},
	{Name: "Rotterdam", Country: "Netherlands", Point: Point{51.9244, 4.4777}, Region: RegionEurope},
	{Name: "Berlin", Country: "Germany", Point: Point{52.5200, 13.4050}, Region: RegionEurope},
	{Name: "Frankfurt", Country: "Germany", Point: Point{50.1109, 8.6821}, Region: RegionEurope},
	{Name: "Munich", Country: "Germany", Point: Point{48.1351, 11.5820}, Region: RegionEurope},
	{Name: "Madrid", Country: "Spain", Point: Point{40.4168, -3.7038}, Region: RegionEurope},
	{Name: "Barcelona", Country: "Spain", Point: Point{41.3851, 2.1734}, Region: RegionEurope},
	{Name: "Rome", Country: "Italy", Point: Point{41.9028, 12.4964}, Region: RegionEurope},
	{Name: "Milan", Country: "Italy", Point: Point{45.4642, 9.1900}, Region: RegionEurope},
	{Name: "Lisbon", Country: "Portugal", Point: Point{38.7223, -9.1393}, Region: RegionEurope},
	{Name: "Vienna", Country: "Austria", Point: Point{48.2082, 16.3738}, Region: RegionEurope},
	{Name: "Zurich", Country: "Switzerland", Point: Point{47.3769, 8.5417}, Region: RegionEurope},
	{Name: "Warsaw", Country: "Poland", Point: Point{52.2297, 21.0122}, Region: RegionEurope},
	{Name: "Krakow", Country: "Poland", Point: Point{50.0647, 19.9450}, Region: RegionEurope},
	{Name: "Prague", Country: "Czechia", Point: Point{50.0755, 14.4378}, Region: RegionEurope},
	{Name: "Budapest", Country: "Hungary", Point: Point{47.4979, 19.0402}, Region: RegionEurope},
	{Name: "Bucharest", Country: "Romania", Point: Point{44.4268, 26.1025}, Region: RegionEurope},
	{Name: "Sofia", Country: "Bulgaria", Point: Point{42.6977, 23.3219}, Region: RegionEurope},
	{Name: "Kyiv", Country: "Ukraine", Point: Point{50.4501, 30.5234}, Region: RegionEurope},
	{Name: "Kharkiv", Country: "Ukraine", Point: Point{49.9935, 36.2304}, Region: RegionEurope},
	{Name: "Athens", Country: "Greece", Point: Point{37.9838, 23.7275}, Region: RegionEurope},
	{Name: "Stockholm", Country: "Sweden", Point: Point{59.3293, 18.0686}, Region: RegionEurope},
	{Name: "Oslo", Country: "Norway", Point: Point{59.9139, 10.7522}, Region: RegionEurope},
	{Name: "Copenhagen", Country: "Denmark", Point: Point{55.6761, 12.5683}, Region: RegionEurope},
	{Name: "Helsinki", Country: "Finland", Point: Point{60.1699, 24.9384}, Region: RegionEurope},
	{Name: "Dublin", Country: "Ireland", Point: Point{53.3498, -6.2603}, Region: RegionEurope},
	{Name: "Brussels", Country: "Belgium", Point: Point{50.8503, 4.3517}, Region: RegionEurope},
	{Name: "Chisinau", Country: "Moldova", Point: Point{47.0105, 28.8638}, Region: RegionEurope},
	{Name: "Minsk", Country: "Belarus", Point: Point{53.9006, 27.5590}, Region: RegionEurope},
	{Name: "Belgrade", Country: "Serbia", Point: Point{44.7866, 20.4489}, Region: RegionEurope},
	{Name: "Istanbul", Country: "Turkey", Point: Point{41.0082, 28.9784}, Region: RegionEurope},

	// US Midwest — decoy towns whose average is Pontiac, IL.
	{Name: "Pontiac", Country: "United States", Point: Point{40.8808, -88.6298}, Region: RegionUSMidwest},
	{Name: "Chicago", Country: "United States", Point: Point{41.8781, -87.6298}, Region: RegionUSMidwest},
	{Name: "Peoria", Country: "United States", Point: Point{40.6936, -89.5890}, Region: RegionUSMidwest},
	{Name: "Springfield", Country: "United States", Point: Point{39.7817, -89.6501}, Region: RegionUSMidwest},
	{Name: "Bloomington", Country: "United States", Point: Point{40.4842, -88.9937}, Region: RegionUSMidwest},
	{Name: "Indianapolis", Country: "United States", Point: Point{39.7684, -86.1581}, Region: RegionUSMidwest},
	{Name: "Milwaukee", Country: "United States", Point: Point{43.0389, -87.9065}, Region: RegionUSMidwest},
	{Name: "St. Louis", Country: "United States", Point: Point{38.6270, -90.1994}, Region: RegionUSMidwest},
	{Name: "Des Moines", Country: "United States", Point: Point{41.5868, -93.6250}, Region: RegionUSMidwest},
	{Name: "Kansas City", Country: "United States", Point: Point{39.0997, -94.5786}, Region: RegionUSMidwest},
	{Name: "Minneapolis", Country: "United States", Point: Point{44.9778, -93.2650}, Region: RegionUSMidwest},
	{Name: "Detroit", Country: "United States", Point: Point{42.3314, -83.0458}, Region: RegionUSMidwest},
	{Name: "Columbus", Country: "United States", Point: Point{39.9612, -82.9988}, Region: RegionUSMidwest},
	{Name: "Cleveland", Country: "United States", Point: Point{41.4993, -81.6944}, Region: RegionUSMidwest},
	{Name: "Omaha", Country: "United States", Point: Point{41.2565, -95.9345}, Region: RegionUSMidwest},

	// Wider United States
	{Name: "New York", Country: "United States", Point: Point{40.7128, -74.0060}, Region: RegionUS},
	{Name: "Los Angeles", Country: "United States", Point: Point{34.0522, -118.2437}, Region: RegionUS},
	{Name: "San Francisco", Country: "United States", Point: Point{37.7749, -122.4194}, Region: RegionUS},
	{Name: "Seattle", Country: "United States", Point: Point{47.6062, -122.3321}, Region: RegionUS},
	{Name: "Miami", Country: "United States", Point: Point{25.7617, -80.1918}, Region: RegionUS},
	{Name: "Houston", Country: "United States", Point: Point{29.7604, -95.3698}, Region: RegionUS},
	{Name: "Dallas", Country: "United States", Point: Point{32.7767, -96.7970}, Region: RegionUS},
	{Name: "Atlanta", Country: "United States", Point: Point{33.7490, -84.3880}, Region: RegionUS},
	{Name: "Boston", Country: "United States", Point: Point{42.3601, -71.0589}, Region: RegionUS},
	{Name: "Denver", Country: "United States", Point: Point{39.7392, -104.9903}, Region: RegionUS},
	{Name: "Phoenix", Country: "United States", Point: Point{33.4484, -112.0740}, Region: RegionUS},
	{Name: "Washington", Country: "United States", Point: Point{38.9072, -77.0369}, Region: RegionUS},

	// Russia & CIS (the Russian paste-site population draws from here).
	{Name: "Moscow", Country: "Russia", Point: Point{55.7558, 37.6173}, Region: RegionRussia},
	{Name: "Saint Petersburg", Country: "Russia", Point: Point{59.9311, 30.3609}, Region: RegionRussia},
	{Name: "Novosibirsk", Country: "Russia", Point: Point{55.0084, 82.9357}, Region: RegionRussia},
	{Name: "Yekaterinburg", Country: "Russia", Point: Point{56.8389, 60.6057}, Region: RegionRussia},
	{Name: "Kazan", Country: "Russia", Point: Point{55.8304, 49.0661}, Region: RegionRussia},
	{Name: "Almaty", Country: "Kazakhstan", Point: Point{43.2220, 76.8512}, Region: RegionRussia},

	// Asia
	{Name: "Beijing", Country: "China", Point: Point{39.9042, 116.4074}, Region: RegionAsia},
	{Name: "Shanghai", Country: "China", Point: Point{31.2304, 121.4737}, Region: RegionAsia},
	{Name: "Tokyo", Country: "Japan", Point: Point{35.6762, 139.6503}, Region: RegionAsia},
	{Name: "Seoul", Country: "South Korea", Point: Point{37.5665, 126.9780}, Region: RegionAsia},
	{Name: "Mumbai", Country: "India", Point: Point{19.0760, 72.8777}, Region: RegionAsia},
	{Name: "Delhi", Country: "India", Point: Point{28.7041, 77.1025}, Region: RegionAsia},
	{Name: "Bangalore", Country: "India", Point: Point{12.9716, 77.5946}, Region: RegionAsia},
	{Name: "Karachi", Country: "Pakistan", Point: Point{24.8607, 67.0011}, Region: RegionAsia},
	{Name: "Dhaka", Country: "Bangladesh", Point: Point{23.8103, 90.4125}, Region: RegionAsia},
	{Name: "Jakarta", Country: "Indonesia", Point: Point{-6.2088, 106.8456}, Region: RegionAsia},
	{Name: "Manila", Country: "Philippines", Point: Point{14.5995, 120.9842}, Region: RegionAsia},
	{Name: "Bangkok", Country: "Thailand", Point: Point{13.7563, 100.5018}, Region: RegionAsia},
	{Name: "Hanoi", Country: "Vietnam", Point: Point{21.0285, 105.8542}, Region: RegionAsia},
	{Name: "Kuala Lumpur", Country: "Malaysia", Point: Point{3.1390, 101.6869}, Region: RegionAsia},
	{Name: "Singapore", Country: "Singapore", Point: Point{1.3521, 103.8198}, Region: RegionAsia},
	{Name: "Tel Aviv", Country: "Israel", Point: Point{32.0853, 34.7818}, Region: RegionAsia},
	{Name: "Dubai", Country: "United Arab Emirates", Point: Point{25.2048, 55.2708}, Region: RegionAsia},
	{Name: "Tehran", Country: "Iran", Point: Point{35.6892, 51.3890}, Region: RegionAsia},

	// Africa
	{Name: "Lagos", Country: "Nigeria", Point: Point{6.5244, 3.3792}, Region: RegionAfrica},
	{Name: "Abuja", Country: "Nigeria", Point: Point{9.0765, 7.3986}, Region: RegionAfrica},
	{Name: "Cairo", Country: "Egypt", Point: Point{30.0444, 31.2357}, Region: RegionAfrica},
	{Name: "Nairobi", Country: "Kenya", Point: Point{-1.2921, 36.8219}, Region: RegionAfrica},
	{Name: "Johannesburg", Country: "South Africa", Point: Point{-26.2041, 28.0473}, Region: RegionAfrica},
	{Name: "Accra", Country: "Ghana", Point: Point{5.6037, -0.1870}, Region: RegionAfrica},
	{Name: "Casablanca", Country: "Morocco", Point: Point{33.5731, -7.5898}, Region: RegionAfrica},
	{Name: "Tunis", Country: "Tunisia", Point: Point{36.8065, 10.1815}, Region: RegionAfrica},

	// South America
	{Name: "Sao Paulo", Country: "Brazil", Point: Point{-23.5505, -46.6333}, Region: RegionSouthAmerica},
	{Name: "Rio de Janeiro", Country: "Brazil", Point: Point{-22.9068, -43.1729}, Region: RegionSouthAmerica},
	{Name: "Buenos Aires", Country: "Argentina", Point: Point{-34.6037, -58.3816}, Region: RegionSouthAmerica},
	{Name: "Bogota", Country: "Colombia", Point: Point{4.7110, -74.0721}, Region: RegionSouthAmerica},
	{Name: "Lima", Country: "Peru", Point: Point{-12.0464, -77.0428}, Region: RegionSouthAmerica},
	{Name: "Santiago", Country: "Chile", Point: Point{-33.4489, -70.6693}, Region: RegionSouthAmerica},
	{Name: "Caracas", Country: "Venezuela", Point: Point{10.4806, -66.9036}, Region: RegionSouthAmerica},

	// Oceania
	{Name: "Sydney", Country: "Australia", Point: Point{-33.8688, 151.2093}, Region: RegionOceania},
	{Name: "Melbourne", Country: "Australia", Point: Point{-37.8136, 144.9631}, Region: RegionOceania},
	{Name: "Auckland", Country: "New Zealand", Point: Point{-36.8485, 174.7633}, Region: RegionOceania},

	// North America outside the US
	{Name: "Toronto", Country: "Canada", Point: Point{43.6532, -79.3832}, Region: RegionNorthAmerica},
	{Name: "Vancouver", Country: "Canada", Point: Point{49.2827, -123.1207}, Region: RegionNorthAmerica},
	{Name: "Montreal", Country: "Canada", Point: Point{45.5019, -73.5674}, Region: RegionNorthAmerica},
	{Name: "Mexico City", Country: "Mexico", Point: Point{19.4326, -99.1332}, Region: RegionNorthAmerica},
	{Name: "Guadalajara", Country: "Mexico", Point: Point{20.6597, -103.3496}, Region: RegionNorthAmerica},
	{Name: "Panama City", Country: "Panama", Point: Point{8.9824, -79.5199}, Region: RegionNorthAmerica},
	{Name: "San Jose", Country: "Costa Rica", Point: Point{9.9281, -84.0907}, Region: RegionNorthAmerica},
}
