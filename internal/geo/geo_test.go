package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		name   string
		a, b   Point
		wantKm float64
		tolKm  float64
	}{
		{"london-paris", LondonMidpoint, Point{48.8566, 2.3522}, 344, 10},
		{"london-newyork", LondonMidpoint, Point{40.7128, -74.0060}, 5570, 50},
		{"same-point", LondonMidpoint, LondonMidpoint, 0, 1e-9},
		{"pontiac-chicago", PontiacMidpoint, Point{41.8781, -87.6298}, 138, 10},
	}
	for _, tc := range cases {
		got := HaversineKm(tc.a, tc.b)
		if math.Abs(got-tc.wantKm) > tc.tolKm {
			t.Errorf("%s: distance = %.1f km, want %.1f±%.1f", tc.name, got, tc.wantKm, tc.tolKm)
		}
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d1, d2 := HaversineKm(a, b), HaversineKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineBounds(t *testing.T) {
	// No two points on Earth are farther apart than half the circumference.
	maxKm := math.Pi * earthRadiusKm
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d := HaversineKm(a, b)
		return d >= 0 && d <= maxKm+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 180) - 90
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 360) - 180
}

func TestMidpoint(t *testing.T) {
	pts := []Point{{10, 20}, {20, 40}}
	m := Midpoint(pts)
	if m.Lat != 15 || m.Lon != 30 {
		t.Fatalf("Midpoint = %v, want {15 30}", m)
	}
}

func TestMidpointEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Midpoint(nil) did not panic")
		}
	}()
	Midpoint(nil)
}

func TestMedianDistance(t *testing.T) {
	// Points at known offsets due north of the midpoint: 1 degree of
	// latitude is ~111.2 km.
	mid := Point{0, 0}
	pts := []Point{{1, 0}, {2, 0}, {3, 0}}
	got := MedianDistanceKm(pts, mid)
	if math.Abs(got-2*111.2) > 2 {
		t.Fatalf("median = %.1f, want ~222.4", got)
	}
}

func TestMedianDistanceEvenCount(t *testing.T) {
	mid := Point{0, 0}
	pts := []Point{{1, 0}, {3, 0}}
	got := MedianDistanceKm(pts, mid)
	if math.Abs(got-2*111.2) > 2 {
		t.Fatalf("even-count median = %.1f, want ~222.4 (mean of middle two)", got)
	}
}

func TestDistancesKmOrder(t *testing.T) {
	mid := Point{0, 0}
	pts := []Point{{2, 0}, {1, 0}}
	d := DistancesKm(pts, mid)
	if len(d) != 2 || d[0] < d[1] {
		t.Fatalf("DistancesKm did not preserve input order: %v", d)
	}
}

func TestDefaultGazetteerIntegrity(t *testing.T) {
	g := Default()
	cities := g.Cities()
	if len(cities) < 100 {
		t.Fatalf("gazetteer has %d cities, want >= 100", len(cities))
	}
	if got := len(g.Countries()); got < 29 {
		t.Fatalf("gazetteer spans %d countries, want >= 29 (paper observed 29)", got)
	}
	for _, c := range cities {
		if c.Point.Lat < -90 || c.Point.Lat > 90 || c.Point.Lon < -180 || c.Point.Lon > 180 {
			t.Errorf("%s: coordinates out of range: %v", c.Name, c.Point)
		}
		if c.Name == "" || c.Country == "" {
			t.Errorf("city with empty name/country: %+v", c)
		}
	}
}

func TestGazetteerDuplicateRejected(t *testing.T) {
	_, err := NewGazetteer([]City{
		{Name: "X", Country: "A"},
		{Name: "X", Country: "B"},
	})
	if err == nil {
		t.Fatal("duplicate city name accepted")
	}
}

func TestGazetteerLookup(t *testing.T) {
	g := Default()
	c, ok := g.Lookup("London")
	if !ok || c.Country != "United Kingdom" {
		t.Fatalf("Lookup(London) = %+v, %v", c, ok)
	}
	if _, ok := g.Lookup("Atlantis"); ok {
		t.Fatal("Lookup of missing city succeeded")
	}
}

func TestRegionsPopulated(t *testing.T) {
	g := Default()
	for _, r := range []Region{RegionUK, RegionEurope, RegionUSMidwest, RegionUS,
		RegionRussia, RegionAsia, RegionAfrica, RegionSouthAmerica, RegionOceania, RegionNorthAmerica} {
		if len(g.InRegion(r)) == 0 {
			t.Errorf("region %v has no cities", r)
		}
	}
}

func TestInRegionsConcatenates(t *testing.T) {
	g := Default()
	uk, eu := len(g.InRegion(RegionUK)), len(g.InRegion(RegionEurope))
	if got := len(g.InRegions(RegionUK, RegionEurope)); got != uk+eu {
		t.Fatalf("InRegions = %d cities, want %d", got, uk+eu)
	}
}

func TestUKCitiesNearLondonMidpoint(t *testing.T) {
	// All built-in UK cities must be within 600 km of London: the UK
	// decoy population (Figure 5a) relies on this.
	g := Default()
	for _, c := range g.InRegion(RegionUK) {
		if d := HaversineKm(c.Point, LondonMidpoint); d > 600 {
			t.Errorf("%s is %.0f km from London, want < 600", c.Name, d)
		}
	}
}

func TestMidwestCitiesNearPontiac(t *testing.T) {
	g := Default()
	for _, c := range g.InRegion(RegionUSMidwest) {
		if d := HaversineKm(c.Point, PontiacMidpoint); d > 800 {
			t.Errorf("%s is %.0f km from Pontiac, want < 800", c.Name, d)
		}
	}
}

func TestRegionString(t *testing.T) {
	if RegionUK.String() != "uk" {
		t.Fatalf("RegionUK.String() = %q", RegionUK.String())
	}
	if Region(99).String() == "" {
		t.Fatal("unknown region produced empty string")
	}
}

func TestPointString(t *testing.T) {
	if s := (Point{51.5074, -0.1278}).String(); s != "51.5074,-0.1278" {
		t.Fatalf("Point.String() = %q", s)
	}
}
