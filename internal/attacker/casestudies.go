package attacker

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/webmail"
)

// Case studies from §4.7, scripted so the full run (and its benches)
// reproduce the paper's anecdotes:
//
//  1. A blackmailer used three honey accounts to send ransom demands
//     to Ashley-Madison-scandal victims, with bitcoin payment
//     tutorials, and abandoned many drafts that later visitors read —
//     which is how bitcoin-related terms entered the "read emails"
//     document and surfaced at the top of Table 2.
//  2. Two accounts received Apps-Script quota notices ("using too much
//     computer time") that an attacker then read.
//  3. One honey account was used as the registration address on a
//     carding forum; the confirmation email arrived in the inbox.

// blackmailDraft is the ransom template; the vocabulary (bitcoin,
// localbitcoins, seller, wallet, family, results, listed, below,
// payment) is what makes Table 2's left column reproduce.
func blackmailDraft(src *rng.Source, victim string) (subject, body string) {
	wallet := fmt.Sprintf("1%015x", src.Int63())
	subject = "Your secret results are listed"
	body = fmt.Sprintf(
		"I have the full membership results with your name listed below.\n"+
			"Unless you make a payment of 2 bitcoin to the bitcoin wallet below,\n"+
			"every account detail goes to your family and your employer.\n\n"+
			"Bitcoin wallet: %s\n\n"+
			"Bitcoin tutorial for first-time buyers: open an account at\n"+
			"localbitcoins, pick a localbitcoins seller with good results,\n"+
			"buy bitcoins from the seller, and send the bitcoins as payment\n"+
			"to the wallet listed below. The payment must be in bitcoin only;\n"+
			"no other payment protects your family. You have three days.\n\n"+
			"Recipient: %s\n", wallet, victim)
	return subject, body
}

// RunBlackmailCampaign scripts case study 1 across the given accounts
// (the paper used three). For each account the blackmailer logs in
// from a proxy, sends several ransom emails (sinkholed), and abandons
// more drafts than it sends. It returns the number of messages sent.
func (e *Engine) RunBlackmailCampaign(accounts []string, at time.Time) int {
	sent := 0
	for _, account := range accounts {
		account := account
		e.sched.At(at, "case-blackmail", func(time.Time) {
			e.mu.Lock()
			password := e.passwords[account]
			e.mu.Unlock()
			if password == "" {
				return
			}
			ep := e.space.OpenProxy()
			rec := &Record{
				Account: account, Outlet: OutletPaste,
				Classes: ClassGoldDigger | ClassSpammer,
				Proxy:   true, EmptyUA: true,
				FirstAt: e.sched.Now(),
				Cookie:  e.newCookie(),
				Visits:  1,
			}
			e.mu.Lock()
			e.records = append(e.records, rec)
			e.blackmailers++
			e.mu.Unlock()
			se, err := e.svc.Login(account, password, rec.Cookie, ep)
			if err != nil {
				return
			}
			// Send a handful of demands...
			for i := 0; i < 3; i++ {
				victim := fmt.Sprintf("member%04d@ashley-victims.example", e.src.Intn(10000))
				subject, body := blackmailDraft(e.src, victim)
				if _, err := se.Send(victim, subject, body); err != nil {
					break
				}
				sent++
			}
			// ...and abandon many more drafts targeting further victims.
			for i := 0; i < 4+e.src.Intn(4); i++ {
				victim := fmt.Sprintf("member%04d@ashley-victims.example", e.src.Intn(10000))
				subject, body := blackmailDraft(e.src, victim)
				se.CreateDraft(victim, subject, body)
			}
		})
		at = at.Add(time.Duration(1+e.src.Intn(48)) * time.Hour)
	}
	return len(accounts)
}

// Blackmailers reports how many blackmail sessions ran.
func (e *Engine) Blackmailers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.blackmailers
}

// RunQuotaReader scripts case study 2: an attacker logs into the
// account (which should have received an Apps-Script quota notice by
// then) and reads every platform notification in the inbox.
func (e *Engine) RunQuotaReader(account string, at time.Time) {
	e.sched.At(at, "case-quota-reader", func(time.Time) {
		e.mu.Lock()
		password := e.passwords[account]
		e.mu.Unlock()
		if password == "" {
			return
		}
		ep := e.space.TorExit()
		rec := &Record{
			Account: account, Outlet: OutletForum,
			Classes: ClassCurious, Tor: true, EmptyUA: true,
			FirstAt: e.sched.Now(), Cookie: e.newCookie(), Visits: 1,
		}
		e.mu.Lock()
		e.records = append(e.records, rec)
		e.mu.Unlock()
		se, err := e.svc.Login(account, password, rec.Cookie, ep)
		if err != nil {
			return
		}
		msgs, err := se.List(webmail.FolderInbox)
		if err != nil {
			return
		}
		for _, m := range msgs {
			if m.From == "apps-script-notifications@platform.example" {
				se.Read(m.ID)
			}
		}
	})
}

// RunCardingRegistration scripts case study 3: an attacker registers
// on a carding forum using the honey account as the contact address;
// the forum's confirmation email lands in the inbox and the attacker
// comes back to read it (the "stepping stone" use of stolen accounts).
func (e *Engine) RunCardingRegistration(account string, at time.Time) {
	e.sched.At(at, "case-carding", func(time.Time) {
		id, err := e.svc.DeliverInbound(account,
			"no-reply@cardershaven.example",
			"Confirm your cardershaven registration",
			"Welcome! Confirm your account by entering the code 58731 within 48 hours.")
		if err != nil {
			return
		}
		e.sched.After(2*time.Hour, "case-carding-read", func(time.Time) {
			e.mu.Lock()
			password := e.passwords[account]
			e.mu.Unlock()
			if password == "" {
				return
			}
			ep := e.space.OpenProxy()
			rec := &Record{
				Account: account, Outlet: OutletForum,
				Classes: ClassCurious, Proxy: true, EmptyUA: true,
				FirstAt: e.sched.Now(), Cookie: e.newCookie(), Visits: 1,
			}
			e.mu.Lock()
			e.records = append(e.records, rec)
			e.mu.Unlock()
			se, err := e.svc.Login(account, password, rec.Cookie, ep)
			if err != nil {
				return
			}
			se.Read(id)
		})
	})
}

// RegisterCredential primes the engine with a credential without any
// outlet event — used by the scripted case studies and by tests.
func (e *Engine) RegisterCredential(account, password string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.passwords[account]; !ok {
		e.passwords[account] = password
	}
}
