package attacker

import "repro/internal/netsim"

// Population holds the generative parameters for the criminals who
// obtain credentials from one outlet. Every number here targets a
// measured marginal from the paper; the comment on each field cites
// the observation it reproduces. Tests in this package assert the
// resulting shapes, not exact counts.
type Population struct {
	// Class mix. Classes overlap (§4.2: "the taxonomy classes ... are
	// not exclusive"); these are the probabilities that a spawned
	// attacker exhibits each behaviour. Curious is the base state of
	// every access — an attacker with no other class only checks the
	// credentials.
	GoldDiggerProb float64 // searches for sensitive information
	HijackerProb   float64 // changes the account password
	SpammerProb    float64 // sends unsolicited mail (implies gold digger or hijacker, §4.2)

	// Network identity.
	TorProb     float64 // connect via Tor exit (no geolocation)
	ProxyProb   float64 // connect via open proxy (no geolocation)
	EmptyUAProb float64 // hide the browser user agent
	AndroidProb float64 // mobile access share (§4.4: paste/forums only)

	// Location behaviour for geolocated (non-Tor/proxy) accesses.
	// LocationMalleability is the probability that, when the leak
	// advertised a decoy owner location, the criminal connects from a
	// city near the advertised midpoint rather than from home (§4.5).
	// The home-region mixture for non-malleable criminals is fixed in
	// the engine (chooseCity).
	LocationMalleability float64

	// Session dynamics (Figure 1, §4.3).
	ReturnProb     float64 // probability of coming back after the first visit
	ReturnVisitsMu float64 // mean number of extra visits for returners
	ReturnGapDays  float64 // mean gap between return visits
	SessionMinutes float64 // typical single-session length (log-normal median)

	// InfectedMachineProb is the chance a geolocated access originates
	// from a malware-infected machine that appears on the Spamhaus
	// blacklist (§4.5: 20 observed IPs were listed).
	InfectedMachineProb float64

	// TosViolationProb is the chance an attacker performs some other
	// terms-of-service violation that gets the account suspended
	// (beyond spam, which the abuse detector catches); together these
	// drive the "42 accounts blocked" outcome of §4.1.
	TosViolationProb float64

	// Browsers used when the UA is not hidden.
	Browsers []netsim.Browser
}

// Populations bundles the per-channel attacker calibrations an engine
// runs with. The zero value is not useful; start from
// DefaultPopulations (the paper's measured marginals) and override
// fields per scenario (the scenario layer applies declarative
// calibration overrides on top of the defaults).
type Populations struct {
	// Paste drives criminals arriving from the popular paste sites;
	// PasteRussian drives the low-traffic Russian paste sites (the
	// paper's populations are the same, only the outlet cadence
	// differs, but scenarios may split them).
	Paste        Population
	PasteRussian Population
	// Forum drives the underground-forum browsers.
	Forum Population
	// Malware drives the information-stealing-malware botmasters.
	Malware Population
}

// DefaultPopulations returns the paper-calibrated populations
// (§4.2–§4.5 marginals; see the per-variable comments below).
func DefaultPopulations() Populations {
	return Populations{
		Paste:        pastePopulation,
		PasteRussian: pastePopulation,
		Forum:        forumPopulation,
		Malware:      malwarePopulation,
	}
}

// PastePopulation: criminals harvesting public paste sites.
//
//   - 20% of paste accesses are hijackers (Figure 2).
//   - Gold diggers present but fewer than on forums.
//   - Mixed browsers, some Android (§4.4).
//   - Strong location malleability: with an advertised location the
//     median login distance drops 1784→1400 km (UK) and 7900→939 km
//     (US) (Figure 5), and the Cramér–von Mises test rejects equality
//     (§4.5). The US contrast is the sharpest in the paper, so
//     malleable criminals land close to the midpoint.
//   - 80% of visitors never come back (§4.3).
var pastePopulation = Population{
	GoldDiggerProb:       0.18,
	HijackerProb:         0.20,
	SpammerProb:          0.035,
	TorProb:              0.32,
	ProxyProb:            0.12,
	EmptyUAProb:          0.05,
	AndroidProb:          0.12,
	LocationMalleability: 0.80,
	ReturnProb:           0.20,
	ReturnVisitsMu:       2.5,
	ReturnGapDays:        2.0,
	SessionMinutes:       4,
	InfectedMachineProb:  0.10,
	TosViolationProb:     0.13,
	Browsers: []netsim.Browser{
		netsim.BrowserChrome, netsim.BrowserFirefox, netsim.BrowserIE,
		netsim.BrowserSafari, netsim.BrowserOpera,
	},
}

// ForumPopulation: criminals browsing open underground forums for
// free samples — "the lowest level of sophistication" (§1).
//
//   - Highest gold-digger share, about 30% of accesses (Figure 2).
//   - Hijackers present (§4.2).
//   - Little effort to hide: lower Tor/proxy rates, no location
//     malleability to speak of — the forum CvM test cannot reject the
//     null (§4.5, p≈0.27).
var forumPopulation = Population{
	GoldDiggerProb:       0.40,
	HijackerProb:         0.13,
	SpammerProb:          0.03,
	TorProb:              0.22,
	ProxyProb:            0.08,
	EmptyUAProb:          0.04,
	AndroidProb:          0.10,
	LocationMalleability: 0.12,
	ReturnProb:           0.20,
	ReturnVisitsMu:       2.0,
	ReturnGapDays:        2.5,
	SessionMinutes:       5,
	InfectedMachineProb:  0.10,
	TosViolationProb:     0.11,
	Browsers: []netsim.Browser{
		netsim.BrowserChrome, netsim.BrowserFirefox, netsim.BrowserIE,
		netsim.BrowserOpera,
	},
}

// MalwarePopulation: botmasters operating information-stealing
// malware — "the stealthiest" criminals (§4.2, §4.8).
//
//   - Never hijack, never spam (Figure 2): stealth preserves the
//     resource.
//   - Curious checks first; gold-digger assessments arrive with the
//     aggregation/resale bursts (~day 30 / ~day 100, Figure 4).
//   - All accesses but one via Tor; empty user agent throughout
//     (§4.4, §4.5).
//   - 80% of visitors DO come back (§4.3) — the botmaster re-checks
//     that the stolen accounts are still alive.
var malwarePopulation = Population{
	GoldDiggerProb:       0.45,
	HijackerProb:         0,
	SpammerProb:          0,
	TorProb:              1.0, // the single non-Tor access is forced by the engine
	ProxyProb:            0,
	EmptyUAProb:          1.0,
	AndroidProb:          0,
	LocationMalleability: 0,
	ReturnProb:           0.80,
	ReturnVisitsMu:       3.5,
	ReturnGapDays:        4.0,
	SessionMinutes:       3,
	InfectedMachineProb:  0,
	TosViolationProb:     0.05,
	Browsers:             nil, // UA always empty
}

// goldKeywords are the searches gold diggers run when assessing an
// account's worth: financial and credential terms (§4.6 confirms
// attackers hunt "sensitive information, especially financial
// information"). Terms overlapping the seed corpus ("transfer",
// "payment", "account") surface real mail; the others surface
// attacker-created content such as the blackmail drafts.
var goldKeywords = []string{
	"payment", "account", "transfer", "statement", "invoice",
	"password", "bank", "wire", "salary", "confidential",
	"bitcoin", "seller", "results", "family",
}

// spamSubjects/spamBodies are the bulk mail spammers push through
// compromised accounts (all of it lands in the sinkhole).
var spamSubjects = []string{
	"Limited offer just for you",
	"Your parcel could not be delivered",
	"Re: outstanding balance",
	"Exclusive pharmacy discounts inside",
	"You have won - claim now",
}

var spamBodies = []string{
	"Click the link to claim your reward before it expires.",
	"We tried to deliver your package. Confirm your address here.",
	"Your account shows an outstanding balance. Settle immediately.",
	"Best prices, discreet shipping, no prescription needed.",
}

// victimDomains receive the spam/blackmail (everything is sinkholed;
// the names exist only so recipient strings look plausible).
var victimDomains = []string{
	"victims.example", "contacts.example", "addressbook.example",
}

// GoldKeywords returns a copy of the gold-digger search vocabulary.
// The live-fleet load generator replays these over the wire so its
// search traffic matches what the in-process engine issues.
func GoldKeywords() []string { return append([]string(nil), goldKeywords...) }

// SpamSubjects returns a copy of the spammer subject pool.
func SpamSubjects() []string { return append([]string(nil), spamSubjects...) }

// SpamBodies returns a copy of the spammer body pool.
func SpamBodies() []string { return append([]string(nil), spamBodies...) }

// VictimDomains returns a copy of the sinkholed recipient domains.
func VictimDomains() []string { return append([]string(nil), victimDomains...) }
