package attacker

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/malnet"
	"repro/internal/netsim"
	"repro/internal/outlets"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/webmail"
)

var epoch = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

type fixture struct {
	clock  *simtime.Clock
	sched  *simtime.Scheduler
	svc    *webmail.Service
	space  *netsim.AddressSpace
	bl     *netsim.Blacklist
	gaz    *geo.Gazetteer
	engine *Engine
}

func newFixture(t *testing.T, seed int64, accounts int) *fixture {
	t.Helper()
	clock := simtime.NewClock(epoch)
	sched := simtime.NewScheduler(clock)
	svc := webmail.NewService(webmail.Config{Clock: clock})
	gaz := geo.Default()
	f := &fixture{
		clock: clock, sched: sched, svc: svc, gaz: gaz,
		space: netsim.NewAddressSpace(rng.New(seed), gaz),
		bl:    netsim.NewBlacklist(),
	}
	f.engine = New(Config{
		Service: svc, Scheduler: sched, Space: f.space,
		Blacklist: f.bl, Gazetteer: gaz, Src: rng.New(seed),
	})
	for i := 0; i < accounts; i++ {
		addr := fmt.Sprintf("h%03d@honeymail.example", i)
		if err := svc.CreateAccount(addr, "pw", "Honey"); err != nil {
			t.Fatal(err)
		}
		// Seed some searchable financial mail.
		svc.Seed(addr, webmail.FolderInbox, "corp@x", addr,
			"Wire transfer confirmation", "the payment and account statement are attached", epoch.Add(-24*time.Hour))
		svc.Seed(addr, webmail.FolderInbox, "corp@x", addr,
			"Meeting notes", "about the company offsite", epoch.Add(-48*time.Hour))
	}
	return f
}

func (f *fixture) account(i int) string {
	return fmt.Sprintf("h%03d@honeymail.example", i)
}

func (f *fixture) pickup(i int, site *outlets.Site, hint *outlets.LocationHint) outlets.Pickup {
	return outlets.Pickup{
		Site:       site,
		Credential: outlets.Credential{Account: f.account(i), Password: "pw", Hint: hint},
		PostedAt:   epoch,
		At:         f.clock.Now(),
	}
}

var (
	pasteSite = &outlets.Site{Name: "pastebin.example", Kind: outlets.KindPaste}
	forumSite = &outlets.Site{Name: "hackforums.example", Kind: outlets.KindForum}
	ruSite    = &outlets.Site{Name: "paste-ru-1.example", Kind: outlets.KindPaste, Russian: true}
)

func runMany(t *testing.T, seed int64, n int, site *outlets.Site, hint *outlets.LocationHint) (*fixture, []Record) {
	t.Helper()
	f := newFixture(t, seed, n)
	for i := 0; i < n; i++ {
		f.engine.HandlePickup(f.pickup(i, site, hint))
	}
	f.sched.RunFor(210 * 24 * time.Hour)
	return f, f.engine.Records()
}

func TestPickupSpawnsAccess(t *testing.T) {
	f, recs := runMany(t, 1, 1, pasteSite, nil)
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Outlet != OutletPaste || r.Cookie == "" || r.Account != f.account(0) {
		t.Fatalf("record = %+v", r)
	}
	// The webmail journal shows a login from that cookie.
	found := false
	for _, ev := range f.svc.Journal(f.account(0)) {
		if ev.Kind == webmail.EventLogin && ev.Cookie == r.Cookie {
			found = true
		}
	}
	if !found {
		t.Fatal("no login journaled for attacker cookie")
	}
}

func TestTaxonomyMixPaste(t *testing.T) {
	_, recs := runMany(t, 2, 300, pasteSite, nil)
	var hijack, gold, spam int
	for _, r := range recs {
		if r.Classes.Has(ClassHijacker) {
			hijack++
		}
		if r.Classes.Has(ClassGoldDigger) {
			gold++
		}
		if r.Classes.Has(ClassSpammer) {
			spam++
		}
	}
	n := float64(len(recs))
	if h := float64(hijack) / n; h < 0.12 || h > 0.30 {
		t.Fatalf("paste hijacker share = %.2f, want ~0.20 (Figure 2)", h)
	}
	if s := float64(spam) / n; s > 0.10 {
		t.Fatalf("paste spammer share = %.2f, want small (§4.2: 8 of 327)", s)
	}
	_ = gold
}

func TestTaxonomyMixForumVsPaste(t *testing.T) {
	_, pasteRecs := runMany(t, 3, 300, pasteSite, nil)
	_, forumRecs := runMany(t, 3, 300, forumSite, nil)
	share := func(recs []Record, c Class) float64 {
		n := 0
		for _, r := range recs {
			if r.Classes.Has(c) {
				n++
			}
		}
		return float64(n) / float64(len(recs))
	}
	if gf, gp := share(forumRecs, ClassGoldDigger), share(pasteRecs, ClassGoldDigger); gf <= gp {
		t.Fatalf("forum gold-digger share %.2f <= paste %.2f; Figure 2 wants forums highest", gf, gp)
	}
}

func TestMalwareNeverHijacksOrSpams(t *testing.T) {
	f := newFixture(t, 4, 100)
	for i := 0; i < 100; i++ {
		f.engine.HandleExfil(malnet.Exfiltration{
			Sample:     malnet.Sample{ID: "zeus-1", Family: malnet.FamilyZeus, C2Alive: true},
			Credential: malnet.Credential{Account: f.account(i), Password: "pw"},
			At:         f.clock.Now(),
		})
	}
	f.sched.RunFor(210 * 24 * time.Hour)
	recs := f.engine.Records()
	if len(recs) == 0 {
		t.Fatal("no malware accesses spawned")
	}
	nonTor := 0
	for _, r := range recs {
		if r.Classes.Has(ClassHijacker) || r.Classes.Has(ClassSpammer) {
			t.Fatalf("malware access with class %v (Figure 2: never)", r.Classes)
		}
		if !r.EmptyUA {
			t.Fatalf("malware access with user agent (§4.4): %+v", r)
		}
		if !r.Tor {
			nonTor++
		}
	}
	if nonTor != 1 {
		t.Fatalf("non-Tor malware accesses = %d, want exactly 1 (§4.5)", nonTor)
	}
}

func TestMalwareResaleWaves(t *testing.T) {
	f := newFixture(t, 5, 10)
	for i := 0; i < 10; i++ {
		f.engine.HandleExfil(malnet.Exfiltration{
			Sample:     malnet.Sample{ID: "zeus-1", C2Alive: true},
			Credential: malnet.Credential{Account: f.account(i), Password: "pw"},
			At:         f.clock.Now(),
		})
	}
	f.sched.RunFor(210 * 24 * time.Hour)
	waves := f.engine.ResaleWaves()
	if len(waves) != 10 {
		t.Fatalf("wave accounts = %d", len(waves))
	}
	for acct, times := range waves {
		if len(times) != 2 {
			t.Fatalf("%s has %d waves, want 2 (~day 30 and ~day 100)", acct, len(times))
		}
		d1 := times[0].Sub(epoch).Hours() / 24
		d2 := times[1].Sub(epoch).Hours() / 24
		if d1 < 15 || d1 > 45 || d2 < 85 || d2 > 115 {
			t.Fatalf("wave days = %.0f, %.0f; want ~30 and ~100 (Figure 4)", d1, d2)
		}
	}
}

func TestMalwareReturnsMoreThanPaste(t *testing.T) {
	// §4.3: 80% of paste/forum visitors never come back; 80% of
	// malware visitors do.
	_, pasteRecs := runMany(t, 6, 400, pasteSite, nil)
	f := newFixture(t, 6, 200)
	for i := 0; i < 200; i++ {
		f.engine.HandleExfil(malnet.Exfiltration{
			Sample:     malnet.Sample{ID: "z", C2Alive: true},
			Credential: malnet.Credential{Account: f.account(i), Password: "pw"},
		})
	}
	f.sched.RunFor(210 * 24 * time.Hour)
	malRecs := f.engine.Records()
	returning := func(recs []Record) float64 {
		n := 0
		for _, r := range recs {
			if r.Visits > 1 {
				n++
			}
		}
		return float64(n) / float64(len(recs))
	}
	rp, rm := returning(pasteRecs), returning(malRecs)
	if rp > 0.35 {
		t.Fatalf("paste returning share = %.2f, want ~0.20", rp)
	}
	if rm < 0.6 {
		t.Fatalf("malware returning share = %.2f, want ~0.80", rm)
	}
}

func TestLocationMalleabilityUK(t *testing.T) {
	hint := &outlets.LocationHint{Region: "uk", Midpoint: geo.LondonMidpoint, City: "Croydon"}
	_, withHint := runMany(t, 7, 250, pasteSite, hint)
	_, noHint := runMany(t, 7, 250, pasteSite, nil)
	median := func(recs []Record) float64 {
		var pts []geo.Point
		gaz := geo.Default()
		for _, r := range recs {
			if r.HomeCity == "" {
				continue // tor/proxy
			}
			c, _ := gaz.Lookup(r.HomeCity)
			pts = append(pts, c.Point)
		}
		return geo.MedianDistanceKm(pts, geo.LondonMidpoint)
	}
	mHint, mNo := median(withHint), median(noHint)
	if mHint >= mNo {
		t.Fatalf("median distance with hint %.0f km >= without %.0f km (Figure 5a wants closer)", mHint, mNo)
	}
}

func TestForumLessMalleableThanPaste(t *testing.T) {
	hint := &outlets.LocationHint{Region: "us", Midpoint: geo.PontiacMidpoint, City: "Peoria"}
	_, paste := runMany(t, 8, 250, pasteSite, hint)
	_, forum := runMany(t, 8, 250, forumSite, hint)
	frac := func(recs []Record) float64 {
		m, tot := 0, 0
		for _, r := range recs {
			if r.HomeCity == "" {
				continue
			}
			tot++
			if r.Malleable {
				m++
			}
		}
		return float64(m) / float64(tot)
	}
	if fp, ff := frac(paste), frac(forum); fp <= ff {
		t.Fatalf("paste malleable share %.2f <= forum %.2f (§4.5 wants paste higher)", fp, ff)
	}
}

func TestSpammersNeverExclusive(t *testing.T) {
	_, recs := runMany(t, 9, 500, pasteSite, nil)
	for _, r := range recs {
		if r.Classes.Has(ClassSpammer) && !r.Classes.Has(ClassGoldDigger) && !r.Classes.Has(ClassHijacker) {
			t.Fatalf("exclusive spammer found: %v (§4.2 forbids)", r.Classes)
		}
	}
}

func TestHijackChangesPasswordAndLocksOthers(t *testing.T) {
	f := newFixture(t, 10, 1)
	// Force a hijacker via a population with certainty.
	pop := pastePopulation
	pop.HijackerProb = 1
	pop.TorProb, pop.ProxyProb = 0, 0
	f.engine.spawn(f.account(0), "pw", OutletPaste, pop, nil, f.clock.Now())
	f.sched.RunFor(30 * 24 * time.Hour)
	pw, _ := f.svc.Password(f.account(0))
	if pw == "pw" {
		t.Fatal("hijacker did not change the password")
	}
}

func TestGoldDiggerSearchesAndReads(t *testing.T) {
	f := newFixture(t, 11, 1)
	pop := pastePopulation
	pop.GoldDiggerProb = 1
	pop.HijackerProb, pop.SpammerProb, pop.TosViolationProb = 0, 0, 0
	f.engine.spawn(f.account(0), "pw", OutletPaste, pop, nil, f.clock.Now())
	f.sched.RunFor(30 * 24 * time.Hour)
	log := f.svc.SearchLog(f.account(0))
	if len(log) < 2 {
		t.Fatalf("search log = %v, want >= 2 queries", log)
	}
	reads := 0
	for _, ev := range f.svc.Journal(f.account(0)) {
		if ev.Kind == webmail.EventRead {
			reads++
		}
	}
	if reads == 0 {
		t.Fatal("gold digger read nothing")
	}
}

func TestBlacklistGetsPopulated(t *testing.T) {
	f, _ := runMany(t, 12, 400, pasteSite, nil)
	if f.bl.Len() == 0 {
		t.Fatal("no attacker IPs blacklisted (§4.5 found 20)")
	}
}

func TestSomeAccountsSuspended(t *testing.T) {
	f, _ := runMany(t, 13, 100, pasteSite, nil)
	if n := f.svc.SuspendedCount(); n == 0 {
		t.Fatal("no accounts suspended (§4.1: 42 of 100 were blocked)")
	}
}

func TestBlackmailCampaignCaseStudy(t *testing.T) {
	f := newFixture(t, 14, 3)
	accounts := []string{f.account(0), f.account(1), f.account(2)}
	for _, a := range accounts {
		f.engine.RegisterCredential(a, "pw")
	}
	f.engine.RunBlackmailCampaign(accounts, epoch.Add(24*time.Hour))
	f.sched.RunFor(30 * 24 * time.Hour)
	if f.engine.Blackmailers() != 3 {
		t.Fatalf("blackmailers = %d", f.engine.Blackmailers())
	}
	// Drafts with bitcoin vocabulary must exist in at least one account.
	foundDraft := false
	for _, a := range accounts {
		snap, err := f.svc.Snapshot(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, body := range snap.Drafts {
			if contains(body, "bitcoin") && contains(body, "localbitcoins") {
				foundDraft = true
			}
		}
	}
	if !foundDraft {
		t.Fatal("no abandoned bitcoin drafts found (§4.7)")
	}
}

func TestQuotaReaderCaseStudy(t *testing.T) {
	f := newFixture(t, 15, 1)
	f.engine.RegisterCredential(f.account(0), "pw")
	id, _ := f.svc.DeliverInbound(f.account(0), "apps-script-notifications@platform.example",
		"Apps Script notice: excessive computer time", "throttled")
	f.engine.RunQuotaReader(f.account(0), epoch.Add(time.Hour))
	f.sched.RunFor(48 * time.Hour)
	read := false
	for _, ev := range f.svc.Journal(f.account(0)) {
		if ev.Kind == webmail.EventRead && ev.Message == id {
			read = true
		}
	}
	if !read {
		t.Fatal("quota notice not read (§4.7)")
	}
}

func TestCardingRegistrationCaseStudy(t *testing.T) {
	f := newFixture(t, 16, 1)
	f.engine.RegisterCredential(f.account(0), "pw")
	f.engine.RunCardingRegistration(f.account(0), epoch.Add(time.Hour))
	f.sched.RunFor(48 * time.Hour)
	// Confirmation mail exists and was read.
	reads := 0
	for _, ev := range f.svc.Journal(f.account(0)) {
		if ev.Kind == webmail.EventRead {
			reads++
		}
	}
	if reads != 1 {
		t.Fatalf("carding confirmation reads = %d, want 1", reads)
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassCurious:                    "curious",
		ClassGoldDigger:                 "gold-digger",
		ClassHijacker:                   "hijacker",
		ClassGoldDigger | ClassSpammer:  "gold-digger+spammer",
		ClassSpammer | ClassHijacker:    "spammer+hijacker",
		ClassGoldDigger | ClassHijacker: "gold-digger+hijacker",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	_, a := runMany(t, 17, 50, pasteSite, nil)
	_, b := runMany(t, 17, 50, pasteSite, nil)
	if len(a) != len(b) {
		t.Fatalf("runs differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cookie != b[i].Cookie || a[i].Classes != b[i].Classes || !a[i].FirstAt.Equal(b[i].FirstAt) {
			t.Fatalf("record %d differs between same-seed runs", i)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
