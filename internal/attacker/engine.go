package attacker

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/malnet"
	"repro/internal/netsim"
	"repro/internal/outlets"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/webmail"
)

// Class is the taxonomy bitmask of §4.2.
type Class uint8

const (
	// ClassCurious: logs in to check the credentials work, nothing more.
	ClassCurious Class = 1 << iota
	// ClassGoldDigger: searches the account for sensitive information.
	ClassGoldDigger
	// ClassSpammer: sends email from the account.
	ClassSpammer
	// ClassHijacker: changes the password, locking the owner out.
	ClassHijacker
)

// Has reports whether c includes the given class.
func (c Class) Has(x Class) bool { return c&x != 0 }

// String lists the classes, e.g. "gold-digger+hijacker".
func (c Class) String() string {
	if c == ClassCurious || c == 0 {
		return "curious"
	}
	var parts []string
	if c.Has(ClassGoldDigger) {
		parts = append(parts, "gold-digger")
	}
	if c.Has(ClassSpammer) {
		parts = append(parts, "spammer")
	}
	if c.Has(ClassHijacker) {
		parts = append(parts, "hijacker")
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "+"
		}
		out += p
	}
	return out
}

// OutletLabel tags which channel delivered the credential.
type OutletLabel string

// The three leak channels of Table 1.
const (
	OutletPaste        OutletLabel = "paste"
	OutletPasteRussian OutletLabel = "paste-ru"
	OutletForum        OutletLabel = "forum"
	OutletMalware      OutletLabel = "malware"
)

// Record is the ground-truth description of one spawned attacker
// (== one browser cookie == one "unique access" in the paper's
// counting). Analyses never see Records; tests use them to validate
// what the monitoring pipeline infers.
type Record struct {
	Cookie    string
	Account   string
	Outlet    OutletLabel
	Classes   Class
	Tor       bool
	Proxy     bool
	EmptyUA   bool
	Android   bool
	Malleable bool // chose to connect near the advertised location
	HomeCity  string
	FirstAt   time.Time
	Visits    int
	Searches  []string
}

// Config wires an Engine to the rest of the system.
type Config struct {
	Service   *webmail.Service
	Scheduler *simtime.Scheduler
	Space     *netsim.AddressSpace
	Blacklist *netsim.Blacklist
	Gazetteer *geo.Gazetteer
	Src       *rng.Source
	// Cookies, when set, issues this engine's browser cookies.
	// Sharded experiments give each shard-block engine a prefixed jar
	// so cookie values don't depend on cross-shard interleaving; nil
	// falls back to the platform's jar.
	Cookies *netsim.CookieJar
	// Populations overrides the per-channel attacker calibrations;
	// nil selects DefaultPopulations (the paper's marginals).
	Populations *Populations
}

// Engine spawns and drives attackers.
type Engine struct {
	svc   *webmail.Service
	sched *simtime.Scheduler
	space *netsim.AddressSpace
	bl    *netsim.Blacklist
	gaz   *geo.Gazetteer
	src   *rng.Source
	jar   *netsim.CookieJar // nil -> use the platform's jar
	pops  Populations

	mu           sync.Mutex
	records      []*Record
	madeNonTor   bool // the one non-Tor malware access (§4.5)
	resaleWaves  map[string][]time.Time
	leakTimes    map[string]time.Time
	passwords    map[string]string // latest known-good password per account
	blackmailers int
}

// New builds an Engine.
func New(cfg Config) *Engine {
	if cfg.Service == nil || cfg.Scheduler == nil || cfg.Space == nil ||
		cfg.Blacklist == nil || cfg.Gazetteer == nil || cfg.Src == nil {
		panic("attacker: all Config fields are required")
	}
	pops := DefaultPopulations()
	if cfg.Populations != nil {
		pops = *cfg.Populations
	}
	return &Engine{
		svc:         cfg.Service,
		sched:       cfg.Scheduler,
		space:       cfg.Space,
		bl:          cfg.Blacklist,
		gaz:         cfg.Gazetteer,
		src:         cfg.Src,
		jar:         cfg.Cookies,
		pops:        pops,
		resaleWaves: make(map[string][]time.Time),
		leakTimes:   make(map[string]time.Time),
		passwords:   make(map[string]string),
	}
}

// newCookie issues a browser cookie from the engine's jar (or the
// platform's when none was configured).
func (e *Engine) newCookie() string {
	if e.jar != nil {
		return e.jar.Issue()
	}
	return e.svc.NewCookie()
}

// Records returns the ground-truth attacker records, sorted by first
// activity.
func (e *Engine) Records() []Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Record, 0, len(e.records))
	for _, r := range e.records {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FirstAt.Before(out[j].FirstAt) })
	return out
}

// HandlePickup reacts to a credential found on a paste site or forum:
// it spawns one criminal with the outlet's population profile.
func (e *Engine) HandlePickup(p outlets.Pickup) {
	var pop Population
	var label OutletLabel
	switch {
	case p.Site.Kind == outlets.KindPaste && p.Site.Russian:
		pop, label = e.pops.PasteRussian, OutletPasteRussian
	case p.Site.Kind == outlets.KindPaste:
		pop, label = e.pops.Paste, OutletPaste
	default:
		pop, label = e.pops.Forum, OutletForum
	}
	var hint *outlets.LocationHint
	if p.Credential.Hint != nil {
		h := *p.Credential.Hint
		hint = &h
	}
	e.mu.Lock()
	if _, ok := e.leakTimes[p.Credential.Account]; !ok {
		e.leakTimes[p.Credential.Account] = p.PostedAt
	}
	if _, ok := e.passwords[p.Credential.Account]; !ok {
		e.passwords[p.Credential.Account] = p.Credential.Password
	}
	e.mu.Unlock()
	e.spawn(p.Credential.Account, p.Credential.Password, label, pop, hint, e.sched.Now())
}

// HandleExfil reacts to a credential reaching a malware C&C: the
// botmaster checks it after a lag, re-checks it repeatedly, and the
// credential later resurfaces in aggregation/resale waves (~day 30 and
// ~day 100 after the leak) as fresh gold-digger accesses (Figure 4).
func (e *Engine) HandleExfil(ex malnet.Exfiltration) {
	now := e.sched.Now()
	e.mu.Lock()
	if _, ok := e.leakTimes[ex.Credential.Account]; !ok {
		e.leakTimes[ex.Credential.Account] = now
	}
	if _, ok := e.passwords[ex.Credential.Account]; !ok {
		e.passwords[ex.Credential.Account] = ex.Credential.Password
	}
	e.mu.Unlock()

	// Botmaster's first check: exponential lag with a long mean, so
	// only ~40% of malware accesses land within 25 days (Figure 3).
	lag := time.Duration(e.src.Exponential(28 * float64(24*time.Hour)))
	e.sched.At(now.Add(lag), "botmaster-check", func(time.Time) {
		pop := e.pops.Malware
		pop.GoldDiggerProb = 0.15 // early checks are mostly curious (§4.3)
		e.spawn(ex.Credential.Account, ex.Credential.Password, OutletMalware, pop, nil, e.sched.Now())
	})

	// Aggregation / resale waves: day ~30 and ~100 after the leak,
	// jittered, each producing a new criminal of the gold-digger type
	// ("these bursts in accesses were of the 'gold digger' type",
	// §4.3).
	for _, base := range []float64{30, 100} {
		day := base + e.src.Normal(0, 3)
		if day < 1 {
			day = 1
		}
		at := now.Add(time.Duration(day * float64(24*time.Hour)))
		e.sched.At(at, "resale-wave", func(time.Time) {
			pop := e.pops.Malware
			pop.GoldDiggerProb = 0.9 // wave accesses assess value
			e.spawn(ex.Credential.Account, ex.Credential.Password, OutletMalware, pop, nil, e.sched.Now())
			e.mu.Lock()
			e.resaleWaves[ex.Credential.Account] = append(e.resaleWaves[ex.Credential.Account], e.sched.Now())
			e.mu.Unlock()
		})
	}
}

// ResaleWaves returns, per account, when resale-wave accesses fired.
func (e *Engine) ResaleWaves() map[string][]time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string][]time.Time, len(e.resaleWaves))
	for k, v := range e.resaleWaves {
		out[k] = append([]time.Time(nil), v...)
	}
	return out
}

// spawn creates one attacker persona and schedules its sessions.
func (e *Engine) spawn(account, password string, label OutletLabel, pop Population, hint *outlets.LocationHint, at time.Time) {
	classes := ClassCurious
	if e.src.Bool(pop.GoldDiggerProb) {
		classes |= ClassGoldDigger
	}
	if e.src.Bool(pop.HijackerProb) {
		classes |= ClassHijacker
	}
	if e.src.Bool(pop.SpammerProb) {
		classes |= ClassSpammer
		// §4.2: "there was no access that behaved exclusively as
		// 'spammer'" — force a companion class.
		if !classes.Has(ClassGoldDigger) && !classes.Has(ClassHijacker) {
			if e.src.Bool(0.5) {
				classes |= ClassGoldDigger
			} else {
				classes |= ClassHijacker
			}
		}
	}

	rec := &Record{
		Account: account,
		Outlet:  label,
		Classes: classes,
		FirstAt: at,
	}
	ep := e.chooseEndpoint(rec, pop, hint)
	rec.Cookie = e.newCookie()

	e.mu.Lock()
	e.records = append(e.records, rec)
	e.mu.Unlock()

	visits := 1
	if e.src.Bool(pop.ReturnProb) {
		visits += 1 + e.src.Poisson(pop.ReturnVisitsMu)
	}
	visitAt := at
	for v := 0; v < visits; v++ {
		first := v == 0
		when := visitAt
		e.sched.At(when, fmt.Sprintf("attacker-visit:%s", label), func(time.Time) {
			e.runSession(rec, password, pop, ep, first)
		})
		gap := e.src.Exponential(pop.ReturnGapDays * float64(24*time.Hour))
		visitAt = visitAt.Add(time.Duration(gap))
	}
	rec.Visits = visits
}

// chooseEndpoint picks the attacker's network identity according to
// the population's sophistication traits.
func (e *Engine) chooseEndpoint(rec *Record, pop Population, hint *outlets.LocationHint) netsim.Endpoint {
	var ep netsim.Endpoint
	switch {
	case e.forceNonTor(rec):
		// The single non-Tor malware access (§4.5): an infected
		// residential machine, which also lands on the blacklist.
		city := rng.Pick(e.src, e.gaz.InRegion(geo.RegionEurope)).Name
		ep = e.mustCity(city)
		rec.HomeCity = city
		e.bl.Add(ep.Addr, "XBL/botnet")
	case e.src.Bool(pop.TorProb):
		ep = e.space.TorExit()
		rec.Tor = true
	case e.src.Bool(pop.ProxyProb):
		ep = e.space.OpenProxy()
		rec.Proxy = true
	default:
		city := e.chooseCity(rec, pop, hint)
		ep = e.mustCity(city)
		rec.HomeCity = city
		if e.src.Bool(pop.InfectedMachineProb) {
			e.bl.Add(ep.Addr, "XBL/botnet")
		}
	}
	if pop.EmptyUAProb >= 1 || e.src.Bool(pop.EmptyUAProb) {
		ep.UserAgent = ""
		rec.EmptyUA = true
	} else if e.src.Bool(pop.AndroidProb) {
		ep.UserAgent = netsim.UserAgentFor(e.src, netsim.BrowserAndroid)
		rec.Android = true
	} else if len(pop.Browsers) > 0 {
		ep.UserAgent = netsim.UserAgentFor(e.src, rng.Pick(e.src, pop.Browsers))
	} else {
		ep.UserAgent = ""
		rec.EmptyUA = true
	}
	return ep
}

// forceNonTor returns true exactly once, for a malware-outlet access.
func (e *Engine) forceNonTor(rec *Record) bool {
	if rec.Outlet != OutletMalware {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.madeNonTor {
		return false
	}
	e.madeNonTor = true
	return true
}

// chooseCity selects the attacker's login city: near the advertised
// midpoint for malleable criminals (§4.5), otherwise a home region.
func (e *Engine) chooseCity(rec *Record, pop Population, hint *outlets.LocationHint) string {
	if hint != nil && e.src.Bool(pop.LocationMalleability) {
		rec.Malleable = true
		var region geo.Region
		if hint.Region == "uk" {
			region = geo.RegionUK
		} else {
			region = geo.RegionUSMidwest
		}
		return rng.Pick(e.src, e.gaz.InRegion(region)).Name
	}
	weights := []rng.WeightedChoice[geo.Region]{
		{Item: geo.RegionEurope, Weight: 0.30},
		{Item: geo.RegionRussia, Weight: 0.14},
		{Item: geo.RegionAsia, Weight: 0.18},
		{Item: geo.RegionAfrica, Weight: 0.12},
		{Item: geo.RegionUS, Weight: 0.10},
		{Item: geo.RegionSouthAmerica, Weight: 0.08},
		{Item: geo.RegionNorthAmerica, Weight: 0.05},
		{Item: geo.RegionOceania, Weight: 0.03},
	}
	region := rng.Mixture(e.src, weights)
	return rng.Pick(e.src, e.gaz.InRegion(region)).Name
}

// mustCity allocates an endpoint for a known-good city.
func (e *Engine) mustCity(city string) netsim.Endpoint {
	ep, err := e.space.FromCity(city)
	if err != nil {
		panic(fmt.Sprintf("attacker: gazetteer city %q missing from address space: %v", city, err))
	}
	return ep
}

// runSession performs one visit: login plus class-dependent actions.
func (e *Engine) runSession(rec *Record, leakedPassword string, pop Population, ep netsim.Endpoint, first bool) {
	e.mu.Lock()
	password := e.passwords[rec.Account]
	if password == "" {
		password = leakedPassword
	}
	e.mu.Unlock()
	se, err := e.svc.Login(rec.Account, password, rec.Cookie, ep)
	if err != nil {
		return // suspended, or hijacked by someone else with a new password
	}

	// Keep the cookie's tlast honest: a short session "ends" minutes
	// after login (log-normal, Figure 1's short mode).
	minutes := e.src.LogNormal(logOf(pop.SessionMinutes), 0.9)
	endIn := time.Duration(minutes * float64(time.Minute))
	e.sched.After(endIn, "session-end", func(time.Time) {
		se.List(webmail.FolderInbox) // touch; errors fine (may be suspended)
	})

	if first || rec.Classes.Has(ClassGoldDigger) {
		se.List(webmail.FolderInbox)
	}
	if rec.Classes.Has(ClassGoldDigger) {
		e.goldDig(rec, se)
	}
	if rec.Classes.Has(ClassHijacker) && first {
		// Hijackers flip the password late in their visit, not at
		// login — the activity page stays scrapeable for a while,
		// which is why the paper could observe hijacker accesses at
		// all before losing the account (§4.2).
		delay := time.Duration(e.src.Uniform(1, 4) * float64(time.Hour))
		newPassword := fmt.Sprintf("hj-%06d", e.src.Intn(1000000))
		e.sched.After(delay, "hijack", func(time.Time) {
			if err := se.ChangePassword(newPassword); err == nil {
				e.mu.Lock()
				e.passwords[rec.Account] = newPassword
				e.mu.Unlock()
			}
		})
	}
	if rec.Classes.Has(ClassSpammer) {
		e.spam(se)
	}
	if e.src.Bool(pop.TosViolationProb) {
		// Other ToS violations (fraud sign-ups, abusive content, ...)
		// that platform enforcement catches out-of-band, with review
		// latency (§4.1: 42 accounts were blocked over the study).
		delay := time.Duration(e.src.Uniform(6, 72) * float64(time.Hour))
		e.sched.After(delay, "tos-enforcement", func(time.Time) {
			e.svc.Suspend(rec.Account, "tos-violation")
		})
	}
}

// goldDig searches for sensitive content and reads the hits (§4.6),
// plus any drafts lying around (how the blackmailer's abandoned drafts
// got read by later visitors, §4.7).
func (e *Engine) goldDig(rec *Record, se *webmail.Session) {
	queries := rng.PickN(e.src, goldKeywords, 2+e.src.Intn(3))
	for _, q := range queries {
		rec.Searches = append(rec.Searches, q)
		hits, err := se.Search(q)
		if err != nil {
			return
		}
		// Gold diggers skim: a couple of hits per query (the paper saw
		// 147 reads across 82 gold-digger accesses).
		read := 0
		for _, m := range hits {
			if read >= 2 {
				break
			}
			if !e.src.Bool(0.75) {
				continue
			}
			se.Read(m.ID)
			read++
			if e.src.Bool(0.15) {
				se.Star(m.ID)
			}
		}
	}
	if e.src.Bool(0.5) {
		drafts, err := se.List(webmail.FolderDrafts)
		if err == nil {
			for i, d := range drafts {
				if i >= 2 {
					break
				}
				se.Read(d.ID)
			}
		}
	}
}

// spam sends a burst of bulk mail (all sinkholed); bursts average
// ~100 messages (the paper's 845 sends over 8 spammer accesses) and
// large ones trip platform abuse detection, matching the suspensions
// the paper observed.
func (e *Engine) spam(se *webmail.Session) {
	n := 60 + e.src.Intn(120)
	for i := 0; i < n; i++ {
		to := fmt.Sprintf("user%04d@%s", e.src.Intn(10000), rng.Pick(e.src, victimDomains))
		subject := rng.Pick(e.src, spamSubjects)
		body := rng.Pick(e.src, spamBodies)
		if _, err := se.Send(to, subject, body); err != nil {
			return // suspended mid-burst
		}
	}
}

// logOf guards the log of a positive calibration constant.
func logOf(x float64) float64 {
	if x <= 0 {
		x = 1
	}
	return math.Log(x)
}
