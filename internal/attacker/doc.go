// Package attacker models the cybercriminals who obtain leaked honey
// credentials and act on them. It is the generative counterpart of
// the paper's measurements — the simulator's ground truth that the
// inference pipeline (internal/analysis) is tested against.
// Paper-section map:
//
//   - §4.2: the taxonomy bitmask (curious, gold digger, spammer,
//     hijacker — non-exclusive) each persona draws its behaviour from.
//   - §4.3: session dynamics — how long each class stays connected
//     and how often it returns.
//   - §4.5: location behaviour, including decoy-location evasion for
//     the sophisticated outlet populations and Tor use.
//   - §4.7: the scripted case studies (blackmail campaign, quota
//     notice readers, carding-forum registration) in casestudies.go.
//   - §4.8: per-outlet sophistication differences (stealth,
//     configuration hiding, detection evasion).
//
// Parameters live in calibrate.go with citations to the measured
// values they target. The engine consumes pickup events from outlets
// and exfiltration events from the malware sandbox, spawns attacker
// personas, and drives their sessions against the webmail platform
// through exactly the client surface a real criminal would use.
package attacker
