package livefleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/attacker"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Mix is the per-visit behaviour mix the load generator replays,
// derived from the attacker populations so generated traffic has the
// same op shape the in-process engine produces: every visit logs in
// and lists the inbox (the curious baseline), gold diggers add
// searches and reads, spammers add sends, hijackers change the
// password (which ends the visit — the old session cookie is dead).
type Mix struct {
	GoldDigger float64 // P(visit runs searches + reads)
	Hijacker   float64 // P(visit ends with a password change)
	Spammer    float64 // P(visit sends spam)
	Activity   float64 // P(visit scrapes the activity page)
}

// MixFromPopulations averages the four channel populations into one
// mix — the load generator models the blended arrival stream, not one
// outlet. Activity scraping is not a population parameter; the paper's
// attackers rarely checked it, so a small constant stands in.
func MixFromPopulations(p attacker.Populations) Mix {
	avg := func(f func(attacker.Population) float64) float64 {
		return (f(p.Paste) + f(p.PasteRussian) + f(p.Forum) + f(p.Malware)) / 4
	}
	return Mix{
		GoldDigger: avg(func(pp attacker.Population) float64 { return pp.GoldDiggerProb }),
		Hijacker:   avg(func(pp attacker.Population) float64 { return pp.HijackerProb }),
		Spammer:    avg(func(pp attacker.Population) float64 { return pp.SpammerProb }),
		Activity:   0.10,
	}
}

// Op kinds. OpLogin is also the resync point: after a transport
// error a worker skips forward to the next OpLogin, because every op
// between two logins assumed the now-dead session.
const (
	OpLogin    = "login"
	OpList     = "list"
	OpRead     = "read"
	OpSearch   = "search"
	OpSend     = "send"
	OpChpass   = "chpass"
	OpActivity = "activity"
)

// Op is one precomputed request. Everything — account, the password
// valid at that point in the schedule, spam text, search query — is
// resolved at plan time, so executing the plan draws zero randomness
// and two runs of the same plan send byte-identical request streams.
type Op struct {
	Kind     string
	Account  string
	Password string // login: current password; chpass: the new one
	Folder   string
	ID       int64
	Limit    int // list: newest-N bound (0 = whole folder)
	To       string
	Subject  string
	Body     string
	Query    string
}

// Plan is a deterministic load schedule: Workers[w] is the op stream
// worker w replays in order. Workers own disjoint account sets, so
// plan-time password evolution (a chpass changes what later logins
// must present) never races across workers at run time.
type Plan struct {
	Seed    int64
	Workers [][]Op
}

// Ops returns the total number of scheduled requests.
func (p *Plan) Ops() int {
	n := 0
	for _, w := range p.Workers {
		n += len(w)
	}
	return n
}

// PlanConfig parameterises BuildPlan.
type PlanConfig struct {
	Seed    int64
	Workers int // concurrent connections; also the account-ownership stripes
	Visits  int // attacker visits per worker
	Mailbox int // seeded messages per account (read IDs drawn from [1,Mailbox])
	// ListLimit bounds every list op to the newest N messages
	// (Request.Limit); 0 lists whole folders. Bounding it keeps
	// response size — and therefore measured latency — independent of
	// how deeply the fleet's mailboxes were seeded.
	ListLimit int
	Creds     []Credential
	Mix       Mix
}

// BuildPlan expands the config into a fully resolved schedule. Same
// config, same plan — the determinism test replays it twice.
func BuildPlan(cfg PlanConfig) (*Plan, error) {
	if cfg.Workers <= 0 || cfg.Visits <= 0 {
		return nil, fmt.Errorf("livefleet: plan needs positive workers and visits")
	}
	if len(cfg.Creds) == 0 {
		return nil, fmt.Errorf("livefleet: plan needs credentials")
	}
	if cfg.Mailbox <= 0 {
		cfg.Mailbox = 10
	}
	keywords := attacker.GoldKeywords()
	subjects := attacker.SpamSubjects()
	bodies := attacker.SpamBodies()
	domains := attacker.VictimDomains()

	plan := &Plan{Seed: cfg.Seed, Workers: make([][]Op, cfg.Workers)}
	root := rng.New(cfg.Seed)
	for w := 0; w < cfg.Workers; w++ {
		// Ownership stripe: worker w exercises creds[i] with i%Workers
		// == w. A worker with no accounts (more workers than creds)
		// gets an empty schedule rather than an error.
		var owned []Credential
		for i := w; i < len(cfg.Creds); i += cfg.Workers {
			owned = append(owned, cfg.Creds[i])
		}
		if len(owned) == 0 {
			continue
		}
		passwords := make(map[string]string, len(owned))
		for _, c := range owned {
			passwords[c.Address] = c.Password
		}
		src := root.ForkShard(w, cfg.Workers)
		var ops []Op
		for v := 0; v < cfg.Visits; v++ {
			acct := owned[src.Intn(len(owned))].Address
			ops = append(ops,
				Op{Kind: OpLogin, Account: acct, Password: passwords[acct]},
				Op{Kind: OpList, Account: acct, Folder: "inbox", Limit: cfg.ListLimit},
			)
			if src.Bool(cfg.Mix.GoldDigger) {
				for _, q := range rng.PickN(src, keywords, 2+src.Intn(3)) {
					ops = append(ops, Op{Kind: OpSearch, Account: acct, Query: q})
				}
				reads := 1 + src.Intn(3)
				for i := 0; i < reads; i++ {
					ops = append(ops, Op{Kind: OpRead, Account: acct, ID: int64(1 + src.Intn(cfg.Mailbox))})
				}
			}
			if src.Bool(cfg.Mix.Spammer) {
				sends := 1 + src.Intn(3)
				for i := 0; i < sends; i++ {
					ops = append(ops, Op{
						Kind:    OpSend,
						Account: acct,
						To:      fmt.Sprintf("user%04d@%s", src.Intn(10000), rng.Pick(src, domains)),
						Subject: rng.Pick(src, subjects),
						Body:    rng.Pick(src, bodies),
					})
				}
			}
			if src.Bool(cfg.Mix.Activity) {
				ops = append(ops, Op{Kind: OpActivity, Account: acct})
			}
			if src.Bool(cfg.Mix.Hijacker) {
				// Password evolution happens at plan time: later visits
				// to this account must log in with the new password.
				next := fmt.Sprintf("lg-%d-%d-%d", w, v, src.Intn(1_000_000))
				ops = append(ops, Op{Kind: OpChpass, Account: acct, Password: next})
				passwords[acct] = next
			}
		}
		plan.Workers[w] = ops
	}
	return plan, nil
}

// RunConfig parameterises Run.
type RunConfig struct {
	// Addr is the router (or single shard) to load.
	Addr string
	// QPS is the aggregate open-loop request rate target; 0 means
	// as-fast-as-possible (closed loop).
	QPS float64
	// Timeout is the per-request deadline (default 5s); an expiry
	// counts in Timeouts and drops the worker's connection.
	Timeout time.Duration
	// TolerateUnavailable treats down-shard refusals (shard down,
	// shard unavailable, shard connection lost) as expected chaos
	// traffic: they tally in Unavailable instead of Rejected, the
	// worker reconnects and resyncs to its next visit, and they never
	// fail the run. Off, they count as ordinary rejections and the
	// dropped connection surfaces as a protocol error on the next op —
	// the strict mode CI's steady-state smoke gates on.
	TolerateUnavailable bool
	// Label names the run in the report section.
	Label string
}

// lgConn is the load generator's wire client: a plain webmail
// connection plus deadline control.
type lgConn struct {
	c   net.Conn
	enc *json.Encoder
	br  *bufio.Reader
}

func dialLG(addr string, timeout time.Duration) (*lgConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &lgConn{c: c, enc: json.NewEncoder(c), br: bufio.NewReader(c)}, nil
}

// workerTally is one worker's private counters, merged after the run.
type workerTally struct {
	hist        stats.LatencyHist
	requests    int64
	rejected    int64
	errors      int64
	timeouts    int64
	unavailable int64
}

// unavailableError reports whether a rejection is the router's
// fault-surface for a down shard rather than an application refusal
// (bad password, unknown message). The three strings are the router's
// client-visible vocabulary: fast-fail on a known-down shard, a
// failed dial/round-trip, and a bound session dying mid-flight.
func unavailableError(msg string) bool {
	switch msg {
	case "webmail: shard down", "webmail: shard unavailable", "webmail: shard connection lost":
		return true
	}
	return false
}

// Run replays the plan against addr and returns the merged serving
// stats. Pacing is open-loop per worker (rate = QPS/Workers): a
// worker sends on schedule regardless of response latency, sleeping
// only when it is more than a millisecond ahead, so sub-millisecond
// intervals do not dissolve into timer overhead.
func Run(ctx context.Context, cfg RunConfig, plan *Plan) (report.ServingStats, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	workers := len(plan.Workers)
	if workers == 0 {
		return report.ServingStats{}, fmt.Errorf("livefleet: empty plan")
	}
	var interval time.Duration
	if cfg.QPS > 0 {
		interval = time.Duration(float64(time.Second) * float64(workers) / cfg.QPS)
	}
	tallies := make([]workerTally, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		if len(plan.Workers[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(ctx, cfg, w, plan.Workers[w], interval, &tallies[w])
		}(w)
	}
	wg.Wait()
	out := report.ServingStats{Label: cfg.Label, Hist: &stats.LatencyHist{}, Elapsed: time.Since(start)}
	for i := range tallies {
		t := &tallies[i]
		out.Hist.Merge(&t.hist)
		out.Requests += t.requests
		out.Rejected += t.rejected
		out.Errors += t.errors
		out.Timeouts += t.timeouts
		out.Unavailable += t.unavailable
	}
	if cfg.Label == "" {
		out.Label = fmt.Sprintf("%d workers", workers)
	}
	return out, nil
}

// runWorker replays one op stream over one connection, reconnecting
// and resyncing to the next OpLogin after transport failures.
func runWorker(ctx context.Context, cfg RunConfig, w int, ops []Op, interval time.Duration, t *workerTally) {
	// Claimed client identity: parseable, distinct per worker, TEST-NET.
	ip := fmt.Sprintf("203.0.113.%d", 1+w%254)
	var conn *lgConn
	defer func() {
		if conn != nil {
			conn.c.Close()
		}
	}()
	resync := false
	next := time.Now()
	for _, op := range ops {
		if ctx.Err() != nil {
			return
		}
		if resync && op.Kind != OpLogin {
			continue // the session these ops assumed is gone
		}
		if interval > 0 {
			if d := time.Until(next); d > time.Millisecond {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return
				}
			}
			next = next.Add(interval)
		}
		if conn == nil {
			c, err := dialLG(cfg.Addr, cfg.Timeout)
			if err != nil {
				t.errors++
				resync = true
				continue
			}
			conn = c
			resync = false
		}
		req := requestFromOp(&op, ip)
		began := time.Now()
		resp, err := doTimed(conn, req, cfg.Timeout)
		t.requests++
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.timeouts++
			} else {
				t.errors++
			}
			conn.c.Close()
			conn = nil
			resync = true
			continue
		}
		t.hist.Record(time.Since(began))
		if !resp.OK {
			if cfg.TolerateUnavailable && unavailableError(resp.Error) {
				// Expected down-shard refusal: the router either
				// fast-failed this login or tore down the bound
				// session, and in the latter case it has already
				// closed our connection. Reconnect for the next visit
				// either way.
				t.unavailable++
				conn.c.Close()
				conn = nil
				resync = true
				continue
			}
			t.rejected++
			if op.Kind == OpLogin {
				resync = true // visit unusable without a session
			}
			continue
		}
		resync = false
		if op.Kind == OpChpass {
			// chpass self-invalidates the session server-side state the
			// plan assumes; start the next visit on a fresh connection.
			conn.c.Close()
			conn = nil
			resync = true
		}
	}
}

// requestFromOp converts a planned op to a wire request.
func requestFromOp(op *Op, ip string) wireRequest {
	req := wireRequest{Op: op.Kind, Folder: op.Folder, ID: op.ID, Limit: op.Limit,
		To: op.To, Subject: op.Subject, Body: op.Body, Query: op.Query}
	switch op.Kind {
	case OpLogin:
		req.Account = op.Account
		req.Password = op.Password
		req.IP = ip
		req.City = "Berlin"
		req.Country = "DE"
		req.Lat, req.Lon = 52.52, 13.405
		req.UserAgent = "loadgen/1"
	case OpChpass:
		req.Password = op.Password
	}
	return req
}

// wireRequest mirrors webmail.Request's wire shape without importing
// its MessageID type into the plan layer.
type wireRequest struct {
	Op        string  `json:"op"`
	Account   string  `json:"account,omitempty"`
	Password  string  `json:"password,omitempty"`
	IP        string  `json:"ip,omitempty"`
	City      string  `json:"city,omitempty"`
	Country   string  `json:"country,omitempty"`
	Lat       float64 `json:"lat,omitempty"`
	Lon       float64 `json:"lon,omitempty"`
	UserAgent string  `json:"user_agent,omitempty"`
	Folder    string  `json:"folder,omitempty"`
	ID        int64   `json:"id,omitempty"`
	Limit     int     `json:"limit,omitempty"`
	To        string  `json:"to,omitempty"`
	Subject   string  `json:"subject,omitempty"`
	Body      string  `json:"body,omitempty"`
	Query     string  `json:"query,omitempty"`
}

// wireResponse is the part of the reply the generator inspects.
type wireResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// doTimed performs one round trip under a deadline.
func doTimed(conn *lgConn, req wireRequest, timeout time.Duration) (wireResponse, error) {
	conn.c.SetDeadline(time.Now().Add(timeout))
	defer conn.c.SetDeadline(time.Time{})
	if err := conn.enc.Encode(req); err != nil {
		return wireResponse{}, err
	}
	raw, err := conn.br.ReadBytes('\n')
	if err != nil {
		return wireResponse{}, err
	}
	var resp wireResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return wireResponse{}, err
	}
	return resp, nil
}
