package livefleet

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/webmail"
)

// restartableShard is a snapshot-booted shard server that can be
// killed and rebooted on the same address — the in-process stand-in
// for SIGTERM-ing and restarting a webmaild shard process.
type restartableShard struct {
	t           *testing.T
	path        string
	part, parts int
	addr        string
	srv         *webmail.Server
	svc         *webmail.Service
	creds       []Credential
}

func newRestartableShard(t *testing.T, path string, part, parts int) *restartableShard {
	t.Helper()
	sh := &restartableShard{t: t, path: path, part: part, parts: parts}
	sh.boot("127.0.0.1:0")
	t.Cleanup(func() { sh.srv.Close() })
	return sh
}

func (sh *restartableShard) boot(addr string) {
	sh.t.Helper()
	svc, creds, err := BootService(sh.path, sh.part, sh.parts, svcConfig())
	if err != nil {
		sh.t.Fatal(err)
	}
	srv := webmail.NewServer(svc)
	// Rebinding the just-released port can briefly race the kernel;
	// retry within a short budget.
	var bound string
	for i := 0; ; i++ {
		bound, err = srv.Listen(addr)
		if err == nil {
			break
		}
		if i >= 100 {
			sh.t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	sh.svc, sh.creds, sh.srv = svc, creds, srv
	if sh.addr == "" {
		sh.addr = bound
	}
}

func (sh *restartableShard) stop() {
	sh.t.Helper()
	sh.srv.Close()
}

func (sh *restartableShard) restart() {
	sh.t.Helper()
	sh.boot(sh.addr)
	sh.t.Cleanup(func() { sh.srv.Close() })
}

// waitForShardState polls the router's stats until the shard reports
// the wanted liveness.
func waitForShardState(t *testing.T, r *Router, shard int, up bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if r.Stats().Shards[shard].Up == up {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("shard %d never became up=%v: %+v", shard, up, r.Stats().Shards[shard])
}

// TestRouterStalePooledConnRetriesFreshDial is the regression test for
// the stale-pool bug: a pooled connection whose shard restarted used
// to fail the next login with "webmail: shard unavailable" even though
// a fresh dial would succeed. The login path must retry exactly once
// on a fresh dial when the failed connection came from the pool.
func TestRouterStalePooledConnRetriesFreshDial(t *testing.T) {
	path := buildTestSnapshot(t, 4)
	sh := newRestartableShard(t, path, 0, 1)
	router, err := NewRouter(RouterConfig{
		Shards:   []string{sh.addr},
		PoolSize: 4,
		// Prober off: the stale connection must still be in the pool
		// when the second login checks it out.
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	// First login (wrong password) returns its backend connection to
	// the pool; together with Listen's probe connection the pool now
	// holds connections that predate the restart below.
	c1 := routerDial(t, raddr)
	bad := sh.creds[0]
	bad.Password = "wrong"
	if resp, err := c1.Do(loginReq(bad, "")); err != nil || resp.OK {
		t.Fatalf("wrong-password login: %v %+v", err, resp)
	}

	sh.stop()
	sh.restart()

	// Second login checks out a stale pooled connection; the retry on
	// a fresh dial must make it succeed transparently.
	c2 := routerDial(t, raddr)
	resp, err := c2.Do(loginReq(sh.creds[0], ""))
	if err != nil || !resp.OK {
		t.Fatalf("login after shard restart: %v %+v", err, resp)
	}
	if resp, err := c2.Do(webmail.Request{Op: "list", Folder: "inbox"}); err != nil || !resp.OK {
		t.Fatalf("list on retried session: %v %+v", err, resp)
	}
	if got := router.Stats().Shards[0].Retries; got < 1 {
		t.Fatalf("retries counter = %d, want >= 1", got)
	}
}

// TestRouterListenFailureDrainsPools is the regression test for the
// probe-connection leak: when net.Listen fails, the per-shard pools
// were already populated and must be drained on the error return.
func TestRouterListenFailureDrainsPools(t *testing.T) {
	path := buildTestSnapshot(t, 2)
	sh := newRestartableShard(t, path, 0, 1)
	// Occupy a port so the router's own listen must fail after its
	// shard probes succeeded.
	blocker, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	router, err := NewRouter(RouterConfig{Shards: []string{sh.addr}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := router.Listen(blocker.Addr().String()); err == nil {
		t.Fatal("listen on an occupied address succeeded")
	}
	for shard, pool := range router.pools {
		if n := len(pool); n != 0 {
			t.Fatalf("shard %d pool holds %d connections after failed listen", shard, n)
		}
	}
	if err := router.Close(); err != nil {
		t.Fatalf("close after failed listen: %v", err)
	}
}

// TestRouterDialBackoffGatesTrialDials: after a dial failure the shard
// is down and further logins fail fast with the distinct "shard down"
// error — no dial attempt, no timeout burned — until the backoff
// window admits a trial dial, which succeeds once the shard returns.
func TestRouterDialBackoffGatesTrialDials(t *testing.T) {
	path := buildTestSnapshot(t, 4)
	sh := newRestartableShard(t, path, 0, 1)
	router, err := NewRouter(RouterConfig{
		Shards:         []string{sh.addr},
		HealthInterval: -1, // dial outcomes alone drive the state
		DialBackoff:    500 * time.Millisecond,
		DialBackoffMax: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	sh.stop()

	// The pooled probe connection is stale; the retry's fresh dial
	// fails and marks the shard down.
	c1 := routerDial(t, raddr)
	resp, err := c1.Do(loginReq(sh.creds[0], ""))
	if err != nil || resp.OK {
		t.Fatalf("login against dead shard: %v %+v", err, resp)
	}
	if resp.Error != "webmail: shard unavailable" {
		t.Fatalf("first failure error = %q", resp.Error)
	}
	if up := router.Stats().Shards[0].Up; up {
		t.Fatal("shard still up after failed dial")
	}

	// Inside the backoff window: fail fast, distinctly, without dialing.
	dialsBefore := router.Stats().Shards[0].Dials
	c2 := routerDial(t, raddr)
	resp, err = c2.Do(loginReq(sh.creds[0], ""))
	if err != nil || resp.OK {
		t.Fatalf("login during backoff: %v %+v", err, resp)
	}
	if resp.Error != "webmail: shard down" {
		t.Fatalf("backoff error = %q, want webmail: shard down", resp.Error)
	}
	if got := router.Stats().Shards[0].Dials; got != dialsBefore {
		t.Fatalf("fast-fail still dialed: %d -> %d", dialsBefore, got)
	}

	// Once the shard returns, a trial dial is admitted after at most
	// one capped window and the shard flips back up.
	sh.restart()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c := routerDial(t, raddr)
		resp, err = c.Do(loginReq(sh.creds[0], ""))
		if err == nil && resp.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("login never recovered after restart: %v %+v", err, resp)
		}
		time.Sleep(50 * time.Millisecond)
	}
	st := router.Stats().Shards[0]
	if !st.Up || st.DownTransitions != 1 || st.UpTransitions != 1 {
		t.Fatalf("state after recovery: %+v", st)
	}
}

// TestRouterHealthProberFailover: the active prober flips a dead shard
// down (evicting its pool) without any client traffic, and flips it
// back up after the restart so new logins route normally.
func TestRouterHealthProberFailover(t *testing.T) {
	path := buildTestSnapshot(t, 4)
	sh := newRestartableShard(t, path, 0, 1)
	router, err := NewRouter(RouterConfig{
		Shards:         []string{sh.addr},
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		DialBackoff:    25 * time.Millisecond,
		DialBackoffMax: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	sh.stop()
	waitForShardState(t, router, 0, false)
	st := router.Stats().Shards[0]
	if st.DownTransitions != 1 {
		t.Fatalf("down transitions = %d, want 1", st.DownTransitions)
	}
	if st.Evictions < 1 {
		t.Fatalf("evictions = %d; the pooled probe connection should have been evicted", st.Evictions)
	}
	// A login to the down shard is refused as a down-shard rejection
	// (fast-fail or a failed trial dial, depending on window timing).
	c := routerDial(t, raddr)
	resp, err := c.Do(loginReq(sh.creds[0], ""))
	if err != nil || resp.OK {
		t.Fatalf("login to down shard: %v %+v", err, resp)
	}
	if !strings.HasPrefix(resp.Error, "webmail: shard") {
		t.Fatalf("down-shard error = %q", resp.Error)
	}

	sh.restart()
	waitForShardState(t, router, 0, true)
	c2 := routerDial(t, raddr)
	if resp, err := c2.Do(loginReq(sh.creds[0], "")); err != nil || !resp.OK {
		t.Fatalf("login after prober flipped shard up: %v %+v", err, resp)
	}
	st = router.Stats().Shards[0]
	if st.DownTransitions != 1 || st.UpTransitions != 1 {
		t.Fatalf("transitions after recovery: %+v", st)
	}
}

// TestLoadgenTolerateUnavailable: with one shard dead for the whole
// replay, tolerate-unavailable mode completes with zero protocol
// errors — every refusal for the dead shard's accounts is tallied as
// unavailable, while the surviving shard's traffic is fully accepted.
func TestLoadgenTolerateUnavailable(t *testing.T) {
	path := buildTestSnapshot(t, 12)
	const parts = 2
	svc0, creds0, err := BootService(path, 0, parts, svcConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv0 := webmail.NewServer(svc0)
	addr0, err := srv0.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv0.Close() })
	sh1 := newRestartableShard(t, path, 1, parts)
	router, err := NewRouter(RouterConfig{
		Shards:         []string{addr0, sh1.addr},
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		DialBackoff:    25 * time.Millisecond,
		DialBackoffMax: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	creds := append(append([]Credential{}, creds0...), sh1.creds...)
	cfg := testPlanConfig(creds)
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh1.stop()
	waitForShardState(t, router, 1, false)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stats, err := Run(ctx, RunConfig{
		Addr: raddr, Timeout: 10 * time.Second,
		TolerateUnavailable: true, Label: "chaos",
	}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 || stats.Timeouts != 0 {
		t.Fatalf("faults in tolerate mode: %d errors, %d timeouts", stats.Errors, stats.Timeouts)
	}
	if stats.Unavailable == 0 {
		t.Fatal("no unavailable tallies with a dead shard; the mode never engaged")
	}
	if stats.Rejected != 0 {
		t.Fatalf("%d rejections; surviving-shard traffic should be fully accepted", stats.Rejected)
	}
}
