// Package livefleet runs the webmail platform as a horizontally
// sharded network service: it boots each shard's account store from a
// v4 streaming snapshot (the snapshot is the state-distribution wire
// format), fronts the shards with a partition-aware router that pools
// backend connections and applies per-connection backpressure, and
// generates deterministic attacker-shaped load against the fleet over
// real sockets. The byte-identity contract — a scripted session
// produces the same journal and activity rows whether it drives the
// in-process webmail.Service or a socket-connected shard — is what
// lets every in-process result in this repo stand in for the live
// system (see parity_test.go).
package livefleet
