package livefleet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/webmail"
)

// RouterConfig parameterises a Router.
type RouterConfig struct {
	// Shards lists the backend webmaild addresses; index i serves
	// partition i of len(Shards). Required.
	Shards []string
	// PoolSize caps the spare pre-established connections kept per
	// shard (default 8). A session checkout that finds the pool empty
	// dials; a failed login returns its connection to the pool.
	PoolSize int
	// MaxInFlight bounds requests being proxied concurrently across
	// all clients (default 1024) — the router's backpressure valve:
	// excess requests queue in their connection's goroutine instead of
	// piling onto the shards.
	MaxInFlight int
	// WriteTimeout is the slow-client guard: a client that cannot
	// absorb its response within this window is dropped rather than
	// allowed to pin a backend connection (default 10s).
	WriteTimeout time.Duration
	// DialTimeout bounds backend dials (default 5s).
	DialTimeout time.Duration
	// HealthInterval is the per-shard health prober cadence: each tick
	// dials the shard and completes one ping round trip under
	// HealthTimeout, flipping the shard up or down accordingly. 0
	// selects the 1s default; a negative interval disables the prober,
	// leaving dial outcomes alone to drive the up/down state.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe, dial included (default 1s).
	HealthTimeout time.Duration
	// DialBackoff and DialBackoffMax shape the reconnect trickle for a
	// down shard: dials are admitted one per window, with the window
	// doubling (jittered) from DialBackoff up to DialBackoffMax until
	// a dial succeeds. Defaults 100ms and 5s.
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
}

func (c *RouterConfig) fill() error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("livefleet: router needs at least one shard")
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 8
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 100 * time.Millisecond
	}
	if c.DialBackoffMax <= 0 {
		c.DialBackoffMax = 5 * time.Second
	}
	return nil
}

// backendConn pairs a shard connection with its buffered reader so a
// pooled connection keeps its read state across checkouts.
type backendConn struct {
	c     net.Conn
	br    *bufio.Reader
	shard int
}

func (b *backendConn) Close() { b.c.Close() }

// Router fronts a sharded webmaild fleet. It speaks the same
// newline-JSON wire protocol as a single webmaild: clients connect,
// LOGIN binds the connection, mailbox ops follow. The router peeks
// only {op, account} from each frame — on login it hashes the account
// with webmail.PartitionIndex onto a shard, checks a pooled backend
// connection out, and on success pins it to the client connection for
// the session's lifetime (the protocol is session-oriented, so the
// binding cannot move mid-session). Everything else is forwarded
// verbatim, which is what keeps the parity contract byte-level.
type Router struct {
	cfg    RouterConfig
	pools  []chan *backendConn
	sem    chan struct{}
	health []shardHealth

	// stopProbes ends the per-shard health probers; closed exactly
	// once by whichever of Close/Drain runs first.
	stopProbes chan struct{}

	mu       sync.Mutex
	listener net.Listener
	conns    map[*routerConn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// routerConn tracks one client connection's drain state (same
// contract as webmail's srvConn).
type routerConn struct {
	net.Conn
	mu            sync.Mutex
	busy          bool
	closeWhenIdle bool
}

func (c *routerConn) beginRequest() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeWhenIdle {
		return false
	}
	c.busy = true
	return true
}

func (c *routerConn) endRequest() (quit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = false
	return c.closeWhenIdle
}

func (c *routerConn) drain() {
	c.mu.Lock()
	idle := !c.busy
	c.closeWhenIdle = true
	c.mu.Unlock()
	if idle {
		c.Close()
	}
}

// NewRouter validates the config and builds an unstarted router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := &Router{
		cfg:        cfg,
		pools:      make([]chan *backendConn, len(cfg.Shards)),
		sem:        make(chan struct{}, cfg.MaxInFlight),
		health:     make([]shardHealth, len(cfg.Shards)),
		stopProbes: make(chan struct{}),
		conns:      make(map[*routerConn]struct{}),
	}
	for i := range r.pools {
		r.pools[i] = make(chan *backendConn, cfg.PoolSize)
	}
	return r, nil
}

// Listen binds the router and starts accepting; it returns the bound
// address. Each shard is probed with one pooled dial first, so a
// misconfigured fleet fails here rather than on the first login.
func (r *Router) Listen(addr string) (string, error) {
	// Both error returns below must drain the pools: probe connections
	// established for earlier shards are already pooled, and a caller
	// that gives up on the error would otherwise leak them (and pin
	// the shards' connection slots) for the process lifetime.
	for shard := range r.cfg.Shards {
		bc, err := r.dial(shard)
		if err != nil {
			r.drainPools()
			return "", fmt.Errorf("livefleet: shard %d unreachable: %w", shard, err)
		}
		r.putBack(shard, bc)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		r.drainPools()
		return "", fmt.Errorf("livefleet: listen: %w", err)
	}
	r.mu.Lock()
	r.listener = ln
	r.mu.Unlock()
	r.wg.Add(1)
	go r.acceptLoop(ln)
	if r.cfg.HealthInterval > 0 {
		for shard := range r.cfg.Shards {
			r.wg.Add(1)
			go func(shard int) {
				defer r.wg.Done()
				r.probeLoop(shard)
			}(shard)
		}
	}
	return ln.Addr().String(), nil
}

func (r *Router) acceptLoop(ln net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		rc := &routerConn{Conn: conn}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.conns[rc] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.serve(rc)
			r.mu.Lock()
			delete(r.conns, rc)
			r.mu.Unlock()
		}()
	}
}

// dial opens one backend connection, subject to the shard's health
// state: a down shard admits one trial dial per backoff window and
// fails everything else fast with errShardDown — no dial timeout is
// burned on a shard the router already believes dead. Dial outcomes
// feed the same state back: failure marks the shard down (evicting
// its pool) and widens the window, success marks it up.
func (r *Router) dial(shard int) (*backendConn, error) {
	st := &r.health[shard]
	if !st.allowDial(time.Now()) {
		return nil, errShardDown
	}
	st.dials.Inc()
	c, err := net.DialTimeout("tcp", r.cfg.Shards[shard], r.cfg.DialTimeout)
	if err != nil {
		r.noteDialFailure(shard)
		return nil, err
	}
	r.noteDialSuccess(shard)
	return &backendConn{c: c, br: bufio.NewReader(c), shard: shard}, nil
}

// checkout returns a pooled connection to the shard or dials a fresh
// one; fromPool tells the login path whether a round-trip failure may
// be a stale pooled connection worth one retry on a fresh dial.
func (r *Router) checkout(shard int) (bc *backendConn, fromPool bool, err error) {
	select {
	case bc := <-r.pools[shard]:
		return bc, true, nil
	default:
	}
	bc, err = r.dial(shard)
	return bc, false, err
}

// putBack returns an unbound (never-logged-in) connection to its pool
// or closes it when the pool is full — or when the shard has since
// been marked down, so an eviction is never undone by an in-flight
// return.
func (r *Router) putBack(shard int, bc *backendConn) {
	if r.health[shard].down.Load() {
		bc.Close()
		return
	}
	select {
	case r.pools[shard] <- bc:
	default:
		bc.Close()
	}
}

// serve proxies one client connection. A bound backend connection is
// session state: it dies with the client connection, never returning
// to the pool (only never-logged-in connections are reusable).
func (r *Router) serve(rc *routerConn) {
	defer rc.Close()
	br := bufio.NewReader(rc)
	var backend *backendConn
	defer func() {
		if backend != nil {
			backend.Close()
		}
	}()
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return
		}
		if !rc.beginRequest() {
			return // draining: the request never started
		}
		ok := r.proxy(rc, &backend, line)
		if rc.endRequest() || !ok {
			return
		}
	}
}

// localError writes a router-originated error response; it reports
// whether the client accepted it in time.
func (r *Router) localError(rc *routerConn, msg string) bool {
	resp, _ := json.Marshal(webmail.Response{Error: msg})
	return r.relay(rc, append(resp, '\n'))
}

// relay writes one response frame under the slow-client deadline.
func (r *Router) relay(rc *routerConn, frame []byte) bool {
	rc.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
	_, err := rc.Conn.Write(frame)
	rc.SetWriteDeadline(time.Time{})
	return err == nil
}

// proxy handles one request frame; it reports whether the connection
// should keep being served.
func (r *Router) proxy(rc *routerConn, backend **backendConn, line []byte) bool {
	r.sem <- struct{}{} // backpressure: bounded in-flight requests
	defer func() { <-r.sem }()

	var peek struct {
		Op      string `json:"op"`
		Account string `json:"account"`
	}
	if err := json.Unmarshal(line, &peek); err != nil {
		// A malformed frame desyncs the stream; webmaild drops the
		// connection for these, so the router does too.
		return false
	}
	if *backend == nil && peek.Op != "login" {
		// Same wording as an unbound shard connection would produce —
		// pre-binding requests never cost a backend round trip.
		return r.localError(rc, "webmail: not logged in")
	}
	if peek.Op == "login" {
		shard := webmail.PartitionIndex(peek.Account, len(r.cfg.Shards))
		st := &r.health[shard]
		st.inflight.Enter()
		defer st.inflight.Exit()
		// A login aimed at the currently bound shard is forwarded on
		// the bound connection: the shard rebinds (or, on failure,
		// keeps) its session exactly like a single webmaild. A login
		// for a different shard runs on a checked-out connection, and
		// only a SUCCESS retires the old binding — a failed cross-shard
		// re-login must leave the previous session alive, matching the
		// single-process semantics.
		if old := *backend; old != nil && old.shard == shard {
			raw, err := forward(old, line)
			if err != nil {
				old.Close()
				*backend = nil
				r.localError(rc, "webmail: shard connection lost")
				return false
			}
			return r.relay(rc, raw)
		}
		bc, fromPool, err := r.checkout(shard)
		if err != nil {
			return r.localError(rc, dialErrorMessage(err))
		}
		ok, raw, err := roundTrip(bc, line)
		if err != nil && fromPool {
			// The pooled connection may predate a shard drain or
			// restart; one fresh dial distinguishes a stale pool from a
			// dead shard. Only this unbound login frame is ever
			// replayed — bound-session traffic is not known safe to
			// resend, so its failures stay fatal to the session.
			bc.Close()
			st.retries.Inc()
			var fresh *backendConn
			if fresh, err = r.dial(shard); err != nil {
				return r.localError(rc, dialErrorMessage(err))
			}
			bc = fresh
			ok, raw, err = roundTrip(bc, line)
		}
		if err != nil {
			bc.Close()
			return r.localError(rc, "webmail: shard unavailable")
		}
		if ok {
			if old := *backend; old != nil {
				old.Close() // the superseded session dies with its conn
			}
			*backend = bc
		} else {
			// Failed login on a never-bound connection: still clean,
			// back to the pool. Any previous binding stays in place.
			r.putBack(shard, bc)
		}
		return r.relay(rc, raw)
	}
	st := &r.health[(*backend).shard]
	st.inflight.Enter()
	defer st.inflight.Exit()
	raw, err := forward(*backend, line)
	if err != nil {
		// The bound session is gone; only this session dies — the
		// client must reconnect, while sessions pinned to other
		// backends (and to other connections on the same shard) are
		// untouched.
		(*backend).Close()
		*backend = nil
		r.localError(rc, "webmail: shard connection lost")
		return false
	}
	return r.relay(rc, raw)
}

// dialErrorMessage maps a checkout/dial failure to its client-visible
// error: a known-down shard fails distinctly so replay tooling can
// separate expected down-shard refusals from router faults.
func dialErrorMessage(err error) string {
	if errors.Is(err, errShardDown) {
		return errShardDown.Error()
	}
	return "webmail: shard unavailable"
}

// forward sends one frame and reads the raw single-line response
// (json.Encoder frames never contain raw newlines). The bound-session
// relay path never parses response bodies — a list reply is opaque
// bytes to the router.
func forward(bc *backendConn, line []byte) ([]byte, error) {
	if _, err := bc.c.Write(line); err != nil {
		return nil, err
	}
	return bc.br.ReadBytes('\n')
}

// roundTrip forwards one frame and additionally decodes the outcome
// bit — only login routing needs to know whether the shard accepted.
func roundTrip(bc *backendConn, line []byte) (ok bool, raw []byte, err error) {
	raw, err = forward(bc, line)
	if err != nil {
		return false, nil, err
	}
	var resp struct {
		OK bool `json:"ok"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return false, nil, err
	}
	return resp.OK, raw, nil
}

// Close stops the router and every connection immediately.
func (r *Router) Close() error {
	r.mu.Lock()
	wasClosed := r.closed
	r.closed = true
	ln := r.listener
	r.listener = nil
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	if !wasClosed {
		close(r.stopProbes)
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	r.wg.Wait()
	r.drainPools()
	return err
}

// Drain shuts the router down gracefully with the same contract as
// webmail.Server.Drain: no new connections, idle clients drop, each
// in-flight request finishes its response. On ctx expiry the
// straggler sockets are force-closed and ctx.Err() returned.
func (r *Router) Drain(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	ln := r.listener
	r.listener = nil
	conns := make([]*routerConn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	close(r.stopProbes)
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.drain()
	}
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		r.mu.Lock()
		for c := range r.conns {
			c.Close()
		}
		r.mu.Unlock()
		err = ctx.Err()
	}
	r.drainPools()
	return err
}

func (r *Router) drainPools() {
	for shard := range r.pools {
		r.evictPool(shard)
	}
}

// Shards returns the number of backend shards the router fronts.
func (r *Router) Shards() int { return len(r.cfg.Shards) }
