package livefleet

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/attacker"
)

func testPlanConfig(creds []Credential) PlanConfig {
	return PlanConfig{
		Seed:    42,
		Workers: 4,
		Visits:  6,
		Mailbox: 3,
		Creds:   creds,
		Mix:     MixFromPopulations(attacker.DefaultPopulations()),
	}
}

func testCreds(n int) []Credential {
	var creds []Credential
	for i := 0; i < n; i++ {
		creds = append(creds, Credential{
			Address:  testAddr(i),
			Password: testPw(i),
		})
	}
	return creds
}

func testAddr(i int) string { return "user" + pad3(i) + "@honeymail.example" }
func testPw(i int) string   { return "pw-" + pad3(i) }

func pad3(i int) string {
	s := []byte{'0', '0', '0'}
	for p := 2; p >= 0 && i > 0; p-- {
		s[p] = byte('0' + i%10)
		i /= 10
	}
	return string(s)
}

// TestBuildPlanDeterministic: the load schedule is a pure function of
// its config — same seed, same byte-identical plan.
func TestBuildPlanDeterministic(t *testing.T) {
	cfg := testPlanConfig(testCreds(12))
	p1, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same config produced different plans")
	}
	cfg.Seed = 43
	p3, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical plans")
	}
	if p1.Ops() == 0 {
		t.Fatal("plan is empty")
	}
}

// TestBuildPlanDisjointOwnership: no account appears in two workers'
// schedules — the property that makes plan-time password evolution
// race-free at run time.
func TestBuildPlanDisjointOwnership(t *testing.T) {
	plan, err := BuildPlan(testPlanConfig(testCreds(10)))
	if err != nil {
		t.Fatal(err)
	}
	owner := map[string]int{}
	for w, ops := range plan.Workers {
		for _, op := range ops {
			if prev, ok := owner[op.Account]; ok && prev != w {
				t.Fatalf("account %s scheduled by workers %d and %d", op.Account, prev, w)
			}
			owner[op.Account] = w
		}
	}
}

// TestBuildPlanPasswordEvolution: every login presents the password
// left by the most recent preceding chpass for that account (or the
// seed credential before any chpass).
func TestBuildPlanPasswordEvolution(t *testing.T) {
	cfg := testPlanConfig(testCreds(6))
	cfg.Mix.Hijacker = 1 // every visit ends in a password change
	cfg.Visits = 8
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed := map[string]string{}
	for _, c := range testCreds(6) {
		seed[c.Address] = c.Password
	}
	chpasses := 0
	for _, ops := range plan.Workers {
		current := map[string]string{}
		for _, op := range ops {
			switch op.Kind {
			case OpLogin:
				want, ok := current[op.Account]
				if !ok {
					want = seed[op.Account]
				}
				if op.Password != want {
					t.Fatalf("login for %s with %q, want %q", op.Account, op.Password, want)
				}
			case OpChpass:
				current[op.Account] = op.Password
				chpasses++
			}
		}
	}
	if chpasses == 0 {
		t.Fatal("hijacker mix produced no password changes")
	}
}

// TestMixFromPopulations: the blended mix sits inside the hull of the
// per-channel populations.
func TestMixFromPopulations(t *testing.T) {
	mix := MixFromPopulations(attacker.DefaultPopulations())
	if mix.GoldDigger <= 0 || mix.GoldDigger >= 1 {
		t.Fatalf("gold digger prob %v outside (0,1)", mix.GoldDigger)
	}
	if mix.Hijacker <= 0 || mix.Hijacker >= 1 {
		t.Fatalf("hijacker prob %v outside (0,1)", mix.Hijacker)
	}
	if mix.Spammer <= 0 || mix.Spammer >= 1 {
		t.Fatalf("spammer prob %v outside (0,1)", mix.Spammer)
	}
}

// TestLoadgenAgainstFleet: end-to-end — snapshot, two shards, router,
// deterministic plan, real sockets. Zero protocol errors, zero
// timeouts, zero rejections: the plan's password evolution and
// account routing both hold under concurrency.
func TestLoadgenAgainstFleet(t *testing.T) {
	raddr, creds := fleetFixture(t, 12, 2)
	cfg := testPlanConfig(creds)
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stats, err := Run(ctx, RunConfig{Addr: raddr, QPS: 0, Timeout: 10 * time.Second, Label: "test fleet"}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 || stats.Timeouts != 0 {
		t.Fatalf("faults under load: %d errors, %d timeouts", stats.Errors, stats.Timeouts)
	}
	if stats.Rejected != 0 {
		t.Fatalf("%d rejected requests; the plan should be fully accepted", stats.Rejected)
	}
	if stats.Requests != int64(plan.Ops()) {
		t.Fatalf("executed %d of %d planned requests", stats.Requests, plan.Ops())
	}
	if stats.Hist.Count() != stats.Requests {
		t.Fatalf("histogram holds %d samples for %d requests", stats.Hist.Count(), stats.Requests)
	}
	if stats.Hist.Quantile(0.99) <= 0 {
		t.Fatal("p99 is zero under real load")
	}
}

// TestLoadgenPacing: with a QPS target, the run takes at least the
// scheduled span (open-loop pacing really paces).
func TestLoadgenPacing(t *testing.T) {
	raddr, creds := fleetFixture(t, 4, 1)
	cfg := testPlanConfig(creds)
	cfg.Workers = 2
	cfg.Visits = 4
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := plan.Ops()
	const qps = 200.0
	start := time.Now()
	stats, err := Run(context.Background(), RunConfig{Addr: raddr, QPS: qps, Timeout: 10 * time.Second}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 {
		t.Fatalf("%d errors", stats.Errors)
	}
	// Expected span is ops/qps; allow generous slack below it since
	// per-worker schedules interleave, but a closed-loop burst would
	// finish orders of magnitude faster than half the target span.
	minSpan := time.Duration(float64(ops) / qps * 0.4 * float64(time.Second))
	if got := time.Since(start); got < minSpan {
		t.Fatalf("run finished in %v, pacing demands at least %v for %d ops", got, minSpan, ops)
	}
}

// TestRunRejectsEmptyPlan: guard rails.
func TestRunRejectsEmptyPlan(t *testing.T) {
	if _, err := Run(context.Background(), RunConfig{Addr: "127.0.0.1:1"}, &Plan{}); err == nil {
		t.Fatal("empty plan accepted")
	}
	if _, err := BuildPlan(PlanConfig{Workers: 1, Visits: 1}); err == nil {
		t.Fatal("plan without credentials accepted")
	}
}
