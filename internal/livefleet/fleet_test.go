package livefleet

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/snapshot"
	"repro/internal/webmail"
)

var parityEpoch = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

// buildTestSnapshot writes a small but realistic snapshot file:
// nAccounts mailboxes, each seeded with three messages.
func buildTestSnapshot(t *testing.T, nAccounts int) string {
	t.Helper()
	st := &snapshot.State{}
	base := parityEpoch.Add(-30 * 24 * time.Hour)
	for i := 0; i < nAccounts; i++ {
		addr := fmt.Sprintf("user%03d@honeymail.example", i)
		st.Accounts = append(st.Accounts, snapshot.Account{
			Address:  addr,
			Password: fmt.Sprintf("pw-%03d", i),
			Owner:    fmt.Sprintf("Owner %03d", i),
			SendFrom: addr,
			NextID:   4,
			Messages: []snapshot.Message{
				{ID: 1, Folder: "inbox", From: "bank@bank.example", To: addr,
					Subject: "Your statement and payment summary", Body: "wire transfer details inside",
					DateNS: base.UnixNano()},
				{ID: 2, Folder: "inbox", From: "friend@mail.example", To: addr,
					Subject: "family photos", Body: "see attached", DateNS: base.Add(24 * time.Hour).UnixNano(), Read: true},
				{ID: 3, Folder: "sent", From: addr, To: "friend@mail.example",
					Subject: "re: family photos", Body: "lovely", DateNS: base.Add(25 * time.Hour).UnixNano(), Read: true},
			},
		})
	}
	path := filepath.Join(t.TempDir(), "seed.snap")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func svcConfig() webmail.Config {
	return webmail.Config{Clock: simtime.NewClock(parityEpoch)}
}

func TestBootServicePartitioning(t *testing.T) {
	path := buildTestSnapshot(t, 20)
	const parts = 2
	seen := map[string]int{}
	for part := 0; part < parts; part++ {
		svc, creds, err := BootService(path, part, parts, svcConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range creds {
			if got := webmail.PartitionIndex(c.Address, parts); got != part {
				t.Fatalf("account %s restored on shard %d but hashes to %d", c.Address, part, got)
			}
			seen[c.Address]++
			if _, err := svc.Password(c.Address); err != nil {
				t.Fatalf("restored account %s not in service: %v", c.Address, err)
			}
			counts, err := svc.Counts(c.Address)
			if err != nil {
				t.Fatal(err)
			}
			if counts.Inbox != 2 || counts.Sent != 1 {
				t.Fatalf("account %s restored with counts %+v", c.Address, counts)
			}
		}
	}
	if len(seen) != 20 {
		t.Fatalf("shards restored %d distinct accounts, want 20", len(seen))
	}
	for addr, n := range seen {
		if n != 1 {
			t.Fatalf("account %s restored on %d shards", addr, n)
		}
	}
}

func TestBootServiceRejectsBadPartition(t *testing.T) {
	path := buildTestSnapshot(t, 1)
	if _, _, err := BootService(path, 2, 2, svcConfig()); err == nil {
		t.Fatal("partition out of range accepted")
	}
	if _, _, err := BootService(path, 0, 0, svcConfig()); err == nil {
		t.Fatal("zero parts accepted")
	}
}

// TestSplitSnapshotFile: splitting then booting each piece whole
// equals booting the original filtered — the state-distribution
// round trip.
func TestSplitSnapshotFile(t *testing.T) {
	path := buildTestSnapshot(t, 17)
	const parts = 3
	pattern := filepath.Join(t.TempDir(), "shard-%d.snap")
	paths, err := SplitSnapshotFile(path, parts, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != parts {
		t.Fatalf("got %d paths, want %d", len(paths), parts)
	}
	total := 0
	for part, p := range paths {
		_, whole, err := BootService(p, 0, 1, svcConfig())
		if err != nil {
			t.Fatalf("boot split %d: %v", part, err)
		}
		_, filtered, err := BootService(path, part, parts, svcConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(whole, filtered) {
			t.Fatalf("shard %d: split file creds %v != filtered boot creds %v", part, whole, filtered)
		}
		total += len(whole)
	}
	if total != 17 {
		t.Fatalf("split accounts total %d, want 17", total)
	}
}

func TestSplitSnapshotFileRejectsBadPattern(t *testing.T) {
	path := buildTestSnapshot(t, 1)
	if _, err := SplitSnapshotFile(path, 2, filepath.Join(t.TempDir(), "no-verb.snap")); err == nil {
		t.Fatal("pattern without a shard-number verb accepted")
	}
}

func TestCredentialsRoundTrip(t *testing.T) {
	creds := []Credential{
		{Address: "a@x.example", Password: "p1"},
		{Address: "b@x.example", Password: "p2"},
	}
	var buf strings.Builder
	if err := WriteCredentials(&buf, creds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCredentials(strings.NewReader("# leak file\n\n" + buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, creds) {
		t.Fatalf("round trip: %v != %v", got, creds)
	}
	if _, err := ReadCredentials(strings.NewReader("only-one-field\n")); err == nil {
		t.Fatal("bad line accepted")
	}
}
