package livefleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/snapshot"
	"repro/internal/webmail"
)

// Credential is one honey-account login the load generator replays.
type Credential struct {
	Address  string
	Password string
}

// WriteCredentials emits one "address password" line per credential —
// the leak-file format cmd/leakctl produces and cmd/loadgen consumes.
func WriteCredentials(w io.Writer, creds []Credential) error {
	bw := bufio.NewWriter(w)
	for _, c := range creds {
		if _, err := fmt.Fprintf(bw, "%s %s\n", c.Address, c.Password); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCredentials parses "address password" lines; blank lines and
// #-comments are skipped.
func ReadCredentials(r io.Reader) ([]Credential, error) {
	var out []Credential
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("livefleet: bad credential line %q", line)
		}
		out = append(out, Credential{Address: fields[0], Password: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("livefleet: read credentials: %w", err)
	}
	return out, nil
}

// exportFromSnapshot converts one snapshot account into the service's
// restore form.
func exportFromSnapshot(a *snapshot.Account) webmail.AccountExport {
	exp := webmail.AccountExport{
		Address:  a.Address,
		Password: a.Password,
		Owner:    a.Owner,
		SendFrom: a.SendFrom,
		NextID:   a.NextID,
	}
	for _, m := range a.Messages {
		exp.Messages = append(exp.Messages, webmail.MessageExport{
			ID: m.ID, Folder: m.Folder,
			From: m.From, To: m.To, Subject: m.Subject, Body: m.Body,
			Date: time.Unix(0, m.DateNS).UTC(),
			Read: m.Read, Starred: m.Starred,
			Labels: m.Labels,
		})
	}
	return exp
}

// BootService streams a snapshot file and restores into a fresh
// service exactly the accounts that webmail.PartitionIndex places on
// shard part of parts — the same placement the router uses, so a
// login routed to this shard always finds its account. It returns the
// service and the restored accounts' credentials, sorted by address
// (the shard's contribution to a fleet-wide leak file). parts == 1
// restores everything, which is how a single-process webmaild boots.
func BootService(path string, part, parts int, cfg webmail.Config) (*webmail.Service, []Credential, error) {
	if parts <= 0 {
		return nil, nil, fmt.Errorf("livefleet: parts must be positive, got %d", parts)
	}
	if part < 0 || part >= parts {
		return nil, nil, fmt.Errorf("livefleet: partition %d out of range [0,%d)", part, parts)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("livefleet: %w", err)
	}
	defer f.Close()
	dec, err := snapshot.NewDecoder(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, nil, err
	}
	svc := webmail.NewService(cfg)
	var creds []Credential
	var a snapshot.Account
	for {
		if err := dec.Next(&a); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, err
		}
		if webmail.PartitionIndex(a.Address, parts) != part {
			continue
		}
		exp := exportFromSnapshot(&a)
		if err := svc.RestoreAccountIn(webmail.PartitionIndex(a.Address, svc.Partitions()), exp); err != nil {
			return nil, nil, fmt.Errorf("livefleet: restore %s: %w", a.Address, err)
		}
		creds = append(creds, Credential{Address: a.Address, Password: a.Password})
	}
	sort.Slice(creds, func(i, j int) bool { return creds[i].Address < creds[j].Address })
	return svc, creds, nil
}

// SplitSnapshotFile shards one snapshot file into parts per-shard
// files named by pattern (which must contain one %d verb). Each output
// is a complete, self-verifying v4 snapshot holding only that shard's
// accounts, with the meta carried over verbatim — shipping shard i's
// file to shard i's host is the fleet's state-distribution step. Two
// streaming passes: the first counts accounts per shard (the encoder
// declares its count up front), the second routes them; neither holds
// more than one account in memory.
func SplitSnapshotFile(src string, parts int, pattern string) ([]string, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("livefleet: parts must be positive, got %d", parts)
	}
	if !strings.Contains(pattern, "%d") {
		return nil, fmt.Errorf("livefleet: pattern %q needs a %%d verb", pattern)
	}
	counts := make([]int, parts)
	err := scanSnapshot(src, func(a *snapshot.Account) error {
		counts[webmail.PartitionIndex(a.Address, parts)]++
		return nil
	})
	if err != nil {
		return nil, err
	}

	paths := make([]string, parts)
	files := make([]*os.File, parts)
	writers := make([]*bufio.Writer, parts)
	encs := make([]*snapshot.Encoder, parts)
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	f, err := os.Open(src)
	if err != nil {
		return nil, fmt.Errorf("livefleet: %w", err)
	}
	defer f.Close()
	dec, err := snapshot.NewDecoder(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	meta := *dec.Meta() // shallow copy; Accounts is nil in decoder meta
	for i := range encs {
		paths[i] = fmt.Sprintf(pattern, i)
		files[i], err = os.OpenFile(paths[i], os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("livefleet: %w", err)
		}
		writers[i] = bufio.NewWriterSize(files[i], 1<<20)
		st := meta
		encs[i], err = snapshot.NewEncoder(writers[i], &st, counts[i])
		if err != nil {
			return nil, err
		}
	}
	var a snapshot.Account
	for {
		if err := dec.Next(&a); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if err := encs[webmail.PartitionIndex(a.Address, parts)].WriteAccount(&a); err != nil {
			return nil, err
		}
	}
	for i := range encs {
		if err := encs[i].Close(); err != nil {
			return nil, err
		}
		if err := writers[i].Flush(); err != nil {
			return nil, fmt.Errorf("livefleet: %w", err)
		}
		if err := files[i].Close(); err != nil {
			files[i] = nil
			return nil, fmt.Errorf("livefleet: %w", err)
		}
		files[i] = nil
	}
	return paths, nil
}

// scanSnapshot streams every account of a snapshot file through visit.
func scanSnapshot(path string, visit func(*snapshot.Account) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("livefleet: %w", err)
	}
	defer f.Close()
	dec, err := snapshot.NewDecoder(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return err
	}
	var a snapshot.Account
	for {
		if err := dec.Next(&a); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := visit(&a); err != nil {
			return err
		}
	}
}
