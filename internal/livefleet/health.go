package livefleet

import (
	"bufio"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/report"
	"repro/internal/stats"
)

// errShardDown is the fast-fail verdict for a shard the router
// currently believes dead: the login never cost a dial attempt, let
// alone a dial timeout. Clients see the distinct "webmail: shard down"
// message so replay tooling can tell an expected down-shard refusal
// from a router fault.
var errShardDown = errors.New("webmail: shard down")

// shardHealth is the router's per-shard fault-tolerance state: the
// prober's up/down verdict, the jittered-exponential dial-backoff
// window that turns a reconnect stampede into a trickle, and the
// atomic counters Stats snapshots. The state machine is
// up → down (dial or probe failure; pool evicted, logins fail fast)
// → probing (one trial dial per backoff window, prober pings each
// interval) → up (any successful dial or probe; backoff resets).
type shardHealth struct {
	down atomic.Bool

	// mu guards the backoff window. nextDialAt is the earliest moment
	// the next trial dial may start while the shard is down; backoff
	// is the current window width.
	mu         sync.Mutex
	backoff    time.Duration
	nextDialAt time.Time

	dials     stats.Counter
	retries   stats.Counter
	evictions stats.Counter
	downs     stats.Counter
	ups       stats.Counter
	inflight  stats.Highwater
}

// allowDial reports whether a backend dial may start now. An up shard
// always dials; a down shard admits one trial per backoff window —
// the admitted caller advances the window so concurrent logins behind
// it keep failing fast until the trial's outcome moves the state.
func (st *shardHealth) allowDial(now time.Time) bool {
	if !st.down.Load() {
		return true
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if now.Before(st.nextDialAt) {
		return false
	}
	st.nextDialAt = now.Add(st.backoff)
	return true
}

// jitterBackoff spreads a backoff window over [d/2, d) so shards
// marked down at the same instant do not retry in lockstep.
func jitterBackoff(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half))
}

// noteDialFailure records a failed dial (or probe round trip): the
// backoff window doubles up to the cap, and an up shard transitions
// down — which evicts its pool, so no later login can check out a
// connection that predates the failure.
func (r *Router) noteDialFailure(shard int) {
	st := &r.health[shard]
	st.mu.Lock()
	if st.backoff <= 0 {
		st.backoff = r.cfg.DialBackoff
	} else {
		st.backoff = min(st.backoff*2, r.cfg.DialBackoffMax)
	}
	st.nextDialAt = time.Now().Add(jitterBackoff(st.backoff))
	st.mu.Unlock()
	if st.down.CompareAndSwap(false, true) {
		st.downs.Inc()
		st.evictions.Add(r.evictPool(shard))
	}
}

// noteDialSuccess records a successful dial (or probe round trip): a
// down shard transitions up and the backoff window resets.
func (r *Router) noteDialSuccess(shard int) {
	st := &r.health[shard]
	if st.down.CompareAndSwap(true, false) {
		st.ups.Inc()
	}
	st.mu.Lock()
	st.backoff = 0
	st.nextDialAt = time.Time{}
	st.mu.Unlock()
}

// evictPool closes every pooled connection to the shard and returns
// how many it closed. A putBack racing the eviction can strand one
// stale connection in the pool; the login path's retry-on-fresh-dial
// absorbs exactly that case.
func (r *Router) evictPool(shard int) int64 {
	var n int64
	for {
		select {
		case bc := <-r.pools[shard]:
			bc.Close()
			n++
		default:
			return n
		}
	}
}

// pingFrame is the health probe's request. The shard answers unknown
// ops with a one-line error frame without touching any account state,
// which makes it exactly as cheap as a dedicated ping op while
// requiring none: any response line proves the wire path end to end
// (accept, frame parse, respond), not merely that the port accepts.
var pingFrame = []byte("{\"op\":\"ping\"}\n")

// probeLoop pings one shard every HealthInterval until the router
// closes.
func (r *Router) probeLoop(shard int) {
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopProbes:
			return
		case <-t.C:
		}
		r.probe(shard)
	}
}

// probe performs one liveness round trip under HealthTimeout on a
// dedicated connection (never a pooled one, so a probe cannot steal
// or poison serving connections).
func (r *Router) probe(shard int) {
	st := &r.health[shard]
	st.dials.Inc()
	c, err := net.DialTimeout("tcp", r.cfg.Shards[shard], r.cfg.HealthTimeout)
	if err != nil {
		r.noteDialFailure(shard)
		return
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(r.cfg.HealthTimeout))
	if _, err := c.Write(pingFrame); err != nil {
		r.noteDialFailure(shard)
		return
	}
	if _, err := bufio.NewReader(c).ReadBytes('\n'); err != nil {
		r.noteDialFailure(shard)
		return
	}
	r.noteDialSuccess(shard)
}

// RouterStats is a point-in-time snapshot of the router's per-shard
// health state and fault counters, in shard order — what
// report.FleetHealth renders next to the serving-latency section.
type RouterStats struct {
	Shards []report.ShardHealth
}

// Stats snapshots the per-shard health counters. Counters are read
// individually with atomic loads; a snapshot taken under live traffic
// is internally consistent per counter, not across counters.
func (r *Router) Stats() RouterStats {
	out := RouterStats{Shards: make([]report.ShardHealth, len(r.health))}
	for i := range r.health {
		st := &r.health[i]
		out.Shards[i] = report.ShardHealth{
			Addr:              r.cfg.Shards[i],
			Up:                !st.down.Load(),
			Dials:             st.dials.Load(),
			Retries:           st.retries.Load(),
			Evictions:         st.evictions.Load(),
			DownTransitions:   st.downs.Load(),
			UpTransitions:     st.ups.Load(),
			InFlightHighwater: st.inflight.High(),
		}
	}
	return out
}
