package livefleet

import (
	"context"
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/webmail"
)

// The live/engine parity contract: a scripted attacker session must
// leave byte-identical observable state — journal events, activity
// rows, folder counts — whether it drives the in-process
// webmail.Service directly or a socket-connected webmaild shard
// (optionally through the partition router). Every in-process result
// in this repo stands in for the live system only as long as this
// holds.

// scriptStep is one attacker action, expressed as the wire request;
// the in-process driver derives its Session call from the same value.
type scriptStep struct {
	req webmail.Request
	// wantOK is the expected outcome on both sides; a mismatch on
	// either side fails the script run itself.
	wantOK bool
}

func parityEndpoint(ip string) netsim.Endpoint {
	ep := netsim.Endpoint{
		Addr:      netip.MustParseAddr(ip),
		City:      "Berlin",
		Country:   "DE",
		UserAgent: "Mozilla/5.0 (X11; Linux x86_64) parity/1",
	}
	ep.Point.Lat, ep.Point.Lon = 52.52, 13.405
	return ep
}

// parityScript is one attacker visit sequence against one account:
// login, triage, search, read, star, spam, activity check, password
// change, return visit with the new password and the same browser
// cookie, and a deletion. Cookies are explicit so both sides bind
// identical identities without consulting their cookie jars.
func parityScript(account, password string) []scriptStep {
	ep := parityEndpoint("203.0.113.7")
	login := func(pw, cookie string) webmail.Request {
		return webmail.Request{
			Op: "login", Account: account, Password: pw, Cookie: cookie,
			IP: ep.Addr.String(), City: ep.City, Country: ep.Country,
			Lat: ep.Point.Lat, Lon: ep.Point.Lon, UserAgent: ep.UserAgent,
		}
	}
	return []scriptStep{
		{req: login("wrong-password", "parity-c1"), wantOK: false},
		{req: login(password, "parity-c1"), wantOK: true},
		{req: webmail.Request{Op: "list", Folder: "inbox"}, wantOK: true},
		{req: webmail.Request{Op: "list", Folder: "inbox", Limit: 1}, wantOK: true},
		{req: webmail.Request{Op: "search", Query: "payment"}, wantOK: true},
		{req: webmail.Request{Op: "read", ID: 1}, wantOK: true},
		{req: webmail.Request{Op: "star", ID: 1}, wantOK: true},
		{req: webmail.Request{Op: "read", ID: 999}, wantOK: false},
		{req: webmail.Request{Op: "draft", To: "buyer@market.example", Subject: "creds for sale", Body: "fresh logs"}, wantOK: true},
		{req: webmail.Request{Op: "send", To: "user0001@victims.example", Subject: "Limited offer just for you", Body: "Click the link"}, wantOK: true},
		{req: webmail.Request{Op: "activity"}, wantOK: true},
		{req: webmail.Request{Op: "chpass", Password: "hijacked-1"}, wantOK: true},
		{req: login(password, "parity-c2"), wantOK: false}, // old password is dead
		{req: login("hijacked-1", "parity-c1"), wantOK: true},
		{req: webmail.Request{Op: "list", Folder: "sent"}, wantOK: true},
		{req: webmail.Request{Op: "delete", ID: 2}, wantOK: true},
	}
}

// driveInProcess replays the script through the Service/Session API —
// the path the simulation engine uses.
func driveInProcess(t *testing.T, svc *webmail.Service, steps []scriptStep) {
	t.Helper()
	var session *webmail.Session
	for i, st := range steps {
		req := st.req
		var err error
		if req.Op == "login" {
			ep := netsim.Endpoint{
				Addr: netip.MustParseAddr(req.IP), City: req.City, Country: req.Country,
				UserAgent: req.UserAgent,
			}
			ep.Point.Lat, ep.Point.Lon = req.Lat, req.Lon
			var se *webmail.Session
			se, err = svc.Login(req.Account, req.Password, req.Cookie, ep)
			if err == nil {
				session = se
			}
		} else if session == nil {
			t.Fatalf("step %d: script op %s before any login", i, req.Op)
		} else {
			switch req.Op {
			case "list":
				_, err = session.ListN(webmail.Folder(req.Folder), req.Limit)
			case "search":
				_, err = session.Search(req.Query)
			case "read":
				_, err = session.Read(req.ID)
			case "star":
				err = session.Star(req.ID)
			case "draft":
				_, err = session.CreateDraft(req.To, req.Subject, req.Body)
			case "send":
				_, err = session.Send(req.To, req.Subject, req.Body)
			case "chpass":
				err = session.ChangePassword(req.Password)
			case "activity":
				_, err = session.ActivityPage()
			case "delete":
				err = session.Delete(req.ID)
			default:
				t.Fatalf("step %d: unknown script op %s", i, req.Op)
			}
		}
		if ok := err == nil; ok != st.wantOK {
			t.Fatalf("in-process step %d (%s): ok=%v want %v (err=%v)", i, req.Op, ok, st.wantOK, err)
		}
	}
}

// driveWire replays the script over a socket. The wire protocol binds
// the session to the connection, so like the in-process driver the
// script continues on the same client across logins.
func driveWire(t *testing.T, addr string, steps []scriptStep) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client, err := webmail.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i, st := range steps {
		resp, err := client.Do(st.req)
		if err != nil {
			t.Fatalf("wire step %d (%s): transport error %v", i, st.req.Op, err)
		}
		if resp.OK != st.wantOK {
			t.Fatalf("wire step %d (%s): ok=%v want %v (error %q)", i, st.req.Op, resp.OK, st.wantOK, resp.Error)
		}
	}
}

// assertParity compares every observable the platform exposes about
// an account across two services.
func assertParity(t *testing.T, label string, ref, live *webmail.Service, account string) {
	t.Helper()
	refJ, liveJ := ref.Journal(account), live.Journal(account)
	if !reflect.DeepEqual(refJ, liveJ) {
		t.Fatalf("%s: journal diverges for %s:\nengine: %+v\nlive:   %+v", label, account, refJ, liveJ)
	}
	refAcc, refErr := ref.ActivityPage(account)
	liveAcc, liveErr := live.ActivityPage(account)
	if refErr != nil || liveErr != nil {
		t.Fatalf("%s: activity page errors: %v %v", label, refErr, liveErr)
	}
	if !reflect.DeepEqual(refAcc, liveAcc) {
		t.Fatalf("%s: activity rows diverge for %s:\nengine: %+v\nlive:   %+v", label, account, refAcc, liveAcc)
	}
	refC, err1 := ref.Counts(account)
	liveC, err2 := live.Counts(account)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: counts errors: %v %v", label, err1, err2)
	}
	if refC != liveC {
		t.Fatalf("%s: folder counts diverge for %s: engine %+v live %+v", label, account, refC, liveC)
	}
	refP, err1 := ref.Password(account)
	liveP, err2 := live.Password(account)
	if err1 != nil || err2 != nil || refP != liveP {
		t.Fatalf("%s: password diverges for %s: %q/%v vs %q/%v", label, account, refP, err1, liveP, err2)
	}
	refS, liveS := ref.SearchLog(account), live.SearchLog(account)
	if !reflect.DeepEqual(refS, liveS) {
		t.Fatalf("%s: search log diverges for %s: %v vs %v", label, account, refS, liveS)
	}
}

// TestParityEngineVsShard: the same snapshot boots an in-process
// reference and a socket-served shard; the same script runs against
// both; every observable matches.
func TestParityEngineVsShard(t *testing.T) {
	path := buildTestSnapshot(t, 4)
	ref, creds, err := BootService(path, 0, 1, svcConfig())
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := BootService(path, 0, 1, svcConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := webmail.NewServer(live)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	for _, c := range creds {
		steps := parityScript(c.Address, c.Password)
		driveInProcess(t, ref, steps)
		driveWire(t, addr, steps)
		assertParity(t, "direct shard", ref, live, c.Address)
	}
}

// TestParityEngineVsRoutedFleet: same contract, but the live side is
// a two-shard fleet behind the partition router, each shard booted
// from its slice of the same snapshot. The script must land on the
// right shard purely by account hash.
func TestParityEngineVsRoutedFleet(t *testing.T) {
	path := buildTestSnapshot(t, 8)
	const parts = 2
	ref, creds, err := BootService(path, 0, 1, svcConfig())
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*webmail.Service, parts)
	addrs := make([]string, parts)
	for i := 0; i < parts; i++ {
		svc, _, err := BootService(path, i, parts, svcConfig())
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = svc
		srv := webmail.NewServer(svc)
		addrs[i], err = srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
	}
	router, err := NewRouter(RouterConfig{Shards: addrs})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	covered := make([]bool, parts)
	for _, c := range creds {
		shard := webmail.PartitionIndex(c.Address, parts)
		covered[shard] = true
		steps := parityScript(c.Address, c.Password)
		driveInProcess(t, ref, steps)
		driveWire(t, raddr, steps)
		assertParity(t, fmt.Sprintf("routed shard %d", shard), ref, shards[shard], c.Address)
	}
	for shard, ok := range covered {
		if !ok {
			t.Fatalf("script never exercised shard %d; grow the fixture", shard)
		}
	}
}

// TestParityFailoverChaos: kill one shard of a routed fleet mid-session.
// The failover contract: sessions bound to the dead shard get exactly
// one "shard connection lost" error and then their connection closes;
// sessions on the surviving shard keep byte-identical parity with the
// in-process engine; logins to the dead shard are refused while it is
// down; and once the shard restarts from the same snapshot the prober
// flips it back up and fresh logins succeed.
func TestParityFailoverChaos(t *testing.T) {
	path := buildTestSnapshot(t, 8)
	const parts = 2
	ref, creds, err := BootService(path, 0, 1, svcConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc0, _, err := BootService(path, 0, parts, svcConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv0 := webmail.NewServer(svc0)
	addr0, err := srv0.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv0.Close() })
	sh1 := newRestartableShard(t, path, 1, parts)

	router, err := NewRouter(RouterConfig{
		Shards:         []string{addr0, sh1.addr},
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		DialBackoff:    25 * time.Millisecond,
		DialBackoffMax: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	var dead, surviving []Credential
	for _, c := range creds {
		if webmail.PartitionIndex(c.Address, parts) == 1 {
			dead = append(dead, c)
		} else {
			surviving = append(surviving, c)
		}
	}
	if len(dead) == 0 || len(surviving) == 0 {
		t.Fatalf("fixture does not cover both shards: %d dead, %d surviving", len(dead), len(surviving))
	}

	// Pin a live session per doomed-shard account.
	pinned := make([]*webmail.Client, len(dead))
	for i, c := range dead {
		cl := routerDial(t, raddr)
		if resp, err := cl.Do(loginReq(c, "chaos-pin")); err != nil || !resp.OK {
			t.Fatalf("pin login %s: %v %+v", c.Address, err, resp)
		}
		pinned[i] = cl
	}

	sh1.stop()

	// Each pinned session observes exactly one in-band error, then the
	// router closes its connection — no half-dead sessions linger.
	for i, cl := range pinned {
		resp, err := cl.Do(webmail.Request{Op: "list", Folder: "inbox"})
		if err != nil {
			t.Fatalf("pinned session %d: transport error before the in-band error: %v", i, err)
		}
		if resp.OK || resp.Error != "webmail: shard connection lost" {
			t.Fatalf("pinned session %d: got %+v, want shard connection lost", i, resp)
		}
		if _, err := cl.Do(webmail.Request{Op: "list", Folder: "inbox"}); err == nil {
			t.Fatalf("pinned session %d: connection still open after connection-lost error", i)
		}
	}

	// The outage must not perturb the surviving shard: full parity
	// scripts, byte-identical observables.
	for _, c := range surviving {
		steps := parityScript(c.Address, c.Password)
		driveInProcess(t, ref, steps)
		driveWire(t, raddr, steps)
		assertParity(t, "surviving shard during outage", ref, svc0, c.Address)
	}

	// Logins aimed at the dead shard are refused with a down-shard
	// rejection while it is out.
	waitForShardState(t, router, 1, false)
	cl := routerDial(t, raddr)
	resp, err := cl.Do(loginReq(dead[0], "chaos-down"))
	if err != nil || resp.OK {
		t.Fatalf("login to dead shard: %v %+v", err, resp)
	}
	if resp.Error != "webmail: shard down" && resp.Error != "webmail: shard unavailable" {
		t.Fatalf("dead-shard login error = %q", resp.Error)
	}

	// Restart on the same address from the same snapshot; the prober
	// flips the shard up and logins flow again.
	sh1.restart()
	waitForShardState(t, router, 1, true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl := routerDial(t, raddr)
		resp, err = cl.Do(loginReq(dead[0], "chaos-back"))
		if err == nil && resp.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("login never recovered after shard restart: %v %+v", err, resp)
		}
		time.Sleep(25 * time.Millisecond)
	}

	st := router.Stats().Shards
	if st[1].DownTransitions != 1 || st[1].UpTransitions != 1 {
		t.Fatalf("dead shard transitions: %+v, want exactly one down and one up", st[1])
	}
	if st[0].DownTransitions != 0 {
		t.Fatalf("surviving shard flapped: %+v", st[0])
	}
}
