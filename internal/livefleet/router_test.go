package livefleet

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/webmail"
)

// fleetFixture boots a parts-shard fleet behind a router from a fresh
// snapshot and returns the router address plus the credential list.
func fleetFixture(t *testing.T, accounts, parts int) (string, []Credential) {
	t.Helper()
	path := buildTestSnapshot(t, accounts)
	addrs := make([]string, parts)
	var creds []Credential
	for i := 0; i < parts; i++ {
		svc, cs, err := BootService(path, i, parts, svcConfig())
		if err != nil {
			t.Fatal(err)
		}
		creds = append(creds, cs...)
		srv := webmail.NewServer(svc)
		addrs[i], err = srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
	}
	router, err := NewRouter(RouterConfig{Shards: addrs, PoolSize: 4, MaxInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	return raddr, creds
}

func routerDial(t *testing.T, addr string) *webmail.Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := webmail.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func loginReq(c Credential, cookie string) webmail.Request {
	return webmail.Request{
		Op: "login", Account: c.Address, Password: c.Password, Cookie: cookie,
		IP: "203.0.113.9", City: "Berlin", Country: "DE", Lat: 52.52, Lon: 13.405,
		UserAgent: "router-test/1",
	}
}

// TestRouterPreBindRejectedLocally: a request before login is refused
// by the router itself with the same error a shard would produce.
func TestRouterPreBindRejectedLocally(t *testing.T) {
	raddr, creds := fleetFixture(t, 4, 2)
	c := routerDial(t, raddr)
	resp, err := c.Do(webmail.Request{Op: "list", Folder: "inbox"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "not logged in") {
		t.Fatalf("pre-bind list: %+v", resp)
	}
	// The connection survives the local rejection and can still log in.
	resp, err = c.Do(loginReq(creds[0], ""))
	if err != nil || !resp.OK {
		t.Fatalf("login after local rejection: %v %+v", err, resp)
	}
}

// TestRouterSessionFollowsAccount: every account is reachable through
// the router, and a full session (login → list → read) works wherever
// the account hashes.
func TestRouterSessionFollowsAccount(t *testing.T) {
	raddr, creds := fleetFixture(t, 8, 2)
	for _, cred := range creds {
		c := routerDial(t, raddr)
		resp, err := c.Do(loginReq(cred, ""))
		if err != nil || !resp.OK {
			t.Fatalf("login %s via router: %v %+v", cred.Address, err, resp)
		}
		resp, err = c.Do(webmail.Request{Op: "list", Folder: "inbox"})
		if err != nil || !resp.OK || len(resp.Messages) != 2 {
			t.Fatalf("list %s via router: %v %+v", cred.Address, err, resp)
		}
		resp, err = c.Do(webmail.Request{Op: "read", ID: 1})
		if err != nil || !resp.OK || resp.Message == nil {
			t.Fatalf("read %s via router: %v %+v", cred.Address, err, resp)
		}
	}
}

// TestRouterFailedLoginKeepsConnectionUsable: a wrong password is
// relayed as a normal rejection; the backend connection returns to
// the pool and the client can retry on the same connection.
func TestRouterFailedLoginKeepsConnectionUsable(t *testing.T) {
	raddr, creds := fleetFixture(t, 4, 2)
	c := routerDial(t, raddr)
	bad := creds[0]
	bad.Password = "wrong"
	resp, err := c.Do(loginReq(bad, ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("wrong password accepted")
	}
	resp, err = c.Do(loginReq(creds[0], ""))
	if err != nil || !resp.OK {
		t.Fatalf("retry login: %v %+v", err, resp)
	}
}

// TestRouterConcurrentClients: many clients with sessions pinned to
// both shards, all active at once under -race.
func TestRouterConcurrentClients(t *testing.T) {
	raddr, creds := fleetFixture(t, 12, 2)
	var wg sync.WaitGroup
	errs := make(chan error, len(creds)*2)
	for gi := 0; gi < 2; gi++ {
		for _, cred := range creds {
			wg.Add(1)
			go func(cred Credential, gi int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				defer cancel()
				c, err := webmail.Dial(ctx, raddr)
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				resp, err := c.Do(loginReq(cred, fmt.Sprintf("cc-%d-%s", gi, cred.Address)))
				if err != nil || !resp.OK {
					errs <- fmt.Errorf("login %s: %v %+v", cred.Address, err, resp)
					return
				}
				for i := 0; i < 20; i++ {
					resp, err = c.Do(webmail.Request{Op: "list", Folder: "inbox"})
					if err != nil || !resp.OK {
						errs <- fmt.Errorf("list %s: %v %+v", cred.Address, err, resp)
						return
					}
					resp, err = c.Do(webmail.Request{Op: "search", Query: "payment"})
					if err != nil || !resp.OK {
						errs <- fmt.Errorf("search %s: %v %+v", cred.Address, err, resp)
						return
					}
				}
			}(cred, gi)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRouterDrainFinishesInFlight mirrors the server drain contract
// at the router layer: draining refuses new connections but lets an
// established session complete its in-flight request.
func TestRouterDrainFinishesInFlight(t *testing.T) {
	path := buildTestSnapshot(t, 4)
	svc, creds, err := BootService(path, 0, 1, svcConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := webmail.NewServer(svc)
	saddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	router, err := NewRouter(RouterConfig{Shards: []string{saddr}})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	c := routerDial(t, raddr)
	if resp, err := c.Do(loginReq(creds[0], "")); err != nil || !resp.OK {
		t.Fatalf("login: %v %+v", err, resp)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := router.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// New connections are refused after drain.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Second)
	defer dcancel()
	if nc, err := webmail.Dial(dctx, raddr); err == nil {
		if _, err := nc.Do(webmail.Request{Op: "list"}); err == nil {
			t.Fatal("request on a drained router succeeded")
		}
		nc.Close()
	}
	// Draining again is a no-op.
	if err := router.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestRouterRejectsEmptyFleet: config validation.
func TestRouterRejectsEmptyFleet(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Fatal("router with no shards accepted")
	}
}
