// Package malnet simulates the paper's malware honeypot
// infrastructure (§3.2): a sandbox that repeatedly creates virtual
// machines, infects each with an information-stealing malware sample
// (Zeus and Corebot families), performs a scripted webmail login so
// the running malware captures the honey credential, exfiltrates the
// capture to the sample's command-and-control server, and destroys the
// VM after a bounded lifetime.
//
// Faithful details:
//
//   - Sample selection: before the experiment the authors ran a test
//     pass to keep only samples whose C&C servers were still alive;
//     SelectLive models that filter (dead-C&C samples capture but
//     never exfiltrate).
//   - Prudent practices (Rossow et al., §3.2/§3.4): VM network
//     bandwidth is capped, VM lifetime is bounded, and all mail-like
//     traffic from the sandbox is sinkholed. The sandbox enforces the
//     first two; the webmail platform's send-from override handles the
//     third.
//   - Hand-off: an exfiltrated credential belongs to one botmaster
//     (unlike public leaks, §4.3) until it is aggregated or resold —
//     the bursts of new activity the paper observed around day 30 and
//     day 100 after the leak. The sandbox reports exfiltration events;
//     the attacker engine models the botmaster and resale timing.
package malnet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// Family is a malware family name.
type Family string

// The families the paper deployed.
const (
	FamilyZeus    Family = "zeus"
	FamilyCorebot Family = "corebot"
)

// Sample is one malware binary in the registry.
type Sample struct {
	ID      string
	Family  Family
	C2Alive bool // whether its command-and-control still responds
}

// DefaultSamples returns a registry of Zeus and Corebot samples, some
// with dead C&C servers (to be filtered out by SelectLive, as the
// paper's pre-test did).
func DefaultSamples(src *rng.Source, n int) []Sample {
	if n <= 0 {
		n = 24
	}
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		fam := FamilyZeus
		if src.Bool(0.3) {
			fam = FamilyCorebot
		}
		out = append(out, Sample{
			ID:      fmt.Sprintf("%s-%04d", fam, i),
			Family:  fam,
			C2Alive: src.Bool(0.6),
		})
	}
	return out
}

// SelectLive keeps only samples whose C&C responded during the
// pre-experiment test pass.
func SelectLive(samples []Sample) []Sample {
	var out []Sample
	for _, s := range samples {
		if s.C2Alive {
			out = append(out, s)
		}
	}
	return out
}

// Credential is a honey username/password pair fed to an infected VM.
type Credential struct {
	Account  string
	Password string
}

// Exfiltration is one credential arriving at a C&C server.
type Exfiltration struct {
	Sample     Sample
	Credential Credential
	At         time.Time
}

// ExfilHandler consumes exfiltration events (the attacker engine's
// botmaster model).
type ExfilHandler func(e Exfiltration)

// CnC is a command-and-control server collecting stolen form data for
// one malware family/operator.
type CnC struct {
	mu    sync.Mutex
	seen  []Exfiltration
	alive bool
}

// NewCnC returns a C&C server; dead servers swallow nothing.
func NewCnC(alive bool) *CnC { return &CnC{alive: alive} }

// Receive stores an exfiltrated credential; returns false if the
// server is dead (sample talks into the void).
func (c *CnC) Receive(e Exfiltration) bool {
	if !c.alive {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen = append(c.seen, e)
	return true
}

// Stolen returns a copy of everything the server collected.
func (c *CnC) Stolen() []Exfiltration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Exfiltration, len(c.seen))
	copy(out, c.seen)
	return out
}

// SandboxConfig bounds the sandbox per prudent-practice guidance.
type SandboxConfig struct {
	// VMLifetime destroys each VM this long after creation. Zero
	// selects 30 minutes.
	VMLifetime time.Duration
	// LoginDelay is the timeout between infecting the VM and typing
	// the credential (letting the malware hook the browser first).
	// Zero selects 5 minutes.
	LoginDelay time.Duration
	// ExfilDelay is how long the malware takes to upload captured form
	// data to its C&C. Zero selects 2 minutes.
	ExfilDelay time.Duration
	// BandwidthKbps caps the VM's network interface (DoS prevention);
	// recorded for audit, not a behaviour knob in the simulation.
	BandwidthKbps int
}

func (c SandboxConfig) withDefaults() SandboxConfig {
	if c.VMLifetime <= 0 {
		c.VMLifetime = 30 * time.Minute
	}
	if c.LoginDelay <= 0 {
		c.LoginDelay = 5 * time.Minute
	}
	if c.ExfilDelay <= 0 {
		c.ExfilDelay = 2 * time.Minute
	}
	if c.BandwidthKbps <= 0 {
		c.BandwidthKbps = 256
	}
	return c
}

// VMState tracks a virtual machine's lifecycle.
type VMState int

const (
	VMCreated VMState = iota
	VMInfected
	VMLoggedIn
	VMDestroyed
)

// String returns the state label.
func (s VMState) String() string {
	switch s {
	case VMCreated:
		return "created"
	case VMInfected:
		return "infected"
	case VMLoggedIn:
		return "logged-in"
	case VMDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// VM is one sandbox virtual machine run.
type VM struct {
	ID         int
	Sample     Sample
	Credential Credential
	State      VMState
	CreatedAt  time.Time
	KilledAt   time.Time
}

// Sandbox drives the infect→login→exfiltrate→destroy cycle.
type Sandbox struct {
	cfg     SandboxConfig
	sched   *simtime.Scheduler
	cncs    map[string]*CnC // per sample ID
	handler ExfilHandler

	mu     sync.Mutex
	nextID int
	vms    []*VM
	exfils []Exfiltration
}

// NewSandbox builds a sandbox. handler receives every successful
// exfiltration (in addition to the per-sample C&C store).
func NewSandbox(cfg SandboxConfig, sched *simtime.Scheduler, handler ExfilHandler) *Sandbox {
	if sched == nil {
		panic("malnet: NewSandbox requires a scheduler")
	}
	return &Sandbox{
		cfg:     cfg.withDefaults(),
		sched:   sched,
		cncs:    make(map[string]*CnC),
		handler: handler,
	}
}

// Config returns the effective (defaulted) configuration.
func (sb *Sandbox) Config() SandboxConfig { return sb.cfg }

// RunVM schedules one full VM cycle for the given sample/credential:
// create now, infect immediately, log in after LoginDelay (exposing
// the credential to the malware), exfiltrate ExfilDelay later if the
// sample's C&C is alive, destroy at VMLifetime. It returns the VM
// handle for inspection.
func (sb *Sandbox) RunVM(sample Sample, cred Credential) *VM {
	sb.mu.Lock()
	sb.nextID++
	vm := &VM{ID: sb.nextID, Sample: sample, Credential: cred, State: VMCreated, CreatedAt: sb.sched.Now()}
	sb.vms = append(sb.vms, vm)
	cnc, ok := sb.cncs[sample.ID]
	if !ok {
		cnc = NewCnC(sample.C2Alive)
		sb.cncs[sample.ID] = cnc
	}
	sb.mu.Unlock()

	// Infection is immediate on boot.
	sb.setState(vm, VMInfected)

	sb.sched.After(sb.cfg.LoginDelay, "vm-login", func(now time.Time) {
		sb.mu.Lock()
		dead := vm.State == VMDestroyed
		sb.mu.Unlock()
		if dead {
			return
		}
		sb.setState(vm, VMLoggedIn)
		sb.sched.After(sb.cfg.ExfilDelay, "vm-exfil", func(now time.Time) {
			sb.mu.Lock()
			dead := vm.State == VMDestroyed
			sb.mu.Unlock()
			if dead {
				return
			}
			e := Exfiltration{Sample: sample, Credential: cred, At: now}
			if cnc.Receive(e) {
				sb.mu.Lock()
				sb.exfils = append(sb.exfils, e)
				handler := sb.handler
				sb.mu.Unlock()
				if handler != nil {
					handler(e)
				}
			}
		})
	})
	sb.sched.After(sb.cfg.VMLifetime, "vm-destroy", func(now time.Time) {
		sb.mu.Lock()
		vm.State = VMDestroyed
		vm.KilledAt = now
		sb.mu.Unlock()
	})
	return vm
}

// RunCampaign feeds each credential to one live sample in round-robin
// order, one VM per credential, staggered by the VM lifetime (a new VM
// is created as the previous one is torn down, as in the paper's
// rolling setup). It returns the VMs created.
func (sb *Sandbox) RunCampaign(samples []Sample, creds []Credential) []*VM {
	live := SelectLive(samples)
	if len(live) == 0 || len(creds) == 0 {
		return nil
	}
	out := make([]*VM, 0, len(creds))
	for i, cred := range creds {
		sample := live[i%len(live)]
		i := i
		cred := cred
		sb.sched.After(time.Duration(i)*sb.cfg.VMLifetime, "vm-cycle", func(time.Time) {
			vm := sb.RunVM(sample, cred)
			sb.mu.Lock()
			out = append(out, vm)
			sb.mu.Unlock()
		})
	}
	return out
}

// setState transitions a VM unless destroyed.
func (sb *Sandbox) setState(vm *VM, s VMState) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if vm.State != VMDestroyed {
		vm.State = s
	}
}

// Exfiltrations returns all successful exfiltrations, ordered by time.
func (sb *Sandbox) Exfiltrations() []Exfiltration {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	out := make([]Exfiltration, len(sb.exfils))
	copy(out, sb.exfils)
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// VMs returns the VM handles created so far.
func (sb *Sandbox) VMs() []*VM {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	out := make([]*VM, len(sb.vms))
	copy(out, sb.vms)
	return out
}

// CnCFor returns the C&C store of one sample.
func (sb *Sandbox) CnCFor(sampleID string) (*CnC, bool) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	c, ok := sb.cncs[sampleID]
	return c, ok
}
