package malnet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/simtime"
)

var epoch = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

func newSched() *simtime.Scheduler {
	return simtime.NewScheduler(simtime.NewClock(epoch))
}

func TestDefaultSamplesMix(t *testing.T) {
	samples := DefaultSamples(rng.New(1), 100)
	if len(samples) != 100 {
		t.Fatalf("samples = %d", len(samples))
	}
	fam := map[Family]int{}
	alive := 0
	for _, s := range samples {
		fam[s.Family]++
		if s.C2Alive {
			alive++
		}
		if s.ID == "" {
			t.Fatal("sample without ID")
		}
	}
	if fam[FamilyZeus] == 0 || fam[FamilyCorebot] == 0 {
		t.Fatalf("family mix = %v; want both zeus and corebot (§3.2)", fam)
	}
	if alive == 0 || alive == 100 {
		t.Fatalf("alive C&C = %d/100; want a mix so SelectLive matters", alive)
	}
}

func TestSelectLive(t *testing.T) {
	in := []Sample{{ID: "a", C2Alive: true}, {ID: "b"}, {ID: "c", C2Alive: true}}
	live := SelectLive(in)
	if len(live) != 2 || live[0].ID != "a" || live[1].ID != "c" {
		t.Fatalf("SelectLive = %+v", live)
	}
}

func TestVMCycleExfiltratesToLiveC2(t *testing.T) {
	sched := newSched()
	var mu sync.Mutex
	var got []Exfiltration
	sb := NewSandbox(SandboxConfig{}, sched, func(e Exfiltration) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, e)
	})
	sample := Sample{ID: "zeus-1", Family: FamilyZeus, C2Alive: true}
	cred := Credential{Account: "h1@honeymail.example", Password: "pw"}
	vm := sb.RunVM(sample, cred)
	if vm.State != VMInfected {
		t.Fatalf("state after boot = %v", vm.State)
	}
	sched.RunFor(time.Hour)
	if vm.State != VMDestroyed || vm.KilledAt.IsZero() {
		t.Fatalf("vm not destroyed: %+v", vm)
	}
	if len(got) != 1 || got[0].Credential != cred {
		t.Fatalf("exfils = %+v", got)
	}
	// Exfil happens LoginDelay+ExfilDelay after boot (5m + 2m defaults).
	if want := epoch.Add(7 * time.Minute); !got[0].At.Equal(want) {
		t.Fatalf("exfil at %v, want %v", got[0].At, want)
	}
	cnc, ok := sb.CnCFor("zeus-1")
	if !ok || len(cnc.Stolen()) != 1 {
		t.Fatal("C&C store missing the exfiltration")
	}
}

func TestDeadC2SwallowsNothing(t *testing.T) {
	sched := newSched()
	called := false
	sb := NewSandbox(SandboxConfig{}, sched, func(Exfiltration) { called = true })
	sb.RunVM(Sample{ID: "zeus-dead", Family: FamilyZeus, C2Alive: false}, Credential{Account: "h@x", Password: "p"})
	sched.RunFor(time.Hour)
	if called {
		t.Fatal("dead C&C delivered an exfiltration")
	}
	if got := len(sb.Exfiltrations()); got != 0 {
		t.Fatalf("exfils = %d", got)
	}
}

func TestVMDestroyedBeforeLoginCapturesNothing(t *testing.T) {
	sched := newSched()
	called := false
	// Lifetime shorter than the login delay: the VM dies before the
	// credential is ever typed.
	sb := NewSandbox(SandboxConfig{VMLifetime: 2 * time.Minute, LoginDelay: 5 * time.Minute}, sched,
		func(Exfiltration) { called = true })
	sb.RunVM(Sample{ID: "z", C2Alive: true}, Credential{Account: "h@x", Password: "p"})
	sched.RunFor(time.Hour)
	if called {
		t.Fatal("destroyed VM still exfiltrated")
	}
}

func TestRunCampaignRoundRobinOverLiveSamples(t *testing.T) {
	sched := newSched()
	var mu sync.Mutex
	var got []Exfiltration
	sb := NewSandbox(SandboxConfig{VMLifetime: 10 * time.Minute, LoginDelay: time.Minute, ExfilDelay: time.Minute}, sched,
		func(e Exfiltration) {
			mu.Lock()
			defer mu.Unlock()
			got = append(got, e)
		})
	samples := []Sample{
		{ID: "zeus-1", Family: FamilyZeus, C2Alive: true},
		{ID: "dead-1", Family: FamilyZeus, C2Alive: false},
		{ID: "core-1", Family: FamilyCorebot, C2Alive: true},
	}
	creds := make([]Credential, 6)
	for i := range creds {
		creds[i] = Credential{Account: string(rune('a'+i)) + "@honeymail.example", Password: "p"}
	}
	sb.RunCampaign(samples, creds)
	sched.RunFor(24 * time.Hour)
	// All 6 credentials reach a C&C: dead samples are filtered out by
	// the pre-test, so only live ones are used.
	if len(got) != 6 {
		t.Fatalf("exfils = %d, want 6", len(got))
	}
	bySample := map[string]int{}
	for _, e := range got {
		bySample[e.Sample.ID]++
	}
	if bySample["dead-1"] != 0 {
		t.Fatal("dead sample used in campaign")
	}
	if bySample["zeus-1"] != 3 || bySample["core-1"] != 3 {
		t.Fatalf("round robin mix = %v", bySample)
	}
	// Staggered: one VM per lifetime window.
	vms := sb.VMs()
	if len(vms) != 6 {
		t.Fatalf("vms = %d", len(vms))
	}
	for i := 1; i < len(vms); i++ {
		if gap := vms[i].CreatedAt.Sub(vms[i-1].CreatedAt); gap != 10*time.Minute {
			t.Fatalf("vm stagger = %v, want 10m", gap)
		}
	}
}

func TestRunCampaignNoLiveSamples(t *testing.T) {
	sched := newSched()
	sb := NewSandbox(SandboxConfig{}, sched, nil)
	if vms := sb.RunCampaign([]Sample{{ID: "dead", C2Alive: false}}, []Credential{{Account: "a@x"}}); vms != nil {
		t.Fatal("campaign with no live samples should be nil")
	}
}

func TestConfigDefaultsAndPrudentPractices(t *testing.T) {
	sb := NewSandbox(SandboxConfig{}, newSched(), nil)
	cfg := sb.Config()
	if cfg.VMLifetime != 30*time.Minute || cfg.LoginDelay != 5*time.Minute || cfg.ExfilDelay != 2*time.Minute {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.BandwidthKbps <= 0 {
		t.Fatal("bandwidth cap must default on (prudent practices)")
	}
}

func TestExfiltrationsSortedByTime(t *testing.T) {
	sched := newSched()
	sb := NewSandbox(SandboxConfig{VMLifetime: 10 * time.Minute, LoginDelay: time.Minute, ExfilDelay: time.Minute}, sched, nil)
	samples := []Sample{{ID: "s", C2Alive: true}}
	sb.RunCampaign(samples, []Credential{{Account: "a@x"}, {Account: "b@x"}, {Account: "c@x"}})
	sched.RunFor(2 * time.Hour)
	ex := sb.Exfiltrations()
	if len(ex) != 3 {
		t.Fatalf("exfils = %d", len(ex))
	}
	for i := 1; i < len(ex); i++ {
		if ex[i].At.Before(ex[i-1].At) {
			t.Fatal("exfiltrations not sorted")
		}
	}
}

func TestVMStateString(t *testing.T) {
	want := map[VMState]string{VMCreated: "created", VMInfected: "infected", VMLoggedIn: "logged-in", VMDestroyed: "destroyed"}
	for s, label := range want {
		if s.String() != label {
			t.Fatalf("%d.String() = %q", int(s), s.String())
		}
	}
	if VMState(9).String() == "" {
		t.Fatal("unknown state renders empty")
	}
}
