// Package core is the library's front door: it re-exports the
// honeynet experiment API (the paper's primary contribution — the
// honey-account deployment, instrumentation and monitoring framework)
// so downstream users depend on one import path while the
// implementation remains decomposed across internal packages.
//
// A minimal deployment:
//
//	exp, err := core.NewExperiment(core.Config{Seed: 42})
//	if err != nil { ... }
//	if err := exp.RunAll(); err != nil { ... }
//	ds := exp.Dataset() // feed to the analysis package
package core

import (
	"repro/internal/analysis"
	"repro/internal/honeynet"
)

// Config parameterises an experiment; see honeynet.Config.
type Config = honeynet.Config

// Experiment is a full honey-account deployment; see honeynet.Experiment.
type Experiment = honeynet.Experiment

// GroupSpec is one Table 1 block; see honeynet.GroupSpec.
type GroupSpec = honeynet.GroupSpec

// Assignment records the plan facts for one account.
type Assignment = honeynet.Assignment

// Dataset is the analysis-ready observation set.
type Dataset = analysis.Dataset

// NewExperiment constructs an experiment (Setup → Leak → Run, or
// RunAll).
func NewExperiment(cfg Config) (*Experiment, error) {
	return honeynet.New(cfg)
}

// Table1Plan returns the paper's exact deployment plan.
func Table1Plan() []GroupSpec { return honeynet.Table1Plan() }

// PaperGroupLabel returns the paper's Table 1 wording for a group.
func PaperGroupLabel(id int) string { return honeynet.PaperGroupLabel(id) }
