package core

import (
	"testing"
	"time"

	"repro/internal/analysis"
)

func TestFacadeRunsExperiment(t *testing.T) {
	exp, err := NewExperiment(Config{
		Seed: 3,
		Plan: []GroupSpec{
			{ID: 1, Count: 5, Channel: analysis.OutletPaste, Hint: analysis.HintNone, Label: "paste"},
		},
		Duration:       30 * 24 * time.Hour,
		MailboxSize:    15,
		ScanInterval:   time.Hour,
		ScrapeInterval: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.RunAll(); err != nil {
		t.Fatal(err)
	}
	var ds *Dataset = exp.Dataset()
	if ds == nil || ds.Contents.Accounts() != 5 {
		t.Fatalf("dataset = %+v", ds)
	}
}

func TestFacadePlanHelpers(t *testing.T) {
	if n := len(Table1Plan()); n == 0 {
		t.Fatal("empty plan")
	}
	if PaperGroupLabel(5) == "" || PaperGroupLabel(99) == "" {
		t.Fatal("labels must render for all ids")
	}
}
