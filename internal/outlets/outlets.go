package outlets

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Kind distinguishes outlet families.
type Kind int

const (
	// KindPaste is a public paste site (pastebin-style).
	KindPaste Kind = iota
	// KindForum is an open underground forum.
	KindForum
)

// String returns the outlet family label.
func (k Kind) String() string {
	switch k {
	case KindPaste:
		return "paste"
	case KindForum:
		return "forum"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Site describes one leak venue and its audience dynamics.
type Site struct {
	Name string
	Kind Kind
	// Russian marks the low-traffic Russian paste sites whose honey
	// accounts went untouched for over two months (§4.3).
	Russian bool

	// PickupMeanDays is the mean of the exponential inter-arrival gap
	// between successive pickups of one posted credential.
	PickupMeanDays float64
	// PickupDelayDays is a fixed floor before the first pickup can
	// happen (dominant for the Russian sites).
	PickupDelayDays float64
	// MeanPickups is the Poisson mean of how many distinct visitors
	// pick up each credential during the experiment.
	MeanPickups float64
	// InquiryRate is (forums only) the per-credential-post probability
	// of receiving a buyer inquiry message.
	InquiryRate float64
}

// DefaultSites returns the outlets used in the paper's deployment.
// Arrival parameters are calibrated so the Figure 3 shape holds: 80%
// of paste pickups within 25 days, ~60% of forum pickups within 25
// days, Russian paste sites silent for 2+ months.
func DefaultSites() []*Site {
	return []*Site{
		{Name: "pastebin.example", Kind: KindPaste, PickupMeanDays: 8, MeanPickups: 4.3},
		{Name: "pastie.example", Kind: KindPaste, PickupMeanDays: 10, MeanPickups: 3.8},
		{Name: "paste-ru-1.example", Kind: KindPaste, Russian: true, PickupMeanDays: 40, PickupDelayDays: 65, MeanPickups: 0.7},
		{Name: "paste-ru-2.example", Kind: KindPaste, Russian: true, PickupMeanDays: 45, PickupDelayDays: 70, MeanPickups: 0.6},
		{Name: "offensivecommunity.example", Kind: KindForum, PickupMeanDays: 16, MeanPickups: 2.9, InquiryRate: 0.25},
		{Name: "bestblackhatforums.example", Kind: KindForum, PickupMeanDays: 14, MeanPickups: 3.1, InquiryRate: 0.3},
		{Name: "hackforums.example", Kind: KindForum, PickupMeanDays: 12, MeanPickups: 3.3, InquiryRate: 0.35},
		{Name: "blackhatworld.example", Kind: KindForum, PickupMeanDays: 15, MeanPickups: 2.8, InquiryRate: 0.2},
	}
}

// LocationHint is the decoy owner information optionally included in a
// leak post (username+password only, or with a location near one of
// the two midpoints).
type LocationHint struct {
	// Region is "uk" or "us".
	Region string
	// Midpoint is the advertised-locations average (London or Pontiac).
	Midpoint geo.Point
	// City is the specific advertised town for this credential.
	City string
}

// Credential is one leaked username/password pair plus optional decoy
// personal information.
type Credential struct {
	Account  string
	Password string
	Owner    string // decoy full name
	Hint     *LocationHint
}

// Pickup is one cybercriminal finding a posted credential.
type Pickup struct {
	Site       *Site
	Credential Credential
	PostedAt   time.Time
	At         time.Time
}

// Inquiry is a buyer message received on a forum thread (logged, never
// answered, per the paper's protocol).
type Inquiry struct {
	Site    *Site
	At      time.Time
	From    string
	Message string
}

// PickupHandler consumes pickup events.
type PickupHandler func(p Pickup)

// Sink observes every credential at the instant it is picked up —
// the moment it verifiably enters criminal circulation. This is the
// C3 ingestion hook: a compromised-credential-checking index fed from
// here can only know what a breach-monitoring service could know,
// which is what makes the defender's time-to-detection a fair race
// against the attacker's time-to-exploit.
type Sink func(c Credential, site string, at time.Time)

// Outlet wraps a Site with its arrival process.
type Outlet struct {
	site  *Site
	sched *simtime.Scheduler
	src   *rng.Source
	sink  Sink

	mu        sync.Mutex
	posts     int
	pickups   int
	inquiries []Inquiry
}

// NewOutlet builds an outlet over a site definition.
func NewOutlet(site *Site, sched *simtime.Scheduler, src *rng.Source) *Outlet {
	if site == nil || sched == nil || src == nil {
		panic("outlets: NewOutlet requires site, scheduler and rng")
	}
	return &Outlet{site: site, sched: sched, src: src}
}

// Site returns the outlet's site definition.
func (o *Outlet) Site() *Site { return o.site }

// SetSink installs the pickup-time credential observer. Call before
// any Post; a nil sink disables observation. The sink runs inside
// pickup events on the outlet's scheduler and must not draw
// randomness — it is an observer, never an actor, so installing one
// cannot move any simulated outcome.
func (o *Outlet) SetSink(s Sink) { o.sink = s }

// Post publishes credentials on the outlet and schedules their future
// pickups, delivered via handler. It returns the number of pickups
// scheduled (useful for tests; real visitors are what matter).
func (o *Outlet) Post(creds []Credential, handler PickupHandler) int {
	if handler == nil {
		panic("outlets: Post requires a handler")
	}
	now := o.sched.Now()
	total := 0
	o.mu.Lock()
	o.posts++
	o.mu.Unlock()
	for _, cred := range creds {
		n := o.src.Poisson(o.site.MeanPickups)
		at := now.Add(time.Duration(o.site.PickupDelayDays * float64(24*time.Hour)))
		for i := 0; i < n; i++ {
			gap := o.src.Exponential(o.site.PickupMeanDays * float64(24*time.Hour))
			at = at.Add(time.Duration(gap))
			p := Pickup{Site: o.site, Credential: cred, PostedAt: now, At: at}
			o.sched.At(at, "pickup:"+o.site.Name, func(time.Time) {
				o.mu.Lock()
				o.pickups++
				o.mu.Unlock()
				if o.sink != nil {
					o.sink(p.Credential, o.site.Name, p.At)
				}
				handler(p)
			})
			total++
		}
		if o.site.Kind == KindForum && o.src.Bool(o.site.InquiryRate) {
			// A prospective buyer asks for the full dataset some days
			// after the teaser post (Stone-Gross et al.'s trade
			// pattern, which the leak posts mimicked).
			delay := time.Duration(o.src.Exponential(5 * float64(24*time.Hour)))
			o.sched.At(now.Add(delay), "inquiry:"+o.site.Name, func(at time.Time) {
				o.mu.Lock()
				defer o.mu.Unlock()
				o.inquiries = append(o.inquiries, Inquiry{
					Site: o.site, At: at,
					From:    fmt.Sprintf("buyer%d@%s", len(o.inquiries)+1, o.site.Name),
					Message: "Interested in the full dump. How many accounts total and what is the price?",
				})
			})
		}
	}
	return total
}

// Inquiries returns the buyer messages logged so far.
func (o *Outlet) Inquiries() []Inquiry {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Inquiry, len(o.inquiries))
	copy(out, o.inquiries)
	return out
}

// Stats reports post/pickup counters.
func (o *Outlet) Stats() (posts, pickups int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.posts, o.pickups
}

// Registry holds the configured outlets by name.
type Registry struct {
	outlets map[string]*Outlet
}

// NewRegistry instantiates outlets for all sites.
func NewRegistry(sites []*Site, sched *simtime.Scheduler, src *rng.Source) *Registry {
	r := &Registry{outlets: make(map[string]*Outlet, len(sites))}
	for _, s := range sites {
		r.outlets[s.Name] = NewOutlet(s, sched, src.ForkNamed("outlet:"+s.Name))
	}
	return r
}

// Get returns an outlet by name.
func (r *Registry) Get(name string) (*Outlet, bool) {
	o, ok := r.outlets[name]
	return o, ok
}

// SetSink installs one pickup-time credential observer on every
// outlet in the registry.
func (r *Registry) SetSink(s Sink) {
	for _, o := range r.outlets {
		o.SetSink(s)
	}
}

// ByKind returns outlets of one family, sorted by name. Russian paste
// sites are included when russian is true, excluded otherwise.
func (r *Registry) ByKind(kind Kind, russian bool) []*Outlet {
	var out []*Outlet
	for _, o := range r.outlets {
		if o.site.Kind == kind && o.site.Russian == russian {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].site.Name < out[j].site.Name })
	return out
}

// AllInquiries gathers inquiries across every outlet.
func (r *Registry) AllInquiries() []Inquiry {
	var out []Inquiry
	names := make([]string, 0, len(r.outlets))
	for n := range r.outlets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, r.outlets[n].Inquiries()...)
	}
	return out
}
