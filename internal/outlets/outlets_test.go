package outlets

import (
	"sync"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/simtime"
)

var epoch = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

func newSched() *simtime.Scheduler {
	return simtime.NewScheduler(simtime.NewClock(epoch))
}

func creds(n int) []Credential {
	out := make([]Credential, n)
	for i := range out {
		out[i] = Credential{Account: "h" + string(rune('a'+i)) + "@honeymail.example", Password: "pw"}
	}
	return out
}

func TestDefaultSitesMatchTable1Venues(t *testing.T) {
	sites := DefaultSites()
	var paste, russian, forum int
	for _, s := range sites {
		switch {
		case s.Kind == KindPaste && s.Russian:
			russian++
		case s.Kind == KindPaste:
			paste++
		case s.Kind == KindForum:
			forum++
		}
	}
	if paste != 2 || russian != 2 || forum != 4 {
		t.Fatalf("site mix = %d popular paste, %d russian paste, %d forums; want 2/2/4 (§3.2)", paste, russian, forum)
	}
}

func TestPostSchedulesPickups(t *testing.T) {
	sched := newSched()
	o := NewOutlet(&Site{Name: "p", Kind: KindPaste, PickupMeanDays: 2, MeanPickups: 3}, sched, rng.New(1))
	var mu sync.Mutex
	var got []Pickup
	n := o.Post(creds(10), func(p Pickup) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, p)
	})
	if n == 0 {
		t.Fatal("no pickups scheduled")
	}
	sched.RunFor(210 * 24 * time.Hour)
	if len(got) != n {
		t.Fatalf("delivered %d of %d pickups", len(got), n)
	}
	for _, p := range got {
		if p.At.Before(p.PostedAt) {
			t.Fatal("pickup before post")
		}
		if p.Site.Name != "p" {
			t.Fatalf("wrong site %q", p.Site.Name)
		}
	}
	_, pickups := o.Stats()
	if pickups != n {
		t.Fatalf("stats pickups = %d, want %d", pickups, n)
	}
}

func TestRussianPasteDelayedPickups(t *testing.T) {
	sched := newSched()
	site := &Site{Name: "ru", Kind: KindPaste, Russian: true, PickupMeanDays: 40, PickupDelayDays: 65, MeanPickups: 1}
	o := NewOutlet(site, sched, rng.New(2))
	var first time.Time
	var mu sync.Mutex
	o.Post(creds(20), func(p Pickup) {
		mu.Lock()
		defer mu.Unlock()
		if first.IsZero() || p.At.Before(first) {
			first = p.At
		}
	})
	sched.RunFor(210 * 24 * time.Hour)
	if first.IsZero() {
		t.Skip("no pickups drawn for this seed")
	}
	if gap := first.Sub(epoch); gap < 60*24*time.Hour {
		t.Fatalf("first russian pickup after %v, want > 2 months (§4.3)", gap)
	}
}

func TestPasteFasterThanForum(t *testing.T) {
	// Figure 3: paste pickups concentrate earlier than forum pickups.
	within25 := func(site *Site, seed int64) float64 {
		sched := newSched()
		o := NewOutlet(site, sched, rng.New(seed))
		var mu sync.Mutex
		var times []time.Time
		o.Post(creds(25), func(p Pickup) {
			mu.Lock()
			defer mu.Unlock()
			times = append(times, p.At)
		})
		sched.RunFor(210 * 24 * time.Hour)
		if len(times) == 0 {
			return 0
		}
		n := 0
		for _, at := range times {
			if at.Sub(epoch) <= 25*24*time.Hour {
				n++
			}
		}
		return float64(n) / float64(len(times))
	}
	paste := within25(&Site{Name: "p", Kind: KindPaste, PickupMeanDays: 8, MeanPickups: 2.4}, 3)
	forum := within25(&Site{Name: "f", Kind: KindForum, PickupMeanDays: 14, MeanPickups: 1.6}, 3)
	if paste <= forum {
		t.Fatalf("paste within-25d share %.2f <= forum %.2f; want paste faster", paste, forum)
	}
}

func TestForumInquiries(t *testing.T) {
	sched := newSched()
	o := NewOutlet(&Site{Name: "f", Kind: KindForum, PickupMeanDays: 10, MeanPickups: 1, InquiryRate: 1}, sched, rng.New(4))
	o.Post(creds(5), func(Pickup) {})
	sched.RunFor(210 * 24 * time.Hour)
	inq := o.Inquiries()
	if len(inq) != 5 {
		t.Fatalf("inquiries = %d, want 5 at rate 1", len(inq))
	}
	for _, q := range inq {
		if q.From == "" || q.Message == "" || q.Site.Name != "f" {
			t.Fatalf("malformed inquiry %+v", q)
		}
	}
}

func TestPasteSitesNeverInquire(t *testing.T) {
	sched := newSched()
	o := NewOutlet(&Site{Name: "p", Kind: KindPaste, PickupMeanDays: 5, MeanPickups: 2, InquiryRate: 1}, sched, rng.New(5))
	o.Post(creds(10), func(Pickup) {})
	sched.RunFor(210 * 24 * time.Hour)
	if got := len(o.Inquiries()); got != 0 {
		t.Fatalf("paste outlet produced %d inquiries", got)
	}
}

func TestRegistry(t *testing.T) {
	sched := newSched()
	r := NewRegistry(DefaultSites(), sched, rng.New(6))
	if _, ok := r.Get("pastebin.example"); !ok {
		t.Fatal("pastebin.example missing")
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("unknown outlet found")
	}
	if got := len(r.ByKind(KindPaste, false)); got != 2 {
		t.Fatalf("popular paste outlets = %d", got)
	}
	if got := len(r.ByKind(KindPaste, true)); got != 2 {
		t.Fatalf("russian paste outlets = %d", got)
	}
	if got := len(r.ByKind(KindForum, false)); got != 4 {
		t.Fatalf("forums = %d", got)
	}
}

func TestRegistryDeterministicAcrossDrawOrder(t *testing.T) {
	// ForkNamed streams mean outlet behaviour does not depend on map
	// iteration order of registry construction.
	run := func() []time.Time {
		sched := newSched()
		r := NewRegistry(DefaultSites(), sched, rng.New(7))
		o, _ := r.Get("hackforums.example")
		var mu sync.Mutex
		var times []time.Time
		o.Post(creds(10), func(p Pickup) {
			mu.Lock()
			defer mu.Unlock()
			times = append(times, p.At)
		})
		sched.RunFor(210 * 24 * time.Hour)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d pickups", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("pickup times not reproducible")
		}
	}
}

func TestPostNilHandlerPanics(t *testing.T) {
	sched := newSched()
	o := NewOutlet(&Site{Name: "p", Kind: KindPaste, PickupMeanDays: 5, MeanPickups: 1}, sched, rng.New(8))
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler accepted")
		}
	}()
	o.Post(creds(1), nil)
}

func TestKindString(t *testing.T) {
	if KindPaste.String() != "paste" || KindForum.String() != "forum" {
		t.Fatal("kind labels changed")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}
