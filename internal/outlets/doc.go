// Package outlets simulates the venues where honey credentials were
// leaked. Paper-section map:
//
//   - §3.2 (leaking account credentials): public paste sites
//     (including two Russian ones) and open underground forums — the
//     channels of Table 1's groups. An outlet's job in the ecosystem
//     is to control WHO finds a leaked credential and WHEN.
//   - §4.3 (Figures 3 and 4): time-to-first-access and the access
//     timeline are entirely shaped by these pickup processes.
//   - §3.2 / §4.7: the forum-specific side channel of inquiry
//     messages from prospective buyers (the authors logged inquiries
//     "about obtaining the full dataset, but we did not follow up").
//
// Pickup events are delivered to a callback; the attacker engine
// turns each pickup into one cybercriminal's sessions on the account.
package outlets
