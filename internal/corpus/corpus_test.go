package corpus

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

var (
	winStart = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	winEnd   = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
)

func newGen(seed int64) *Generator {
	return NewGenerator(rng.New(seed), DefaultConfig())
}

func TestNewPersonasDistinctEmails(t *testing.T) {
	ps := NewPersonas(rng.New(1), 100, "example.com")
	if len(ps) != 100 {
		t.Fatalf("got %d personas", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Email] {
			t.Fatalf("duplicate email %q", p.Email)
		}
		seen[p.Email] = true
		if p.First == "" || p.Last == "" || !strings.Contains(p.Email, "@") {
			t.Fatalf("malformed persona %+v", p)
		}
	}
}

func TestPersonaHelpers(t *testing.T) {
	p := Persona{First: "Ada", Last: "Lovelace", Email: "ada.lovelace@example.com"}
	if p.FullName() != "Ada Lovelace" {
		t.Fatalf("FullName = %q", p.FullName())
	}
	if p.Handle() != "ada.lovelace" {
		t.Fatalf("Handle = %q", p.Handle())
	}
	if (Persona{Email: "nodomain"}).Handle() != "nodomain" {
		t.Fatal("Handle without @ should return whole string")
	}
}

func TestMailboxBasics(t *testing.T) {
	g := newGen(2)
	owner := NewPersonas(rng.New(3), 1, "honeymail.example")[0]
	msgs := g.Mailbox(owner, 50, winStart, winEnd)
	if len(msgs) != 50 {
		t.Fatalf("got %d messages", len(msgs))
	}
	for i, m := range msgs {
		if m.Date.Before(winStart) || !m.Date.Before(winEnd) {
			t.Fatalf("message %d date %v outside window", i, m.Date)
		}
		if i > 0 && m.Date.Before(msgs[i-1].Date) {
			t.Fatal("mailbox not chronological")
		}
		if m.Subject == "" || m.Body == "" {
			t.Fatalf("message %d empty subject/body", i)
		}
		if m.From != owner.Email && m.To != owner.Email {
			t.Fatalf("message %d does not involve owner: %s -> %s", i, m.From, m.To)
		}
		if strings.Contains(m.Subject, "{") || strings.Contains(m.Body, "{") {
			t.Fatalf("unfilled slot in message %d: %q / %q", i, m.Subject, m.Body)
		}
	}
}

func TestMailboxMixesSentAndReceived(t *testing.T) {
	g := newGen(4)
	owner := NewPersonas(rng.New(5), 1, "honeymail.example")[0]
	msgs := g.Mailbox(owner, 200, winStart, winEnd)
	sent := 0
	for _, m := range msgs {
		if m.From == owner.Email {
			sent++
		}
	}
	if sent < 20 || sent > 80 {
		t.Fatalf("sent share = %d/200, want roughly a fifth", sent)
	}
}

func TestMailboxCompanySubstitution(t *testing.T) {
	g := newGen(6)
	owner := NewPersonas(rng.New(7), 1, "honeymail.example")[0]
	msgs := g.Mailbox(owner, 30, winStart, winEnd)
	found := false
	for _, m := range msgs {
		if strings.Contains(m.Body, "Enron") {
			t.Fatal("original company name leaked into corpus")
		}
		if strings.Contains(m.Body, g.Company()) {
			found = true
		}
	}
	if !found {
		t.Fatal("fictitious company name never appears")
	}
}

func TestMailboxDeterministicBySeed(t *testing.T) {
	owner := NewPersonas(rng.New(8), 1, "honeymail.example")[0]
	a := newGen(42).Mailbox(owner, 20, winStart, winEnd)
	b := newGen(42).Mailbox(owner, 20, winStart, winEnd)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
	}
}

func TestMailboxValidation(t *testing.T) {
	g := newGen(9)
	owner := NewPersonas(rng.New(10), 1, "honeymail.example")[0]
	if got := g.Mailbox(owner, 0, winStart, winEnd); got != nil {
		t.Fatal("n=0 should produce nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("end<=start did not panic")
		}
	}()
	g.Mailbox(owner, 1, winEnd, winStart)
}

func TestCorpusVocabularyProfile(t *testing.T) {
	// The corpus must be rich in the Table 2 right-column words so the
	// TF-IDF reproduction has the paper's baseline profile.
	g := newGen(11)
	owner := NewPersonas(rng.New(12), 1, "honeymail.example")[0]
	msgs := g.Mailbox(owner, 300, winStart, winEnd)
	counts := TermCounts(TokenizeMessages(msgs, DefaultTokenizeOptions()))
	for _, w := range []string{"transfer", "please", "original", "company", "would", "energy", "information", "about", "email", "power"} {
		if counts[w] == 0 {
			t.Errorf("corpus lacks expected frequent word %q", w)
		}
	}
	if counts["bitcoin"] != 0 {
		t.Error("seed corpus must not contain 'bitcoin' (it enters only via attacker drafts, §4.6)")
	}
}

func TestTokenizeMinLength(t *testing.T) {
	toks := Tokenize("The quick brown foxes jumped over lazy dogs", DefaultTokenizeOptions())
	for _, tok := range toks {
		if len(tok) < 5 {
			t.Fatalf("token %q shorter than 5 chars survived", tok)
		}
	}
	want := map[string]bool{"quick": true, "brown": true, "foxes": true, "jumped": true}
	for _, tok := range toks {
		delete(want, tok)
	}
	if len(want) != 0 {
		t.Fatalf("missing tokens: %v (got %v)", want, toks)
	}
}

func TestTokenizeLowercasesAndSplits(t *testing.T) {
	toks := Tokenize("Transfer,TRANSFER;transfer!", TokenizeOptions{MinLength: 1})
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	for _, tok := range toks {
		if tok != "transfer" {
			t.Fatalf("token %q not lowercased", tok)
		}
	}
}

func TestTokenizeHeaderWordFilter(t *testing.T) {
	toks := Tokenize("delivered charset payment", DefaultTokenizeOptions())
	if len(toks) != 1 || toks[0] != "payment" {
		t.Fatalf("header filter failed: %v", toks)
	}
	kept := Tokenize("delivered charset payment", TokenizeOptions{MinLength: 5, KeepHeaderWords: true})
	if len(kept) != 3 {
		t.Fatalf("KeepHeaderWords failed: %v", kept)
	}
}

func TestTokenizeDropWords(t *testing.T) {
	opts := DefaultTokenizeOptions()
	opts.DropWords = map[string]bool{"secret": true}
	toks := Tokenize("secret payment secret", opts)
	if len(toks) != 1 || toks[0] != "payment" {
		t.Fatalf("DropWords failed: %v", toks)
	}
}

func TestTokenizeZeroMinLength(t *testing.T) {
	toks := Tokenize("a bc", TokenizeOptions{})
	if len(toks) != 2 {
		t.Fatalf("MinLength<=0 should default to 1: %v", toks)
	}
}

func TestVocabularyOrderAndUniq(t *testing.T) {
	v := Vocabulary([]string{"b", "a", "b", "c", "a"})
	if len(v) != 3 || v[0] != "b" || v[1] != "a" || v[2] != "c" {
		t.Fatalf("Vocabulary = %v", v)
	}
}

func TestTermCounts(t *testing.T) {
	c := TermCounts([]string{"x", "y", "x"})
	if c["x"] != 2 || c["y"] != 1 {
		t.Fatalf("TermCounts = %v", c)
	}
}

// Property: tokens never contain separators or uppercase letters and
// always respect the minimum length.
func TestPropertyTokenizeInvariants(t *testing.T) {
	opts := DefaultTokenizeOptions()
	f := func(text string) bool {
		for _, tok := range Tokenize(text, opts) {
			if len([]rune(tok)) < 5 {
				return false
			}
			if strings.ToLower(tok) != tok {
				return false
			}
			if strings.ContainsAny(tok, " \t\n.,;:!?(){}[]<>@") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenizing a concatenation with a separator equals the
// concatenation of tokenizations.
func TestPropertyTokenizeConcat(t *testing.T) {
	opts := DefaultTokenizeOptions()
	f := func(a, b string) bool {
		joint := Tokenize(a+" "+b, opts)
		parts := append(Tokenize(a, opts), Tokenize(b, opts)...)
		if len(joint) != len(parts) {
			return false
		}
		for i := range joint {
			if joint[i] != parts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMailboxAppendReusesScratch guards the setup hot path's
// allocation discipline: a generator whose message buffer and offset
// scratch are warm must allocate strictly less per mailbox than a
// cold Mailbox call, and the reused path must stay byte-identical to
// the allocating one.
func TestMailboxAppendReusesScratch(t *testing.T) {
	owner := NewPersonas(rng.New(8), 1, "honeymail.example")[0]
	const n = 25

	fresh := newGen(42).Mailbox(owner, n, winStart, winEnd)
	warmGen := newGen(42)
	var msgs []Message
	msgs = warmGen.MailboxAppend(msgs[:0], owner, n, winStart, winEnd)
	if len(fresh) != len(msgs) {
		t.Fatalf("lengths differ: %d vs %d", len(fresh), len(msgs))
	}
	for i := range fresh {
		if fresh[i] != msgs[i] {
			t.Fatalf("append path diverged at message %d", i)
		}
	}

	coldAllocs := testing.AllocsPerRun(20, func() {
		newGen(42).Mailbox(owner, n, winStart, winEnd)
	})
	warmAllocs := testing.AllocsPerRun(20, func() {
		warmGen.Reseed(rng.New(42))
		msgs = warmGen.MailboxAppend(msgs[:0], owner, n, winStart, winEnd)
	})
	if warmAllocs >= coldAllocs {
		t.Fatalf("warm MailboxAppend allocates %.0f objects, cold Mailbox %.0f — scratch reuse lost",
			warmAllocs, coldAllocs)
	}
}

// TestGeneratorSplitShares: Split hands workers private scratch over
// shared immutable config; reseeding a split generator reproduces the
// parent's draws exactly.
func TestGeneratorSplitShares(t *testing.T) {
	owner := NewPersonas(rng.New(8), 1, "honeymail.example")[0]
	a := newGen(7).Mailbox(owner, 10, winStart, winEnd)
	parent := newGen(7)
	w := parent.Split(parent.src)
	b := w.Mailbox(owner, 10, winStart, winEnd)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split generator diverged at message %d", i)
		}
	}
}

// TestPersonaAtMatchesPool: PersonaAt draws one persona from a
// dedicated stream with the same pools NewPersonasLocale defaults to,
// and SuffixEmail derives a deterministic collision-free address.
func TestPersonaAtMatchesPool(t *testing.T) {
	p := PersonaAt(rng.New(5), Locale{})
	if p.First == "" || p.Last == "" || p.Email == "" {
		t.Fatalf("incomplete persona %+v", p)
	}
	q := PersonaAt(rng.New(5), Locale{})
	if p != q {
		t.Fatalf("same stream diverged: %+v vs %+v", p, q)
	}
	s := p.SuffixEmail(3)
	if s == p.Email || !strings.Contains(s, "3@") {
		t.Fatalf("suffix email %q not distinct/deterministic for %q", s, p.Email)
	}
}
