package corpus

import (
	"strings"
	"unicode"
)

// TokenizeOptions controls the preprocessing applied before TF-IDF,
// mirroring §4.6 of the paper: words shorter than MinLength are
// dropped, known header-related words are removed, and caller-supplied
// handles (honey email local parts) and signalling tokens injected by
// the monitoring infrastructure are filtered out.
type TokenizeOptions struct {
	// MinLength drops tokens shorter than this many characters. The
	// paper filters out all words of fewer than 5 characters.
	MinLength int
	// DropWords removes extra exact tokens (lowercased) beyond the
	// built-in header word list — honey handles, monitor markers.
	DropWords map[string]bool
	// KeepHeaderWords disables the built-in header-word filter; the
	// experiments never set this, but tests exercise it.
	KeepHeaderWords bool
}

// DefaultTokenizeOptions returns the paper's preprocessing settings.
func DefaultTokenizeOptions() TokenizeOptions {
	return TokenizeOptions{MinLength: 5}
}

// headerWords are mail-transport artifacts that would otherwise
// dominate TF-IDF on raw messages; the paper removes "all known
// header-related words, for instance 'delivered' and 'charset'".
var headerWords = map[string]bool{
	"delivered": true, "charset": true, "received": true, "return": true, "subject": true, "content": true, "transfer-encoding": true,
	"encoding": true, "multipart": true, "boundary": true, "quoted": true, "printable": true, "mailer": true, "message-id": true,
	"messageid": true, "in-reply-to": true, "references": true,
	"mime-version": true, "version": true, "x-mailer": true, "sender": true, "envelope": true, "smtp": true, "esmtp": true, "helo": true,
	"localhost": true, "unsubscribe": true,
}

// Tokenize splits text into lowercase word tokens under the given
// options. Tokens keep internal apostrophes/hyphens stripped; anything
// that is not a letter or digit separates tokens.
func Tokenize(text string, opts TokenizeOptions) []string {
	if opts.MinLength <= 0 {
		opts.MinLength = 1
	}
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		if len([]rune(tok)) < opts.MinLength {
			return
		}
		if !opts.KeepHeaderWords && headerWords[tok] {
			return
		}
		if opts.DropWords != nil && opts.DropWords[tok] {
			return
		}
		out = append(out, tok)
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return out
}

// TokenizeMessages tokenizes subject and body of every message into a
// single token stream — the "document" unit of the paper's two-document
// corpus (all emails vs. emails read by attackers).
func TokenizeMessages(msgs []Message, opts TokenizeOptions) []string {
	var out []string
	for _, m := range msgs {
		out = append(out, Tokenize(m.Subject, opts)...)
		out = append(out, Tokenize(m.Body, opts)...)
	}
	return out
}

// Vocabulary returns the distinct tokens of a stream, in first-seen
// order.
func Vocabulary(tokens []string) []string {
	seen := make(map[string]bool, len(tokens))
	var out []string
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// TermCounts tallies token frequencies.
func TermCounts(tokens []string) map[string]int {
	counts := make(map[string]int)
	for _, t := range tokens {
		counts[t]++
	}
	return counts
}
