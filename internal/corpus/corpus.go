// Package corpus generates the synthetic corporate email corpus used
// to seed honey accounts, standing in for the Enron dataset the paper
// used (Klimt & Yang's corpus of an energy company's corporate mail).
//
// The paper populates each honey account with corporate email, then
// rewrites it the same way we do here: distinct original recipients
// are mapped to the fictional personas that "own" the honey accounts,
// first/last names are replaced, every occurrence of the original
// company name becomes a fictitious one, and dates are shifted into
// the experiment window (§3.2). Because the real Enron text cannot be
// bundled, the generator synthesises corporate mail of the same
// flavour — an energy-trading company's meetings, transfers,
// contracts, reports and HR notices — with a vocabulary chosen so the
// corpus-level TF-IDF profile matches what Table 2 reports for the
// authors' seed data ("transfer", "company", "energy", "power",
// "information" rank high corpus-wide).
package corpus

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/rng"
)

// Persona is a fictional account owner: a random combination of
// popular first and last names, as in the paper (following their
// citation [25]).
type Persona struct {
	First      string
	Last       string
	Email      string
	Title      string
	Department string
}

// FullName returns "First Last".
func (p Persona) FullName() string { return p.First + " " + p.Last }

// Handle returns the local part of the persona's address.
func (p Persona) Handle() string {
	if i := strings.IndexByte(p.Email, '@'); i > 0 {
		return p.Email[:i]
	}
	return p.Email
}

// Message is one email in a mailbox.
type Message struct {
	From    string
	To      string
	Subject string
	Body    string
	Date    time.Time
}

// popularFirst and popularLast are common given/family names; honey
// identities are random combinations of them.
var popularFirst = []string{
	"James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
	"Linda", "William", "Elizabeth", "David", "Barbara", "Richard",
	"Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
	"Christopher", "Nancy", "Daniel", "Lisa", "Matthew", "Margaret",
	"Anthony", "Betty", "Mark", "Sandra", "Donald", "Ashley", "Steven",
	"Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle",
}

var popularLast = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
	"Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
	"Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen",
	"King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
}

var titles = []string{
	"Vice President", "Director", "Senior Trader", "Trader", "Analyst",
	"Senior Analyst", "Manager", "Senior Manager", "Associate",
	"Coordinator", "Counsel", "Accountant",
}

var departments = []string{
	"Trading", "Risk Management", "Regulatory Affairs", "Legal",
	"Finance", "Operations", "Human Resources", "Power Marketing",
	"Gas Marketing", "Information Technology",
}

// Locale is a decoy-identity locale: the name pools and mail domain
// honey personas are drawn from. Email Babel (Bernard-Jones, Onaolapo
// & Stringhini 2017) showed the same honeypot design answers new
// questions when the decoy population is language-localized; locales
// vary the identity layer (names, domain) while the mail corpus stays
// the synthetic corporate-English stand-in.
type Locale struct {
	Name   string
	Domain string
	First  []string
	Last   []string
}

// DefaultLocale is the seed deployment's English-name identity pool.
func DefaultLocale() Locale {
	return Locale{Name: "en", Domain: "honeymail.example", First: popularFirst, Last: popularLast}
}

// locales indexes the built-in identity pools by name.
var locales = map[string]Locale{
	"en": DefaultLocale(),
	"es": {
		Name: "es", Domain: "correomiel.example",
		First: []string{
			"Antonio", "Maria", "Jose", "Carmen", "Manuel", "Ana", "Francisco",
			"Isabel", "Juan", "Dolores", "Javier", "Pilar", "Miguel", "Teresa",
			"Rafael", "Rosa", "Carlos", "Lucia", "Daniel", "Elena", "Alejandro",
			"Marta", "Fernando", "Cristina",
		},
		Last: []string{
			"Garcia", "Fernandez", "Gonzalez", "Rodriguez", "Lopez", "Martinez",
			"Sanchez", "Perez", "Gomez", "Martin", "Jimenez", "Ruiz",
			"Hernandez", "Diaz", "Moreno", "Alvarez", "Romero", "Navarro",
			"Torres", "Dominguez", "Vazquez", "Ramos", "Gil", "Serrano",
		},
	},
	"de": {
		Name: "de", Domain: "honigpost.example",
		First: []string{
			"Hans", "Anna", "Peter", "Ursula", "Michael", "Monika", "Thomas",
			"Petra", "Andreas", "Sabine", "Wolfgang", "Renate", "Klaus",
			"Karin", "Juergen", "Brigitte", "Stefan", "Claudia", "Uwe",
			"Susanne", "Frank", "Gabriele", "Markus", "Heike",
		},
		Last: []string{
			"Mueller", "Schmidt", "Schneider", "Fischer", "Weber", "Meyer",
			"Wagner", "Becker", "Schulz", "Hoffmann", "Schaefer", "Koch",
			"Bauer", "Richter", "Klein", "Wolf", "Schroeder", "Neumann",
			"Schwarz", "Zimmermann", "Braun", "Krueger", "Hofmann", "Hartmann",
		},
	},
	"fr": {
		Name: "fr", Domain: "mielcourrier.example",
		First: []string{
			"Jean", "Marie", "Pierre", "Nathalie", "Michel", "Isabelle",
			"Philippe", "Sylvie", "Alain", "Catherine", "Nicolas", "Francoise",
			"Christophe", "Valerie", "Laurent", "Christine", "Patrick",
			"Sandrine", "Olivier", "Veronique", "Julien", "Celine", "David",
			"Sophie",
		},
		Last: []string{
			"Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard",
			"Petit", "Durand", "Leroy", "Moreau", "Simon", "Laurent",
			"Lefebvre", "Michel", "Garcia", "David", "Bertrand", "Roux",
			"Vincent", "Fournier", "Morel", "Girard", "Andre", "Mercier",
		},
	},
}

// LocaleByName resolves a built-in locale ("en", "es", "de", "fr").
func LocaleByName(name string) (Locale, bool) {
	l, ok := locales[name]
	return l, ok
}

// LocaleNames lists the built-in locale names, sorted.
func LocaleNames() []string {
	out := make([]string, 0, len(locales))
	for k := range locales {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NewPersonas draws n distinct personas on the given mail domain from
// the default English name pools.
func NewPersonas(src *rng.Source, n int, domain string) []Persona {
	loc := DefaultLocale()
	loc.Domain = domain
	return NewPersonasLocale(src, n, loc)
}

// NewPersonasLocale draws n distinct personas from a locale's name
// pools on its mail domain. For the default locale the draw sequence
// is identical to NewPersonas, so localization is a pure overlay on
// the seed behaviour.
func NewPersonasLocale(src *rng.Source, n int, loc Locale) []Persona {
	if len(loc.First) == 0 || len(loc.Last) == 0 {
		def := DefaultLocale()
		loc.First, loc.Last = def.First, def.Last
	}
	if loc.Domain == "" {
		loc.Domain = DefaultLocale().Domain
	}
	out := make([]Persona, 0, n)
	used := map[string]bool{}
	for len(out) < n {
		first := rng.Pick(src, loc.First)
		last := rng.Pick(src, loc.Last)
		email := strings.ToLower(first) + "." + strings.ToLower(last) + "@" + loc.Domain
		if used[email] {
			// Disambiguate collisions with a numeric suffix, as real
			// providers do.
			email = fmt.Sprintf("%s.%s%d@%s", strings.ToLower(first), strings.ToLower(last), len(out), loc.Domain)
		}
		used[email] = true
		out = append(out, Persona{
			First:      first,
			Last:       last,
			Email:      email,
			Title:      rng.Pick(src, titles),
			Department: rng.Pick(src, departments),
		})
	}
	return out
}

// PersonaAt draws one persona from a locale's pools — the order-free
// per-account form of NewPersonasLocale used by the honeynet's
// parallel setup layout. The draw sequence per persona is identical
// (first, last, title, department); what differs is that each call
// reads a caller-supplied source, so personas derive from independent
// per-account substreams instead of one shared cursor. Email
// collisions are the caller's to resolve, in a deterministic serial
// pass, via SuffixEmail.
func PersonaAt(src *rng.Source, loc Locale) Persona {
	if len(loc.First) == 0 || len(loc.Last) == 0 {
		def := DefaultLocale()
		loc.First, loc.Last = def.First, def.Last
	}
	if loc.Domain == "" {
		loc.Domain = DefaultLocale().Domain
	}
	first := rng.Pick(src, loc.First)
	last := rng.Pick(src, loc.Last)
	return Persona{
		First:      first,
		Last:       last,
		Email:      strings.ToLower(first) + "." + strings.ToLower(last) + "@" + loc.Domain,
		Title:      rng.Pick(src, titles),
		Department: rng.Pick(src, departments),
	}
}

// SuffixEmail returns the persona's address disambiguated with a
// numeric suffix, the same convention NewPersonasLocale (and real
// providers) use for name collisions; n is the caller's collision
// counter (the honeynet uses the account index).
func (p Persona) SuffixEmail(n int) string {
	domain := ""
	if at := strings.IndexByte(p.Email, '@'); at >= 0 {
		domain = p.Email[at+1:]
	}
	return fmt.Sprintf("%s.%s%d@%s", strings.ToLower(p.First), strings.ToLower(p.Last), n, domain)
}

// template is a mail blueprint. Slots of the form {word} are filled
// per message: {peer} a colleague's first name, {company} the
// fictitious company, plus topic-specific slots.
type template struct {
	subject string
	body    []string // paragraphs
	weight  float64  // relative frequency in a mailbox
}

// fills maps slot names to candidate values.
var fills = map[string][]string{
	"counterparty": {"Northfield Utilities", "Lakeshore Power", "Westgate Gas Partners", "Caprock Transmission", "Bluewater Municipal", "Harborline Electric"},
	"region":       {"Midwest", "Gulf Coast", "Northeast", "Western", "Southeast"},
	"commodity":    {"power", "natural gas", "electricity", "capacity"},
	"month":        {"January", "February", "March", "April", "May", "June", "July", "August", "September", "October", "November", "December"},
	"weekday":      {"Monday", "Tuesday", "Wednesday", "Thursday", "Friday"},
	"amount":       {"45,000", "128,500", "310,000", "75,250", "22,800", "560,000", "94,300"},
	"contractno":   {"EC-2210", "EC-5431", "PG-1092", "PW-7765", "TR-3318", "RM-9054"},
	"quarter":      {"first quarter", "second quarter", "third quarter", "fourth quarter"},
	"system":       {"scheduling system", "settlement system", "trading platform", "reporting database"},
	"city":         {"Houston", "Chicago", "Portland", "Denver", "Calgary"},
}

// businessTemplates is the library of corporate mail. The vocabulary
// deliberately makes "transfer", "please", "original", "company",
// "would", "energy", "information", "about", "email" and "power"
// corpus-frequent, matching the right-hand column of Table 2.
var businessTemplates = []template{
	{
		subject: "Re: {commodity} schedule for {month}",
		weight:  3,
		body: []string{
			"Attached please find the revised {commodity} delivery schedule for {month}. The original version understated the {region} volumes, so please discard it and work from this one.",
			"Let me know if the counterparties have any questions about the schedule before we confirm with {counterparty}.",
		},
	},
	{
		subject: "Wire transfer confirmation - {contractno}",
		weight:  3,
		body: []string{
			"The wire transfer of ${amount} under contract {contractno} was released this morning. Treasury should see the funds settle by {weekday}.",
			"Please confirm receipt with the bank and copy the settlements group so the transfer is booked against the right account.",
		},
	},
	{
		subject: "Meeting {weekday}: {region} {commodity} position",
		weight:  3,
		body: []string{
			"Could we get together {weekday} morning to walk through the {region} {commodity} position? I would like to review the hedges before the {quarter} close.",
			"If {weekday} does not work for the whole group, please propose another time. The conference room on twelve is available all week.",
		},
	},
	{
		subject: "{counterparty} master agreement",
		weight:  2,
		body: []string{
			"Legal has finished its review of the {counterparty} master agreement. The remaining open issue is the collateral threshold; their credit group would prefer a higher number than the company standard.",
			"Please send me the original signature pages when they arrive so we can close the file on this agreement.",
		},
	},
	{
		subject: "Draft: {quarter} earnings information",
		weight:  2,
		body: []string{
			"Here is the draft earnings information package for the {quarter}. The energy trading results are preliminary until risk management signs off on the curve marks.",
			"Please treat this information as confidential within the company until the release goes out.",
		},
	},
	{
		subject: "Power plant outage - {region}",
		weight:  2,
		body: []string{
			"The {region} power plant came offline last night for an unplanned repair. Operations expects the unit back within the week, but the power desk should assume reduced capacity through {weekday}.",
			"Scheduling would appreciate timely updates so the affected deliveries can be rebooked with {counterparty}.",
		},
	},
	{
		subject: "Re: {system} access request",
		weight:  2,
		body: []string{
			"Your access to the {system} has been approved by information technology. Please change the temporary password at first login and review the acceptable use policy on the company intranet.",
			"If anything about the account looks wrong, reply to this email and we will correct it.",
		},
	},
	{
		subject: "Expense report - {city} trip",
		weight:  2,
		body: []string{
			"I filed the expense report for the {city} trip. The airfare was higher than usual because the travel was booked late; accounting may ask about the difference against the original estimate.",
			"Receipts are attached. Please approve when you have a moment so the reimbursement hits this pay cycle.",
		},
	},
	{
		subject: "{commodity} price curve update",
		weight:  2,
		body: []string{
			"Research published an updated {commodity} price curve this morning. The forward months moved up on colder weather forecasts for the {region}.",
			"Traders should refresh their marks before the close; risk management would like the books to reflect the new curve today.",
		},
	},
	{
		subject: "Re: headcount planning for {department_topic}",
		weight:  1,
		body: []string{
			"Human resources asked each group to confirm its headcount plan for next year. Our request adds one analyst and one scheduler, which management supported in the budget review.",
			"Please send me any changes before {weekday}; after that the plan goes to the executive committee.",
		},
	},
	{
		subject: "Regulatory filing due {weekday}",
		weight:  1,
		body: []string{
			"A reminder that the quarterly regulatory filing is due {weekday}. Regulatory affairs still needs the transmission volumes and the {region} settlement information.",
			"The commission was unhappy about the late filing last {quarter}, so please get the numbers over early this time.",
		},
	},
	{
		subject: "Holiday schedule and payroll dates",
		weight:  1,
		body: []string{
			"Payroll will run one day early around the {month} holiday. Direct deposit payments should arrive on the usual schedule; paper checks will be in the {city} office on {weekday}.",
			"The holiday schedule for the rest of the year is posted on the company intranet under human resources.",
		},
	},
	{
		subject: "Gas pipeline nomination window",
		weight:  1,
		body: []string{
			"The pipeline moved the nomination window up two hours for the {month} cycle. Gas scheduling needs final volumes from the desk by noon; late nominations get bumped to the evening cycle.",
			"Please make sure the backup scheduler has access to the {system} in case the desk is shorthanded.",
		},
	},
	{
		subject: "Audit request: settlement documentation",
		weight:  1,
		body: []string{
			"The auditors requested the settlement documentation for {counterparty} covering the {quarter}. They want the original invoices and the wire transfer confirmations, not copies.",
			"Accounting will coordinate the document pull; please route any auditor questions about trading positions through risk management.",
		},
	},
}

// GeneratorConfig parameterises a Generator.
type GeneratorConfig struct {
	// Company is the fictitious company name substituted everywhere,
	// as the paper replaced "Enron" (§3.2).
	Company string
	// Domain is the corporate mail domain for non-honey correspondents.
	Domain string
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() GeneratorConfig {
	return GeneratorConfig{Company: "Solenix Energy", Domain: "solenix-energy.example"}
}

// Generator produces mailboxes for honey personas.
type Generator struct {
	cfg      GeneratorConfig
	src      *rng.Source
	weights  []float64
	contacts []Persona
	scratch  []byte          // render buffer, reused across messages
	offsets  []time.Duration // date-offset buffer, reused across mailboxes
}

// NewGenerator builds a Generator with a pool of corporate contacts
// that recur across mailboxes (distinct Enron correspondents were
// mapped to consistent fictional identities in the paper).
func NewGenerator(src *rng.Source, cfg GeneratorConfig) *Generator {
	if cfg.Company == "" || cfg.Domain == "" {
		cfg = DefaultConfig()
	}
	w := make([]float64, len(businessTemplates))
	for i, t := range businessTemplates {
		w[i] = t.weight
	}
	return &Generator{
		cfg:      cfg,
		src:      src,
		weights:  w,
		contacts: NewPersonas(src.Fork(), 40, cfg.Domain),
	}
}

// Company returns the fictitious company name in use.
func (g *Generator) Company() string { return g.cfg.Company }

// Contacts returns the recurring correspondent pool (copy).
func (g *Generator) Contacts() []Persona {
	out := make([]Persona, len(g.contacts))
	copy(out, g.contacts)
	return out
}

// Mailbox generates n messages addressed to (or sent by) owner with
// dates uniformly spread over [start, end), newest last. Roughly a
// fifth of the messages are sent by the owner, the rest received —
// enough of both for the honey account's folders to look lived-in.
func (g *Generator) Mailbox(owner Persona, n int, start, end time.Time) []Message {
	if n <= 0 {
		return nil
	}
	return g.MailboxAppend(nil, owner, n, start, end)
}

// MailboxAppend is Mailbox appending into dst — setup loops pass a
// recycled buffer (dst[:0]) so seeding a fleet allocates one Message
// slice per worker, not one per account. Draw order is identical to
// Mailbox.
func (g *Generator) MailboxAppend(dst []Message, owner Persona, n int, start, end time.Time) []Message {
	if n <= 0 {
		return dst
	}
	if !end.After(start) {
		panic("corpus: Mailbox requires end after start")
	}
	span := end.Sub(start)
	// Deterministic, sorted offsets keep mailbox order chronological.
	if cap(g.offsets) < n {
		g.offsets = make([]time.Duration, n)
	}
	offsets := g.offsets[:n]
	for i := range offsets {
		offsets[i] = time.Duration(g.src.Float64() * float64(span))
	}
	sortDurations(offsets)
	for i := 0; i < n; i++ {
		peer := rng.Pick(g.src, g.contacts)
		msg := g.render(owner, peer, start.Add(offsets[i]))
		dst = append(dst, msg)
	}
	return dst
}

// Split returns a generator sharing this one's configuration,
// template weights and corporate-contact pool but drawing from src
// with private scratch buffers — one per setup worker, so parallel
// mailbox generation shares the contact identities without sharing
// any mutable state. src may be nil when the caller Reseeds before
// the first use.
func (g *Generator) Split(src *rng.Source) *Generator {
	return &Generator{cfg: g.cfg, src: src, weights: g.weights, contacts: g.contacts}
}

// Reseed redirects the generator's draws to src. The parallel setup
// layout reseeds one worker-local generator with each account's
// private substream, so every mailbox is a pure function of that
// account's stream.
func (g *Generator) Reseed(src *rng.Source) { g.src = src }

// render instantiates one template for the given owner/peer pair.
// Subject and body are streamed into a reused scratch buffer: the only
// allocations per message are the two result strings themselves, not
// one per template slot.
func (g *Generator) render(owner, peer Persona, date time.Time) Message {
	tpl := businessTemplates[g.src.Categorical(g.weights)]
	sent := g.src.Bool(0.2) // owner is the sender for ~20% of messages
	from, to := peer, owner
	if sent {
		from, to = owner, peer
	}
	g.scratch = g.scratch[:0]
	g.fillTo(tpl.subject, owner, peer)
	subject := string(g.scratch)
	g.scratch = g.scratch[:0]
	g.scratch = append(g.scratch, "Dear "...)
	g.scratch = append(g.scratch, to.First...)
	g.scratch = append(g.scratch, ",\n\n"...)
	for _, para := range tpl.body {
		g.fillTo(para, owner, peer)
		g.scratch = append(g.scratch, "\n\n"...)
	}
	g.scratch = append(g.scratch, "Regards,\n"...)
	g.scratch = append(g.scratch, from.First...)
	g.scratch = append(g.scratch, ' ')
	g.scratch = append(g.scratch, from.Last...)
	g.scratch = append(g.scratch, '\n')
	g.scratch = append(g.scratch, from.Title...)
	g.scratch = append(g.scratch, ", "...)
	g.scratch = append(g.scratch, from.Department...)
	g.scratch = append(g.scratch, '\n')
	g.scratch = append(g.scratch, g.cfg.Company...)
	g.scratch = append(g.scratch, '\n')
	return Message{
		From:    from.Email,
		To:      to.Email,
		Subject: subject,
		Body:    string(g.scratch),
		Date:    date,
	}
}

// fillTo appends s to the scratch buffer with template slots
// substituted, left to right. Slot values never contain braces, so the
// single pass matches the old rescanning substitution exactly —
// including its rng draw order, one Pick per {slot} with candidates.
func (g *Generator) fillTo(s string, owner, peer Persona) {
	for {
		i := strings.IndexByte(s, '{')
		if i < 0 {
			g.scratch = append(g.scratch, s...)
			return
		}
		j := strings.IndexByte(s[i:], '}')
		if j < 0 {
			g.scratch = append(g.scratch, s...)
			return
		}
		g.scratch = append(g.scratch, s[:i]...)
		slot := s[i+1 : i+j]
		switch slot {
		case "peer":
			g.scratch = append(g.scratch, peer.First...)
		case "owner":
			g.scratch = append(g.scratch, owner.First...)
		case "company":
			g.scratch = append(g.scratch, g.cfg.Company...)
		case "department_topic":
			g.scratch = appendLower(g.scratch, owner.Department)
		default:
			if cands, ok := fills[slot]; ok {
				g.scratch = append(g.scratch, rng.Pick(g.src, cands)...)
			} else {
				g.scratch = append(g.scratch, slot...) // unknown slot: leave the word, drop braces
			}
		}
		s = s[i+j+1:]
	}
}

// appendLower appends the ASCII-lowercased s without an intermediate
// string (department names are plain ASCII).
func appendLower(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}
