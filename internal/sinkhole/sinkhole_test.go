package sinkhole

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

func fixedNow() time.Time { return epoch }

func TestStoreDeliverAndQuery(t *testing.T) {
	st := NewStore(fixedNow)
	if err := st.Deliver("a@x", "b@y", "subj", "body", epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := st.Deliver("a@x", "c@z", "subj2", "body2", time.Time{}); err != nil {
		t.Fatal(err)
	}
	if st.Count() != 2 {
		t.Fatalf("count = %d", st.Count())
	}
	all := st.All()
	if all[0].Received != epoch.Add(time.Hour) {
		t.Fatalf("explicit timestamp lost: %v", all[0].Received)
	}
	if all[1].Received != epoch {
		t.Fatalf("zero timestamp should use clock: %v", all[1].Received)
	}
	byRcpt := st.ByRecipient("c@z")
	if len(byRcpt) != 1 || byRcpt[0].Subject != "subj2" {
		t.Fatalf("ByRecipient = %+v", byRcpt)
	}
}

func TestStoreNeverForwards(t *testing.T) {
	// The Outbound contract: Deliver always succeeds and has no side
	// effects beyond the archive.
	st := NewStore(fixedNow)
	for i := 0; i < 100; i++ {
		if err := st.Deliver("spammer@honey", "victim@real", "buy", "spam", epoch); err != nil {
			t.Fatal(err)
		}
	}
	if st.Count() != 100 {
		t.Fatalf("count = %d", st.Count())
	}
}

func newServer(t *testing.T) (*Store, string) {
	t.Helper()
	st := NewStore(fixedNow)
	srv := NewServer(st)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return st, addr
}

func TestSMTPRoundTrip(t *testing.T) {
	st, addr := newServer(t)
	err := Send(addr, "blackmailer@honey.example", "target@victims.example",
		"Payment required", "Send bitcoin to the wallet below.\nTutorial attached.")
	if err != nil {
		t.Fatal(err)
	}
	mails := st.All()
	if len(mails) != 1 {
		t.Fatalf("stored = %d", len(mails))
	}
	m := mails[0]
	if m.From != "blackmailer@honey.example" || m.To != "target@victims.example" {
		t.Fatalf("envelope = %+v", m)
	}
	if m.Subject != "Payment required" {
		t.Fatalf("subject = %q", m.Subject)
	}
	if !strings.Contains(m.Body, "bitcoin") {
		t.Fatalf("body = %q", m.Body)
	}
}

func TestSMTPMultipleRecipients(t *testing.T) {
	st, addr := newServer(t)
	// Hand-rolled session with two RCPT TO lines.
	err := withRawSession(t, addr, []string{
		"HELO x", "MAIL FROM:<a@honey>", "RCPT TO:<v1@x>", "RCPT TO:<v2@x>",
		"DATA",
	}, "Subject: s\r\n\r\nspam\r\n.", "QUIT")
	if err != nil {
		t.Fatal(err)
	}
	if st.Count() != 2 {
		t.Fatalf("count = %d, want one copy per recipient", st.Count())
	}
}

func TestSMTPDotStuffing(t *testing.T) {
	st, addr := newServer(t)
	if err := Send(addr, "a@x", "b@y", "s", "line1\n.leading dot"); err != nil {
		t.Fatal(err)
	}
	if got := st.All()[0].Body; got != "line1\n.leading dot" {
		t.Fatalf("body = %q", got)
	}
}

func TestSMTPRsetClearsEnvelope(t *testing.T) {
	st, addr := newServer(t)
	err := withRawSession(t, addr, []string{
		"HELO x", "MAIL FROM:<a@honey>", "RCPT TO:<v1@x>", "RSET",
		"MAIL FROM:<b@honey>", "RCPT TO:<v2@x>", "DATA",
	}, "Subject: after-rset\r\n\r\nbody\r\n.", "QUIT")
	if err != nil {
		t.Fatal(err)
	}
	mails := st.All()
	if len(mails) != 1 || mails[0].From != "b@honey" || mails[0].To != "v2@x" {
		t.Fatalf("mails = %+v", mails)
	}
}

func TestSMTPIgnoresUnknownVerbs(t *testing.T) {
	st, addr := newServer(t)
	err := withRawSession(t, addr, []string{
		"HELO x", "XUNKNOWN whatever", "MAIL FROM:<a@honey>", "RCPT TO:<v@x>", "DATA",
	}, "Subject: s\r\n\r\nb\r\n.", "QUIT")
	if err != nil {
		t.Fatal(err)
	}
	if st.Count() != 1 {
		t.Fatalf("count = %d", st.Count())
	}
}

func TestSMTPConcurrentSenders(t *testing.T) {
	st, addr := newServer(t)
	const n = 10
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- Send(addr, "bot@honey", "victim@x", "spam", "payload")
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.Count() != n {
		t.Fatalf("count = %d, want %d", st.Count(), n)
	}
}

func TestServerClose(t *testing.T) {
	st := NewStore(fixedNow)
	srv := NewServer(st)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Send(addr, "a@x", "b@y", "s", "b"); err == nil {
		t.Fatal("send after close succeeded")
	}
}

// withRawSession drives a scripted SMTP exchange: each command waits
// for any reply; data is sent after the DATA 354 response.
func withRawSession(t *testing.T, addr string, cmds []string, data, final string) error {
	t.Helper()
	return rawSession(addr, cmds, data, final)
}

func rawSession(addr string, cmds []string, data, final string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	readLine := func() (string, error) { return r.ReadString('\n') }
	writeLine := func(s string) error {
		if _, err := w.WriteString(s + "\r\n"); err != nil {
			return err
		}
		return w.Flush()
	}
	if _, err := readLine(); err != nil { // banner
		return err
	}
	for _, c := range cmds {
		if err := writeLine(c); err != nil {
			return err
		}
		if _, err := readLine(); err != nil {
			return err
		}
	}
	if err := writeLine(data); err != nil {
		return err
	}
	if _, err := readLine(); err != nil {
		return err
	}
	if err := writeLine(final); err != nil {
		return err
	}
	_, err = readLine()
	return err
}
