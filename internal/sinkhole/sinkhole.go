package sinkhole

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// StoredMail is one captured outbound message.
type StoredMail struct {
	From     string
	To       string
	Subject  string
	Body     string
	Received time.Time
}

// Store is the captured-mail archive. It is safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	mails []StoredMail
	now   func() time.Time
}

// NewStore returns a Store stamping messages with the given clock
// function (the simulation passes the virtual clock's Now).
func NewStore(now func() time.Time) *Store {
	if now == nil {
		now = time.Now
	}
	return &Store{now: now}
}

// Deliver implements webmail.Outbound: the mail is archived and
// intentionally goes nowhere else.
func (s *Store) Deliver(from, to, subject, body string, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at.IsZero() {
		at = s.now()
	}
	s.mails = append(s.mails, StoredMail{From: from, To: to, Subject: subject, Body: body, Received: at})
	return nil
}

// All returns a copy of every captured message.
func (s *Store) All() []StoredMail {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoredMail, len(s.mails))
	copy(out, s.mails)
	return out
}

// Count returns the number of captured messages.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mails)
}

// ByRecipient returns captured mail addressed to the given recipient.
func (s *Store) ByRecipient(to string) []StoredMail {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []StoredMail
	for _, m := range s.mails {
		if m.To == to {
			out = append(out, m)
		}
	}
	return out
}

// Server is the TCP front end speaking an SMTP subset.
type Server struct {
	store *Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[*smtpConn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// smtpConn tracks one session's drain state: busy while a command
// (including a DATA payload) is being handled, and flagged to close
// once the current command's reply has been flushed.
type smtpConn struct {
	net.Conn
	mu            sync.Mutex
	busy          bool
	closeWhenIdle bool
}

func (c *smtpConn) beginCommand() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeWhenIdle {
		return false
	}
	c.busy = true
	return true
}

func (c *smtpConn) endCommand() (quit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = false
	return c.closeWhenIdle
}

func (c *smtpConn) drain() {
	c.mu.Lock()
	idle := !c.busy
	c.closeWhenIdle = true
	c.mu.Unlock()
	if idle {
		c.Close()
	}
}

// NewServer wraps a store.
func NewServer(store *Store) *Server {
	return &Server{store: store, conns: make(map[*smtpConn]struct{})}
}

// Listen binds the server and starts accepting; it returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("sinkhole: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sc := &smtpConn{Conn: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(sc)
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
		}()
	}
}

// Close shuts the listener and all live connections down.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Drain shuts the sinkhole down gracefully: the listener closes, idle
// sessions drop, and a session mid-command (including mid-DATA) gets
// to flush its reply first. If ctx expires the straggler sockets are
// force-closed and ctx.Err() is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	// closed first: any accept racing the listener close is refused
	// instead of escaping the conns snapshot below.
	s.closed = true
	ln := s.listener
	s.listener = nil
	conns := make([]*smtpConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.drain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// serve handles one SMTP-subset session. The grammar is deliberately
// permissive: a sinkhole's job is to swallow whatever arrives.
func (s *Server) serve(conn *smtpConn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	say := func(code int, msg string) bool {
		fmt.Fprintf(w, "%d %s\r\n", code, msg)
		return w.Flush() == nil
	}
	if !say(220, "sinkhole.example service ready") {
		return
	}
	var from string
	var rcpts []string
	// handle processes one command line; ok is false on a dead client
	// or a QUIT.
	handle := func(line string) (ok bool) {
		verb := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(verb, "HELO") || strings.HasPrefix(verb, "EHLO"):
			return say(250, "sinkhole greets you")
		case strings.HasPrefix(verb, "MAIL FROM:"):
			from = strings.Trim(line[len("MAIL FROM:"):], " <>")
			rcpts = nil
			return say(250, "ok")
		case strings.HasPrefix(verb, "RCPT TO:"):
			rcpts = append(rcpts, strings.Trim(line[len("RCPT TO:"):], " <>"))
			return say(250, "ok")
		case verb == "DATA":
			if !say(354, "end data with <CRLF>.<CRLF>") {
				return false
			}
			subject, body, err := readData(r)
			if err != nil {
				return false
			}
			at := s.store.now()
			for _, to := range rcpts {
				s.store.Deliver(from, to, subject, body, at)
			}
			return say(250, "swallowed")
		case verb == "QUIT":
			say(221, "bye")
			return false
		case verb == "RSET":
			from, rcpts = "", nil
			return say(250, "ok")
		case verb == "NOOP":
			return say(250, "ok")
		default:
			// Sinkholes do not argue with clients.
			return say(250, "ok (ignored)")
		}
	}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		if !conn.beginCommand() {
			return // draining: the command never started
		}
		ok := handle(strings.TrimRight(line, "\r\n"))
		if conn.endCommand() || !ok {
			return
		}
	}
}

// readData consumes a DATA payload up to the lone-dot terminator and
// splits out a Subject: header if one is present.
func readData(r *bufio.Reader) (subject, body string, err error) {
	var lines []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return "", "", err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			break
		}
		// Dot-stuffing per RFC 5321 §4.5.2.
		line = strings.TrimPrefix(line, ".")
		lines = append(lines, line)
	}
	bodyStart := 0
	for i, l := range lines {
		if strings.HasPrefix(strings.ToLower(l), "subject:") {
			subject = strings.TrimSpace(l[len("subject:"):])
		}
		if l == "" {
			bodyStart = i + 1
			break
		}
	}
	return subject, strings.Join(lines[bodyStart:], "\n"), nil
}

// Send is a minimal client helper used by tests and examples to push
// one message through a sinkhole server over TCP.
func Send(addr, from, to, subject, body string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("sinkhole: dial: %w", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	expect := func(code string) error {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("sinkhole: read: %w", err)
		}
		if !strings.HasPrefix(line, code) {
			return fmt.Errorf("sinkhole: unexpected reply %q", strings.TrimSpace(line))
		}
		return nil
	}
	send := func(line string) error {
		if _, err := fmt.Fprintf(w, "%s\r\n", line); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := expect("220"); err != nil {
		return err
	}
	steps := []struct{ cmd, code string }{
		{"HELO honeynet", "250"},
		{"MAIL FROM:<" + from + ">", "250"},
		{"RCPT TO:<" + to + ">", "250"},
		{"DATA", "354"},
	}
	for _, st := range steps {
		if err := send(st.cmd); err != nil {
			return err
		}
		if err := expect(st.code); err != nil {
			return err
		}
	}
	payload := fmt.Sprintf("Subject: %s\r\n\r\n%s\r\n.", subject, strings.ReplaceAll(body, "\n.", "\n.."))
	if err := send(payload); err != nil {
		return err
	}
	if err := expect("250"); err != nil {
		return err
	}
	if err := send("QUIT"); err != nil {
		return err
	}
	return expect("221")
}
