package sinkhole

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// StoredMail is one captured outbound message.
type StoredMail struct {
	From     string
	To       string
	Subject  string
	Body     string
	Received time.Time
}

// Store is the captured-mail archive. It is safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	mails []StoredMail
	now   func() time.Time
}

// NewStore returns a Store stamping messages with the given clock
// function (the simulation passes the virtual clock's Now).
func NewStore(now func() time.Time) *Store {
	if now == nil {
		now = time.Now
	}
	return &Store{now: now}
}

// Deliver implements webmail.Outbound: the mail is archived and
// intentionally goes nowhere else.
func (s *Store) Deliver(from, to, subject, body string, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at.IsZero() {
		at = s.now()
	}
	s.mails = append(s.mails, StoredMail{From: from, To: to, Subject: subject, Body: body, Received: at})
	return nil
}

// All returns a copy of every captured message.
func (s *Store) All() []StoredMail {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoredMail, len(s.mails))
	copy(out, s.mails)
	return out
}

// Count returns the number of captured messages.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mails)
}

// ByRecipient returns captured mail addressed to the given recipient.
func (s *Store) ByRecipient(to string) []StoredMail {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []StoredMail
	for _, m := range s.mails {
		if m.To == to {
			out = append(out, m)
		}
	}
	return out
}

// Server is the TCP front end speaking an SMTP subset.
type Server struct {
	store *Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps a store.
func NewServer(store *Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// Listen binds the server and starts accepting; it returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("sinkhole: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close shuts the listener and all live connections down.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// serve handles one SMTP-subset session. The grammar is deliberately
// permissive: a sinkhole's job is to swallow whatever arrives.
func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	say := func(code int, msg string) bool {
		fmt.Fprintf(w, "%d %s\r\n", code, msg)
		return w.Flush() == nil
	}
	if !say(220, "sinkhole.example service ready") {
		return
	}
	var from string
	var rcpts []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		verb := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(verb, "HELO") || strings.HasPrefix(verb, "EHLO"):
			if !say(250, "sinkhole greets you") {
				return
			}
		case strings.HasPrefix(verb, "MAIL FROM:"):
			from = strings.Trim(line[len("MAIL FROM:"):], " <>")
			rcpts = nil
			if !say(250, "ok") {
				return
			}
		case strings.HasPrefix(verb, "RCPT TO:"):
			rcpts = append(rcpts, strings.Trim(line[len("RCPT TO:"):], " <>"))
			if !say(250, "ok") {
				return
			}
		case verb == "DATA":
			if !say(354, "end data with <CRLF>.<CRLF>") {
				return
			}
			subject, body, err := readData(r)
			if err != nil {
				return
			}
			at := s.store.now()
			for _, to := range rcpts {
				s.store.Deliver(from, to, subject, body, at)
			}
			if !say(250, "swallowed") {
				return
			}
		case verb == "QUIT":
			say(221, "bye")
			return
		case verb == "RSET":
			from, rcpts = "", nil
			if !say(250, "ok") {
				return
			}
		case verb == "NOOP":
			if !say(250, "ok") {
				return
			}
		default:
			// Sinkholes do not argue with clients.
			if !say(250, "ok (ignored)") {
				return
			}
		}
	}
}

// readData consumes a DATA payload up to the lone-dot terminator and
// splits out a Subject: header if one is present.
func readData(r *bufio.Reader) (subject, body string, err error) {
	var lines []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return "", "", err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			break
		}
		// Dot-stuffing per RFC 5321 §4.5.2.
		line = strings.TrimPrefix(line, ".")
		lines = append(lines, line)
	}
	bodyStart := 0
	for i, l := range lines {
		if strings.HasPrefix(strings.ToLower(l), "subject:") {
			subject = strings.TrimSpace(l[len("subject:"):])
		}
		if l == "" {
			bodyStart = i + 1
			break
		}
	}
	return subject, strings.Join(lines[bodyStart:], "\n"), nil
}

// Send is a minimal client helper used by tests and examples to push
// one message through a sinkhole server over TCP.
func Send(addr, from, to, subject, body string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("sinkhole: dial: %w", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	expect := func(code string) error {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("sinkhole: read: %w", err)
		}
		if !strings.HasPrefix(line, code) {
			return fmt.Errorf("sinkhole: unexpected reply %q", strings.TrimSpace(line))
		}
		return nil
	}
	send := func(line string) error {
		if _, err := fmt.Fprintf(w, "%s\r\n", line); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := expect("220"); err != nil {
		return err
	}
	steps := []struct{ cmd, code string }{
		{"HELO honeynet", "250"},
		{"MAIL FROM:<" + from + ">", "250"},
		{"RCPT TO:<" + to + ">", "250"},
		{"DATA", "354"},
	}
	for _, st := range steps {
		if err := send(st.cmd); err != nil {
			return err
		}
		if err := expect(st.code); err != nil {
			return err
		}
	}
	payload := fmt.Sprintf("Subject: %s\r\n\r\n%s\r\n.", subject, strings.ReplaceAll(body, "\n.", "\n.."))
	if err := send(payload); err != nil {
		return err
	}
	if err := expect("250"); err != nil {
		return err
	}
	if err := send("QUIT"); err != nil {
		return err
	}
	return expect("221")
}
