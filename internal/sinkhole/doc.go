// Package sinkhole implements the researchers' sinkhole mailserver.
// Paper-section map:
//
//   - §3.1 (architecture) and §3.4 (ethics): every honey account's
//     send-from address points at the sinkhole, it accepts everything
//     a client offers over a minimal SMTP-style exchange, stores the
//     message, and never forwards anything — so no spam or blackmail
//     composed on a honey account can reach a victim.
//   - §4.1: the captured outbound volume ("845 email messages sent"
//     in the paper) is read back from the sinkhole store.
//
// Two front ends share one Store:
//
//   - Server speaks a line-based SMTP subset (HELO/MAIL FROM/RCPT
//     TO/DATA/QUIT) over real TCP, for the standalone daemon and the
//     live-servers example.
//   - Store itself implements webmail.Outbound for the in-process
//     simulation path (one store per shard in the sharded engine).
package sinkhole
