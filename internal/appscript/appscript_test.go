package appscript

import (
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/webmail"
)

var epoch = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

// recorder is a thread-safe Notifier for tests.
type recorder struct {
	mu    sync.Mutex
	notes []Notification
}

func (r *recorder) Notify(n Notification) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notes = append(r.notes, n)
}

func (r *recorder) byKind(k NotificationKind) []Notification {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Notification
	for _, n := range r.notes {
		if n.Kind == k {
			out = append(out, n)
		}
	}
	return out
}

type fixture struct {
	clock *simtime.Clock
	sched *simtime.Scheduler
	svc   *webmail.Service
	rt    *Runtime
	rec   *recorder
	space *netsim.AddressSpace
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clock := simtime.NewClock(epoch)
	sched := simtime.NewScheduler(clock)
	svc := webmail.NewService(webmail.Config{Clock: clock})
	rec := &recorder{}
	f := &fixture{
		clock: clock, sched: sched, svc: svc, rec: rec,
		rt:    NewRuntime(svc, sched, rec),
		space: netsim.NewAddressSpace(rng.New(3), geo.Default()),
	}
	if err := svc.CreateAccount("h1@honeymail.example", "pw", "Honey One"); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) session(t *testing.T) *webmail.Session {
	t.Helper()
	ep, err := f.space.FromCity("Moscow")
	if err != nil {
		t.Fatal(err)
	}
	se, err := f.svc.Login("h1@honeymail.example", "pw", f.svc.NewCookie(), ep)
	if err != nil {
		t.Fatal(err)
	}
	return se
}

func TestScanReportsReadSentStarred(t *testing.T) {
	f := newFixture(t)
	id, _ := f.svc.Seed("h1@honeymail.example", webmail.FolderInbox, "b@x", "h1", "payroll", "numbers", epoch.Add(-time.Hour))
	if err := f.rt.Install("h1@honeymail.example", Options{Hidden: true}); err != nil {
		t.Fatal(err)
	}
	se := f.session(t)
	se.Read(id)
	se.Star(id)
	se.Send("someone@x", "fwd", "payload")
	f.sched.RunFor(15 * time.Minute) // one scan cycle

	if got := f.rec.byKind(NoteRead); len(got) != 1 || got[0].Message != id {
		t.Fatalf("read notes = %+v", got)
	}
	if got := f.rec.byKind(NoteStarred); len(got) != 1 {
		t.Fatalf("star notes = %+v", got)
	}
	if got := f.rec.byKind(NoteSent); len(got) != 1 {
		t.Fatalf("sent notes = %+v", got)
	}
}

func TestScanReportsDraftCopies(t *testing.T) {
	f := newFixture(t)
	f.rt.Install("h1@honeymail.example", Options{Hidden: true})
	se := f.session(t)
	id, _ := se.CreateDraft("victim@x", "pay up", "send 2 BTC to wallet")
	f.sched.RunFor(15 * time.Minute)
	drafts := f.rec.byKind(NoteDraft)
	if len(drafts) != 1 || drafts[0].Body != "send 2 BTC to wallet" {
		t.Fatalf("draft notes = %+v", drafts)
	}
	// Editing the draft re-reports it with the new body.
	se.UpdateDraft(id, "victim@x", "pay up", "send 5 BTC to wallet")
	f.sched.RunFor(10 * time.Minute)
	drafts = f.rec.byKind(NoteDraft)
	if len(drafts) != 2 || drafts[1].Body != "send 5 BTC to wallet" {
		t.Fatalf("draft notes after edit = %+v", drafts)
	}
}

func TestScanIdempotentWhenQuiet(t *testing.T) {
	f := newFixture(t)
	id, _ := f.svc.Seed("h1@honeymail.example", webmail.FolderInbox, "b@x", "h1", "s", "b", epoch.Add(-time.Hour))
	f.rt.Install("h1@honeymail.example", Options{Hidden: true})
	se := f.session(t)
	se.Read(id)
	f.sched.RunFor(2 * time.Hour) // 12 scans
	if got := f.rec.byKind(NoteRead); len(got) != 1 {
		t.Fatalf("quiet account produced %d read notes, want 1", len(got))
	}
}

func TestHeartbeatDaily(t *testing.T) {
	f := newFixture(t)
	f.rt.Install("h1@honeymail.example", Options{Hidden: true})
	f.sched.RunFor(72 * time.Hour)
	if got := len(f.rec.byKind(NoteHeartbeat)); got != 3 {
		t.Fatalf("heartbeats in 72h = %d, want 3", got)
	}
}

func TestScriptSurvivesPasswordChangeAndSuspension(t *testing.T) {
	f := newFixture(t)
	id, _ := f.svc.Seed("h1@honeymail.example", webmail.FolderInbox, "b@x", "h1", "s", "b", epoch.Add(-time.Hour))
	f.rt.Install("h1@honeymail.example", Options{Hidden: true})
	se := f.session(t)
	se.ChangePassword("owned")
	se.Read(id)
	f.svc.Suspend("h1@honeymail.example", "abuse")
	f.sched.RunFor(25 * time.Hour)
	if got := f.rec.byKind(NoteRead); len(got) != 1 {
		t.Fatalf("read notes after hijack+suspend = %d, want 1", len(got))
	}
	if got := f.rec.byKind(NoteHeartbeat); len(got) == 0 {
		t.Fatal("heartbeats stopped after suspension")
	}
}

func TestUninstallStopsMonitoring(t *testing.T) {
	f := newFixture(t)
	id, _ := f.svc.Seed("h1@honeymail.example", webmail.FolderInbox, "b@x", "h1", "s", "b", epoch.Add(-time.Hour))
	f.rt.Install("h1@honeymail.example", Options{Hidden: false})
	if !f.rt.Discoverable("h1@honeymail.example") {
		t.Fatal("visible script should be discoverable")
	}
	if !f.rt.Uninstall("h1@honeymail.example") {
		t.Fatal("uninstall failed")
	}
	if f.rt.Installed("h1@honeymail.example") {
		t.Fatal("script still installed")
	}
	se := f.session(t)
	se.Read(id)
	f.sched.RunFor(time.Hour)
	if got := f.rec.byKind(NoteRead); len(got) != 0 {
		t.Fatalf("deleted script still reported %d reads", len(got))
	}
	if f.rt.Uninstall("h1@honeymail.example") {
		t.Fatal("double uninstall returned true")
	}
}

func TestHiddenScriptNotDiscoverable(t *testing.T) {
	f := newFixture(t)
	f.rt.Install("h1@honeymail.example", Options{Hidden: true})
	if f.rt.Discoverable("h1@honeymail.example") {
		t.Fatal("hidden script reported discoverable")
	}
	if f.rt.Discoverable("missing@x") {
		t.Fatal("missing account reported discoverable")
	}
}

func TestQuotaNoticeDeliveredToInbox(t *testing.T) {
	f := newFixture(t)
	f.rt.Install("h1@honeymail.example", Options{Hidden: true, QuotaScans: 3})
	f.sched.RunFor(time.Hour) // 6 scans
	if got := f.rec.byKind(NoteQuota); len(got) != 1 {
		t.Fatalf("quota notes = %d, want exactly 1", len(got))
	}
	se := f.session(t)
	msgs, err := se.List(webmail.FolderInbox)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range msgs {
		if m.From == "apps-script-notifications@platform.example" {
			found = true
		}
	}
	if !found {
		t.Fatal("quota notice not delivered to account inbox")
	}
}

func TestReinstallReplacesScript(t *testing.T) {
	f := newFixture(t)
	f.rt.Install("h1@honeymail.example", Options{Hidden: true, ScanInterval: 10 * time.Minute})
	f.rt.Install("h1@honeymail.example", Options{Hidden: true, ScanInterval: time.Hour})
	id, _ := f.svc.Seed("h1@honeymail.example", webmail.FolderInbox, "b@x", "h1", "s", "b", epoch)
	se := f.session(t)
	se.Read(id)
	// Old 10-minute trigger must be dead: within 30 minutes nothing fires.
	f.sched.RunFor(30 * time.Minute)
	if got := f.rec.byKind(NoteRead); len(got) != 0 {
		t.Fatalf("old trigger still firing: %d notes", len(got))
	}
	f.sched.RunFor(time.Hour)
	if got := f.rec.byKind(NoteRead); len(got) != 1 {
		t.Fatalf("new trigger notes = %d, want 1", len(got))
	}
}

func TestInstallUnknownAccount(t *testing.T) {
	f := newFixture(t)
	if err := f.rt.Install("ghost@x", Options{}); err == nil {
		t.Fatal("install on missing account succeeded")
	}
}

func TestNotificationKindStrings(t *testing.T) {
	for k, want := range map[NotificationKind]string{
		NoteRead: "read", NoteSent: "sent", NoteStarred: "starred",
		NoteDraft: "draft", NoteHeartbeat: "heartbeat", NoteQuota: "quota",
	} {
		if k.String() != want {
			t.Fatalf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if NotificationKind(99).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}
