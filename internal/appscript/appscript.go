// Package appscript reimplements the instrumentation layer the paper
// builds with Google Apps Script (§3.1): per-account scripts, hidden
// inside an innocuous spreadsheet, that wake on time-based triggers,
// diff the mailbox, and report activity by sending notifications to a
// dedicated collector account.
//
// Faithful behaviours:
//
//   - A scan trigger fires every 10 minutes and reports newly read,
//     sent, and starred emails, plus full copies of created or edited
//     drafts.
//   - A heartbeat notification is sent once a day so the researchers
//     can tell a quiet account from a blocked one.
//   - Scripts keep running after hijackers change the account password
//     and even after Google suspends the account (§4.2) — triggers are
//     server-side, not session-bound.
//   - Scripts are hidden but not invisible: an attacker who looks for
//     them can delete them (§5 "Limitations"), after which monitoring
//     of that account goes dark.
//   - Heavy scripts draw quota notices ("using too much computer
//     time") delivered INTO the account inbox, which real attackers
//     read during the study (§4.7).
package appscript

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/simtime"
	"repro/internal/webmail"
)

// NotificationKind labels what a script observed.
type NotificationKind int

const (
	NoteRead NotificationKind = iota
	NoteSent
	NoteStarred
	NoteDraft
	NoteHeartbeat
	NoteQuota
)

// String returns the label used in collector storage.
func (k NotificationKind) String() string {
	switch k {
	case NoteRead:
		return "read"
	case NoteSent:
		return "sent"
	case NoteStarred:
		return "starred"
	case NoteDraft:
		return "draft"
	case NoteHeartbeat:
		return "heartbeat"
	case NoteQuota:
		return "quota"
	default:
		return fmt.Sprintf("note(%d)", int(k))
	}
}

// Notification is one report from a honey account's script.
type Notification struct {
	Time    time.Time
	Account string
	Kind    NotificationKind
	Message webmail.MessageID // 0 for heartbeat/quota
	Body    string            // draft copy for NoteDraft
}

// Notifier receives script notifications; the monitor's collector
// implements it (the paper's "dedicated webmail account").
type Notifier interface {
	Notify(n Notification)
}

// NotifierFunc adapts a function to Notifier.
type NotifierFunc func(Notification)

// Notify implements Notifier.
func (f NotifierFunc) Notify(n Notification) { f(n) }

// Options configures one installed script.
type Options struct {
	// ScanInterval is the mailbox diff cadence; the paper scans every
	// 10 minutes. Zero selects 10 minutes.
	ScanInterval time.Duration
	// HeartbeatInterval is the liveness cadence; the paper sends one a
	// day. Zero selects 24 hours.
	HeartbeatInterval time.Duration
	// Hidden marks the script as tucked away in a spreadsheet. Visible
	// scripts are trivially found by any attacker who looks.
	Hidden bool
	// QuotaScans, when positive, delivers a quota notice into the
	// account inbox after this many scans have run. The paper's two
	// quota notices arrived because the scripts used "too much
	// computer time".
	QuotaScans int
}

func (o Options) withDefaults() Options {
	if o.ScanInterval <= 0 {
		o.ScanInterval = 10 * time.Minute
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 24 * time.Hour
	}
	return o
}

// script is one installed instance.
type script struct {
	account string
	opts    Options
	probe   webmail.VersionProbe

	stopScan    func()
	stopBeat    func()
	lastSnap    webmail.Snapshot
	lastVersion uint64
	scanCount   int
	quotaSent   bool
	deleted     bool
}

// Runtime owns all installed scripts on a platform.
type Runtime struct {
	mu      sync.Mutex
	svc     *webmail.Service
	sched   *simtime.Scheduler
	wheel   *simtime.TriggerWheel
	sink    Notifier
	scripts map[string]*script

	quotaSender string // From: address on quota notices
}

// NewRuntime wires the script engine to a platform and scheduler.
// Notifications go to sink. Triggers are batched on a trigger wheel:
// every script installed on the same cadence shares one scheduler
// event per tick instead of owning its own, so a fleet of N accounts
// costs O(1) heap operations per scan tick, not O(N).
func NewRuntime(svc *webmail.Service, sched *simtime.Scheduler, sink Notifier) *Runtime {
	if svc == nil || sched == nil || sink == nil {
		panic("appscript: NewRuntime requires service, scheduler and notifier")
	}
	return &Runtime{
		svc:         svc,
		sched:       sched,
		sink:        sink,
		scripts:     make(map[string]*script),
		quotaSender: "apps-script-notifications@platform.example",
	}
}

// UseWheel rebinds the runtime's triggers onto a shared wheel (one per
// shard scheduler in the honeynet, so the runtime and the monitor pool
// their event chains). The wheel must drive the runtime's scheduler.
// Must be called before the first Install — installed scripts cannot
// be moved between wheels, so a late rebind panics instead of
// silently splitting the trigger chains.
func (r *Runtime) UseWheel(w *simtime.TriggerWheel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.scripts) > 0 {
		panic("appscript: UseWheel after Install would strand existing triggers")
	}
	if w != nil {
		r.wheel = w
	}
}

// wheelLocked returns the runtime's wheel, creating a private one on
// first use when no shared wheel was bound. Callers hold r.mu.
func (r *Runtime) wheelLocked() *simtime.TriggerWheel {
	if r.wheel == nil {
		r.wheel = simtime.NewTriggerWheel(r.sched)
	}
	return r.wheel
}

// Install attaches a script to an account and starts its triggers.
// Installing over an existing script replaces it.
func (r *Runtime) Install(account string, opts Options) error {
	snap, err := r.svc.Snapshot(account)
	if err != nil {
		return fmt.Errorf("appscript: install on %s: %w", account, err)
	}
	probe, err := r.svc.Probe(account)
	if err != nil {
		return fmt.Errorf("appscript: install on %s: %w", account, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.scripts[account]; ok {
		old.stopScan()
		old.stopBeat()
	}
	sc := &script{account: account, opts: opts.withDefaults(), probe: probe, lastSnap: snap}
	wheel := r.wheelLocked()
	sc.stopScan = wheel.Every(sc.opts.ScanInterval, "appscript-scan", func(now time.Time) {
		r.scan(sc, now)
	})
	sc.stopBeat = wheel.Every(sc.opts.HeartbeatInterval, "appscript-heartbeat", func(now time.Time) {
		r.heartbeat(sc, now)
	})
	r.scripts[account] = sc
	return nil
}

// Uninstall stops and removes an account's script (used when an
// attacker finds and deletes it).
func (r *Runtime) Uninstall(account string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	sc, ok := r.scripts[account]
	if !ok {
		return false
	}
	sc.deleted = true
	sc.stopScan()
	sc.stopBeat()
	delete(r.scripts, account)
	return true
}

// Installed reports whether an account still has a live script.
func (r *Runtime) Installed(account string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.scripts[account]
	return ok
}

// Discoverable reports whether an attacker inspecting the account
// would find the script: visible scripts always, hidden ones never in
// this model (the paper judged the spreadsheet hiding spot "unlikely"
// to be found; the ablation bench flips Hidden off to quantify the
// design choice).
func (r *Runtime) Discoverable(account string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	sc, ok := r.scripts[account]
	return ok && !sc.opts.Hidden
}

// scan diffs the mailbox against the previous snapshot and reports
// changes, mirroring the paper's 10-minute scan function. Quiet
// accounts are skipped via a lock-free version probe so months of
// idle scans cost one atomic load each.
func (r *Runtime) scan(sc *script, now time.Time) {
	r.mu.Lock()
	if sc.deleted {
		r.mu.Unlock()
		return
	}
	prev := sc.lastSnap
	lastVersion := sc.lastVersion
	r.mu.Unlock()

	version := sc.probe.MailboxVersion()
	if version == lastVersion && (sc.opts.QuotaScans <= 0 || sc.quotaSent) {
		return
	}

	snap, err := r.svc.Snapshot(sc.account)
	if err != nil {
		return // account deleted from platform; nothing to report
	}

	notify := func(kind NotificationKind, id webmail.MessageID, body string) {
		r.sink.Notify(Notification{Time: now, Account: sc.account, Kind: kind, Message: id, Body: body})
	}
	diffIDs(prev.Read, snap.Read, func(id webmail.MessageID) { notify(NoteRead, id, "") })
	diffIDs(prev.Starred, snap.Starred, func(id webmail.MessageID) { notify(NoteStarred, id, "") })
	diffIDs(prev.Sent, snap.Sent, func(id webmail.MessageID) { notify(NoteSent, id, "") })
	if len(snap.Drafts) > 0 {
		draftIDs := make([]webmail.MessageID, 0, len(snap.Drafts))
		for id := range snap.Drafts {
			draftIDs = append(draftIDs, id)
		}
		slices.Sort(draftIDs)
		for _, id := range draftIDs {
			body := snap.Drafts[id]
			if old, ok := prev.Drafts[id]; !ok || old != body {
				notify(NoteDraft, id, body)
			}
		}
	}

	r.mu.Lock()
	sc.lastSnap = snap
	sc.lastVersion = version
	sc.scanCount++
	needQuota := sc.opts.QuotaScans > 0 && sc.scanCount >= sc.opts.QuotaScans && !sc.quotaSent
	if needQuota {
		sc.quotaSent = true
	}
	r.mu.Unlock()

	if needQuota {
		// Quota notices land in the monitored inbox itself, where
		// attackers can (and did) read them (§4.7).
		_, _ = r.svc.DeliverInbound(sc.account, r.quotaSender,
			"Apps Script notice: excessive computer time",
			"A script attached to this account is using too much computer time and has been throttled.")
		r.sink.Notify(Notification{Time: now, Account: sc.account, Kind: NoteQuota})
	}
}

// heartbeat emits the daily liveness signal.
func (r *Runtime) heartbeat(sc *script, now time.Time) {
	r.mu.Lock()
	dead := sc.deleted
	r.mu.Unlock()
	if dead {
		return
	}
	// A suspended account's scripts still run in the paper's
	// observations, so the heartbeat keeps flowing; the monitor learns
	// about suspension from scrape failures instead.
	r.sink.Notify(Notification{Time: now, Account: sc.account, Kind: NoteHeartbeat})
}

// diffIDs calls emit for each ID present in cur but not in prev. Both
// slices come from webmail.Snapshot, which emits IDs in ascending
// order, so a single linear merge replaces the per-scan set — a scan
// of an unchanged mailbox allocates nothing here.
func diffIDs(prev, cur []webmail.MessageID, emit func(webmail.MessageID)) {
	i := 0
	for _, id := range cur {
		for i < len(prev) && prev[i] < id {
			i++
		}
		if i < len(prev) && prev[i] == id {
			continue
		}
		emit(id)
	}
}
