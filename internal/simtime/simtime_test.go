package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

func TestClockNow(t *testing.T) {
	c := NewClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", c.Now(), t0)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(t0)
	c.advance(t0.Add(time.Hour).UnixNano())
	if got := c.Now(); !got.Equal(t0.Add(time.Hour)) {
		t.Fatalf("Now() = %v, want %v", got, t0.Add(time.Hour))
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	c := NewClock(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("advancing backwards did not panic")
		}
	}()
	c.advance(t0.Add(-time.Second).UnixNano())
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	var order []string
	s.At(t0.Add(3*time.Hour), "c", func(time.Time) { order = append(order, "c") })
	s.At(t0.Add(1*time.Hour), "a", func(time.Time) { order = append(order, "a") })
	s.At(t0.Add(2*time.Hour), "b", func(time.Time) { order = append(order, "b") })
	s.RunUntil(t0.Add(24 * time.Hour))
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerTieBreakBySeq(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	var order []int
	when := t0.Add(time.Minute)
	for i := 0; i < 10; i++ {
		i := i
		s.At(when, "tie", func(time.Time) { order = append(order, i) })
	}
	s.RunUntil(when)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order = %v, want ascending", order)
		}
	}
}

func TestSchedulerClockAtEventTime(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	var seen time.Time
	s.After(90*time.Minute, "probe", func(now time.Time) { seen = now })
	s.RunFor(2 * time.Hour)
	if !seen.Equal(t0.Add(90 * time.Minute)) {
		t.Fatalf("event saw now=%v, want %v", seen, t0.Add(90*time.Minute))
	}
	if !s.Now().Equal(t0.Add(2 * time.Hour)) {
		t.Fatalf("clock after RunFor = %v, want %v", s.Now(), t0.Add(2*time.Hour))
	}
}

func TestSchedulerRunUntilLeavesLaterEvents(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	ran := 0
	s.At(t0.Add(time.Hour), "in", func(time.Time) { ran++ })
	s.At(t0.Add(48*time.Hour), "out", func(time.Time) { ran++ })
	n := s.RunUntil(t0.Add(24 * time.Hour))
	if n != 1 || ran != 1 {
		t.Fatalf("RunUntil executed %d (cb %d), want 1", n, ran)
	}
	if s.Len() != 1 {
		t.Fatalf("pending = %d, want 1", s.Len())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	ran := false
	e := s.After(time.Hour, "x", func(time.Time) { ran = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
	s.RunFor(2 * time.Hour)
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

func TestSchedulerCancelNil(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	if s.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestEvery(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	n := 0
	stop := s.Every(10*time.Minute, "scan", func(time.Time) { n++ })
	s.RunFor(time.Hour)
	if n != 6 {
		t.Fatalf("ticks in 1h at 10m = %d, want 6", n)
	}
	stop()
	s.RunFor(time.Hour)
	if n != 6 {
		t.Fatalf("ticks after stop = %d, want 6", n)
	}
}

func TestEveryStopFromWithinTick(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	n := 0
	var stop func()
	stop = s.Every(time.Minute, "self-stop", func(time.Time) {
		n++
		if n == 3 {
			stop()
		}
	})
	s.RunFor(time.Hour)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3 (stopped from within)", n)
	}
}

func TestEveryInvalidInterval(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	s.Every(0, "bad", func(time.Time) {})
}

func TestAtNilFuncPanics(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil fn) did not panic")
		}
	}()
	s.At(t0, "nil", nil)
}

func TestPastDueEventObservesCurrentTime(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	s.RunUntil(t0.Add(time.Hour)) // clock now t0+1h
	var seen time.Time
	s.At(t0.Add(time.Minute), "late", func(now time.Time) { seen = now })
	s.Step()
	if !seen.Equal(t0.Add(time.Hour)) {
		t.Fatalf("past-due event saw %v, want clock time %v", seen, t0.Add(time.Hour))
	}
}

func TestDrainCap(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	s.Every(time.Minute, "forever", func(time.Time) {})
	n := s.Drain(25)
	if n != 25 {
		t.Fatalf("Drain executed %d, want capped 25", n)
	}
}

func TestFiredCounter(t *testing.T) {
	s := NewScheduler(NewClock(t0))
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Minute, "n", func(time.Time) {})
	}
	s.RunFor(time.Hour)
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
}

// Property: for any set of offsets, events fire in nondecreasing time
// order and the clock never moves backwards.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		s := NewScheduler(NewClock(t0))
		var fired []time.Time
		for _, off := range offsets {
			d := time.Duration(off) * time.Second
			s.After(d, "p", func(now time.Time) { fired = append(fired, now) })
		}
		s.RunUntil(t0.Add(time.Duration(1<<16) * time.Second))
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil(d) then RunUntil(d') for d' >= d is equivalent to
// a single RunUntil(d') in terms of events executed.
func TestPropertySplitRunEquivalence(t *testing.T) {
	f := func(offsets []uint16, splitAt uint16) bool {
		run := func(split bool) int {
			s := NewScheduler(NewClock(t0))
			total := 0
			for _, off := range offsets {
				s.After(time.Duration(off)*time.Second, "p", func(time.Time) {})
			}
			end := t0.Add(time.Duration(1<<16) * time.Second)
			if split {
				total += s.RunUntil(t0.Add(time.Duration(splitAt) * time.Second))
			}
			total += s.RunUntil(end)
			return total
		}
		return run(true) == run(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
