package simtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testStart() time.Time {
	return time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
}

func TestShardSetRunsAllToDeadline(t *testing.T) {
	start := testStart()
	deadline := start.Add(24 * time.Hour)
	set := NewShardSet()
	var fired [4]int
	for i := 0; i < 4; i++ {
		i := i
		s := NewScheduler(NewClock(start))
		s.Every(time.Hour, "tick", func(time.Time) { fired[i]++ })
		set.Add(s)
	}
	total := set.RunUntil(deadline, 4)
	for i, n := range fired {
		if n != 24 {
			t.Fatalf("shard %d fired %d events, want 24", i, n)
		}
	}
	if total != 4*24 {
		t.Fatalf("total = %d, want %d", total, 4*24)
	}
	for i := 0; i < set.Len(); i++ {
		if now := set.Scheduler(i).Now(); !now.Equal(deadline) {
			t.Fatalf("shard %d clock at %v, want %v", i, now, deadline)
		}
	}
	if set.Fired() != 4*24 {
		t.Fatalf("Fired() = %d", set.Fired())
	}
	if set.Pending() == 0 {
		t.Fatal("Every loops should leave one pending event per shard")
	}
}

func TestShardSetWorkerCountsEquivalent(t *testing.T) {
	// The same shard workloads must produce identical per-shard event
	// counts regardless of worker parallelism.
	run := func(workers int) [3]uint64 {
		start := testStart()
		set := NewShardSet()
		for i := 0; i < 3; i++ {
			s := NewScheduler(NewClock(start))
			interval := time.Duration(i+1) * time.Hour
			s.Every(interval, "tick", func(time.Time) {})
			set.Add(s)
		}
		set.RunUntil(start.Add(48*time.Hour), workers)
		var out [3]uint64
		for i := 0; i < 3; i++ {
			out[i] = set.Scheduler(i).Fired()
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 3, 0, 16} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d fired %v, serial fired %v", workers, got, serial)
		}
	}
}

func TestShardSetEmpty(t *testing.T) {
	if n := NewShardSet().RunUntil(testStart(), 4); n != 0 {
		t.Fatalf("empty set ran %d events", n)
	}
}

// TestSchedulerConcurrentEveryCancel hammers Every/Cancel/At from many
// goroutines while a single driver steps the scheduler — the contract
// is: scheduling is safe from any goroutine, Run/Step from one. Run
// with -race to catch lock violations.
func TestSchedulerConcurrentEveryCancel(t *testing.T) {
	start := testStart()
	s := NewScheduler(NewClock(start))

	var fired, stopped atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})

	// Driver goroutine: the only caller of Step/RunUntil.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				s.RunUntil(s.Now().Add(10 * time.Minute))
				return
			default:
				if !s.Step() {
					time.Sleep(time.Microsecond)
				}
			}
		}
	}()

	// Concurrent schedulers: Every loops started and stopped from
	// other goroutines, plus one-shot events cancelled mid-flight.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				stop := s.Every(time.Second, "every", func(time.Time) { fired.Add(1) })
				e := s.After(time.Duration(i+1)*time.Millisecond, "oneshot", func(time.Time) { fired.Add(1) })
				if s.Cancel(e) {
					stopped.Add(1)
				}
				if s.Cancel(e) {
					t.Error("double-cancel reported true")
				}
				stop()
				stop() // stopping twice must be harmless
			}
		}()
	}

	// Let the drivers race for a little while, then stop everything.
	time.Sleep(20 * time.Millisecond)
	close(done)
	wg.Wait()

	if stopped.Load() == 0 {
		t.Fatal("no cancellations took effect")
	}
}

// TestSchedulerEveryStopsAfterCancelInCallback checks the documented
// interleaving: calling the stop function from inside the ticking
// callback prevents any further firings.
func TestSchedulerEveryStopsAfterCancelInCallback(t *testing.T) {
	s := NewScheduler(NewClock(testStart()))
	count := 0
	var stop func()
	stop = s.Every(time.Minute, "self-stop", func(time.Time) {
		count++
		if count == 3 {
			stop()
		}
	})
	s.RunFor(time.Hour)
	if count != 3 {
		t.Fatalf("ticked %d times after in-callback stop, want 3", count)
	}
}
