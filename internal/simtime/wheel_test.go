package simtime

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func newWheelFixture() (*Clock, *Scheduler, *TriggerWheel) {
	clock := NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
	sched := NewScheduler(clock)
	return clock, sched, NewTriggerWheel(sched)
}

// Callbacks registered at the same instant on the same cadence share
// one bucket, fire in registration order, and first fire one interval
// after registration — Every semantics, O(1) heap events per tick.
func TestWheelBatchesSameCadence(t *testing.T) {
	_, sched, w := newWheelFixture()
	var fired []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		w.Every(10*time.Minute, "scan", func(time.Time) {
			fired = append(fired, name)
		})
	}
	if got := w.Buckets(); got != 1 {
		t.Fatalf("buckets = %d, want 1 (shared cadence)", got)
	}
	if got := sched.Len(); got != 1 {
		t.Fatalf("pending events = %d, want 1 (one chain for 3 callbacks)", got)
	}
	sched.RunFor(10 * time.Minute)
	if fmt.Sprint(fired) != "[a b c]" {
		t.Fatalf("first tick fired %v, want registration order [a b c]", fired)
	}
	sched.RunFor(20 * time.Minute)
	if len(fired) != 9 {
		t.Fatalf("after 3 ticks fired %d callbacks, want 9", len(fired))
	}
}

// The first fire lands exactly one interval after registration, never
// earlier: a mid-cycle registrant gets its own phase bucket instead of
// joining an existing lattice.
func TestWheelMidCycleRegistrationKeepsPhase(t *testing.T) {
	_, sched, w := newWheelFixture()
	var early, late []time.Time
	w.Every(10*time.Minute, "early", func(now time.Time) { early = append(early, now) })
	sched.RunFor(4 * time.Minute) // advance off the lattice
	w.Every(10*time.Minute, "late", func(now time.Time) { late = append(late, now) })
	if got := w.Buckets(); got != 2 {
		t.Fatalf("buckets = %d, want 2 (different phases)", got)
	}
	sched.RunFor(30 * time.Minute)
	if len(early) != 3 || len(late) != 3 {
		t.Fatalf("fired %d/%d, want 3/3", len(early), len(late))
	}
	base := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	if !late[0].Equal(base.Add(14 * time.Minute)) {
		t.Fatalf("late first fired at %v, want t+interval = %v", late[0], base.Add(14*time.Minute))
	}
	if !early[0].Equal(base.Add(10 * time.Minute)) {
		t.Fatalf("early first fired at %v", early[0])
	}
}

// A callback registered at the exact instant an existing bucket's
// tick is due — from inside that very tick — still waits one full
// interval before its first fire, exactly like Scheduler.Every.
func TestWheelOnLatticeRegistrationWaitsFullInterval(t *testing.T) {
	base := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	_, sched, w := newWheelFixture()
	var late []time.Time
	registered := false
	w.Every(10*time.Minute, "host", func(now time.Time) {
		if !registered && now.Equal(base.Add(20*time.Minute)) {
			registered = true
			// Same interval, and the clock sits exactly on the host
			// bucket's lattice: the registrant joins this bucket but
			// must not fire until t+interval.
			w.Every(10*time.Minute, "late", func(now time.Time) { late = append(late, now) })
		}
	})
	sched.RunFor(40 * time.Minute)
	if w.Buckets() != 1 {
		t.Fatalf("buckets = %d, want 1 (on-lattice registrant shares the bucket)", w.Buckets())
	}
	if len(late) != 2 {
		t.Fatalf("late fired %d times, want 2 (at 30m and 40m)", len(late))
	}
	if !late[0].Equal(base.Add(30 * time.Minute)) {
		t.Fatalf("late first fired at %v, want one full interval after registration (%v)",
			late[0], base.Add(30*time.Minute))
	}
}

// Stopping an entry stops only that entry; stopping the last entry
// retires the bucket and its event chain.
func TestWheelStopRemovesEntryThenBucket(t *testing.T) {
	_, sched, w := newWheelFixture()
	var a, b int
	stopA := w.Every(time.Minute, "a", func(time.Time) { a++ })
	stopB := w.Every(time.Minute, "b", func(time.Time) { b++ })
	sched.RunFor(2 * time.Minute)
	stopA()
	stopA() // idempotent
	sched.RunFor(2 * time.Minute)
	if a != 2 || b != 4 {
		t.Fatalf("a=%d b=%d, want 2/4", a, b)
	}
	if w.Buckets() != 1 {
		t.Fatalf("buckets = %d, want 1", w.Buckets())
	}
	stopB()
	if w.Buckets() != 0 {
		t.Fatalf("buckets after last stop = %d, want 0", w.Buckets())
	}
	sched.RunFor(5 * time.Minute)
	if b != 4 {
		t.Fatalf("stopped bucket still fired: b=%d", b)
	}
}

// A callback cancelled by an earlier callback in the same tick is
// skipped; a callback may also cancel itself without deadlocking.
func TestWheelCancelDuringTick(t *testing.T) {
	_, sched, w := newWheelFixture()
	var stopOther, stopSelf func()
	other := 0
	w.Every(time.Minute, "killer", func(time.Time) {
		if stopOther != nil {
			stopOther()
			stopOther = nil
		}
	})
	stopOther = w.Every(time.Minute, "victim", func(time.Time) { other++ })
	self := 0
	stopSelf = w.Every(time.Minute, "self", func(time.Time) {
		self++
		stopSelf()
	})
	sched.RunFor(3 * time.Minute)
	if other != 0 {
		t.Fatalf("cancelled-in-tick callback fired %d times", other)
	}
	if self != 1 {
		t.Fatalf("self-cancelling callback fired %d times, want 1", self)
	}
}

// Different cadences never share a bucket, and each keeps exact Every
// timing (heartbeats at 24h must not ride the 10-minute scan chain).
func TestWheelSeparatesCadences(t *testing.T) {
	_, sched, w := newWheelFixture()
	scans, beats := 0, 0
	w.Every(10*time.Minute, "scan", func(time.Time) { scans++ })
	w.Every(24*time.Hour, "beat", func(time.Time) { beats++ })
	if w.Buckets() != 2 {
		t.Fatalf("buckets = %d, want 2", w.Buckets())
	}
	sched.RunFor(48 * time.Hour)
	if scans != 288 || beats != 2 {
		t.Fatalf("scans=%d beats=%d, want 288/2", scans, beats)
	}
}

// Re-registering after the bucket died restarts a fresh chain (the
// appscript reinstall pattern).
func TestWheelReuseAfterEmpty(t *testing.T) {
	_, sched, w := newWheelFixture()
	n := 0
	stop := w.Every(time.Hour, "x", func(time.Time) { n++ })
	stop()
	w.Every(time.Hour, "y", func(time.Time) { n += 10 })
	sched.RunFor(time.Hour)
	if n != 10 {
		t.Fatalf("n = %d, want 10 (only the new registration fires)", n)
	}
}

// Heavy churn keeps the entry list compacted rather than accumulating
// dead entries forever.
func TestWheelCompaction(t *testing.T) {
	_, sched, w := newWheelFixture()
	keep := 0
	w.Every(time.Minute, "keep", func(time.Time) { keep++ })
	for i := 0; i < 1000; i++ {
		stop := w.Every(time.Minute, "churn", func(time.Time) {})
		stop()
	}
	b := func() *wheelBucket {
		w.mu.Lock()
		defer w.mu.Unlock()
		for _, b := range w.buckets {
			return b
		}
		return nil
	}()
	b.mu.Lock()
	entries := len(b.entries)
	b.mu.Unlock()
	if entries > 10 {
		t.Fatalf("bucket holds %d entries after churn, want compacted", entries)
	}
	sched.RunFor(time.Minute)
	if keep != 1 {
		t.Fatalf("survivor fired %d times, want 1", keep)
	}
}

// Concurrent registration/cancellation is safe (the honeynet registers
// from Setup while shard goroutines may drive other wheels; the race
// detector is the real assertion here).
func TestWheelConcurrentRegistration(t *testing.T) {
	_, sched, w := newWheelFixture()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				stop := w.Every(time.Minute, "c", func(time.Time) {})
				if j%2 == 0 {
					stop()
				}
			}
		}()
	}
	wg.Wait()
	sched.RunFor(time.Minute)
	if w.Buckets() != 1 {
		t.Fatalf("buckets = %d", w.Buckets())
	}
}
