package simtime

import (
	"sync"
	"time"
)

// ShardSet executes several independent Schedulers concurrently. It is
// the simulation-time backbone of the sharded experiment engine: each
// shard owns one Scheduler (and therefore one Clock), shards never
// share mutable state, and the set drives all of them to a common
// deadline across worker goroutines. Because every scheduler is
// isolated, the outcome is identical whether the shards run serially,
// on one worker, or fully in parallel.
type ShardSet struct {
	scheds []*Scheduler
}

// NewShardSet builds a set over the given schedulers.
func NewShardSet(scheds ...*Scheduler) *ShardSet {
	return &ShardSet{scheds: append([]*Scheduler(nil), scheds...)}
}

// Add appends a scheduler to the set.
func (ss *ShardSet) Add(s *Scheduler) { ss.scheds = append(ss.scheds, s) }

// Len returns the number of shards.
func (ss *ShardSet) Len() int { return len(ss.scheds) }

// Scheduler returns the i-th shard's scheduler.
func (ss *ShardSet) Scheduler(i int) *Scheduler { return ss.scheds[i] }

// Fired sums the events executed across all shards.
func (ss *ShardSet) Fired() uint64 {
	var n uint64
	for _, s := range ss.scheds {
		n += s.Fired()
	}
	return n
}

// Pending sums the events still queued across all shards.
func (ss *ShardSet) Pending() int {
	n := 0
	for _, s := range ss.scheds {
		n += s.Len()
	}
	return n
}

// RunUntil advances every shard to the common deadline, spawning at
// most workers goroutines (workers <= 0 or >= len selects one
// goroutine per shard). It returns the total number of events
// executed. Each shard's Run loop stays single-threaded — the
// Scheduler contract — while distinct shards proceed concurrently.
func (ss *ShardSet) RunUntil(deadline time.Time, workers int) int {
	n := len(ss.scheds)
	if n == 0 {
		return 0
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 1 {
		total := 0
		for _, s := range ss.scheds {
			total += s.RunUntil(deadline)
		}
		return total
	}
	var (
		wg    sync.WaitGroup
		next  = make(chan *Scheduler, n)
		mu    sync.Mutex
		total int
	)
	for _, s := range ss.scheds {
		next <- s
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				ran := s.RunUntil(deadline)
				mu.Lock()
				total += ran
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return total
}
