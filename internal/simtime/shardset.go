package simtime

import (
	"sync"
	"time"
)

// ShardSet executes several independent Schedulers concurrently. It is
// the simulation-time backbone of the sharded experiment engine: each
// shard owns one Scheduler (and therefore one Clock), shards never
// share mutable state, and the set drives all of them to a common
// deadline across worker goroutines. Because every scheduler is
// isolated, the outcome is identical whether the shards run serially,
// on one worker, or fully in parallel.
type ShardSet struct {
	scheds []*Scheduler
}

// NewShardSet builds a set over the given schedulers.
func NewShardSet(scheds ...*Scheduler) *ShardSet {
	return &ShardSet{scheds: append([]*Scheduler(nil), scheds...)}
}

// Add appends a scheduler to the set.
func (ss *ShardSet) Add(s *Scheduler) { ss.scheds = append(ss.scheds, s) }

// Len returns the number of shards.
func (ss *ShardSet) Len() int { return len(ss.scheds) }

// Scheduler returns the i-th shard's scheduler.
func (ss *ShardSet) Scheduler(i int) *Scheduler { return ss.scheds[i] }

// Fired sums the events executed across all shards.
func (ss *ShardSet) Fired() uint64 {
	var n uint64
	for _, s := range ss.scheds {
		n += s.Fired()
	}
	return n
}

// Pending sums the events still queued across all shards.
func (ss *ShardSet) Pending() int {
	n := 0
	for _, s := range ss.scheds {
		n += s.Len()
	}
	return n
}

// WorkerPool is a counted budget of simulation workers shared by any
// number of ShardSets. The scenario matrix engine hands one pool to
// every concurrently running scenario so the whole matrix never
// drives more than n shard schedulers at once, however many scenarios
// × shards it fans out. Acquire/Release are also used directly to
// gate serial phases (scenario Setup/Leak) on the same budget.
type WorkerPool struct {
	sem chan struct{}
}

// NewWorkerPool builds a pool of n workers (n <= 0 selects 1).
func NewWorkerPool(n int) *WorkerPool {
	if n <= 0 {
		n = 1
	}
	return &WorkerPool{sem: make(chan struct{}, n)}
}

// Size returns the pool's worker budget.
func (p *WorkerPool) Size() int { return cap(p.sem) }

// Acquire blocks until a worker slot is free and claims it.
func (p *WorkerPool) Acquire() { p.sem <- struct{}{} }

// Release returns a claimed slot to the pool.
func (p *WorkerPool) Release() { <-p.sem }

// RunUntilPool advances every shard to the common deadline like
// RunUntil, but draws its concurrency from a shared WorkerPool
// instead of spawning a private worker count: each shard runs on its
// own goroutine that first claims a pool slot, so concurrently
// running ShardSets (one per scenario in a matrix) jointly respect
// one budget. A nil pool falls back to RunUntil with one worker per
// shard. The executed-event total is returned; because shards share
// no mutable state, results are identical however slots interleave.
func (ss *ShardSet) RunUntilPool(deadline time.Time, pool *WorkerPool) int {
	if pool == nil {
		return ss.RunUntil(deadline, 0)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
	)
	for _, s := range ss.scheds {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Acquire()
			defer pool.Release()
			ran := s.RunUntil(deadline)
			mu.Lock()
			total += ran
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// RunUntil advances every shard to the common deadline, spawning at
// most workers goroutines (workers <= 0 or >= len selects one
// goroutine per shard). It returns the total number of events
// executed. Each shard's Run loop stays single-threaded — the
// Scheduler contract — while distinct shards proceed concurrently.
func (ss *ShardSet) RunUntil(deadline time.Time, workers int) int {
	n := len(ss.scheds)
	if n == 0 {
		return 0
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 1 {
		total := 0
		for _, s := range ss.scheds {
			total += s.RunUntil(deadline)
		}
		return total
	}
	var (
		wg    sync.WaitGroup
		next  = make(chan *Scheduler, n)
		mu    sync.Mutex
		total int
	)
	for _, s := range ss.scheds {
		next <- s
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				ran := s.RunUntil(deadline)
				mu.Lock()
				total += ran
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return total
}
