package simtime

import (
	"sort"
	"sync"
	"time"
)

// TriggerWheel batches periodic callbacks that share a cadence onto a
// single scheduler event chain. A fleet-scale honeynet installs one
// scan trigger and one heartbeat trigger per account; scheduled
// individually that is O(accounts) heap events per tick (tens of
// millions of heap sift operations over a seven-month run). The wheel
// collapses every callback with the same (interval, phase) into one
// bucket driven by one Every chain, so the scheduler pays O(1) heap
// operations per tick regardless of how many accounts registered.
//
// Semantics match Scheduler.Every exactly: a callback registered at
// time t with interval i first fires at t+i and then every i after.
// Callbacks registered at the same instant on the same cadence share a
// bucket and fire in registration order — the same order individually
// scheduled events with identical due times would fire (heap ties
// break by scheduling sequence). Callbacks registered mid-cycle land
// in a bucket with a different phase and keep their own tick lattice,
// so batching never shifts a trigger's firing times.
//
// TriggerWheel is safe for concurrent registration; callbacks run on
// the scheduler's Run goroutine like any other event.
type TriggerWheel struct {
	sched *Scheduler

	mu      sync.Mutex
	buckets map[wheelKey]*wheelBucket
}

// wheelKey identifies a bucket: every callback in it fires at instants
// ≡ phase (mod interval), in nanoseconds.
type wheelKey struct {
	intervalNS int64
	phaseNS    int64
}

// wheelBucket is one (interval, phase) group: a single Every chain
// fanning out to its entries in registration order.
type wheelBucket struct {
	wheel *TriggerWheel
	key   wheelKey

	mu       sync.Mutex
	entries  []*wheelEntry
	live     int
	stopped  int // entries cancelled but not yet compacted
	stopTick func()

	// scratch is tick's reusable snapshot of entries. Ticks of one
	// bucket never overlap — the chain is a single Every on the
	// scheduler's Run goroutine and callbacks cannot re-enter it — so
	// one buffer per bucket makes the per-tick snapshot allocation-free.
	scratch []*wheelEntry
}

// wheelEntry is one registered callback.
type wheelEntry struct {
	fn func(now time.Time)
	// notBeforeNS is registration time + interval: the earliest tick
	// this entry may fire on. It keeps Every semantics exact when a
	// registration lands at the very instant an existing bucket's tick
	// is due but has not run yet — without it the new callback would
	// fire zero intervals after registration.
	notBeforeNS int64
	stopped     bool
}

// NewTriggerWheel returns a wheel batching onto the given scheduler.
func NewTriggerWheel(sched *Scheduler) *TriggerWheel {
	if sched == nil {
		panic("simtime: NewTriggerWheel requires a scheduler")
	}
	return &TriggerWheel{sched: sched, buckets: make(map[wheelKey]*wheelBucket)}
}

// Scheduler returns the scheduler the wheel batches onto.
func (w *TriggerWheel) Scheduler() *Scheduler { return w.sched }

// Buckets returns the number of live (interval, phase) groups — the
// number of scheduler event chains the wheel is paying for.
func (w *TriggerWheel) Buckets() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buckets)
}

// ChainState describes one live (interval, phase) bucket: its cadence
// and how many registered callbacks ride it. Pending events carry
// closures, so a chain cannot cross a process boundary — instead the
// snapshot engine serializes these descriptors and, after the resumed
// experiment re-arms its own triggers, verifies the rebuilt wheel has
// chain-for-chain identical state.
type ChainState struct {
	IntervalNS int64
	PhaseNS    int64
	Entries    int
}

// Chains returns the wheel's live buckets sorted by (interval, phase)
// — a deterministic structural fingerprint of the wheel.
func (w *TriggerWheel) Chains() []ChainState {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]ChainState, 0, len(w.buckets))
	for key, b := range w.buckets {
		b.mu.Lock()
		out = append(out, ChainState{IntervalNS: key.intervalNS, PhaseNS: key.phaseNS, Entries: b.live})
		b.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IntervalNS != out[j].IntervalNS {
			return out[i].IntervalNS < out[j].IntervalNS
		}
		return out[i].PhaseNS < out[j].PhaseNS
	})
	return out
}

// Every registers fn to run every interval, first firing one interval
// from now, until the returned stop function is called. The name
// labels the bucket's scheduler events (the first registrant's name
// wins for a shared bucket; it is diagnostic only).
func (w *TriggerWheel) Every(interval time.Duration, name string, fn func(now time.Time)) (stop func()) {
	if interval <= 0 {
		panic("simtime: TriggerWheel.Every requires a positive interval")
	}
	if fn == nil {
		panic("simtime: TriggerWheel.Every called with nil function")
	}
	intervalNS := int64(interval)
	nowNS := w.sched.Clock().nowNanos()
	phase := nowNS % intervalNS
	if phase < 0 {
		phase += intervalNS
	}
	key := wheelKey{intervalNS: intervalNS, phaseNS: phase}
	e := &wheelEntry{fn: fn, notBeforeNS: nowNS + intervalNS}

	// The entry is appended while still holding the wheel lock (bucket
	// lock nested inside — the same order remove's retirement path
	// uses) so a concurrent remove can never empty, delete and stop
	// the bucket between our lookup and our append: either remove's
	// live re-check sees our entry, or the bucket is already gone and
	// we create a fresh one with a fresh chain.
	w.mu.Lock()
	b, ok := w.buckets[key]
	if !ok {
		b = &wheelBucket{wheel: w, key: key}
		w.buckets[key] = b
		// Start the chain after publishing the bucket; the first tick is
		// one interval away, so no event can fire before we finish.
		b.stopTick = w.sched.Every(interval, name, b.tick)
	}
	b.mu.Lock()
	b.entries = append(b.entries, e)
	b.live++
	b.mu.Unlock()
	w.mu.Unlock()
	return func() { b.remove(e) }
}

// tick fires every live, due entry in registration order. The entry
// list is snapshotted so callbacks may register or cancel triggers
// (even their own) without deadlocking; an entry cancelled mid-tick by
// an earlier callback is skipped, and an entry registered less than
// one interval ago waits for its first full interval (Every
// semantics).
func (b *wheelBucket) tick(now time.Time) {
	nowNS := now.UnixNano()
	b.mu.Lock()
	entries := append(b.scratch[:0], b.entries...)
	// Drop stale tail pointers so cancelled entries are not retained
	// past the tick that stopped seeing them.
	clear(entries[len(entries):cap(entries)])
	b.scratch = entries
	b.mu.Unlock()
	for _, e := range entries {
		if e.notBeforeNS > nowNS {
			continue
		}
		b.mu.Lock()
		dead := e.stopped
		b.mu.Unlock()
		if dead {
			continue
		}
		e.fn(now)
	}
}

// remove cancels one entry; the last removal stops the bucket's chain
// and drops the bucket. Removing twice is a no-op.
func (b *wheelBucket) remove(e *wheelEntry) {
	b.mu.Lock()
	if e.stopped {
		b.mu.Unlock()
		return
	}
	e.stopped = true
	b.live--
	b.stopped++
	// Compact once cancelled entries dominate, so a long-lived bucket
	// with churn does not scan dead entries forever.
	if b.stopped > len(b.entries)/2 {
		kept := b.entries[:0]
		for _, x := range b.entries {
			if !x.stopped {
				kept = append(kept, x)
			}
		}
		for i := len(kept); i < len(b.entries); i++ {
			b.entries[i] = nil
		}
		b.entries = kept
		b.stopped = 0
	}
	empty := b.live == 0
	stopTick := b.stopTick
	b.mu.Unlock()

	if empty {
		b.wheel.mu.Lock()
		// Re-check under the wheel lock: a concurrent Every may have
		// repopulated this bucket — or already retired it and published
		// a fresh bucket under the same key, which must not be deleted
		// from under its registrants (hence the identity check).
		b.mu.Lock()
		retire := b.live == 0 && b.wheel.buckets[b.key] == b
		if retire {
			delete(b.wheel.buckets, b.key)
		}
		b.mu.Unlock()
		b.wheel.mu.Unlock()
		if retire {
			stopTick()
		}
	}
}
