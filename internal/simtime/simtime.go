// Package simtime provides a deterministic discrete-event simulation
// clock and scheduler.
//
// The honeynet experiment spans seven months of virtual time
// (2015-06-25 through 2016-02-16 in the paper). Running it against the
// wall clock is impossible, so every component in this repository —
// the webmail service, the Apps Script runtime, outlets, the malware
// sandbox, and attacker models — reads time from a *Clock and
// schedules future work on a *Scheduler instead of using the time
// package directly. Advancing the scheduler drains due events in
// timestamp order, which makes a full experiment run deterministic
// and fast (milliseconds of wall time for months of virtual time).
package simtime

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is
// not usable; construct one with NewClock. Clock is safe for
// concurrent use.
//
// The instant is stored as atomic Unix nanoseconds: Now sits on the
// hot path of every simulated component (tens of millions of calls in
// a fleet-scale run), and a lock-free load beats even an RWMutex read
// lock by a wide margin. All experiment times are well inside the
// ±292-year UnixNano range.
type Clock struct {
	nowNS atomic.Int64
}

// NewClock returns a Clock set to the given start instant.
func NewClock(start time.Time) *Clock {
	c := &Clock{}
	c.nowNS.Store(start.UnixNano())
	return c
}

// Now returns the current virtual time (UTC).
func (c *Clock) Now() time.Time {
	return time.Unix(0, c.nowNS.Load()).UTC()
}

// nowNanos returns the current virtual time in Unix nanoseconds.
func (c *Clock) nowNanos() int64 { return c.nowNS.Load() }

// advance moves the clock forward to t (Unix nanoseconds). It panics
// if t is earlier than the current virtual time: the simulation must
// never travel backwards, and a violation indicates a scheduler bug.
func (c *Clock) advance(t int64) {
	now := c.nowNS.Load()
	if t < now {
		panic(fmt.Sprintf("simtime: clock moved backwards: %v -> %v",
			time.Unix(0, now).UTC(), time.Unix(0, t).UTC()))
	}
	c.nowNS.Store(t)
}

// Event is a scheduled callback. Events compare by (when, seq): two
// events due at the same instant fire in scheduling order, which keeps
// runs reproducible.
type Event struct {
	whenNS int64 // due instant in Unix nanoseconds (the heap key)
	seq    uint64
	name   string
	fn     func(now time.Time)

	index    int // heap index, -1 when popped or cancelled
	canceled bool
}

// When returns the instant the event is due.
func (e *Event) When() time.Time { return time.Unix(0, e.whenNS).UTC() }

// Name returns the diagnostic label the event was scheduled with.
func (e *Event) Name() string { return e.name }

// eventQueue is a min-heap of events ordered by (when, seq). Keys are
// integer nanoseconds: heap sift dominates a fleet-scale run's
// profile, and two int compares beat time.Time's Equal/Before pair.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].whenNS != q[j].whenNS {
		return q[i].whenNS < q[j].whenNS
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler owns a Clock and a priority queue of future events.
// Scheduler is safe for concurrent scheduling, but Run/Step must be
// called from a single goroutine.
type Scheduler struct {
	mu    sync.Mutex
	clock *Clock
	queue eventQueue
	seq   uint64

	fired atomic.Uint64
}

// NewScheduler returns a Scheduler driving the given clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the clock the scheduler advances.
func (s *Scheduler) Clock() *Clock { return s.clock }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.clock.Now() }

// Len returns the number of pending events.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired.Load() }

// Seq returns the number of events ever scheduled. Together with Len
// and Fired it pins the scheduler's observable state: the snapshot
// engine records all three and verifies that a resumed experiment
// re-arms its schedulers into exactly the state the original had.
func (s *Scheduler) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// At schedules fn to run at instant t. Events scheduled in the past
// fire immediately on the next Step (the clock never goes backwards;
// such events observe the current time). The returned *Event may be
// passed to Cancel.
func (s *Scheduler) At(t time.Time, name string, fn func(now time.Time)) *Event {
	if fn == nil {
		panic("simtime: At called with nil function")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &Event{whenNS: t.UnixNano(), seq: s.seq, name: name, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, name string, fn func(now time.Time)) *Event {
	return s.At(s.clock.Now().Add(d), name, fn)
}

// Every schedules fn to run every interval, starting one interval from
// now, until the returned stop function is called. The paper's
// Apps-Script scan trigger ("every 10 minutes") and heartbeat ("once a
// day") are built on this.
func (s *Scheduler) Every(interval time.Duration, name string, fn func(now time.Time)) (stop func()) {
	if interval <= 0 {
		panic("simtime: Every requires a positive interval")
	}
	var stopped atomic.Bool
	var tick func(now time.Time)
	tick = func(now time.Time) {
		if stopped.Load() {
			return
		}
		fn(now)
		if !stopped.Load() {
			s.After(interval, name, tick)
		}
	}
	s.After(interval, name, tick)
	return func() { stopped.Store(true) }
}

// Cancel removes a pending event. Cancelling an event that already
// fired (or was cancelled) is a no-op and returns false.
func (s *Scheduler) Cancel(e *Event) bool {
	if e == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	heap.Remove(&s.queue, e.index)
	return true
}

// pop removes and returns the earliest pending event, or nil.
func (s *Scheduler) pop() *Event {
	return s.popDue(int64(^uint64(0) >> 1)) // max int64: everything is due
}

// popDue removes and returns the earliest pending event due at or
// before deadlineNS, or nil. One lock round-trip serves the peek and
// the pop — the run loop executes this once per event, so the saving
// is per-event.
func (s *Scheduler) popDue(deadlineNS int64) *Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 || s.queue[0].whenNS > deadlineNS {
		return nil
	}
	return heap.Pop(&s.queue).(*Event)
}

// run executes the popped event: advance the clock (past-due events
// observe the current time), count it, call it.
func (s *Scheduler) run(e *Event) {
	now := s.clock.nowNanos()
	if e.whenNS > now {
		s.clock.advance(e.whenNS)
		now = e.whenNS
	}
	s.fired.Add(1)
	e.fn(time.Unix(0, now).UTC())
}

// Step executes the single earliest pending event, advancing the clock
// to its due time (or leaving the clock untouched for past-due
// events). It reports whether an event ran.
func (s *Scheduler) Step() bool {
	e := s.pop()
	if e == nil {
		return false
	}
	s.run(e)
	return true
}

// RunUntil executes pending events in order until the queue is empty
// or the next event is due after deadline. The clock finishes at
// deadline (if reached) or at the last executed event. It returns the
// number of events executed.
func (s *Scheduler) RunUntil(deadline time.Time) int {
	deadlineNS := deadline.UnixNano()
	n := 0
	for {
		e := s.popDue(deadlineNS)
		if e == nil {
			break
		}
		s.run(e)
		n++
	}
	if deadlineNS > s.clock.nowNanos() {
		s.clock.advance(deadlineNS)
	}
	return n
}

// RunFor executes events for the given span of virtual time starting
// at the current instant. It returns the number of events executed.
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.clock.Now().Add(d))
}

// Drain executes every pending event regardless of timestamp, up to
// the given maximum (a safety valve against self-perpetuating
// schedules such as Every loops). It returns the number executed.
func (s *Scheduler) Drain(max int) int {
	n := 0
	for n < max && s.Step() {
		n++
	}
	return n
}
