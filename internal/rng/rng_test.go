package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestForkNamedStableAcrossDrawOrder(t *testing.T) {
	a := New(7)
	b := New(7)
	b.Float64() // perturb draw order
	b.Intn(10)
	fa, fb := a.ForkNamed("outlets"), b.ForkNamed("outlets")
	for i := 0; i < 100; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatal("ForkNamed depends on parent draw order")
		}
	}
}

func TestForkNamedDistinctLabels(t *testing.T) {
	s := New(7)
	a, b := s.ForkNamed("a"), s.ForkNamed("b")
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Fatal("distinct labels produced identical streams")
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 50; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(3)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if p < 0.27 || p > 0.33 {
		t.Fatalf("Bool(0.3) empirical rate = %.3f", p)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(5)
	const mean = 12.5
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		v := s.Exponential(mean)
		if v < 0 {
			t.Fatal("Exponential returned negative value")
		}
		sum += v
	}
	got := sum / float64(n)
	if math.Abs(got-mean) > 0.5 {
		t.Fatalf("Exponential mean = %.3f, want ~%v", got, mean)
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mean<=0")
		}
	}()
	New(1).Exponential(0)
}

func TestLogNormalMedian(t *testing.T) {
	s := New(9)
	mu := math.Log(120.0) // median 120
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = s.LogNormal(mu, 1.2)
	}
	med := Quantile(vals, 0.5)
	if med < 100 || med > 145 {
		t.Fatalf("LogNormal median = %.1f, want ~120", med)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestCategoricalDistribution(t *testing.T) {
	s := New(13)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("Categorical[%d] = %.3f, want ~%.1f", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"zero":     {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s weights did not panic", name)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestMixture(t *testing.T) {
	s := New(17)
	choices := []WeightedChoice[string]{
		{Item: "curious", Weight: 0.7},
		{Item: "golddigger", Weight: 0.3},
	}
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[Mixture(s, choices)]++
	}
	if counts["curious"] < 6500 || counts["curious"] > 7500 {
		t.Fatalf("Mixture curious share = %d/10000, want ~7000", counts["curious"])
	}
}

func TestPickAndPickN(t *testing.T) {
	s := New(19)
	items := []int{1, 2, 3, 4, 5}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[Pick(s, items)] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Pick covered %d/5 items over 200 draws", len(seen))
	}
	sub := PickN(s, items, 3)
	if len(sub) != 3 {
		t.Fatalf("PickN returned %d items, want 3", len(sub))
	}
	uniq := map[int]bool{}
	for _, v := range sub {
		uniq[v] = true
	}
	if len(uniq) != 3 {
		t.Fatalf("PickN returned duplicates: %v", sub)
	}
	all := PickN(s, items, 10)
	if len(all) != 5 {
		t.Fatalf("PickN(n>len) returned %d, want 5", len(all))
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(23)
	for _, mean := range []float64{0.5, 4, 60} {
		sum := 0
		n := 20000
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) mean = %.3f", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{4, 1, 3, 2, 5}
	if got := Quantile(v, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := Quantile(v, 0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := Quantile(v, 1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
	if got := Quantile(v, 0.25); got != 2 {
		t.Fatalf("q.25 = %v, want 2", got)
	}
	// input must not be mutated
	if v[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

// Property: Categorical never returns an index with zero weight.
func TestPropertyCategoricalRespectsZeroWeights(t *testing.T) {
	s := New(29)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			w[i] = float64(r)
			total += w[i]
		}
		if total == 0 {
			return true // would panic; covered elsewhere
		}
		for trial := 0; trial < 20; trial++ {
			if w[s.Categorical(w)] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile is monotone in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	s := New(31)
	f := func(n uint8) bool {
		if n == 0 {
			return true
		}
		vals := make([]float64, int(n)+1)
		for i := range vals {
			vals[i] = s.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			cur := Quantile(vals, q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForkShardStable(t *testing.T) {
	// The substream depends only on (seed, shard, n) — never on how
	// many draws the parent has made.
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		b.Float64() // advance the parent; forks must not care
	}
	for shard := 0; shard < 8; shard++ {
		x, y := a.ForkShard(shard, 8), b.ForkShard(shard, 8)
		for i := 0; i < 200; i++ {
			if x.Float64() != y.Float64() {
				t.Fatalf("shard %d substream depends on parent draw position", shard)
			}
		}
	}
}

func TestForkShardIndependent(t *testing.T) {
	// Distinct shards of the same parent must yield distinct streams,
	// and the same shard index under a different total must too.
	seen := map[int64]string{}
	for _, n := range []int{1, 2, 4, 8} {
		for shard := 0; shard < n; shard++ {
			s := New(7).ForkShard(shard, n)
			key := s.Seed()
			if prev, dup := seen[key]; dup {
				t.Fatalf("shard (%d of %d) collides with %s", shard, n, prev)
			}
			seen[key] = "shard"
		}
	}
}

func TestForkShardRejectsBadIndex(t *testing.T) {
	for _, c := range []struct{ shard, n int }{{0, 0}, {-1, 4}, {4, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ForkShard(%d, %d) did not panic", c.shard, c.n)
				}
			}()
			New(1).ForkShard(c.shard, c.n)
		}()
	}
}
