// Package rng provides deterministic pseudo-randomness and the
// sampling distributions the honeynet simulation is built from.
//
// All stochastic behaviour in the repository — attacker arrival
// processes, session durations, origin selection, corpus generation —
// draws from a *Source seeded at experiment start, so a given seed
// reproduces an entire seven-month run bit-for-bit. Source wraps
// math/rand with the distribution samplers the paper's workloads need
// (exponential inter-arrival times, log-normal session lengths,
// Zipf-like word/choice popularity, categorical mixtures).
package rng

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Source is a deterministic random source. It is not safe for
// concurrent use; the simulation is single-threaded by design (see
// package simtime), and independent components should Fork their own
// sources instead of sharing one.
type Source struct {
	r    *rand.Rand
	cs   *countedSource
	seed int64
}

// countedSource wraps the underlying math/rand source and counts how
// many raw 64-bit draws have been consumed. Every sampler on Source —
// Float64, NormFloat64, Zipf, Shuffle — bottoms out in Int63/Uint64
// calls on this source, and for math/rand's generator both consume
// exactly one generator step. The stream position is therefore the
// pair (seed, n), which is what lets the snapshot engine serialize a
// live stream and NewAt fast-forward an identical one on resume.
type countedSource struct {
	s rand.Source64
	n uint64
}

func (c *countedSource) Int63() int64 {
	c.n++
	return c.s.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.n++
	return c.s.Uint64()
}

func (c *countedSource) Seed(seed int64) {
	c.s.Seed(seed)
	c.n = 0
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	cs := &countedSource{s: rand.NewSource(seed).(rand.Source64)}
	return &Source{r: rand.New(cs), cs: cs, seed: seed}
}

// NewAt returns a Source seeded with seed and fast-forwarded to the
// given stream position (as reported by Pos). The returned source
// continues the stream exactly where a live source that had made pos
// raw draws would — the snapshot/resume path restores every
// serialized stream through this.
func NewAt(seed int64, pos uint64) *Source {
	s := New(seed)
	for i := uint64(0); i < pos; i++ {
		s.cs.s.Uint64() // advance without counting, then stamp below
	}
	s.cs.n = pos
	return s
}

// Seed returns the seed the source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Pos returns the number of raw 64-bit draws consumed so far — the
// stream position NewAt(Seed(), Pos()) resumes from.
func (s *Source) Pos() uint64 { return s.cs.n }

// SkipTo fast-forwards the source to the given stream position. It
// panics if the source has already advanced past it: streams only
// move forward.
func (s *Source) SkipTo(pos uint64) {
	if s.cs.n > pos {
		panic(fmt.Sprintf("rng: SkipTo(%d) behind current position %d", pos, s.cs.n))
	}
	for s.cs.n < pos {
		s.cs.Uint64()
	}
}

// Fork derives an independent child source. The child's stream is a
// pure function of the parent's state at the point of the call, so
// forks taken in a fixed order are reproducible.
func (s *Source) Fork() *Source {
	return New(s.r.Int63())
}

// ForkNamed derives a child source whose stream depends only on the
// parent's seed and a label, not on how many draws the parent has
// made. Use it to give each subsystem (outlets, malware, per-account
// attacker populations) a stable stream that survives refactoring of
// unrelated draw order.
func (s *Source) ForkNamed(label string) *Source {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(int64(h) ^ s.seed)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a strong
// 64-bit mixing function used to derive decorrelated substream seeds
// from structured inputs (seed, shard index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ForkShard derives the shard-th of n stable, mutually independent
// substreams. The child's stream is a pure function of (parent seed,
// shard, n) — not of the parent's draw position and not of which
// worker executes the shard — so a fixed experiment seed reproduces a
// sharded run bit-for-bit for a given partition layout. It panics on
// an out-of-range shard index.
func (s *Source) ForkShard(shard, n int) *Source {
	if n <= 0 || shard < 0 || shard >= n {
		panic(fmt.Sprintf("rng: ForkShard(%d, %d) out of range", shard, n))
	}
	h := splitmix64(uint64(s.seed))
	h = splitmix64(h ^ uint64(shard)<<1 ^ 0xA5A5A5A5)
	h = splitmix64(h ^ uint64(n)<<17)
	return New(int64(h))
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Normal returns a normally distributed value.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Exponential samples an exponential distribution with the given mean
// (i.e. rate 1/mean). Exponential inter-arrival gaps make attacker
// visits a Poisson process, the standard model for independent
// arrivals such as paste-site readers finding a leak.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential requires positive mean")
	}
	return s.r.ExpFloat64() * mean
}

// LogNormal samples exp(N(mu, sigma)). Heavy-tailed session lengths —
// most accesses last minutes, a long tail returns for days (paper
// §4.3, Figure 1) — are modelled log-normally.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto samples a Pareto distribution with scale xm and shape alpha.
// Used for the far tail of distances and revisit gaps.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto requires positive parameters")
	}
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf returns a sampler over [0, n) with Zipf exponent sexp >= 1.
// Word popularity in the synthetic corpus and outlet popularity both
// follow Zipf's law.
func (s *Source) Zipf(sexp float64, n int) *rand.Zipf {
	if n <= 0 {
		panic("rng: Zipf requires n > 0")
	}
	if sexp <= 1 {
		sexp = 1.0001
	}
	return rand.NewZipf(s.r, sexp, 1, uint64(n-1))
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Pick returns a uniformly chosen element of items. It panics on an
// empty slice.
func Pick[T any](s *Source, items []T) T {
	if len(items) == 0 {
		panic("rng: Pick from empty slice")
	}
	return items[s.Intn(len(items))]
}

// PickN returns n distinct uniformly chosen elements (or all items if
// n >= len(items)), in random order.
func PickN[T any](s *Source, items []T, n int) []T {
	if n >= len(items) {
		out := make([]T, len(items))
		copy(out, items)
		s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	idx := s.Perm(len(items))[:n]
	out := make([]T, 0, n)
	for _, i := range idx {
		out = append(out, items[i])
	}
	return out
}

// Categorical samples an index with probability proportional to the
// given non-negative weights. It panics if all weights are zero or a
// weight is negative. Taxonomy mixes per outlet (Figure 2) are
// categorical draws.
func (s *Source) Categorical(weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("rng: negative or NaN weight at %d", i))
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with zero total weight")
	}
	x := s.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1 // float round-off
}

// WeightedChoice is a labelled weight for Mixture.
type WeightedChoice[T any] struct {
	Item   T
	Weight float64
}

// Mixture samples one item from labelled weights.
func Mixture[T any](s *Source, choices []WeightedChoice[T]) T {
	w := make([]float64, len(choices))
	for i, c := range choices {
		w[i] = c.Weight
	}
	return choices[s.Categorical(w)].Item
}

// Poisson samples a Poisson-distributed count with the given mean,
// using inversion for small means and normal approximation above 30.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(s.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Quantile inverts an empirical set of values: it sorts a copy and
// returns the q-quantile via linear interpolation. Convenience used by
// calibration tests.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		panic("rng: Quantile of empty slice")
	}
	v := make([]float64, len(values))
	copy(v, values)
	sort.Float64s(v)
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return v[lo]
	}
	frac := pos - float64(lo)
	return v[lo]*(1-frac) + v[hi]*frac
}
