package rng

import "testing"

// TestPosCountsEverySampler: every sampler advances Pos, and NewAt at
// the recorded position continues the stream bit-identically — the
// property the snapshot engine's stream serialization rests on.
func TestPosCountsEverySampler(t *testing.T) {
	s := New(1234)
	if s.Pos() != 0 {
		t.Fatalf("fresh source at pos %d, want 0", s.Pos())
	}
	// Burn a mixed workload through every sampler family, including
	// the variable-consumption ones (Normal/Exponential use rejection
	// sampling; Zipf re-draws internally).
	z := s.Zipf(1.5, 100)
	for i := 0; i < 500; i++ {
		s.Float64()
		s.Intn(10)
		s.Int63()
		s.Normal(0, 1)
		s.Exponential(2)
		s.LogNormal(0, 1)
		s.Pareto(1, 2)
		s.Categorical([]float64{1, 2, 3})
		z.Uint64()
		s.Perm(5)
		s.Shuffle(4, func(i, j int) {})
	}
	pos := s.Pos()
	if pos == 0 {
		t.Fatal("samplers consumed no raw draws")
	}

	resumed := NewAt(s.Seed(), pos)
	if resumed.Pos() != pos {
		t.Fatalf("NewAt landed at %d, want %d", resumed.Pos(), pos)
	}
	for i := 0; i < 1000; i++ {
		if a, b := s.Int63(), resumed.Int63(); a != b {
			t.Fatalf("draw %d diverged after resume: %d vs %d", i, a, b)
		}
		if a, b := s.Normal(0, 1), resumed.Normal(0, 1); a != b {
			t.Fatalf("normal draw %d diverged after resume: %g vs %g", i, a, b)
		}
	}
	if s.Pos() != resumed.Pos() {
		t.Fatalf("positions diverged: %d vs %d", s.Pos(), resumed.Pos())
	}
}

// TestSkipTo: skipping forward is equivalent to drawing, and skipping
// backwards panics (streams are forward-only).
func TestSkipTo(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 37; i++ {
		a.Int63()
	}
	b.SkipTo(a.Pos())
	if x, y := a.Int63(), b.Int63(); x != y {
		t.Fatalf("SkipTo diverged: %d vs %d", x, y)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SkipTo backwards did not panic")
		}
	}()
	b.SkipTo(0)
}

// TestForkPositionIndependence: named and shard forks depend only on
// the parent's seed, never its position, so snapshot restoration can
// re-derive them without replaying the parent's draw history.
func TestForkPositionIndependence(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 17; i++ {
		b.Float64()
	}
	if x, y := a.ForkNamed("x").Int63(), b.ForkNamed("x").Int63(); x != y {
		t.Fatalf("ForkNamed depends on parent position: %d vs %d", x, y)
	}
	if x, y := a.ForkShard(2, 8).Int63(), b.ForkShard(2, 8).Int63(); x != y {
		t.Fatalf("ForkShard depends on parent position: %d vs %d", x, y)
	}
}
