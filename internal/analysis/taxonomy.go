package analysis

import (
	"sort"
	"time"
)

// Class is the taxonomy of §4.2, as inferred from monitoring data.
type Class uint8

const (
	// Curious accesses log in and do nothing else.
	Curious Class = 1 << iota
	// GoldDigger accesses read mailbox content (the observable
	// footprint of searching for sensitive information).
	GoldDigger
	// Spammer accesses send email.
	Spammer
	// Hijacker accesses change the account password.
	Hijacker
)

// Has reports whether c includes x.
func (c Class) Has(x Class) bool { return c&x != 0 }

// String lists the classes.
func (c Class) String() string {
	if c == 0 || c == Curious {
		return "curious"
	}
	out := ""
	add := func(s string) {
		if out != "" {
			out += "+"
		}
		out += s
	}
	if c.Has(GoldDigger) {
		add("gold-digger")
	}
	if c.Has(Spammer) {
		add("spammer")
	}
	if c.Has(Hijacker) {
		add("hijacker")
	}
	return out
}

// Classified pairs an access with its inferred classes.
type Classified struct {
	Access  Access
	Classes Class
}

// ClassifyOptions tunes attribution.
type ClassifyOptions struct {
	// Slack extends each access window to absorb the scan-trigger
	// delay: a notification can arrive up to one scan interval after
	// the action. Zero selects 10 minutes (the paper's scan cadence).
	Slack time.Duration
}

// Classify attributes actions and password changes to accesses and
// derives each access's taxonomy classes.
//
// Attribution is by time window: an action on account A at time t
// belongs to the accesses of A whose [First, Last+Slack] window
// contains t. If no window matches (e.g. the scraper lost the account
// before the action), the action attaches to the account's access
// with the latest Last before t — the best the paper's pipeline could
// do after a hijack froze the activity page.
//
// Attribution is purely per-account (actions on one account never
// touch another account's accesses) and each action's attribution is
// independent of the others, so the streaming pipeline reaches the
// same result by running the same per-account core — classifyAccount
// — shard by shard; see StreamClassifier.
func Classify(ds *Dataset, opts ClassifyOptions) []Classified {
	if opts.Slack <= 0 {
		opts.Slack = 10 * time.Minute
	}
	byAccount := make(map[string][]*Classified)
	out := make([]Classified, len(ds.Accesses))
	for i, a := range ds.Accesses {
		out[i] = Classified{Access: a, Classes: Curious}
		byAccount[a.Account] = append(byAccount[a.Account], &out[i])
	}
	actionsBy := make(map[string][]Action)
	for _, act := range ds.Actions {
		actionsBy[act.Account] = append(actionsBy[act.Account], act)
	}
	changesBy := make(map[string][]PasswordChange)
	for _, pc := range ds.PasswordChanges {
		changesBy[pc.Account] = append(changesBy[pc.Account], pc)
	}
	for account, accesses := range byAccount {
		classifyAccount(accesses, actionsBy[account], changesBy[account], opts.Slack)
	}
	return out
}

// classifyAccount runs the window attribution for one account: the
// shared core of the batch Classify and the per-shard streaming
// classifier. accesses must all belong to the same account as the
// actions and changes; their order decides ties (equal First in the
// window match, equal Last in the fallback), so callers must present
// them in a canonical order — both paths use ascending cookie.
func classifyAccount(accesses []*Classified, actions []Action, changes []PasswordChange, slack time.Duration) {
	attribute := func(t time.Time, apply func(*Classified)) {
		// Among accesses whose [First, Last+Slack] window contains t,
		// the most recently started one is the most plausible actor;
		// concurrent lurkers should not inherit the action.
		var match *Classified
		for _, c := range accesses {
			if t.Before(c.Access.First) || t.After(c.Access.Last.Add(slack)) {
				continue
			}
			if match == nil || c.Access.First.After(match.Access.First) {
				match = c
			}
		}
		if match != nil {
			apply(match)
			return
		}
		// Fallback: latest access that started before t (the activity
		// page may have frozen before the action, §4.2).
		var best *Classified
		for _, c := range accesses {
			if c.Access.First.After(t) {
				continue
			}
			if best == nil || c.Access.Last.After(best.Access.Last) {
				best = c
			}
		}
		if best != nil {
			apply(best)
		}
	}

	for _, act := range actions {
		switch act.Kind {
		case ActionRead, ActionDraft, ActionStarred:
			attribute(act.Time, func(c *Classified) { c.Classes |= GoldDigger })
		case ActionSent:
			attribute(act.Time, func(c *Classified) { c.Classes |= Spammer })
		}
	}
	for _, pc := range changes {
		attribute(pc.Time, func(c *Classified) { c.Classes |= Hijacker })
	}
}

// ClassCounts tallies accesses per class; overlapping classes count in
// each bucket, mirroring §4.2's non-exclusive totals (224 curious, 82
// gold diggers, 8 spammers, 36 hijackers in the paper).
type ClassCounts struct {
	Total      int
	Curious    int
	GoldDigger int
	Spammer    int
	Hijacker   int
}

// CountClasses summarises a classification.
func CountClasses(cs []Classified) ClassCounts {
	var out ClassCounts
	for _, c := range cs {
		out.add(c.Classes)
	}
	return out
}

// add folds one classified access into the tally (also the streaming
// aggregation primitive).
func (out *ClassCounts) add(c Class) {
	out.Total++
	switch {
	case c == Curious || c == 0:
		out.Curious++
	default:
		if c.Has(GoldDigger) {
			out.GoldDigger++
		}
		if c.Has(Spammer) {
			out.Spammer++
		}
		if c.Has(Hijacker) {
			out.Hijacker++
		}
	}
}

// merge adds another tally (used when merging shard aggregates).
func (out *ClassCounts) merge(o ClassCounts) {
	out.Total += o.Total
	out.Curious += o.Curious
	out.GoldDigger += o.GoldDigger
	out.Spammer += o.Spammer
	out.Hijacker += o.Hijacker
}

// ByOutlet buckets classifications per outlet (Figure 2's x-axis).
func ByOutlet(cs []Classified) map[Outlet]ClassCounts {
	grouped := make(map[Outlet][]Classified)
	for _, c := range cs {
		grouped[c.Access.Outlet] = append(grouped[c.Access.Outlet], c)
	}
	out := make(map[Outlet]ClassCounts, len(grouped))
	for o, list := range grouped {
		out[o] = CountClasses(list)
	}
	return out
}

// DurationsByClass extracts access durations (in hours) per taxonomy
// class — the series of Figure 1. Overlapping classes contribute to
// every class they hold.
func DurationsByClass(cs []Classified) map[string][]float64 {
	out := make(map[string][]float64)
	add := func(key string, c Classified) {
		out[key] = append(out[key], c.Access.Duration().Hours())
	}
	for _, c := range cs {
		if c.Classes == Curious || c.Classes == 0 {
			add("curious", c)
			continue
		}
		if c.Classes.Has(GoldDigger) {
			add("gold-digger", c)
		}
		if c.Classes.Has(Spammer) {
			add("spammer", c)
		}
		if c.Classes.Has(Hijacker) {
			add("hijacker", c)
		}
	}
	return out
}

// TimeToFirstAccess computes, per outlet, the days between an
// account's leak and each access's first observation — Figure 3's
// series (unique accesses, not just first per account, matching the
// paper's CDF over unique accesses).
func TimeToFirstAccess(ds *Dataset) map[Outlet][]float64 {
	out := make(map[Outlet][]float64)
	for _, a := range ds.Accesses {
		days := a.First.Sub(a.LeakTime).Hours() / 24
		if days < 0 {
			continue
		}
		out[a.Outlet] = append(out[a.Outlet], days)
	}
	for _, v := range out {
		sort.Float64s(v)
	}
	return out
}

// AccessTimeline returns (day-offset, outlet) points for every unique
// access — Figure 4's scatter series.
type TimelinePoint struct {
	Outlet Outlet
	Days   float64
}

// Timeline extracts Figure 4's points ordered by time.
func Timeline(ds *Dataset) []TimelinePoint {
	var out []TimelinePoint
	for _, a := range ds.Accesses {
		out = append(out, TimelinePoint{Outlet: a.Outlet, Days: a.First.Sub(a.LeakTime).Hours() / 24})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Days < out[j].Days })
	return out
}
