package analysis

import (
	"sort"
	"time"
)

// Class is the taxonomy of §4.2, as inferred from monitoring data.
type Class uint8

const (
	// Curious accesses log in and do nothing else.
	Curious Class = 1 << iota
	// GoldDigger accesses read mailbox content (the observable
	// footprint of searching for sensitive information).
	GoldDigger
	// Spammer accesses send email.
	Spammer
	// Hijacker accesses change the account password.
	Hijacker
)

// Has reports whether c includes x.
func (c Class) Has(x Class) bool { return c&x != 0 }

// String lists the classes.
func (c Class) String() string {
	if c == 0 || c == Curious {
		return "curious"
	}
	out := ""
	add := func(s string) {
		if out != "" {
			out += "+"
		}
		out += s
	}
	if c.Has(GoldDigger) {
		add("gold-digger")
	}
	if c.Has(Spammer) {
		add("spammer")
	}
	if c.Has(Hijacker) {
		add("hijacker")
	}
	return out
}

// Classified pairs an access with its inferred classes.
type Classified struct {
	Access  Access
	Classes Class
}

// ClassifyOptions tunes attribution.
type ClassifyOptions struct {
	// Slack extends each access window to absorb the scan-trigger
	// delay: a notification can arrive up to one scan interval after
	// the action. Zero selects 10 minutes (the paper's scan cadence).
	Slack time.Duration
}

// Classify attributes actions and password changes to accesses and
// derives each access's taxonomy classes.
//
// Attribution is by time window: an action on account A at time t
// belongs to the accesses of A whose [First, Last+Slack] window
// contains t. If no window matches (e.g. the scraper lost the account
// before the action), the action attaches to the account's access
// with the latest Last before t — the best the paper's pipeline could
// do after a hijack froze the activity page.
func Classify(ds *Dataset, opts ClassifyOptions) []Classified {
	if opts.Slack <= 0 {
		opts.Slack = 10 * time.Minute
	}
	byAccount := make(map[string][]*Classified)
	out := make([]Classified, len(ds.Accesses))
	for i, a := range ds.Accesses {
		out[i] = Classified{Access: a, Classes: Curious}
		byAccount[a.Account] = append(byAccount[a.Account], &out[i])
	}

	attribute := func(account string, t time.Time, apply func(*Classified)) {
		// Among accesses whose [First, Last+Slack] window contains t,
		// the most recently started one is the most plausible actor;
		// concurrent lurkers should not inherit the action.
		var match *Classified
		for _, c := range byAccount[account] {
			if t.Before(c.Access.First) || t.After(c.Access.Last.Add(opts.Slack)) {
				continue
			}
			if match == nil || c.Access.First.After(match.Access.First) {
				match = c
			}
		}
		if match != nil {
			apply(match)
			return
		}
		// Fallback: latest access that started before t (the activity
		// page may have frozen before the action, §4.2).
		var best *Classified
		for _, c := range byAccount[account] {
			if c.Access.First.After(t) {
				continue
			}
			if best == nil || c.Access.Last.After(best.Access.Last) {
				best = c
			}
		}
		if best != nil {
			apply(best)
		}
	}

	for _, act := range ds.Actions {
		act := act
		switch act.Kind {
		case ActionRead, ActionDraft:
			attribute(act.Account, act.Time, func(c *Classified) { c.Classes |= GoldDigger })
		case ActionSent:
			attribute(act.Account, act.Time, func(c *Classified) { c.Classes |= Spammer })
		case ActionStarred:
			attribute(act.Account, act.Time, func(c *Classified) { c.Classes |= GoldDigger })
		}
	}
	for _, pc := range ds.PasswordChanges {
		attribute(pc.Account, pc.Time, func(c *Classified) { c.Classes |= Hijacker })
	}
	return out
}

// ClassCounts tallies accesses per class; overlapping classes count in
// each bucket, mirroring §4.2's non-exclusive totals (224 curious, 82
// gold diggers, 8 spammers, 36 hijackers in the paper).
type ClassCounts struct {
	Total      int
	Curious    int
	GoldDigger int
	Spammer    int
	Hijacker   int
}

// CountClasses summarises a classification.
func CountClasses(cs []Classified) ClassCounts {
	out := ClassCounts{Total: len(cs)}
	for _, c := range cs {
		switch {
		case c.Classes == Curious || c.Classes == 0:
			out.Curious++
		default:
			if c.Classes.Has(GoldDigger) {
				out.GoldDigger++
			}
			if c.Classes.Has(Spammer) {
				out.Spammer++
			}
			if c.Classes.Has(Hijacker) {
				out.Hijacker++
			}
		}
	}
	return out
}

// ByOutlet buckets classifications per outlet (Figure 2's x-axis).
func ByOutlet(cs []Classified) map[Outlet]ClassCounts {
	grouped := make(map[Outlet][]Classified)
	for _, c := range cs {
		grouped[c.Access.Outlet] = append(grouped[c.Access.Outlet], c)
	}
	out := make(map[Outlet]ClassCounts, len(grouped))
	for o, list := range grouped {
		out[o] = CountClasses(list)
	}
	return out
}

// DurationsByClass extracts access durations (in hours) per taxonomy
// class — the series of Figure 1. Overlapping classes contribute to
// every class they hold.
func DurationsByClass(cs []Classified) map[string][]float64 {
	out := make(map[string][]float64)
	add := func(key string, c Classified) {
		out[key] = append(out[key], c.Access.Duration().Hours())
	}
	for _, c := range cs {
		if c.Classes == Curious || c.Classes == 0 {
			add("curious", c)
			continue
		}
		if c.Classes.Has(GoldDigger) {
			add("gold-digger", c)
		}
		if c.Classes.Has(Spammer) {
			add("spammer", c)
		}
		if c.Classes.Has(Hijacker) {
			add("hijacker", c)
		}
	}
	return out
}

// TimeToFirstAccess computes, per outlet, the days between an
// account's leak and each access's first observation — Figure 3's
// series (unique accesses, not just first per account, matching the
// paper's CDF over unique accesses).
func TimeToFirstAccess(ds *Dataset) map[Outlet][]float64 {
	out := make(map[Outlet][]float64)
	for _, a := range ds.Accesses {
		days := a.First.Sub(a.LeakTime).Hours() / 24
		if days < 0 {
			continue
		}
		out[a.Outlet] = append(out[a.Outlet], days)
	}
	for _, v := range out {
		sort.Float64s(v)
	}
	return out
}

// AccessTimeline returns (day-offset, outlet) points for every unique
// access — Figure 4's scatter series.
type TimelinePoint struct {
	Outlet Outlet
	Days   float64
}

// Timeline extracts Figure 4's points ordered by time.
func Timeline(ds *Dataset) []TimelinePoint {
	var out []TimelinePoint
	for _, a := range ds.Accesses {
		out = append(out, TimelinePoint{Outlet: a.Outlet, Days: a.First.Sub(a.LeakTime).Hours() / 24})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Days < out[j].Days })
	return out
}
