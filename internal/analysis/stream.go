package analysis

import (
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/stats"
)

// Streaming classification: instead of merging every shard's access
// records into one in-memory Dataset and classifying post hoc, each
// shard feeds its monitor's observations through a StreamClassifier
// as simulated time advances. At the end of the run the classifier
// folds its accesses into Aggregates — class tallies, CDF sketches,
// timeline buckets, distance vectors and keyword events — and the
// experiment merges one Aggregates per shard: O(shards) merge work
// instead of an O(records) merge-sort-classify pass.
//
// Equality with the batch path is by construction, not coincidence:
//   - accounts live on exactly one shard, and Classify's attribution
//     is per-account and per-action independent, so running the shared
//     classifyAccount core shard-by-shard reproduces the batch classes;
//   - every aggregate is a sum, set union, probe-sketch or sorted
//     vector, all order-independent, so shard interleaving cannot leak
//     into the result.
// TestStreamMatchesBatchReports (repo root) asserts the rendered
// reports are byte-identical at shard counts 1 and 4.

// The probe grids of the report's CDF figures. The sketches aggregate
// on exactly these grids so the streaming figures match the
// ECDF-backed ones bit for bit.
var (
	// DurationProbes is Figure 1's grid (access length, hours).
	DurationProbes = []float64{0.1, 0.5, 1, 6, 24, 72, 168}
	// LeakDaysProbes is Figure 3's grid (days from leak to access).
	LeakDaysProbes = []float64{1, 5, 10, 25, 50, 100, 150, 200}
)

// Facts are the experiment-plan annotations for one account: what the
// researchers know about their own leak (§3.2), resolved when the
// aggregates are finalised.
type Facts struct {
	Outlet   Outlet
	Hint     Hint
	LeakTime time.Time
}

// ReadEvent is one observed read action, kept for the §4.6 keyword
// inference (the read text is resolved against the seeded contents at
// inference time).
type ReadEvent struct {
	Account string
	Message int64
}

// DraftEvent is one observed draft copy with its captured body.
type DraftEvent struct {
	Account string
	Message int64
	Body    string
}

// StreamConfig tunes a StreamClassifier.
type StreamConfig struct {
	// ClassifyOptions.Slack as in the batch Classify (zero: 10m).
	ClassifyOptions
	// DurationProbes and LeakDaysProbes override the figure probe
	// grids (nil selects the package defaults).
	DurationProbes []float64
	LeakDaysProbes []float64
}

// acctState is everything the classifier retains for one account
// while its shard runs: the latest activity row per cookie plus the
// action/password events awaiting end-of-run attribution. Attribution
// has to wait because an access window [First, Last+Slack] keeps
// growing while the attacker is active — the batch pipeline sees the
// final windows, so the stream holds per-account events (cheap,
// typed, already self-filtered) and attributes once the windows are
// final.
type acctState struct {
	accesses obsCols // columnar latest-row-per-cookie (see columnar.go)
	actions  []Action
	changes  []PasswordChange
}

// StreamClassifier ingests one shard's monitoring observations as the
// simulation runs and emits mergeable Aggregates at the end. It is
// safe for concurrent use, though the sharded engine drives each
// instance from a single shard goroutine.
type StreamClassifier struct {
	cfg StreamConfig

	mu       sync.Mutex
	accounts map[string]*acctState
}

// NewStreamClassifier builds an empty classifier.
func NewStreamClassifier(cfg StreamConfig) *StreamClassifier {
	if cfg.Slack <= 0 {
		cfg.Slack = 10 * time.Minute
	}
	if cfg.DurationProbes == nil {
		cfg.DurationProbes = DurationProbes
	}
	if cfg.LeakDaysProbes == nil {
		cfg.LeakDaysProbes = LeakDaysProbes
	}
	return &StreamClassifier{cfg: cfg, accounts: make(map[string]*acctState)}
}

func (sc *StreamClassifier) state(account string) *acctState {
	st, ok := sc.accounts[account]
	if !ok {
		st = &acctState{}
		sc.accounts[account] = st
	}
	return st
}

// ObserveAccess ingests the latest activity row for one (account,
// cookie) pair, superseding any earlier row for the same pair. Plan
// annotations (Outlet, Hint, LeakTime) may be left zero; Finalize
// fills them from its facts lookup.
func (sc *StreamClassifier) ObserveAccess(a Access) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.state(a.Account).accesses.set(a)
}

// ObserveAction ingests one mailbox action notification.
func (sc *StreamClassifier) ObserveAction(act Action) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	st := sc.state(act.Account)
	st.actions = append(st.actions, act)
}

// ObservePasswordChange ingests one scraper-lockout event.
func (sc *StreamClassifier) ObservePasswordChange(pc PasswordChange) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	st := sc.state(pc.Account)
	st.changes = append(st.changes, pc)
}

// Accounts reports how many accounts have observations so far.
func (sc *StreamClassifier) Accounts() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.accounts)
}

// Finalize classifies every observed account against its final access
// windows and folds the results into fresh Aggregates. facts, when
// non-nil, supplies the plan annotations per account (the streaming
// path); when nil the annotations already on the ingested accesses
// are used (the batch-conversion path). blacklisted, when non-nil,
// marks which source IPs are on the §4.5 blacklist. Finalize does not
// consume the classifier state, so it can be re-run (benchmarks do).
func (sc *StreamClassifier) Finalize(facts func(account string) Facts, blacklisted func(ip string) bool) *Aggregates {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	agg := NewAggregates(sc.cfg.DurationProbes, sc.cfg.LeakDaysProbes)
	for account, st := range sc.accounts {
		// Canonical per-account order: ascending cookie, matching the
		// batch pipeline's (account, cookie) dataset sort, so window
		// ties break identically.
		cookies := append([]string(nil), st.accesses.cookie...)
		sort.Strings(cookies)
		var f Facts
		if facts != nil {
			f = facts(account)
		}
		cs := make([]Classified, len(cookies))
		refs := make([]*Classified, len(cookies))
		for i, c := range cookies {
			a := st.accesses.materialize(st.accesses.byCookie[c], account)
			if facts != nil {
				a.Outlet, a.Hint, a.LeakTime = f.Outlet, f.Hint, f.LeakTime
			}
			cs[i] = Classified{Access: a, Classes: Curious}
			refs[i] = &cs[i]
		}
		classifyAccount(refs, st.actions, st.changes, sc.cfg.Slack)
		for _, c := range cs {
			agg.addAccess(c, blacklisted)
		}
		for _, act := range st.actions {
			agg.addAction(act)
		}
	}
	agg.sealDrafts()
	return agg
}

// Aggregates hold everything the report's tables and figures need, in
// mergeable form. Per-shard instances merge pairwise; the counters
// sum, the country set unions, the sketches merge probe-wise, and the
// vectors/events concatenate (accounts are disjoint across shards).
type Aggregates struct {
	// Classes and PerOutlet are §4.2's taxonomy tallies (Figure 2).
	Classes   ClassCounts
	PerOutlet map[Outlet]ClassCounts

	// Durations are Figure 1's per-class access-length sketches
	// (hours); TimeToAccess are Figure 3's per-outlet leak-to-access
	// sketches (days, non-negative only, as in the batch path).
	Durations    map[string]*stats.ProbeSketch
	TimeToAccess map[Outlet]*stats.ProbeSketch

	// Timeline buckets Figure 4's unique accesses per outlet into
	// 10-day windows since the leak; TimelineMax is the largest
	// non-negative bucket seen (the last row the figure prints).
	Timeline    map[Outlet]map[int]int
	TimelineMax int

	// SystemConfig is the §4.4 fingerprint tally per outlet.
	SystemConfig map[Outlet]*ConfigRow

	// Distances are Figure 5 / §4.5's per-region, per-group distance
	// vectors (km to the region midpoint). Unsorted until read through
	// DistanceVectorsFor.
	Distances map[Hint]map[GroupKey][]float64

	// Overview counters (§4.1/§4.5).
	Countries       map[string]bool
	WithLocation    int
	WithoutLocation int
	BlacklistedIPs  int
	EmailsRead      int
	EmailsSent      int
	UniqueDrafts    int
	// SuspendedAccounts is a platform-global figure; the experiment
	// sets it after merging the shard aggregates.
	SuspendedAccounts int

	// Reads and Drafts are the §4.6 keyword-inference events.
	Reads  []ReadEvent
	Drafts []DraftEvent

	// draftSet tracks unique (account, message) drafts until sealed.
	draftSet map[string]map[int64]bool

	// The probe grids travel with the aggregates so lazily created
	// sketches (first value per class/outlet) use the right grid.
	durProbes  []float64
	leakProbes []float64
}

// NewAggregates returns empty aggregates over the given probe grids
// (nil selects the package defaults).
func NewAggregates(durationProbes, leakDaysProbes []float64) *Aggregates {
	if durationProbes == nil {
		durationProbes = DurationProbes
	}
	if leakDaysProbes == nil {
		leakDaysProbes = LeakDaysProbes
	}
	return &Aggregates{
		PerOutlet:    make(map[Outlet]ClassCounts),
		Durations:    map[string]*stats.ProbeSketch{},
		TimeToAccess: map[Outlet]*stats.ProbeSketch{},
		Timeline:     map[Outlet]map[int]int{},
		SystemConfig: map[Outlet]*ConfigRow{},
		Distances:    map[Hint]map[GroupKey][]float64{},
		Countries:    map[string]bool{},
		draftSet:     map[string]map[int64]bool{},
		durProbes:    durationProbes,
		leakProbes:   leakDaysProbes,
	}
}

// addAccess folds one classified access into every access-derived
// aggregate, mirroring the batch extraction functions line for line
// (CountClasses, ByOutlet, DurationsByClass, TimeToFirstAccess,
// Timeline, SystemConfiguration, DistanceVectors, Summarize).
func (agg *Aggregates) addAccess(c Classified, blacklisted func(ip string) bool) {
	a := c.Access

	// Taxonomy tallies (Figure 2 / §4.2).
	agg.Classes.add(c.Classes)
	po := agg.PerOutlet[a.Outlet]
	po.add(c.Classes)
	agg.PerOutlet[a.Outlet] = po

	// Figure 1: duration CDF per class, exclusive-curious like
	// DurationsByClass.
	hours := a.Duration().Hours()
	addDur := func(key string) {
		sk, ok := agg.Durations[key]
		if !ok {
			sk = stats.NewProbeSketch(agg.durProbes)
			agg.Durations[key] = sk
		}
		sk.Add(hours)
	}
	if c.Classes == Curious || c.Classes == 0 {
		addDur("curious")
	} else {
		if c.Classes.Has(GoldDigger) {
			addDur("gold-digger")
		}
		if c.Classes.Has(Spammer) {
			addDur("spammer")
		}
		if c.Classes.Has(Hijacker) {
			addDur("hijacker")
		}
	}

	// Figures 3 and 4: days since leak.
	days := a.First.Sub(a.LeakTime).Hours() / 24
	if days >= 0 {
		sk, ok := agg.TimeToAccess[a.Outlet]
		if !ok {
			sk = stats.NewProbeSketch(agg.leakProbes)
			agg.TimeToAccess[a.Outlet] = sk
		}
		sk.Add(days)
	}
	bucket := int(days) / 10
	m, ok := agg.Timeline[a.Outlet]
	if !ok {
		m = map[int]int{}
		agg.Timeline[a.Outlet] = m
	}
	m[bucket]++
	if bucket > agg.TimelineMax {
		agg.TimelineMax = bucket
	}

	// §4.4 system configuration.
	r, ok := agg.SystemConfig[a.Outlet]
	if !ok {
		r = &ConfigRow{Outlet: a.Outlet, BrowserNames: make(map[string]int)}
		agg.SystemConfig[a.Outlet] = r
	}
	r.Accesses++
	browser, device := classifyUA(a.UserAgent)
	switch {
	case a.UserAgent == "":
		r.EmptyUA++
	case device == "android":
		r.Android++
	default:
		r.Desktop++
	}
	r.BrowserNames[browser]++

	// §4.5 location: overview counters and Figure 5 distance vectors.
	if a.HasPoint {
		agg.WithLocation++
		if a.Country != "" {
			agg.Countries[a.Country] = true
		}
	} else {
		agg.WithoutLocation++
	}
	if blacklisted != nil && blacklisted(a.IP) {
		agg.BlacklistedIPs++
	}
	if a.HasPoint {
		for _, region := range []Hint{HintUK, HintUS} {
			var outlet Outlet
			switch a.Outlet {
			case OutletPaste, OutletPasteRussian:
				outlet = OutletPaste
			case OutletForum:
				outlet = OutletForum
			default:
				continue
			}
			if a.Hint != region && a.Hint != HintNone {
				continue
			}
			mid := geo.LondonMidpoint
			if region == HintUS {
				mid = geo.PontiacMidpoint
			}
			vm, ok := agg.Distances[region]
			if !ok {
				vm = map[GroupKey][]float64{}
				agg.Distances[region] = vm
			}
			key := GroupKey{Outlet: outlet, Hint: a.Hint}
			vm[key] = append(vm[key], geo.HaversineKm(a.Point, mid))
		}
	}
}

// addAction folds one action into the overview counters and the
// keyword-inference event lists (mirroring Summarize and
// KeywordInference over ds.Actions).
func (agg *Aggregates) addAction(act Action) {
	switch act.Kind {
	case ActionRead:
		agg.EmailsRead++
		agg.Reads = append(agg.Reads, ReadEvent{Account: act.Account, Message: act.Message})
	case ActionSent:
		agg.EmailsSent++
	case ActionDraft:
		m, ok := agg.draftSet[act.Account]
		if !ok {
			m = make(map[int64]bool)
			agg.draftSet[act.Account] = m
		}
		m[act.Message] = true
		agg.Drafts = append(agg.Drafts, DraftEvent{Account: act.Account, Message: act.Message, Body: act.Body})
	}
}

// sealDrafts converts the per-account draft sets into the UniqueDrafts
// count. Accounts are disjoint across shards, so counts sum on merge.
func (agg *Aggregates) sealDrafts() {
	for _, m := range agg.draftSet {
		agg.UniqueDrafts += len(m)
	}
	agg.draftSet = nil
}

// Merge folds another shard's aggregates into agg. Both must be
// sealed (produced by Finalize or AggregatesFromDataset). Merging is
// O(size of the aggregates), independent of how many access records
// either side folded in.
func (agg *Aggregates) Merge(o *Aggregates) error {
	if o == nil {
		return nil
	}
	agg.Classes.merge(o.Classes)
	for outlet, c := range o.PerOutlet {
		v := agg.PerOutlet[outlet]
		v.merge(c)
		agg.PerOutlet[outlet] = v
	}
	for key, sk := range o.Durations {
		mine, ok := agg.Durations[key]
		if !ok {
			agg.Durations[key] = sk.Clone()
			continue
		}
		if err := mine.Merge(sk); err != nil {
			return err
		}
	}
	for outlet, sk := range o.TimeToAccess {
		mine, ok := agg.TimeToAccess[outlet]
		if !ok {
			agg.TimeToAccess[outlet] = sk.Clone()
			continue
		}
		if err := mine.Merge(sk); err != nil {
			return err
		}
	}
	for outlet, buckets := range o.Timeline {
		m, ok := agg.Timeline[outlet]
		if !ok {
			m = map[int]int{}
			agg.Timeline[outlet] = m
		}
		for b, n := range buckets {
			m[b] += n
		}
	}
	if o.TimelineMax > agg.TimelineMax {
		agg.TimelineMax = o.TimelineMax
	}
	for outlet, r := range o.SystemConfig {
		mine, ok := agg.SystemConfig[outlet]
		if !ok {
			cp := *r
			cp.BrowserNames = make(map[string]int, len(r.BrowserNames))
			for k, v := range r.BrowserNames {
				cp.BrowserNames[k] = v
			}
			agg.SystemConfig[outlet] = &cp
			continue
		}
		mine.Accesses += r.Accesses
		mine.EmptyUA += r.EmptyUA
		mine.Android += r.Android
		mine.Desktop += r.Desktop
		for k, v := range r.BrowserNames {
			mine.BrowserNames[k] += v
		}
	}
	for region, vm := range o.Distances {
		dst, ok := agg.Distances[region]
		if !ok {
			dst = map[GroupKey][]float64{}
			agg.Distances[region] = dst
		}
		for key, v := range vm {
			dst[key] = append(dst[key], v...)
		}
	}
	for c := range o.Countries {
		agg.Countries[c] = true
	}
	agg.WithLocation += o.WithLocation
	agg.WithoutLocation += o.WithoutLocation
	agg.BlacklistedIPs += o.BlacklistedIPs
	agg.EmailsRead += o.EmailsRead
	agg.EmailsSent += o.EmailsSent
	agg.UniqueDrafts += o.UniqueDrafts
	agg.SuspendedAccounts += o.SuspendedAccounts
	agg.Reads = append(agg.Reads, o.Reads...)
	agg.Drafts = append(agg.Drafts, o.Drafts...)
	return nil
}

// Overview assembles the §4.1/§4.5 headline numbers.
func (agg *Aggregates) Overview() Overview {
	return Overview{
		UniqueAccesses:    agg.Classes.Total,
		EmailsRead:        agg.EmailsRead,
		EmailsSent:        agg.EmailsSent,
		UniqueDrafts:      agg.UniqueDrafts,
		SuspendedAccounts: agg.SuspendedAccounts,
		Countries:         len(agg.Countries),
		WithLocation:      agg.WithLocation,
		WithoutLocation:   agg.WithoutLocation,
		BlacklistedIPs:    agg.BlacklistedIPs,
	}
}

// ConfigRows returns the §4.4 rows in outlet order, exactly as
// SystemConfiguration orders them.
func (agg *Aggregates) ConfigRows() []ConfigRow {
	keys := make([]Outlet, 0, len(agg.SystemConfig))
	for k := range agg.SystemConfig {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]ConfigRow, 0, len(keys))
	for _, k := range keys {
		out = append(out, *agg.SystemConfig[k])
	}
	return out
}

// DistanceVectorsFor returns the region's distance vectors sorted
// ascending per group (the canonical form DistanceVectors produces),
// so merged shard order never shows through.
func (agg *Aggregates) DistanceVectorsFor(region Hint) map[GroupKey][]float64 {
	out := make(map[GroupKey][]float64, len(agg.Distances[region]))
	for key, v := range agg.Distances[region] {
		cp := make([]float64, len(v))
		copy(cp, v)
		sort.Float64s(cp)
		out[key] = cp
	}
	return out
}

// MedianRadii computes Figure 5's rows for one region.
func (agg *Aggregates) MedianRadii(region Hint) []RadiusRow {
	return MedianRadiiFromVectors(agg.DistanceVectorsFor(region))
}

// LocationSignificance runs the §4.5 CvM tests from the aggregates.
func (agg *Aggregates) LocationSignificance(resamples int, seed int64) []SignificanceRow {
	return LocationSignificanceFromVectors(agg.DistanceVectorsFor, resamples, seed)
}

// KeywordInference runs the §4.6 TF-IDF pipeline from the aggregated
// read/draft events against the seeded contents.
func (agg *Aggregates) KeywordInference(contents ContentsView, dropWords []string) *TFIDFResult {
	return KeywordInferenceFromEvents(agg.Reads, agg.Drafts, contents, dropWords)
}

// AggregatesFromDataset converts a batch Dataset into Aggregates by
// replaying it through a StreamClassifier: the back-compat bridge for
// datasets loaded from real deployment logs, and the reference the
// stream-equals-batch tests compare against.
func AggregatesFromDataset(ds *Dataset, cfg StreamConfig) *Aggregates {
	sc := NewStreamClassifier(cfg)
	for _, a := range ds.Accesses {
		sc.ObserveAccess(a)
	}
	for _, act := range ds.Actions {
		sc.ObserveAction(act)
	}
	for _, pc := range ds.PasswordChanges {
		sc.ObservePasswordChange(pc)
	}
	agg := sc.Finalize(nil, func(ip string) bool { return ds.Blacklisted[ip] })
	agg.SuspendedAccounts = ds.SuspendedAccounts
	return agg
}
