package analysis

import (
	"time"

	"repro/internal/geo"
)

// Outlet labels the leak channel of an account, as the experiment plan
// records it.
type Outlet string

// The channels of Table 1.
const (
	OutletPaste        Outlet = "paste"
	OutletPasteRussian Outlet = "paste-ru"
	OutletForum        Outlet = "forum"
	OutletMalware      Outlet = "malware"
)

// Hint is the advertised decoy-location region of a leak group.
type Hint string

// Location hints used in the leaks (§3.2).
const (
	HintNone Hint = ""
	HintUK   Hint = "uk"
	HintUS   Hint = "us"
)

// Access is one unique access (one cookie on one account) as the
// monitoring pipeline sees it, annotated with the experiment-plan
// facts for the account (outlet, hint, leak time).
type Access struct {
	Account string
	Cookie  string
	First   time.Time
	Last    time.Time

	Outlet   Outlet
	Hint     Hint
	LeakTime time.Time

	IP        string
	City      string
	Country   string
	HasPoint  bool
	Point     geo.Point
	UserAgent string
}

// Duration returns tlast − t0 (Figure 1's metric).
func (a Access) Duration() time.Duration { return a.Last.Sub(a.First) }

// Anonymous reports whether the access had no usable geolocation —
// what Google attributed to Tor exits and open proxies (§4.5).
func (a Access) Anonymous() bool { return !a.HasPoint }

// ActionKind labels observed mailbox actions (from notifications).
type ActionKind string

// Action kinds reported by the instrumentation.
const (
	ActionRead    ActionKind = "read"
	ActionSent    ActionKind = "sent"
	ActionStarred ActionKind = "starred"
	ActionDraft   ActionKind = "draft"
)

// Action is one observed mailbox action on an account. Notifications
// carry no cookie: attribution to accesses is inferred by time window
// (see Classify).
type Action struct {
	Time    time.Time
	Account string
	Kind    ActionKind
	Message int64
	Body    string // draft copy when Kind == ActionDraft
}

// PasswordChange records when the scraper lost an account to a
// hijacker (reason "password-changed" in monitor terms).
type PasswordChange struct {
	Account string
	Time    time.Time
}

// Dataset is everything the analyses consume.
type Dataset struct {
	Accesses        []Access
	Actions         []Action
	PasswordChanges []PasswordChange
	// Blacklisted is the set of observed IPs found on the Spamhaus
	// blacklist cross-check (§4.5).
	Blacklisted map[string]bool
	// SuspendedAccounts counts accounts the platform blocked (§4.1).
	SuspendedAccounts int
	// Contents maps account → message id → subject+body text of all
	// seeded mail; together with draft bodies from notifications it
	// reconstructs the text of every read email for TF-IDF (§4.6).
	Contents map[string]map[int64]string
}
