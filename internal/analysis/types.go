package analysis

import (
	"strings"
	"time"

	"repro/internal/geo"
)

// Outlet labels the leak channel of an account, as the experiment plan
// records it.
type Outlet string

// The channels of Table 1.
const (
	OutletPaste        Outlet = "paste"
	OutletPasteRussian Outlet = "paste-ru"
	OutletForum        Outlet = "forum"
	OutletMalware      Outlet = "malware"
)

// Hint is the advertised decoy-location region of a leak group.
type Hint string

// Location hints used in the leaks (§3.2).
const (
	HintNone Hint = ""
	HintUK   Hint = "uk"
	HintUS   Hint = "us"
)

// Access is one unique access (one cookie on one account) as the
// monitoring pipeline sees it, annotated with the experiment-plan
// facts for the account (outlet, hint, leak time).
type Access struct {
	Account string
	Cookie  string
	First   time.Time
	Last    time.Time

	Outlet   Outlet
	Hint     Hint
	LeakTime time.Time

	IP        string
	City      string
	Country   string
	HasPoint  bool
	Point     geo.Point
	UserAgent string
}

// Duration returns tlast − t0 (Figure 1's metric).
func (a Access) Duration() time.Duration { return a.Last.Sub(a.First) }

// Anonymous reports whether the access had no usable geolocation —
// what Google attributed to Tor exits and open proxies (§4.5).
func (a Access) Anonymous() bool { return !a.HasPoint }

// ActionKind labels observed mailbox actions (from notifications).
type ActionKind string

// Action kinds reported by the instrumentation.
const (
	ActionRead    ActionKind = "read"
	ActionSent    ActionKind = "sent"
	ActionStarred ActionKind = "starred"
	ActionDraft   ActionKind = "draft"
)

// Action is one observed mailbox action on an account. Notifications
// carry no cookie: attribution to accesses is inferred by time window
// (see Classify).
type Action struct {
	Time    time.Time
	Account string
	Kind    ActionKind
	Message int64
	Body    string // draft copy when Kind == ActionDraft
}

// PasswordChange records when the scraper lost an account to a
// hijacker (reason "password-changed" in monitor terms).
type PasswordChange struct {
	Account string
	Time    time.Time
}

// Dataset is everything the analyses consume.
type Dataset struct {
	Accesses        []Access
	Actions         []Action
	PasswordChanges []PasswordChange
	// Blacklisted is the set of observed IPs found on the Spamhaus
	// blacklist cross-check (§4.5).
	Blacklisted map[string]bool
	// SuspendedAccounts counts accounts the platform blocked (§4.1).
	SuspendedAccounts int
	// Contents exposes the seeded mail text (account → message id →
	// subject/body); together with draft bodies from notifications it
	// reconstructs the text of every read email for TF-IDF (§4.6).
	Contents ContentsView
}

// ContentsView is a read-only view of the seeded mailbox text: every
// message the setup phase placed in a honey account, addressable by
// (account, message id). The honeynet implements it lazily over
// webmail's columnar message store, so analysis reads the one stored
// copy instead of a per-experiment duplicate; tests and external
// callers use MapContents for literal corpora.
type ContentsView interface {
	// Accounts returns how many accounts the view covers.
	Accounts() int
	// Message returns the stored subject and body of one seeded
	// message; ok is false when the account or id is not part of the
	// seeded corpus.
	Message(account string, id int64) (subject, body string, ok bool)
	// Each visits every seeded message exactly once. Visit order is
	// unspecified — TF-IDF weighs term counts, so consumers must not
	// depend on it.
	Each(fn func(account string, id int64, subject, body string))
}

// MapContents adapts the historical map form — account → id →
// "subject\nbody" — to ContentsView. A nil map is a valid empty view.
type MapContents map[string]map[int64]string

// Accounts implements ContentsView.
func (m MapContents) Accounts() int { return len(m) }

// Message implements ContentsView, splitting the stored text at the
// first newline (subjects never contain one).
func (m MapContents) Message(account string, id int64) (subject, body string, ok bool) {
	text, ok := m[account][id]
	if !ok {
		return "", "", false
	}
	subject, body = splitSubject(text)
	return subject, body, true
}

// Each implements ContentsView.
func (m MapContents) Each(fn func(account string, id int64, subject, body string)) {
	for account, msgs := range m {
		for id, text := range msgs {
			subject, body := splitSubject(text)
			fn(account, id, subject, body)
		}
	}
}

func splitSubject(text string) (subject, body string) {
	if i := strings.IndexByte(text, '\n'); i >= 0 {
		return text[:i], text[i+1:]
	}
	return text, ""
}
