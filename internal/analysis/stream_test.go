package analysis

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
)

var streamLeak = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

// streamFixture builds a dataset exercising every aggregate path:
// multiple classes per account, overlapping windows, password
// changes, locations with and without points, drafts read by later
// visitors, and a blacklisted IP.
func streamFixture() *Dataset {
	h := func(n int) time.Time { return streamLeak.Add(time.Duration(n) * time.Hour) }
	return &Dataset{
		Accesses: []Access{
			{Account: "a@x", Cookie: "a-1", First: h(24), Last: h(30), Outlet: OutletPaste, Hint: HintUK,
				LeakTime: streamLeak, IP: "10.0.0.1", City: "Leeds", Country: "UK", HasPoint: true,
				UserAgent: "Mozilla/5.0 Firefox"},
			{Account: "a@x", Cookie: "a-2", First: h(26), Last: h(40), Outlet: OutletPaste, Hint: HintUK,
				LeakTime: streamLeak, IP: "10.0.0.2", HasPoint: false, UserAgent: ""},
			{Account: "b@x", Cookie: "b-1", First: h(-4), Last: h(2), Outlet: OutletForum, Hint: HintNone,
				LeakTime: streamLeak, IP: "10.0.0.3", City: "Lagos", Country: "NG", HasPoint: true,
				UserAgent: "Mozilla/5.0 Android"},
			{Account: "c@x", Cookie: "c-1", First: h(500), Last: h(520), Outlet: OutletMalware, Hint: HintNone,
				LeakTime: streamLeak, IP: "10.0.0.4", HasPoint: false, UserAgent: "curl"},
		},
		Actions: []Action{
			{Time: h(27), Account: "a@x", Kind: ActionRead, Message: 5},
			{Time: h(28), Account: "a@x", Kind: ActionDraft, Message: 900, Body: "ransom in bitcoin"},
			{Time: h(29), Account: "a@x", Kind: ActionRead, Message: 900}, // reads the draft
			{Time: h(1), Account: "b@x", Kind: ActionSent, Message: 7},
			{Time: h(1), Account: "b@x", Kind: ActionStarred, Message: 8},
			{Time: h(600), Account: "c@x", Kind: ActionRead, Message: 9}, // after window: fallback attribution
		},
		PasswordChanges: []PasswordChange{
			{Account: "a@x", Time: h(39)},
		},
		Blacklisted:       map[string]bool{"10.0.0.3": true},
		SuspendedAccounts: 2,
		Contents: MapContents{
			"a@x": {5: "wire transfer statement account"},
			"c@x": {9: "invoice payment details"},
		},
	}
}

// normalize clears unexported/probe fields and canonicalises the
// order-insensitive event multisets so DeepEqual compares the
// observable aggregate state.
func normalize(a *Aggregates) *Aggregates {
	a.durProbes, a.leakProbes = nil, nil
	sort.Slice(a.Reads, func(i, j int) bool {
		if a.Reads[i].Account != a.Reads[j].Account {
			return a.Reads[i].Account < a.Reads[j].Account
		}
		return a.Reads[i].Message < a.Reads[j].Message
	})
	sort.Slice(a.Drafts, func(i, j int) bool {
		if a.Drafts[i].Account != a.Drafts[j].Account {
			return a.Drafts[i].Account < a.Drafts[j].Account
		}
		return a.Drafts[i].Message < a.Drafts[j].Message
	})
	return a
}

// TestStreamObservationOrderInvariance: feeding the same observations
// in a different interleaving (and with stale access rows later
// superseded) produces identical aggregates.
func TestStreamObservationOrderInvariance(t *testing.T) {
	ds := streamFixture()
	ref := AggregatesFromDataset(ds, StreamConfig{})

	sc := NewStreamClassifier(StreamConfig{})
	// Actions first, then accesses in reverse, with a stale row for
	// a-2 (smaller Last) pushed before the final one — as interleaved
	// scrapes would.
	for i := len(ds.Actions) - 1; i >= 0; i-- {
		sc.ObserveAction(ds.Actions[i])
	}
	for _, pc := range ds.PasswordChanges {
		sc.ObservePasswordChange(pc)
	}
	for i := len(ds.Accesses) - 1; i >= 0; i-- {
		a := ds.Accesses[i]
		if a.Cookie == "a-2" {
			stale := a
			stale.Last = a.First.Add(time.Hour)
			sc.ObserveAccess(stale)
		}
		sc.ObserveAccess(a)
	}
	got := sc.Finalize(nil, func(ip string) bool { return ds.Blacklisted[ip] })
	got.SuspendedAccounts = ds.SuspendedAccounts

	if !reflect.DeepEqual(normalize(got), normalize(ref)) {
		t.Fatalf("aggregates differ:\n got %+v\nwant %+v", got, ref)
	}
}

// TestStreamShardSplitMerge: splitting accounts across classifiers
// (as shards do) and merging matches the single-classifier result,
// regardless of merge order.
func TestStreamShardSplitMerge(t *testing.T) {
	ds := streamFixture()
	ref := AggregatesFromDataset(ds, StreamConfig{})

	build := func(accounts ...string) *Aggregates {
		want := map[string]bool{}
		for _, a := range accounts {
			want[a] = true
		}
		sc := NewStreamClassifier(StreamConfig{})
		for _, a := range ds.Accesses {
			if want[a.Account] {
				sc.ObserveAccess(a)
			}
		}
		for _, act := range ds.Actions {
			if want[act.Account] {
				sc.ObserveAction(act)
			}
		}
		for _, pc := range ds.PasswordChanges {
			if want[pc.Account] {
				sc.ObservePasswordChange(pc)
			}
		}
		return sc.Finalize(nil, func(ip string) bool { return ds.Blacklisted[ip] })
	}

	for name, order := range map[string][][]string{
		"ab-c": {{"a@x"}, {"b@x"}, {"c@x"}},
		"c-ba": {{"c@x"}, {"b@x"}, {"a@x"}},
		"bc-a": {{"b@x", "c@x"}, {"a@x"}},
	} {
		merged := NewAggregates(nil, nil)
		for _, accounts := range order {
			if err := merged.Merge(build(accounts...)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		merged.SuspendedAccounts = ds.SuspendedAccounts
		// Vector append order differs per merge order; compare via the
		// canonical sorted accessors plus the scalar state.
		for _, region := range []Hint{HintUK, HintUS} {
			if !reflect.DeepEqual(merged.DistanceVectorsFor(region), ref.DistanceVectorsFor(region)) {
				t.Fatalf("%s: distance vectors differ for %q", name, region)
			}
		}
		gotKW := merged.KeywordInference(ds.Contents, nil)
		refKW := ref.KeywordInference(ds.Contents, nil)
		if !reflect.DeepEqual(gotKW.TopSearched(5), refKW.TopSearched(5)) {
			t.Fatalf("%s: keyword inference differs", name)
		}
		if merged.Overview() != ref.Overview() {
			t.Fatalf("%s: overview %+v vs %+v", name, merged.Overview(), ref.Overview())
		}
		if !reflect.DeepEqual(merged.Classes, ref.Classes) || !reflect.DeepEqual(merged.PerOutlet, ref.PerOutlet) {
			t.Fatalf("%s: class tallies differ", name)
		}
		if !reflect.DeepEqual(merged.ConfigRows(), ref.ConfigRows()) {
			t.Fatalf("%s: config rows differ", name)
		}
	}
}

// TestAggregatesMatchBatchFunctions: each aggregate field agrees with
// the batch analysis function it replaces.
func TestAggregatesMatchBatchFunctions(t *testing.T) {
	ds := streamFixture()
	agg := AggregatesFromDataset(ds, StreamConfig{})
	cs := Classify(ds, ClassifyOptions{})

	if got, want := agg.Classes, CountClasses(cs); got != want {
		t.Fatalf("class counts %+v vs %+v", got, want)
	}
	if got, want := agg.PerOutlet, ByOutlet(cs); !reflect.DeepEqual(got, want) {
		t.Fatalf("per-outlet %+v vs %+v", got, want)
	}
	if got, want := agg.Overview(), Summarize(ds); got != want {
		t.Fatalf("overview %+v vs %+v", got, want)
	}
	if got, want := agg.ConfigRows(), SystemConfiguration(ds); !reflect.DeepEqual(got, want) {
		t.Fatalf("config rows %+v vs %+v", got, want)
	}
	for _, region := range []Hint{HintUK, HintUS} {
		if got, want := agg.DistanceVectorsFor(region), DistanceVectors(ds, region); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s distance vectors %+v vs %+v", region, got, want)
		}
		if got, want := agg.MedianRadii(region), MedianRadii(ds, region); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s radii %+v vs %+v", region, got, want)
		}
	}
	// Duration sketches agree with the ECDF of DurationsByClass at
	// every probe.
	durations := DurationsByClass(cs)
	if len(agg.Durations) != len(durations) {
		t.Fatalf("duration classes %v vs %v", agg.Durations, durations)
	}
	for class, sample := range durations {
		sk := agg.Durations[class]
		if sk == nil || sk.N() != len(sample) {
			t.Fatalf("class %q: sketch %v vs sample %v", class, sk, sample)
		}
		for i, p := range sk.Probes() {
			le := 0
			for _, v := range sample {
				if v <= p {
					le++
				}
			}
			if got, want := sk.Frac(i), float64(le)/float64(len(sample)); got != want {
				t.Fatalf("class %q probe %g: %v vs %v", class, p, got, want)
			}
		}
	}
	// Timeline buckets agree with Figure 4's bucketing of Timeline.
	points := Timeline(ds)
	buckets := map[Outlet]map[int]int{}
	for _, p := range points {
		b := int(p.Days) / 10
		if buckets[p.Outlet] == nil {
			buckets[p.Outlet] = map[int]int{}
		}
		buckets[p.Outlet][b]++
	}
	if !reflect.DeepEqual(agg.Timeline, buckets) {
		t.Fatalf("timeline %v vs %v", agg.Timeline, buckets)
	}
}

// TestStreamFactsAnnotation: a facts lookup supplied at Finalize
// overrides whatever annotations the raw observations carried.
func TestStreamFactsAnnotation(t *testing.T) {
	sc := NewStreamClassifier(StreamConfig{})
	sc.ObserveAccess(Access{
		Account: "a@x", Cookie: "k", First: streamLeak.Add(48 * time.Hour),
		Last: streamLeak.Add(50 * time.Hour), HasPoint: false,
	})
	agg := sc.Finalize(func(account string) Facts {
		if account != "a@x" {
			t.Fatalf("facts asked for %q", account)
		}
		return Facts{Outlet: OutletForum, Hint: HintUS, LeakTime: streamLeak}
	}, nil)
	if c := agg.PerOutlet[OutletForum]; c.Total != 1 {
		t.Fatalf("forum tally %+v", agg.PerOutlet)
	}
	sk := agg.TimeToAccess[OutletForum]
	if sk == nil || sk.N() != 1 {
		t.Fatalf("time-to-access sketch missing: %v", agg.TimeToAccess)
	}
}

// TestStreamProbeMismatchMergeFails: merging aggregates built on
// different probe grids reports an error instead of corrupting
// counts.
func TestStreamProbeMismatchMergeFails(t *testing.T) {
	a := AggregatesFromDataset(streamFixture(), StreamConfig{})
	b := AggregatesFromDataset(streamFixture(), StreamConfig{DurationProbes: []float64{1, 2}})
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched probe grids succeeded")
	}
	if fmt.Sprint(a.Classes.Total) == "0" {
		t.Fatal("fixture produced no accesses")
	}
}
