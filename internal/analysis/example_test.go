package analysis_test

import (
	"fmt"
	"time"

	"repro/internal/analysis"
)

// Classifying a small access trace: one attacker logs in and reads
// mail (gold digger), a second logs in and does nothing (curious),
// and a password change after the second access marks the hijack.
func ExampleClassify() {
	leak := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	ds := &analysis.Dataset{
		Accesses: []analysis.Access{
			{
				Account: "alice@honeymail.example", Cookie: "c-1",
				First: leak.Add(24 * time.Hour), Last: leak.Add(26 * time.Hour),
				Outlet: analysis.OutletPaste, LeakTime: leak,
			},
			{
				Account: "alice@honeymail.example", Cookie: "c-2",
				First: leak.Add(72 * time.Hour), Last: leak.Add(73 * time.Hour),
				Outlet: analysis.OutletPaste, LeakTime: leak,
			},
		},
		Actions: []analysis.Action{
			{Time: leak.Add(25 * time.Hour), Account: "alice@honeymail.example", Kind: analysis.ActionRead, Message: 7},
		},
		PasswordChanges: []analysis.PasswordChange{
			{Account: "alice@honeymail.example", Time: leak.Add(73 * time.Hour)},
		},
	}
	for _, c := range analysis.Classify(ds, analysis.ClassifyOptions{}) {
		fmt.Printf("%s %s\n", c.Access.Cookie, c.Classes)
	}
	counts := analysis.CountClasses(analysis.Classify(ds, analysis.ClassifyOptions{}))
	fmt.Printf("total=%d curious=%d gold-diggers=%d hijackers=%d\n",
		counts.Total, counts.Curious, counts.GoldDigger, counts.Hijacker)
	// Output:
	// c-1 gold-digger
	// c-2 hijacker
	// total=2 curious=0 gold-diggers=1 hijackers=1
}

// The streaming pipeline reaches the same classes without ever
// building a Dataset: observations arrive one at a time (here out of
// order, as shard scrapes would deliver them) and Finalize folds them
// into mergeable aggregates.
func ExampleStreamClassifier() {
	leak := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	sc := analysis.NewStreamClassifier(analysis.StreamConfig{})
	sc.ObserveAction(analysis.Action{
		Time: leak.Add(25 * time.Hour), Account: "alice@honeymail.example",
		Kind: analysis.ActionRead, Message: 7,
	})
	sc.ObserveAccess(analysis.Access{
		Account: "alice@honeymail.example", Cookie: "c-1",
		First: leak.Add(24 * time.Hour), Last: leak.Add(26 * time.Hour),
		Outlet: analysis.OutletPaste, LeakTime: leak,
	})
	agg := sc.Finalize(nil, nil)
	fmt.Printf("accesses=%d gold-diggers=%d emails-read=%d\n",
		agg.Classes.Total, agg.Classes.GoldDigger, agg.EmailsRead)
	// Output:
	// accesses=1 gold-diggers=1 emails-read=1
}
