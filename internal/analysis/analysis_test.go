package analysis

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
)

var epoch = time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)

func mkAccess(account, cookie string, outlet Outlet, first, last time.Time) Access {
	return Access{
		Account: account, Cookie: cookie, Outlet: outlet,
		First: first, Last: last, LeakTime: epoch,
	}
}

func TestClassifyCurious(t *testing.T) {
	ds := &Dataset{Accesses: []Access{mkAccess("a", "c1", OutletPaste, epoch, epoch.Add(time.Minute))}}
	cs := Classify(ds, ClassifyOptions{})
	if len(cs) != 1 || cs[0].Classes != Curious {
		t.Fatalf("classes = %v", cs)
	}
	counts := CountClasses(cs)
	if counts.Curious != 1 || counts.GoldDigger != 0 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestClassifyAttributionByWindow(t *testing.T) {
	ds := &Dataset{
		Accesses: []Access{
			mkAccess("a", "c1", OutletPaste, epoch, epoch.Add(30*time.Minute)),
			mkAccess("a", "c2", OutletPaste, epoch.Add(2*time.Hour), epoch.Add(3*time.Hour)),
		},
		Actions: []Action{
			{Time: epoch.Add(10 * time.Minute), Account: "a", Kind: ActionRead, Message: 1},
			{Time: epoch.Add(2*time.Hour + 30*time.Minute), Account: "a", Kind: ActionSent, Message: 2},
		},
	}
	cs := Classify(ds, ClassifyOptions{})
	byCookie := map[string]Class{}
	for _, c := range cs {
		byCookie[c.Access.Cookie] = c.Classes
	}
	if !byCookie["c1"].Has(GoldDigger) || byCookie["c1"].Has(Spammer) {
		t.Fatalf("c1 = %v", byCookie["c1"])
	}
	if !byCookie["c2"].Has(Spammer) || byCookie["c2"].Has(GoldDigger) {
		t.Fatalf("c2 = %v", byCookie["c2"])
	}
}

func TestClassifySlackAbsorbsScanDelay(t *testing.T) {
	// Notification arrives 9 minutes after the access window closed
	// (scan trigger latency): still attributed.
	ds := &Dataset{
		Accesses: []Access{mkAccess("a", "c1", OutletForum, epoch, epoch.Add(5*time.Minute))},
		Actions:  []Action{{Time: epoch.Add(14 * time.Minute), Account: "a", Kind: ActionRead}},
	}
	cs := Classify(ds, ClassifyOptions{})
	if !cs[0].Classes.Has(GoldDigger) {
		t.Fatal("scan-delayed action not attributed")
	}
}

func TestClassifyFallbackAfterVisibilityLoss(t *testing.T) {
	// Action long after every window (activity page frozen by a
	// hijack): attaches to the latest prior access.
	ds := &Dataset{
		Accesses: []Access{
			mkAccess("a", "old", OutletPaste, epoch, epoch.Add(time.Hour)),
			mkAccess("a", "recent", OutletPaste, epoch.Add(2*time.Hour), epoch.Add(3*time.Hour)),
		},
		Actions: []Action{{Time: epoch.Add(48 * time.Hour), Account: "a", Kind: ActionSent}},
		PasswordChanges: []PasswordChange{
			{Account: "a", Time: epoch.Add(47 * time.Hour)},
		},
	}
	cs := Classify(ds, ClassifyOptions{})
	byCookie := map[string]Class{}
	for _, c := range cs {
		byCookie[c.Access.Cookie] = c.Classes
	}
	if !byCookie["recent"].Has(Spammer) || !byCookie["recent"].Has(Hijacker) {
		t.Fatalf("fallback attribution = %v", byCookie)
	}
	if byCookie["old"] != Curious {
		t.Fatalf("old access polluted: %v", byCookie["old"])
	}
}

func TestCountClassesOverlap(t *testing.T) {
	cs := []Classified{
		{Classes: GoldDigger | Spammer},
		{Classes: Hijacker},
		{Classes: Curious},
	}
	counts := CountClasses(cs)
	if counts.Total != 3 || counts.Curious != 1 || counts.GoldDigger != 1 || counts.Spammer != 1 || counts.Hijacker != 1 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestByOutletAndDurations(t *testing.T) {
	ds := &Dataset{
		Accesses: []Access{
			mkAccess("a", "c1", OutletPaste, epoch, epoch.Add(2*time.Hour)),
			mkAccess("b", "c2", OutletMalware, epoch, epoch.Add(30*time.Minute)),
		},
		Actions: []Action{{Time: epoch.Add(time.Minute), Account: "a", Kind: ActionRead}},
	}
	cs := Classify(ds, ClassifyOptions{})
	per := ByOutlet(cs)
	if per[OutletPaste].GoldDigger != 1 || per[OutletMalware].Curious != 1 {
		t.Fatalf("per-outlet = %+v", per)
	}
	dur := DurationsByClass(cs)
	if len(dur["gold-digger"]) != 1 || math.Abs(dur["gold-digger"][0]-2) > 1e-9 {
		t.Fatalf("durations = %+v", dur)
	}
}

func TestTimeToFirstAccessAndTimeline(t *testing.T) {
	ds := &Dataset{Accesses: []Access{
		mkAccess("a", "c1", OutletPaste, epoch.Add(24*time.Hour), epoch.Add(25*time.Hour)),
		mkAccess("b", "c2", OutletForum, epoch.Add(48*time.Hour), epoch.Add(49*time.Hour)),
	}}
	tt := TimeToFirstAccess(ds)
	if len(tt[OutletPaste]) != 1 || math.Abs(tt[OutletPaste][0]-1) > 1e-9 {
		t.Fatalf("paste days = %v", tt[OutletPaste])
	}
	tl := Timeline(ds)
	if len(tl) != 2 || tl[0].Days > tl[1].Days {
		t.Fatalf("timeline = %+v", tl)
	}
}

func TestTFIDFSharedTermsNonZero(t *testing.T) {
	read := []string{"bitcoin", "bitcoin", "payment", "transfer"}
	all := []string{"transfer", "transfer", "company", "energy", "payment"}
	r := ComputeTFIDF(read, all)
	if r.ReadWeight["transfer"] == 0 || r.AllWeight["transfer"] == 0 {
		t.Fatal("shared term zeroed out (need smoothed idf)")
	}
	if r.AllWeight["bitcoin"] != 0 {
		t.Fatal("bitcoin should be absent from dA")
	}
	top := r.TopSearched(2)
	if top[0].Term != "bitcoin" {
		t.Fatalf("top searched = %+v, want bitcoin first", top)
	}
}

func TestTFIDFWeightsBounded(t *testing.T) {
	f := func(a, b []byte) bool {
		toTokens := func(bs []byte) []string {
			var out []string
			for _, x := range bs {
				out = append(out, fmt.Sprintf("tok%d", x%16))
			}
			return out
		}
		ra, rb := toTokens(a), toTokens(b)
		if len(ra) == 0 || len(rb) == 0 {
			return true
		}
		r := ComputeTFIDF(ra, rb)
		for _, w := range r.ReadWeight {
			if w < 0 || w > 1+1e-9 {
				return false
			}
		}
		for _, w := range r.AllWeight {
			if w < 0 || w > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopCorpusRanksCorpusWords(t *testing.T) {
	all := []string{"company", "company", "company", "energy", "energy", "power"}
	read := []string{"bitcoin"}
	r := ComputeTFIDF(read, all)
	top := r.TopCorpus(1)
	if top[0].Term != "company" {
		t.Fatalf("top corpus = %+v", top)
	}
}

func TestCvMSameDistribution(t *testing.T) {
	src := rng.New(1)
	x := make([]float64, 80)
	y := make([]float64, 70)
	for i := range x {
		x[i] = src.Normal(0, 1)
	}
	for i := range y {
		y[i] = src.Normal(0, 1)
	}
	res := CvMTest(x, y, 500, 42)
	if res.RejectAt001 {
		t.Fatalf("same-distribution samples rejected: %+v", res)
	}
	if res.P <= 0 || res.P > 1 {
		t.Fatalf("p out of range: %v", res.P)
	}
}

func TestCvMDifferentDistributions(t *testing.T) {
	src := rng.New(2)
	x := make([]float64, 80)
	y := make([]float64, 80)
	for i := range x {
		x[i] = src.Normal(0, 1)
	}
	for i := range y {
		y[i] = src.Normal(3, 1)
	}
	res := CvMTest(x, y, 500, 42)
	if !res.RejectAt001 {
		t.Fatalf("clearly different samples not rejected: %+v", res)
	}
}

func TestCvMStatisticProperties(t *testing.T) {
	// Symmetry: T(x,y) == T(y,x).
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1.5, 2.5, 3.5}
	if d := math.Abs(CvMStatistic(x, y) - CvMStatistic(y, x)); d > 1e-9 {
		t.Fatalf("asymmetry = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	CvMStatistic(nil, y)
}

func TestAsymptoticPValueMonotone(t *testing.T) {
	prev := 1.1
	for _, x := range []float64{0.01, 0.03, 0.06, 0.1, 0.2, 0.35, 0.7, 1.2} {
		p := AsymptoticPValue(x)
		if p > prev {
			t.Fatalf("p not monotone at %v", x)
		}
		if p < 0 || p > 1 {
			t.Fatalf("p out of range: %v", p)
		}
		prev = p
	}
	// Standard quantile check: P(ω² > 0.46136) ≈ 0.05 (within table
	// interpolation error).
	if p := AsymptoticPValue(0.17473); math.Abs(p-0.05) > 0.02 {
		t.Fatalf("p(0.17473) = %v, want ~0.05", p)
	}
}

func TestDistanceVectorsGrouping(t *testing.T) {
	london := geo.LondonMidpoint
	mk := func(cookie string, outlet Outlet, hint Hint, pt geo.Point, hasPt bool) Access {
		a := mkAccess("a", cookie, outlet, epoch, epoch)
		a.Hint = hint
		a.Point = pt
		a.HasPoint = hasPt
		return a
	}
	ds := &Dataset{Accesses: []Access{
		mk("c1", OutletPaste, HintUK, geo.Point{Lat: 52, Lon: 0}, true),
		mk("c2", OutletPaste, HintNone, geo.Point{Lat: 48, Lon: 2}, true),
		mk("c3", OutletForum, HintUK, geo.Point{Lat: 50, Lon: 10}, true),
		mk("c4", OutletPaste, HintUK, geo.Point{}, false),                  // tor: skipped
		mk("c5", OutletMalware, HintNone, geo.Point{Lat: 1, Lon: 1}, true), // malware: skipped
		mk("c6", OutletPaste, HintUS, geo.Point{Lat: 41, Lon: -88}, true),  // other region: skipped for UK
	}}
	v := DistanceVectors(ds, HintUK)
	if len(v[GroupKey{OutletPaste, HintUK}]) != 1 || len(v[GroupKey{OutletPaste, HintNone}]) != 1 || len(v[GroupKey{OutletForum, HintUK}]) != 1 {
		t.Fatalf("vectors = %v", v)
	}
	got := v[GroupKey{OutletPaste, HintUK}][0]
	want := geo.HaversineKm(geo.Point{Lat: 52, Lon: 0}, london)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("distance = %v, want %v", got, want)
	}
}

func TestMedianRadiiAndSignificance(t *testing.T) {
	src := rng.New(3)
	var accesses []Access
	add := func(outlet Outlet, hint Hint, lat, lon float64, n int) {
		for i := 0; i < n; i++ {
			a := mkAccess("a", fmt.Sprintf("%v-%v-%d", outlet, hint, i), outlet, epoch, epoch)
			a.Hint = hint
			a.HasPoint = true
			a.Point = geo.Point{Lat: lat + src.Normal(0, 0.5), Lon: lon + src.Normal(0, 0.5)}
			accesses = append(accesses, a)
		}
	}
	// Paste+UK hint: near London. Paste no hint: far. Forum groups:
	// identical distribution (hint ignored by forum criminals).
	add(OutletPaste, HintUK, 51.5, -0.1, 40)
	add(OutletPaste, HintNone, 40, 30, 40)
	add(OutletForum, HintUK, 45, 20, 40)
	add(OutletForum, HintNone, 45, 20, 40)
	ds := &Dataset{Accesses: accesses}
	radii := MedianRadii(ds, HintUK)
	var pasteHint, pastePlain float64
	for _, r := range radii {
		if r.Group.Outlet == OutletPaste && r.Group.Hint == HintUK {
			pasteHint = r.MedianKm
		}
		if r.Group.Outlet == OutletPaste && r.Group.Hint == HintNone {
			pastePlain = r.MedianKm
		}
	}
	if pasteHint >= pastePlain {
		t.Fatalf("paste hint median %v >= plain %v", pasteHint, pastePlain)
	}
	sig := LocationSignificance(ds, 300, 7)
	var pasteRej, forumRej bool
	for _, s := range sig {
		if s.Region != HintUK {
			continue
		}
		if s.Outlet == OutletPaste {
			pasteRej = s.Result.RejectAt001
		}
		if s.Outlet == OutletForum {
			forumRej = s.Result.RejectAt001
		}
	}
	if !pasteRej {
		t.Fatal("paste UK comparison should reject (clearly different)")
	}
	if forumRej {
		t.Fatal("forum UK comparison should not reject (same distribution)")
	}
}

func TestSystemConfiguration(t *testing.T) {
	chromeUA := "Mozilla/5.0 (Windows NT 6.1) Chrome/43.0 Safari/537.36"
	androidUA := "Mozilla/5.0 (Linux; Android 5.1) Chrome/43.0 Mobile Safari/537.36"
	mk := func(cookie string, outlet Outlet, ua string) Access {
		a := mkAccess("a", cookie, outlet, epoch, epoch)
		a.UserAgent = ua
		return a
	}
	ds := &Dataset{Accesses: []Access{
		mk("c1", OutletMalware, ""),
		mk("c2", OutletMalware, ""),
		mk("c3", OutletPaste, chromeUA),
		mk("c4", OutletPaste, androidUA),
	}}
	rows := SystemConfiguration(ds)
	byOutlet := map[Outlet]ConfigRow{}
	for _, r := range rows {
		byOutlet[r.Outlet] = r
	}
	mal := byOutlet[OutletMalware]
	if mal.EmptyUA != 2 || mal.Android != 0 || mal.Desktop != 0 {
		t.Fatalf("malware config = %+v", mal)
	}
	paste := byOutlet[OutletPaste]
	if paste.Android != 1 || paste.Desktop != 1 {
		t.Fatalf("paste config = %+v", paste)
	}
}

func TestSummarizeOverview(t *testing.T) {
	mk := func(cookie, ip, country string, hasPt bool) Access {
		a := mkAccess("a", cookie, OutletPaste, epoch, epoch)
		a.IP, a.Country, a.HasPoint = ip, country, hasPt
		return a
	}
	ds := &Dataset{
		Accesses: []Access{
			mk("c1", "1.1.1.1", "France", true),
			mk("c2", "2.2.2.2", "Japan", true),
			mk("c3", "3.3.3.3", "", false),
		},
		Actions: []Action{
			{Account: "a", Kind: ActionRead, Message: 1},
			{Account: "a", Kind: ActionRead, Message: 2},
			{Account: "a", Kind: ActionSent, Message: 3},
			{Account: "a", Kind: ActionDraft, Message: 4},
			{Account: "a", Kind: ActionDraft, Message: 4}, // same draft edited twice
		},
		Blacklisted:       map[string]bool{"2.2.2.2": true},
		SuspendedAccounts: 5,
	}
	o := Summarize(ds)
	if o.UniqueAccesses != 3 || o.EmailsRead != 2 || o.EmailsSent != 1 || o.UniqueDrafts != 1 {
		t.Fatalf("overview = %+v", o)
	}
	if o.Countries != 2 || o.WithLocation != 2 || o.WithoutLocation != 1 || o.BlacklistedIPs != 1 || o.SuspendedAccounts != 5 {
		t.Fatalf("overview = %+v", o)
	}
}

func TestKeywordInferencePipeline(t *testing.T) {
	ds := &Dataset{
		Contents: MapContents{
			"a": {
				1: "Wire transfer confirmation: the payment settled against the company account.",
				2: "The company energy report for the quarter is attached with power figures.",
				3: "Meeting about energy policy and company strategy with information for everyone.",
			},
		},
		Actions: []Action{
			{Account: "a", Kind: ActionRead, Message: 1},
			{Account: "a", Kind: ActionDraft, Message: 99,
				Body: "Send two bitcoin to the wallet listed below. Buy from a localbitcoins seller with good results. Payment protects your family."},
		},
	}
	r := KeywordInference(ds, []string{"honeyhandle"})
	top := r.TopSearched(10)
	rank := map[string]int{}
	for i, row := range top {
		rank[row.Term] = i + 1
	}
	if _, ok := rank["bitcoin"]; !ok {
		t.Fatalf("bitcoin missing from top searched: %+v", top)
	}
	// Corpus-dominant words must NOT rank top of the searched list.
	if r, ok := rank["energy"]; ok && r <= 3 {
		t.Fatalf("corpus word 'energy' ranked %d in searched list", r)
	}
	corpusTop := r.TopCorpus(5)
	found := false
	for _, row := range corpusTop {
		if row.Term == "company" || row.Term == "energy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("corpus top missing company/energy: %+v", corpusTop)
	}
}

func TestClassStringAnalysis(t *testing.T) {
	if (GoldDigger | Hijacker).String() != "gold-digger+hijacker" {
		t.Fatalf("string = %q", (GoldDigger | Hijacker).String())
	}
	if Curious.String() != "curious" || Class(0).String() != "curious" {
		t.Fatal("curious labels wrong")
	}
}
