package analysis

import (
	"math"
	"time"

	"repro/internal/geo"
)

// obsCols is the streaming classifier's columnar "latest access row
// per cookie" state for one account — the same struct-of-arrays
// pattern webmail and the monitor use. A delta for a known cookie
// updates columns in place, so ingesting the monitor's steady stream
// of tlast/visit bumps allocates nothing; only a genuinely new cookie
// grows the columns.
type obsCols struct {
	byCookie map[string]int32

	cookie   []string
	firstNS  []int64
	lastNS   []int64
	outlet   []Outlet
	hint     []Hint
	leakNS   []int64
	ip       []string
	city     []string
	country  []string
	hasPoint []bool
	lat      []float64
	lon      []float64
	ua       []string
}

// zeroNS marks a zero time.Time in a nanosecond column: the zero time
// predates the int64-nanosecond range, so its UnixNano is undefined
// and must not round-trip through arithmetic.
const zeroNS = math.MinInt64

func packTime(t time.Time) int64 {
	if t.IsZero() {
		return zeroNS
	}
	return t.UnixNano()
}

func unpackTime(ns int64) time.Time {
	if ns == zeroNS {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

func (t *obsCols) len() int { return len(t.cookie) }

// set stores the latest row for a cookie, superseding any earlier one.
func (t *obsCols) set(a Access) {
	if i, ok := t.byCookie[a.Cookie]; ok {
		t.firstNS[i] = packTime(a.First)
		t.lastNS[i] = packTime(a.Last)
		t.outlet[i], t.hint[i], t.leakNS[i] = a.Outlet, a.Hint, packTime(a.LeakTime)
		t.ip[i], t.city[i], t.country[i] = a.IP, a.City, a.Country
		t.hasPoint[i], t.lat[i], t.lon[i] = a.HasPoint, a.Point.Lat, a.Point.Lon
		t.ua[i] = a.UserAgent
		return
	}
	if t.byCookie == nil {
		t.byCookie = make(map[string]int32)
	}
	t.byCookie[a.Cookie] = int32(len(t.cookie))
	t.cookie = append(t.cookie, a.Cookie)
	t.firstNS = append(t.firstNS, packTime(a.First))
	t.lastNS = append(t.lastNS, packTime(a.Last))
	t.outlet = append(t.outlet, a.Outlet)
	t.hint = append(t.hint, a.Hint)
	t.leakNS = append(t.leakNS, packTime(a.LeakTime))
	t.ip = append(t.ip, a.IP)
	t.city = append(t.city, a.City)
	t.country = append(t.country, a.Country)
	t.hasPoint = append(t.hasPoint, a.HasPoint)
	t.lat = append(t.lat, a.Point.Lat)
	t.lon = append(t.lon, a.Point.Lon)
	t.ua = append(t.ua, a.UserAgent)
}

// materialize rebuilds the Access value for row i, annotated with the
// account it belongs to.
func (t *obsCols) materialize(i int32, account string) Access {
	return Access{
		Account:   account,
		Cookie:    t.cookie[i],
		First:     unpackTime(t.firstNS[i]),
		Last:      unpackTime(t.lastNS[i]),
		Outlet:    t.outlet[i],
		Hint:      t.hint[i],
		LeakTime:  unpackTime(t.leakNS[i]),
		IP:        t.ip[i],
		City:      t.city[i],
		Country:   t.country[i],
		HasPoint:  t.hasPoint[i],
		Point:     geo.Point{Lat: t.lat[i], Lon: t.lon[i]},
		UserAgent: t.ua[i],
	}
}
