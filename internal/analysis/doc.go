// Package analysis implements the paper's measurement pipeline over
// the monitoring observations. Paper-section map:
//
//   - §4.2 taxonomy (curious / gold digger / spammer / hijacker):
//     Class, Classify and the time-window attribution in taxonomy.go.
//   - §4.3 timing (Figures 1, 3, 4): DurationsByClass,
//     TimeToFirstAccess, Timeline.
//   - §4.4 system configuration: SystemConfiguration, classifyUA.
//   - §4.5 location (Figure 5) and Cramér–von Mises significance:
//     DistanceVectors, MedianRadii, LocationSignificance, cvm.go.
//   - §4.6 keyword inference (Table 2): KeywordInference, tfidf.go.
//
// The package consumes only the observables a real deployment would
// have — activity-page rows, script notifications, scrape failures,
// and the researchers' own knowledge of the leak plan — so it can be
// pointed at logs from an actual honey-account deployment unchanged.
//
// Two evaluation paths produce the same numbers:
//
//   - Batch: merge everything into a Dataset, then call the analysis
//     functions — the paper's own post-hoc shape.
//   - Streaming: feed each shard's observations through a
//     StreamClassifier while the simulation runs and merge per-shard
//     Aggregates at the end (stream.go) — O(shards) merge work, no
//     global dataset, byte-identical reports for a fixed seed.
package analysis
