package analysis

import (
	"sort"

	"repro/internal/geo"
)

// Location analysis of §4.5 / Figure 5: distances between login
// origins and the advertised decoy midpoints, median radii per leak
// group, and the Cramér–von Mises comparisons.

// GroupKey identifies one comparison group of Figure 5: an outlet
// family with or without an advertised location.
type GroupKey struct {
	Outlet Outlet
	Hint   Hint
}

// DistanceVectors extracts, per group, the distances (km) from each
// geolocated access to the midpoint for the given region. Only
// accesses with geolocation participate (Tor/proxy accesses cannot be
// placed, §4.5); outlets other than paste and forum are skipped, as in
// the paper (malware accesses were almost all Tor).
func DistanceVectors(ds *Dataset, region Hint) map[GroupKey][]float64 {
	var mid geo.Point
	switch region {
	case HintUK:
		mid = geo.LondonMidpoint
	case HintUS:
		mid = geo.PontiacMidpoint
	default:
		panic("analysis: DistanceVectors requires HintUK or HintUS")
	}
	out := make(map[GroupKey][]float64)
	for _, a := range ds.Accesses {
		if !a.HasPoint {
			continue
		}
		var outlet Outlet
		switch a.Outlet {
		case OutletPaste, OutletPasteRussian:
			outlet = OutletPaste
		case OutletForum:
			outlet = OutletForum
		default:
			continue
		}
		// Groups compared for region R: accounts advertised with R's
		// location, and accounts leaked with no location information.
		if a.Hint != region && a.Hint != HintNone {
			continue
		}
		key := GroupKey{Outlet: outlet, Hint: a.Hint}
		out[key] = append(out[key], geo.HaversineKm(a.Point, mid))
	}
	for _, v := range out {
		sort.Float64s(v)
	}
	return out
}

// RadiusRow is one circle of Figure 5.
type RadiusRow struct {
	Group    GroupKey
	N        int
	MedianKm float64
}

// MedianRadii computes Figure 5's circle radii for one region.
func MedianRadii(ds *Dataset, region Hint) []RadiusRow {
	return MedianRadiiFromVectors(DistanceVectors(ds, region))
}

// MedianRadiiFromVectors computes the radius rows from pre-extracted
// distance vectors (each sorted ascending) — the entry point the
// streaming aggregates share with the dataset path.
func MedianRadiiFromVectors(vectors map[GroupKey][]float64) []RadiusRow {
	keys := make([]GroupKey, 0, len(vectors))
	for k := range vectors {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Outlet != keys[j].Outlet {
			return keys[i].Outlet < keys[j].Outlet
		}
		return keys[i].Hint < keys[j].Hint
	})
	var out []RadiusRow
	for _, k := range keys {
		v := vectors[k]
		if len(v) == 0 {
			continue
		}
		med := v[len(v)/2]
		if len(v)%2 == 0 {
			med = (v[len(v)/2-1] + v[len(v)/2]) / 2
		}
		out = append(out, RadiusRow{Group: k, N: len(v), MedianKm: med})
	}
	return out
}

// SignificanceRow is one CvM comparison of §4.5: hint vs no-hint for
// one outlet family in one region.
type SignificanceRow struct {
	Outlet Outlet
	Region Hint
	Result CvMResult
	NHint  int
	NPlain int
}

// LocationSignificance runs the paper's four tests (paste UK, paste
// US, forum UK, forum US). Pairs with an empty side are skipped.
func LocationSignificance(ds *Dataset, resamples int, seed int64) []SignificanceRow {
	return LocationSignificanceFromVectors(func(region Hint) map[GroupKey][]float64 {
		return DistanceVectors(ds, region)
	}, resamples, seed)
}

// LocationSignificanceFromVectors runs the same four tests over
// distance vectors supplied by a lookup (sorted ascending per group),
// shared by the dataset and aggregate paths.
func LocationSignificanceFromVectors(vectorsFor func(Hint) map[GroupKey][]float64, resamples int, seed int64) []SignificanceRow {
	var out []SignificanceRow
	for _, region := range []Hint{HintUK, HintUS} {
		vectors := vectorsFor(region)
		for _, outlet := range []Outlet{OutletPaste, OutletForum} {
			withHint := vectors[GroupKey{Outlet: outlet, Hint: region}]
			plain := vectors[GroupKey{Outlet: outlet, Hint: HintNone}]
			if len(withHint) == 0 || len(plain) == 0 {
				continue
			}
			res := CvMTest(withHint, plain, resamples, seed)
			out = append(out, SignificanceRow{
				Outlet: outlet, Region: region, Result: res,
				NHint: len(withHint), NPlain: len(plain),
			})
		}
	}
	return out
}

// ConfigRow summarises the §4.4 system-configuration observations for
// one outlet.
type ConfigRow struct {
	Outlet       Outlet
	Accesses     int
	EmptyUA      int
	Android      int
	Desktop      int
	BrowserNames map[string]int
}

// SystemConfiguration breaks accesses down by fingerprint per outlet.
func SystemConfiguration(ds *Dataset) []ConfigRow {
	rows := make(map[Outlet]*ConfigRow)
	for _, a := range ds.Accesses {
		r, ok := rows[a.Outlet]
		if !ok {
			r = &ConfigRow{Outlet: a.Outlet, BrowserNames: make(map[string]int)}
			rows[a.Outlet] = r
		}
		r.Accesses++
		browser, device := classifyUA(a.UserAgent)
		switch {
		case a.UserAgent == "":
			r.EmptyUA++
		case device == "android":
			r.Android++
		default:
			r.Desktop++
		}
		r.BrowserNames[browser]++
	}
	keys := make([]Outlet, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]ConfigRow, 0, len(keys))
	for _, k := range keys {
		out = append(out, *rows[k])
	}
	return out
}

// classifyUA mirrors netsim's fingerprinting without importing it
// (analysis depends only on observables, not on the simulator).
func classifyUA(ua string) (browser, device string) {
	if ua == "" {
		return "unknown", "unknown"
	}
	has := func(sub string) bool {
		for i := 0; i+len(sub) <= len(ua); i++ {
			if ua[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	}
	switch {
	case has("Android"):
		return "android", "android"
	case has("Opera"):
		return "opera", "desktop"
	case has("Firefox"):
		return "firefox", "desktop"
	case has("Trident") || has("MSIE"):
		return "ie", "desktop"
	case has("Chrome"):
		return "chrome", "desktop"
	case has("Safari"):
		return "safari", "desktop"
	default:
		return "unknown", "desktop"
	}
}

// Overview reproduces the §4.1/§4.5 headline numbers.
type Overview struct {
	UniqueAccesses    int
	EmailsRead        int
	EmailsSent        int
	UniqueDrafts      int
	SuspendedAccounts int
	Countries         int
	WithLocation      int
	WithoutLocation   int
	BlacklistedIPs    int
}

// Summarize computes the overview from a dataset.
func Summarize(ds *Dataset) Overview {
	o := Overview{
		UniqueAccesses:    len(ds.Accesses),
		SuspendedAccounts: ds.SuspendedAccounts,
	}
	countries := make(map[string]bool)
	for _, a := range ds.Accesses {
		if a.HasPoint {
			o.WithLocation++
			if a.Country != "" {
				countries[a.Country] = true
			}
		} else {
			o.WithoutLocation++
		}
		if ds.Blacklisted[a.IP] {
			o.BlacklistedIPs++
		}
	}
	o.Countries = len(countries)
	drafts := make(map[string]map[int64]bool)
	for _, act := range ds.Actions {
		switch act.Kind {
		case ActionRead:
			o.EmailsRead++
		case ActionSent:
			o.EmailsSent++
		case ActionDraft:
			m, ok := drafts[act.Account]
			if !ok {
				m = make(map[int64]bool)
				drafts[act.Account] = m
			}
			m[act.Message] = true
		}
	}
	for _, m := range drafts {
		o.UniqueDrafts += len(m)
	}
	return o
}
