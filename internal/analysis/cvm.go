package analysis

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Two-sample Cramér–von Mises test, Anderson's (1962) version — the
// significance test of §4.5. The paper rejects the null hypothesis
// (the two distance vectors share a distribution) when p < 0.01: it
// rejects for paste-site groups (p≈0.0017 UK, p≈7e-7 US) and fails to
// reject for forum groups (p≈0.27 both).
//
// The statistic follows Anderson's rank formulation:
//
//	U  = N·Σᵢ(rᵢ−i)² + M·Σⱼ(sⱼ−j)²
//	T  = U / (N·M·(N+M)) − (4·M·N − 1) / (6·(M+N))
//
// where rᵢ are the ranks of the first sample in the pooled ordering
// and sⱼ the ranks of the second. P-values come from a seeded
// permutation test (exact in distribution, stdlib-only), with the
// asymptotic ω² tail available as a cross-check.

// CvMResult reports the test.
type CvMResult struct {
	T           float64 // Anderson two-sample statistic
	P           float64 // permutation p-value
	Resamples   int
	RejectAt001 bool // p < 0.01, the paper's threshold
}

// CvMStatistic computes Anderson's two-sample T for samples x and y.
// It panics if either sample is empty.
func CvMStatistic(x, y []float64) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		panic("analysis: CvMStatistic requires non-empty samples")
	}
	type obs struct {
		v     float64
		first bool
	}
	pool := make([]obs, 0, n+m)
	for _, v := range x {
		pool = append(pool, obs{v, true})
	}
	for _, v := range y {
		pool = append(pool, obs{v, false})
	}
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	var u float64
	xi, yj := 0, 0
	for rank1, o := range pool {
		rank := float64(rank1 + 1)
		if o.first {
			xi++
			d := rank - float64(xi)
			u += float64(n) * d * d
		} else {
			yj++
			d := rank - float64(yj)
			u += float64(m) * d * d
		}
	}
	nf, mf := float64(n), float64(m)
	t := u/(nf*mf*(nf+mf)) - (4*mf*nf-1)/(6*(mf+nf))
	return t
}

// CvMTest runs the statistic plus a permutation p-value with the given
// number of resamples (0 selects 2000). The permutation distribution
// is generated deterministically from seed.
func CvMTest(x, y []float64, resamples int, seed int64) CvMResult {
	if resamples <= 0 {
		resamples = 2000
	}
	t0 := CvMStatistic(x, y)
	src := rng.New(seed)
	pool := make([]float64, 0, len(x)+len(y))
	pool = append(pool, x...)
	pool = append(pool, y...)
	geq := 0
	px := make([]float64, len(x))
	py := make([]float64, len(y))
	for i := 0; i < resamples; i++ {
		src.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		copy(px, pool[:len(x)])
		copy(py, pool[len(x):])
		if CvMStatistic(px, py) >= t0 {
			geq++
		}
	}
	// Add-one smoothing keeps p strictly positive (standard for
	// permutation tests).
	p := (float64(geq) + 1) / (float64(resamples) + 1)
	return CvMResult{T: t0, P: p, Resamples: resamples, RejectAt001: p < 0.01}
}

// AsymptoticPValue approximates P(ω² > t) for the limiting
// distribution by interpolating standard quantiles. It is a
// cross-check on the permutation p-value for moderate samples.
func AsymptoticPValue(t float64) float64 {
	// Standard quantiles of the limiting ω² distribution:
	// P(ω² <= x) = q.
	table := []struct{ x, q float64 }{
		{0.02480, 0.01}, {0.02878, 0.025}, {0.03254, 0.05}, {0.03746, 0.10},
		{0.04435, 0.20}, {0.05779, 0.40}, {0.06557, 0.50}, {0.07493, 0.60},
		{0.08679, 0.70}, {0.09876, 0.775}, {0.11888, 0.85}, {0.14885, 0.925},
		{0.17473, 0.95}, {0.24124, 0.99}, {0.27332, 0.995}, {0.34730, 0.999},
	}
	if t <= table[0].x {
		return 1 - table[0].q
	}
	last := table[len(table)-1]
	if t >= last.x {
		// Exponential tail extrapolation beyond the last quantile.
		return (1 - last.q) * math.Exp(-(t-last.x)/0.08)
	}
	for i := 1; i < len(table); i++ {
		if t <= table[i].x {
			x0, q0 := table[i-1].x, table[i-1].q
			x1, q1 := table[i].x, table[i].q
			frac := (t - x0) / (x1 - x0)
			q := q0 + frac*(q1-q0)
			return 1 - q
		}
	}
	return 0
}
