package analysis

import (
	"math"
	"sort"

	"repro/internal/corpus"
)

// TF-IDF keyword inference (§4.6). The corpus has exactly two
// documents: dA, all emails seeded into the honey accounts, and dR,
// the emails attackers read (including draft copies captured by the
// scripts). Words whose importance in dR far exceeds their importance
// in dA are the ones attackers most likely searched for.
//
// With only two documents, the textbook idf = log(N/df) zeroes every
// term that appears in both documents, which cannot produce Table 2's
// non-zero weights for shared terms like "transfer". We therefore use
// the smoothed variant idf = ln((1+N)/(1+df)) + 1 with L2-normalised
// per-document vectors — the convention of common TF-IDF
// implementations, consistent with the paper's statement that the
// output "ranges between 0 and 1".

// TFIDFResult holds the per-term weights of both documents.
type TFIDFResult struct {
	// ReadWeight and AllWeight are tfidf_R and tfidf_A per term.
	ReadWeight map[string]float64
	AllWeight  map[string]float64
}

// TermScore is one ranked row of Table 2.
type TermScore struct {
	Term  string
	Read  float64 // tfidf_R
	All   float64 // tfidf_A
	Delta float64 // tfidf_R − tfidf_A
}

// ComputeTFIDF evaluates the two-document TF-IDF over pre-tokenised
// documents.
func ComputeTFIDF(readTokens, allTokens []string) *TFIDFResult {
	readCounts := corpus.TermCounts(readTokens)
	allCounts := corpus.TermCounts(allTokens)

	df := make(map[string]int)
	for t := range readCounts {
		df[t]++
	}
	for t := range allCounts {
		df[t]++
	}
	const nDocs = 2.0
	idf := func(t string) float64 {
		return math.Log((1+nDocs)/(1+float64(df[t]))) + 1
	}
	weigh := func(counts map[string]int) map[string]float64 {
		w := make(map[string]float64, len(counts))
		var norm float64
		for t, c := range counts {
			v := float64(c) * idf(t)
			w[t] = v
			norm += v * v
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for t := range w {
				w[t] /= norm
			}
		}
		return w
	}
	return &TFIDFResult{
		ReadWeight: weigh(readCounts),
		AllWeight:  weigh(allCounts),
	}
}

// TopSearched ranks terms by tfidf_R − tfidf_A (Table 2, left side):
// the terms attackers most likely searched for.
func (r *TFIDFResult) TopSearched(n int) []TermScore {
	return r.rank(n, func(t TermScore) float64 { return t.Delta })
}

// TopCorpus ranks terms by tfidf_A (Table 2, right side): the most
// important terms of the whole corpus.
func (r *TFIDFResult) TopCorpus(n int) []TermScore {
	return r.rank(n, func(t TermScore) float64 { return t.All })
}

func (r *TFIDFResult) rank(n int, key func(TermScore) float64) []TermScore {
	seen := make(map[string]bool, len(r.ReadWeight)+len(r.AllWeight))
	var rows []TermScore
	add := func(t string) {
		if seen[t] {
			return
		}
		seen[t] = true
		row := TermScore{Term: t, Read: r.ReadWeight[t], All: r.AllWeight[t]}
		row.Delta = row.Read - row.All
		rows = append(rows, row)
	}
	for t := range r.ReadWeight {
		add(t)
	}
	for t := range r.AllWeight {
		add(t)
	}
	sort.Slice(rows, func(i, j int) bool {
		ki, kj := key(rows[i]), key(rows[j])
		if ki != kj {
			return ki > kj
		}
		return rows[i].Term < rows[j].Term // deterministic ties
	})
	if n > len(rows) {
		n = len(rows)
	}
	return rows[:n]
}

// KeywordInference runs the full §4.6 pipeline over a Dataset: build
// dR from read actions (seeded content + draft bodies), build dA from
// all seeded content, preprocess exactly as the paper (≥5 characters,
// header words removed, honey handles and monitor markers dropped),
// and return the TF-IDF result.
func KeywordInference(ds *Dataset, dropWords []string) *TFIDFResult {
	var reads []ReadEvent
	var drafts []DraftEvent
	for _, act := range ds.Actions {
		switch act.Kind {
		case ActionRead:
			reads = append(reads, ReadEvent{Account: act.Account, Message: act.Message})
		case ActionDraft:
			drafts = append(drafts, DraftEvent{Account: act.Account, Message: act.Message, Body: act.Body})
		}
	}
	return KeywordInferenceFromEvents(reads, drafts, ds.Contents, dropWords)
}

// KeywordInferenceFromEvents is the §4.6 pipeline over raw read/draft
// events — the form the streaming aggregates carry (accounts are
// disjoint across shards, so shard event lists simply concatenate).
// TF-IDF weighs term *counts*, so the event order never matters and
// the result is identical to the dataset path over the same events.
func KeywordInferenceFromEvents(reads []ReadEvent, drafts []DraftEvent, contents ContentsView, dropWords []string) *TFIDFResult {
	opts := corpus.DefaultTokenizeOptions()
	if len(dropWords) > 0 {
		opts.DropWords = make(map[string]bool, len(dropWords))
		for _, w := range dropWords {
			opts.DropWords[w] = true
		}
	}
	if contents == nil {
		contents = MapContents(nil)
	}

	// Subject and body tokenize separately here; the tokenizer splits
	// on the newline that used to join them, so the term counts — the
	// only thing TF-IDF consumes — are unchanged.
	var readTokens, allTokens []string
	contents.Each(func(_ string, _ int64, subject, body string) {
		allTokens = append(allTokens, corpus.Tokenize(subject, opts)...)
		allTokens = append(allTokens, corpus.Tokenize(body, opts)...)
	})
	// Attacker-authored drafts are known only from the script's draft
	// copies; index them so later reads of those drafts contribute
	// their text to dR. This is exactly how bitcoin vocabulary entered
	// the paper's read document (§4.6): the blackmailer abandoned
	// ransom drafts, other criminals read them, and the monitoring
	// picked the terms up. Table 2 shows tfidf_A(bitcoin) = 0.0, so
	// draft text stays out of the "all emails" document.
	draftBodies := make(map[string]map[int64]string)
	for _, d := range drafts {
		m, ok := draftBodies[d.Account]
		if !ok {
			m = make(map[int64]string)
			draftBodies[d.Account] = m
		}
		m[d.Message] = d.Body
	}
	for _, r := range reads {
		if subject, body, ok := contents.Message(r.Account, r.Message); ok {
			readTokens = append(readTokens, corpus.Tokenize(subject, opts)...)
			readTokens = append(readTokens, corpus.Tokenize(body, opts)...)
		} else if body, ok := draftBodies[r.Account][r.Message]; ok {
			readTokens = append(readTokens, corpus.Tokenize(body, opts)...)
		}
	}
	for _, d := range drafts {
		readTokens = append(readTokens, corpus.Tokenize(d.Body, opts)...)
	}
	return ComputeTFIDF(readTokens, allTokens)
}
