package c3

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/snapshot"
)

// BuildFromSnapshotFile streams a honeynet checkpoint and indexes
// every decoy account's credential, tagged with the snapshot's start
// time. The decoder hands accounts out one at a time, so indexing a
// million-account fleet holds one account block in memory, not the
// fleet.
func BuildFromSnapshotFile(path string, store *Store) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("c3: %w", err)
	}
	defer f.Close()
	dec, err := snapshot.NewDecoder(bufio.NewReader(f))
	if err != nil {
		return 0, err
	}
	at := time.Unix(0, dec.Meta().Config.StartNS)
	n := 0
	var a snapshot.Account
	for {
		if err := dec.Next(&a); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return n, err
		}
		store.Add(a.Address, a.Password, "snapshot", at)
		n++
	}
	return n, nil
}

// BuildFromCredsFile indexes an "address password" lines file — the
// format leakctl -creds and webmaild -creds write — tagging entries
// with the given circulation time. Blank lines are skipped; any other
// malformed line errors.
func BuildFromCredsFile(path string, store *Store, site string, at time.Time) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("c3: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return n, fmt.Errorf("c3: %s:%d: want \"address password\", got %q", path, line, text)
		}
		store.Add(fields[0], fields[1], site, at)
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("c3: %w", err)
	}
	return n, nil
}
