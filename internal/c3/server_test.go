package c3

import (
	"context"
	"strings"
	"testing"
	"time"
)

func startServer(t *testing.T, store *Store) (addr string, srv *Server) {
	t.Helper()
	srv = NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerRangeRoundTrip(t *testing.T) {
	store := mustNew(t, Config{BucketBits: 8})
	Synthetic(11, 300, func(a, p string) { store.Add(a, p, "synthetic", time.Unix(0, 0)) })
	addr, _ := startServer(t, store)
	c := dialT(t, addr)

	h := Hash("decoy00000007@example.com", "") // arbitrary probe bucket
	prefix := h >> (64 - 8)
	want, err := store.Range(prefix)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Range(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("wire returned %d hashes, store holds %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("hash %d: wire %016x, store %016x", i, got[i], want[i])
		}
	}
}

func TestServerStatsAndPing(t *testing.T) {
	store := mustNew(t, Config{BucketBits: 10, Variants: true})
	store.Add("a@x", "pw", "paste", time.Unix(0, 0))
	addr, _ := startServer(t, store)
	c := dialT(t, addr)

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BucketBits != 10 || !st.Variants || st.Credentials != store.Len() {
		t.Fatalf("wire stats %+v, store %+v", st, store.Stats())
	}
	resp, err := c.Do(Request{Op: "ping"})
	if err != nil || !resp.OK {
		t.Fatalf("ping: %+v, %v", resp, err)
	}
}

func TestServerErrorFrames(t *testing.T) {
	store := mustNew(t, Config{BucketBits: 8})
	addr, _ := startServer(t, store)
	c := dialT(t, addr)

	// Unknown op: an error frame, not a dropped connection — the
	// router's health probe depends on this shape.
	resp, err := c.Do(Request{Op: "teapot"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Fatalf("unknown op: %+v", resp)
	}
	for _, bad := range []string{"", "zz", "100"} { // 0x100 >= 2^8
		resp, err := c.Do(Request{Op: "range", Prefix: bad})
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK || resp.Error == "" {
			t.Fatalf("prefix %q: want error frame, got %+v", bad, resp)
		}
	}
	// The connection survives error frames.
	if resp, err := c.Do(Request{Op: "ping"}); err != nil || !resp.OK {
		t.Fatalf("connection dead after error frames: %+v, %v", resp, err)
	}
}

func TestServerDrainFinishesInFlight(t *testing.T) {
	store := mustNew(t, Config{BucketBits: 8})
	store.Add("a@x", "pw", "paste", time.Unix(0, 0))
	addr, srv := startServer(t, store)
	c := dialT(t, addr)
	if _, err := c.Do(Request{Op: "ping"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Post-drain the listener is gone and the idle connection dropped.
	dctx, dcancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer dcancel()
	if _, err := Dial(dctx, addr); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}
