package c3

import (
	"reflect"
	"testing"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHashDeterministicAndKeyed(t *testing.T) {
	if Hash("a@x", "pw") != Hash("a@x", "pw") {
		t.Fatal("hash not deterministic")
	}
	if Hash("a@x", "pw") == Hash("pw", "a@x") {
		t.Fatal("account and password roles should not be interchangeable")
	}
	if Hash("a@x", "pw") == Hash("a@x", "pw2") {
		t.Fatal("distinct passwords should (overwhelmingly) hash apart")
	}
}

func TestNewValidatesBits(t *testing.T) {
	if s := mustNew(t, Config{}); s.Bits() != DefaultBucketBits {
		t.Fatalf("default bits = %d, want %d", s.Bits(), DefaultBucketBits)
	}
	for _, bad := range []int{-1, 33, 64} {
		if _, err := New(Config{BucketBits: bad}); err == nil {
			t.Errorf("New(bits=%d): no error", bad)
		}
	}
	for _, ok := range []int{1, 16, 32} {
		if _, err := New(Config{BucketBits: ok}); err != nil {
			t.Errorf("New(bits=%d): %v", ok, err)
		}
	}
}

// TestRangeBucketBoundaries plants hashes exactly at bucket edges and
// asserts each lands in precisely one bucket: the first value of
// bucket p, the last value of bucket p, and the first value of p+1.
func TestRangeBucketBoundaries(t *testing.T) {
	const bits = 8
	s := mustNew(t, Config{BucketBits: bits})
	const p = uint64(0x41)
	lo := p << (64 - bits)         // first hash of bucket p
	hi := (p+1)<<(64-bits) - 1     // last hash of bucket p
	next := (p + 1) << (64 - bits) // first hash of bucket p+1
	for _, h := range []uint64{lo, hi, next} {
		s.AddHash(h, "test", 0)
	}
	got, err := s.Range(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint64{lo, hi}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Range(%#x) = %x, want %x", p, got, want)
	}
	got, err = s.Range(p + 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint64{next}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Range(%#x) = %x, want %x", p+1, got, want)
	}
}

func TestRangeEmptyBucketAndOutOfRange(t *testing.T) {
	s := mustNew(t, Config{BucketBits: 4})
	s.AddHash(0, "test", 0) // bucket 0 only
	got, err := s.Range(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty bucket returned %x", got)
	}
	if _, err := s.Range(16); err == nil {
		t.Fatal("Range(2^bits) should error")
	}
}

// TestKAnonymityWholeBucket is the privacy property: however precise
// the caller's interest, the response is the entire bucket. Contains
// (the defender's path) must observe every co-bucketed entry, and
// Range offers no way to ask for fewer.
func TestKAnonymityWholeBucket(t *testing.T) {
	const bits = 4 // 16 buckets so synthetic creds collide densely
	s := mustNew(t, Config{BucketBits: bits})
	var all []uint64
	Synthetic(7, 200, func(a, p string) {
		s.Add(a, p, "synthetic", time.Unix(0, 0))
		all = append(all, Hash(a, p))
	})
	perBucket := map[uint64]int{}
	for _, h := range all {
		perBucket[h>>(64-bits)]++
	}
	for p, want := range perBucket {
		got, err := s.Range(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("bucket %#x: Range returned %d entries, bucket holds %d — response narrowed below the bucket", p, len(got), want)
		}
		for _, h := range got {
			if h>>(64-bits) != p {
				t.Fatalf("bucket %#x: stray hash %016x from bucket %#x", p, h, h>>(64-bits))
			}
		}
	}
	for _, h := range all {
		if !s.Contains(h) {
			t.Fatalf("stored hash %016x not found via bucket range", h)
		}
	}
	if s.Contains(0xdeadbeefdeadbeef) {
		t.Fatal("unstored hash reported present")
	}
}

func TestRangeSortedAcrossIngestOrder(t *testing.T) {
	// Two stores fed the same entries in different orders must answer
	// identically — the shard-local live ingest happens in event order,
	// which varies, while responses must not.
	a := mustNew(t, Config{BucketBits: 4})
	b := mustNew(t, Config{BucketBits: 4})
	hashes := []uint64{0x10, 0x30, 0x20, 0x25, 0x15}
	for _, h := range hashes {
		a.AddHash(h, "x", 0)
	}
	for i := len(hashes) - 1; i >= 0; i-- {
		b.AddHash(hashes[i], "x", 0)
	}
	ga, _ := a.Range(0)
	gb, _ := b.Range(0)
	if !reflect.DeepEqual(ga, gb) {
		t.Fatalf("ingest order leaked into responses: %x vs %x", ga, gb)
	}
}

func TestVariantsDeterministicAndDistinct(t *testing.T) {
	v1 := Variants("Passw0rd")
	v2 := Variants("Passw0rd")
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("Variants not deterministic")
	}
	seen := map[string]bool{"Passw0rd": true}
	for _, v := range v1 {
		if seen[v] {
			t.Fatalf("duplicate/original variant %q", v)
		}
		seen[v] = true
	}
	if Variants("") != nil {
		t.Fatal("empty password should have no variants")
	}
	// A single char must not panic (truncation rule drops to "").
	if got := Variants("a"); len(got) == 0 {
		t.Fatal("one-char password should still have suffix variants")
	}
}

func TestVariantModeIndexesMutations(t *testing.T) {
	s := mustNew(t, Config{BucketBits: 8, Variants: true})
	s.Add("victim@example.com", "hunter2", "paste", time.Unix(0, 0))
	if !s.Contains(Hash("victim@example.com", "hunter2")) {
		t.Fatal("exact credential missing")
	}
	if !s.Contains(Hash("victim@example.com", "hunter21")) {
		t.Fatal("suffix variant not indexed")
	}
	if !s.Contains(Hash("victim@example.com", "Hunter2")) {
		t.Fatal("capitalized variant not indexed")
	}
	plain := mustNew(t, Config{BucketBits: 8})
	plain.Add("victim@example.com", "hunter2", "paste", time.Unix(0, 0))
	if plain.Contains(Hash("victim@example.com", "hunter21")) {
		t.Fatal("variant indexed with Variants off")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	var a, b []string
	Synthetic(3, 50, func(ac, pw string) { a = append(a, ac+" "+pw) })
	Synthetic(3, 50, func(ac, pw string) { b = append(b, ac+" "+pw) })
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Synthetic not deterministic")
	}
	var c []string
	Synthetic(4, 50, func(ac, pw string) { c = append(c, ac+" "+pw) })
	if reflect.DeepEqual(a, c) {
		t.Fatal("Synthetic ignores seed")
	}
}

func TestParsePrefix(t *testing.T) {
	good := map[string]uint64{"0": 0, "a": 10, "ff": 255, "0041": 0x41}
	for in, want := range good {
		got, err := ParsePrefix(in, 16)
		if err != nil || got != want {
			t.Errorf("ParsePrefix(%q,16) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "g", "-1", "0x10", "10000", "ffffffffffffffff0"} {
		if _, err := ParsePrefix(bad, 16); err == nil {
			t.Errorf("ParsePrefix(%q,16): no error", bad)
		}
	}
	if _, err := ParsePrefix("1", 0); err == nil {
		t.Error("ParsePrefix with 0 bits: no error")
	}
}

func TestStatsCountsVariants(t *testing.T) {
	s := mustNew(t, Config{BucketBits: 12, Variants: true})
	s.Add("a@x", "secret", "forum", time.Unix(0, 0))
	st := s.Stats()
	want := 1 + len(Variants("secret"))
	if st.Credentials != want || st.BucketBits != 12 || !st.Variants {
		t.Fatalf("Stats = %+v, want %d creds, 12 bits, variants on", st, want)
	}
}
