package c3

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
)

// ReplayConfig shapes a deterministic range-query replay against a
// running c3 server — the loadgen counterpart for the credential-
// checking path. The whole query plan derives from the seed: same
// seed, same prefixes in the same per-connection order.
type ReplayConfig struct {
	Addr    string        // server to load (required)
	Queries int           // total range queries across all connections
	Conns   int           // concurrent connections
	QPS     float64       // aggregate offered rate; 0 = closed loop
	Seed    int64         // plan seed
	Timeout time.Duration // per-query deadline (0 = none)
	Label   string        // report row label ("" derives one)
}

// Replay runs the plan and returns the merged serving stats. Any
// protocol error or timeout is also reflected in the returned error —
// the CI smoke gates on it.
func Replay(cfg ReplayConfig) (report.ServingStats, error) {
	if cfg.Addr == "" {
		return report.ServingStats{}, fmt.Errorf("c3: replay needs an address")
	}
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.Queries < 1 {
		cfg.Queries = 1
	}

	// One probe connection learns the bucket width so the plan can
	// draw in-range prefixes.
	probeCtx, cancel := context.WithTimeout(context.Background(), dialTimeout(cfg.Timeout))
	defer cancel()
	probe, err := Dial(probeCtx, cfg.Addr)
	if err != nil {
		return report.ServingStats{}, err
	}
	if cfg.Timeout > 0 {
		probe.SetDeadline(time.Now().Add(cfg.Timeout))
	}
	st, err := probe.Stats()
	probe.Close()
	if err != nil {
		return report.ServingStats{}, fmt.Errorf("c3: stats probe: %w", err)
	}
	buckets := uint64(1) << uint(st.BucketBits)

	// Pace open-loop per connection: each of C connections offers
	// QPS/C, so the aggregate offered rate is QPS.
	var interval time.Duration
	if cfg.QPS > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Conns) / cfg.QPS)
	}

	type connResult struct {
		hist             stats.LatencyHist
		requests         int64
		errors, timeouts int64
		firstErr         error
	}
	results := make([]connResult, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		n := cfg.Queries / cfg.Conns
		if ci < cfg.Queries%cfg.Conns {
			n++
		}
		wg.Add(1)
		go func(ci, n int) {
			defer wg.Done()
			res := &results[ci]
			src := rng.New(cfg.Seed).ForkNamed(fmt.Sprintf("c3-replay:%d", ci))
			ctx, cancel := context.WithTimeout(context.Background(), dialTimeout(cfg.Timeout))
			client, err := Dial(ctx, cfg.Addr)
			cancel()
			if err != nil {
				res.errors++
				res.firstErr = err
				return
			}
			defer client.Close()
			next := time.Now()
			for q := 0; q < n; q++ {
				prefix := uint64(src.Int63()) % buckets
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				if cfg.Timeout > 0 {
					client.SetDeadline(time.Now().Add(cfg.Timeout))
				}
				t0 := time.Now()
				_, err := client.Range(prefix)
				res.hist.Record(time.Since(t0))
				res.requests++
				if err != nil {
					if isTimeout(err) {
						res.timeouts++
					} else {
						res.errors++
					}
					if res.firstErr == nil {
						res.firstErr = err
					}
					return // the connection state is unknown; stop this worker
				}
			}
		}(ci, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := report.ServingStats{Label: cfg.Label, Hist: &stats.LatencyHist{}, Elapsed: elapsed}
	if merged.Label == "" {
		merged.Label = fmt.Sprintf("c3 %d conns", cfg.Conns)
	}
	var firstErr error
	for i := range results {
		r := &results[i]
		merged.Hist.Merge(&r.hist)
		merged.Requests += r.requests
		merged.Errors += r.errors
		merged.Timeouts += r.timeouts
		if firstErr == nil && r.firstErr != nil {
			firstErr = r.firstErr
		}
	}
	if firstErr != nil {
		return merged, fmt.Errorf("c3: replay saw %d errors, %d timeouts (first: %w)",
			merged.Errors, merged.Timeouts, firstErr)
	}
	return merged, nil
}

func dialTimeout(t time.Duration) time.Duration {
	if t <= 0 {
		return 10 * time.Second
	}
	return t
}

func isTimeout(err error) bool {
	type timeouter interface{ Timeout() bool }
	for e := err; e != nil; {
		if t, ok := e.(timeouter); ok && t.Timeout() {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
