package c3

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire protocol: the repo's newline-delimited JSON frames over TCP
// (docs/WIRE_PROTOCOL.md). Three ops — "range" (the k-anonymity
// bucket query), "stats" (index summary) and "ping" (health) — plus
// the shared convention that an unknown op earns an error frame, so
// the router's probe path works against c3d unchanged.

// Request is one client command.
type Request struct {
	Op string `json:"op"`
	// Prefix names a bucket for "range": 1..16 hex digits, value
	// below 2^BucketBits.
	Prefix string `json:"prefix,omitempty"`
}

// Response is the server's reply.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Hashes is the full contents of the queried bucket — every
	// stored credential hash as 16 lower-case hex digits. The client
	// compares its own hash locally; the server never learns which
	// entry (if any) it was after.
	Hashes []string `json:"hashes,omitempty"`
	// Stats fields ("stats" op).
	Credentials int  `json:"credentials,omitempty"`
	Bits        int  `json:"bits,omitempty"`
	Variants    bool `json:"variants,omitempty"`
}

// Server exposes a Store over TCP with the live fleet's drain
// contract: SIGTERM stops the listener, drops idle connections, and
// lets an in-flight request finish its response.
type Server struct {
	store *Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[*srvConn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// srvConn tracks one connection's drain state.
type srvConn struct {
	net.Conn
	mu            sync.Mutex
	busy          bool
	closeWhenIdle bool
}

func (c *srvConn) beginRequest() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeWhenIdle {
		return false
	}
	c.busy = true
	return true
}

func (c *srvConn) endRequest() (quit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = false
	return c.closeWhenIdle
}

func (c *srvConn) drain() {
	c.mu.Lock()
	idle := !c.busy
	c.closeWhenIdle = true
	c.mu.Unlock()
	if idle {
		c.Close()
	}
}

// NewServer wraps a store.
func NewServer(store *Store) *Server {
	return &Server{store: store, conns: make(map[*srvConn]struct{})}
}

// Listen starts accepting connections on addr ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("c3: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &srvConn{Conn: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(sc)
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and all connections immediately, in-flight
// requests included. Prefer Drain for an orderly shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Drain shuts the server down gracefully: listener first, idle
// connections at once, busy connections after their in-flight
// response. Returns once every connection has exited, or forces a
// Close and returns ctx.Err() when the context expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	s.listener = nil
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.drain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

func (s *Server) serveConn(conn *srvConn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or bad frame: drop the connection
		}
		if !conn.beginRequest() {
			return // draining: the request never started, drop it
		}
		resp := s.Handle(&req)
		err := enc.Encode(resp)
		if conn.endRequest() || err != nil {
			return
		}
	}
}

// Handle executes one request. Exported so the fuzzer and in-process
// callers hit exactly the code path the socket serves.
func (s *Server) Handle(req *Request) Response {
	fail := func(err error) Response { return Response{Error: err.Error()} }
	switch req.Op {
	case "range":
		prefix, err := ParsePrefix(req.Prefix, s.store.Bits())
		if err != nil {
			return fail(err)
		}
		hashes, err := s.store.Range(prefix)
		if err != nil {
			return fail(err)
		}
		out := make([]string, len(hashes))
		for i, h := range hashes {
			out[i] = FormatHash(h)
		}
		return Response{OK: true, Hashes: out, Bits: s.store.Bits()}
	case "stats":
		st := s.store.Stats()
		return Response{OK: true, Credentials: st.Credentials, Bits: st.BucketBits, Variants: st.Variants}
	case "ping":
		return Response{OK: true}
	default:
		return fail(fmt.Errorf("c3: unknown op %q", req.Op))
	}
}

// Client is a minimal wire-protocol client.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a c3 server.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("c3: dial: %w", err)
	}
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetDeadline bounds the next round trip (both directions).
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Do performs one request/response round trip.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("c3: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return Response{}, fmt.Errorf("c3: connection closed: %w", err)
		}
		return Response{}, fmt.Errorf("c3: recv: %w", err)
	}
	return resp, nil
}

// Range queries one bucket and returns its full hashes.
func (c *Client) Range(prefix uint64) ([]uint64, error) {
	resp, err := c.Do(Request{Op: "range", Prefix: fmt.Sprintf("%x", prefix)})
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	out := make([]uint64, len(resp.Hashes))
	for i, h := range resp.Hashes {
		v, err := parseFullHash(h)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Stats queries the index summary.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.Do(Request{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	if resp.Error != "" {
		return Stats{}, errors.New(resp.Error)
	}
	return Stats{Credentials: resp.Credentials, BucketBits: resp.Bits, Variants: resp.Variants}, nil
}

func parseFullHash(hex string) (uint64, error) {
	if len(hex) != 16 {
		return 0, fmt.Errorf("c3: hash %q is not 16 hex digits", hex)
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := hex[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, fmt.Errorf("c3: hash %q is not lower-case hex", hex)
		}
		v = v<<4 | d
	}
	return v, nil
}
