package c3

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/colstore"
	"repro/internal/rng"
)

// Bucket sizing bounds. DefaultBucketBits matches the k-anonymity
// sweet spot Li et al. analyse (2^16 buckets over millions of
// credentials keeps buckets tens of entries wide — large enough that
// a query leaks little, small enough that responses stay cheap).
const (
	DefaultBucketBits = 16
	MaxBucketBits     = 32
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash is the index key: FNV-1a (64-bit) over "account:password".
// Every layer — outlet sink, defender, wire server, replayer — uses
// this one function, so a credential hashes identically wherever it
// is observed.
func Hash(account, password string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(account); i++ {
		h ^= uint64(account[i])
		h *= fnvPrime
	}
	h ^= ':'
	h *= fnvPrime
	for i := 0; i < len(password); i++ {
		h ^= uint64(password[i])
		h *= fnvPrime
	}
	return h
}

// Config shapes a Store.
type Config struct {
	// BucketBits is the k-anonymity prefix width: queries name one of
	// 2^BucketBits buckets and always receive the whole bucket. 0
	// selects DefaultBucketBits; valid values are 1..MaxBucketBits.
	BucketBits int
	// Variants additionally indexes deterministic password mutations
	// (the MIGP similarity-aware mode): a defender or user querying
	// their exact credential also discovers near-miss leaks.
	Variants bool
}

// Stats summarises an index for the wire "stats" op and reports.
type Stats struct {
	Credentials int  // stored entries (variants included)
	BucketBits  int  // prefix width
	Variants    bool // MIGP-style variant indexing on
}

// Store is the credential index: a columnar, sorted-on-demand
// multiset of credential hashes with their source site and the
// simulated time they entered circulation. Appends are O(1); the
// first Range after a batch of appends pays one co-sort. Site names
// are interned through colstore so a million entries from eight
// outlets hold eight strings.
//
// The zero value is not usable; construct with New.
type Store struct {
	mu       sync.Mutex
	bits     uint
	variants bool

	// Parallel columns, co-sorted by (hash, at, site) when sorted.
	hashes []uint64
	ats    []int64  // unix-nano circulation time
	sites  []string // interned
	sorted bool

	intern colstore.Interner
}

// New validates cfg and returns an empty Store.
func New(cfg Config) (*Store, error) {
	bits := cfg.BucketBits
	if bits == 0 {
		bits = DefaultBucketBits
	}
	if bits < 1 || bits > MaxBucketBits {
		return nil, fmt.Errorf("c3: bucket bits %d out of range [1,%d]", cfg.BucketBits, MaxBucketBits)
	}
	return &Store{bits: uint(bits), variants: cfg.Variants, sorted: true}, nil
}

// Bits returns the configured prefix width.
func (s *Store) Bits() int { return int(s.bits) }

// Len returns the number of stored entries (variants included).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.hashes)
}

// Stats returns the index summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Credentials: len(s.hashes), BucketBits: int(s.bits), Variants: s.variants}
}

// Add indexes one credential observed in circulation at the given
// simulated time. With Variants on, the deterministic mutations of
// the password are indexed alongside it.
func (s *Store) Add(account, password, site string, at time.Time) {
	s.mu.Lock()
	s.addLocked(Hash(account, password), site, at.UnixNano())
	if s.variants {
		for _, v := range Variants(password) {
			s.addLocked(Hash(account, v), site, at.UnixNano())
		}
	}
	s.mu.Unlock()
}

// AddHash indexes a pre-computed credential hash (snapshot builds,
// benchmarks). Variant expansion is the caller's business here: only
// Add sees a password to mutate.
func (s *Store) AddHash(h uint64, site string, atNS int64) {
	s.mu.Lock()
	s.addLocked(h, site, atNS)
	s.mu.Unlock()
}

func (s *Store) addLocked(h uint64, site string, atNS int64) {
	s.hashes = append(s.hashes, h)
	s.ats = append(s.ats, atNS)
	s.sites = append(s.sites, s.intern.Intern(site))
	s.sorted = false
}

// bucketOf returns the bucket index of a full hash.
func (s *Store) bucketOf(h uint64) uint64 { return h >> (64 - s.bits) }

// Buckets returns the bucket count, 2^BucketBits.
func (s *Store) Buckets() uint64 { return 1 << s.bits }

// Range returns every stored hash in the named bucket, ascending,
// duplicates preserved. This is the k-anonymity contract: the
// response is always the whole bucket — the store offers no narrower
// question, so a query reveals only a BucketBits-wide prefix of the
// credential being checked. An out-of-range prefix errors.
func (s *Store) Range(prefix uint64) ([]uint64, error) {
	if prefix >= 1<<s.bits {
		return nil, fmt.Errorf("c3: prefix %#x out of range for %d bucket bits", prefix, s.bits)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortLocked()
	lo := prefix << (64 - s.bits)
	hi := sort.Search(len(s.hashes), func(i int) bool { return s.bucketOf(s.hashes[i]) > prefix })
	start := sort.Search(hi, func(i int) bool { return s.hashes[i] >= lo })
	if start == hi {
		return nil, nil
	}
	out := make([]uint64, hi-start)
	copy(out, s.hashes[start:hi])
	return out, nil
}

// Contains reports whether the exact hash is indexed. It goes through
// Range — the same whole-bucket read a remote client performs — so
// in-process defenders exercise the identical code path the wire
// serves.
func (s *Store) Contains(h uint64) bool {
	bucket, err := s.Range(s.bucketOf(h))
	if err != nil {
		return false
	}
	for _, got := range bucket {
		if got == h {
			return true
		}
	}
	return false
}

// ParsePrefix parses a wire bucket prefix: 1..16 hex digits naming a
// bucket under the given width. Anything else — empty, non-hex, or a
// value at or beyond 2^bits — errors.
func ParsePrefix(hex string, bits int) (uint64, error) {
	if hex == "" {
		return 0, fmt.Errorf("c3: empty prefix")
	}
	if len(hex) > 16 {
		return 0, fmt.Errorf("c3: prefix %q longer than 16 hex digits", hex)
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("c3: bad prefix %q: not hexadecimal", hex)
	}
	if bits < 1 || bits > MaxBucketBits {
		return 0, fmt.Errorf("c3: bucket bits %d out of range [1,%d]", bits, MaxBucketBits)
	}
	if v >= 1<<uint(bits) {
		return 0, fmt.Errorf("c3: prefix %#x out of range for %d bucket bits", v, bits)
	}
	return v, nil
}

// FormatHash renders a full hash the way the wire protocol carries
// it: exactly 16 lower-case hex digits.
func FormatHash(h uint64) string { return fmt.Sprintf("%016x", h) }

// sortLocked co-sorts the columns by (hash, at, site). Sorting is
// deferred to the first read after a batch of appends, so live
// ingestion from outlet pickups stays O(1) per credential and the
// defender's cadence amortises the sort.
func (s *Store) sortLocked() {
	if s.sorted {
		return
	}
	sort.Sort((*byHash)(s))
	s.sorted = true
}

type byHash Store

func (b *byHash) Len() int { return len(b.hashes) }
func (b *byHash) Less(i, j int) bool {
	if b.hashes[i] != b.hashes[j] {
		return b.hashes[i] < b.hashes[j]
	}
	if b.ats[i] != b.ats[j] {
		return b.ats[i] < b.ats[j]
	}
	return b.sites[i] < b.sites[j]
}
func (b *byHash) Swap(i, j int) {
	b.hashes[i], b.hashes[j] = b.hashes[j], b.hashes[i]
	b.ats[i], b.ats[j] = b.ats[j], b.ats[i]
	b.sites[i], b.sites[j] = b.sites[j], b.sites[i]
}

// Variants returns the deterministic password mutations the MIGP
// mode indexes: a fixed rule list (append-digit/symbol suffixes, case
// folds, last-character strip, leetspeak) applied in a fixed order,
// deduplicated, the original excluded. Pure function of the password
// — no randomness — so every shard, the wire server and a resumed
// snapshot expand a credential identically.
func Variants(password string) []string {
	if password == "" {
		return nil
	}
	cands := []string{
		password + "1",
		password + "123",
		password + "!",
		strings.ToLower(password),
		strings.ToUpper(password),
		capitalize(password),
		password[:len(password)-1],
		leet(password),
	}
	seen := map[string]bool{password: true, "": true}
	out := make([]string, 0, len(cands))
	for _, c := range cands {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func capitalize(s string) string {
	if c := s[0]; c >= 'a' && c <= 'z' {
		return string(c-'a'+'A') + s[1:]
	}
	return s
}

var leetMap = map[byte]byte{'a': '@', 'e': '3', 'i': '1', 'o': '0', 's': '$'}

func leet(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if r, ok := leetMap[c]; ok {
			b[i] = r
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

// Synthetic streams n deterministic synthetic credentials to f — the
// fleet-scale fill for benchmarks and `c3d -synthetic`. Same seed,
// same credentials, in the same order, without materialising n pairs.
func Synthetic(seed int64, n int, f func(account, password string)) {
	src := rng.New(seed).ForkNamed("c3-synthetic")
	for i := 0; i < n; i++ {
		f(fmt.Sprintf("decoy%08d@example.com", i), fmt.Sprintf("pw-%016x", uint64(src.Int63())))
	}
}
