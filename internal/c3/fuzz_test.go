package c3

import (
	"testing"
	"time"
)

// FuzzC3Range hammers the range handler with arbitrary prefix strings
// across every bucket width: malformed prefixes must earn an error
// frame — never a panic — and anything accepted must honour the
// k-anonymity contract (every returned hash carries the queried
// prefix).
func FuzzC3Range(f *testing.F) {
	f.Add("0", 16)
	f.Add("ffff", 16)
	f.Add("", 16)
	f.Add("zz", 16)
	f.Add("0x41", 8)
	f.Add("ffffffffffffffff", 32)
	f.Add("ffffffffffffffff0", 1)
	f.Add("00000000000000000000", 16)
	f.Add("-1", 4)
	f.Add("﷽", 16) // multi-byte input must not confuse hex parsing

	stores := map[int]*Server{}
	for _, bits := range []int{1, 8, 16, 32} {
		s, err := New(Config{BucketBits: bits})
		if err != nil {
			f.Fatal(err)
		}
		Synthetic(int64(bits), 64, func(a, p string) { s.Add(a, p, "synthetic", time.Unix(0, 0)) })
		stores[bits] = NewServer(s)
	}

	f.Fuzz(func(t *testing.T, prefix string, bits int) {
		srv, ok := stores[bits]
		if !ok {
			srv = stores[16]
			bits = 16
		}
		resp := srv.Handle(&Request{Op: "range", Prefix: prefix})
		if !resp.OK {
			if resp.Error == "" {
				t.Fatalf("prefix %q: rejected without an error message", prefix)
			}
			return
		}
		want, err := ParsePrefix(prefix, bits)
		if err != nil {
			t.Fatalf("prefix %q accepted by Handle but rejected by ParsePrefix: %v", prefix, err)
		}
		for _, hex := range resp.Hashes {
			h, err := parseFullHash(hex)
			if err != nil {
				t.Fatalf("prefix %q: bad hash on the wire: %v", prefix, err)
			}
			if h>>(64-uint(bits)) != want {
				t.Fatalf("prefix %q: hash %s outside bucket %#x", prefix, hex, want)
			}
		}
	})
}
