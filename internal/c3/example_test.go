package c3_test

import (
	"fmt"
	"time"

	"repro/internal/c3"
)

// ExampleStore_Range walks the whole k-anonymity exchange in-process:
// index a leaked credential, query its bucket by prefix, and compare
// locally — the server side never sees which hash the client wanted.
func ExampleStore_Range() {
	store, _ := c3.New(c3.Config{BucketBits: 16})
	store.Add("victim@example.com", "hunter2", "pastebin.example", time.Unix(0, 0))

	h := c3.Hash("victim@example.com", "hunter2")
	prefix := h >> (64 - 16) // the only part of the hash a query reveals

	bucket, _ := store.Range(prefix)
	leaked := false
	for _, got := range bucket {
		if got == h {
			leaked = true
		}
	}
	fmt.Printf("bucket %04x holds %d hash(es); credential leaked: %v\n", prefix, len(bucket), leaked)
	// Output:
	// bucket c4f8 holds 1 hash(es); credential leaked: true
}
