// Package c3 is a compromised-credential-checking (C3) service over
// the credentials this simulation leaks — the defensive counterpart
// to the paper's measurement. The paper (§3, §5) watches what
// criminals do after webmail credentials circulate on paste sites,
// underground forums and malware C&C channels; a C3 service is what
// lets the account owner find out first.
//
// The design follows "Protocols for Checking Compromised Credentials"
// (Li et al., CCS 2019): credentials are stored as 64-bit FNV-1a
// hashes of "account:password" and queried by k-anonymity hash-prefix
// buckets — a client names only the top BucketBits bits of its hash
// and always receives the entire bucket, so the service never learns
// which credential was checked (Store.Range enforces that the API
// offers no narrower question). The optional Variants mode is the
// "Might I Get Pwned" (Pal et al., USENIX Security 2022) idea in
// deterministic miniature: a fixed mutation list (suffixes, case
// folds, truncation, leetspeak) is indexed alongside each password,
// so near-miss reuse is also discoverable.
//
// The index is populated three ways, all through the same Hash/Add
// path: live, as outlet pickups put leaked credentials into criminal
// circulation (the honeynet's per-shard sink, see internal/honeynet's
// defender); from a post-setup snapshot (cmd/c3d -snapshot); or
// synthetically at fleet scale for benchmarks (Synthetic). Storage is
// columnar — parallel hash/time/site columns, site names interned via
// internal/colstore — appended in O(1) and co-sorted on the first
// read after a batch of writes.
//
// Server/Client speak the repo's newline-JSON wire protocol
// (docs/WIRE_PROTOCOL.md) with the live fleet's graceful-drain
// contract, and Replay is the deterministic query load generator CI's
// c3-smoke job gates on.
package c3
