package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseTOMLShapes(t *testing.T) {
	src := `
# top-level scalars
name = "demo"            # trailing comment
days = 90
ratio = 0.5
flag = true
words = ["a", "b,c", 3]

[calibration.paste]
spammer_prob = 0.15

[[plan]]
id = 1
count = 20
channel = "paste"

[[plan]]
id = 2
count = 10
channel = "forum"
hint = "uk"
`
	got, err := parseTOML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":  "demo",
		"days":  int64(90),
		"ratio": 0.5,
		"flag":  true,
		"words": []any{"a", "b,c", int64(3)},
		"calibration": map[string]any{
			"paste": map[string]any{"spammer_prob": 0.15},
		},
		"plan": []any{
			map[string]any{"id": int64(1), "count": int64(20), "channel": "paste"},
			map[string]any{"id": int64(2), "count": int64(10), "channel": "forum", "hint": "uk"},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestParseTOMLErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no equals", "name\n", "expected key = value"},
		{"unterminated string", `name = "oops`, "unterminated string"},
		{"unterminated header", "[plan\n", "unterminated [table] header"},
		{"unterminated aot", "[[plan\n", "unterminated [[table]] header"},
		{"bad key char", "na me = 1\n", "bad character"},
		{"duplicate key", "a = 1\na = 2\n", "duplicate key"},
		{"empty segment", "a..b = 1\n", "empty key segment"},
		{"bad value", "a = nope\n", "unsupported value"},
		{"dangling escape", `a = "x\`, "dangling escape"},
		{"bad escape", `a = "x\q"`, "unsupported escape"},
		{"multiline array", "a = [1,\n2]\n", "unterminated array"},
		{"trailing comma", "a = [1, ]\n", "trailing comma"},
		{"scalar as table", "a = 1\n[a]\nb = 2\n", "not a table"},
		{"scalar as aot", "a = 1\n[[a]]\n", "not an array of tables"},
		{"not utf8", "a = \"\xff\xfe\"\n", "not valid UTF-8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTOML([]byte(tc.src))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestStripCommentRespectsStrings(t *testing.T) {
	if got := stripComment(`k = "a # b" # real`); got != `k = "a # b" ` {
		t.Fatalf("stripComment = %q", got)
	}
}
