package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/honeynet"
)

// TestPresetsLoadAndValidate: every embedded preset parses through
// the TOML loader, validates, and compiles to a honeynet config —
// the catalog can never ship a broken scenario.
func TestPresetsLoadAndValidate(t *testing.T) {
	names := PresetNames()
	if len(names) < 5 {
		t.Fatalf("want at least 5 presets, have %d: %v", len(names), names)
	}
	for _, name := range names {
		spec, err := Preset(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if spec.Name != name {
			t.Fatalf("preset file %s declares name %q (must match filename)", name, spec.Name)
		}
		if spec.Description == "" {
			t.Fatalf("preset %s has no description (the catalog table needs one)", name)
		}
		if _, err := spec.Config(1, 2, 1); err != nil {
			t.Fatalf("preset %s does not compile: %v", name, err)
		}
	}
}

// TestBaselinePresetIsThePaper: the baseline preset compiles to the
// paper's exact configuration (Table 1 plan, defaults everywhere).
func TestBaselinePresetIsThePaper(t *testing.T) {
	spec, err := Preset("baseline")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config(42, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := honeynet.Table1Plan()
	if len(cfg.Plan) != len(want) {
		t.Fatalf("baseline plan has %d blocks, Table 1 has %d", len(cfg.Plan), len(want))
	}
	for i := range want {
		if cfg.Plan[i] != want[i] {
			t.Fatalf("baseline plan block %d = %+v, want %+v", i, cfg.Plan[i], want[i])
		}
	}
	if cfg.Populations != nil || cfg.Locale != nil || !cfg.Start.IsZero() || cfg.Duration != 0 {
		t.Fatalf("baseline overrides an axis it should not: %+v", cfg)
	}
}

func TestSpecValidation(t *testing.T) {
	valid := func() Spec { return Spec{Name: "ok"} }
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"missing name", func(s *Spec) { s.Name = "" }, "missing name"},
		{"bad name", func(s *Spec) { s.Name = "Bad Name" }, "bad name"},
		{"negative days", func(s *Spec) { s.Days = -1 }, "negative days"},
		{"bad leak date", func(s *Spec) { s.LeakDate = "June 25" }, "bad leak_date"},
		{"tz out of range", func(s *Spec) { s.TimezoneOffsetHours = 20 }, "out of range"},
		{"bad scan duration", func(s *Spec) { s.ScanEvery = "ten minutes" }, "bad scan_every"},
		{"zero scrape duration", func(s *Spec) { s.ScrapeEvery = "0s" }, "bad scrape_every"},
		{"unknown locale", func(s *Spec) { s.Locale = "tlh" }, "unknown locale"},
		{"unknown channel", func(s *Spec) {
			s.Plan = []BlockSpec{{ID: 1, Count: 5, Channel: "darkweb"}}
		}, "unknown channel"},
		{"unknown hint", func(s *Spec) {
			s.Plan = []BlockSpec{{ID: 1, Count: 5, Channel: "paste", Hint: "mars"}}
		}, "unknown hint"},
		{"zero count", func(s *Spec) {
			s.Plan = []BlockSpec{{ID: 1, Count: 0, Channel: "paste"}}
		}, "count"},
		{"malware hint", func(s *Spec) {
			s.Plan = []BlockSpec{{ID: 5, Count: 5, Channel: "malware", Hint: "uk"}}
		}, "malware"},
		{"site without name", func(s *Spec) {
			s.Sites = []SiteSpec{{Kind: "paste", PickupMeanDays: 1, MeanPickups: 1}}
		}, "no name"},
		{"duplicate site", func(s *Spec) {
			s.Sites = []SiteSpec{
				{Name: "x", Kind: "paste", PickupMeanDays: 1, MeanPickups: 1},
				{Name: "x", Kind: "forum", PickupMeanDays: 1, MeanPickups: 1},
			}
		}, "duplicate site"},
		{"bad site kind", func(s *Spec) {
			s.Sites = []SiteSpec{{Name: "x", Kind: "irc", PickupMeanDays: 1, MeanPickups: 1}}
		}, "unknown kind"},
		{"zero pickup mean", func(s *Spec) {
			s.Sites = []SiteSpec{{Name: "x", Kind: "paste", MeanPickups: 1}}
		}, "pickup_mean_days"},
		{"zero mean pickups", func(s *Spec) {
			// Poisson(0) pickups would silently strand every credential
			// posted to the site.
			s.Sites = []SiteSpec{{Name: "x", Kind: "paste", PickupMeanDays: 1}}
		}, "mean_pickups"},
		{"uncovered channel", func(s *Spec) {
			// Plan leaks to forums but the only site is a paste site.
			s.Plan = []BlockSpec{{ID: 3, Count: 5, Channel: "forum"}}
			s.Sites = []SiteSpec{{Name: "x", Kind: "paste", PickupMeanDays: 1, MeanPickups: 1}}
		}, "no configured site serves"},
		{"unknown calibration channel", func(s *Spec) {
			s.Calibration = map[string]map[string]float64{"irc": {"tor_prob": 0.5}}
		}, "unknown channel"},
		{"unknown calibration field", func(s *Spec) {
			s.Calibration = map[string]map[string]float64{"paste": {"luck": 0.5}}
		}, "unknown field"},
		{"probability out of range", func(s *Spec) {
			s.Calibration = map[string]map[string]float64{"paste": {"tor_prob": 1.5}}
		}, "out of range"},
		{"negative rate", func(s *Spec) {
			s.Calibration = map[string]map[string]float64{"forum": {"return_gap_days": -2}}
		}, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	s := valid()
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
}

// TestSpecConfigAppliesOverrides: every declarative axis lands on the
// honeynet.Config field it claims to control.
func TestSpecConfigAppliesOverrides(t *testing.T) {
	seed := int64(99)
	s := Spec{
		Name:                "full",
		Seed:                &seed,
		Days:                90,
		LeakDate:            "2016-01-10",
		TimezoneOffsetHours: 3,
		MailboxSize:         30,
		ScanEvery:           "30m",
		ScrapeEvery:         "2h",
		VisibleScripts:      true,
		DisableCaseStudies:  true,
		Locale:              "de",
		Plan:                []BlockSpec{{ID: 1, Count: 8, Channel: "paste", Hint: "uk"}},
		Calibration:         map[string]map[string]float64{"paste": {"tor_prob": 0.9}},
	}
	cfg, err := s.Config(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 99 {
		t.Fatalf("spec seed not honoured: %d", cfg.Seed)
	}
	if cfg.Duration != 90*24*time.Hour {
		t.Fatalf("days not applied: %v", cfg.Duration)
	}
	wantStart := time.Date(2016, 1, 10, 3, 0, 0, 0, time.UTC)
	if !cfg.Start.Equal(wantStart) {
		t.Fatalf("leak date + tz offset = %v, want %v", cfg.Start, wantStart)
	}
	if cfg.MailboxSize != 30 || cfg.ScanInterval != 30*time.Minute || cfg.ScrapeInterval != 2*time.Hour {
		t.Fatalf("cadence overrides not applied: %+v", cfg)
	}
	if !cfg.VisibleScripts || !cfg.DisableCaseStudies {
		t.Fatal("bool toggles not applied")
	}
	if cfg.Locale == nil || cfg.Locale.Name != "de" {
		t.Fatalf("locale not applied: %+v", cfg.Locale)
	}
	if len(cfg.Plan) != 1 || cfg.Plan[0].Channel != analysis.OutletPaste || cfg.Plan[0].Hint != analysis.HintUK {
		t.Fatalf("plan not applied: %+v", cfg.Plan)
	}
	if cfg.Populations == nil || cfg.Populations.Paste.TorProb != 0.9 {
		t.Fatalf("calibration not applied: %+v", cfg.Populations)
	}
	// Untouched channels keep the paper defaults.
	if cfg.Populations.Forum.TorProb != 0.22 {
		t.Fatalf("calibration leaked into forum population: %+v", cfg.Populations.Forum)
	}
	if cfg.Shards != 2 || cfg.ScaleFactor != 3 {
		t.Fatalf("execution parameters not threaded: %+v", cfg)
	}
}

// TestParseJSONRejectsUnknownFields: a typoed axis must fail loudly,
// not silently run the paper default.
func TestParseJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ParseJSON([]byte(`{"name": "x", "daays": 90}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseJSON([]byte(`{"name": "x"} {"name": "y"}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
	if _, err := ParseTOML([]byte("name = \"x\"\ndaays = 90\n")); err == nil {
		t.Fatal("unknown TOML key accepted")
	}
}

// TestResolve: names hit presets, paths hit files, junk errors.
func TestResolve(t *testing.T) {
	if _, err := Resolve("baseline"); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve("no-such-preset"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := Resolve("/no/such/file.toml"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := Resolve("file.yaml"); err == nil {
		t.Fatal("unsupported extension accepted")
	}
}
