package scenario

import (
	"fmt"
	"regexp"
	"time"

	"repro/internal/analysis"
	"repro/internal/attacker"
	"repro/internal/corpus"
	"repro/internal/honeynet"
	"repro/internal/outlets"
)

// Spec is one declarative experiment variant. The zero value of every
// field means "the paper's choice", so the baseline scenario is the
// empty spec with a name; each field varies exactly one axis of the
// deployment. Specs marshal 1:1 to the TOML/JSON scenario files.
type Spec struct {
	// Name identifies the scenario in reports and artifact filenames
	// (lowercase letters, digits, ".", "_", "-").
	Name string `json:"name"`
	// Description is a one-line human summary for the preset catalog.
	Description string `json:"description,omitempty"`
	// Seed pins the scenario to a fixed seed; unset lets the matrix
	// derive a stable per-scenario seed from its base seed.
	Seed *int64 `json:"seed,omitempty"`
	// Days is the observation window (paper: 236).
	Days int `json:"days,omitempty"`
	// LeakDate is the leak day, "YYYY-MM-DD" (paper: 2015-06-25).
	// Cor & Sood 2018 motivate varying leak exposure over time.
	LeakDate string `json:"leak_date,omitempty"`
	// TimezoneOffsetHours shifts the experiment clock's time-of-day,
	// simulating decoys "living" in another timezone (−14..+14).
	TimezoneOffsetHours int `json:"timezone_offset_hours,omitempty"`
	// MailboxSize is the seeded message count per account (paper: 90).
	MailboxSize int `json:"mailbox_size,omitempty"`
	// ScanEvery/ScrapeEvery are Go durations ("10m", "1h") for the
	// Apps-Script scan and activity-page scrape cadences.
	ScanEvery   string `json:"scan_every,omitempty"`
	ScrapeEvery string `json:"scrape_every,omitempty"`
	// VisibleScripts leaves the monitoring scripts discoverable (the
	// paper hides them; §3.2).
	VisibleScripts bool `json:"visible_scripts,omitempty"`
	// DisableCaseStudies skips the §4.7 scripted scenarios.
	DisableCaseStudies bool `json:"disable_case_studies,omitempty"`
	// DisableStreaming / DisableDirtyTracking flip the engine toggles
	// (identical outputs, different cost; see honeynet.Config).
	DisableStreaming     bool `json:"disable_streaming,omitempty"`
	DisableDirtyTracking bool `json:"disable_dirty_tracking,omitempty"`
	// Locale selects the decoy-identity locale (corpus.LocaleNames;
	// "" = English, the paper's population).
	Locale string `json:"locale,omitempty"`
	// DefenderCadence enables the C3 defender loop at this check
	// cadence (a Go duration, e.g. "24h"; "" disables — the paper's
	// deployment had no defender). See honeynet.Config.DefenderCadence.
	DefenderCadence string `json:"defender_cadence,omitempty"`
	// C3BucketBits sets the k-anonymity prefix width of the C3 index
	// (1..32; 0 selects the engine default). Only meaningful with
	// defender_cadence set.
	C3BucketBits int `json:"c3_bucket_bits,omitempty"`
	// C3Variants turns on MIGP-style variant indexing in the C3 index.
	C3Variants bool `json:"c3_variants,omitempty"`
	// Plan overrides the deployment plan (empty = the Table 1 plan).
	Plan []BlockSpec `json:"plan,omitempty"`
	// Sites overrides the outlet catalogue (empty = the paper's
	// venues, outlets.DefaultSites).
	Sites []SiteSpec `json:"sites,omitempty"`
	// Calibration overrides attacker-population parameters per leak
	// channel: channel ("paste", "paste-ru", "forum", "malware") →
	// snake_case Population field → value, e.g.
	// calibration["paste"]["spammer_prob"] = 0.15.
	Calibration map[string]map[string]float64 `json:"calibration,omitempty"`
}

// BlockSpec is one plan block (one Table 1 row) in declarative form.
type BlockSpec struct {
	ID      int    `json:"id"`
	Count   int    `json:"count"`
	Channel string `json:"channel"`
	Hint    string `json:"hint,omitempty"`
	Label   string `json:"label,omitempty"`
}

// SiteSpec is one leak venue in declarative form (see outlets.Site).
type SiteSpec struct {
	Name            string  `json:"name"`
	Kind            string  `json:"kind"`
	Russian         bool    `json:"russian,omitempty"`
	PickupMeanDays  float64 `json:"pickup_mean_days"`
	PickupDelayDays float64 `json:"pickup_delay_days,omitempty"`
	MeanPickups     float64 `json:"mean_pickups"`
	InquiryRate     float64 `json:"inquiry_rate,omitempty"`
}

var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]*$`)

// knownChannels are the leak channels calibration and plan blocks may
// name.
var knownChannels = map[string]analysis.Outlet{
	"paste":    analysis.OutletPaste,
	"paste-ru": analysis.OutletPasteRussian,
	"forum":    analysis.OutletForum,
	"malware":  analysis.OutletMalware,
}

// Validate checks every declarative field; a valid spec always
// compiles to a runnable honeynet.Config.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if !nameRe.MatchString(s.Name) {
		return fmt.Errorf("scenario: bad name %q (want lowercase letters, digits, '.', '_', '-')", s.Name)
	}
	if s.Days < 0 {
		return fmt.Errorf("scenario %s: negative days %d", s.Name, s.Days)
	}
	if s.LeakDate != "" {
		if _, err := time.Parse("2006-01-02", s.LeakDate); err != nil {
			return fmt.Errorf("scenario %s: bad leak_date %q (want YYYY-MM-DD)", s.Name, s.LeakDate)
		}
	}
	if s.TimezoneOffsetHours < -14 || s.TimezoneOffsetHours > 14 {
		return fmt.Errorf("scenario %s: timezone_offset_hours %d out of range [-14, 14]", s.Name, s.TimezoneOffsetHours)
	}
	if s.MailboxSize < 0 {
		return fmt.Errorf("scenario %s: negative mailbox_size %d", s.Name, s.MailboxSize)
	}
	for _, d := range []struct{ field, v string }{{"scan_every", s.ScanEvery}, {"scrape_every", s.ScrapeEvery}, {"defender_cadence", s.DefenderCadence}} {
		if d.v == "" {
			continue
		}
		dur, err := time.ParseDuration(d.v)
		if err != nil || dur <= 0 {
			return fmt.Errorf("scenario %s: bad %s %q (want a positive Go duration)", s.Name, d.field, d.v)
		}
	}
	if s.Locale != "" {
		if _, ok := corpus.LocaleByName(s.Locale); !ok {
			return fmt.Errorf("scenario %s: unknown locale %q (have %v)", s.Name, s.Locale, corpus.LocaleNames())
		}
	}
	if s.C3BucketBits < 0 || s.C3BucketBits > 32 {
		return fmt.Errorf("scenario %s: c3_bucket_bits %d out of range [0, 32]", s.Name, s.C3BucketBits)
	}
	if s.DefenderCadence == "" && (s.C3BucketBits != 0 || s.C3Variants) {
		return fmt.Errorf("scenario %s: c3_bucket_bits/c3_variants need defender_cadence set", s.Name)
	}
	plan, err := s.plan()
	if err != nil {
		return err
	}
	if err := honeynet.ValidatePlan(plan); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	sites, err := s.sites()
	if err != nil {
		return err
	}
	if err := s.checkCoverage(plan, sites); err != nil {
		return err
	}
	return s.checkCalibration()
}

// plan converts the declarative blocks (empty = Table 1).
func (s *Spec) plan() ([]honeynet.GroupSpec, error) {
	if len(s.Plan) == 0 {
		return honeynet.Table1Plan(), nil
	}
	out := make([]honeynet.GroupSpec, 0, len(s.Plan))
	for i, b := range s.Plan {
		ch, ok := knownChannels[b.Channel]
		if !ok {
			return nil, fmt.Errorf("scenario %s: plan block %d has unknown channel %q", s.Name, i, b.Channel)
		}
		switch analysis.Hint(b.Hint) {
		case analysis.HintNone, analysis.HintUK, analysis.HintUS:
		default:
			return nil, fmt.Errorf("scenario %s: plan block %d has unknown hint %q", s.Name, i, b.Hint)
		}
		label := b.Label
		if label == "" {
			label = fmt.Sprintf("%s block %d", b.Channel, i)
		}
		out = append(out, honeynet.GroupSpec{
			ID: b.ID, Count: b.Count, Channel: ch, Hint: analysis.Hint(b.Hint), Label: label,
		})
	}
	return out, nil
}

// sites converts the declarative venues (empty = the paper's).
func (s *Spec) sites() ([]*outlets.Site, error) {
	if len(s.Sites) == 0 {
		return outlets.DefaultSites(), nil
	}
	out := make([]*outlets.Site, 0, len(s.Sites))
	seen := map[string]bool{}
	for i, v := range s.Sites {
		if v.Name == "" {
			return nil, fmt.Errorf("scenario %s: site %d has no name", s.Name, i)
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("scenario %s: duplicate site %q", s.Name, v.Name)
		}
		seen[v.Name] = true
		var kind outlets.Kind
		switch v.Kind {
		case "paste":
			kind = outlets.KindPaste
		case "forum":
			kind = outlets.KindForum
		default:
			return nil, fmt.Errorf("scenario %s: site %q has unknown kind %q (want paste or forum)", s.Name, v.Name, v.Kind)
		}
		if v.PickupMeanDays <= 0 {
			return nil, fmt.Errorf("scenario %s: site %q needs pickup_mean_days > 0", s.Name, v.Name)
		}
		// A zero pickup mean would silently drop every credential
		// posted to the site — the condition checkCoverage exists to
		// reject, so it must fail here too.
		if v.MeanPickups <= 0 {
			return nil, fmt.Errorf("scenario %s: site %q needs mean_pickups > 0", s.Name, v.Name)
		}
		if v.PickupDelayDays < 0 || v.InquiryRate < 0 || v.InquiryRate > 1 {
			return nil, fmt.Errorf("scenario %s: site %q has out-of-range parameters", s.Name, v.Name)
		}
		out = append(out, &outlets.Site{
			Name: v.Name, Kind: kind, Russian: v.Russian,
			PickupMeanDays: v.PickupMeanDays, PickupDelayDays: v.PickupDelayDays,
			MeanPickups: v.MeanPickups, InquiryRate: v.InquiryRate,
		})
	}
	return out, nil
}

// checkCoverage rejects plans that leak through channels no site
// serves — the credentials would silently never be picked up.
func (s *Spec) checkCoverage(plan []honeynet.GroupSpec, sites []*outlets.Site) error {
	have := map[analysis.Outlet]bool{analysis.OutletMalware: true} // malware needs no site
	for _, site := range sites {
		switch {
		case site.Kind == outlets.KindPaste && site.Russian:
			have[analysis.OutletPasteRussian] = true
		case site.Kind == outlets.KindPaste:
			have[analysis.OutletPaste] = true
		case site.Kind == outlets.KindForum:
			have[analysis.OutletForum] = true
		}
	}
	for _, g := range plan {
		if !have[g.Channel] {
			return fmt.Errorf("scenario %s: plan leaks through %q but no configured site serves that channel", s.Name, g.Channel)
		}
	}
	return nil
}

// checkCalibration validates the override map's channels, fields and
// ranges.
func (s *Spec) checkCalibration() error {
	for channel, fields := range s.Calibration {
		if _, ok := knownChannels[channel]; !ok {
			return fmt.Errorf("scenario %s: calibration for unknown channel %q", s.Name, channel)
		}
		for field, v := range fields {
			var probe attacker.Population
			if err := setPopulationField(&probe, field, v); err != nil {
				return fmt.Errorf("scenario %s: %w", s.Name, err)
			}
		}
	}
	return nil
}

// populations builds the attacker calibration with overrides applied
// on top of the paper defaults.
func (s *Spec) populations() (*attacker.Populations, error) {
	if len(s.Calibration) == 0 {
		return nil, nil // engine default
	}
	pops := attacker.DefaultPopulations()
	for channel, fields := range s.Calibration {
		var p *attacker.Population
		switch channel {
		case "paste":
			p = &pops.Paste
		case "paste-ru":
			p = &pops.PasteRussian
		case "forum":
			p = &pops.Forum
		case "malware":
			p = &pops.Malware
		default:
			return nil, fmt.Errorf("scenario %s: calibration for unknown channel %q", s.Name, channel)
		}
		for field, v := range fields {
			if err := setPopulationField(p, field, v); err != nil {
				return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
			}
		}
	}
	return &pops, nil
}

// setPopulationField applies one snake_case override. Probability
// fields must lie in [0,1]; rate/size fields must be non-negative.
func setPopulationField(p *attacker.Population, field string, v float64) error {
	prob := func(dst *float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("calibration %s=%g out of range [0,1]", field, v)
		}
		*dst = v
		return nil
	}
	nonneg := func(dst *float64) error {
		if v < 0 {
			return fmt.Errorf("calibration %s=%g must be non-negative", field, v)
		}
		*dst = v
		return nil
	}
	switch field {
	case "gold_digger_prob":
		return prob(&p.GoldDiggerProb)
	case "hijacker_prob":
		return prob(&p.HijackerProb)
	case "spammer_prob":
		return prob(&p.SpammerProb)
	case "tor_prob":
		return prob(&p.TorProb)
	case "proxy_prob":
		return prob(&p.ProxyProb)
	case "empty_ua_prob":
		return prob(&p.EmptyUAProb)
	case "android_prob":
		return prob(&p.AndroidProb)
	case "location_malleability":
		return prob(&p.LocationMalleability)
	case "return_prob":
		return prob(&p.ReturnProb)
	case "return_visits_mu":
		return nonneg(&p.ReturnVisitsMu)
	case "return_gap_days":
		return nonneg(&p.ReturnGapDays)
	case "session_minutes":
		return nonneg(&p.SessionMinutes)
	case "infected_machine_prob":
		return prob(&p.InfectedMachineProb)
	case "tos_violation_prob":
		return prob(&p.TosViolationProb)
	default:
		return fmt.Errorf("calibration names unknown field %q", field)
	}
}

// Config compiles the spec into a runnable honeynet.Config. The
// passed seed is used unless the spec pins its own; shards and scale
// are execution parameters (they never change reported numbers, see
// TestShardCountInvariance) and so live outside the spec.
func (s *Spec) Config(seed int64, shards, scale int) (honeynet.Config, error) {
	if err := s.Validate(); err != nil {
		return honeynet.Config{}, err
	}
	if s.Seed != nil {
		seed = *s.Seed
	}
	plan, err := s.plan()
	if err != nil {
		return honeynet.Config{}, err
	}
	sites, err := s.sites()
	if err != nil {
		return honeynet.Config{}, err
	}
	pops, err := s.populations()
	if err != nil {
		return honeynet.Config{}, err
	}
	cfg := honeynet.Config{
		Seed:                 seed,
		Plan:                 plan,
		Sites:                sites,
		Populations:          pops,
		MailboxSize:          s.MailboxSize,
		VisibleScripts:       s.VisibleScripts,
		DisableCaseStudies:   s.DisableCaseStudies,
		DisableStreaming:     s.DisableStreaming,
		DisableDirtyTracking: s.DisableDirtyTracking,
		Shards:               shards,
		ScaleFactor:          scale,
	}
	if s.Days > 0 {
		cfg.Duration = time.Duration(s.Days) * 24 * time.Hour
	}
	if s.LeakDate != "" {
		t, err := time.Parse("2006-01-02", s.LeakDate)
		if err != nil {
			return honeynet.Config{}, fmt.Errorf("scenario %s: bad leak_date: %w", s.Name, err)
		}
		cfg.Start = t
	}
	if s.TimezoneOffsetHours != 0 {
		if cfg.Start.IsZero() {
			cfg.Start = honeynet.DefaultStart()
		}
		cfg.Start = cfg.Start.Add(time.Duration(s.TimezoneOffsetHours) * time.Hour)
	}
	if s.ScanEvery != "" {
		d, err := time.ParseDuration(s.ScanEvery)
		if err != nil {
			return honeynet.Config{}, fmt.Errorf("scenario %s: bad scan_every: %w", s.Name, err)
		}
		cfg.ScanInterval = d
	}
	if s.ScrapeEvery != "" {
		d, err := time.ParseDuration(s.ScrapeEvery)
		if err != nil {
			return honeynet.Config{}, fmt.Errorf("scenario %s: bad scrape_every: %w", s.Name, err)
		}
		cfg.ScrapeInterval = d
	}
	if s.Locale != "" {
		loc, ok := corpus.LocaleByName(s.Locale)
		if !ok {
			return honeynet.Config{}, fmt.Errorf("scenario %s: unknown locale %q", s.Name, s.Locale)
		}
		cfg.Locale = &loc
	}
	if s.DefenderCadence != "" {
		d, err := time.ParseDuration(s.DefenderCadence)
		if err != nil {
			return honeynet.Config{}, fmt.Errorf("scenario %s: bad defender_cadence: %w", s.Name, err)
		}
		cfg.DefenderCadence = d
		cfg.C3BucketBits = s.C3BucketBits
		cfg.C3Variants = s.C3Variants
	}
	return cfg, nil
}
