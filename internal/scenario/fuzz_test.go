package scenario

import "testing"

// FuzzLoadSpec drives both scenario decoders (the TOML-subset parser
// and the strict JSON path) with arbitrary bytes. The loader contract
// under fuzzing: malformed specs must return an error — parse,
// decode, or validation — and never panic. Accepted specs must
// validate (ParseTOML/ParseJSON run Validate before returning), so a
// nil error implies a runnable scenario.
func FuzzLoadSpec(f *testing.F) {
	// Well-formed seeds: every embedded preset, in both formats.
	for _, name := range PresetNames() {
		data, err := presetFS.ReadFile("presets/" + name + ".toml")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name": "j", "days": 30, "calibration": {"paste": {"tor_prob": 0.5}}}`))
	f.Add([]byte(`{"name": "p", "plan": [{"id": 1, "count": 5, "channel": "paste"}]}`))
	// Malformed seeds steering the fuzzer at the interesting edges.
	f.Add([]byte("name = \"x\"\n[[plan]]\nid = 1\ncount = 0\nchannel = \"paste\"\n"))
	f.Add([]byte("name = \"x\"\n[calibration.paste]\ntor_prob = 7\n"))
	f.Add([]byte("name = \"x\"\nscan_every = \"-1h\"\n"))
	f.Add([]byte(`name = "x`))
	f.Add([]byte("[[sites]]\n"))
	f.Add([]byte(`{"name": "x", "unknown_field": 1}`))
	f.Add([]byte("a = [1, [2]]\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if spec, err := ParseTOML(data); err == nil {
			if verr := spec.Validate(); verr != nil {
				t.Fatalf("ParseTOML returned an invalid spec: %v", verr)
			}
		}
		if spec, err := ParseJSON(data); err == nil {
			if verr := spec.Validate(); verr != nil {
				t.Fatalf("ParseJSON returned an invalid spec: %v", verr)
			}
		}
	})
}
