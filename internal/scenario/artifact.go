package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// Artifact is the canonical JSON projection of one scenario's
// aggregates, written one file per scenario for cross-run diffing.
// Every collection is a sorted slice (never a Go map with
// iteration-order leakage), so two runs of the same (spec, seed,
// scale) produce byte-identical files — the bit-identity contract
// TestMatrixMatchesSolo asserts through this encoding.
type Artifact struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	// SetupSeed is the derived stream the setup phase drew from (see
	// SetupSeedFor) — with it, the scenario reproduces standalone.
	// Warm- and cold-started runs record the same value; whether the
	// setup was simulated or forked from a snapshot never reaches the
	// artifact.
	SetupSeed int64 `json:"setup_seed"`
	Shards    int   `json:"shards"`
	Scale     int   `json:"scale"`

	Overview analysis.Overview `json:"overview"`

	Classes   classCountsJSON  `json:"classes"`
	PerOutlet []outletClasses  `json:"per_outlet"`
	Durations []sketchSeries   `json:"duration_cdfs_hours"`
	TimeTo    []sketchSeries   `json:"time_to_access_cdfs_days"`
	Timeline  []timelineRow    `json:"timeline_10d_buckets"`
	Radii     []radiusRow      `json:"median_radii_km"`
	SysConfig []sysConfigRow   `json:"system_config"`
	Cases     caseStudyCounter `json:"case_studies"`
}

type classCountsJSON struct {
	Total      int `json:"total"`
	Curious    int `json:"curious"`
	GoldDigger int `json:"gold_digger"`
	Spammer    int `json:"spammer"`
	Hijacker   int `json:"hijacker"`
}

type outletClasses struct {
	Outlet string `json:"outlet"`
	classCountsJSON
}

type sketchSeries struct {
	Key    string    `json:"key"`
	N      int       `json:"n"`
	Probes []float64 `json:"probes"`
	CDF    []float64 `json:"cdf"`
}

type timelineRow struct {
	Outlet string `json:"outlet"`
	Bucket int    `json:"bucket"`
	Count  int    `json:"count"`
}

type radiusRow struct {
	Region   string  `json:"region"`
	Outlet   string  `json:"outlet"`
	Hint     string  `json:"hint"`
	N        int     `json:"n"`
	MedianKm float64 `json:"median_km"`
}

type sysConfigRow struct {
	Outlet   string `json:"outlet"`
	Accesses int    `json:"accesses"`
	EmptyUA  int    `json:"empty_ua"`
	Android  int    `json:"android"`
	Desktop  int    `json:"desktop"`
}

type caseStudyCounter struct {
	Blackmailers int `json:"blackmailers"`
	Inquiries    int `json:"inquiries"`
}

func toClassCounts(c analysis.ClassCounts) classCountsJSON {
	return classCountsJSON{
		Total: c.Total, Curious: c.Curious, GoldDigger: c.GoldDigger,
		Spammer: c.Spammer, Hijacker: c.Hijacker,
	}
}

func toSeries(key string, sk *stats.ProbeSketch) sketchSeries {
	s := sketchSeries{Key: key, N: sk.N()}
	for i, p := range sk.Probes() {
		s.Probes = append(s.Probes, p)
		s.CDF = append(s.CDF, sk.Frac(i))
	}
	return s
}

// BuildArtifact projects a successful result into its artifact form.
func BuildArtifact(r *Result) (Artifact, error) {
	if r == nil || r.Err != nil || r.Agg == nil {
		return Artifact{}, fmt.Errorf("scenario: no aggregates to encode")
	}
	agg := r.Agg
	a := Artifact{
		Scenario:    r.Spec.Name,
		Description: r.Spec.Description,
		Seed:        r.Seed,
		SetupSeed:   r.SetupSeed,
		Shards:      r.Shards,
		Scale:       r.Scale,
		Overview:    agg.Overview(),
		Classes:     toClassCounts(agg.Classes),
		Cases:       caseStudyCounter{Blackmailers: r.Blackmailers, Inquiries: r.Inquiries},
	}

	outlets := make([]string, 0, len(agg.PerOutlet))
	for o := range agg.PerOutlet {
		outlets = append(outlets, string(o))
	}
	sort.Strings(outlets)
	for _, o := range outlets {
		a.PerOutlet = append(a.PerOutlet, outletClasses{
			Outlet:          o,
			classCountsJSON: toClassCounts(agg.PerOutlet[analysis.Outlet(o)]),
		})
	}

	classes := make([]string, 0, len(agg.Durations))
	for k := range agg.Durations {
		classes = append(classes, k)
	}
	sort.Strings(classes)
	for _, k := range classes {
		a.Durations = append(a.Durations, toSeries(k, agg.Durations[k]))
	}

	ttaOutlets := make([]string, 0, len(agg.TimeToAccess))
	for o := range agg.TimeToAccess {
		ttaOutlets = append(ttaOutlets, string(o))
	}
	sort.Strings(ttaOutlets)
	for _, o := range ttaOutlets {
		a.TimeTo = append(a.TimeTo, toSeries(o, agg.TimeToAccess[analysis.Outlet(o)]))
	}

	tlOutlets := make([]string, 0, len(agg.Timeline))
	for o := range agg.Timeline {
		tlOutlets = append(tlOutlets, string(o))
	}
	sort.Strings(tlOutlets)
	for _, o := range tlOutlets {
		buckets := agg.Timeline[analysis.Outlet(o)]
		keys := make([]int, 0, len(buckets))
		for b := range buckets {
			keys = append(keys, b)
		}
		sort.Ints(keys)
		for _, b := range keys {
			a.Timeline = append(a.Timeline, timelineRow{Outlet: o, Bucket: b, Count: buckets[b]})
		}
	}

	for _, region := range []analysis.Hint{analysis.HintUK, analysis.HintUS} {
		for _, row := range agg.MedianRadii(region) {
			a.Radii = append(a.Radii, radiusRow{
				Region: string(region), Outlet: string(row.Group.Outlet),
				Hint: string(row.Group.Hint), N: row.N, MedianKm: row.MedianKm,
			})
		}
	}

	for _, row := range agg.ConfigRows() {
		a.SysConfig = append(a.SysConfig, sysConfigRow{
			Outlet: string(row.Outlet), Accesses: row.Accesses,
			EmptyUA: row.EmptyUA, Android: row.Android, Desktop: row.Desktop,
		})
	}
	return a, nil
}

// Encode renders the artifact as indented JSON with a trailing
// newline — the canonical on-disk form.
func (a Artifact) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteArtifacts writes one <name>.json per successful result into
// dir (created if missing) and returns the paths written. Failed
// scenarios are skipped — their error is on the Result.
func WriteArtifacts(dir string, results []*Result) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var paths []string
	for _, r := range results {
		if r == nil || r.Err != nil {
			continue
		}
		art, err := BuildArtifact(r)
		if err != nil {
			return paths, err
		}
		data, err := art.Encode()
		if err != nil {
			return paths, fmt.Errorf("scenario %s: %w", r.Spec.Name, err)
		}
		path := filepath.Join(dir, r.Spec.Name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return paths, fmt.Errorf("scenario %s: %w", r.Spec.Name, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}
