package scenario

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/honeynet"
	"repro/internal/rng"
	"repro/internal/simtime"
)

// Options are the execution parameters of a scenario run. They shape
// cost, never results: shards and scale keep the engine's
// shard-count-invariance contract, and the worker budget only decides
// how much of the matrix runs at once.
type Options struct {
	// BaseSeed seeds scenarios that don't pin their own. Zero is a
	// valid seed, not a sentinel — whatever the caller passes is what
	// SeedFor derives from, so reported base seeds always reproduce.
	BaseSeed int64
	// Shards is the per-scenario shard count (default 1).
	Shards int
	// Scale replicates each scenario's plan (default 1).
	Scale int
	// Workers is the matrix-wide worker budget shared by every
	// concurrently running scenario (default NumCPU).
	Workers int
	// DaysOverride truncates every scenario's observation window (CI
	// smoke and tests; 0 keeps each spec's own window).
	DaysOverride int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Result is one scenario's outcome: the merged aggregates every
// report and artifact derives from, plus the run context needed to
// render a full per-scenario report (group counts for Table 1, the
// seeded contents and drop words for Table 2, the §4.7 counters).
type Result struct {
	Spec   Spec
	Seed   int64
	Shards int
	Scale  int
	// Err is set when the scenario failed to build or run; all other
	// result fields are then zero.
	Err error

	Agg          *analysis.Aggregates
	GroupCounts  map[int]int
	Contents     map[string]map[int64]string
	DropWords    []string
	Blackmailers int
	Inquiries    int
	Events       uint64
	Elapsed      time.Duration
}

// SeedFor derives the stable seed of scenario index of total from a
// matrix base seed. The derivation is rng.ForkShard's, so it is a
// pure function of (base, index, total): re-running one scenario
// alone with the seed the matrix reports reproduces its aggregates
// bit for bit (TestMatrixMatchesSolo).
func SeedFor(base int64, index, total int) int64 {
	return rng.New(base).ForkShard(index, total).Seed()
}

// Run executes one scenario alone with the given seed, drawing
// workers from a private pool of opts.Workers.
func Run(spec Spec, seed int64, opts Options) *Result {
	opts = opts.withDefaults()
	return runOne(spec, seed, opts, simtime.NewWorkerPool(opts.Workers))
}

// RunMatrix executes every scenario concurrently on one shared worker
// budget and returns results in spec order. Scenario names must be
// unique (they key report columns and artifact files). Individual
// scenario failures land in Result.Err; the rest of the matrix still
// completes.
func RunMatrix(specs []Spec, opts Options) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("scenario: empty matrix")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("scenario: duplicate scenario %q in matrix", s.Name)
		}
		seen[s.Name] = true
	}
	opts = opts.withDefaults()
	pool := simtime.NewWorkerPool(opts.Workers)
	results := make([]*Result, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		i, spec := i, spec
		seed := SeedFor(opts.BaseSeed, i, len(specs))
		if spec.Seed != nil {
			seed = *spec.Seed
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = runOne(spec, seed, opts, pool)
		}()
	}
	wg.Wait()
	return results, nil
}

// runOne builds, runs and aggregates one scenario. Setup and Leak are
// serial phases and hold one pool slot; the shard run draws slots per
// shard via RunPooled. Everything observable is a pure function of
// (spec, seed, scale) — the pool and shard count only shape
// wall-clock time.
func runOne(spec Spec, seed int64, opts Options, pool *simtime.WorkerPool) *Result {
	// A spec-pinned seed overrides the caller's (Spec.Config applies
	// the same rule); Result.Seed must report the seed that actually
	// drove the run, or artifacts would carry unreproducible metadata.
	if spec.Seed != nil {
		seed = *spec.Seed
	}
	res := &Result{Spec: spec, Seed: seed, Shards: opts.Shards, Scale: opts.Scale}
	fail := func(err error) *Result {
		res.Err = err
		return res
	}
	cfg, err := spec.Config(seed, opts.Shards, opts.Scale)
	if err != nil {
		return fail(err)
	}
	if opts.DaysOverride > 0 {
		cfg.Duration = time.Duration(opts.DaysOverride) * 24 * time.Hour
	}
	start := time.Now()
	exp, err := honeynet.New(cfg)
	if err != nil {
		return fail(fmt.Errorf("scenario %s: %w", spec.Name, err))
	}
	pool.Acquire()
	err = exp.Setup()
	if err == nil {
		err = exp.Leak()
	}
	pool.Release()
	if err != nil {
		return fail(fmt.Errorf("scenario %s: %w", spec.Name, err))
	}
	if err := exp.RunPooled(pool); err != nil {
		return fail(fmt.Errorf("scenario %s: %w", spec.Name, err))
	}

	var agg *analysis.Aggregates
	if exp.StreamingEnabled() {
		agg, err = exp.Aggregates()
		if err != nil {
			return fail(fmt.Errorf("scenario %s: %w", spec.Name, err))
		}
	} else {
		agg = analysis.AggregatesFromDataset(exp.Dataset(), analysis.StreamConfig{})
	}
	res.Agg = agg
	res.GroupCounts = map[int]int{}
	for _, a := range exp.Assignments() {
		res.GroupCounts[a.Group.ID]++
	}
	res.Contents = exp.SeededContents()
	res.DropWords = exp.DropWords()
	res.Blackmailers = exp.Blackmailers()
	res.Inquiries = len(exp.AllInquiries())
	res.Events = exp.ShardSet().Fired()
	res.Elapsed = time.Since(start)
	return res
}
