package scenario

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/honeynet"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/snapshot"
)

// Options are the execution parameters of a scenario run. They shape
// cost, never results: shards and scale keep the engine's
// shard-count-invariance contract, the worker budget only decides
// how much of the matrix runs at once, and warm-starting only decides
// whether shared setup phases are simulated once or per scenario.
type Options struct {
	// BaseSeed seeds scenarios that don't pin their own. Zero is a
	// valid seed, not a sentinel — whatever the caller passes is what
	// SeedFor derives from, so reported base seeds always reproduce.
	BaseSeed int64
	// Shards is the per-scenario shard count (default 1).
	Shards int
	// Scale replicates each scenario's plan (default 1).
	Scale int
	// Workers is the matrix-wide worker budget shared by every
	// concurrently running scenario (default NumCPU).
	Workers int
	// DaysOverride truncates every scenario's observation window (CI
	// smoke and tests; 0 keeps each spec's own window).
	DaysOverride int
	// ColdStart disables warm-starting: every scenario then simulates
	// its own setup phase from scratch, as the pre-snapshot engine
	// did. Results are byte-identical either way
	// (TestMatrixWarmStartMatchesCold); the flag exists to measure
	// what warm-starting saves and as an escape hatch.
	ColdStart bool
	// SetupSeed pins the setup stream directly instead of deriving it
	// from BaseSeed (see SetupSeedFor). Zero derives. Use it to
	// reproduce one scenario standalone from its artifact metadata:
	// Run(spec, artifact.Seed, Options{SetupSeed: artifact.SetupSeed,
	// Shards: ..., Scale: ...}) matches the matrix bytes without
	// knowing the matrix's base seed.
	SetupSeed int64
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Result is one scenario's outcome: the merged aggregates every
// report and artifact derives from, plus the run context needed to
// render a full per-scenario report (group counts for Table 1, the
// seeded contents and drop words for Table 2, the §4.7 counters).
type Result struct {
	Spec   Spec
	Seed   int64
	Shards int
	Scale  int
	// SetupSeed is the derived seed that drove the setup phase (see
	// SetupSeedFor); scenarios sharing it grew identical honey
	// accounts and can fork from one snapshot.
	SetupSeed int64
	// WarmStarted reports whether this scenario forked from a shared
	// post-setup snapshot instead of simulating its own setup. It is
	// execution metadata — never part of the artifact, which must be
	// identical warm or cold.
	WarmStarted bool
	// Err is set when the scenario failed to build or run; all other
	// result fields are then zero.
	Err error

	Agg          *analysis.Aggregates
	GroupCounts  map[int]int
	Contents     analysis.ContentsView
	DropWords    []string
	Blackmailers int
	Inquiries    int
	Events       uint64
	Elapsed      time.Duration
	// Defender holds the C3 detection-race outcomes (nil unless the
	// spec set defender_cadence); C3Indexed is the fleet-wide count of
	// credentials the C3 fragments ingested during the run.
	Defender  []honeynet.DefenderOutcome
	C3Indexed int
}

// SeedFor derives the stable seed of scenario index of total from a
// matrix base seed. The derivation is rng.ForkShard's, so it is a
// pure function of (base, index, total): re-running one scenario
// alone with the seed the matrix reports reproduces its aggregates
// bit for bit (TestMatrixMatchesSolo).
func SeedFor(base int64, index, total int) int64 {
	return rng.New(base).ForkShard(index, total).Seed()
}

// SetupSeedFor derives the seed that drives a config's setup phase: a
// pure function of the base seed and the config's setup-relevant axes
// (account count, leak date, mailbox size, locale — the fields
// honeynet.SetupFingerprint covers), independent of the scenario's
// own experiment seed. Scenarios whose setups agree therefore agree
// on SetupSeedFor too, grow bit-identical honey accounts, and the
// warm-started matrix simulates that shared setup exactly once.
func SetupSeedFor(base int64, cfg honeynet.Config) int64 {
	probe := cfg
	probe.SetupSeed = 1 // pin the seed axis: key only the structural setup axes
	key := honeynet.SetupFingerprint(probe)
	derived := rng.New(base).ForkNamed(fmt.Sprintf("setup-prefix-%016x", key)).Seed()
	if derived == 0 {
		derived = 1 // 0 selects the legacy layout; never derive it
	}
	return derived
}

// compileConfig builds one scenario's runnable config: the spec
// compiled at the effective seed, the days override applied, and the
// setup phase rebased onto its derived SetupSeedFor stream.
func compileConfig(spec Spec, seed int64, opts Options) (honeynet.Config, error) {
	cfg, err := spec.Config(seed, opts.Shards, opts.Scale)
	if err != nil {
		return honeynet.Config{}, err
	}
	if opts.DaysOverride > 0 {
		cfg.Duration = time.Duration(opts.DaysOverride) * 24 * time.Hour
	}
	cfg.SetupSeed = opts.SetupSeed
	if cfg.SetupSeed == 0 {
		cfg.SetupSeed = SetupSeedFor(opts.BaseSeed, cfg)
	}
	return cfg, nil
}

// Run executes one scenario alone with the given seed, drawing
// workers from a private pool of opts.Workers. The setup phase draws
// from the stream Options selects — SetupSeed directly, or the
// BaseSeed derivation (SetupSeedFor) — so to reproduce a matrix
// member bit-for-bit, pass either the matrix's BaseSeed or the
// artifact's recorded setup_seed.
func Run(spec Spec, seed int64, opts Options) *Result {
	opts = opts.withDefaults()
	return runOne(spec, seed, opts, simtime.NewWorkerPool(opts.Workers))
}

// RunMatrix executes every scenario concurrently on one shared worker
// budget and returns results in spec order. Scenario names must be
// unique (they key report columns and artifact files). Individual
// scenario failures land in Result.Err; the rest of the matrix still
// completes.
//
// Scenarios whose setup-relevant axes agree (same derived setup seed,
// account count, leak date, mailbox size and locale — whatever their
// plans, outlet catalogues or calibrations) are warm-started: the
// shared pre-leak phase is simulated once, snapshotted through the
// full binary codec, and every member forks from the decoded snapshot
// with only its own post-fork divergence applied. Results are
// byte-identical to cold runs; Options.ColdStart forces the old
// per-scenario path.
func RunMatrix(specs []Spec, opts Options) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("scenario: empty matrix")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("scenario: duplicate scenario %q in matrix", s.Name)
		}
		seen[s.Name] = true
	}
	opts = opts.withDefaults()
	pool := simtime.NewWorkerPool(opts.Workers)
	results := make([]*Result, len(specs))

	// Compile every scenario up front so warm-start groups form over
	// the real configs. A compile failure fails only its scenario.
	type compiled struct {
		seed int64
		cfg  honeynet.Config
	}
	slots := make([]compiled, len(specs))
	groups := map[uint64][]int{} // setup fingerprint -> scenario indices
	var order []uint64
	for i, spec := range specs {
		seed := SeedFor(opts.BaseSeed, i, len(specs))
		if spec.Seed != nil {
			seed = *spec.Seed
		}
		cfg, err := compileConfig(spec, seed, opts)
		if err != nil {
			results[i] = &Result{Spec: spec, Seed: seed, Shards: opts.Shards, Scale: opts.Scale,
				Err: fmt.Errorf("scenario %s: %w", spec.Name, err)}
			continue
		}
		slots[i] = compiled{seed: seed, cfg: cfg}
		fp := honeynet.SetupFingerprint(cfg)
		if _, ok := groups[fp]; !ok {
			order = append(order, fp)
		}
		groups[fp] = append(groups[fp], i)
	}

	var wg sync.WaitGroup
	for _, fp := range order {
		members := groups[fp]
		wg.Add(1)
		go func(members []int) {
			defer wg.Done()
			var shared *snapshot.State
			if !opts.ColdStart && len(members) > 1 {
				shared = buildSharedSetup(slots[members[0]].cfg, pool)
			}
			var mwg sync.WaitGroup
			for _, i := range members {
				i := i
				mwg.Add(1)
				go func() {
					defer mwg.Done()
					results[i] = runCompiled(specs[i], slots[i].seed, opts, slots[i].cfg, pool, shared)
				}()
			}
			mwg.Wait()
		}(members)
	}
	wg.Wait()
	return results, nil
}

// buildSharedSetup simulates one group's shared setup phase and
// freezes it, round-tripping through the binary codec so the warm
// path exercises exactly what a cross-process resume would. Any
// failure falls back to nil — every member then cold-starts, which
// either succeeds or reports the real error per scenario.
func buildSharedSetup(cfg honeynet.Config, pool *simtime.WorkerPool) *snapshot.State {
	pool.Acquire()
	defer pool.Release()
	proto, err := honeynet.New(cfg)
	if err != nil {
		return nil
	}
	if err := proto.Setup(); err != nil {
		return nil
	}
	st, err := proto.Snapshot()
	if err != nil {
		return nil
	}
	decoded, err := snapshot.Decode(st.Encode())
	if err != nil {
		return nil
	}
	return decoded
}

// runOne compiles and runs one scenario cold (the solo path).
func runOne(spec Spec, seed int64, opts Options, pool *simtime.WorkerPool) *Result {
	// A spec-pinned seed overrides the caller's (Spec.Config applies
	// the same rule); Result.Seed must report the seed that actually
	// drove the run, or artifacts would carry unreproducible metadata.
	if spec.Seed != nil {
		seed = *spec.Seed
	}
	cfg, err := compileConfig(spec, seed, opts)
	if err != nil {
		return &Result{Spec: spec, Seed: seed, Shards: opts.Shards, Scale: opts.Scale,
			Err: fmt.Errorf("scenario %s: %w", spec.Name, err)}
	}
	return runCompiled(spec, seed, opts, cfg, pool, nil)
}

// runCompiled builds, runs and aggregates one scenario, either cold
// (shared == nil: simulate Setup) or forked from a shared post-setup
// snapshot. Setup/restore and Leak are serial phases and hold one
// pool slot; the shard run draws slots per shard via RunPooled.
// Everything observable is a pure function of (spec, seed, scale) —
// the pool, the shard count and the warm/cold path only shape
// wall-clock time.
func runCompiled(spec Spec, seed int64, opts Options, cfg honeynet.Config, pool *simtime.WorkerPool, shared *snapshot.State) *Result {
	res := &Result{Spec: spec, Seed: seed, Shards: opts.Shards, Scale: opts.Scale,
		SetupSeed: cfg.SetupSeed, WarmStarted: shared != nil}
	fail := func(err error) *Result {
		res.Err = fmt.Errorf("scenario %s: %w", spec.Name, err)
		return res
	}
	start := time.Now()
	var exp *honeynet.Experiment
	var err error
	if shared != nil {
		pool.Acquire()
		exp, err = honeynet.ResumeWith(shared, cfg)
		if err == nil {
			err = exp.Leak()
		}
		pool.Release()
		if err != nil {
			return fail(err)
		}
	} else {
		exp, err = honeynet.New(cfg)
		if err != nil {
			return fail(err)
		}
		pool.Acquire()
		err = exp.Setup()
		if err == nil {
			err = exp.Leak()
		}
		pool.Release()
		if err != nil {
			return fail(err)
		}
	}
	if err := exp.RunPooled(pool); err != nil {
		return fail(err)
	}

	var agg *analysis.Aggregates
	if exp.StreamingEnabled() {
		agg, err = exp.Aggregates()
		if err != nil {
			return fail(err)
		}
	} else {
		agg = analysis.AggregatesFromDataset(exp.Dataset(), analysis.StreamConfig{})
	}
	res.Agg = agg
	res.GroupCounts = map[int]int{}
	for _, a := range exp.Assignments() {
		res.GroupCounts[a.Group.ID]++
	}
	res.Contents = exp.SeededContents()
	res.DropWords = exp.DropWords()
	res.Blackmailers = exp.Blackmailers()
	res.Inquiries = len(exp.AllInquiries())
	res.Defender = exp.DefenderOutcomes()
	res.C3Indexed = exp.C3Stats().Credentials
	res.Events = exp.ShardSet().Fired()
	res.Elapsed = time.Since(start)
	return res
}
