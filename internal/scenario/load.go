package scenario

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

//go:embed presets/*.toml
var presetFS embed.FS

// ParseJSON decodes and validates a scenario spec from JSON. Unknown
// fields are rejected so typos fail loudly instead of silently
// reverting an axis to the paper default.
func ParseJSON(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: bad JSON spec: %w", err)
	}
	// A second document in the stream is a malformed file, not data.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after JSON spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseTOML decodes and validates a scenario spec from the TOML
// subset parseTOML documents. The parsed tree is re-encoded as JSON
// and decoded through the same strict path as ParseJSON, so both
// formats share one field set and one validator.
func ParseTOML(data []byte) (Spec, error) {
	tree, err := parseTOML(data)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: bad TOML spec: %w", err)
	}
	bridge, err := json.Marshal(tree)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: bad TOML spec: %w", err)
	}
	return ParseJSON(bridge)
}

// LoadFile reads a spec from a .toml or .json file.
func LoadFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".toml":
		return ParseTOML(data)
	case ".json":
		return ParseJSON(data)
	default:
		return Spec{}, fmt.Errorf("scenario: %s: unsupported extension (want .toml or .json)", path)
	}
}

// PresetNames lists the embedded preset scenarios, sorted.
func PresetNames() []string {
	entries, err := presetFS.ReadDir("presets")
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".toml"))
	}
	sort.Strings(out)
	return out
}

// Preset loads an embedded preset by name.
func Preset(name string) (Spec, error) {
	data, err := presetFS.ReadFile("presets/" + name + ".toml")
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: unknown preset %q (have: %s)", name, strings.Join(PresetNames(), ", "))
	}
	s, err := ParseTOML(data)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: preset %q: %w", name, err)
	}
	return s, nil
}

// Resolve turns a CLI argument into a spec: a preset name if one
// matches, otherwise a TOML/JSON file path.
func Resolve(arg string) (Spec, error) {
	if !strings.ContainsAny(arg, "./\\") {
		return Preset(arg)
	}
	return LoadFile(arg)
}
