package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
)

// matrixTestOpts keeps the matrix tests quick: 45-day windows, two
// shards per scenario, a four-worker budget.
func matrixTestOpts() Options {
	return Options{BaseSeed: 7, Shards: 2, Scale: 1, Workers: 4, DaysOverride: 45}
}

func loadPresets(t *testing.T, names ...string) []Spec {
	t.Helper()
	specs := make([]Spec, 0, len(names))
	for _, n := range names {
		s, err := Preset(n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// TestMatrixMatchesSolo is the matrix engine's acceptance gate: five
// named presets run concurrently in one invocation, and each
// scenario's aggregates are bit-identical (via the canonical artifact
// encoding) to running that scenario alone with the same seed.
func TestMatrixMatchesSolo(t *testing.T) {
	specs := loadPresets(t,
		"baseline", "paste-only", "forum-only", "malware-heavy", "visible-scripts")
	opts := matrixTestOpts()
	results, err := RunMatrix(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("matrix returned %d results for %d specs", len(results), len(specs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %s failed: %v", specs[i].Name, r.Err)
		}
		if r.Seed != SeedFor(opts.BaseSeed, i, len(specs)) {
			t.Fatalf("scenario %s ran with seed %d, want the stable derivation %d",
				specs[i].Name, r.Seed, SeedFor(opts.BaseSeed, i, len(specs)))
		}
		solo := Run(specs[i], r.Seed, opts)
		if solo.Err != nil {
			t.Fatalf("solo %s failed: %v", specs[i].Name, solo.Err)
		}
		matrixArt, err := BuildArtifact(r)
		if err != nil {
			t.Fatal(err)
		}
		soloArt, err := BuildArtifact(solo)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := matrixArt.Encode()
		if err != nil {
			t.Fatal(err)
		}
		sb, err := soloArt.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mb, sb) {
			t.Fatalf("scenario %s: matrix aggregates differ from solo run at the same seed\nmatrix: %s\nsolo:   %s",
				specs[i].Name, mb, sb)
		}
		if r.Agg.Classes.Total == 0 {
			t.Fatalf("scenario %s observed no accesses (implausible)", specs[i].Name)
		}
	}

	// The comparative report renders one column per scenario with
	// baseline-delta annotations.
	var cols []report.ScenarioColumn
	for _, r := range results {
		cols = append(cols, report.ScenarioColumn{Name: r.Spec.Name, Agg: r.Agg})
	}
	out := report.Comparative(cols)
	for _, want := range []string{`baseline "baseline"`, "paste-only", "malware-heavy", "(+", "pp)"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("comparative report missing %q:\n%s", want, out)
		}
	}
}

// TestAllPresetsRun executes every embedded preset end to end — not
// just the subset the other tests exercise — so an axis only one
// preset touches (locale threading, site overrides, timezone offsets)
// cannot break at runtime while its spec still parses green.
func TestAllPresetsRun(t *testing.T) {
	specs := loadPresets(t, PresetNames()...)
	results, err := RunMatrix(specs, matrixTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("preset %s failed at runtime: %v", r.Spec.Name, r.Err)
			continue
		}
		if r.Agg == nil || r.Events == 0 {
			t.Errorf("preset %s ran no simulation (events=%d)", r.Spec.Name, r.Events)
		}
		if _, err := BuildArtifact(r); err != nil {
			t.Errorf("preset %s: %v", r.Spec.Name, err)
		}
	}
}

// TestMatrixWarmStartMatchesCold is the warm-start engine's
// acceptance gate: a matrix that forks its scenarios from one shared
// post-setup snapshot produces byte-identical artifacts to a matrix
// that cold-simulates every setup, at shard counts 1 and 4 — and the
// warm run really did share (every member of the five-preset
// common-setup group reports WarmStarted), while setups that differ
// (foreign locale, shifted leak date) stayed cold.
func TestMatrixWarmStartMatchesCold(t *testing.T) {
	specs := loadPresets(t,
		"baseline", "paste-only", "forum-only", "malware-heavy", "visible-scripts",
		"foreign-locale", "long-tail-90d")
	sharedSetup := map[string]bool{
		"baseline": true, "paste-only": true, "forum-only": true,
		"malware-heavy": true, "visible-scripts": true,
	}
	for _, shards := range []int{1, 4} {
		opts := matrixTestOpts()
		opts.Shards = shards

		warm, err := RunMatrix(specs, opts)
		if err != nil {
			t.Fatal(err)
		}
		coldOpts := opts
		coldOpts.ColdStart = true
		cold, err := RunMatrix(specs, coldOpts)
		if err != nil {
			t.Fatal(err)
		}

		for i := range specs {
			name := specs[i].Name
			if warm[i].Err != nil || cold[i].Err != nil {
				t.Fatalf("shards=%d %s: warm err %v, cold err %v", shards, name, warm[i].Err, cold[i].Err)
			}
			if warm[i].WarmStarted != sharedSetup[name] {
				t.Errorf("shards=%d %s: WarmStarted=%v, want %v",
					shards, name, warm[i].WarmStarted, sharedSetup[name])
			}
			if cold[i].WarmStarted {
				t.Errorf("shards=%d %s: cold-start matrix reported a warm-started scenario", shards, name)
			}
			wa, err := BuildArtifact(warm[i])
			if err != nil {
				t.Fatal(err)
			}
			ca, err := BuildArtifact(cold[i])
			if err != nil {
				t.Fatal(err)
			}
			wb, err := wa.Encode()
			if err != nil {
				t.Fatal(err)
			}
			cb, err := ca.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wb, cb) {
				t.Fatalf("shards=%d %s: warm-started artifact differs from cold\nwarm: %s\ncold: %s",
					shards, name, wb, cb)
			}
		}
	}
}

// TestMatrixWarmStartCadenceVariants: cadences are post-fork axes,
// so scenarios differing only in scan/scrape cadence share one warm
// setup — and must still match their cold runs byte for byte.
// Regression test: the resume drift verifier once rejected such
// forks because their re-armed trigger chains differ from the
// prototype's.
func TestMatrixWarmStartCadenceVariants(t *testing.T) {
	specs := []Spec{
		{Name: "base-cadence"},
		{Name: "slow-scan", ScanEvery: "6h", ScrapeEvery: "12h"},
	}
	opts := matrixTestOpts()
	warm, err := RunMatrix(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	coldOpts := opts
	coldOpts.ColdStart = true
	cold, err := RunMatrix(specs, coldOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if warm[i].Err != nil {
			t.Fatalf("%s failed warm: %v", specs[i].Name, warm[i].Err)
		}
		if !warm[i].WarmStarted {
			t.Fatalf("%s did not warm-start despite sharing a setup", specs[i].Name)
		}
		wa, _ := BuildArtifact(warm[i])
		ca, _ := BuildArtifact(cold[i])
		wb, _ := wa.Encode()
		cb, _ := ca.Encode()
		if !bytes.Equal(wb, cb) {
			t.Fatalf("%s: warm artifact differs from cold", specs[i].Name)
		}
	}
}

// TestSetupSeedSharing: the derived setup seed is a pure function of
// the setup-relevant axes — plan variants share it, locale/date
// variants do not, and the matrix reports it so artifacts reproduce.
func TestSetupSeedSharing(t *testing.T) {
	specs := loadPresets(t, "baseline", "paste-only", "foreign-locale")
	results, err := RunMatrix(specs, matrixTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.SetupSeed == 0 {
			t.Fatalf("%s: scenario ran in the legacy stream layout (SetupSeed 0)", r.Spec.Name)
		}
	}
	if results[0].SetupSeed != results[1].SetupSeed {
		t.Errorf("baseline and paste-only setups should share a derived seed (%d vs %d)",
			results[0].SetupSeed, results[1].SetupSeed)
	}
	if results[0].SetupSeed == results[2].SetupSeed {
		t.Error("foreign-locale setup must not share the baseline's derived seed")
	}

	// Artifact metadata reproduces standalone: seed + setup_seed alone
	// (no base seed) rebuild the matrix bytes.
	opts := matrixTestOpts()
	opts.BaseSeed = 0
	opts.SetupSeed = results[0].SetupSeed
	solo := Run(specs[0], results[0].Seed, opts)
	if solo.Err != nil {
		t.Fatal(solo.Err)
	}
	ma, _ := BuildArtifact(results[0])
	sa, _ := BuildArtifact(solo)
	mb, _ := ma.Encode()
	sb, _ := sa.Encode()
	if !bytes.Equal(mb, sb) {
		t.Fatal("Options.SetupSeed did not reproduce the matrix artifact standalone")
	}
}

// TestMatrixWorkerBudgetInvariance: the shared worker budget shapes
// only wall-clock concurrency, never results.
func TestMatrixWorkerBudgetInvariance(t *testing.T) {
	specs := loadPresets(t, "baseline", "spam-wave")
	narrow := matrixTestOpts()
	narrow.Workers = 1
	wide := matrixTestOpts()
	wide.Workers = 8
	a, err := RunMatrix(specs, narrow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMatrix(specs, wide)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("run failed: %v / %v", a[i].Err, b[i].Err)
		}
		aa, _ := BuildArtifact(a[i])
		ba, _ := BuildArtifact(b[i])
		ab, _ := aa.Encode()
		bb, _ := ba.Encode()
		if !bytes.Equal(ab, bb) {
			t.Fatalf("scenario %s: results changed with the worker budget", specs[i].Name)
		}
	}
}

// TestRunMatrixRejectsBadInput: empty matrices and duplicate names
// fail before any work starts.
func TestRunMatrixRejectsBadInput(t *testing.T) {
	if _, err := RunMatrix(nil, Options{}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	dup := loadPresets(t, "baseline", "baseline")
	if _, err := RunMatrix(dup, Options{}); err == nil {
		t.Fatal("duplicate scenario names accepted")
	}
	bad := []Spec{{Name: "Bad Name"}}
	if _, err := RunMatrix(bad, Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestWriteArtifacts: one JSON file per scenario lands in the output
// directory, re-readable and stable.
func TestWriteArtifacts(t *testing.T) {
	specs := loadPresets(t, "baseline")
	opts := matrixTestOpts()
	opts.DaysOverride = 20
	results, err := RunMatrix(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := WriteArtifacts(dir, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || filepath.Base(paths[0]) != "baseline.json" {
		t.Fatalf("unexpected artifact paths %v", paths)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	art, err := BuildArtifact(results[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("on-disk artifact differs from canonical encoding")
	}
}
