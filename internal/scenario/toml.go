package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// parseTOML decodes the small TOML subset scenario files use into a
// generic map. Supported constructs:
//
//   - comments (#) and blank lines
//   - [table] and [nested.table] headers
//   - [[array.of.tables]] headers (the [[plan]] / [[sites]] blocks)
//   - key = value with bare or dotted bare keys
//   - values: basic "strings" (with \" \\ \n \t \r escapes),
//     integers, floats, booleans, and single-line arrays of those
//
// Everything else — multi-line strings, inline tables, dates — is a
// parse error, never a panic (FuzzLoadSpec holds the parser to that).
// The result is post-processed by the JSON bridge in load.go, so the
// dialect stays deliberately tiny: one canonical way to write every
// field a Spec has.
func parseTOML(data []byte) (map[string]any, error) {
	if !utf8.Valid(data) {
		return nil, fmt.Errorf("toml: input is not valid UTF-8")
	}
	root := map[string]any{}
	current := root // table new keys land in
	lines := strings.Split(string(data), "\n")
	for i, raw := range lines {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		lineNo := i + 1
		switch {
		case strings.HasPrefix(line, "[["):
			if !strings.HasSuffix(line, "]]") {
				return nil, fmt.Errorf("toml line %d: unterminated [[table]] header", lineNo)
			}
			path, err := splitKeyPath(line[2 : len(line)-2])
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %v", lineNo, err)
			}
			parent, err := descend(root, path[:len(path)-1])
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %v", lineNo, err)
			}
			name := path[len(path)-1]
			entry := map[string]any{}
			switch existing := parent[name].(type) {
			case nil:
				parent[name] = []any{entry}
			case []any:
				parent[name] = append(existing, entry)
			default:
				return nil, fmt.Errorf("toml line %d: %q is not an array of tables", lineNo, name)
			}
			current = entry
		case strings.HasPrefix(line, "["):
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("toml line %d: unterminated [table] header", lineNo)
			}
			path, err := splitKeyPath(line[1 : len(line)-1])
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %v", lineNo, err)
			}
			tbl, err := descend(root, path)
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %v", lineNo, err)
			}
			current = tbl
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("toml line %d: expected key = value", lineNo)
			}
			path, err := splitKeyPath(line[:eq])
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %v", lineNo, err)
			}
			val, err := parseValue(strings.TrimSpace(line[eq+1:]))
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %v", lineNo, err)
			}
			tbl, err := descend(current, path[:len(path)-1])
			if err != nil {
				return nil, fmt.Errorf("toml line %d: %v", lineNo, err)
			}
			name := path[len(path)-1]
			if _, dup := tbl[name]; dup {
				return nil, fmt.Errorf("toml line %d: duplicate key %q", lineNo, name)
			}
			tbl[name] = val
		}
	}
	return root, nil
}

// stripComment removes a trailing # comment, respecting quotes.
func stripComment(line string) string {
	inString := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inString {
				i++ // skip the escaped byte
			}
		case '"':
			inString = !inString
		case '#':
			if !inString {
				return line[:i]
			}
		}
	}
	return line
}

// splitKeyPath parses a (possibly dotted) bare key path.
func splitKeyPath(s string) ([]string, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty key segment in %q", s)
		}
		for _, r := range p {
			if !(r == '_' || r == '-' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				return nil, fmt.Errorf("bad character %q in key %q (bare keys only)", r, p)
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// descend walks (creating) nested tables along path.
func descend(tbl map[string]any, path []string) (map[string]any, error) {
	for _, name := range path {
		switch next := tbl[name].(type) {
		case nil:
			m := map[string]any{}
			tbl[name] = m
			tbl = m
		case map[string]any:
			tbl = next
		case []any:
			// [x.y] after [[x]] targets the latest array entry.
			if len(next) == 0 {
				return nil, fmt.Errorf("%q is an empty array of tables", name)
			}
			last, ok := next[len(next)-1].(map[string]any)
			if !ok {
				return nil, fmt.Errorf("%q is not a table", name)
			}
			tbl = last
		default:
			return nil, fmt.Errorf("%q is not a table", name)
		}
	}
	return tbl, nil
}

// parseValue decodes one scalar or single-line array literal.
func parseValue(s string) (any, error) {
	if s == "" {
		return nil, fmt.Errorf("missing value")
	}
	switch {
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s[0] == '"':
		v, rest, err := parseBasicString(s)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("trailing data %q after string", rest)
		}
		return v, nil
	case s[0] == '[':
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated array %q (arrays must be single-line)", s)
		}
		return parseArray(s[1 : len(s)-1])
	default:
		if i, err := strconv.ParseInt(strings.ReplaceAll(s, "_", ""), 10, 64); err == nil {
			return i, nil
		}
		if f, err := strconv.ParseFloat(strings.ReplaceAll(s, "_", ""), 64); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("unsupported value %q", s)
	}
}

// parseBasicString consumes a leading "..." literal, returning the
// decoded string and the remainder of the input.
func parseBasicString(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				return "", "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated string %q", s)
}

// parseArray decodes a comma-separated list of scalars.
func parseArray(body string) (any, error) {
	out := []any{}
	rest := strings.TrimSpace(body)
	for rest != "" {
		var (
			v   any
			err error
		)
		if rest[0] == '"' {
			var s, tail string
			s, tail, err = parseBasicString(rest)
			if err != nil {
				return nil, err
			}
			v, rest = s, strings.TrimSpace(tail)
		} else {
			end := strings.IndexByte(rest, ',')
			tok := rest
			if end >= 0 {
				tok, rest = rest[:end], rest[end:]
			} else {
				rest = ""
			}
			v, err = parseValue(strings.TrimSpace(tok))
			if err != nil {
				return nil, err
			}
		}
		out = append(out, v)
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return nil, fmt.Errorf("expected comma in array, got %q", rest)
		}
		rest = strings.TrimSpace(rest[1:])
		if rest == "" {
			return nil, fmt.Errorf("trailing comma in array")
		}
	}
	return out, nil
}
