package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/honeynet"
	"repro/internal/report"
)

// RenderFullReport renders a scenario result as the complete artifact
// sequence cmd/honeynet prints for a single run (overview through
// sophistication), from the merged aggregates alone. The output is a
// pure function of the result, which is what lets the golden-report
// corpus pin it byte for byte.
func RenderFullReport(r *Result, resamples int) (string, error) {
	if r == nil {
		return "", fmt.Errorf("scenario: nil result")
	}
	if r.Err != nil {
		return "", r.Err
	}
	agg := r.Agg
	var b strings.Builder
	section := func(id, body string) {
		fmt.Fprintf(&b, "===== %s =====\n%s\n", id, body)
	}
	fmt.Fprintf(&b, "scenario %s (seed %d, scale %d)\n\n", r.Spec.Name, r.Seed, r.Scale)

	section("overview", report.Overview(agg.Overview()))

	ids := make([]int, 0, len(r.GroupCounts))
	for id := range r.GroupCounts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var rows []report.Table1Row
	for _, id := range ids {
		rows = append(rows, report.Table1Row{Group: id, Count: r.GroupCounts[id], Label: honeynet.PaperGroupLabel(id)})
	}
	section("table1", report.Table1(rows))

	section("fig1", report.Figure1Sketches(agg.Durations))
	section("fig2", report.Figure2(agg.PerOutlet))
	section("fig3", report.Figure3Sketches(agg.TimeToAccess))
	section("fig4", report.Figure4Buckets(agg.Timeline, agg.TimelineMax))
	section("sysconfig", report.SystemConfig(agg.ConfigRows()))
	section("fig5a", report.Figure5("UK/London", agg.MedianRadii(analysis.HintUK)))
	section("fig5b", report.Figure5("US/Pontiac", agg.MedianRadii(analysis.HintUS)))
	section("cvm", report.Significance(agg.LocationSignificance(resamples, r.Seed)))

	kw := agg.KeywordInference(r.Contents, r.DropWords)
	section("table2", report.Table2(kw.TopSearched(10), kw.TopCorpus(10)))

	section("cases", report.CaseStudies(r.Blackmailers, len(agg.Drafts), r.Inquiries))
	section("sophistication", report.Sophistication(agg.ConfigRows(), agg.LocationSignificance(resamples, r.Seed)))
	// The defender section exists only when the scenario armed the C3
	// loop: a defender-disabled run renders byte-identically to one
	// from a build without the subsystem.
	if len(r.Defender) > 0 {
		section("defender", report.Defender(DefenderRows(r.Defender)))
	}
	return b.String(), nil
}

// DefenderRows converts the engine's detection-race outcomes to the
// report's neutral rows (report does not import the simulation).
func DefenderRows(outcomes []honeynet.DefenderOutcome) []report.DefenderRow {
	rows := make([]report.DefenderRow, 0, len(outcomes))
	for _, o := range outcomes {
		rows = append(rows, report.DefenderRow{
			Account:    o.Account,
			Group:      o.Group.Label,
			Channel:    string(o.Group.Channel),
			LeakAt:     o.LeakAt,
			Detected:   o.Detected,
			DetectedAt: o.DetectedAt,
			Exploited:  o.Exploited,
			ExploitAt:  o.ExploitAt,
		})
	}
	return rows
}
