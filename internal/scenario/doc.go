// Package scenario turns the single-reproduction harness into a
// multi-experiment platform: declarative, validated experiment
// variants ("scenarios") that run concurrently on a shared worker
// budget and get compared in one report.
//
// The paper's findings (§4.2–§4.8) all come from one configuration —
// the Table 1 plan, one leak date, English decoys, a fixed outlet
// mix. A Spec varies any of those axes without touching Go code: plan
// composition, outlet catalogue and cadence, attacker-calibration
// overrides per channel, decoy locale/timezone, leak date, scan and
// scrape cadences, and the engine toggles (streaming, dirty
// tracking, visible scripts). Specs load from embedded named presets
// (Presets, e.g. "baseline", "paste-only", "malware-heavy") or from
// user TOML/JSON files (LoadFile; the TOML dialect is the small
// subset parseTOML documents).
//
// RunMatrix executes N scenarios concurrently: every scenario keeps
// the sharded engine's determinism contract (per-scenario seeds via
// rng stable derivation, simtime.ShardSet shards inside each
// scenario) while all scenarios draw shard workers from one
// simtime.WorkerPool, so matrix wall-clock cost is bounded however
// wide the matrix is. A scenario's aggregates are bit-identical to
// running it alone with the same seed (TestMatrixMatchesSolo).
//
// Artifacts (one canonical JSON file per scenario, WriteArtifacts)
// support cross-run diffing; report.Comparative renders per-scenario
// aggregate columns with deltas against the baseline column (class
// tallies, §4.3 duration CDFs, §4.5 location tables).
package scenario
