package snapshot

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"testing"
	"testing/iotest"
)

// fleetState builds a state with n accounts on top of sampleState's
// fully populated meta — enough to span multiple canonical account
// blocks (BlockAccounts = 64) when n is large.
func fleetState(n int) *State {
	s := sampleState()
	s.Cursors = nil
	s.Accounts = nil
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("a%04d@x.example", i)
		s.Cursors = append(s.Cursors, Cursor{Account: addr})
		s.Accounts = append(s.Accounts, Account{
			Address:  addr,
			Password: fmt.Sprintf("hp-%04d", i),
			Owner:    "Fleet Owner",
			SendFrom: "capture@sinkhole.example",
			NextID:   2,
			Messages: []Message{{
				ID: 1, Folder: "inbox", From: "c@y.example", To: addr,
				Subject: fmt.Sprintf("invoice %d", i),
				Body:    "wire transfer details and account statement",
				DateNS:  1434000000000000000 + int64(i),
			}},
		})
	}
	return s
}

// TestStreamMatchesEncode: streaming accounts one at a time through an
// Encoder produces byte-for-byte what the whole-state Encode produces,
// at sizes below, at, and across the canonical block boundary; and a
// Decoder streams the same accounts back out before returning io.EOF.
func TestStreamMatchesEncode(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		st := fleetState(n)
		batch := st.Encode()

		var buf bytes.Buffer
		e, err := NewEncoder(&buf, st, n)
		if err != nil {
			t.Fatalf("n=%d: NewEncoder: %v", n, err)
		}
		for i := range st.Accounts {
			if err := e.WriteAccount(&st.Accounts[i]); err != nil {
				t.Fatalf("n=%d: WriteAccount(%d): %v", n, i, err)
			}
		}
		if err := e.Close(); err != nil {
			t.Fatalf("n=%d: Close: %v", n, err)
		}
		if !bytes.Equal(buf.Bytes(), batch) {
			t.Fatalf("n=%d: streamed encoding differs from Encode (%d vs %d bytes)", n, buf.Len(), len(batch))
		}

		d, err := NewDecoder(bytes.NewReader(batch))
		if err != nil {
			t.Fatalf("n=%d: NewDecoder: %v", n, err)
		}
		if d.Accounts() != n {
			t.Fatalf("n=%d: decoder declares %d accounts", n, d.Accounts())
		}
		meta := *st
		meta.Accounts = nil
		if !reflect.DeepEqual(d.Meta(), &meta) {
			t.Fatalf("n=%d: decoded meta drifted", n)
		}
		var a Account
		for i := 0; i < n; i++ {
			if err := d.Next(&a); err != nil {
				t.Fatalf("n=%d: Next(%d): %v", n, i, err)
			}
			if !reflect.DeepEqual(a, st.Accounts[i]) {
				t.Fatalf("n=%d: account %d drifted through the stream", n, i)
			}
		}
		if err := d.Next(&a); err != io.EOF {
			t.Fatalf("n=%d: Next after last account = %v, want io.EOF", n, err)
		}
		if err := d.Next(&a); err != io.EOF {
			t.Fatalf("n=%d: second Next after EOF = %v, want io.EOF", n, err)
		}
	}
}

// TestStreamShortReads: the decoder must survive io.Readers that
// return fewer bytes than asked — one byte at a time, or half the
// request — without misparsing or false corruption errors.
func TestStreamShortReads(t *testing.T) {
	st := fleetState(130)
	data := st.Encode()
	wrappers := map[string]func(io.Reader) io.Reader{
		"one-byte": iotest.OneByteReader,
		"half":     iotest.HalfReader,
	}
	for name, wrap := range wrappers {
		d, err := NewDecoder(wrap(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("%s: NewDecoder: %v", name, err)
		}
		var a Account
		for i := 0; i < 130; i++ {
			if err := d.Next(&a); err != nil {
				t.Fatalf("%s: Next(%d): %v", name, i, err)
			}
			if !reflect.DeepEqual(a, st.Accounts[i]) {
				t.Fatalf("%s: account %d drifted", name, i)
			}
		}
		if err := d.Next(&a); err != io.EOF {
			t.Fatalf("%s: want io.EOF, got %v", name, err)
		}
	}
}

// TestEncoderCountContract: the account count declared to NewEncoder
// is a contract — writing more accounts errors, closing with accounts
// still owed errors, and writing after Close errors. A truncated or
// padded checkpoint must never look complete.
func TestEncoderCountContract(t *testing.T) {
	st := fleetState(2)

	var buf bytes.Buffer
	e, err := NewEncoder(&buf, st, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteAccount(&st.Accounts[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteAccount(&st.Accounts[1]); err == nil {
		t.Fatal("WriteAccount beyond the declared count accepted")
	}

	buf.Reset()
	e, err = NewEncoder(&buf, st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteAccount(&st.Accounts[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err == nil {
		t.Fatal("Close with declared accounts unwritten accepted")
	}

	buf.Reset()
	e, err = NewEncoder(&buf, st, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Accounts {
		if err := e.WriteAccount(&st.Accounts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteAccount(&st.Accounts[0]); err == nil {
		t.Fatal("WriteAccount after Close accepted")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := Decode(buf.Bytes()); err != nil {
		t.Fatalf("well-formed stream rejected: %v", err)
	}
}

// TestDecoderRejectsNonCanonicalChunking: a stream whose account
// frames hold anything other than BlockAccounts per full block is
// rejected even when every checksum is valid — chunking freedom would
// give one State two byte representations and break the fuzz target's
// re-encode contract.
func TestDecoderRejectsNonCanonicalChunking(t *testing.T) {
	st := fleetState(65)
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, st, 65)
	if err != nil {
		t.Fatal(err)
	}
	// Split the accounts 32/33 instead of the canonical 64/1 by forcing
	// an early frame flush between them. All checksums stay valid.
	for i := 0; i < 32; i++ {
		if err := e.WriteAccount(&st.Accounts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.flushFrame(frameAccounts); err != nil {
		t.Fatal(err)
	}
	e.block = 0
	for i := 32; i < 65; i++ {
		if err := e.WriteAccount(&st.Accounts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(buf.Bytes()); err == nil {
		t.Fatal("non-canonically chunked stream accepted")
	}
}

// TestStreamCorruptionMultiBlock extends the exhaustive small-state
// corruption test to a snapshot spanning multiple account frames:
// sampled single-byte flips and truncations must all error, whichever
// frame they land in.
func TestStreamCorruptionMultiBlock(t *testing.T) {
	data := fleetState(130).Encode()
	for i := 0; i < len(data); i += 13 {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x40
		if _, err := Decode(mutated); err == nil {
			t.Fatalf("flip at byte %d of %d accepted", i, len(data))
		}
	}
	for n := 0; n < len(data); n += 7 {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
}

// TestEncoderAllocsAreOBlock pins the codec's memory contract: the
// encoder buffers one canonical block, so streaming 16x the accounts
// through it must not cost meaningfully more allocations per encode —
// the payload buffer is reused frame to frame.
func TestEncoderAllocsAreOBlock(t *testing.T) {
	encode := func(st *State) func() {
		n := len(st.Accounts)
		return func() {
			e, err := NewEncoder(io.Discard, st, n)
			if err != nil {
				t.Fatal(err)
			}
			for i := range st.Accounts {
				if err := e.WriteAccount(&st.Accounts[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	small := testing.AllocsPerRun(10, encode(fleetState(BlockAccounts)))
	big := testing.AllocsPerRun(10, encode(fleetState(16*BlockAccounts)))
	if big > small+8 {
		t.Errorf("encoder allocations scale with fleet size: %v allocs at %d accounts vs %v at %d",
			big, 16*BlockAccounts, small, BlockAccounts)
	}
}

// BenchmarkEncoderStream measures the streaming encoder at one block
// and at sixteen blocks. With -benchmem the allocs/op column is the
// O(block) claim made observable: it stays flat as the account count
// grows 16x, because the encoder never holds more than one frame.
func BenchmarkEncoderStream(b *testing.B) {
	for _, n := range []int{BlockAccounts, 16 * BlockAccounts} {
		st := fleetState(n)
		b.Run(fmt.Sprintf("accounts=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := NewEncoder(io.Discard, st, n)
				if err != nil {
					b.Fatal(err)
				}
				for j := range st.Accounts {
					if err := e.WriteAccount(&st.Accounts[j]); err != nil {
						b.Fatal(err)
					}
				}
				if err := e.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecoderStream measures the streaming decoder on the same
// sizes. Its allocations necessarily include the decoded strings it
// hands to the caller (those scale with the fleet), but the buffers it
// holds — one frame, one bounded read chunk — do not.
func BenchmarkDecoderStream(b *testing.B) {
	for _, n := range []int{BlockAccounts, 16 * BlockAccounts} {
		data := fleetState(n).Encode()
		b.Run(fmt.Sprintf("accounts=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var a Account
			for i := 0; i < b.N; i++ {
				d, err := NewDecoder(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				for {
					if err := d.Next(&a); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
