package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode hammers the decoder with arbitrary bytes:
// corrupt or truncated snapshots must produce an error — never a
// panic, never an over-allocation — and anything the decoder does
// accept must re-encode to exactly the bytes it was given (the
// canonical-form contract, which also proves the decoder cannot be
// tricked into a state the encoder could not have produced).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(magic[:])
	full := sampleState().Encode()
	f.Add(full)
	f.Add(full[:len(full)/2])
	truncated := append([]byte(nil), full[:len(full)-9]...)
	f.Add(truncated)
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	empty := (&State{}).Encode()
	f.Add(empty)
	oneShard := (&State{Shards: []Shard{{Pending: 1, Chains: []Chain{{IntervalNS: 5}}}}}).Encode()
	f.Add(oneShard)
	// A fleet spanning multiple canonical account frames, plus a cut
	// inside its second frame, so the fuzzer starts with the chunked
	// framing in its corpus — not just single-block snapshots.
	chunked := fleetState(BlockAccounts + 6).Encode()
	f.Add(chunked)
	f.Add(chunked[:len(chunked)-20])

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if again := s.Encode(); !bytes.Equal(again, data) {
			t.Fatalf("accepted non-canonical input:\nin:  %x\nout: %x", data, again)
		}
	})
}
