package snapshot

import (
	"bytes"
	"reflect"
	"testing"
)

// sampleState builds a small but fully populated state touching every
// field the codec serializes.
func sampleState() *State {
	return &State{
		Config: Config{
			Seed: -42, SetupSeed: 7, Fingerprint: 0xdeadbeefcafe,
			StartNS: 1435190400000000000, DurationNS: 86400e9, MailboxSize: 3,
			ScanIntervalNS: 600e9, ScrapeIntervalNS: 3600e9, Shards: 2, Scale: 1,
			VisibleScripts: true, DisableCaseStudies: false,
			DisableStreaming: false, DisableDirtyTracking: true,
			LoginRisk:         LoginRisk{Enabled: true, BlockTor: true, MaxKmFromHome: 1234.5},
			CustomSites:       true,
			DefenderCadenceNS: 43200e9, C3BucketBits: 12, C3Variants: true,
		},
		Plan: []Block{
			{ID: 1, Count: 2, Channel: "paste", Hint: "", Label: "popular paste sites"},
			{ID: 5, Count: 1, Channel: "malware", Hint: "uk", Label: "malware"},
		},
		Root:  Stream{Seed: -42, Pos: 3},
		Setup: Stream{Seed: 7, Pos: 991},
		Shards: []Shard{
			{NowNS: 1435190400000000000, Seq: 3, Fired: 0, Pending: 3, Chains: []Chain{
				{IntervalNS: 600e9, PhaseNS: 0, Entries: 2},
				{IntervalNS: 3600e9, PhaseNS: 0, Entries: 1},
			}},
			{NowNS: 1435190400000000000, Seq: 3, Fired: 0, Pending: 3},
		},
		Cursors:  []Cursor{{Account: "a@x.example", LastSeen: 0}, {Account: "b@x.example", LastSeen: 0}},
		Defender: []Cursor{{Account: "a@x.example", LastSeen: 0}, {Account: "b@x.example", LastSeen: 0}},
		Accounts: []Account{
			{
				Address: "a@x.example", Password: "hp-0001", Owner: "Ada X",
				SendFrom: "capture@sinkhole.example", NextID: 3,
				Messages: []Message{
					{ID: 1, Folder: "inbox", From: "c@y.example", To: "a@x.example",
						Subject: "re: budget", Body: "see attached\nthanks", DateNS: 1434000000000000000},
					{ID: 2, Folder: "sent", From: "a@x.example", To: "c@y.example",
						Subject: "budget", Body: "draft v2", DateNS: 1434100000000000000,
						Read: true, Starred: true, Labels: []string{"finance", "q2"}},
				},
			},
			{Address: "b@x.example", Password: "hp-0002", Owner: "Bo Y", NextID: 1},
		},
	}
}

// TestRoundTrip: Decode(Encode(s)) reproduces the state exactly, and
// re-encoding reproduces the bytes exactly (canonical form).
func TestRoundTrip(t *testing.T) {
	s := sampleState()
	data := s.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip lost state:\nin:  %+v\nout: %+v", s, got)
	}
	if again := got.Encode(); !bytes.Equal(data, again) {
		t.Fatal("re-encoding a decoded state changed the bytes (non-canonical codec)")
	}
}

// TestDecodeRejectsCorruption: every single-byte flip and every
// truncation of a valid snapshot must error — the checksum or the
// strict field readers catch it — and never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	data := sampleState().Encode()
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x40
		if _, err := Decode(mutated); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestDecodeRejectsWrongVersion: a bumped version byte is refused with
// a version error, not misparsed.
func TestDecodeRejectsWrongVersion(t *testing.T) {
	data := sampleState().Encode()
	// The version byte sits in the magic, before any frame checksum, so
	// the version check itself is what fires.
	data[7] = Version + 1
	if _, err := Decode(data); err == nil {
		t.Fatal("future format version accepted")
	}
}

// TestFileRoundTrip: WriteFile/ReadFile preserve the canonical bytes.
func TestFileRoundTrip(t *testing.T) {
	s := sampleState()
	path := t.TempDir() + "/exp.snap"
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("file round trip lost state")
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatal("missing file read succeeded")
	}
}
