package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// writer builds the canonical byte form: unsigned fields as minimal
// uvarints, signed fields zigzag-coded, strings length-prefixed,
// floats as fixed 8-byte little-endian IEEE-754 bits.
type writer struct {
	buf []byte
}

func (w *writer) raw(b []byte) { w.buf = append(w.buf, b...) }

func (w *writer) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

func (w *writer) i64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

func (w *writer) count(n int) { w.u64(uint64(n)) }

func (w *writer) str(s string) {
	w.count(len(s))
	w.buf = append(w.buf, s...)
}

func (w *writer) bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// reader is the strict inverse. Every accessor names the field it is
// reading so corruption errors point at the exact spot, varints must
// be minimally encoded (one valid byte form per State — the canonical
// round-trip FuzzSnapshotDecode asserts), and element counts are
// bounded by the remaining input so hostile headers cannot force
// over-allocation.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) raw(dst []byte) error {
	if r.remaining() < len(dst) {
		return fmt.Errorf("snapshot: truncated at byte %d", r.off)
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
	return nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (r *reader) u64(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("snapshot: truncated or overlong %s at byte %d", what, r.off)
	}
	if n != uvarintLen(v) {
		return 0, fmt.Errorf("snapshot: non-minimal varint for %s at byte %d", what, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) i64(what string) (int64, error) {
	u, err := r.u64(what)
	if err != nil {
		return 0, err
	}
	// Inverse zigzag, matching binary.AppendVarint's encoding.
	return int64(u>>1) ^ -int64(u&1), nil
}

// intField reads a signed field that must fit the platform int.
func (r *reader) intField(what string) (int, error) {
	v, err := r.i64(what)
	if err != nil {
		return 0, err
	}
	if v != int64(int(v)) {
		return 0, fmt.Errorf("snapshot: %s %d overflows int", what, v)
	}
	return int(v), nil
}

// count reads an element count; each element needs at least one byte,
// so any count beyond the remaining input is corrupt by construction.
func (r *reader) count(what string) (int, error) {
	v, err := r.u64(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, fmt.Errorf("snapshot: %s count %d exceeds remaining %d bytes", what, v, r.remaining())
	}
	return int(v), nil
}

func (r *reader) str(what string) (string, error) {
	n, err := r.count(what + " length")
	if err != nil {
		return "", err
	}
	if r.remaining() < n {
		return "", fmt.Errorf("snapshot: truncated %s at byte %d", what, r.off)
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *reader) bool(what string) (bool, error) {
	if r.remaining() < 1 {
		return false, fmt.Errorf("snapshot: truncated %s at byte %d", what, r.off)
	}
	b := r.data[r.off]
	r.off++
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("snapshot: %s has non-boolean byte %#x", what, b)
	}
}

func (r *reader) f64(what string) (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("snapshot: truncated %s at byte %d", what, r.off)
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return math.Float64frombits(v), nil
}
