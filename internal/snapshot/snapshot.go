// Package snapshot defines the deterministic, versioned on-disk form
// of a honeynet experiment frozen at its post-setup boundary, and the
// codec that reads and writes it.
//
// A snapshot captures everything the setup phase produced — the full
// webmail account stores (mailboxes, folders, flags), the compiled
// deployment plan, the rng stream positions, and the observable state
// of every shard's scheduler, trigger wheel and monitor cursor — as
// pure data. Pending scheduler events carry closures and cannot cross
// a process boundary, so the scheduler/wheel/cursor sections are
// stored as verifiable descriptors: honeynet.Resume re-arms the
// triggers by replaying the instrumentation sequence and then checks
// the rebuilt state against these descriptors, erroring on any drift
// instead of silently diverging. Save → load → run-to-deadline is
// byte-identical to an uninterrupted run (TestSnapshotInvariance).
//
// Format: an 8-byte magic ("hnysnap" + format version) followed by a
// stream of checksummed frames — one meta frame (config, plan,
// streams, shards, cursors, account count), the accounts in canonical
// fixed-size blocks, and a trailer carrying a rolling checksum (see
// stream.go). Fields are zigzag/uvarint-coded in fixed order and all
// varints must be minimally encoded, so every State has exactly one
// valid byte representation — Decode(Encode(s)) round-trips
// byte-for-byte, which FuzzSnapshotDecode leans on. Decoding untrusted
// bytes returns an error for any corruption or truncation; it never
// panics and never allocates more than the input length can justify.
//
// The framing exists for memory, not just integrity: Encoder and
// Decoder stream accounts one at a time, so writing or reading a
// fleet-scale checkpoint holds one account block in memory, not the
// whole fleet. Encode/Decode are convenience wrappers over them.
package snapshot

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
)

// Version is the current snapshot format version, embedded in the
// magic. Decoders reject other versions rather than guessing.
// Version 2 replaced the whole-payload v1 layout with the framed
// streaming container; version 3 added Config.SetupLayout (the setup
// stream-derivation layout, which also entered the fingerprint);
// version 4 added the C3 defender section (Config.DefenderCadenceNS,
// C3BucketBits, C3Variants and the State.Defender cursor list).
const Version = 4

// magic identifies a snapshot file: 7 fixed bytes plus the version.
var magic = [8]byte{'h', 'n', 'y', 's', 'n', 'a', 'p', Version}

// State is one experiment frozen at the post-setup boundary.
type State struct {
	Config   Config
	Plan     []Block   // the un-expanded deployment plan
	Root     Stream    // experiment root stream at the boundary
	Setup    Stream    // setup stream at its final position (diagnostic)
	Shards   []Shard   // per-shard scheduler/wheel descriptors
	Cursors  []Cursor  // monitor scrape cursors, sorted by account
	Defender []Cursor  // defender detection cursors (empty: defender off)
	Accounts []Account // full account stores, in plan order
}

// Config is the serializable core of honeynet.Config. Sites, attacker
// populations and locale pools are code-backed structures that only
// shape the post-fork phases, so they are not stored — only flagged,
// so a bare Resume on a snapshot that depended on them can refuse
// instead of silently substituting defaults.
type Config struct {
	Seed        int64
	SetupSeed   int64  // 0: setup drew from the root stream (legacy layout)
	SetupLayout int    // honeynet.SetupLayout* constant the setup ran under
	Fingerprint uint64 // hash of the setup-relevant fields; Resume must match

	StartNS          int64
	DurationNS       int64
	MailboxSize      int
	ScanIntervalNS   int64
	ScrapeIntervalNS int64
	Shards           int
	Scale            int

	VisibleScripts       bool
	DisableCaseStudies   bool
	DisableStreaming     bool
	DisableDirtyTracking bool

	LoginRisk LoginRisk

	CustomSites       bool
	CustomPopulations bool
	CustomLocale      bool

	// C3 defender loop (v4): cadence of the detection check (0 =
	// defender disabled), k-anonymity prefix width of the per-shard
	// index fragments, and whether MIGP-style variants are indexed.
	DefenderCadenceNS int64
	C3BucketBits      int
	C3Variants        bool
}

// LoginRisk mirrors webmail.LoginRiskConfig.
type LoginRisk struct {
	Enabled       bool
	BlockTor      bool
	BlockProxies  bool
	MaxKmFromHome float64
}

// Block is one plan entry (honeynet.GroupSpec) in neutral form.
type Block struct {
	ID      int
	Count   int
	Channel string
	Hint    string
	Label   string
}

// Stream is one rng stream position: NewAt(Seed, Pos) resumes it.
type Stream struct {
	Seed int64
	Pos  uint64
}

// Shard pins one shard scheduler's observable state.
type Shard struct {
	NowNS   int64
	Seq     uint64
	Fired   uint64
	Pending int
	Chains  []Chain
}

// Chain is one trigger-wheel bucket descriptor.
type Chain struct {
	IntervalNS int64
	PhaseNS    int64
	Entries    int
}

// Cursor is one monitor scrape cursor.
type Cursor struct {
	Account  string
	LastSeen uint64
}

// Account is one webmail account's full server-side state.
type Account struct {
	Address  string
	Password string
	Owner    string
	SendFrom string
	NextID   int64
	Messages []Message
}

// Message is one stored mail.
type Message struct {
	ID      int64
	Folder  string
	From    string
	To      string
	Subject string
	Body    string
	DateNS  int64
	Read    bool
	Starred bool
	Labels  []string
}

// sizeHint estimates the encoded size so Encode allocates its buffer
// once instead of regrowing through megabytes of appends (mailbox
// text dominates; varint field overhead is budgeted per field).
func (s *State) sizeHint() int {
	n := 256                                      // magic + config + streams + trailer
	n += 16 * (2 + len(s.Accounts)/BlockAccounts) // frame headers + checksums
	n += len(s.Plan) * 96
	for _, sh := range s.Shards {
		n += 64 + len(sh.Chains)*24
	}
	for _, c := range s.Cursors {
		n += len(c.Account) + 16
	}
	for _, c := range s.Defender {
		n += len(c.Account) + 16
	}
	for _, a := range s.Accounts {
		n += len(a.Address) + len(a.Password) + len(a.Owner) + len(a.SendFrom) + 32
		for _, m := range a.Messages {
			n += len(m.Folder) + len(m.From) + len(m.To) + len(m.Subject) + len(m.Body) + 48
			for _, l := range m.Labels {
				n += len(l) + 8
			}
		}
	}
	return n
}

// Encode serializes the state into its canonical byte form — a
// convenience wrapper that streams s through an Encoder into one
// buffer. Callers holding fleet-scale state should prefer NewEncoder
// against a file or socket and skip the intermediate buffer entirely.
func (s *State) Encode() []byte {
	var buf bytes.Buffer
	buf.Grow(s.sizeHint())
	enc, err := NewEncoder(&buf, s, len(s.Accounts))
	if err != nil {
		panic(err) // a bytes.Buffer write cannot fail
	}
	for i := range s.Accounts {
		if err := enc.WriteAccount(&s.Accounts[i]); err != nil {
			panic(err)
		}
	}
	if err := enc.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// encodeMeta writes every non-account section plus the account count
// — the meta frame's payload.
func (s *State) encodeMeta(w *writer, accounts int) {
	s.Config.encode(w)
	w.count(len(s.Plan))
	for _, b := range s.Plan {
		w.i64(int64(b.ID))
		w.i64(int64(b.Count))
		w.str(b.Channel)
		w.str(b.Hint)
		w.str(b.Label)
	}
	s.Root.encode(w)
	s.Setup.encode(w)
	w.count(len(s.Shards))
	for _, sh := range s.Shards {
		w.i64(sh.NowNS)
		w.u64(sh.Seq)
		w.u64(sh.Fired)
		w.count(sh.Pending)
		w.count(len(sh.Chains))
		for _, c := range sh.Chains {
			w.i64(c.IntervalNS)
			w.i64(c.PhaseNS)
			w.count(c.Entries)
		}
	}
	w.count(len(s.Cursors))
	for _, c := range s.Cursors {
		w.str(c.Account)
		w.u64(c.LastSeen)
	}
	w.count(len(s.Defender))
	for _, c := range s.Defender {
		w.str(c.Account)
		w.u64(c.LastSeen)
	}
	w.count(accounts)
}

// encodeAccount writes one account record into an accounts frame.
func encodeAccount(w *writer, a *Account) {
	w.str(a.Address)
	w.str(a.Password)
	w.str(a.Owner)
	w.str(a.SendFrom)
	w.i64(a.NextID)
	w.count(len(a.Messages))
	for _, m := range a.Messages {
		w.i64(m.ID)
		w.str(m.Folder)
		w.str(m.From)
		w.str(m.To)
		w.str(m.Subject)
		w.str(m.Body)
		w.i64(m.DateNS)
		w.bool(m.Read)
		w.bool(m.Starred)
		w.count(len(m.Labels))
		for _, l := range m.Labels {
			w.str(l)
		}
	}
}

func (c *Config) encode(w *writer) {
	w.i64(c.Seed)
	w.i64(c.SetupSeed)
	w.i64(int64(c.SetupLayout))
	w.u64(c.Fingerprint)
	w.i64(c.StartNS)
	w.i64(c.DurationNS)
	w.i64(int64(c.MailboxSize))
	w.i64(c.ScanIntervalNS)
	w.i64(c.ScrapeIntervalNS)
	w.i64(int64(c.Shards))
	w.i64(int64(c.Scale))
	w.bool(c.VisibleScripts)
	w.bool(c.DisableCaseStudies)
	w.bool(c.DisableStreaming)
	w.bool(c.DisableDirtyTracking)
	w.bool(c.LoginRisk.Enabled)
	w.bool(c.LoginRisk.BlockTor)
	w.bool(c.LoginRisk.BlockProxies)
	w.f64(c.LoginRisk.MaxKmFromHome)
	w.bool(c.CustomSites)
	w.bool(c.CustomPopulations)
	w.bool(c.CustomLocale)
	w.i64(c.DefenderCadenceNS)
	w.i64(int64(c.C3BucketBits))
	w.bool(c.C3Variants)
}

func (s *Stream) encode(w *writer) {
	w.i64(s.Seed)
	w.u64(s.Pos)
}

// Decode parses a canonical snapshot, verifying magic, version, every
// frame checksum and the trailer. It returns a descriptive error on
// any malformed input. Callers resuming fleet-scale snapshots should
// prefer NewDecoder and stream the accounts instead of materializing
// them all here.
func Decode(data []byte) (*State, error) {
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return decodeAll(d)
}

// decodeAll drains a decoder into a fully materialized State.
func decodeAll(d *Decoder) (*State, error) {
	s := d.Meta()
	for {
		var a Account
		err := d.Next(&a)
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		s.Accounts = append(s.Accounts, a)
	}
}

// decodeMeta parses the meta frame payload: every non-account section
// plus the declared account count.
func (s *State) decodeMeta(r *reader) (accounts int, err error) {
	if err = s.Config.decode(r); err != nil {
		return 0, err
	}
	nPlan, err := r.count("plan blocks")
	if err != nil {
		return 0, err
	}
	if nPlan > 0 {
		s.Plan = make([]Block, nPlan)
	}
	for i := range s.Plan {
		b := &s.Plan[i]
		if b.ID, err = r.intField("plan id"); err != nil {
			return 0, err
		}
		if b.Count, err = r.intField("plan count"); err != nil {
			return 0, err
		}
		if b.Channel, err = r.str("plan channel"); err != nil {
			return 0, err
		}
		if b.Hint, err = r.str("plan hint"); err != nil {
			return 0, err
		}
		if b.Label, err = r.str("plan label"); err != nil {
			return 0, err
		}
	}
	if err = s.Root.decode(r, "root stream"); err != nil {
		return 0, err
	}
	if err = s.Setup.decode(r, "setup stream"); err != nil {
		return 0, err
	}
	nShards, err := r.count("shards")
	if err != nil {
		return 0, err
	}
	if nShards > 0 {
		s.Shards = make([]Shard, nShards)
	}
	for i := range s.Shards {
		sh := &s.Shards[i]
		if sh.NowNS, err = r.i64("shard now"); err != nil {
			return 0, err
		}
		if sh.Seq, err = r.u64("shard seq"); err != nil {
			return 0, err
		}
		if sh.Fired, err = r.u64("shard fired"); err != nil {
			return 0, err
		}
		if sh.Pending, err = r.count("shard pending"); err != nil {
			return 0, err
		}
		nChains, err := r.count("shard chains")
		if err != nil {
			return 0, err
		}
		if nChains > 0 {
			sh.Chains = make([]Chain, nChains)
		}
		for j := range sh.Chains {
			c := &sh.Chains[j]
			if c.IntervalNS, err = r.i64("chain interval"); err != nil {
				return 0, err
			}
			if c.PhaseNS, err = r.i64("chain phase"); err != nil {
				return 0, err
			}
			if c.Entries, err = r.count("chain entries"); err != nil {
				return 0, err
			}
		}
	}
	nCursors, err := r.count("cursors")
	if err != nil {
		return 0, err
	}
	if nCursors > 0 {
		s.Cursors = make([]Cursor, nCursors)
	}
	for i := range s.Cursors {
		c := &s.Cursors[i]
		if c.Account, err = r.str("cursor account"); err != nil {
			return 0, err
		}
		if c.LastSeen, err = r.u64("cursor value"); err != nil {
			return 0, err
		}
	}
	nDefender, err := r.count("defender cursors")
	if err != nil {
		return 0, err
	}
	if nDefender > 0 {
		s.Defender = make([]Cursor, nDefender)
	}
	for i := range s.Defender {
		c := &s.Defender[i]
		if c.Account, err = r.str("defender account"); err != nil {
			return 0, err
		}
		if c.LastSeen, err = r.u64("defender value"); err != nil {
			return 0, err
		}
	}
	// The accounts live in their own frames, so their count cannot be
	// bounded by this frame's remaining bytes the way r.count bounds
	// in-frame collections; the per-frame reads in the Decoder bound
	// the actual allocation instead.
	nAccounts, err := r.u64("accounts")
	if err != nil {
		return 0, err
	}
	if nAccounts > maxFrameLen {
		return 0, fmt.Errorf("snapshot: account count %d exceeds limit", nAccounts)
	}
	return int(nAccounts), nil
}

// decodeAccount parses one account record from an accounts frame.
func decodeAccount(r *reader, a *Account) error {
	var err error
	if a.Address, err = r.str("account address"); err != nil {
		return err
	}
	if a.Password, err = r.str("account password"); err != nil {
		return err
	}
	if a.Owner, err = r.str("account owner"); err != nil {
		return err
	}
	if a.SendFrom, err = r.str("account send-from"); err != nil {
		return err
	}
	if a.NextID, err = r.i64("account next id"); err != nil {
		return err
	}
	nMsgs, err := r.count("messages")
	if err != nil {
		return err
	}
	if nMsgs > 0 {
		a.Messages = make([]Message, nMsgs)
	}
	for j := range a.Messages {
		m := &a.Messages[j]
		if m.ID, err = r.i64("message id"); err != nil {
			return err
		}
		if m.Folder, err = r.str("message folder"); err != nil {
			return err
		}
		if m.From, err = r.str("message from"); err != nil {
			return err
		}
		if m.To, err = r.str("message to"); err != nil {
			return err
		}
		if m.Subject, err = r.str("message subject"); err != nil {
			return err
		}
		if m.Body, err = r.str("message body"); err != nil {
			return err
		}
		if m.DateNS, err = r.i64("message date"); err != nil {
			return err
		}
		if m.Read, err = r.bool("message read flag"); err != nil {
			return err
		}
		if m.Starred, err = r.bool("message starred flag"); err != nil {
			return err
		}
		nLabels, err := r.count("labels")
		if err != nil {
			return err
		}
		if nLabels > 0 {
			m.Labels = make([]string, nLabels)
			for k := range m.Labels {
				if m.Labels[k], err = r.str("label"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (c *Config) decode(r *reader) error {
	var err error
	if c.Seed, err = r.i64("seed"); err != nil {
		return err
	}
	if c.SetupSeed, err = r.i64("setup seed"); err != nil {
		return err
	}
	if c.SetupLayout, err = r.intField("setup layout"); err != nil {
		return err
	}
	if c.Fingerprint, err = r.u64("fingerprint"); err != nil {
		return err
	}
	if c.StartNS, err = r.i64("start"); err != nil {
		return err
	}
	if c.DurationNS, err = r.i64("duration"); err != nil {
		return err
	}
	if c.MailboxSize, err = r.intField("mailbox size"); err != nil {
		return err
	}
	if c.ScanIntervalNS, err = r.i64("scan interval"); err != nil {
		return err
	}
	if c.ScrapeIntervalNS, err = r.i64("scrape interval"); err != nil {
		return err
	}
	if c.Shards, err = r.intField("shards"); err != nil {
		return err
	}
	if c.Scale, err = r.intField("scale"); err != nil {
		return err
	}
	flags := []*bool{
		&c.VisibleScripts, &c.DisableCaseStudies, &c.DisableStreaming, &c.DisableDirtyTracking,
		&c.LoginRisk.Enabled, &c.LoginRisk.BlockTor, &c.LoginRisk.BlockProxies,
	}
	for _, f := range flags {
		if *f, err = r.bool("config flag"); err != nil {
			return err
		}
	}
	if c.LoginRisk.MaxKmFromHome, err = r.f64("login-risk radius"); err != nil {
		return err
	}
	for _, f := range []*bool{&c.CustomSites, &c.CustomPopulations, &c.CustomLocale} {
		if *f, err = r.bool("config flag"); err != nil {
			return err
		}
	}
	if c.DefenderCadenceNS, err = r.i64("defender cadence"); err != nil {
		return err
	}
	if c.C3BucketBits, err = r.intField("c3 bucket bits"); err != nil {
		return err
	}
	if c.C3Variants, err = r.bool("c3 variants flag"); err != nil {
		return err
	}
	return nil
}

func (s *Stream) decode(r *reader, what string) error {
	var err error
	if s.Seed, err = r.i64(what + " seed"); err != nil {
		return err
	}
	s.Pos, err = r.u64(what + " position")
	return err
}

// WriteFile streams the canonical encoding to path (0644) through an
// Encoder, never holding more than one frame of encoded bytes.
func (s *State) WriteFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, readChunk)
	werr := func() error {
		enc, err := NewEncoder(bw, s, len(s.Accounts))
		if err != nil {
			return err
		}
		for i := range s.Accounts {
			if err := enc.WriteAccount(&s.Accounts[i]); err != nil {
				return err
			}
		}
		if err := enc.Close(); err != nil {
			return err
		}
		return bw.Flush()
	}()
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("snapshot: %w", cerr)
	}
	return werr
}

// ReadFile streams and decodes a snapshot file.
func ReadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	d, err := NewDecoder(bufio.NewReaderSize(f, readChunk))
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	s, err := decodeAll(d)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}
