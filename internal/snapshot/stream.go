package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Streaming container (introduced in format v2, unchanged since —
// the version byte tracks snapshot.Version). After the 8-byte magic the
// file is a sequence of self-checking frames:
//
//	[kind:1][payloadLen:uvarint][payload][fnv64le:8]
//
// The per-frame checksum is FNV-1a over the frame's kind, length and
// payload bytes. Exactly one meta frame (config, plan, streams,
// shards, cursors, account count) comes first, followed by the
// accounts in canonical blocks of BlockAccounts per frame (the final
// frame holds the remainder), and a trailer frame whose 8-byte payload
// is the rolling FNV-1a over every stream byte before it. Canonical
// chunking plus minimal varints keep the v1 contract: every State has
// exactly one byte representation, and the decoder rejects anything
// the encoder could not have produced.
//
// The point of the frames is memory: an Encoder holds one block's
// bytes, not the fleet's, and a Decoder hands accounts out one at a
// time from one buffered frame — checkpointing a million-account
// fleet costs O(block), not O(fleet).

// Frame kinds.
const (
	frameMeta     = 0x4d // 'M': config/plan/streams/shards/cursors + account count
	frameAccounts = 0x41 // 'A': a canonical block of account records
	frameEnd      = 0x45 // 'E': trailer carrying the rolling stream checksum
)

// BlockAccounts is the canonical number of accounts per frame. It is
// part of the format: a frame with any other count (except the final
// remainder) is rejected, so chunking can never make two encodings of
// one State.
const BlockAccounts = 64

// maxFrameLen caps a declared frame length; anything larger is corrupt
// by construction (a block of 64 mailboxes is a few megabytes).
const maxFrameLen = 1 << 31

// readChunk is the granularity untrusted frame payloads are pulled in,
// so a hostile length header cannot force an allocation bigger than
// the bytes actually present.
const readChunk = 64 << 10

// FNV-1a, computed incrementally so frame and stream checksums never
// buffer the bytes twice.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvAdd(h uint64, b []byte) uint64 {
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime
	}
	return h
}

// fnv64 is FNV-1a over data in one shot.
func fnv64(data []byte) uint64 { return fnvAdd(fnvOffset, data) }

// Encoder streams a snapshot to an io.Writer one account at a time.
// The caller declares the account count up front (the meta frame
// carries it), then must call WriteAccount exactly that many times
// before Close. Memory held is one account block, whatever the fleet
// size.
type Encoder struct {
	w   io.Writer
	sum uint64 // rolling FNV-1a over every emitted byte

	pay    writer // current frame payload, reused across frames
	hdr    [1 + binary.MaxVarintLen64]byte
	sumBuf [8]byte

	remaining int // accounts still owed
	block     int // accounts buffered in the open frame
	closed    bool
	err       error
}

// NewEncoder writes the magic and the meta frame built from st's
// non-account fields (st.Accounts is ignored) and returns an encoder
// expecting exactly accounts WriteAccount calls.
func NewEncoder(w io.Writer, st *State, accounts int) (*Encoder, error) {
	if accounts < 0 {
		return nil, fmt.Errorf("snapshot: negative account count %d", accounts)
	}
	e := &Encoder{w: w, sum: fnvOffset, remaining: accounts}
	if err := e.emit(magic[:]); err != nil {
		return nil, err
	}
	st.encodeMeta(&e.pay, accounts)
	if err := e.flushFrame(frameMeta); err != nil {
		return nil, err
	}
	return e, nil
}

// emit writes b and folds it into the rolling stream checksum.
func (e *Encoder) emit(b []byte) error {
	e.sum = fnvAdd(e.sum, b)
	if _, err := e.w.Write(b); err != nil {
		e.err = fmt.Errorf("snapshot: %w", err)
		return e.err
	}
	return nil
}

// flushFrame writes the buffered payload as one checksummed frame and
// resets the buffer.
func (e *Encoder) flushFrame(kind byte) error {
	e.hdr[0] = kind
	n := 1 + binary.PutUvarint(e.hdr[1:], uint64(len(e.pay.buf)))
	fsum := fnvAdd(fnvAdd(fnvOffset, e.hdr[:n]), e.pay.buf)
	binary.LittleEndian.PutUint64(e.sumBuf[:], fsum)
	if err := e.emit(e.hdr[:n]); err != nil {
		return err
	}
	if err := e.emit(e.pay.buf); err != nil {
		return err
	}
	if err := e.emit(e.sumBuf[:]); err != nil {
		return err
	}
	e.pay.buf = e.pay.buf[:0]
	return nil
}

// WriteAccount appends one account, flushing a frame whenever a
// canonical block fills.
func (e *Encoder) WriteAccount(a *Account) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return fmt.Errorf("snapshot: WriteAccount after Close")
	}
	if e.remaining == 0 {
		e.err = fmt.Errorf("snapshot: more accounts written than the %d declared", e.block)
		return e.err
	}
	encodeAccount(&e.pay, a)
	e.remaining--
	e.block++
	if e.block == BlockAccounts {
		e.block = 0
		return e.flushFrame(frameAccounts)
	}
	return nil
}

// Close flushes the final partial block and writes the trailer. It
// errors if fewer accounts were written than declared — a truncated
// checkpoint must never look complete.
func (e *Encoder) Close() error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return nil
	}
	e.closed = true
	if e.remaining > 0 {
		e.err = fmt.Errorf("snapshot: Close with %d declared accounts unwritten", e.remaining)
		return e.err
	}
	if e.block > 0 {
		e.block = 0
		if err := e.flushFrame(frameAccounts); err != nil {
			return err
		}
	}
	var roll [8]byte
	binary.LittleEndian.PutUint64(roll[:], e.sum)
	e.pay.buf = append(e.pay.buf[:0], roll[:]...)
	return e.flushFrame(frameEnd)
}

// Decoder streams a snapshot from an io.Reader, holding one frame in
// memory at a time. Construction consumes the magic and meta frame;
// Next then yields accounts in order and returns io.EOF only after
// the trailer checksum has verified and the input is exhausted.
type Decoder struct {
	r   io.Reader
	sum uint64 // rolling FNV-1a over every consumed byte

	meta  State
	total int // declared accounts
	read  int // accounts handed out

	frame []byte // current frame payload, reused
	chunk []byte // bounded read buffer for untrusted lengths
	fr    reader // parse cursor over the current accounts frame
	inBlk int    // accounts left in the current frame
	one   [1]byte

	done bool // trailer verified, input exhausted
	err  error
}

// NewDecoder reads the magic and meta frame. The returned decoder's
// Meta and Accounts describe the snapshot; Next streams the accounts.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: r, sum: fnvOffset}
	var got [8]byte
	if err := d.readFull(got[:]); err != nil {
		return nil, err
	}
	if !bytes.Equal(got[:7], magic[:7]) {
		return nil, fmt.Errorf("snapshot: bad magic %q", got[:7])
	}
	if got[7] != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads version %d)", got[7], Version)
	}
	if err := d.readFrame(frameMeta); err != nil {
		return nil, err
	}
	fr := reader{data: d.frame}
	n, err := d.meta.decodeMeta(&fr)
	if err != nil {
		return nil, err
	}
	if fr.off != len(fr.data) {
		return nil, fmt.Errorf("snapshot: %d stray bytes in meta frame", len(fr.data)-fr.off)
	}
	d.total = n
	return d, nil
}

// Meta returns the decoded non-account state. The pointer aliases the
// decoder; copy it if the decoder outlives its use.
func (d *Decoder) Meta() *State { return &d.meta }

// Accounts returns the number of accounts the snapshot declares.
func (d *Decoder) Accounts() int { return d.total }

// Next decodes the next account into *a. After the last account it
// verifies the trailer checksum and that the input ends, then returns
// io.EOF; any corruption, truncation or non-canonical framing is an
// error.
func (d *Decoder) Next(a *Account) error {
	if d.err != nil {
		return d.err
	}
	if d.read == d.total {
		if !d.done {
			if err := d.finish(); err != nil {
				d.err = err
				return err
			}
			d.done = true
		}
		return io.EOF
	}
	if d.inBlk == 0 {
		if err := d.readFrame(frameAccounts); err != nil {
			d.err = err
			return err
		}
		d.fr = reader{data: d.frame}
		d.inBlk = d.total - d.read
		if d.inBlk > BlockAccounts {
			d.inBlk = BlockAccounts
		}
	}
	*a = Account{}
	if err := decodeAccount(&d.fr, a); err != nil {
		d.err = err
		return err
	}
	d.inBlk--
	d.read++
	if d.inBlk == 0 && d.fr.off != len(d.fr.data) {
		d.err = fmt.Errorf("snapshot: %d stray bytes in account frame", len(d.fr.data)-d.fr.off)
		return d.err
	}
	return nil
}

// finish consumes and verifies the trailer frame and checks nothing
// follows it.
func (d *Decoder) finish() error {
	roll := d.sum
	if err := d.readFrame(frameEnd); err != nil {
		return err
	}
	if len(d.frame) != 8 {
		return fmt.Errorf("snapshot: trailer payload is %d bytes, want 8", len(d.frame))
	}
	if binary.LittleEndian.Uint64(d.frame) != roll {
		return fmt.Errorf("snapshot: stream checksum mismatch (corrupt or reordered frames)")
	}
	if _, err := io.ReadFull(d.r, d.one[:]); err != io.EOF {
		if err == nil {
			return fmt.Errorf("snapshot: trailing bytes after trailer frame")
		}
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// readFull fills dst from the stream, folding the bytes into the
// rolling checksum.
func (d *Decoder) readFull(dst []byte) error {
	if _, err := io.ReadFull(d.r, dst); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("snapshot: truncated stream")
		}
		return fmt.Errorf("snapshot: %w", err)
	}
	d.sum = fnvAdd(d.sum, dst)
	return nil
}

// readFrame reads one frame of the expected kind into d.frame and
// verifies its checksum. The payload is pulled in bounded chunks so a
// hostile length cannot force an allocation the input cannot back.
func (d *Decoder) readFrame(wantKind byte) error {
	if err := d.readFull(d.one[:]); err != nil {
		return err
	}
	kind := d.one[0]
	if kind != wantKind {
		return fmt.Errorf("snapshot: frame kind %#x where %#x expected", kind, wantKind)
	}
	fsum := fnvAdd(fnvOffset, d.one[:])
	length, err := d.readFrameLen(&fsum)
	if err != nil {
		return err
	}
	if length > maxFrameLen {
		return fmt.Errorf("snapshot: frame length %d exceeds limit", length)
	}
	if d.chunk == nil {
		d.chunk = make([]byte, readChunk)
	}
	d.frame = d.frame[:0]
	for remaining := int(length); remaining > 0; {
		n := len(d.chunk)
		if remaining < n {
			n = remaining
		}
		if err := d.readFull(d.chunk[:n]); err != nil {
			return err
		}
		fsum = fnvAdd(fsum, d.chunk[:n])
		d.frame = append(d.frame, d.chunk[:n]...)
		remaining -= n
	}
	var sumBytes [8]byte
	if err := d.readFull(sumBytes[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(sumBytes[:]) != fsum {
		return fmt.Errorf("snapshot: frame checksum mismatch (corrupt %#x frame)", kind)
	}
	return nil
}

// readFrameLen reads a minimally-encoded uvarint frame length byte by
// byte, folding each into the frame checksum (the rolling checksum is
// handled by readFull).
func (d *Decoder) readFrameLen(fsum *uint64) (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			return 0, fmt.Errorf("snapshot: frame length varint overflows")
		}
		if err := d.readFull(d.one[:]); err != nil {
			return 0, err
		}
		*fsum = fnvAdd(*fsum, d.one[:])
		b := d.one[0]
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if shift > 0 && b == 0 {
				return 0, fmt.Errorf("snapshot: non-minimal frame length varint")
			}
			return v, nil
		}
	}
}
