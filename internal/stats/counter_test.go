package stats

import (
	"sync"
	"testing"
)

// TestCounterConcurrent: increments from many goroutines are all
// counted (meant for the -race matrix).
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
			c.Add(2)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*(each+2) {
		t.Fatalf("counter = %d, want %d", got, workers*(each+2))
	}
}

// TestHighwaterTracksMax: the mark records the peak level and never
// falls with it.
func TestHighwaterTracksMax(t *testing.T) {
	var h Highwater
	h.Enter()
	h.Enter()
	h.Enter()
	if h.Level() != 3 || h.High() != 3 {
		t.Fatalf("level %d high %d, want 3 3", h.Level(), h.High())
	}
	h.Exit()
	h.Exit()
	if h.Level() != 1 {
		t.Fatalf("level %d, want 1", h.Level())
	}
	if h.High() != 3 {
		t.Fatalf("high fell to %d", h.High())
	}
	h.Enter()
	if h.High() != 3 {
		t.Fatalf("high %d after re-enter below peak, want 3", h.High())
	}
}

// TestHighwaterConcurrent: the mark never exceeds the worker count and
// the level balances out (meant for the -race matrix).
func TestHighwaterConcurrent(t *testing.T) {
	var h Highwater
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Enter()
				h.Exit()
			}
		}()
	}
	wg.Wait()
	if h.Level() != 0 {
		t.Fatalf("level %d after balanced enter/exit", h.Level())
	}
	if high := h.High(); high < 1 || high > workers {
		t.Fatalf("high %d outside [1,%d]", high, workers)
	}
}
