package stats

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

// TestLatencyHistEmpty: the zero histogram reports zeros everywhere
// instead of panicking — a load-gen connection that never completed a
// request must merge and render cleanly.
func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.Count() != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatalf("empty hist not all-zero: count=%d max=%v min=%v mean=%v", h.Count(), h.Max(), h.Min(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %v, want 0", q, got)
		}
	}
	var other LatencyHist
	other.Merge(&h) // merging empties is a no-op, not a corruption
	if other.Count() != 0 {
		t.Fatalf("empty merge produced count %d", other.Count())
	}
}

// TestLatencyHistOneSample: every quantile of a single observation is
// that observation (extreme clamping), and min == max == mean.
func TestLatencyHistOneSample(t *testing.T) {
	var h LatencyHist
	h.Record(1234567 * time.Nanosecond)
	want := 1234567 * time.Nanosecond
	if h.Count() != 1 || h.Min() != want || h.Max() != want || h.Mean() != want {
		t.Fatalf("one-sample summary wrong: count=%d min=%v max=%v mean=%v", h.Count(), h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("one-sample Quantile(%g) = %v, want %v", q, got, want)
		}
	}
}

// TestLatencyHistQuantileMonotonic: for any sample, q1 <= q2 implies
// Quantile(q1) <= Quantile(q2), and all quantiles stay inside
// [Min, Max].
func TestLatencyHistQuantileMonotonic(t *testing.T) {
	src := rng.New(7)
	var h LatencyHist
	for i := 0; i < 5000; i++ {
		// Log-uniform spread over ~6 decades, the shape real
		// latency tails have.
		v := math.Exp(src.Uniform(0, 14))
		h.Record(time.Duration(v))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile(%g) = %v < previous %v", q, cur, prev)
		}
		if cur < h.Min() || cur > h.Max() {
			t.Fatalf("Quantile(%g) = %v outside [%v, %v]", q, cur, h.Min(), h.Max())
		}
		prev = cur
	}
}

// TestLatencyHistRelativeError: the bucketing contract — any reported
// quantile is within 2^-histSubBits of an actual sample value.
func TestLatencyHistRelativeError(t *testing.T) {
	for _, v := range []int64{1, 31, 32, 33, 1000, 123456, 1 << 20, 987654321, 1 << 40} {
		var h LatencyHist
		h.Record(time.Duration(v))
		got := int64(h.Quantile(0.5))
		if got < v {
			t.Fatalf("Quantile(0.5) of single value %d = %d, reported below the sample", v, got)
		}
		if rel := float64(got-v) / float64(v); rel > 1.0/float64(histSubCount) {
			t.Fatalf("value %d reported as %d: relative error %.4f > %.4f", v, got, rel, 1.0/float64(histSubCount))
		}
	}
}

// TestLatencyHistMergeMatchesSingle: recording a sample set across N
// per-connection histograms and merging equals recording it all into
// one — the exactness the load generator's per-conn split relies on.
func TestLatencyHistMergeMatchesSingle(t *testing.T) {
	src := rng.New(11)
	const conns = 8
	var whole LatencyHist
	parts := make([]LatencyHist, conns)
	for i := 0; i < 10000; i++ {
		v := time.Duration(math.Exp(src.Uniform(2, 16)))
		whole.Record(v)
		parts[i%conns].Record(v)
	}
	var merged LatencyHist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() ||
		merged.Max() != whole.Max() || merged.Mean() != whole.Mean() {
		t.Fatalf("merged summary diverges: merged count=%d min=%v max=%v mean=%v, whole count=%d min=%v max=%v mean=%v",
			merged.Count(), merged.Min(), merged.Max(), merged.Mean(),
			whole.Count(), whole.Min(), whole.Max(), whole.Mean())
	}
	for q := 0.0; q <= 1.0; q += 0.0005 {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Fatalf("Quantile(%g): merged %v != whole %v", q, m, w)
		}
	}
}

// TestLatencyHistNegativeClamps: a negative duration (clock skew)
// records as zero rather than corrupting a bucket index.
func TestLatencyHistNegativeClamps(t *testing.T) {
	var h LatencyHist
	h.Record(-5 * time.Second)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative record: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
}

// TestLatencyHistBucketEdges pins the index/upper-bound pair at the
// group boundaries where off-by-ones live.
func TestLatencyHistBucketEdges(t *testing.T) {
	for _, v := range []int64{0, 1, histSubCount - 1, histSubCount, 2*histSubCount - 1, 2 * histSubCount, 1 << 30} {
		i := histIndex(v)
		if up := histUpper(i); up < v {
			t.Fatalf("histUpper(histIndex(%d)) = %d < value", v, up)
		}
		if i > 0 && histUpper(i-1) >= v {
			t.Fatalf("value %d fits bucket %d but lower bucket %d has upper %d", v, i, i-1, histUpper(i-1))
		}
	}
}
