// Package stats provides the statistical toolkit the paper's figures
// are built from. Paper-section map:
//
//   - §4.3 (Figures 1 and 3): empirical CDFs — exact (ECDF) for the
//     batch pipeline, and mergeable fixed-grid sketches (ProbeSketch)
//     for the streaming pipeline. Both print identical values at the
//     figures' probe points.
//   - §4.5 (Figure 5): medians and quantiles for the login-distance
//     radii.
//   - Summary/Histogram: descriptive helpers the report tables and
//     ablation benchmarks print.
//
// The package is deliberately simulator-agnostic: it sees plain
// float64 samples and counters, never experiment types.
package stats
