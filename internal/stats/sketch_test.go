package stats

import (
	"testing"
)

// The sketch's whole reason to exist: Frac at every probe equals
// ECDF.At over the same sample, exactly.
func TestProbeSketchMatchesECDF(t *testing.T) {
	probes := []float64{0.1, 1, 5, 24}
	sample := []float64{0.05, 0.1, 0.3, 1.0, 1.0, 4.9, 5.0, 100}
	sk := NewProbeSketch(probes)
	for _, v := range sample {
		sk.Add(v)
	}
	e := NewECDF(sample)
	if sk.N() != e.N() {
		t.Fatalf("n = %d, want %d", sk.N(), e.N())
	}
	for i, p := range probes {
		if got, want := sk.Frac(i), e.At(p); got != want {
			t.Fatalf("Frac(%g) = %v, want %v", p, got, want)
		}
	}
	pts := sk.Points()
	for i, p := range e.Sample(probes) {
		if pts[i] != p {
			t.Fatalf("Points[%d] = %+v, want %+v", i, pts[i], p)
		}
	}
}

// Merging two sketches equals sketching the concatenated sample.
func TestProbeSketchMerge(t *testing.T) {
	probes := []float64{1, 10}
	a := NewProbeSketch(probes)
	b := NewProbeSketch(probes)
	whole := NewProbeSketch(probes)
	for i, v := range []float64{0.5, 2, 3, 15, 0.9, 10} {
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != whole.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), whole.N())
	}
	for i := range probes {
		if a.Frac(i) != whole.Frac(i) {
			t.Fatalf("probe %d: merged %v vs whole %v", i, a.Frac(i), whole.Frac(i))
		}
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil: %v", err)
	}
	if err := a.Merge(NewProbeSketch([]float64{2, 20})); err == nil {
		t.Fatal("merging different grids succeeded")
	}
	if err := a.Merge(NewProbeSketch([]float64{1})); err == nil {
		t.Fatal("merging different grid sizes succeeded")
	}
}

func TestProbeSketchEmptyAndClone(t *testing.T) {
	sk := NewProbeSketch([]float64{1})
	if sk.N() != 0 || sk.Frac(0) != 0 {
		t.Fatalf("empty sketch n=%d frac=%v", sk.N(), sk.Frac(0))
	}
	sk.Add(0.5)
	c := sk.Clone()
	c.Add(2)
	if sk.N() != 1 || c.N() != 2 {
		t.Fatalf("clone aliases: %d %d", sk.N(), c.N())
	}
}

func TestProbeSketchValidation(t *testing.T) {
	for name, probes := range map[string][]float64{
		"empty":          {},
		"non-increasing": {1, 1},
		"descending":     {2, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s grid did not panic", name)
				}
			}()
			NewProbeSketch(probes)
		}()
	}
}
