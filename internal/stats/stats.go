package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF over the sample (copied, then sorted). It
// panics on an empty sample: an empty CDF has no meaning in any of the
// paper's plots.
func NewECDF(sample []float64) *ECDF {
	if len(sample) == 0 {
		panic("stats: NewECDF of empty sample")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x), the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	// First index with value > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank with
// linear interpolation.
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return e.sorted[lo]
	}
	frac := pos - float64(lo)
	return e.sorted[lo]*(1-frac) + e.sorted[hi]*frac
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Min and Max return the sample extremes.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Points returns (x, P(X<=x)) pairs suitable for plotting the CDF as a
// step function, one point per distinct sample value.
func (e *ECDF) Points() []CDFPoint {
	var out []CDFPoint
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); i++ {
		// advance to last duplicate
		if i+1 < len(e.sorted) && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		out = append(out, CDFPoint{X: e.sorted[i], P: float64(i+1) / n})
	}
	return out
}

// Sample returns the CDF evaluated at the given xs (convenience for
// fixed-grid figure series).
func (e *ECDF) Sample(xs []float64) []CDFPoint {
	out := make([]CDFPoint, len(xs))
	for i, x := range xs {
		out[i] = CDFPoint{X: x, P: e.At(x)}
	}
	return out
}

// CDFPoint is one point of a CDF series.
type CDFPoint struct {
	X float64
	P float64
}

// Median returns the sample median. It panics on empty input.
func Median(sample []float64) float64 {
	return QuantileOf(sample, 0.5)
}

// QuantileOf returns the q-quantile of an unsorted sample.
func QuantileOf(sample []float64, q float64) float64 {
	return NewECDF(sample).Quantile(q)
}

// Mean returns the arithmetic mean. It panics on empty input.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		panic("stats: Mean of empty sample")
	}
	sum := 0.0
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// StdDev returns the sample standard deviation (n-1 denominator); it
// returns 0 for samples of size < 2.
func StdDev(sample []float64) float64 {
	n := len(sample)
	if n < 2 {
		return 0
	}
	m := Mean(sample)
	ss := 0.0
	for _, v := range sample {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Summary bundles the descriptive statistics the report tables print.
type Summary struct {
	N      int
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes a Summary. It panics on empty input.
func Summarize(sample []float64) Summary {
	e := NewECDF(sample)
	return Summary{
		N:      e.N(),
		Min:    e.Min(),
		P25:    e.Quantile(0.25),
		Median: e.Quantile(0.5),
		P75:    e.Quantile(0.75),
		P90:    e.Quantile(0.90),
		Max:    e.Max(),
		Mean:   Mean(sample),
		StdDev: StdDev(sample),
	}
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f p25=%.2f med=%.2f p75=%.2f p90=%.2f max=%.2f mean=%.2f sd=%.2f",
		s.N, s.Min, s.P25, s.Median, s.P75, s.P90, s.Max, s.Mean, s.StdDev)
}

// Histogram counts sample values into the half-open bins
// [edges[i], edges[i+1]); values below edges[0] and at/above the last
// edge fall into the under/overflow counts.
type Histogram struct {
	Edges     []float64
	Counts    []int
	Underflow int
	Overflow  int
}

// NewHistogram bins the sample. Edges must be strictly increasing and
// at least two; otherwise it panics.
func NewHistogram(sample []float64, edges []float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: NewHistogram needs >= 2 edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly increasing")
		}
	}
	h := &Histogram{Edges: edges, Counts: make([]int, len(edges)-1)}
	for _, v := range sample {
		switch {
		case v < edges[0]:
			h.Underflow++
		case v >= edges[len(edges)-1]:
			h.Overflow++
		default:
			i := sort.SearchFloat64s(edges, v)
			// SearchFloat64s returns first index with edges[i] >= v;
			// adjust to the bin containing v.
			if i < len(edges) && edges[i] == v {
				h.Counts[i]++
			} else {
				h.Counts[i-1]++
			}
		}
	}
	return h
}

// Total returns the number of in-range values binned.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fraction returns the share of in-range values in bin i.
func (h *Histogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(t)
}
