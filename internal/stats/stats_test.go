package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 || e.Min() != 1 || e.Max() != 4 {
		t.Fatalf("N/Min/Max = %d/%v/%v", e.N(), e.Min(), e.Max())
	}
}

func TestECDFEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewECDF(nil) did not panic")
		}
	}()
	NewECDF(nil)
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewECDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("NewECDF mutated its input")
	}
}

func TestECDFPointsCollapsesDuplicates(t *testing.T) {
	e := NewECDF([]float64{1, 1, 1, 2})
	pts := e.Points()
	if len(pts) != 2 {
		t.Fatalf("Points() = %v, want 2 distinct points", pts)
	}
	if pts[0].X != 1 || math.Abs(pts[0].P-0.75) > 1e-12 {
		t.Fatalf("first point = %+v, want {1 0.75}", pts[0])
	}
	if pts[1].X != 2 || pts[1].P != 1 {
		t.Fatalf("last point = %+v, want {2 1}", pts[1])
	}
}

func TestECDFSampleGrid(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30})
	pts := e.Sample([]float64{5, 15, 35})
	wantP := []float64{0, 1.0 / 3, 1}
	for i, p := range pts {
		if math.Abs(p.P-wantP[i]) > 1e-12 {
			t.Errorf("Sample[%d].P = %v, want %v", i, p.P, wantP[i])
		}
	}
}

func TestQuantiles(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5})
	if got := e.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := e.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := e.Quantile(0.25); got != 2 {
		t.Fatalf("q.25 = %v", got)
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if got := Median([]float64{1, 3}); got != 2 {
		t.Fatalf("even median = %v, want 2", got)
	}
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("odd median = %v, want 5", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	sample := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(sample); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	// Known sample stddev (n-1): sqrt(32/7) ≈ 2.138
	if got := StdDev(sample); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("stddev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("stddev of single value should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 || s.Median != 5.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-1, 0, 0.5, 1, 1.5, 2, 5}, []float64{0, 1, 2})
	// bins: [0,1) -> {0, 0.5}; [1,2) -> {1, 1.5}; under: -1; over: 2, 5
	if h.Counts[0] != 2 || h.Counts[1] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if got := h.Fraction(0); got != 0.5 {
		t.Fatalf("fraction(0) = %v", got)
	}
}

func TestHistogramEdgeValidation(t *testing.T) {
	for _, edges := range [][]float64{{1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("edges %v accepted", edges)
				}
			}()
			NewHistogram(nil, edges)
		}()
	}
}

// Property: ECDF is monotone nondecreasing and bounded in [0,1].
func TestPropertyECDFMonotone(t *testing.T) {
	f := func(raw []int8, probes []int8) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = float64(v)
		}
		e := NewECDF(sample)
		xs := make([]float64, len(probes))
		for i, p := range probes {
			xs[i] = float64(p)
		}
		sort.Float64s(xs)
		prev := 0.0
		for _, x := range xs {
			p := e.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: At(Max) == 1 and At(just below Min) == 0.
func TestPropertyECDFExtremes(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = float64(v)
		}
		e := NewECDF(sample)
		return e.At(e.Max()) == 1 && e.At(e.Min()-1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves mass (counts + under + over = n).
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(raw []int8) bool {
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = float64(v)
		}
		h := NewHistogram(sample, []float64{-64, 0, 64})
		return h.Total()+h.Underflow+h.Overflow == len(sample)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
