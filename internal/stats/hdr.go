package stats

import (
	"math"
	"math/bits"
	"time"
)

// LatencyHist is an HDR-style log-linear latency histogram: fixed
// memory, lock-free for a single writer, and mergeable across writers.
// Values are bucketed by the top histSubBits+1 bits of their nanosecond
// count, so the relative quantile error is bounded by 2^-histSubBits
// (~3.1%) at any magnitude from 1ns to ~292 years. The live-fleet load
// generator keeps one histogram per connection and merges them after
// the run — Merge is exact (bucket counts add), so the merged quantiles
// equal those of a single histogram fed every sample.
//
// The zero value is an empty, ready-to-use histogram.
type LatencyHist struct {
	counts [histNBuckets]int64
	total  int64
	sum    int64
	max    int64
	min    int64 // valid only when total > 0
}

const (
	// histSubBits sets the linear resolution inside each power-of-two
	// group: 2^histSubBits sub-buckets, hence <= 2^-histSubBits
	// relative error on any reported quantile.
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// Groups 1..(63-histSubBits) cover values >= histSubCount up to
	// the int64 range; group 0 is the exact linear range [0,
	// histSubCount).
	histGroups   = 63 - histSubBits
	histNBuckets = histSubCount * (histGroups + 1)
)

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	lz := bits.Len64(u)       // position of the highest set bit, 1-based
	group := lz - histSubBits // >= 1 for u >= histSubCount
	m := u >> (group - 1)     // top histSubBits+1 bits: [histSubCount, 2*histSubCount)
	return group*histSubCount + int(m) - histSubCount
}

// histUpper returns the largest value a bucket can hold — the value
// Quantile reports for ranks landing in it.
func histUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	group := i / histSubCount
	m := uint64(histSubCount + i%histSubCount)
	return int64(m<<(group-1) + 1<<(group-1) - 1)
}

// Record adds one observation. Negative durations clamp to zero (a
// latency below clock resolution, not an error).
func (h *LatencyHist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
}

// Merge folds o into h. Bucket counts add exactly, so quantiles of the
// merge equal quantiles of one histogram fed both sample sets.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() int64 { return h.total }

// Max returns the exact largest recorded value (0 when empty).
func (h *LatencyHist) Max() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Min returns the exact smallest recorded value (0 when empty).
func (h *LatencyHist) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *LatencyHist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Quantile returns the q-quantile by rank over the bucketed counts:
// the bucket upper bound holding the ceil(q*n)-th smallest sample,
// clamped to the exact observed extremes so Quantile(0) == Min and
// Quantile(1) == Max. q outside [0,1] clamps; an empty histogram
// reports 0. Monotone in q by construction (cumulative rank walk).
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank > h.total {
		rank = h.total
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			v := histUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}
