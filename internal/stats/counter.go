package stats

import "sync/atomic"

// Counter is a monotonically increasing atomic tally, safe for
// concurrent increment from hot serving paths. The zero value is
// ready to use; reads never block writers.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; a Counter never decreases).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Highwater tracks a concurrent level (e.g. in-flight requests) and
// the maximum it ever reached. The zero value is ready to use. Enter
// and Exit must be balanced; High is monotone even as the level falls.
type Highwater struct {
	level atomic.Int64
	high  atomic.Int64
}

// Enter raises the level by one and folds it into the highwater mark.
func (h *Highwater) Enter() {
	v := h.level.Add(1)
	for {
		m := h.high.Load()
		if v <= m || h.high.CompareAndSwap(m, v) {
			return
		}
	}
}

// Exit lowers the level by one.
func (h *Highwater) Exit() { h.level.Add(-1) }

// Level returns the current level.
func (h *Highwater) Level() int64 { return h.level.Load() }

// High returns the maximum level ever observed.
func (h *Highwater) High() int64 { return h.high.Load() }
