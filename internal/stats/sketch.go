package stats

import "fmt"

// ProbeSketch is a mergeable CDF sketch: it counts how many observed
// values fall at or below each of a fixed grid of probe points. The
// report figures evaluate their CDFs only at fixed probes (Figures 1
// and 3 print P(x<=p) for a handful of p), so a sketch of counters is
// enough to reproduce those series exactly — P(x<=p) from the sketch
// equals ECDF.At(p) over the same sample, bit for bit — while staying
// O(probes) in memory and O(1) to merge, which is what lets every
// shard aggregate its own accesses and the merge stay O(shards)
// instead of O(records).
type ProbeSketch struct {
	probes []float64 // strictly increasing
	le     []int     // le[i] = #values v with v <= probes[i]
	n      int
}

// NewProbeSketch builds an empty sketch over the given probe grid.
// Probes must be strictly increasing and non-empty; otherwise it
// panics (a sketch with no probes cannot render any figure).
func NewProbeSketch(probes []float64) *ProbeSketch {
	if len(probes) == 0 {
		panic("stats: NewProbeSketch needs at least one probe")
	}
	for i := 1; i < len(probes); i++ {
		if probes[i] <= probes[i-1] {
			panic("stats: probe grid must be strictly increasing")
		}
	}
	p := make([]float64, len(probes))
	copy(p, probes)
	return &ProbeSketch{probes: p, le: make([]int, len(p))}
}

// Add folds one value into the sketch.
func (s *ProbeSketch) Add(v float64) {
	s.n++
	// Probe grids are tiny (<=10 entries in every figure); a linear
	// scan beats binary search and allocates nothing.
	for i := len(s.probes) - 1; i >= 0; i-- {
		if v > s.probes[i] {
			break
		}
		s.le[i]++
	}
}

// Merge folds another sketch into s. Both sketches must share the same
// probe grid; Merge returns an error otherwise so shard-mismatch bugs
// surface instead of silently corrupting counts.
func (s *ProbeSketch) Merge(o *ProbeSketch) error {
	if o == nil {
		return nil
	}
	if len(o.probes) != len(s.probes) {
		return fmt.Errorf("stats: merging sketches with %d and %d probes", len(s.probes), len(o.probes))
	}
	for i := range s.probes {
		if s.probes[i] != o.probes[i] {
			return fmt.Errorf("stats: merging sketches with different probe grids (%g vs %g at %d)",
				s.probes[i], o.probes[i], i)
		}
	}
	for i := range s.le {
		s.le[i] += o.le[i]
	}
	s.n += o.n
	return nil
}

// N returns the number of values folded in.
func (s *ProbeSketch) N() int { return s.n }

// Probes returns the probe grid (callers must not mutate it).
func (s *ProbeSketch) Probes() []float64 { return s.probes }

// Frac returns P(X <= Probes[i]) — identical to ECDF.At(Probes[i])
// over the same sample, because both compute count/n on the same
// integers.
func (s *ProbeSketch) Frac(i int) float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.le[i]) / float64(s.n)
}

// Points returns the sketch as CDF points on the probe grid.
func (s *ProbeSketch) Points() []CDFPoint {
	out := make([]CDFPoint, len(s.probes))
	for i, p := range s.probes {
		out[i] = CDFPoint{X: p, P: s.Frac(i)}
	}
	return out
}

// Clone returns a deep copy (merging must not alias shard state).
func (s *ProbeSketch) Clone() *ProbeSketch {
	c := NewProbeSketch(s.probes)
	copy(c.le, s.le)
	c.n = s.n
	return c
}
