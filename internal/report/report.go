// Package report renders the paper's tables and figures as plain-text
// artifacts: fixed-width tables for Tables 1–2 and the overview,
// inline CDF series for Figures 1 and 3, a day-bucketed timeline for
// Figure 4, and the median-radius rows of Figure 5. cmd/honeynet and
// the benchmark harness both print through this package so the output
// of `go test -bench` matches the CLI.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// Table builds a fixed-width text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c) // no trailing padding on the last column
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CDFSeries renders an ECDF at the given probe points as a one-line
// series: name: p(x1)=v1 p(x2)=v2 ...
func CDFSeries(name string, sample []float64, probes []float64) string {
	if len(sample) == 0 {
		return fmt.Sprintf("%s: (empty)", name)
	}
	e := stats.NewECDF(sample)
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d):", name, e.N())
	for _, p := range e.Sample(probes) {
		fmt.Fprintf(&b, " P(x<=%g)=%.2f", p.X, p.P)
	}
	return b.String()
}

// Overview renders the §4.1/§4.5 headline numbers with the paper's
// values alongside for comparison.
func Overview(o analysis.Overview) string {
	t := NewTable("metric", "measured", "paper")
	t.AddRow("unique accesses", fmt.Sprint(o.UniqueAccesses), "327")
	t.AddRow("emails read", fmt.Sprint(o.EmailsRead), "147")
	t.AddRow("emails sent", fmt.Sprint(o.EmailsSent), "845")
	t.AddRow("unique drafts", fmt.Sprint(o.UniqueDrafts), "12")
	t.AddRow("accounts blocked", fmt.Sprint(o.SuspendedAccounts), "42")
	t.AddRow("countries", fmt.Sprint(o.Countries), "29")
	t.AddRow("accesses w/ location", fmt.Sprint(o.WithLocation), "173")
	t.AddRow("accesses w/o location", fmt.Sprint(o.WithoutLocation), "154")
	t.AddRow("blacklisted IPs", fmt.Sprint(o.BlacklistedIPs), "20")
	return t.String()
}

// Table1 renders the deployment plan blocks.
func Table1(rows []Table1Row) string {
	t := NewTable("group", "accounts", "outlet of leak")
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Group), fmt.Sprint(r.Count), r.Label)
	}
	return t.String()
}

// Table1Row is one Table 1 block.
type Table1Row struct {
	Group int
	Count int
	Label string
}

// Figure1 renders the access-length CDFs per taxonomy class
// (durations in hours).
func Figure1(durations map[string][]float64) string {
	probes := analysis.DurationProbes
	keys := sortedKeys(durations)
	var b strings.Builder
	b.WriteString("Figure 1: CDF of unique-access length by class (hours)\n")
	for _, k := range keys {
		b.WriteString("  " + CDFSeries(k, durations[k], probes) + "\n")
	}
	return b.String()
}

// Figure2 renders the taxonomy distribution per outlet.
func Figure2(per map[analysis.Outlet]analysis.ClassCounts) string {
	t := NewTable("outlet", "accesses", "curious", "gold-digger", "spammer", "hijacker")
	outletOrder := []analysis.Outlet{
		analysis.OutletPaste, analysis.OutletPasteRussian,
		analysis.OutletForum, analysis.OutletMalware,
	}
	for _, o := range outletOrder {
		c, ok := per[o]
		if !ok {
			continue
		}
		pct := func(n int) string {
			if c.Total == 0 {
				return "0%"
			}
			return fmt.Sprintf("%d (%.0f%%)", n, 100*float64(n)/float64(c.Total))
		}
		t.AddRow(string(o), fmt.Sprint(c.Total), pct(c.Curious), pct(c.GoldDigger), pct(c.Spammer), pct(c.Hijacker))
	}
	return "Figure 2: distribution of access types per outlet\n" + t.String()
}

// Figure3 renders the time-to-access CDFs per outlet (days).
func Figure3(days map[analysis.Outlet][]float64) string {
	probes := analysis.LeakDaysProbes
	var b strings.Builder
	b.WriteString("Figure 3: CDF of days from leak to access by outlet\n")
	for _, o := range []analysis.Outlet{analysis.OutletPaste, analysis.OutletPasteRussian, analysis.OutletForum, analysis.OutletMalware} {
		if v, ok := days[o]; ok {
			b.WriteString("  " + CDFSeries(string(o), v, probes) + "\n")
		}
	}
	return b.String()
}

// Figure4 renders the access timeline as day-bucket counts per
// outlet. It buckets the points and delegates to Figure4Buckets, the
// aggregate-backed renderer, so both paths share one table shape.
func Figure4(points []analysis.TimelinePoint) string {
	buckets := map[analysis.Outlet]map[int]int{}
	maxBucket := 0
	for _, p := range points {
		b := int(p.Days) / 10 // 10-day buckets
		if buckets[p.Outlet] == nil {
			buckets[p.Outlet] = map[int]int{}
		}
		buckets[p.Outlet][b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	return Figure4Buckets(buckets, maxBucket)
}

// Figure5 renders the median-radius rows for one region.
func Figure5(region string, rows []analysis.RadiusRow) string {
	t := NewTable("group", "n", "median radius (km)")
	for _, r := range rows {
		hint := string(r.Group.Hint)
		if hint == "" {
			hint = "no-loc"
		}
		t.AddRow(fmt.Sprintf("%s/%s", r.Group.Outlet, hint), fmt.Sprint(r.N), fmt.Sprintf("%.0f", r.MedianKm))
	}
	return fmt.Sprintf("Figure 5 (%s midpoint): median login distance\n%s", region, t.String())
}

// Significance renders the CvM comparisons.
func Significance(rows []analysis.SignificanceRow) string {
	t := NewTable("comparison", "T", "p", "reject@0.01", "paper")
	paper := map[string]string{
		"paste/uk": "p=0.0017 reject", "paste/us": "p=7e-7 reject",
		"forum/uk": "p=0.27 keep", "forum/us": "p=0.27 keep",
	}
	for _, r := range rows {
		key := fmt.Sprintf("%s/%s", r.Outlet, r.Region)
		t.AddRow(key,
			fmt.Sprintf("%.4f", r.Result.T),
			fmt.Sprintf("%.4f", r.Result.P),
			fmt.Sprint(r.Result.RejectAt001),
			paper[key],
		)
	}
	return "Cramér–von Mises: advertised location vs none (§4.5)\n" + t.String()
}

// Table2 renders the TF-IDF ranking next to the corpus ranking.
func Table2(searched, corpusTop []analysis.TermScore) string {
	t := NewTable("searched word", "tfidfR-tfidfA", "corpus word", "tfidfA")
	n := len(searched)
	if len(corpusTop) > n {
		n = len(corpusTop)
	}
	for i := 0; i < n; i++ {
		var a, b, c, d string
		if i < len(searched) {
			a, b = searched[i].Term, fmt.Sprintf("%.4f", searched[i].Delta)
		}
		if i < len(corpusTop) {
			c, d = corpusTop[i].Term, fmt.Sprintf("%.4f", corpusTop[i].All)
		}
		t.AddRow(a, b, c, d)
	}
	return "Table 2: inferred searched words vs corpus-important words\n" + t.String()
}

// CaseStudies renders the §4.7 counters — the one format shared by
// the single-run CLI and the scenario report.
func CaseStudies(blackmailers, draftCopies, inquiries int) string {
	return fmt.Sprintf("Case studies (§4.7)\nblackmail sessions: %d\ndraft copies captured: %d\nforum inquiries: %d\n",
		blackmailers, draftCopies, inquiries)
}

// SystemConfig renders the §4.4 fingerprint breakdown.
func SystemConfig(rows []analysis.ConfigRow) string {
	t := NewTable("outlet", "accesses", "empty-UA", "android", "desktop")
	for _, r := range rows {
		t.AddRow(string(r.Outlet), fmt.Sprint(r.Accesses), fmt.Sprint(r.EmptyUA), fmt.Sprint(r.Android), fmt.Sprint(r.Desktop))
	}
	return "System configuration of accesses (§4.4)\n" + t.String()
}

// Sophistication renders the §4.8 qualitative matrix derived from the
// measured signals.
func Sophistication(rows []analysis.ConfigRow, sig []analysis.SignificanceRow) string {
	malleable := map[analysis.Outlet]bool{}
	for _, s := range sig {
		if s.Result.RejectAt001 {
			malleable[s.Outlet] = true
		}
	}
	t := NewTable("outlet", "hides config (empty UA)", "evades via location", "stealthy (no hijack/spam)")
	for _, r := range rows {
		hides := "no"
		if r.Accesses > 0 && r.EmptyUA == r.Accesses {
			hides = "yes"
		}
		evades := "no"
		if malleable[r.Outlet] {
			evades = "yes"
		}
		stealthy := "-"
		t.AddRow(string(r.Outlet), hides, evades, stealthy)
	}
	return "Attacker sophistication signals (§4.8)\n" + t.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
