package report_test

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/report"
)

// Rendering a fixed-width table, the primitive every paper artifact
// (Tables 1–2, Figures 2 and 4, the overview) is printed with.
func ExampleNewTable() {
	t := report.NewTable("outlet", "accesses", "hijacker")
	t.AddRow("paste", "144", "21")
	t.AddRow("forum", "38", "9")
	fmt.Print(t.String())
	// Output:
	// outlet  accesses  hijacker
	// ------  --------  --------
	// paste   144       21
	// forum   38        9
}

// Figure 2's taxonomy-per-outlet table from class tallies — the same
// rendering whether the tallies came from a batch Classify pass or
// from merged streaming aggregates.
func ExampleFigure2() {
	per := map[analysis.Outlet]analysis.ClassCounts{
		analysis.OutletPaste: {Total: 4, Curious: 2, GoldDigger: 1, Hijacker: 1},
		analysis.OutletForum: {Total: 2, Curious: 1, Spammer: 1},
	}
	fmt.Print(report.Figure2(per))
	// Output:
	// Figure 2: distribution of access types per outlet
	// outlet  accesses  curious  gold-digger  spammer  hijacker
	// ------  --------  -------  -----------  -------  --------
	// paste   4         2 (50%)  1 (25%)      0 (0%)   1 (25%)
	// forum   2         1 (50%)  0 (0%)       1 (50%)  0 (0%)
}
