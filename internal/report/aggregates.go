package report

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// Aggregate-backed rendering: the streaming pipeline carries probe
// sketches and bucket maps instead of raw samples, and these
// renderers print them byte-identically to the ECDF/point-backed
// figures over the same data (TestStreamMatchesBatchReports asserts
// it). Both forms coexist so a report can come from either a merged
// Dataset (the batch path, real-deployment logs) or merged
// shard Aggregates (the streaming path).

// SketchSeries renders a probe sketch exactly as CDFSeries renders
// the same sample at the sketch's probes.
func SketchSeries(name string, sk *stats.ProbeSketch) string {
	if sk == nil || sk.N() == 0 {
		return fmt.Sprintf("%s: (empty)", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d):", name, sk.N())
	for i, p := range sk.Probes() {
		fmt.Fprintf(&b, " P(x<=%g)=%.2f", p, sk.Frac(i))
	}
	return b.String()
}

// Figure1Sketches renders Figure 1 from per-class duration sketches.
func Figure1Sketches(durations map[string]*stats.ProbeSketch) string {
	keys := sortedKeys(durations)
	var b strings.Builder
	b.WriteString("Figure 1: CDF of unique-access length by class (hours)\n")
	for _, k := range keys {
		b.WriteString("  " + SketchSeries(k, durations[k]) + "\n")
	}
	return b.String()
}

// Figure3Sketches renders Figure 3 from per-outlet leak-to-access
// sketches.
func Figure3Sketches(days map[analysis.Outlet]*stats.ProbeSketch) string {
	var b strings.Builder
	b.WriteString("Figure 3: CDF of days from leak to access by outlet\n")
	for _, o := range []analysis.Outlet{analysis.OutletPaste, analysis.OutletPasteRussian, analysis.OutletForum, analysis.OutletMalware} {
		if sk, ok := days[o]; ok {
			b.WriteString("  " + SketchSeries(string(o), sk) + "\n")
		}
	}
	return b.String()
}

// Figure4Buckets renders Figure 4 from pre-bucketed per-outlet
// counts (10-day windows since leak; maxBucket is the last row).
func Figure4Buckets(buckets map[analysis.Outlet]map[int]int, maxBucket int) string {
	t := NewTable("days", "paste", "paste-ru", "forum", "malware")
	for b := 0; b <= maxBucket; b++ {
		t.AddRow(
			fmt.Sprintf("%d-%d", b*10, b*10+9),
			fmt.Sprint(buckets[analysis.OutletPaste][b]),
			fmt.Sprint(buckets[analysis.OutletPasteRussian][b]),
			fmt.Sprint(buckets[analysis.OutletForum][b]),
			fmt.Sprint(buckets[analysis.OutletMalware][b]),
		)
	}
	return "Figure 4: unique accesses per 10-day window since leak\n" + t.String()
}
