package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("a", "bb", "ccc")
	tb.AddRow("1", "2", "3")
	tb.AddRow("long-cell", "x") // short row padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+sep+2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a") || !strings.Contains(lines[0], "bb") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator = %q", lines[1])
	}
	// Columns align: every line has the same prefix width up to col 2.
	if len(lines[2]) < len("long-cell") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestCDFSeries(t *testing.T) {
	out := CDFSeries("paste", []float64{1, 2, 3, 4}, []float64{2, 10})
	if !strings.Contains(out, "n=4") || !strings.Contains(out, "P(x<=2)=0.50") || !strings.Contains(out, "P(x<=10)=1.00") {
		t.Fatalf("series = %q", out)
	}
	if got := CDFSeries("empty", nil, []float64{1}); !strings.Contains(got, "(empty)") {
		t.Fatalf("empty series = %q", got)
	}
}

func TestOverviewIncludesPaperColumn(t *testing.T) {
	out := Overview(analysis.Overview{UniqueAccesses: 200, EmailsRead: 150})
	for _, want := range []string{"unique accesses", "200", "327", "147", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("overview missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderers(t *testing.T) {
	f1 := Figure1(map[string][]float64{"curious": {0.1, 0.2}, "hijacker": {24, 48}})
	if !strings.Contains(f1, "curious") || !strings.Contains(f1, "hijacker") {
		t.Fatalf("figure1 = %q", f1)
	}
	f2 := Figure2(map[analysis.Outlet]analysis.ClassCounts{
		analysis.OutletPaste: {Total: 10, Curious: 6, GoldDigger: 2, Spammer: 1, Hijacker: 2},
	})
	if !strings.Contains(f2, "paste") || !strings.Contains(f2, "20%") {
		t.Fatalf("figure2 = %q", f2)
	}
	f3 := Figure3(map[analysis.Outlet][]float64{analysis.OutletMalware: {10, 30, 120}})
	if !strings.Contains(f3, "malware") {
		t.Fatalf("figure3 = %q", f3)
	}
	f4 := Figure4([]analysis.TimelinePoint{
		{Outlet: analysis.OutletPaste, Days: 3},
		{Outlet: analysis.OutletMalware, Days: 101},
	})
	if !strings.Contains(f4, "100-109") {
		t.Fatalf("figure4 = %q", f4)
	}
	f5 := Figure5("UK", []analysis.RadiusRow{
		{Group: analysis.GroupKey{Outlet: analysis.OutletPaste, Hint: analysis.HintUK}, N: 12, MedianKm: 1400},
	})
	if !strings.Contains(f5, "1400") || !strings.Contains(f5, "paste/uk") {
		t.Fatalf("figure5 = %q", f5)
	}
}

func TestSignificanceIncludesPaperValues(t *testing.T) {
	out := Significance([]analysis.SignificanceRow{
		{Outlet: analysis.OutletPaste, Region: analysis.HintUK,
			Result: analysis.CvMResult{T: 0.5, P: 0.002, RejectAt001: true}},
	})
	if !strings.Contains(out, "paste/uk") || !strings.Contains(out, "p=0.0017 reject") {
		t.Fatalf("significance = %q", out)
	}
}

func TestTable2Renders(t *testing.T) {
	out := Table2(
		[]analysis.TermScore{{Term: "bitcoin", Delta: 0.19}},
		[]analysis.TermScore{{Term: "transfer", All: 0.29}, {Term: "company", All: 0.15}},
	)
	if !strings.Contains(out, "bitcoin") || !strings.Contains(out, "transfer") || !strings.Contains(out, "company") {
		t.Fatalf("table2 = %q", out)
	}
}

func TestSystemConfigAndSophistication(t *testing.T) {
	rows := []analysis.ConfigRow{
		{Outlet: analysis.OutletMalware, Accesses: 5, EmptyUA: 5},
		{Outlet: analysis.OutletPaste, Accesses: 10, EmptyUA: 1, Android: 2, Desktop: 7},
	}
	sc := SystemConfig(rows)
	if !strings.Contains(sc, "malware") {
		t.Fatalf("sysconfig = %q", sc)
	}
	soph := Sophistication(rows, []analysis.SignificanceRow{
		{Outlet: analysis.OutletPaste, Region: analysis.HintUK, Result: analysis.CvMResult{RejectAt001: true}},
	})
	if !strings.Contains(soph, "yes") {
		t.Fatalf("sophistication = %q", soph)
	}
}
