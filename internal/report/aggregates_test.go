package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/stats"
)

// Empty dataset: every aggregate renderer must degrade exactly like
// its dataset-backed sibling — headers only, "(empty)" series, one
// zero row for the timeline — and never panic.
func TestAggregateRenderingEmpty(t *testing.T) {
	agg := analysis.NewStreamClassifier(analysis.StreamConfig{}).Finalize(nil, nil)

	if got, want := Figure1Sketches(agg.Durations), Figure1(map[string][]float64{}); got != want {
		t.Fatalf("empty Figure1: sketch %q vs dataset %q", got, want)
	}
	if got, want := Figure3Sketches(agg.TimeToAccess), Figure3(map[analysis.Outlet][]float64{}); got != want {
		t.Fatalf("empty Figure3: sketch %q vs dataset %q", got, want)
	}
	if got, want := Figure4Buckets(agg.Timeline, agg.TimelineMax), Figure4(nil); got != want {
		t.Fatalf("empty Figure4: sketch %q vs dataset %q", got, want)
	}
	if got := Figure2(agg.PerOutlet); !strings.Contains(got, "outlet") {
		t.Fatalf("empty Figure2 lost its header: %q", got)
	}
	if got, want := Overview(agg.Overview()), Overview(analysis.Summarize(&analysis.Dataset{})); got != want {
		t.Fatalf("empty overview: %q vs %q", got, want)
	}
	if got := SystemConfig(agg.ConfigRows()); !strings.Contains(got, "outlet") {
		t.Fatalf("empty sysconfig: %q", got)
	}
	if rows := agg.MedianRadii(analysis.HintUK); len(rows) != 0 {
		t.Fatalf("empty aggregates produced radius rows: %v", rows)
	}
}

// SketchSeries must render byte-identically to CDFSeries over the
// same sample, including the empty form.
func TestSketchSeriesMatchesCDFSeries(t *testing.T) {
	probes := []float64{1, 5, 10}
	sample := []float64{0.5, 2, 2, 7, 40}
	sk := stats.NewProbeSketch(probes)
	for _, v := range sample {
		sk.Add(v)
	}
	if got, want := SketchSeries("paste", sk), CDFSeries("paste", sample, probes); got != want {
		t.Fatalf("sketch %q vs ecdf %q", got, want)
	}
	empty := stats.NewProbeSketch(probes)
	if got, want := SketchSeries("x", empty), CDFSeries("x", nil, probes); got != want {
		t.Fatalf("empty sketch %q vs ecdf %q", got, want)
	}
	if got, want := SketchSeries("x", nil), CDFSeries("x", nil, probes); got != want {
		t.Fatalf("nil sketch %q vs ecdf %q", got, want)
	}
}

// singleAccessDataset builds a one-access dataset (a lone curious
// login) plus its classified form.
func singleAccessDataset() *analysis.Dataset {
	leak := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	return &analysis.Dataset{
		Accesses: []analysis.Access{{
			Account: "a@honeymail.example", Cookie: "c-1",
			First: leak.Add(36 * time.Hour), Last: leak.Add(37 * time.Hour),
			Outlet: analysis.OutletForum, LeakTime: leak,
			HasPoint: false, UserAgent: "",
		}},
	}
}

// Single class / single access: the aggregate renderers agree with
// the dataset renderers on the smallest possible population.
func TestAggregateRenderingSingleClass(t *testing.T) {
	ds := singleAccessDataset()
	agg := analysis.AggregatesFromDataset(ds, analysis.StreamConfig{})
	cs := analysis.Classify(ds, analysis.ClassifyOptions{})

	if got, want := Figure1Sketches(agg.Durations), Figure1(analysis.DurationsByClass(cs)); got != want {
		t.Fatalf("Figure1: %q vs %q", got, want)
	}
	if !strings.Contains(Figure1Sketches(agg.Durations), "curious (n=1)") {
		t.Fatalf("single curious access missing from Figure1: %q", Figure1Sketches(agg.Durations))
	}
	if got, want := Figure2(agg.PerOutlet), Figure2(analysis.ByOutlet(cs)); got != want {
		t.Fatalf("Figure2: %q vs %q", got, want)
	}
	if got, want := Figure3Sketches(agg.TimeToAccess), Figure3(analysis.TimeToFirstAccess(ds)); got != want {
		t.Fatalf("Figure3: %q vs %q", got, want)
	}
	if got, want := Figure4Buckets(agg.Timeline, agg.TimelineMax), Figure4(analysis.Timeline(ds)); got != want {
		t.Fatalf("Figure4: %q vs %q", got, want)
	}
	if got, want := Overview(agg.Overview()), Overview(analysis.Summarize(ds)); got != want {
		t.Fatalf("Overview: %q vs %q", got, want)
	}
	if got, want := SystemConfig(agg.ConfigRows()), SystemConfig(analysis.SystemConfiguration(ds)); got != want {
		t.Fatalf("SystemConfig: %q vs %q", got, want)
	}
}

// Single shard vs many shards: splitting the same records across
// several aggregates and merging must render identically to one
// aggregate over everything (merge associativity at the render
// level).
func TestAggregateRenderingShardSplit(t *testing.T) {
	leak := time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC)
	accessFor := func(account, cookie string, outlet analysis.Outlet, firstH, lastH int) analysis.Access {
		return analysis.Access{
			Account: account, Cookie: cookie,
			First: leak.Add(time.Duration(firstH) * time.Hour), Last: leak.Add(time.Duration(lastH) * time.Hour),
			Outlet: outlet, LeakTime: leak, UserAgent: "Mozilla/5.0 Chrome",
		}
	}
	ds := &analysis.Dataset{
		Accesses: []analysis.Access{
			accessFor("a@x", "c-1", analysis.OutletPaste, 24, 30),
			accessFor("a@x", "c-2", analysis.OutletPaste, 60, 61),
			accessFor("b@x", "c-3", analysis.OutletForum, 100, 120),
			accessFor("c@x", "c-4", analysis.OutletMalware, 300, 302),
		},
		Actions: []analysis.Action{
			{Time: leak.Add(25 * time.Hour), Account: "a@x", Kind: analysis.ActionRead, Message: 1},
			{Time: leak.Add(110 * time.Hour), Account: "b@x", Kind: analysis.ActionSent, Message: 2},
		},
	}
	whole := analysis.AggregatesFromDataset(ds, analysis.StreamConfig{})

	// Shard split: accounts a,c on shard 0, account b on shard 1
	// (accounts never straddle shards).
	part := func(accounts ...string) *analysis.Dataset {
		want := map[string]bool{}
		for _, a := range accounts {
			want[a] = true
		}
		out := &analysis.Dataset{}
		for _, a := range ds.Accesses {
			if want[a.Account] {
				out.Accesses = append(out.Accesses, a)
			}
		}
		for _, act := range ds.Actions {
			if want[act.Account] {
				out.Actions = append(out.Actions, act)
			}
		}
		return out
	}
	merged := analysis.AggregatesFromDataset(part("a@x", "c@x"), analysis.StreamConfig{})
	if err := merged.Merge(analysis.AggregatesFromDataset(part("b@x"), analysis.StreamConfig{})); err != nil {
		t.Fatal(err)
	}

	renders := []struct {
		name string
		from func(*analysis.Aggregates) string
	}{
		{"Overview", func(a *analysis.Aggregates) string { return Overview(a.Overview()) }},
		{"Figure1", func(a *analysis.Aggregates) string { return Figure1Sketches(a.Durations) }},
		{"Figure2", func(a *analysis.Aggregates) string { return Figure2(a.PerOutlet) }},
		{"Figure3", func(a *analysis.Aggregates) string { return Figure3Sketches(a.TimeToAccess) }},
		{"Figure4", func(a *analysis.Aggregates) string { return Figure4Buckets(a.Timeline, a.TimelineMax) }},
		{"SystemConfig", func(a *analysis.Aggregates) string { return SystemConfig(a.ConfigRows()) }},
	}
	for _, r := range renders {
		if got, want := r.from(merged), r.from(whole); got != want {
			t.Fatalf("%s differs after shard split+merge:\n%q\nvs\n%q", r.name, got, want)
		}
	}
}
