package report

import (
	"fmt"
	"strings"
)

// ShardHealth is one shard's router-side health snapshot: the liveness
// verdict of the health prober plus the fault-path counters the router
// keeps per shard. It is what livefleet.Router.Stats hands to
// FleetHealth, mirroring how the load generator hands ServingStats to
// ServingLatency.
type ShardHealth struct {
	// Addr is the shard's backend address.
	Addr string
	// Up is the prober's current verdict; a down shard fails logins
	// fast instead of burning a dial timeout.
	Up bool
	// Dials counts backend dials (pool fills, checkout misses, retry
	// dials, and health probes). Retries counts login round trips
	// replayed on a fresh dial after a stale pooled connection failed.
	Dials   int64
	Retries int64
	// Evictions counts pooled connections closed because their shard
	// was marked down.
	Evictions int64
	// DownTransitions and UpTransitions count the shard's up→down and
	// down→up edges — a restart shows up as exactly one of each.
	DownTransitions int64
	UpTransitions   int64
	// InFlightHighwater is the peak number of requests the router had
	// proxying to this shard at once.
	InFlightHighwater int64
}

// FleetHealth renders the fleet-health section: one row per shard with
// its liveness state and fault counters. The chaos smoke test greps
// this output, so the header strings and the up/down state words are
// part of the CI contract.
func FleetHealth(shards []ShardHealth) string {
	var b strings.Builder
	b.WriteString("Fleet health (router)\n")
	tbl := NewTable("shard", "addr", "state", "dials", "retries", "evictions", "down-transitions", "up-transitions", "inflight-hw")
	for i, s := range shards {
		state := "up"
		if !s.Up {
			state = "down"
		}
		tbl.AddRow(
			fmt.Sprintf("%d", i),
			s.Addr,
			state,
			fmt.Sprintf("%d", s.Dials),
			fmt.Sprintf("%d", s.Retries),
			fmt.Sprintf("%d", s.Evictions),
			fmt.Sprintf("%d", s.DownTransitions),
			fmt.Sprintf("%d", s.UpTransitions),
			fmt.Sprintf("%d", s.InFlightHighwater),
		)
	}
	b.WriteString(tbl.String())
	return b.String()
}
