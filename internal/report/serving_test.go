package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestServingLatencySection(t *testing.T) {
	var h stats.LatencyHist
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * 100 * time.Microsecond) // 0.1ms..100ms
	}
	out := ServingLatency([]ServingStats{{
		Label:    "2 shards",
		Hist:     &h,
		Requests: 1000,
		Rejected: 7,
		Errors:   0,
		Timeouts: 0,
		Elapsed:  2 * time.Second,
	}})
	for _, want := range []string{"Serving latency (live fleet)", "p99", "2 shards", "500", "req/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("section missing %q:\n%s", want, out)
		}
	}
}

// TestServingLatencyNilHist: a run whose workers never completed a
// request renders zeros instead of panicking.
func TestServingLatencyNilHist(t *testing.T) {
	out := ServingLatency([]ServingStats{{Label: "dead", Requests: 0}})
	if !strings.Contains(out, "dead") {
		t.Fatalf("missing label:\n%s", out)
	}
}

func TestServingStatsThroughput(t *testing.T) {
	s := ServingStats{Requests: 500, Elapsed: 2 * time.Second}
	if got := s.Throughput(); got != 250 {
		t.Fatalf("throughput = %g, want 250", got)
	}
	if got := (ServingStats{Requests: 5}).Throughput(); got != 0 {
		t.Fatalf("zero-elapsed throughput = %g, want 0", got)
	}
}

func TestFmtLatency(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{250 * time.Microsecond, "250µs"},
		{1500 * time.Microsecond, "1.50ms"},
		{2500 * time.Millisecond, "2.50s"},
	}
	for _, c := range cases {
		if got := fmtLatency(c.d); got != c.want {
			t.Fatalf("fmtLatency(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
