package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Comparative rendering: the scenario matrix engine runs N experiment
// variants and this layer puts them side by side — one column per
// scenario, every non-baseline cell annotated with its delta against
// the baseline column (the first ScenarioColumn). Sections mirror the
// single-run report: headline overview counters, §4.2 class mix,
// §4.3 duration CDFs on the Figure 1 probe grid, and the §4.5
// location medians.

// ScenarioColumn is one scenario's aggregates under its display name.
type ScenarioColumn struct {
	Name string
	Agg  *analysis.Aggregates
}

// Comparative renders the full comparison; cols[0] is the baseline.
func Comparative(cols []ScenarioColumn) string {
	if len(cols) == 0 {
		return "(no scenarios)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario matrix: %d scenario(s), baseline %q\n\n", len(cols), cols[0].Name)
	b.WriteString("Overview (§4.1/§4.5)\n" + compareOverview(cols))
	b.WriteString("\nAccess classes (§4.2, Figure 2)\n" + compareClasses(cols))
	b.WriteString("\nAccess duration CDFs (§4.3, Figure 1) — P(length <= probe)\n" + compareDurations(cols))
	b.WriteString("\nMedian login distance (§4.5, Figure 5)\n" + compareRadii(cols))
	return b.String()
}

// deltaInt formats "v (Δ)" against a baseline integer.
func deltaInt(v, base int) string {
	return fmt.Sprintf("%d (%+d)", v, v-base)
}

func compareOverview(cols []ScenarioColumn) string {
	t := NewTable(append([]string{"metric"}, columnNames(cols)...)...)
	metrics := []struct {
		name string
		get  func(analysis.Overview) int
	}{
		{"unique accesses", func(o analysis.Overview) int { return o.UniqueAccesses }},
		{"emails read", func(o analysis.Overview) int { return o.EmailsRead }},
		{"emails sent", func(o analysis.Overview) int { return o.EmailsSent }},
		{"unique drafts", func(o analysis.Overview) int { return o.UniqueDrafts }},
		{"accounts blocked", func(o analysis.Overview) int { return o.SuspendedAccounts }},
		{"countries", func(o analysis.Overview) int { return o.Countries }},
		{"accesses w/ location", func(o analysis.Overview) int { return o.WithLocation }},
		{"accesses w/o location", func(o analysis.Overview) int { return o.WithoutLocation }},
		{"blacklisted IPs", func(o analysis.Overview) int { return o.BlacklistedIPs }},
	}
	base := cols[0].Agg.Overview()
	for _, m := range metrics {
		cells := []string{m.name, fmt.Sprint(m.get(base))}
		for _, c := range cols[1:] {
			cells = append(cells, deltaInt(m.get(c.Agg.Overview()), m.get(base)))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

func compareClasses(cols []ScenarioColumn) string {
	t := NewTable(append([]string{"class"}, columnNames(cols)...)...)
	classes := []struct {
		name string
		get  func(analysis.ClassCounts) int
	}{
		{"total", func(c analysis.ClassCounts) int { return c.Total }},
		{"curious", func(c analysis.ClassCounts) int { return c.Curious }},
		{"gold-digger", func(c analysis.ClassCounts) int { return c.GoldDigger }},
		{"spammer", func(c analysis.ClassCounts) int { return c.Spammer }},
		{"hijacker", func(c analysis.ClassCounts) int { return c.Hijacker }},
	}
	base := cols[0].Agg.Classes
	share := func(c analysis.ClassCounts, n int) float64 {
		if c.Total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(c.Total)
	}
	for _, cl := range classes {
		cells := []string{cl.name}
		if cl.name == "total" {
			cells = append(cells, fmt.Sprint(cl.get(base)))
			for _, c := range cols[1:] {
				cells = append(cells, deltaInt(cl.get(c.Agg.Classes), cl.get(base)))
			}
		} else {
			baseShare := share(base, cl.get(base))
			cells = append(cells, fmt.Sprintf("%d (%.0f%%)", cl.get(base), baseShare))
			for _, c := range cols[1:] {
				cc := c.Agg.Classes
				cells = append(cells, fmt.Sprintf("%d (%.0f%%, %+.0fpp)",
					cl.get(cc), share(cc, cl.get(cc)), share(cc, cl.get(cc))-baseShare))
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}

func compareDurations(cols []ScenarioColumn) string {
	// Row space: union of class keys across scenarios × the baseline
	// probe grid (all sketches share the package grid).
	keySet := map[string]bool{}
	for _, c := range cols {
		for k := range c.Agg.Durations {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := NewTable(append([]string{"class", "probe (h)"}, columnNames(cols)...)...)
	for _, k := range keys {
		for pi, probe := range analysis.DurationProbes {
			cells := []string{k, fmt.Sprintf("%g", probe)}
			var baseFrac float64
			baseSk, baseOK := cols[0].Agg.Durations[k]
			if baseOK {
				baseFrac = baseSk.Frac(pi)
				cells = append(cells, fmt.Sprintf("%.2f", baseFrac))
			} else {
				cells = append(cells, "-")
			}
			for _, c := range cols[1:] {
				sk, ok := c.Agg.Durations[k]
				switch {
				case !ok:
					cells = append(cells, "-")
				case !baseOK:
					cells = append(cells, fmt.Sprintf("%.2f", sk.Frac(pi)))
				default:
					cells = append(cells, fmt.Sprintf("%.2f (%+.2f)", sk.Frac(pi), sk.Frac(pi)-baseFrac))
				}
			}
			t.AddRow(cells...)
		}
	}
	return t.String()
}

func compareRadii(cols []ScenarioColumn) string {
	type rowKey struct {
		region analysis.Hint
		group  analysis.GroupKey
	}
	// Union of (region, group) rows in the canonical MedianRadii order.
	var order []rowKey
	seen := map[rowKey]bool{}
	vals := make([]map[rowKey]analysis.RadiusRow, len(cols))
	for i, c := range cols {
		vals[i] = map[rowKey]analysis.RadiusRow{}
		for _, region := range []analysis.Hint{analysis.HintUK, analysis.HintUS} {
			for _, r := range c.Agg.MedianRadii(region) {
				k := rowKey{region: region, group: r.Group}
				vals[i][k] = r
				if !seen[k] {
					seen[k] = true
					order = append(order, k)
				}
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].region != order[j].region {
			return order[i].region < order[j].region
		}
		if order[i].group.Outlet != order[j].group.Outlet {
			return order[i].group.Outlet < order[j].group.Outlet
		}
		return order[i].group.Hint < order[j].group.Hint
	})
	t := NewTable(append([]string{"region", "group"}, columnNames(cols)...)...)
	for _, k := range order {
		hint := string(k.group.Hint)
		if hint == "" {
			hint = "no-loc"
		}
		cells := []string{string(k.region), fmt.Sprintf("%s/%s", k.group.Outlet, hint)}
		baseRow, baseOK := vals[0][k]
		if baseOK {
			cells = append(cells, fmt.Sprintf("%.0f km (n=%d)", baseRow.MedianKm, baseRow.N))
		} else {
			cells = append(cells, "-")
		}
		for i := 1; i < len(cols); i++ {
			r, ok := vals[i][k]
			switch {
			case !ok:
				cells = append(cells, "-")
			case !baseOK:
				cells = append(cells, fmt.Sprintf("%.0f km (n=%d)", r.MedianKm, r.N))
			default:
				cells = append(cells, fmt.Sprintf("%.0f km (%+.0f, n=%d)", r.MedianKm, r.MedianKm-baseRow.MedianKm, r.N))
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}

func columnNames(cols []ScenarioColumn) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}
