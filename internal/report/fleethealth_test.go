package report

import (
	"strings"
	"testing"
)

func TestFleetHealthSection(t *testing.T) {
	out := FleetHealth([]ShardHealth{
		{Addr: "127.0.0.1:8025", Up: true, Dials: 12, Retries: 1, InFlightHighwater: 9},
		{Addr: "127.0.0.1:8026", Up: false, Dials: 30, Evictions: 4, DownTransitions: 1, UpTransitions: 1},
	})
	for _, want := range []string{
		"Fleet health (router)", "down-transitions", "inflight-hw",
		"127.0.0.1:8025", "127.0.0.1:8026",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("section missing %q:\n%s", want, out)
		}
	}
	// Exactly one row per state word: shard 0 up, shard 1 down. The
	// chaos smoke greps these, so they are load-bearing strings.
	lines := strings.Split(out, "\n")
	var upRows, downRows int
	for _, ln := range lines {
		fields := strings.Fields(ln)
		if len(fields) < 3 || fields[0] == "shard" {
			continue
		}
		switch fields[2] {
		case "up":
			upRows++
		case "down":
			downRows++
		}
	}
	if upRows != 1 || downRows != 1 {
		t.Fatalf("state rows: %d up, %d down, want 1 and 1:\n%s", upRows, downRows, out)
	}
}

func TestFleetHealthEmpty(t *testing.T) {
	if out := FleetHealth(nil); !strings.Contains(out, "Fleet health") {
		t.Fatalf("empty fleet renders no header:\n%s", out)
	}
}
