package report

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// DefenderRow is one honey account's detection-race outcome in
// neutral report form: when its credential leaked, when the C3
// defender detected the leak (if ever), and when an attacker first
// touched the account (if ever). Callers convert from the
// simulation's own outcome type — report stays import-free of the
// engine.
type DefenderRow struct {
	Account    string
	Group      string // plan group label
	Channel    string // leak channel
	LeakAt     time.Time
	Detected   bool
	DetectedAt time.Time
	Exploited  bool
	ExploitAt  time.Time
}

// Defender renders the detection-race section: per leak channel, how
// many accounts the C3 defender detected, the median time from leak
// to detection, the median time from leak to first exploitation, and
// how many races the defender won (detection at or before the first
// attacker access — for an undetected account the attacker wins by
// default, for an unexploited one the defender does). The totals row
// aggregates every account. Output is a pure function of the rows.
func Defender(rows []DefenderRow) string {
	var b strings.Builder
	b.WriteString("Defender detection race (C3)\n")
	byChannel := make(map[string][]DefenderRow)
	var channels []string
	for _, r := range rows {
		if _, ok := byChannel[r.Channel]; !ok {
			channels = append(channels, r.Channel)
		}
		byChannel[r.Channel] = append(byChannel[r.Channel], r)
	}
	sort.Strings(channels)
	tbl := NewTable("channel", "accounts", "detected", "med-detect", "exploited", "med-exploit", "races-won")
	for _, ch := range channels {
		addDefenderRow(tbl, ch, byChannel[ch])
	}
	if len(channels) > 1 {
		addDefenderRow(tbl, "total", rows)
	}
	b.WriteString(tbl.String())
	return b.String()
}

// addDefenderRow aggregates one channel (or the totals) into a table
// row.
func addDefenderRow(tbl *Table, label string, rows []DefenderRow) {
	var detectGaps, exploitGaps []time.Duration
	detected, exploited, won := 0, 0, 0
	for _, r := range rows {
		if r.Detected {
			detected++
			detectGaps = append(detectGaps, r.DetectedAt.Sub(r.LeakAt))
		}
		if r.Exploited {
			exploited++
			exploitGaps = append(exploitGaps, r.ExploitAt.Sub(r.LeakAt))
		}
		if r.Detected && (!r.Exploited || !r.DetectedAt.After(r.ExploitAt)) {
			won++
		}
	}
	tbl.AddRow(
		label,
		fmt.Sprintf("%d", len(rows)),
		fmt.Sprintf("%d", detected),
		fmtSpan(medianDuration(detectGaps)),
		fmt.Sprintf("%d", exploited),
		fmtSpan(medianDuration(exploitGaps)),
		fmt.Sprintf("%d", won),
	)
}

// medianDuration returns the lower median (exact element, no
// averaging — the value stays a real observed gap). -1 flags an
// empty set.
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return -1
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}

// fmtSpan renders a leak-to-event gap at days+hours precision — the
// scale §4.3's pickup dynamics live at. A negative span (empty set)
// renders as "-".
func fmtSpan(d time.Duration) string {
	if d < 0 {
		return "-"
	}
	days := int(d / (24 * time.Hour))
	hours := int(d % (24 * time.Hour) / time.Hour)
	return fmt.Sprintf("%dd%02dh", days, hours)
}
