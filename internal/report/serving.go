package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/stats"
)

// ServingStats is one load-generation run's serving-side summary: the
// merged latency histogram plus the outcome tallies the generator
// keeps per worker. It is what cmd/loadgen hands to ServingLatency.
type ServingStats struct {
	// Label names the run (e.g. "2 shards, 64 conns, 5000 qps").
	Label string
	// Hist is the merged per-connection latency histogram.
	Hist *stats.LatencyHist
	// Requests is the number of requests attempted (including ones
	// that failed); Rejected counts application-level refusals
	// (resp.OK == false: bad password, not logged in), which are
	// expected traffic, not faults. Errors counts protocol/transport
	// faults and Timeouts counts deadline expiries — both are faults.
	// Unavailable counts down-shard refusals (shard down / shard
	// unavailable / shard connection lost) tallied separately when the
	// generator runs in tolerate-unavailable mode: expected during a
	// chaos replay, faults otherwise.
	Requests    int64
	Rejected    int64
	Errors      int64
	Timeouts    int64
	Unavailable int64
	// Elapsed is the wall-clock span of the run, for throughput.
	Elapsed time.Duration
}

// Throughput returns achieved requests per second (0 for an empty or
// instantaneous run).
func (s ServingStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Requests) / s.Elapsed.Seconds()
}

// ServingLatency renders the serving-latency section: one row per run
// with achieved throughput, the HDR quantiles, and the fault tallies.
// The live-fleet smoke test greps this output, so the header strings
// are part of the CI contract.
func ServingLatency(runs []ServingStats) string {
	var b strings.Builder
	b.WriteString("Serving latency (live fleet)\n")
	tbl := NewTable("run", "req", "req/s", "p50", "p95", "p99", "max", "rejected", "unavail", "errors", "timeouts")
	for _, r := range runs {
		h := r.Hist
		if h == nil {
			h = &stats.LatencyHist{}
		}
		tbl.AddRow(
			r.Label,
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.0f", r.Throughput()),
			fmtLatency(h.Quantile(0.50)),
			fmtLatency(h.Quantile(0.95)),
			fmtLatency(h.Quantile(0.99)),
			fmtLatency(h.Max()),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%d", r.Unavailable),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%d", r.Timeouts),
		)
	}
	b.WriteString(tbl.String())
	return b.String()
}

// fmtLatency renders a duration at a fixed, comparable precision:
// microseconds below 1ms, fractional milliseconds below 1s, seconds
// above. Scientific notation and ns noise would defeat eyeballing a
// regression across CI runs.
func fmtLatency(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
